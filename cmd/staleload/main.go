// Command staleload drives reproducible load against staleapid (and
// optionally ctlogd) and writes one BENCH_<scenario>_<git-sha>.json
// trajectory point: achieved QPS, p50/p90/p99/p99.9 latency, error rate and
// bytes, overall and per endpoint.
//
// The workload is deterministic: request targets are drawn from a seeded
// Zipf distribution over the populations discovered by scraping the CT log
// (certificate fingerprints and registrable domains), and the op mix is
// drawn from the same seeded stream, so two runs with the same seed against
// the same corpus issue the same request sequence. In the default open-loop
// mode requests are issued on a fixed schedule at -qps and each latency is
// measured from the request's *scheduled* start, so a stalled server
// inflates the recorded tail instead of silently pausing the generator
// (coordinated-omission resistance); -mode closed instead runs -workers
// request loops back-to-back.
//
// Usage:
//
//	staleload -target http://127.0.0.1:8786 [-ct http://127.0.0.1:8784]
//	          [-scenario steady] [-qps 200] [-duration 10s] [-workers 16]
//	          [-mode open|closed] [-mix staleness:40,cert:50,getentries:10]
//	          [-zipf-s 1.1] [-seed 1] [-warmup 0.1] [-timeout 5s]
//	          [-out .] [-sha auto] [-max-error-rate 0] [-log-buffer 1024]
//	          [-target-gateway] [-target-metrics http://127.0.0.1:8796/metrics]
//
// With -target-gateway the target is a stalegw fleet: the generator reads
// the gateway's /v1/shardmap and records the topology (gateway: true plus
// the shard count) in the BENCH config, keeping gateway points distinct
// from direct single-daemon points in the trajectory.
//
// With -target-metrics the generator scrapes the target's /metrics surface
// (usually its debug listener) immediately before and after the measured
// run and embeds the server-side deltas — request and 5xx totals plus
// p50/p99 derived from http_request_seconds bucket deltas — in the report's
// "server" section, so the BENCH point records both where the client waited
// and where the server actually spent it.
//
// Ops: "staleness" GETs /v1/domain/{e2ld}/staleness and "cert" GETs
// /v1/cert/{fp} on -target; "getentries" GETs a window of /ct/v1/get-entries
// and "addchain" POSTs a fresh synthetic certificate to /ct/v1/add-chain on
// -ct. The process exits non-zero when the total error rate exceeds
// -max-error-rate, so CI can gate on a clean run.
package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"stalecert/internal/loadgen"
	"stalecert/internal/obs"
	"stalecert/internal/psl"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

func main() {
	target := flag.String("target", "http://127.0.0.1:8786", "staleapid (or stalegw) base URL")
	targetGateway := flag.Bool("target-gateway", false, "the target is a stalegw fleet: record its topology (shard count) in the BENCH config")
	targetMetrics := flag.String("target-metrics", "", "target /metrics URL to scrape before and after the run; embeds server-side deltas in the report")
	ctURL := flag.String("ct", "", "ctlogd base URL (required for discovery and the getentries/addchain ops)")
	scenario := flag.String("scenario", "steady", "scenario name recorded in the BENCH file")
	qps := flag.Float64("qps", 200, "open-loop target request rate")
	duration := flag.Duration("duration", 10*time.Second, "measured run length")
	workers := flag.Int("workers", 16, "concurrent request slots")
	mode := flag.String("mode", "open", "load discipline: open (scheduled, CO-resistant) or closed (back-to-back)")
	mix := flag.String("mix", "staleness:40,cert:50,getentries:10", "weighted op mix: name:weight,...")
	zipfS := flag.Float64("zipf-s", 1.1, "Zipf skew for target selection (higher = hotter head)")
	seed := flag.Uint64("seed", 1, "PRNG seed for the op mix and Zipf draws")
	warmup := flag.Float64("warmup", 0.1, "leading fraction of the run discarded from stats")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request timeout")
	outDir := flag.String("out", ".", "directory for the BENCH_*.json report")
	sha := flag.String("sha", "", "git SHA recorded in the report (empty: git rev-parse --short HEAD)")
	maxErrorRate := flag.Float64("max-error-rate", 0, "exit non-zero when the total error rate exceeds this")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	logger, stopDebug := obsFlags.Setup("staleload")
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		_ = stopDebug(sctx)
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	weights, err := parseMix(*mix)
	if err != nil {
		logger.Error("bad -mix", "err", err)
		os.Exit(2)
	}
	if *ctURL == "" {
		logger.Error("missing required -ct URL (target discovery scrapes the CT log)")
		os.Exit(2)
	}

	hc := &http.Client{Timeout: *timeout}
	corpus, err := discover(ctx, hc, *ctURL)
	if err != nil {
		logger.Error("corpus discovery failed", "ct", *ctURL, "err", err)
		os.Exit(1)
	}
	logger.Info("corpus discovered", "entries", corpus.size,
		"fingerprints", len(corpus.fingerprints), "domains", len(corpus.domains))

	ops, err := buildOps(weights, corpus, hc, *target, *ctURL, *seed, *zipfS)
	if err != nil {
		logger.Error("bad workload", "err", err)
		os.Exit(2)
	}

	var before []obs.Sample
	if *targetMetrics != "" {
		if before, err = scrapeMetrics(ctx, hc, *targetMetrics); err != nil {
			logger.Error("pre-run metrics scrape failed", "url", *targetMetrics, "err", err)
			os.Exit(1)
		}
	}

	logger.Info("starting load", "scenario", *scenario, "mode", *mode, "qps", *qps,
		"duration", *duration, "workers", *workers, "mix", *mix, "seed", *seed)
	res, err := loadgen.Run(ctx, loadgen.Config{
		Ops:        ops,
		Mode:       loadgen.Mode(*mode),
		QPS:        *qps,
		Duration:   *duration,
		Workers:    *workers,
		Seed:       *seed,
		WarmupFrac: *warmup,
	})
	if err != nil {
		logger.Error("load run failed", "err", err)
		os.Exit(1)
	}

	gitSHA := *sha
	if gitSHA == "" {
		gitSHA = headSHA()
	}
	rep := loadgen.BuildReport(res, *scenario, gitSHA, *mix, *zipfS, corpus.size)
	if *targetGateway {
		// Gateway runs are their own trajectory family: record the topology
		// so a 1-shard and a 3-shard point are never silently compared.
		shards, replicas, terr := gatewayTopology(ctx, hc, *target)
		if terr != nil {
			logger.Error("read gateway topology", "target", *target, "err", terr)
			os.Exit(1)
		}
		rep.Config.Gateway = true
		rep.Config.Shards = shards
		rep.Config.Replicas = replicas
	}
	if *targetMetrics != "" {
		after, serr := scrapeMetrics(ctx, hc, *targetMetrics)
		if serr != nil {
			logger.Error("post-run metrics scrape failed", "url", *targetMetrics, "err", serr)
			os.Exit(1)
		}
		rep.Server = serverDelta(before, after)
		logger.Info("server-side deltas", "requests", rep.Server.Requests,
			"errors", rep.Server.Errors,
			"p50_ms", rep.Server.P50Ms, "p99_ms", rep.Server.P99Ms)
	}
	path, err := rep.WriteReport(*outDir)
	if err != nil {
		logger.Error("write bench report", "err", err)
		os.Exit(1)
	}

	logger.Info("bench complete", "report", path,
		"requests", res.Total.Count, "errors", res.Total.Errors,
		"achieved_qps", fmt.Sprintf("%.1f", res.AchievedQPS),
		"p50_ms", rep.Totals.Latency.P50Ms, "p99_ms", rep.Totals.Latency.P99Ms,
		"dropped", res.Dropped)
	for _, name := range sortedOpNames(rep) {
		ep := rep.Endpoints[name]
		logger.Info("endpoint", "op", name, "requests", ep.Requests,
			"errors", ep.Errors, "qps", fmt.Sprintf("%.1f", ep.QPS),
			"p50_ms", ep.Latency.P50Ms, "p99_ms", ep.Latency.P99Ms)
	}

	if rate := res.ErrorRate(); rate > *maxErrorRate {
		logger.Error("error rate above threshold", "rate", rate, "max", *maxErrorRate)
		os.Exit(1)
	}
	if res.Total.Count == 0 {
		logger.Error("no requests completed")
		os.Exit(1)
	}
}

// corpus holds the request-target populations discovered from the CT log.
type corpus struct {
	fingerprints []string // full hex fingerprints for /v1/cert/{fp}
	domains      []string // registrable domains for /v1/domain/{e2ld}/staleness
	size         int      // log entry count at discovery time
}

// discover pages the CT log's entries and derives the fingerprint and
// registrable-domain populations the Zipf pickers draw from. Raw HTTP (not
// ctlog.Client) keeps the generator dependency-light and retry-free.
func discover(ctx context.Context, hc *http.Client, ctURL string) (*corpus, error) {
	var sth struct {
		TreeSize uint64 `json:"tree_size"`
	}
	if err := getJSON(ctx, hc, ctURL+"/ct/v1/get-sth", &sth); err != nil {
		return nil, fmt.Errorf("get-sth: %w", err)
	}
	if sth.TreeSize == 0 {
		return nil, fmt.Errorf("log is empty; seed ctlogd first (-seed-entries)")
	}
	c := &corpus{size: int(sth.TreeSize)}
	domains := make(map[string]bool)
	list := psl.Default()
	for start := uint64(0); start < sth.TreeSize; {
		var page struct {
			Entries []struct {
				LeafInput string `json:"leaf_input"`
			} `json:"entries"`
		}
		u := fmt.Sprintf("%s/ct/v1/get-entries?start=%d&end=%d", ctURL, start, sth.TreeSize-1)
		if err := getJSON(ctx, hc, u, &page); err != nil {
			return nil, fmt.Errorf("get-entries at %d: %w", start, err)
		}
		if len(page.Entries) == 0 {
			return nil, fmt.Errorf("get-entries at %d returned no entries", start)
		}
		for _, ej := range page.Entries {
			raw, err := base64.StdEncoding.DecodeString(ej.LeafInput)
			if err != nil {
				return nil, fmt.Errorf("entry %d: %w", start, err)
			}
			// LeafData is a 4-byte timestamp header followed by the marshaled
			// certificate.
			if len(raw) < 5 {
				return nil, fmt.Errorf("entry %d: short leaf", start)
			}
			cert, err := x509sim.Unmarshal(raw[4:])
			if err != nil {
				return nil, fmt.Errorf("entry %d: %w", start, err)
			}
			c.fingerprints = append(c.fingerprints, cert.Fingerprint().Hex())
			for _, name := range cert.Names {
				if e2ld, err := list.ETLDPlusOne(name); err == nil {
					domains[e2ld] = true
				}
			}
			start++
		}
	}
	for d := range domains {
		c.domains = append(c.domains, d)
	}
	sort.Strings(c.domains) // deterministic Zipf rank order across runs
	return c, nil
}

// zipfPicker wraps a seeded Zipf source for concurrent workers.
type zipfPicker struct {
	mu sync.Mutex
	z  *loadgen.Zipf
}

func newZipfPicker(seed uint64, n int, s float64) (*zipfPicker, error) {
	z, err := loadgen.NewZipf(seed, n, s)
	if err != nil {
		return nil, err
	}
	return &zipfPicker{z: z}, nil
}

func (p *zipfPicker) next() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.z.Next()
}

// buildOps assembles the weighted op set from the mix spec.
func buildOps(weights map[string]float64, c *corpus, hc *http.Client, target, ctURL string, seed uint64, zipfS float64) ([]loadgen.Op, error) {
	var ops []loadgen.Op
	// Distinct sub-seeds per population keep the draws independent while
	// still fully determined by -seed.
	fpPick, err := newZipfPicker(seed^0xfeedface, len(c.fingerprints), zipfS)
	if err != nil {
		return nil, err
	}
	domPick, err := newZipfPicker(seed^0xdecafbad, len(c.domains), zipfS)
	if err != nil {
		return nil, err
	}
	winPick, err := newZipfPicker(seed^0xcafebabe, c.size, zipfS)
	if err != nil {
		return nil, err
	}
	var addSerial atomic.Uint64
	addSerial.Store(uint64(c.size) + 1_000_000) // clear of seeded serials

	for name, weight := range weights {
		switch name {
		case "staleness":
			if len(c.domains) == 0 {
				return nil, fmt.Errorf("staleness op needs discovered domains")
			}
			ops = append(ops, loadgen.Op{Name: name, Weight: weight,
				Do: func(ctx context.Context) (int64, error) {
					d := c.domains[domPick.next()]
					return drainGet(ctx, hc, target+"/v1/domain/"+d+"/staleness")
				}})
		case "cert":
			if len(c.fingerprints) == 0 {
				return nil, fmt.Errorf("cert op needs discovered fingerprints")
			}
			ops = append(ops, loadgen.Op{Name: name, Weight: weight,
				Do: func(ctx context.Context) (int64, error) {
					fp := c.fingerprints[fpPick.next()]
					return drainGet(ctx, hc, target+"/v1/cert/"+fp)
				}})
		case "getentries":
			ops = append(ops, loadgen.Op{Name: name, Weight: weight,
				Do: func(ctx context.Context) (int64, error) {
					start := winPick.next()
					end := start + 31
					if end >= c.size {
						end = c.size - 1
					}
					u := fmt.Sprintf("%s/ct/v1/get-entries?start=%d&end=%d", ctURL, start, end)
					return drainGet(ctx, hc, u)
				}})
		case "addchain":
			ops = append(ops, loadgen.Op{Name: name, Weight: weight,
				Do: func(ctx context.Context) (int64, error) {
					serial := addSerial.Add(1)
					nowDay, _ := simtime.Parse("2023-01-01")
					cert, err := x509sim.New(
						x509sim.SerialNumber(serial), 1, x509sim.KeyID(serial),
						[]string{fmt.Sprintf("load%08d.example.org", serial)},
						nowDay-1, nowDay+90,
					)
					if err != nil {
						return 0, err
					}
					body, _ := json.Marshal(map[string][]string{
						"chain": {base64.StdEncoding.EncodeToString(cert.Marshal())},
					})
					return drainPost(ctx, hc, ctURL+"/ct/v1/add-chain", body)
				}})
		default:
			return nil, fmt.Errorf("unknown op %q (want staleness, cert, getentries or addchain)", name)
		}
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].Name < ops[j].Name })
	return ops, nil
}

// parseMix parses "name:weight,name:weight" into a weight map.
func parseMix(spec string) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, w, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want name:weight)", part)
		}
		weight, err := strconv.ParseFloat(w, 64)
		if err != nil || weight < 0 {
			return nil, fmt.Errorf("bad mix weight %q", w)
		}
		if weight > 0 {
			out[strings.TrimSpace(name)] = weight
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty mix %q", spec)
	}
	return out, nil
}

// drainGet GETs the URL, drains the body (counting bytes) and errors on
// non-2xx — a 404 or 500 is a failed request, not a short success.
func drainGet(ctx context.Context, hc *http.Client, url string) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	return drainDo(hc, req)
}

func drainPost(ctx context.Context, hc *http.Client, url string, body []byte) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	return drainDo(hc, req)
}

func drainDo(hc *http.Client, req *http.Request) (int64, error) {
	resp, err := hc.Do(req)
	if err != nil {
		return 0, err
	}
	n, _ := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return n, fmt.Errorf("%s %s: status %d", req.Method, req.URL.Path, resp.StatusCode)
	}
	return n, nil
}

func getJSON(ctx context.Context, hc *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// gatewayTopology reads the stalegw topology document and returns the
// fleet's slice count and the replicas per slice (the max across slices;
// an unreplicated fleet reports 1).
func gatewayTopology(ctx context.Context, hc *http.Client, target string) (shards, replicas int, err error) {
	var m struct {
		Shards []struct {
			Index    int      `json:"index"`
			Addr     string   `json:"addr"`
			Replicas []string `json:"replicas"`
		} `json:"shards"`
	}
	if err := getJSON(ctx, hc, target+"/v1/shardmap", &m); err != nil {
		return 0, 0, err
	}
	if len(m.Shards) == 0 {
		return 0, 0, fmt.Errorf("target %s serves an empty shard map (not a gateway?)", target)
	}
	replicas = 1
	for _, sh := range m.Shards {
		if len(sh.Replicas) > replicas {
			replicas = len(sh.Replicas)
		}
	}
	return len(m.Shards), replicas, nil
}

// scrapeMetrics fetches and parses one Prometheus exposition snapshot from
// the target's /metrics surface.
func scrapeMetrics(ctx context.Context, hc *http.Client, url string) ([]obs.Sample, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return obs.ParseProm(resp.Body)
}

// serverDelta subtracts the pre-run snapshot from the post-run one: request
// and 5xx totals across every http_requests_total series, and p50/p99 from
// the merged http_request_seconds bucket deltas. A series missing from the
// pre-run snapshot (or counted lower — a restart mid-run) contributes its
// post-run value whole.
func serverDelta(before, after []obs.Sample) *loadgen.ServerSide {
	prev := make(map[string]obs.Sample, len(before))
	for _, s := range before {
		prev[s.Name+s.Labels] = s
	}
	var requests, errors float64
	bucketDelta := make(map[float64]float64)
	for _, s := range after {
		p, seen := prev[s.Name+s.Labels]
		switch {
		case s.Name == "http_requests_total" && s.Kind == obs.KindCounter:
			d := s.Value
			if seen && p.Value <= s.Value {
				d -= p.Value
			}
			requests += d
			if obs.LabelValue(s, "code") == "5xx" {
				errors += d
			}
		case s.Name == "http_request_seconds" && s.Kind == obs.KindHistogram:
			for i, b := range s.Buckets {
				d := float64(b.Count)
				if seen && i < len(p.Buckets) && p.Buckets[i].UpperBound == b.UpperBound &&
					p.Buckets[i].Count <= b.Count {
					d -= float64(p.Buckets[i].Count)
				}
				bucketDelta[b.UpperBound] += d
			}
		}
	}
	bounds := make([]float64, 0, len(bucketDelta))
	for le := range bucketDelta {
		bounds = append(bounds, le)
	}
	sort.Float64s(bounds)
	merged := make([]obs.BucketCount, 0, len(bounds))
	for _, le := range bounds {
		merged = append(merged, obs.BucketCount{UpperBound: le, Count: uint64(bucketDelta[le] + 0.5)})
	}
	ss := &loadgen.ServerSide{Requests: uint64(requests + 0.5), Errors: uint64(errors + 0.5)}
	if p50 := obs.HistogramQuantile(0.5, merged); !math.IsNaN(p50) {
		ss.P50Ms = p50 * 1000
	}
	if p99 := obs.HistogramQuantile(0.99, merged); !math.IsNaN(p99) {
		ss.P99Ms = p99 * 1000
	}
	return ss
}

// headSHA resolves the working tree's short commit SHA; "dev" when git is
// unavailable (the BENCH file then needs an explicit -sha to be a
// trajectory point).
func headSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}

func sortedOpNames(rep *loadgen.BenchReport) []string {
	names := make([]string, 0, len(rep.Endpoints))
	for name := range rep.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
