// Command stalegw is the stateless query gateway in front of a sharded
// staleapid fleet. It keeps no certificate state: a consistent-hash shard
// map (-shards, in ring-index order) tells it which replica owns which e2LD
// slice, and it routes:
//
//	GET /v1/domain/{e2ld}/certs        → the owning shard
//	GET /v1/domain/{e2ld}/staleness    → the owning shard
//	GET /v1/cert/{fp}                  → scatter-gather, the hit wins
//	GET /v1/domains[?prefix=&limit=]   → scatter-merge of every shard's slice
//	GET /v1/shardmap                   → the gateway's topology document
//	GET /healthz, /readyz              liveness; readiness = shard quorum
//
// Every fan-out leg rides the resilience layer (per-shard circuit breakers
// on /v1/breakers, -retry-max retries, traced attempts). A dead shard
// degrades instead of failing: owner-routed queries fall back to the
// last-good cached response ("degraded": true, X-Stale-Evidence), scatter
// queries return partial results with X-Missing-Shards, and /readyz reports
// degraded while at least -quorum shards answer.
//
// Usage:
//
//	stalegw -shards http://127.0.0.1:9001,http://127.0.0.1:9002 [-addr :8787]
//	        [-epoch 1] [-vnodes 128] [-quorum 0 (majority)]
//	        [-probe-interval 2s] [-cache-entries 4096] [-cache-ttl 5s]
//	        [-debug-addr 127.0.0.1:0] [-retry-max 4] [-breaker-threshold 0.5]
package main

import (
	"context"
	"errors"
	"flag"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"stalecert/internal/obs"
	"stalecert/internal/resil"
	"stalecert/internal/shard"
	"stalecert/internal/stalegw"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8787", "API listen address")
	shardList := flag.String("shards", "", "comma-separated shard base URLs in ring-index order (required)")
	epoch := flag.Uint64("epoch", 1, "shard-map epoch the fleet must agree on")
	vnodes := flag.Int("vnodes", shard.DefaultVNodes, "virtual nodes per shard on the ring")
	quorum := flag.Int("quorum", 0, "min live shards for (degraded) readiness; 0 = majority")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "shard liveness probe interval")
	cacheEntries := flag.Int("cache-entries", 4096, "last-good response cache capacity")
	cacheTTL := flag.Duration("cache-ttl", 5*time.Second, "last-good response cache TTL")
	obsFlags := obs.BindFlags(flag.CommandLine)
	var rf resil.Flags
	rf.BindFlags(flag.CommandLine)
	flag.Parse()

	logger, stopDebug := obsFlags.Setup("stalegw")
	if *shardList == "" {
		logger.Error("missing required -shards list")
		os.Exit(2)
	}
	var addrs []string
	for _, a := range strings.Split(*shardList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}

	gw, err := stalegw.New(stalegw.Config{
		Map:          shard.NewMap(*epoch, *vnodes, addrs),
		Client:       resil.NewHTTPClient(rf.Options("stalegw")),
		Quorum:       *quorum,
		CacheEntries: *cacheEntries,
		CacheTTL:     *cacheTTL,
	})
	if err != nil {
		logger.Error("build gateway", "err", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go gw.RunProbes(ctx, *probeInterval)

	handler := obs.Middleware(obs.Default(), "stalegw", gw.Handler())
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	logger.Info("serving query gateway", "addr", *addr, "shards", len(addrs), "epoch", *epoch)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Error("server failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		logger.Info("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			logger.Error("shutdown", "err", err)
		}
		_ = stopDebug(sctx)
	}
}
