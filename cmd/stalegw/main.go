// Command stalegw is the stateless query gateway in front of a sharded
// staleapid fleet. It keeps no certificate state: a consistent-hash shard
// map (-shards, in ring-index order) tells it which replica group owns
// which e2LD slice, and it routes:
//
//	GET /v1/domain/{e2ld}/certs        → the owning slice
//	GET /v1/domain/{e2ld}/staleness    → the owning slice
//	GET /v1/cert/{fp}                  → scatter-gather, the hit wins
//	GET /v1/domains[?prefix=&limit=]   → scatter-merge of every slice
//	GET /v1/shardmap                   → the gateway's topology document
//	GET /healthz, /readyz              liveness; readiness = slice quorum
//
// Each -shards element is one slice's replica group: one base URL, or
// several separated by "|" (e.g. http://a:9001|http://b:9001). All replicas
// of a slice must run staleapid with the same -shard i/N assignment (they
// pin identical SHARD files and tail the same log). Per call the gateway
// dials a healthy replica (probe + breaker state, rotated), fails over to
// siblings on error, and with -hedge-after > 0 races a sibling when the
// first replica is slow — first response wins, the loser is cancelled.
//
// Every fan-out leg rides the resilience layer (per-replica circuit
// breakers on /v1/breakers, -retry-max retries, traced attempts). A dead
// slice — every replica down — degrades instead of failing: owner-routed
// queries fall back to the last-good cached response ("degraded": true,
// X-Stale-Evidence), scatter queries return partial results with
// X-Missing-Shards, and /readyz reports degraded while at least -quorum
// slices answer. Last-good retention is bounded by -stale-cache-entries /
// -stale-cache-ttl and observable as stalegw_stale_cache_entries.
//
// Usage:
//
//	stalegw -shards 'http://a:9001|http://b:9001,http://a:9002|http://b:9002'
//	        [-addr :8787] [-epoch 1] [-vnodes 128] [-quorum 0 (majority)]
//	        [-probe-interval 2s] [-cache-entries 4096] [-cache-ttl 5s]
//	        [-hedge-after 30ms] [-stale-cache-entries 1024] [-stale-cache-ttl 10m]
//	        [-debug-addr 127.0.0.1:0] [-retry-max 4] [-breaker-threshold 0.5]
package main

import (
	"context"
	"errors"
	"flag"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"stalecert/internal/obs"
	"stalecert/internal/resil"
	"stalecert/internal/shard"
	"stalecert/internal/stalegw"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8787", "API listen address")
	shardList := flag.String("shards", "", "comma-separated slices in ring-index order, each one base URL or |-separated replica URLs (required)")
	epoch := flag.Uint64("epoch", 1, "shard-map epoch the fleet must agree on")
	vnodes := flag.Int("vnodes", shard.DefaultVNodes, "virtual nodes per shard on the ring")
	quorum := flag.Int("quorum", 0, "min live shards for (degraded) readiness; 0 = majority")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "shard liveness probe interval")
	cacheEntries := flag.Int("cache-entries", 4096, "last-good response cache capacity")
	cacheTTL := flag.Duration("cache-ttl", 5*time.Second, "last-good response cache TTL")
	staleEntries := flag.Int("stale-cache-entries", 1024, "max expired last-good entries retained for serve-stale (0 = unbounded)")
	staleTTL := flag.Duration("stale-cache-ttl", 10*time.Minute, "max age past expiry a last-good entry may be served stale (0 = unbounded)")
	hedgeAfter := flag.Duration("hedge-after", 0, "race a sibling replica after this long without a response (0 disables hedging)")
	obsFlags := obs.BindFlags(flag.CommandLine)
	var rf resil.Flags
	rf.BindFlags(flag.CommandLine)
	flag.Parse()

	logger, stopDebug := obsFlags.Setup("stalegw")
	if *shardList == "" {
		logger.Error("missing required -shards list")
		os.Exit(2)
	}
	var groups [][]string
	for _, slice := range strings.Split(*shardList, ",") {
		if slice = strings.TrimSpace(slice); slice == "" {
			continue
		}
		var group []string
		for _, a := range strings.Split(slice, "|") {
			if a = strings.TrimSpace(a); a != "" {
				group = append(group, a)
			}
		}
		groups = append(groups, group)
	}

	// One breaker set shared between the resilient client (which trips
	// circuits) and the gateway (which routes around open ones).
	opts := rf.Options("stalegw")
	gw, err := stalegw.New(stalegw.Config{
		Map:          shard.NewReplicatedMap(*epoch, *vnodes, groups),
		Client:       resil.NewHTTPClient(opts),
		Quorum:       *quorum,
		CacheEntries: *cacheEntries,
		CacheTTL:     *cacheTTL,
		StaleEntries: *staleEntries,
		StaleTTL:     *staleTTL,
		HedgeAfter:   *hedgeAfter,
		Breakers:     opts.Breaker,
	})
	if err != nil {
		logger.Error("build gateway", "err", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go gw.RunProbes(ctx, *probeInterval)

	handler := obs.Middleware(obs.Default(), "stalegw", gw.Handler())
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	replicas := 0
	for _, g := range groups {
		replicas += len(g)
	}
	logger.Info("serving query gateway", "addr", *addr, "slices", len(groups), "replicas", replicas, "epoch", *epoch)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Error("server failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		logger.Info("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			logger.Error("shutdown", "err", err)
		}
		_ = stopDebug(sctx)
	}
}
