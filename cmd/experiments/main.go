// Command experiments regenerates the paper's tables and figures over a
// simulated world.
//
// Usage:
//
//	experiments [-scale quick|test|full] [-seed N] [-artifact NAME | -all | -headline]
//	            [-debug-addr 127.0.0.1:0] [-trace-buffer 256] [-trace-sample 0.1]
//	            [-trace-slow 250ms] [-slo availability:99.9,latency:99:250ms]
//	            [-profile-dir DIR] [-latency-buckets 1ms,5ms,...] [-log-buffer 1024]
//
// Artifacts: table3 table4 table5 table6 table7
//
//	figure4 figure5a figure5b figure6 figure7 figure8 figure9
//
// Example:
//
//	experiments -scale full -all > experiments.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"stalecert"
	"stalecert/internal/core"
	"stalecert/internal/obs"
	"stalecert/internal/simtime"
)

func main() {
	scale := flag.String("scale", "test", "simulation scale: quick, test, or full")
	seed := flag.Int64("seed", 1, "simulation seed")
	artifact := flag.String("artifact", "", "single artifact to print (e.g. table4, figure6)")
	all := flag.Bool("all", false, "print every table and figure")
	headline := flag.Bool("headline", false, "print the headline 90-day-cap estimate")
	csv := flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	stages := flag.Bool("stages", false, "print the per-stage timing tree to stderr")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	logger, stopDebug := obsFlags.Setup("experiments")
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		_ = stopDebug(sctx)
	}()

	s, err := scenarioFor(*scale)
	if err != nil {
		logger.Error("bad scenario", "err", err)
		os.Exit(2)
	}
	s.Seed = *seed

	logger.Info("simulating", "start", s.Start.String(), "end", s.End.String(), "scale", *scale, "seed", *seed)
	r := stalecert.Run(s)
	logger.Info("pipeline complete", "corpus", r.Corpus.Len(),
		"revoked_all", len(r.RevokedAll), "key_compromise", len(r.KeyComp),
		"registrant_change", len(r.RegChange), "managed_tls", len(r.Managed))
	if *stages {
		fmt.Fprint(os.Stderr, r.Trace.Render())
	}

	switch {
	case *headline:
		printHeadline(r)
	case *all:
		for _, name := range artifactNames() {
			printArtifact(r, name, *csv)
			fmt.Println()
		}
		printHeadline(r)
	case *artifact != "":
		printArtifact(r, *artifact, *csv)
	default:
		printArtifact(r, "table4", *csv)
		fmt.Println()
		printHeadline(r)
	}
}

func scenarioFor(scale string) (stalecert.Scenario, error) {
	switch scale {
	case "quick":
		s := stalecert.QuickScenario()
		s.Start = simtime.MustParse("2019-01-01")
		return s, nil
	case "test":
		s := stalecert.DefaultScenario()
		s.Start = simtime.MustParse("2016-01-01")
		s.BaseDailyRegistrations = 2
		s.AnnualRegistrationGrowth = 1.12
		return s, nil
	case "full":
		return stalecert.DefaultScenario(), nil
	}
	return stalecert.Scenario{}, fmt.Errorf("unknown scale %q (want quick, test, or full)", scale)
}

func artifactNames() []string {
	return []string{
		"table3", "table4", "table5", "table6", "table7",
		"figure4", "figure5a", "figure5b", "figure6", "figure7", "figure8", "figure9",
		"revocation", "mitigations",
	}
}

func printArtifact(r *stalecert.Results, name string, csv bool) {
	switch name {
	case "table3":
		emit(r.Table3(), csv)
	case "table4":
		emit(r.Table4(), csv)
	case "table5":
		t, _ := r.Table5(7, 100_000, 0.01)
		emit(t, csv)
	case "table6":
		emit(r.Table6(7), csv)
	case "table7":
		emit(r.Table7(), csv)
	case "figure4":
		emit(r.Figure4(), csv)
	case "figure5a":
		emit(r.Figure5a(), csv)
	case "figure5b":
		emit(r.Figure5b(), csv)
	case "figure6":
		fmt.Print(r.Figure6().Render())
		med := r.Figure6Medians()
		fmt.Printf("medians: registrant=%.0fd managed=%.0fd keyCompromise=%.0fd\n",
			med[core.MethodRegistrantChange], med[core.MethodManagedTLS], med[core.MethodKeyCompromise])
	case "figure7":
		fmt.Print(r.Figure7().Render())
	case "figure8":
		fmt.Print(r.Figure8().Render())
		at90 := r.Figure8At(90)
		fmt.Printf("survival at 90d: registrant=%.1f%% managed=%.1f%% keyCompromise=%.1f%%\n",
			100*at90[core.MethodRegistrantChange], 100*at90[core.MethodManagedTLS], 100*at90[core.MethodKeyCompromise])
	case "figure9":
		emit(r.Figure9Table(nil), csv)
	case "revocation":
		emit(r.RevocationEffectiveness(), csv)
	case "mitigations":
		emit(r.MitigationsTable(1), csv)
	default:
		fmt.Fprintf(os.Stderr, "unknown artifact %q; known: %v\n", name, artifactNames())
		os.Exit(2)
	}
}

type renderable interface {
	Render() string
	CSV() string
}

func emit(t renderable, csv bool) {
	if csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Print(t.Render())
}

func printHeadline(r *stalecert.Results) {
	h := r.Headline()
	fmt.Println("== Headline: 90-day maximum lifetime ==")
	methods := make([]core.Method, 0, len(h.DayReductionPct))
	for m := range h.DayReductionPct {
		methods = append(methods, m)
	}
	sort.Slice(methods, func(i, j int) bool { return methods[i] < methods[j] })
	for _, m := range methods {
		fmt.Printf("%-26s stale certs -%.1f%%  staleness-days -%.1f%%\n",
			m, h.CertReductionPct[m], h.DayReductionPct[m])
	}
	fmt.Printf("overall staleness-day reduction: %.1f%%\n", h.OverallDayReductionPct)
	fmt.Printf("new third-party stale e2LDs per day (sim scale): %.1f\n", h.NewStaleE2LDsPerDay)
}
