// Command stalewatch is the live stale-certificate monitor: it tails a CT
// log for certificates covering watched domains and cross-checks WHOIS, DNS
// and CRLs to alert on third-party staleness as it appears — the operational
// tool the paper's retrospective pipelines suggest (§8, BygoneSSL).
//
// Usage:
//
//	stalewatch -log http://127.0.0.1:8784 [-whois 127.0.0.1:4343] [-dns 127.0.0.1:5353]
//	           [-crl http://127.0.0.1:8785] [-domains a.com,b.com] [-interval 10s] [-once]
//	           [-jsonl] [-store DIR] [-retry-max 4] [-breaker-threshold 0.5] [-chaos-seed 0]
//	           [-trace-buffer 256] [-trace-sample 0.1] [-trace-slow 250ms]
//	           [-slo availability:99.9,latency:99:250ms] [-profile-dir DIR]
//	           [-latency-buckets 1ms,5ms,...] [-log-buffer 1024]
//
// Point it at cmd/ctlogd, cmd/whoisd, cmd/dnsscand and cmd/crld instances
// (or real deployments of the same protocols). With -jsonl every alert is
// emitted as one JSON line for machine consumption. With -store the watcher
// persists everything it polls into a certstore and resumes from its
// checkpoint on restart — the same store staleapid serves queries from.
//
// CT polls ride the resilience layer: transient log failures are retried
// within the poll round (resil.Retry on top of the instrumented client), and
// when a peer's circuit breaker opens or closes the watcher emits an
// operational alert — as a breaker_open/breaker_closed JSON line under
// -jsonl, as a structured log line otherwise.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"stalecert/internal/ca"
	"stalecert/internal/certstore"
	"stalecert/internal/crl"
	"stalecert/internal/ctlog"
	"stalecert/internal/dnsname"
	"stalecert/internal/dnssim"
	"stalecert/internal/monitor"
	"stalecert/internal/obs"
	"stalecert/internal/resil"
	"stalecert/internal/revcheck"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

// breakerLine is the -jsonl wire form of a circuit-breaker transition.
type breakerLine struct {
	Kind string `json:"kind"`
	Peer string `json:"peer"`
	From string `json:"from"`
	To   string `json:"to"`
}

// alertLine is the -jsonl wire form of one alert.
type alertLine struct {
	Kind        string   `json:"kind"`
	Domain      string   `json:"domain"`
	Fingerprint string   `json:"fingerprint"`
	Serial      uint64   `json:"serial"`
	Issuer      uint16   `json:"issuer"`
	Names       []string `json:"names"`
	NotAfter    string   `json:"not_after"`
	Entry       uint64   `json:"entry"`
	Detail      string   `json:"detail"`
}

func main() {
	logURL := flag.String("log", "http://127.0.0.1:8784", "CT log base URL")
	whoisAddr := flag.String("whois", "", "WHOIS server address (empty disables the registrant-change check)")
	dnsAddr := flag.String("dns", "", "authoritative DNS address (empty disables the departure check)")
	crlURL := flag.String("crl", "", "CRL server base URL (empty disables the revocation check)")
	domains := flag.String("domains", "", "comma-separated e2LDs to watch (empty watches everything)")
	interval := flag.Duration("interval", 10*time.Second, "poll interval")
	once := flag.Bool("once", false, "poll once and exit")
	now := flag.String("now", "2023-01-01", "evaluation day")
	marker := flag.String("marker", "cloudflaressl.com", "managed-TLS marker SAN suffix")
	jsonl := flag.Bool("jsonl", false, "emit alerts as JSON lines")
	storeDir := flag.String("store", "", "persist polled entries into a certstore at this directory and resume from its checkpoint")
	obsFlags := obs.BindFlags(flag.CommandLine)
	var rf resil.Flags
	rf.BindFlags(flag.CommandLine)
	flag.Parse()

	logger, stopDebug := obsFlags.Setup("stalewatch")
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		_ = stopDebug(sctx)
	}()

	nowDay, err := simtime.Parse(*now)
	if err != nil {
		logger.Error("bad -now", "err", err)
		os.Exit(2)
	}

	// Breaker transitions are operator-facing events for a monitor: surface
	// them on the alert stream (JSON lines under -jsonl) so a dead upstream
	// is as visible as a stale certificate.
	opts := rf.Options("stalewatch")
	if !opts.NoBreaker {
		opts.Breaker = resil.NewBreakerSet(resil.BreakerConfig{
			Service:   "stalewatch",
			Threshold: rf.BreakerThreshold,
			OnStateChange: func(peer string, from, to resil.State) {
				if *jsonl {
					line, _ := json.Marshal(breakerLine{
						Kind: "breaker_" + to.String(),
						Peer: peer,
						From: from.String(),
						To:   to.String(),
					})
					fmt.Println(string(line))
					return
				}
				logger.Warn("breaker state change", "peer", peer, "from", from.String(), "to", to.String())
			},
		})
	}
	client := ctlog.NewClientWithOptions(*logURL, nil, opts)
	var watch []string
	if *domains != "" {
		watch = strings.Split(*domains, ",")
	}
	var watcher *monitor.CTWatcher
	if *storeDir != "" {
		store, err := certstore.Open(certstore.Options{Dir: *storeDir})
		if err != nil {
			logger.Error("open store", "dir", *storeDir, "err", err)
			os.Exit(1)
		}
		defer store.Close()
		watcher = monitor.NewCTWatcherWithSink(client, certstore.NewIngester(store, client), watch...)
		logger.Info("persisting to store", "dir", *storeDir, "certs", store.Len(), "resume_index", watcher.NextIndex())
	} else {
		watcher = monitor.NewCTWatcher(client, watch...)
	}

	ev := &monitor.Evaluator{Now: nowDay, WhoisAddr: *whoisAddr, MarkerSuffix: *marker}
	if *dnsAddr != "" {
		ev.Resolver = &dnssim.Resolver{ServerAddr: *dnsAddr, Timeout: 2 * time.Second}
		ev.IsProviderRecord = func(r dnssim.Record) bool {
			switch r.Type {
			case dnssim.TypeNS:
				return dnsname.IsSubdomain(r.Data, "ns.cloudflare.com")
			case dnssim.TypeCNAME:
				return dnsname.IsSubdomain(r.Data, "cdn.cloudflare.com")
			}
			return false
		}
	}
	if *crlURL != "" {
		ev.Revocation = crlBackedChecker(*crlURL)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Round-level retry on top of the client's per-request resilience: a poll
	// that fails end-to-end (scrape + persist) gets the full backoff ladder
	// before the round is abandoned until the next interval.
	pollPolicy := resil.Policy{
		Service:     "stalewatch-poll",
		MaxAttempts: rf.RetryMax,
		BaseDelay:   250 * time.Millisecond,
		MaxDelay:    5 * time.Second,
	}
	for {
		var hits []monitor.Hit
		err := resil.Retry(ctx, pollPolicy, func(ctx context.Context) error {
			var perr error
			hits, perr = watcher.Poll(ctx)
			return perr
		})
		if err != nil {
			logger.Error("poll failed", "err", err)
		}
		for _, hit := range hits {
			alerts, err := ev.Evaluate(ctx, hit)
			if err != nil {
				logger.Error("evaluate failed", "domains", hit.Domains, "err", err)
				continue
			}
			for _, a := range alerts {
				if *jsonl {
					line, err := json.Marshal(alertLine{
						Kind:        a.Kind.String(),
						Domain:      a.Domain,
						Fingerprint: a.Cert.Fingerprint().Hex(),
						Serial:      uint64(a.Cert.Serial),
						Issuer:      uint16(a.Cert.Issuer),
						Names:       a.Cert.Names,
						NotAfter:    a.Cert.NotAfter.String(),
						Entry:       hit.Entry.Index,
						Detail:      a.Detail,
					})
					if err != nil {
						logger.Error("encode alert", "err", err)
						continue
					}
					fmt.Println(string(line))
					continue
				}
				fmt.Printf("ALERT %-22s %-20s serial=%d issuer=%d: %s\n",
					a.Kind, a.Domain, a.Cert.Serial, a.Cert.Issuer, a.Detail)
			}
			if len(alerts) == 0 && !*jsonl {
				fmt.Printf("ok    entry=%d domains=%v names=%v\n", hit.Entry.Index, hit.Domains, hit.Entry.Cert.Names)
			}
		}
		if *once {
			return
		}
		select {
		case <-ctx.Done():
			logger.Info("shutting down")
			return
		case <-time.After(*interval):
		}
	}
}

// crlBackedChecker fetches fresh CRLs for the built-in CA directory on every
// check round. For a monitoring loop the daily CRL set is small; a
// production deployment would cache by nextUpdate.
func crlBackedChecker(base string) revcheck.Checker {
	dir := ca.NewDirectory()
	var names []string
	for _, p := range dir.All() {
		names = append(names, p.Name)
	}
	return revcheck.CheckerFunc(func(ctx context.Context, cert *x509sim.Certificate, now simtime.Day) (revcheck.Status, crl.Reason, error) {
		fetcher := &crl.Fetcher{Base: base}
		lists, err := fetcher.FetchAll(ctx, names)
		if err != nil {
			return revcheck.StatusUnavailable, 0, err
		}
		for _, l := range lists {
			for _, e := range l.Entries {
				if e.Key() == cert.DedupKey() && e.RevokedAt <= now {
					return revcheck.StatusRevoked, e.Reason, nil
				}
			}
		}
		return revcheck.StatusGood, 0, nil
	})
}
