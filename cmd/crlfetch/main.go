// Command crlfetch performs daily CRL collections against a crld server and
// prints the per-CA coverage table (the Appendix B accounting) plus a
// revocation-reason histogram.
//
// Usage:
//
//	crlfetch -server http://127.0.0.1:8785 -cas Sectigo,DigiCert [-days 7] [-retries 2]
//	         [-retry-max 4] [-breaker-threshold 0.5] [-chaos-seed 0]
//	         [-trace-buffer 256] [-trace-sample 0.1] [-trace-slow 250ms]
//	         [-slo availability:99.9,latency:99:250ms] [-profile-dir DIR]
//	         [-latency-buckets 1ms,5ms,...] [-log-buffer 1024]
//
// -retries is the per-CRL attempt budget inside one collection day (the
// fetcher's own ledger-aware loop); the resil flags govern the shared
// resilience layer, and a non-zero -chaos-seed injects deterministic faults
// under the fetcher for collection-robustness experiments.
//
// With -cas omitted the built-in CA directory is fetched.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"stalecert/internal/ca"
	"stalecert/internal/crl"
	"stalecert/internal/obs"
	"stalecert/internal/resil"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:8785", "crld base URL")
	cas := flag.String("cas", "", "comma-separated CA names (default: built-in directory)")
	days := flag.Int("days", 1, "number of daily collection rounds")
	retries := flag.Int("retries", 2, "extra attempts per CRL per day")
	timeout := flag.Duration("timeout", 30*time.Second, "overall timeout")
	obsFlags := obs.BindFlags(flag.CommandLine)
	var rf resil.Flags
	rf.BindFlags(flag.CommandLine)
	flag.Parse()

	logger, stopDebug := obsFlags.Setup("crlfetch")
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		_ = stopDebug(sctx)
	}()

	var names []string
	if *cas != "" {
		names = strings.Split(*cas, ",")
	} else {
		for _, p := range ca.NewDirectory().All() {
			names = append(names, p.Name)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	ledger := crl.NewCoverageLedger()
	fetcher := &crl.Fetcher{Base: *server, Ledger: ledger, Retries: *retries}
	if opts := rf.Options("crl-fetcher"); opts.Chaos != nil {
		fetcher.HC = &http.Client{Transport: opts.Chaos.WithBase(nil)}
	}

	reasonCounts := map[crl.Reason]int{}
	var total int
	for day := 0; day < *days; day++ {
		lists, err := fetcher.FetchAll(ctx, names)
		if err != nil {
			logger.Error("fetch round failed", "day", day, "err", err)
			os.Exit(1)
		}
		total = 0
		for _, l := range lists {
			total += len(l.Entries)
			for _, e := range l.Entries {
				reasonCounts[e.Reason]++
			}
		}
	}

	fmt.Println("CA Name                      Coverage        Percent")
	fmt.Println("-------                      --------        -------")
	for _, row := range ledger.Rows() {
		fmt.Printf("%-28s %4d / %-4d     %6.2f%%\n", row.CAName, row.Succeeded, row.Attempted, row.Percent())
	}
	t := ledger.Total()
	fmt.Printf("%-28s %4d / %-4d     %6.2f%%\n", "Total Coverage", t.Succeeded, t.Attempted, t.Percent())

	fmt.Printf("\nrevocations in final round: %d\n", total)
	reasons := make([]crl.Reason, 0, len(reasonCounts))
	for r := range reasonCounts {
		reasons = append(reasons, r)
	}
	sort.Slice(reasons, func(i, j int) bool { return reasons[i] < reasons[j] })
	for _, r := range reasons {
		fmt.Printf("  %-22s %d\n", r, reasonCounts[r])
	}
}
