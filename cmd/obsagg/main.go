// Command obsagg is the fleet observability aggregator: it scrapes every
// configured daemon's /metrics, /v1/traces and /v1/logs endpoints on an
// interval, merges the metric series under added job/instance labels,
// stitches the per-daemon trace fragments into fleet-wide span trees, and
// merges the per-daemon log rings into one time-ordered instance-labelled
// log stream — one Prometheus scrape target, one trace query surface and one
// log query surface for the whole deployment — plus a plain-text fleet
// summary. Scrape failures, jobs whose server error rate crosses a
// threshold, stitched traces slower than -fleet-trace-slow, federated SLO
// burn-rate alerts (slo_alert_firing on any target) and per-job error-log
// bursts above -error-burst-threshold raise structured log alerts;
// -alert-rearm re-fires a still-active alert after a quiet period instead of
// once ever. Every round's samples are also appended to an in-memory
// time-series database (bounded by -tsdb-retention and -tsdb-max-series)
// that answers instant and range expression queries at /fleet/query —
// rate(), increase(), irate(), *_over_time(), histogram_quantile() and
// by-label aggregation — and drives -record recording rules and -alert-rule
// alert rules, evaluated each round on the same engine as the built-in
// alert families.
//
// Usage:
//
//	obsagg -targets ctlogd=http://127.0.0.1:9090,crld=http://127.0.0.1:9091 \
//	       [-addr 127.0.0.1:8790] [-scrape-interval 10s] [-error-rate-threshold 0.1]
//	       [-fleet-trace-slow 1s] [-fleet-trace-buffer 512] [-alert-rearm 5m]
//	       [-fleet-log-buffer 4096] [-error-burst-threshold 1]
//	       [-tsdb-retention 15m] [-tsdb-max-series 50000]
//	       [-record name=expr ...] [-alert-rule name=expr ...]
//	       [-debug-addr 127.0.0.1:0] [-log-format text|json] [-log-buffer 1024]
//	       [-trace-buffer 256] [-trace-sample 0.1] [-trace-slow 250ms]
//	       [-slo availability:99.9,latency:99:250ms] [-profile-dir DIR]
//	       [-latency-buckets 1ms,5ms,...]
//	       [-retry-max 4] [-breaker-threshold 0.5] [-chaos-seed 0]
//
// Scrapes run through the resilience layer (retries + per-peer circuit
// breakers). When some targets are down the aggregator keeps serving their
// last-good series: /metrics carries an X-Stale-Evidence header naming the
// down targets and /readyz reports 200-degraded instead of 503.
//
// Endpoints:
//
//	/metrics            federated exposition across every target (+ obsagg's own series)
//	/fleet              plain-text per-target summary (up/down, series counts, failures)
//	/fleet/traces       stitched cross-daemon trace summaries (?route=, ?min_ms=, ?error=1, ?spans=1)
//	/fleet/traces/{id}  one stitched trace as a span tree + its correlated log lines
//	/fleet/logs         merged per-daemon log rings, time-ordered and instance-labelled
//	                    (?level=, ?trace=, ?since=, ?q=, ?limit=, ?job=, ?instance=)
//	/fleet/slo          per-job SLO burn rates, budget remaining and firing severities
//	/fleet/query        expression queries over the TSDB: ?query= with ?time=
//	                    (instant) or ?start=&end=&step= (range)
//	/healthz            liveness
//	/readyz             ready once the first scrape round completes
package main

import (
	"context"
	"errors"
	"flag"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stalecert/internal/obs"
	"stalecert/internal/resil"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8790", "listen address for the federated surface")
	targets := flag.String("targets", "", "comma-separated job=URL scrape targets (required)")
	interval := flag.Duration("scrape-interval", 10*time.Second, "scrape interval")
	threshold := flag.Float64("error-rate-threshold", 0.1, "per-job 5xx/total fraction that raises an alert (0 disables)")
	fleetSlow := flag.Duration("fleet-trace-slow", time.Second, "stitched-trace duration that raises a slow-trace alert (0 disables)")
	fleetBuffer := flag.Int("fleet-trace-buffer", 512, "stitched traces retained in the fleet view")
	alertRearm := flag.Duration("alert-rearm", 5*time.Minute,
		"quiet period after which a still-active slow-trace, SLO burn or error-burst alert re-fires (0 = once ever)")
	fleetLogBuffer := flag.Int("fleet-log-buffer", obs.DefaultFleetLogBuffer,
		"merged log records retained in the fleet view")
	errorBurst := flag.Float64("error-burst-threshold", 1,
		"per-job error-log records/second (from federated log_records_total) that raises a fleet alert (0 disables)")
	tsdbRetention := flag.Duration("tsdb-retention", obs.DefaultTSDBRetention,
		"how much per-series history the fleet TSDB retains (also the staleness window for vanished targets)")
	tsdbMaxSeries := flag.Int("tsdb-max-series", obs.DefaultTSDBMaxSeries,
		"cap on live TSDB series; appends past it are dropped and counted")
	var recordingRules []obs.RecordingRule
	flag.Func("record", "recording rule name=expr, evaluated each round into the TSDB (repeatable)",
		func(spec string) error {
			r, err := obs.ParseRecordingRule(spec)
			if err != nil {
				return err
			}
			recordingRules = append(recordingRules, r)
			return nil
		})
	var alertRules []obs.AlertRule
	flag.Func("alert-rule", "alert rule name=expr, logged and counted while breaching (repeatable)",
		func(spec string) error {
			r, err := obs.ParseAlertRule(spec)
			if err != nil {
				return err
			}
			alertRules = append(alertRules, r)
			return nil
		})
	obsFlags := obs.BindFlags(flag.CommandLine)
	var rf resil.Flags
	rf.BindFlags(flag.CommandLine)
	flag.Parse()

	logger, stopDebug := obsFlags.Setup("obsagg")

	if *targets == "" {
		logger.Error("-targets is required (job=URL,...)")
		os.Exit(2)
	}
	parsed, err := obs.ParseTargets(*targets)
	if err != nil {
		logger.Error("bad -targets", "err", err)
		os.Exit(2)
	}

	agg := &obs.Aggregator{
		Targets:             parsed,
		Logger:              logger,
		ErrorRateThreshold:  *threshold,
		TraceSlow:           *fleetSlow,
		TraceBuffer:         *fleetBuffer,
		AlertRearm:          *alertRearm,
		FleetLogBuffer:      *fleetLogBuffer,
		ErrorBurstThreshold: *errorBurst,
		TSDB:                &obs.TSDB{Retention: *tsdbRetention, MaxSeries: *tsdbMaxSeries},
		RecordingRules:      recordingRules,
		AlertRules:          alertRules,
		SelfJob:             "obsagg",
		Client:              resil.NewHTTPClient(rf.Options("obsagg")),
	}
	obs.DefaultHealth().Register("first-scrape-round", agg.Ready)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go agg.Run(ctx, *interval)

	mux := http.NewServeMux()
	mux.Handle("/metrics", agg.Handler())
	mux.Handle("/fleet", agg.Handler())
	mux.Handle("/fleet/", agg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		obs.HandlerFor(obs.Default(), obs.DefaultHealth()).ServeHTTP(w, r)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		obs.HandlerFor(obs.Default(), obs.DefaultHealth()).ServeHTTP(w, r)
	})
	handler := obs.Middleware(obs.Default(), "obsagg", mux)

	logger.Info("serving federated metrics", "targets", len(parsed), "addr", *addr,
		"interval", interval.String(),
		"endpoints", "/metrics /fleet /fleet/traces /fleet/traces/{id} /fleet/logs /fleet/slo /fleet/query /healthz /readyz")

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Error("server failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		logger.Info("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			logger.Error("shutdown", "err", err)
		}
		_ = stopDebug(sctx)
	}
}
