// Command staleapid serves staleness queries over a persistent certificate
// store. It tails a CT log (cmd/ctlogd or any RFC 6962-style log) into an
// on-disk certstore from a persisted checkpoint — restarts resume instead of
// re-scraping — and answers:
//
//	GET /v1/cert/{fp}                  one certificate by fingerprint
//	                                   (64-hex full or 16-hex short form)
//	GET /v1/domain/{e2ld}/certs        every certificate naming the e2LD
//	GET /v1/domain/{e2ld}/staleness    the three detectors' per-domain
//	                                   verdict against live evidence
//	GET /healthz, /readyz              liveness; readiness = checkpoint
//	                                   loaded AND ingester caught up
//
// Staleness evidence comes from the same sources the live monitor uses:
// WHOIS (registrant change), authoritative DNS (managed-TLS departure) and
// CRLs (revocation); any source left unconfigured disables its check.
//
// Usage:
//
//	staleapid -store /var/lib/stalecert [-addr :8786] [-log http://127.0.0.1:8784]
//	          [-interval 5s] [-lag-threshold 0] [-whois 127.0.0.1:4343]
//	          [-dns 127.0.0.1:5353] [-crl http://127.0.0.1:8785]
//	          [-now 2023-01-01] [-marker cloudflaressl.com]
//	          [-cache-entries 1024] [-cache-ttl 5s] [-debug-addr 127.0.0.1:0]
//	          [-trace-buffer 256] [-trace-sample 0.1] [-trace-slow 250ms]
//	          [-slo availability:99.9,latency:99:250ms] [-profile-dir DIR]
//	          [-latency-buckets 1ms,5ms,...] [-log-buffer 1024]
//	          [-retry-max 4] [-breaker-threshold 0.5] [-chaos-seed 0]
//	          [-shard i/N] [-shard-epoch 1] [-shard-vnodes 128]
//
// With -shard i/N the replica is one slice of a consistent-hash fleet: it
// still tails and Merkle-verifies the whole log but persists only the
// e2LDs its ring slice owns, pins that slice into the store, and reports it
// at /v1/shardmap for the gateway (cmd/stalegw) to validate.
//
// Replicating a slice needs no extra wiring: start several staleapids with
// the same -shard i/N (separate -store dirs), and each independently tails
// the same log and pins an identical SHARD file — interchangeable replicas
// the gateway lists as one "|"-joined replica group in its -shards flag and
// fails over or hedges between.
//
// Every outbound call (CT log tail, CRL fetches) goes through the resilience
// layer: -retry-max bounds attempts, -breaker-threshold tunes the per-peer
// circuit breakers (visible on the debug listener at /v1/breakers), and a
// non-zero -chaos-seed injects deterministic faults for acceptance testing.
// When live evidence fails but a last-good verdict is cached, the staleness
// endpoint serves it with "degraded": true and an X-Stale-Evidence header
// instead of a 502, and /readyz reports 200-degraded rather than 503.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stalecert/internal/ca"
	"stalecert/internal/certstore"
	"stalecert/internal/core"
	"stalecert/internal/crl"
	"stalecert/internal/ctlog"
	"stalecert/internal/dnsname"
	"stalecert/internal/dnssim"
	"stalecert/internal/monitor"
	"stalecert/internal/obs"
	"stalecert/internal/resil"
	"stalecert/internal/shard"
	"stalecert/internal/simtime"
	"stalecert/internal/staleapi"
	"stalecert/internal/whois"
	"stalecert/internal/x509sim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8786", "API listen address")
	storeDir := flag.String("store", "", "certificate store directory (required)")
	logURL := flag.String("log", "http://127.0.0.1:8784", "CT log base URL to tail")
	interval := flag.Duration("interval", 5*time.Second, "ingest sync interval")
	lagThreshold := flag.Uint64("lag-threshold", 0, "max entries behind the log head to count as ready")
	shards := flag.Int("shards", 0, "index shard count (0 = auto)")
	whoisAddr := flag.String("whois", "", "WHOIS server for registrant-change evidence (empty disables)")
	dnsAddr := flag.String("dns", "", "authoritative DNS for departure evidence (empty disables)")
	crlURL := flag.String("crl", "", "CRL server base URL for revocation evidence (empty disables)")
	now := flag.String("now", "2023-01-01", "evaluation day")
	marker := flag.String("marker", "cloudflaressl.com", "managed-TLS marker SAN suffix")
	cacheEntries := flag.Int("cache-entries", 1024, "staleness cache capacity")
	cacheTTL := flag.Duration("cache-ttl", 5*time.Second, "staleness cache TTL")
	shardFlag := flag.String("shard", "", "ring slice this replica ingests and serves, as i/N (empty = whole keyspace)")
	shardEpoch := flag.Uint64("shard-epoch", 1, "shard-map epoch (must match the gateway's -epoch)")
	shardVNodes := flag.Int("shard-vnodes", shard.DefaultVNodes, "virtual nodes per shard on the ring")
	obsFlags := obs.BindFlags(flag.CommandLine)
	var rf resil.Flags
	rf.BindFlags(flag.CommandLine)
	flag.Parse()

	logger, stopDebug := obsFlags.Setup("staleapid")
	if *storeDir == "" {
		logger.Error("missing required -store directory")
		os.Exit(2)
	}
	nowDay, err := simtime.Parse(*now)
	if err != nil {
		logger.Error("bad -now", "err", err)
		os.Exit(2)
	}

	// Readiness: the store (and its checkpoint, if any) must be loaded, and
	// the ingester must have synced to within -lag-threshold of the log
	// head. Served on both the API listener and the debug listener.
	cpReady := obs.NewReady("store not opened")
	caughtUp := obs.NewReady("ingester has not completed a sync")
	obs.DefaultHealth().Register("store-checkpoint", cpReady.Probe)
	obs.DefaultHealth().Register("ingest-caught-up", caughtUp.Probe)

	store, err := certstore.Open(certstore.Options{Dir: *storeDir, Shards: *shards})
	if err != nil {
		logger.Error("open store", "dir", *storeDir, "err", err)
		os.Exit(1)
	}
	defer store.Close()
	cpReady.OK()
	if cp, ok := store.Checkpoint(); ok {
		logger.Info("store opened", "dir", *storeDir, "certs", store.Len(),
			"segments", store.SegmentCount(), "resume_index", cp.NextIndex)
	} else {
		logger.Info("store opened (fresh)", "dir", *storeDir, "certs", store.Len(),
			"segments", store.SegmentCount())
	}

	// The ingest client is named after the daemon, not the peer: its call and
	// attempt spans then carry service="staleapid" in stitched fleet traces,
	// so a cross-daemon trace reads staleapid → ctlogd.
	ing := certstore.NewIngester(store, ctlog.NewClientWithOptions(*logURL, nil, rf.Options("staleapid")))
	var self *shard.Self
	if *shardFlag != "" {
		assign, err := shard.ParseAssignment(*shardFlag)
		if err != nil {
			logger.Error("bad -shard", "err", err)
			os.Exit(2)
		}
		ring, err := shard.NewRing(assign.Count, *shardVNodes)
		if err != nil {
			logger.Error("bad ring shape", "err", err)
			os.Exit(2)
		}
		// The ingester still tails (and Merkle-verifies) the whole log, but
		// persists only this replica's ring slice; the slice is pinned into
		// the store so a restart under a different -shard refuses to mix.
		ing.Keep = shard.KeepFunc(ring, store.PSL(), assign.Index)
		ing.Shard = &certstore.ShardConfig{
			Epoch:  *shardEpoch,
			Index:  assign.Index,
			Count:  assign.Count,
			VNodes: *shardVNodes,
			Hash:   shard.HashName,
		}
		self = &shard.Self{
			Version: shard.MapVersion,
			Epoch:   *shardEpoch,
			Hash:    shard.HashName,
			VNodes:  *shardVNodes,
			Shard:   assign,
		}
		logger.Info("sharded ingest", "shard", assign.String(), "epoch", *shardEpoch, "vnodes", *shardVNodes)
	}
	srv := staleapi.NewServer(staleapi.Config{
		Store:        store,
		Evidence:     liveEvidence(rf, *whoisAddr, *dnsAddr, *crlURL, *marker, nowDay),
		Now:          func() simtime.Day { return nowDay },
		CacheEntries: *cacheEntries,
		CacheTTL:     *cacheTTL,
		Shard:        self,
	})
	// Evidence failures degrade readiness (200 with a degraded body) rather
	// than flipping the daemon unready: queries still answer from last-good.
	obs.DefaultHealth().Register("evidence", srv.EvidenceProbe)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go ing.Run(ctx, *interval, func(added int, err error) {
		switch {
		case err != nil:
			logger.Error("ingest sync failed", "err", err)
			caughtUp.Fail(fmt.Errorf("last sync failed: %w", err))
		case ing.Lag() > *lagThreshold:
			caughtUp.Fail(fmt.Errorf("ingest lag %d entries exceeds threshold %d", ing.Lag(), *lagThreshold))
		default:
			if added > 0 {
				logger.Info("ingested", "added", added, "total", store.Len())
			}
			caughtUp.OK()
		}
	})

	handler := obs.Middleware(obs.Default(), "staleapid", srv.Handler())
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	logger.Info("serving staleness API", "addr", *addr, "log", *logURL)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Error("server failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		logger.Info("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			logger.Error("shutdown", "err", err)
		}
		_ = stopDebug(sctx)
	}
}

// liveEvidence builds the per-domain evidence gatherer from the configured
// sources, mirroring the live monitor's checks: a WHOIS creation date
// becomes a registrant-change event, a missing provider delegation becomes a
// departure on the evaluation day, and the CA directory's CRLs supply
// revocations. The shared core.DomainStaleness then applies the batch
// pipelines' filters, so the API's verdicts match staled's. CRL fetches run
// under the flags' retry budget (and chaos injection when seeded).
func liveEvidence(rf resil.Flags, whoisAddr, dnsAddr, crlURL, marker string, now simtime.Day) staleapi.EvidenceFunc {
	var resolver *dnssim.Resolver
	if dnsAddr != "" {
		resolver = &dnssim.Resolver{ServerAddr: dnsAddr, Timeout: 2 * time.Second}
	}
	isProviderRecord := func(r dnssim.Record) bool {
		switch r.Type {
		case dnssim.TypeNS:
			return dnsname.IsSubdomain(r.Data, "ns.cloudflare.com")
		case dnssim.TypeCNAME:
			return dnsname.IsSubdomain(r.Data, "cdn.cloudflare.com")
		}
		return false
	}
	var crlNames []string
	var fetcher *crl.Fetcher
	if crlURL != "" {
		for _, p := range ca.NewDirectory().All() {
			crlNames = append(crlNames, p.Name)
		}
		fetcher = &crl.Fetcher{Base: crlURL}
		if rf.RetryMax > 1 {
			fetcher.Retries = rf.RetryMax - 1
		}
		if opts := rf.Options("crl-fetcher"); opts.Chaos != nil {
			// The fetcher's own retry loop sits above the transport, so chaos
			// slots directly under the instrumented client.
			fetcher.HC = &http.Client{Transport: opts.Chaos.WithBase(nil)}
		}
	}
	return func(ctx context.Context, domain string) (core.DomainEvidence, error) {
		ev := core.DomainEvidence{
			RevocationCutoff: simtime.NoDay,
			IsManaged: func(c *x509sim.Certificate) bool {
				return monitor.HasProviderMarker(c, marker)
			},
		}
		if whoisAddr != "" {
			rec, err := whois.Query(ctx, whoisAddr, domain)
			switch {
			case err == nil:
				ev.ReRegistrations = append(ev.ReRegistrations,
					whois.ReRegistration{Domain: domain, NewCreation: rec.Created})
			case err != whois.ErrNoMatch:
				return ev, fmt.Errorf("whois %s: %w", domain, err)
			}
		}
		if crlURL != "" {
			lists, err := fetcher.FetchAll(ctx, crlNames)
			if err != nil {
				return ev, fmt.Errorf("crl fetch: %w", err)
			}
			for _, l := range lists {
				ev.Revocations = append(ev.Revocations, l.Entries...)
			}
		}
		if resolver != nil {
			delegated, err := providerDelegated(ctx, resolver, isProviderRecord, domain)
			if err != nil {
				return ev, err
			}
			if !delegated {
				ev.Departures = append(ev.Departures,
					dnssim.Departure{Domain: domain, LastSeen: now - 1, FirstGone: now})
			}
		}
		return ev, nil
	}
}

// providerDelegated mirrors the live monitor's delegation check: apex NS or
// www CNAME pointing at the provider.
func providerDelegated(ctx context.Context, resolver *dnssim.Resolver, isProvider func(dnssim.Record) bool, domain string) (bool, error) {
	for _, q := range []struct {
		name string
		typ  dnssim.RRType
	}{{domain, dnssim.TypeNS}, {"www." + domain, dnssim.TypeCNAME}} {
		recs, err := resolver.Query(ctx, q.name, q.typ)
		if err != nil {
			var nx *dnssim.NXDomainError
			if errors.As(err, &nx) {
				continue
			}
			return false, fmt.Errorf("dns %s %v: %w", q.name, q.typ, err)
		}
		for _, r := range recs {
			if isProvider(r) {
				return true, nil
			}
		}
	}
	return false, nil
}
