// Command whoisd serves thin WHOIS records over TCP in the port-43 style,
// backed by a simulated registry. A query client is built in (-query).
//
// Usage:
//
//	whoisd [-addr 127.0.0.1:4343] [-seed-domains N] [-debug-addr 127.0.0.1:0]
//	       [-trace-buffer 256] [-trace-sample 0.1] [-trace-slow 250ms]
//	       [-slo availability:99.9,latency:99:250ms] [-profile-dir DIR]
//	       [-latency-buckets 1ms,5ms,...] [-log-buffer 1024]
//	whoisd -query example000001.com [-server 127.0.0.1:4343]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stalecert/internal/obs"
	"stalecert/internal/registry"
	"stalecert/internal/simtime"
	"stalecert/internal/whois"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4343", "TCP listen address")
	seedDomains := flag.Int("seed-domains", 100, "synthetic registrations to seed")
	query := flag.String("query", "", "query a domain against -server instead of serving")
	server := flag.String("server", "127.0.0.1:4343", "server address for -query")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	logger, stopDebug := obsFlags.Setup("whoisd")

	if *query != "" {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		rec, err := whois.Query(ctx, *server, *query)
		if err != nil {
			logger.Error("query failed", "domain", *query, "err", err)
			os.Exit(1)
		}
		fmt.Print(rec.Format())
		return
	}

	ready := obs.NewReady("registry not yet seeded")
	obs.DefaultHealth().Register("registry-seeded", ready.Probe)

	reg := registry.New("com", "net")
	base := simtime.MustParse("2021-01-01")
	for i := 0; i < *seedDomains; i++ {
		name := fmt.Sprintf("example%06d.com", i+1)
		if _, err := reg.Register(name, fmt.Sprintf("registrant-%d", i+1), "GoDaddy",
			base+simtime.Day(i%365), 1); err != nil {
			logger.Error("seed registration failed", "domain", name, "err", err)
			os.Exit(1)
		}
	}
	reg.Tick(base + 400)

	srv := whois.NewServer(&whois.RegistrySource{Registry: reg})
	bound, err := srv.Start(*addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	ready.OK()
	logger.Info("serving WHOIS", "domains", *seedDomains, "addr", bound.String())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	logger.Info("shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		logger.Error("shutdown", "err", err)
	}
	_ = stopDebug(sctx)
}
