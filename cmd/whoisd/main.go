// Command whoisd serves thin WHOIS records over TCP in the port-43 style,
// backed by a simulated registry. A query client is built in (-query).
//
// Usage:
//
//	whoisd [-addr 127.0.0.1:4343] [-seed-domains N]
//	whoisd -query example000001.com [-server 127.0.0.1:4343]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"stalecert/internal/registry"
	"stalecert/internal/simtime"
	"stalecert/internal/whois"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4343", "TCP listen address")
	seedDomains := flag.Int("seed-domains", 100, "synthetic registrations to seed")
	query := flag.String("query", "", "query a domain against -server instead of serving")
	server := flag.String("server", "127.0.0.1:4343", "server address for -query")
	flag.Parse()

	if *query != "" {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		rec, err := whois.Query(ctx, *server, *query)
		if err != nil {
			log.Fatalf("whoisd: %v", err)
		}
		fmt.Print(rec.Format())
		return
	}

	reg := registry.New("com", "net")
	base := simtime.MustParse("2021-01-01")
	for i := 0; i < *seedDomains; i++ {
		name := fmt.Sprintf("example%06d.com", i+1)
		if _, err := reg.Register(name, fmt.Sprintf("registrant-%d", i+1), "GoDaddy",
			base+simtime.Day(i%365), 1); err != nil {
			log.Fatalf("seed: %v", err)
		}
	}
	reg.Tick(base + 400)

	srv := whois.NewServer(&whois.RegistrySource{Registry: reg})
	bound, err := srv.Start(*addr)
	if err != nil {
		log.Fatalf("whoisd: %v", err)
	}
	fmt.Fprintf(os.Stderr, "whoisd: serving %d domains on %s\n", *seedDomains, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	_ = srv.Close()
}
