// Command ctscan scrapes a CT log over HTTP, verifying the signed tree head
// (and optionally every entry's inclusion proof), and prints a summary or
// the full entry list.
//
// Usage:
//
//	ctscan -log http://127.0.0.1:8784 [-from N] [-verify] [-print]
//	       [-retry-max 4] [-breaker-threshold 0.5] [-chaos-seed 0]
//	       [-trace-buffer 256] [-trace-sample 0.1] [-trace-slow 250ms]
//	       [-slo availability:99.9,latency:99:250ms] [-profile-dir DIR]
//	       [-latency-buckets 1ms,5ms,...] [-log-buffer 1024]
//
// Scrapes go through the resilience layer: transient log failures (connection
// resets, 5xx, torn bodies) are retried with backoff before the scrape fails.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"stalecert/internal/core"
	"stalecert/internal/ctlog"
	"stalecert/internal/obs"
	"stalecert/internal/resil"
	"stalecert/internal/x509sim"
)

func main() {
	logURL := flag.String("log", "http://127.0.0.1:8784", "base URL of the CT log")
	from := flag.Uint64("from", 0, "resume scraping at this entry index")
	verify := flag.Bool("verify", false, "audit every entry's inclusion proof against the STH")
	print := flag.Bool("print", false, "print each entry")
	save := flag.String("save", "", "save scraped certificates to a corpus file")
	timeout := flag.Duration("timeout", 30*time.Second, "overall scrape timeout")
	obsFlags := obs.BindFlags(flag.CommandLine)
	var rf resil.Flags
	rf.BindFlags(flag.CommandLine)
	flag.Parse()

	logger, stopDebug := obsFlags.Setup("ctscan")
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		_ = stopDebug(sctx)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	client := ctlog.NewClientWithOptions(*logURL, nil, rf.Options("ctscan"))
	entries, sth, err := client.Scrape(ctx, ctlog.ScrapeOptions{From: *from, VerifyInclusion: *verify})
	if err != nil {
		logger.Error("scrape failed", "log", *logURL, "err", err)
		os.Exit(1)
	}

	logger.Info("scraped log", "name", sth.LogName, "size", sth.Size,
		"root", sth.Root.String(), "scraped", len(entries), "verified", *verify)
	if *print {
		for _, e := range entries {
			fmt.Printf("%8d  %s  %v\n", e.Index, e.Timestamp, e.Cert.Names)
		}
	}

	// Per-issuer summary.
	byIssuer := map[uint16]int{}
	precerts := 0
	for _, e := range entries {
		byIssuer[uint16(e.Cert.Issuer)]++
		if e.Cert.Precert {
			precerts++
		}
	}
	fmt.Printf("entries: %d (%d precerts) across %d issuers\n", len(entries), precerts, len(byIssuer))

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			logger.Error("create corpus file", "path", *save, "err", err)
			os.Exit(1)
		}
		defer f.Close()
		certs := make([]*x509sim.Certificate, len(entries))
		for i, e := range entries {
			certs[i] = e.Cert
		}
		if err := core.WriteCerts(f, certs); err != nil {
			logger.Error("save corpus", "path", *save, "err", err)
			os.Exit(1)
		}
		logger.Info("wrote corpus", "certs", len(certs), "path", *save)
	}
}
