// Command ctlogd serves an RFC 6962-style Certificate Transparency log over
// HTTP: add-chain, get-sth, get-entries, get-proof-by-hash and
// get-sth-consistency under /ct/v1/.
//
// Usage:
//
//	ctlogd [-addr :8784] [-name mylog] [-shard-start 2022-01-01 -shard-end 2023-01-01] [-seed-entries N]
//
// With -seed-entries the log is pre-populated with synthetic certificates so
// ctscan has something to fetch.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"stalecert/internal/ctlog"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8784", "listen address")
	name := flag.String("name", "stalecert-log", "log name")
	shardStart := flag.String("shard-start", "", "shard start date (YYYY-MM-DD); empty = unsharded")
	shardEnd := flag.String("shard-end", "", "shard end date (YYYY-MM-DD, exclusive)")
	seedEntries := flag.Int("seed-entries", 0, "pre-populate with N synthetic certificates")
	now := flag.String("now", "2023-01-01", "simulated current day for SCT timestamps")
	flag.Parse()

	var shard ctlog.Shard
	if *shardStart != "" || *shardEnd != "" {
		s, err := simtime.Parse(*shardStart)
		if err != nil {
			log.Fatalf("bad -shard-start: %v", err)
		}
		e, err := simtime.Parse(*shardEnd)
		if err != nil {
			log.Fatalf("bad -shard-end: %v", err)
		}
		shard = ctlog.Shard{Start: s, End: e}
	}
	nowDay, err := simtime.Parse(*now)
	if err != nil {
		log.Fatalf("bad -now: %v", err)
	}

	l := ctlog.New(*name, shard)
	srv := ctlog.NewServer(l)
	srv.SetNow(nowDay)

	for i := 0; i < *seedEntries; i++ {
		cert, err := x509sim.New(
			x509sim.SerialNumber(i+1), 1, x509sim.KeyID(i+1),
			[]string{fmt.Sprintf("seed%06d.example.com", i)},
			nowDay-30, nowDay+60,
		)
		if err != nil {
			log.Fatalf("seed cert: %v", err)
		}
		if _, err := l.AddChain(cert, nowDay-simtime.Day(i%30)); err != nil {
			log.Fatalf("seed add-chain: %v", err)
		}
	}

	sth := l.STH()
	fmt.Fprintf(os.Stderr, "ctlogd: serving log %q (shard %s, size %d) on %s\n",
		l.Name(), l.Shard(), sth.Size, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
