// Command ctlogd serves an RFC 6962-style Certificate Transparency log over
// HTTP: add-chain, get-sth, get-entries, get-proof-by-hash and
// get-sth-consistency under /ct/v1/.
//
// Usage:
//
//	ctlogd [-addr :8784] [-name mylog] [-shard-start 2022-01-01 -shard-end 2023-01-01]
//	       [-seed-entries N] [-seed-domains 1] [-debug-addr 127.0.0.1:0]
//	       [-log-format text|json] [-chaos-seed 0]
//	       [-trace-buffer 256] [-trace-sample 0.1] [-trace-slow 250ms]
//	       [-slo availability:99.9,latency:99:250ms] [-profile-dir DIR]
//	       [-latency-buckets 1ms,5ms,...] [-log-buffer 1024]
//
// A non-zero -chaos-seed wraps the listener in resil.NewChaosListener, which
// drops a deterministic fraction of accepted connections — server-side fault
// injection for exercising client reconnect paths in acceptance tests.
//
// With -seed-entries the log is pre-populated with synthetic certificates so
// ctscan has something to fetch.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stalecert/internal/ctlog"
	"stalecert/internal/obs"
	"stalecert/internal/resil"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8784", "listen address")
	name := flag.String("name", "stalecert-log", "log name")
	shardStart := flag.String("shard-start", "", "shard start date (YYYY-MM-DD); empty = unsharded")
	shardEnd := flag.String("shard-end", "", "shard end date (YYYY-MM-DD, exclusive)")
	seedEntries := flag.Int("seed-entries", 0, "pre-populate with N synthetic certificates")
	seedDomains := flag.Int("seed-domains", 1, "spread seeded certificates across N distinct e2LDs (1 = all under example.com)")
	now := flag.String("now", "2023-01-01", "simulated current day for SCT timestamps")
	obsFlags := obs.BindFlags(flag.CommandLine)
	var rf resil.Flags
	rf.BindFlags(flag.CommandLine)
	flag.Parse()

	logger, stopDebug := obsFlags.Setup("ctlogd")
	ready := obs.NewReady("ct tree not yet seeded")
	obs.DefaultHealth().Register("ct-tree-loaded", ready.Probe)

	var shard ctlog.Shard
	if *shardStart != "" || *shardEnd != "" {
		s, err := simtime.Parse(*shardStart)
		if err != nil {
			logger.Error("bad -shard-start", "err", err)
			os.Exit(2)
		}
		e, err := simtime.Parse(*shardEnd)
		if err != nil {
			logger.Error("bad -shard-end", "err", err)
			os.Exit(2)
		}
		shard = ctlog.Shard{Start: s, End: e}
	}
	nowDay, err := simtime.Parse(*now)
	if err != nil {
		logger.Error("bad -now", "err", err)
		os.Exit(2)
	}

	l := ctlog.New(*name, shard)
	srv := ctlog.NewServer(l)
	srv.SetNow(nowDay)

	for i := 0; i < *seedEntries; i++ {
		// One e2LD by default (the historical seed%06d.example.com shape);
		// -seed-domains > 1 spreads SANs across distinct registrable domains
		// so Zipf-distributed load (cmd/staleload) has a population to skew.
		name := fmt.Sprintf("seed%06d.example.com", i)
		if *seedDomains > 1 {
			name = fmt.Sprintf("seed%06d.example-%03d.com", i, i%*seedDomains)
		}
		cert, err := x509sim.New(
			x509sim.SerialNumber(i+1), 1, x509sim.KeyID(i+1),
			[]string{name},
			nowDay-30, nowDay+60,
		)
		if err != nil {
			logger.Error("seed cert", "err", err)
			os.Exit(1)
		}
		if _, err := l.AddChain(cert, nowDay-simtime.Day(i%30)); err != nil {
			logger.Error("seed add-chain", "err", err)
			os.Exit(1)
		}
	}

	sth := l.STH()
	ready.OK()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen", "addr", *addr, "err", err)
		os.Exit(1)
	}
	if rf.ChaosSeed != 0 {
		logger.Warn("chaos listener active", "seed", rf.ChaosSeed, "drop_rate", 0.2)
		ln = resil.NewChaosListener(ln, rf.ChaosSeed, 0.2)
	}
	logger.Info("serving CT log", "name", l.Name(), "shard", l.Shard().String(),
		"size", sth.Size, "addr", ln.Addr().String())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	handler := obs.Middleware(obs.Default(), "ctlogd", srv.Handler())
	httpSrv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Error("server failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		logger.Info("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			logger.Error("shutdown", "err", err)
		}
		_ = stopDebug(sctx)
	}
}
