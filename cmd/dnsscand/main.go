// Command dnsscand is the active-DNS half of the pipeline: it can serve an
// authoritative zone over UDP (-serve) and scan a domain list against a DNS
// server (-scan), printing each domain's A/AAAA/NS/CNAME records and whether
// it is delegated to a Cloudflare-style managed-TLS provider.
//
// Usage:
//
//	dnsscand -serve -zonefile com.zone [-addr 127.0.0.1:5353]
//	dnsscand -scan -server 127.0.0.1:5353 -domains example.com,foo.com
//
// Both modes accept the shared observability flags (-debug-addr, -log-format,
// -log-level, -trace-buffer, -trace-sample, -trace-slow, -slo, -slo-interval,
// -profile-dir, -latency-buckets, -log-buffer).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"stalecert/internal/dnsname"
	"stalecert/internal/dnssim"
	"stalecert/internal/obs"
)

func main() {
	serve := flag.Bool("serve", false, "serve a zone over UDP")
	zonefile := flag.String("zonefile", "", "zone file to serve (master-file subset)")
	apex := flag.String("apex", "com", "zone apex for -serve")
	addr := flag.String("addr", "127.0.0.1:5353", "UDP listen address for -serve")

	scan := flag.Bool("scan", false, "scan domains against a server")
	server := flag.String("server", "127.0.0.1:5353", "DNS server address for -scan")
	domains := flag.String("domains", "", "comma-separated domain list for -scan")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	logger, stopDebug := obsFlags.Setup("dnsscand")
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = stopDebug(ctx)
	}()

	switch {
	case *serve:
		runServe(logger, *zonefile, *apex, *addr)
	case *scan:
		runScan(logger, *server, *domains)
	default:
		fmt.Fprintln(os.Stderr, "dnsscand: pass -serve or -scan")
		os.Exit(2)
	}
}

func runServe(logger *slog.Logger, zonefile, apex, addr string) {
	ready := obs.NewReady("zone not yet loaded")
	obs.DefaultHealth().Register("zone-loaded", ready.Probe)

	var zone *dnssim.Zone
	if zonefile == "" {
		// Demo zone with one self-hosted and one CDN-delegated domain.
		zone = dnssim.NewZone(apex)
		for _, r := range []dnssim.Record{
			{Name: "self." + apex, Type: dnssim.TypeNS, TTL: 86400, Data: "ns1.hoster.net"},
			{Name: "self." + apex, Type: dnssim.TypeA, TTL: 300, Data: "198.51.100.7"},
			{Name: "cdn." + apex, Type: dnssim.TypeNS, TTL: 86400, Data: "kiki.ns.cloudflare.com"},
			{Name: "www.cdn." + apex, Type: dnssim.TypeCNAME, TTL: 300, Data: "cdn-" + apex + ".cdn.cloudflare.com"},
		} {
			if err := zone.Add(r); err != nil {
				logger.Error("demo zone", "err", err)
				os.Exit(1)
			}
		}
	} else {
		text, err := os.ReadFile(zonefile)
		if err != nil {
			logger.Error("read zone file", "err", err)
			os.Exit(1)
		}
		zone, err = dnssim.ParseZoneFile(apex, string(text))
		if err != nil {
			logger.Error("parse zone file", "err", err)
			os.Exit(1)
		}
	}

	store := dnssim.NewStore()
	store.AddZone(zone)
	srv := dnssim.NewServer(store)
	bound, err := srv.Start(addr)
	if err != nil {
		logger.Error("listen failed", "addr", addr, "err", err)
		os.Exit(1)
	}
	ready.OK()
	logger.Info("serving zone", "apex", zone.Apex, "records", zone.Len(), "addr", bound.String())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	logger.Info("shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		logger.Error("shutdown", "err", err)
	}
}

func runScan(logger *slog.Logger, server, domainList string) {
	if domainList == "" {
		logger.Error("-scan requires -domains")
		os.Exit(2)
	}
	var list []string
	for _, d := range strings.Split(domainList, ",") {
		list = append(list, dnsname.Canonical(strings.TrimSpace(d)))
	}

	r := &dnssim.Resolver{ServerAddr: server, Timeout: 2 * time.Second}
	ws := &dnssim.WireScanner{Resolver: r}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	snap, err := ws.Scan(ctx, 0, list)
	if err != nil {
		logger.Error("scan failed", "err", err)
		os.Exit(1)
	}

	isCF := func(rec dnssim.Record) bool {
		switch rec.Type {
		case dnssim.TypeNS:
			return dnsname.IsSubdomain(rec.Data, "ns.cloudflare.com")
		case dnssim.TypeCNAME:
			return dnsname.IsSubdomain(rec.Data, "cdn.cloudflare.com")
		}
		return false
	}
	for _, d := range list {
		if !snap.Scanned(d) {
			fmt.Printf("%-30s UNREACHABLE\n", d)
			continue
		}
		tag := "self"
		if snap.Matches(d, isCF) {
			tag = "managed-tls"
		}
		fmt.Printf("%-30s %-12s %d records\n", d, tag, len(snap.Records(d)))
		for _, rec := range snap.Records(d) {
			fmt.Printf("    %s\n", rec)
		}
	}
	counts := snap.CountByType()
	fmt.Printf("totals: A=%d AAAA=%d NS=%d CNAME=%d\n",
		counts[dnssim.TypeA], counts[dnssim.TypeAAAA], counts[dnssim.TypeNS], counts[dnssim.TypeCNAME])
}
