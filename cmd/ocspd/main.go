// Command ocspd serves OCSP-style certificate status over HTTP (POST /ocsp),
// backed by the built-in CA directory with synthetic revocations — the
// online half of the revocation infrastructure that §2.4 shows clients
// bypassing.
//
// Usage:
//
//	ocspd [-addr 127.0.0.1:8786] [-seed-revocations N] [-now 2023-01-01]
//	      [-debug-addr 127.0.0.1:0] [-log-format text|json]
//	      [-trace-buffer 256] [-trace-sample 0.1] [-trace-slow 250ms]
//	      [-slo availability:99.9,latency:99:250ms] [-profile-dir DIR]
//	      [-latency-buckets 1ms,5ms,...] [-log-buffer 1024]
package main

import (
	"context"
	"errors"
	"flag"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stalecert/internal/ca"
	"stalecert/internal/crl"
	"stalecert/internal/obs"
	"stalecert/internal/revcheck"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8786", "listen address")
	seedRevocations := flag.Int("seed-revocations", 100, "synthetic revocations per CA")
	now := flag.String("now", "2023-01-01", "simulated current day (producedAt)")
	seed := flag.Int64("seed", 1, "randomness seed")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	logger, stopDebug := obsFlags.Setup("ocspd")
	ready := obs.NewReady("responder not yet seeded")
	obs.DefaultHealth().Register("responder-seeded", ready.Probe)

	nowDay, err := simtime.Parse(*now)
	if err != nil {
		logger.Error("bad -now", "err", err)
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	auths := make(map[x509sim.IssuerID]*crl.Authority)
	reasons := []crl.Reason{crl.KeyCompromise, crl.Superseded, crl.CessationOfOperation, crl.Unspecified}
	for _, p := range ca.NewDirectory().All() {
		a := crl.NewAuthority(p.Name)
		for i := 0; i < *seedRevocations; i++ {
			a.Revoke(p.ID, x509sim.SerialNumber(i+1),
				nowDay-simtime.Day(rng.Intn(365)), reasons[rng.Intn(len(reasons))])
		}
		auths[p.ID] = a
	}

	responder := &revcheck.OCSPResponder{Authorities: auths}
	responder.SetNow(nowDay)
	ready.OK()
	logger.Info("serving OCSP", "cas", len(auths), "addr", *addr, "endpoint", "POST /ocsp")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	handler := obs.Middleware(obs.Default(), "ocspd", responder.Handler())
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Error("server failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		logger.Info("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			logger.Error("shutdown", "err", err)
		}
		_ = stopDebug(sctx)
	}
}
