// Command ocspd serves OCSP-style certificate status over HTTP (POST /ocsp),
// backed by the built-in CA directory with synthetic revocations — the
// online half of the revocation infrastructure that §2.4 shows clients
// bypassing.
//
// Usage:
//
//	ocspd [-addr 127.0.0.1:8786] [-seed-revocations N] [-now 2023-01-01]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"

	"stalecert/internal/ca"
	"stalecert/internal/crl"
	"stalecert/internal/revcheck"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8786", "listen address")
	seedRevocations := flag.Int("seed-revocations", 100, "synthetic revocations per CA")
	now := flag.String("now", "2023-01-01", "simulated current day (producedAt)")
	seed := flag.Int64("seed", 1, "randomness seed")
	flag.Parse()

	nowDay, err := simtime.Parse(*now)
	if err != nil {
		log.Fatalf("ocspd: bad -now: %v", err)
	}

	rng := rand.New(rand.NewSource(*seed))
	auths := make(map[x509sim.IssuerID]*crl.Authority)
	reasons := []crl.Reason{crl.KeyCompromise, crl.Superseded, crl.CessationOfOperation, crl.Unspecified}
	for _, p := range ca.NewDirectory().All() {
		a := crl.NewAuthority(p.Name)
		for i := 0; i < *seedRevocations; i++ {
			a.Revoke(p.ID, x509sim.SerialNumber(i+1),
				nowDay-simtime.Day(rng.Intn(365)), reasons[rng.Intn(len(reasons))])
		}
		auths[p.ID] = a
	}

	responder := &revcheck.OCSPResponder{Authorities: auths}
	responder.SetNow(nowDay)
	fmt.Fprintf(os.Stderr, "ocspd: serving %d CAs on %s (POST /ocsp)\n", len(auths), *addr)
	log.Fatal(http.ListenAndServe(*addr, responder.Handler()))
}
