// Command stalestat is the fleet query client: it asks obsagg's /fleet/query
// endpoint expression questions and renders the answers in a terminal.
//
// Two modes:
//
//	stalestat [-agg URL] query '<expr>' [-time T] [-start T -end T -step D]
//	    one-shot: print the raw JSON answer (Prometheus HTTP API shape) to
//	    stdout and exit 0 on success, 1 on any error — for scripts and CI.
//
//	stalestat [-agg URL] top [-interval 2s] [-count N] [-window 30s] [-plain]
//	    a top-style live fleet view: one row per job with QPS, error rate,
//	    p50/p99 server latency, SLO burn rate and open circuit breakers,
//	    refreshed every -interval. -count bounds the frames (0 = forever);
//	    -plain skips the ANSI screen clearing for logs and non-TTYs.
//
// Examples:
//
//	stalestat query 'sum by (job) (rate(http_requests_total[1m]))'
//	stalestat query 'histogram_quantile(0.99, sum by (le) (rate(http_request_seconds_bucket[5m])))'
//	stalestat -agg http://127.0.0.1:8790 top -interval 1s -count 10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

func main() {
	agg := flag.String("agg", "http://127.0.0.1:8790", "obsagg base URL")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	var err error
	switch args[0] {
	case "query":
		err = runQuery(*agg, args[1:])
	case "top":
		err = runTop(*agg, args[1:])
	default:
		fmt.Fprintf(os.Stderr, "stalestat: unknown command %q\n", args[0])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "stalestat:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  stalestat [-agg URL] query '<expr>' [-time T] [-start T -end T -step D]
  stalestat [-agg URL] top [-interval 2s] [-count N] [-window 30s] [-plain]
`)
}

// queryResponse mirrors the /fleet/query answer shape.
type queryResponse struct {
	Status string `json:"status"`
	Error  string `json:"error"`
	Data   struct {
		ResultType string          `json:"resultType"`
		Result     json.RawMessage `json:"result"`
	} `json:"data"`
}

func fetch(aggURL, query string, params url.Values) (*queryResponse, []byte, error) {
	if params == nil {
		params = url.Values{}
	}
	params.Set("query", query)
	u := strings.TrimSuffix(aggURL, "/") + "/fleet/query?" + params.Encode()
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(u)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, nil, err
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		return nil, body, fmt.Errorf("bad response (%d): %v", resp.StatusCode, err)
	}
	if qr.Status != "success" {
		return &qr, body, fmt.Errorf("query failed: %s", qr.Error)
	}
	return &qr, body, nil
}

func runQuery(agg string, args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	at := fs.String("time", "", "instant query evaluation time (unix seconds or RFC3339; default now)")
	start := fs.String("start", "", "range query start")
	end := fs.String("end", "", "range query end")
	step := fs.String("step", "", "range query step (e.g. 15s)")
	// Accept both `query <expr> -time T` and `query -time T <expr>`.
	var rest []string
	var expr string
	for _, a := range args {
		if expr == "" && !strings.HasPrefix(a, "-") && len(rest)%2 == 0 {
			expr = a
			continue
		}
		rest = append(rest, a)
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if expr == "" && fs.NArg() > 0 {
		expr = fs.Arg(0)
	}
	if expr == "" {
		return fmt.Errorf("query needs an expression argument")
	}
	params := url.Values{}
	if *at != "" {
		params.Set("time", *at)
	}
	if *start != "" || *end != "" {
		params.Set("start", *start)
		params.Set("end", *end)
		if *step != "" {
			params.Set("step", *step)
		}
	}
	_, body, err := fetch(agg, expr, params)
	if body != nil {
		os.Stdout.Write(body)
		if len(body) > 0 && body[len(body)-1] != '\n' {
			fmt.Println()
		}
	}
	return err
}

// vectorResult decodes a vector answer into label-set → value.
type vectorEntry struct {
	Metric map[string]string `json:"metric"`
	Value  [2]any            `json:"value"`
}

func vectorByJob(qr *queryResponse) map[string]float64 {
	out := map[string]float64{}
	if qr == nil || qr.Data.ResultType != "vector" {
		return out
	}
	var entries []vectorEntry
	if err := json.Unmarshal(qr.Data.Result, &entries); err != nil {
		return out
	}
	for _, e := range entries {
		s, ok := e.Value[1].(string)
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			continue
		}
		out[e.Metric["job"]] = v
	}
	return out
}

type topRow struct {
	job          string
	qps, errRate float64
	p50, p99     float64
	burn         float64
	openBreakers float64
}

// topQueries gathers one frame of the fleet view.
func topQueries(agg, window string) ([]topRow, error) {
	q := func(expr string) (map[string]float64, error) {
		qr, _, err := fetch(agg, expr, nil)
		if err != nil {
			return nil, err
		}
		return vectorByJob(qr), nil
	}
	qps, err := q(`sum by (job) (rate(http_requests_total[` + window + `]))`)
	if err != nil {
		return nil, err // the first query reports connectivity problems
	}
	errRate, _ := q(`sum by (job) (rate(http_requests_total{code="5xx"}[` + window + `])) / sum by (job) (rate(http_requests_total[` + window + `]))`)
	p50, _ := q(`histogram_quantile(0.5, sum by (job, le) (rate(http_request_seconds_bucket[` + window + `])))`)
	p99, _ := q(`histogram_quantile(0.99, sum by (job, le) (rate(http_request_seconds_bucket[` + window + `])))`)
	burn, _ := q(`max by (job) (slo_burn_rate)`)
	breakers, _ := q(`sum by (job) (resil_breaker_state == 1)`)

	jobs := map[string]bool{}
	for _, m := range []map[string]float64{qps, errRate, p50, p99, burn, breakers} {
		for j := range m {
			jobs[j] = true
		}
	}
	rows := make([]topRow, 0, len(jobs))
	for j := range jobs {
		rows = append(rows, topRow{job: j, qps: qps[j], errRate: errRate[j],
			p50: p50[j], p99: p99[j], burn: burn[j], openBreakers: breakers[j]})
	}
	sort.Slice(rows, func(i, k int) bool { return rows[i].job < rows[k].job })
	return rows, nil
}

func fmtLatency(secs float64) string {
	if secs == 0 || math.IsNaN(secs) {
		return "-"
	}
	return time.Duration(secs * float64(time.Second)).Round(10 * time.Microsecond).String()
}

func fmtRate(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return strconv.FormatFloat(v, 'f', 1, 64)
}

func renderTop(w io.Writer, agg string, rows []topRow, frame int) {
	fmt.Fprintf(w, "stalestat top — %s — frame %d — %s\n\n", agg, frame, time.Now().Format(time.TimeOnly))
	fmt.Fprintf(w, "%-12s %10s %8s %12s %12s %8s %9s\n",
		"JOB", "QPS", "ERR%", "P50", "P99", "BURN", "OPEN-BRK")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %10s %8s %12s %12s %8s %9.0f\n",
			r.job, fmtRate(r.qps), fmtRate(r.errRate*100),
			fmtLatency(r.p50), fmtLatency(r.p99), fmtRate(r.burn), r.openBreakers)
	}
	if len(rows) == 0 {
		fmt.Fprintln(w, "(no jobs — is obsagg scraping yet?)")
	}
}

func runTop(agg string, args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	count := fs.Int("count", 0, "frames to render before exiting (0 = forever)")
	window := fs.Duration("window", 30*time.Second, "rate window for QPS/error/latency queries")
	plain := fs.Bool("plain", false, "no ANSI clear between frames (for logs and CI)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	win := window.String()
	for frame := 1; ; frame++ {
		rows, err := topQueries(agg, win)
		if err != nil {
			return err
		}
		if !*plain {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		renderTop(os.Stdout, agg, rows, frame)
		if *count > 0 && frame >= *count {
			return nil
		}
		time.Sleep(*interval)
	}
}
