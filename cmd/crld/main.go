// Command crld serves certificate revocation lists for a set of CAs over
// HTTP at /crl/{ca}, optionally simulating the scrape protections some
// production distribution points run.
//
// Usage:
//
//	crld [-addr :8785] [-seed-revocations N] [-fail-rate 0.02] [-now 2023-01-01]
//	     [-debug-addr 127.0.0.1:0] [-log-format text|json] [-chaos-seed 0]
//	     [-trace-buffer 256] [-trace-sample 0.1] [-trace-slow 250ms]
//	     [-slo availability:99.9,latency:99:250ms] [-profile-dir DIR]
//	     [-latency-buckets 1ms,5ms,...] [-log-buffer 1024]
//
// A non-zero -chaos-seed wraps the listener in resil.NewChaosListener,
// dropping a deterministic fraction of accepted connections on top of the
// application-level -fail-rate 403s.
//
// The server hosts the reproduction's built-in CA directory; each CA is
// seeded with synthetic revocations across the standard reason codes.
package main

import (
	"context"
	"errors"
	"flag"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stalecert/internal/ca"
	"stalecert/internal/crl"
	"stalecert/internal/obs"
	"stalecert/internal/resil"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8785", "listen address")
	seedRevocations := flag.Int("seed-revocations", 100, "synthetic revocations per CA")
	failRate := flag.Float64("fail-rate", 0.02, "per-request scrape-protection failure probability")
	now := flag.String("now", "2023-01-01", "simulated current day (CRL thisUpdate)")
	seed := flag.Int64("seed", 1, "randomness seed")
	obsFlags := obs.BindFlags(flag.CommandLine)
	var rf resil.Flags
	rf.BindFlags(flag.CommandLine)
	flag.Parse()

	logger, stopDebug := obsFlags.Setup("crld")
	ready := obs.NewReady("CA directory not yet parsed")
	obs.DefaultHealth().Register("ca-directory-parsed", ready.Probe)

	nowDay, err := simtime.Parse(*now)
	if err != nil {
		logger.Error("bad -now", "err", err)
		os.Exit(2)
	}

	srv := crl.NewServer(*seed)
	srv.SetNow(nowDay)
	rng := rand.New(rand.NewSource(*seed))

	reasons := []crl.Reason{
		crl.KeyCompromise, crl.Superseded, crl.CessationOfOperation,
		crl.AffiliationChanged, crl.PrivilegeWithdrawn, crl.Unspecified,
	}
	dir := ca.NewDirectory()
	for _, p := range dir.All() {
		a := crl.NewAuthority(p.Name)
		for i := 0; i < *seedRevocations; i++ {
			a.Revoke(p.ID, x509sim.SerialNumber(i+1),
				nowDay-simtime.Day(rng.Intn(365)), reasons[rng.Intn(len(reasons))])
		}
		srv.Host(a, *failRate)
	}

	ready.OK()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen", "addr", *addr, "err", err)
		os.Exit(1)
	}
	if rf.ChaosSeed != 0 {
		logger.Warn("chaos listener active", "seed", rf.ChaosSeed, "drop_rate", 0.2)
		ln = resil.NewChaosListener(ln, rf.ChaosSeed, 0.2)
	}
	logger.Info("serving CRLs", "cas", len(srv.Names()), "addr", ln.Addr().String(), "fail_rate", *failRate)
	for _, n := range srv.Names() {
		logger.Debug("hosting", "path", "/crl/"+n)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	handler := obs.Middleware(obs.Default(), "crld", srv.Handler())
	httpSrv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Error("server failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		logger.Info("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			logger.Error("shutdown", "err", err)
		}
		_ = stopDebug(sctx)
	}
}
