// Command crld serves certificate revocation lists for a set of CAs over
// HTTP at /crl/{ca}, optionally simulating the scrape protections some
// production distribution points run.
//
// Usage:
//
//	crld [-addr :8785] [-seed-revocations N] [-fail-rate 0.02] [-now 2023-01-01]
//
// The server hosts the reproduction's built-in CA directory; each CA is
// seeded with synthetic revocations across the standard reason codes.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"

	"stalecert/internal/ca"
	"stalecert/internal/crl"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8785", "listen address")
	seedRevocations := flag.Int("seed-revocations", 100, "synthetic revocations per CA")
	failRate := flag.Float64("fail-rate", 0.02, "per-request scrape-protection failure probability")
	now := flag.String("now", "2023-01-01", "simulated current day (CRL thisUpdate)")
	seed := flag.Int64("seed", 1, "randomness seed")
	flag.Parse()

	nowDay, err := simtime.Parse(*now)
	if err != nil {
		log.Fatalf("bad -now: %v", err)
	}

	srv := crl.NewServer(*seed)
	srv.SetNow(nowDay)
	rng := rand.New(rand.NewSource(*seed))

	reasons := []crl.Reason{
		crl.KeyCompromise, crl.Superseded, crl.CessationOfOperation,
		crl.AffiliationChanged, crl.PrivilegeWithdrawn, crl.Unspecified,
	}
	dir := ca.NewDirectory()
	for _, p := range dir.All() {
		a := crl.NewAuthority(p.Name)
		for i := 0; i < *seedRevocations; i++ {
			a.Revoke(p.ID, x509sim.SerialNumber(i+1),
				nowDay-simtime.Day(rng.Intn(365)), reasons[rng.Intn(len(reasons))])
		}
		srv.Host(a, *failRate)
	}

	fmt.Fprintf(os.Stderr, "crld: serving %d CAs on %s (fail-rate %.2f)\n", len(srv.Names()), *addr, *failRate)
	for _, n := range srv.Names() {
		fmt.Fprintf(os.Stderr, "  /crl/%s\n", n)
	}
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
