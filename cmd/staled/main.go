// Command staled runs the full stale-certificate measurement pipeline over a
// simulated world and prints a compact report: dataset sizes, Table 4 daily
// rates, staleness medians, survival at 90 days, and the 90-day-cap headline.
//
// Usage:
//
//	staled [-scale quick|test|full] [-seed N] [-json] [-debug-addr 127.0.0.1:0]
//	       [-trace-buffer 256] [-trace-sample 0.1] [-trace-slow 250ms]
//	       [-slo availability:99.9,latency:99:250ms] [-profile-dir DIR]
//	       [-latency-buckets 1ms,5ms,...] [-log-buffer 1024]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"stalecert"
	"stalecert/internal/core"
	"stalecert/internal/obs"
	"stalecert/internal/simtime"
)

type jsonReport struct {
	Domains      int                `json:"domains"`
	Stages       obs.StageJSON      `json:"stages"`
	Certificates int                `json:"certificates"`
	Detections   map[string]int     `json:"detections"`
	DailyE2LDs   map[string]float64 `json:"daily_e2lds"`
	Medians      map[string]float64 `json:"staleness_median_days"`
	SurvivalAt90 map[string]float64 `json:"survival_at_90d"`
	Headline90   map[string]float64 `json:"headline_90d_day_reduction_pct"`
	Overall90Pct float64            `json:"overall_90d_day_reduction_pct"`
}

func main() {
	scale := flag.String("scale", "test", "simulation scale: quick, test, or full")
	seed := flag.Int64("seed", 1, "simulation seed")
	asJSON := flag.Bool("json", false, "emit a JSON report")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	logger, stopDebug := obsFlags.Setup("staled")
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		_ = stopDebug(sctx)
	}()

	s := stalecert.DefaultScenario()
	switch *scale {
	case "quick":
		s = stalecert.QuickScenario()
		s.Start = simtime.MustParse("2019-01-01")
	case "test":
		s.Start = simtime.MustParse("2016-01-01")
		s.BaseDailyRegistrations = 2
		s.AnnualRegistrationGrowth = 1.12
	case "full":
	default:
		logger.Error("unknown scale", "scale", *scale)
		os.Exit(2)
	}
	s.Seed = *seed

	r := stalecert.Run(s)
	med := r.Figure6Medians()
	at90 := r.Figure8At(90)
	h := r.Headline()

	if *asJSON {
		rep := jsonReport{
			Domains:      r.World.DomainCount(),
			Stages:       r.Trace.JSON(),
			Certificates: r.Corpus.Len(),
			Detections:   map[string]int{},
			DailyE2LDs:   map[string]float64{},
			Medians:      map[string]float64{},
			SurvivalAt90: map[string]float64{},
			Headline90:   map[string]float64{},
			Overall90Pct: h.OverallDayReductionPct,
		}
		for _, row := range r.Table4Rows() {
			rep.Detections[row.Method.String()] = row.Certs
			rep.DailyE2LDs[row.Method.String()] = row.E2LDsPerDay()
		}
		for m, v := range med {
			rep.Medians[m.String()] = v
		}
		for m, v := range at90 {
			rep.SurvivalAt90[m.String()] = v
		}
		for m, v := range h.DayReductionPct {
			rep.Headline90[m.String()] = v
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			logger.Error("encode report", "err", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("world: %d e2LDs, %d certificates (deduplicated CT)\n\n", r.World.DomainCount(), r.Corpus.Len())
	fmt.Print(r.Table4().Render())
	fmt.Println()
	fmt.Printf("staleness medians: registrant=%.0fd managed=%.0fd keyCompromise=%.0fd\n",
		med[core.MethodRegistrantChange], med[core.MethodManagedTLS], med[core.MethodKeyCompromise])
	fmt.Printf("became stale after 90d of issuance: registrant=%.1f%% managed=%.1f%% keyCompromise=%.1f%%\n",
		100*at90[core.MethodRegistrantChange], 100*at90[core.MethodManagedTLS], 100*at90[core.MethodKeyCompromise])
	fmt.Printf("90-day cap: overall staleness-day reduction %.1f%%\n", h.OverallDayReductionPct)
	fmt.Println()
	fmt.Println("pipeline stages:")
	fmt.Print(r.Trace.Render())
}
