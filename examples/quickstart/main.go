// Quickstart: simulate a small world, run all three stale-certificate
// detection pipelines, and print the paper's headline numbers.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"stalecert"
	"stalecert/internal/simtime"
)

func main() {
	// Start from the reduced-scale scenario and trim the horizon so the
	// example finishes in a couple of seconds. All three collection windows
	// (WHOIS, active DNS, CRL) stay inside the run.
	s := stalecert.QuickScenario()
	s.Start = simtime.MustParse("2019-01-01")
	s.BaseDailyRegistrations = 2

	results := stalecert.Run(s)

	fmt.Printf("simulated %d e2LDs and %d deduplicated certificates\n\n",
		results.World.DomainCount(), results.Corpus.Len())

	// Table 4: daily rates of third-party stale certificates per method.
	fmt.Print(results.Table4().Render())

	// How long does a third party keep a usable key? (Figure 6)
	med := results.Figure6Medians()
	fmt.Println("\nmedian staleness period (days):")
	for m, v := range med {
		fmt.Printf("  %-26s %.0f\n", m, v)
	}

	// Would shorter certificate lifetimes help? (§6 / Figure 9)
	h := results.Headline()
	fmt.Printf("\nenforcing a 90-day maximum lifetime removes %.0f%% of staleness-days\n",
		h.OverallDayReductionPct)
	for m, pct := range h.CertReductionPct {
		fmt.Printf("  %-26s stale certs -%.0f%%, staleness-days -%.0f%%\n",
			m, pct, h.DayReductionPct[m])
	}
}
