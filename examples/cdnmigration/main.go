// CDN migration: the managed-TLS departure scenario (§5.3) built by hand
// from the substrates, with every network interaction over a real socket.
//
// A customer domain delegates to a Cloudflare-style CDN, which obtains a
// managed certificate carrying its sni<N> marker SAN. A daily scanner
// resolves the domain over UDP. When the customer migrates away, the
// day-over-day DNS diff flags the departure — and the provider still holds
// the key of a valid certificate for a domain it no longer serves.
//
// Run with:
//
//	go run ./examples/cdnmigration
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"stalecert"
	"stalecert/internal/ca"
	"stalecert/internal/cdn"
	"stalecert/internal/ctlog"
	"stalecert/internal/dnssim"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

func main() {
	// Substrate: a .com registry zone served over UDP.
	store := dnssim.NewStore()
	com := dnssim.NewZone("com")
	store.AddZone(com)
	must(com.Add(dnssim.Record{Name: "shop.com", Type: dnssim.TypeNS, TTL: 86400, Data: "ns1.hoster.net"}))
	must(com.Add(dnssim.Record{Name: "shop.com", Type: dnssim.TypeA, TTL: 300, Data: "198.51.100.7"}))

	dnsSrv := dnssim.NewServer(store)
	addr, err := dnsSrv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer dnsSrv.Close()
	fmt.Printf("authoritative DNS for .com on %s\n", addr)

	// A CT log collection and the provider's CA.
	logs := ctlog.NewCollection(ctlog.New("example-log", ctlog.Shard{}))
	var keyCounter atomic.Uint64
	cloudflareCA := ca.New(ca.Config{
		Profile: ca.Profile{ID: ca.IssuerCloudflareECC, Name: "CloudFlare ECC CA-2", DefaultLifetime: 365},
		Logs:    logs,
		NewKey:  func() x509sim.KeyID { return x509sim.KeyID(keyCounter.Add(1)) },
	})

	provider := cdn.New(cdn.Config{
		Name:         "cloudflare",
		NameServers:  []string{"kiki.ns.cloudflare.com", "uma.ns.cloudflare.com"},
		EdgeSuffix:   "cdn.cloudflare.com",
		MarkerSuffix: "cloudflaressl.com",
		PerDomainCA:  cloudflareCA,
		Store:        store,
		EdgeIPs:      []string{"104.16.0.1"},
	})

	// Day 100: shop.com enrolls. The provider installs NS delegation and
	// obtains a managed certificate it fully controls.
	enrollDay := simtime.Day(100)
	cert, err := provider.Enroll("shop.com", cdn.ModeNS, enrollDay)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day %s: enrolled; managed cert SANs=%v validity=%s..%s\n",
		enrollDay, cert.Names, cert.NotBefore, cert.NotAfter)

	// The daily scanner resolves the domain over the wire.
	scanner := &dnssim.WireScanner{Resolver: &dnssim.Resolver{ServerAddr: addr.String(), Timeout: 2 * time.Second}}
	ctx := context.Background()
	snapshots := &dnssim.SnapshotStore{}
	scanDay := func(day simtime.Day) {
		snap, err := scanner.Scan(ctx, day, []string{"shop.com"})
		if err != nil {
			log.Fatal(err)
		}
		must(snapshots.Add(snap))
	}
	scanDay(200) // provider present

	// Day 201: the customer migrates to self-hosting. The provider removes
	// its delegation but keeps every key it ever held.
	departDay := simtime.Day(201)
	if err := provider.Depart("shop.com", departDay); err != nil {
		log.Fatal(err)
	}
	must(com.Add(dnssim.Record{Name: "shop.com", Type: dnssim.TypeNS, TTL: 86400, Data: "ns1.newhost.net"}))
	scanDay(departDay)

	// The day-over-day diff finds the departure.
	departures := snapshots.Departures(provider.IsProviderRecord)
	fmt.Printf("day %s: scanner diff found %d departure(s): %+v\n", departDay, len(departures), departures)

	// Join against the CT corpus: the marker-SAN certificate is still valid.
	certs, _ := logs.Dedup()
	corpus := stalecert.NewCorpus(certs, stalecert.CorpusOptions{})
	stale := stalecert.DetectManagedTLSDeparture(corpus, departures, provider.IsManagedCert)
	for _, s := range stale {
		fmt.Printf("STALE: %v — provider keeps a valid key for %s for %d more days\n",
			s.Cert.Names, s.Domain, s.StalenessDays())
	}
	if len(stale) == 0 {
		log.Fatal("expected a stale certificate")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
