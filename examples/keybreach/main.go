// Key breach: the key-compromise scenario (§5.1) over real HTTP.
//
// A hosting provider's CA issues certificates for its customers; a breach
// exposes a batch of private keys. The CA publishes keyCompromise
// revocations on its CRL distribution point; the daily fetcher collects the
// CRLs over HTTP (retrying simulated scrape protections), and the detector
// joins revocations against CT to measure how long the exposed keys stay
// usable.
//
// Run with:
//
//	go run ./examples/keybreach
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"stalecert"
	"stalecert/internal/ca"
	"stalecert/internal/crl"
	"stalecert/internal/ctlog"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

func main() {
	logs := ctlog.NewCollection(ctlog.New("example-log", ctlog.Shard{}))
	authority := crl.NewAuthority("GoDaddy")
	var keyCounter atomic.Uint64
	issuer := ca.New(ca.Config{
		Profile:   ca.Profile{ID: ca.IssuerGoDaddy, Name: "GoDaddy", DefaultLifetime: 398},
		Logs:      logs,
		Authority: authority,
		NewKey:    func() x509sim.KeyID { return x509sim.KeyID(keyCounter.Add(1)) },
	})

	// Issue certificates for 20 managed-hosting customers over the autumn.
	issueBase := simtime.MustParse("2021-09-01")
	var issued []*x509sim.Certificate
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("customer%02d.com", i)
		cert, err := issuer.Issue(ca.Request{
			Account: "platform:managed-wordpress",
			Names:   []string{name, "www." + name},
		}, issueBase+simtime.Day(i*3))
		if err != nil {
			log.Fatal(err)
		}
		issued = append(issued, cert)
	}
	fmt.Printf("issued %d certificates for managed-hosting customers\n", len(issued))

	// 2021-11-17: the breach is discovered; the CA revokes the exposed batch
	// with reason keyCompromise over the following weeks.
	breachDay := simtime.MustParse("2021-11-17")
	for i, cert := range issued {
		if i%2 == 0 { // half the batch was exposed
			issuer.Revoke(cert, breachDay+simtime.Day(i), crl.KeyCompromise)
		}
	}

	// The CA's distribution point, with mild scrape protection.
	srv := crl.NewServer(42)
	srv.Host(authority, 0.3)
	srv.SetNow(breachDay + 30)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("CRL distribution point on %s/crl/GoDaddy\n", ts.URL)

	// Daily collection with retries and coverage accounting.
	ledger := crl.NewCoverageLedger()
	fetcher := &crl.Fetcher{Base: ts.URL, HC: ts.Client(), Ledger: ledger, Retries: 5}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var lists map[string]*crl.List
	for day := 0; day < 7; day++ {
		var err error
		lists, err = fetcher.FetchAll(ctx, []string{"GoDaddy"})
		if err != nil {
			log.Fatal(err)
		}
	}
	cov := ledger.Rows()[0]
	fmt.Printf("CRL coverage: %d/%d daily fetches (%.0f%%)\n", cov.Succeeded, cov.Attempted, cov.Percent())

	list := lists["GoDaddy"]
	if list == nil {
		log.Fatal("no CRL collected")
	}
	fmt.Printf("collected CRL #%d with %d revocations\n", list.Number, len(list.Entries))

	// Join against CT and measure staleness.
	certs, _ := logs.Dedup()
	corpus := stalecert.NewCorpus(certs, stalecert.CorpusOptions{})
	revoked, stats := stalecert.DetectRevoked(corpus, list.Entries, simtime.NoDay)
	kc := stalecert.SplitKeyCompromise(revoked)
	fmt.Printf("revocations matched in CT: %d; key-compromise stale certs: %d\n", stats.MatchedInCT, len(kc))
	for _, s := range kc[:3] {
		fmt.Printf("  %v: exposed key remains valid for %d days after revocation\n",
			s.Cert.Names, s.StalenessDays())
	}
	if len(kc) == 0 {
		log.Fatal("expected key-compromise stale certificates")
	}
}
