// Interception: the complete threat chain from §3.4 and §2.4, over real
// sockets — and why certificate lifetimes are the only working defence.
//
// A customer departs a managed-TLS provider. The provider (now an untrusted
// third party under the paper's worst-case analysis) still holds the key of
// a valid certificate naming the domain. An on-path position lets it
// terminate TLS for the domain: the handshake passes name, validity, trust
// and key-possession checks in every browser profile. Revocation does not
// save the user: Chrome never checks, and Firefox's soft-fail is defeated by
// blackholing the OCSP/CRL traffic. Only a CRLite-style local filter — or an
// earlier expiry — ends the exposure.
//
// Run with:
//
//	go run ./examples/interception
package main

import (
	"fmt"
	"log"
	"net"

	"stalecert/internal/crl"
	"stalecert/internal/revcheck"
	"stalecert/internal/simtime"
	"stalecert/internal/tlssim"
	"stalecert/internal/x509sim"
)

func main() {
	// The stale certificate: issued to the provider while it managed
	// shop.com; the customer departed on day 150, the cert runs to day 420.
	staleCert, err := x509sim.New(1001, 4, 77,
		[]string{"sni9.cloudflaressl.com", "shop.com", "*.shop.com"}, 56, 420)
	if err != nil {
		log.Fatal(err)
	}
	departure := simtime.Day(150)
	today := simtime.Day(300)
	fmt.Printf("stale cert: %v, valid %s..%s; customer departed %s (%d stale days left)\n",
		staleCert.Names, staleCert.NotBefore, staleCert.NotAfter, departure, staleCert.NotAfter-today)

	// The CA has even revoked it (say the departure was reported).
	authority := crl.NewAuthority("CloudFlare ECC CA-2")
	authority.Revoke(staleCert.Issuer, staleCert.Serial, departure+10, crl.CessationOfOperation)
	checker := &revcheck.CRLChecker{Authorities: map[x509sim.IssuerID]*crl.Authority{staleCert.Issuer: authority}}

	// The provider terminates TLS for www.shop.com on an on-path listener.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				_, _ = tlssim.Serve(conn, tlssim.ServerConfig{
					Cert:   staleCert,
					Secret: tlssim.KeySecret(staleCert.Key), // the third party HAS the key
					Echo:   []byte("page served by the former provider"),
				})
			}()
		}
	}()

	connect := func(name string, profile revcheck.Profile, c revcheck.Checker) {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		info, err := tlssim.Dial(conn, tlssim.ClientConfig{
			ServerName:     "www.shop.com",
			Now:            today,
			TrustedIssuers: map[x509sim.IssuerID]bool{staleCert.Issuer: true},
			Profile:        profile,
			Checker:        c,
		})
		if err != nil {
			fmt.Printf("  %-28s REJECTED (%v)\n", name, err)
			return
		}
		fmt.Printf("  %-28s ACCEPTED — got %q\n", name, info.AppData)
	}

	fmt.Println("\nbrowsers connecting to www.shop.com through the third party:")
	connect("Chrome (no revocation)", revcheck.ProfileChrome, checker)
	connect("Firefox (OCSP reachable)", revcheck.ProfileFirefox, checker)
	fmt.Println("\n...now the on-path attacker blackholes revocation traffic:")
	connect("Firefox (OCSP blocked)", revcheck.ProfileFirefox, revcheck.Intercepted(checker))
	connect("Safari (OCSP blocked)", revcheck.ProfileSafari, revcheck.Intercepted(checker))

	// CRLite: the revocation set ships to the client; no traffic to block.
	fmt.Println("\n...a client with a CRLite-style local filter:")
	good, _ := x509sim.New(1002, 4, 78, []string{"elsewhere.com"}, 56, 420)
	filter, err := revcheck.BuildCRLiteFilter(
		[]*x509sim.Certificate{staleCert, good},
		func(c *x509sim.Certificate) bool {
			_, revoked := authority.IsRevoked(c.DedupKey())
			return revoked
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  (filter: %d levels, %d bytes)\n", filter.NumLevels(), filter.SizeBytes())
	connect("CRLite hard-fail client", revcheck.ProfileStrict, revcheck.CRLiteChecker(filter))

	// And the lifetime lever: with a 90-day maximum the certificate would
	// already be expired today.
	capped := staleCert.Clone()
	capped.NotAfter = capped.NotBefore + 89
	fmt.Printf("\nwith a 90-day maximum lifetime the cert expires %s — %s is past it; exposure window shrinks from %d to %d days\n",
		capped.NotAfter, today,
		int(staleCert.NotAfter-departure), maxInt(0, int(capped.NotAfter-departure)))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
