// Drop-catch: the domain registrant-change scenario (§5.2) end to end.
//
// Alice registers a domain, gets a one-year certificate, and lets the domain
// lapse. It passes through grace, redemption and pending-delete; a
// drop-catcher re-registers it for Bob. Daily WHOIS collection — over a real
// TCP port-43 server — observes the new registry creation date, and the
// detector finds Alice's still-valid certificate spanning the change: Alice
// can impersonate Bob's new site.
//
// Run with:
//
//	go run ./examples/dropcatch
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"stalecert"
	"stalecert/internal/ca"
	"stalecert/internal/ctlog"
	"stalecert/internal/registry"
	"stalecert/internal/simtime"
	"stalecert/internal/whois"
	"stalecert/internal/x509sim"
)

func main() {
	reg := registry.New("com")
	logs := ctlog.NewCollection(ctlog.New("example-log", ctlog.Shard{}))
	var keyCounter atomic.Uint64
	issuer := ca.New(ca.Config{
		Profile: ca.Profile{ID: ca.IssuerGoDaddy, Name: "GoDaddy", DefaultLifetime: 365},
		Logs:    logs,
		NewKey:  func() x509sim.KeyID { return x509sim.KeyID(keyCounter.Add(1)) },
	})

	// Day 0: Alice registers bargain.com and gets a 365-day certificate.
	day0 := simtime.MustParse("2020-01-01")
	if _, err := reg.Register("bargain.com", "alice", "GoDaddy", day0, 1); err != nil {
		log.Fatal(err)
	}
	aliceCert, err := issuer.Issue(ca.Request{Account: "acct:alice", Names: []string{"bargain.com", "www.bargain.com"}},
		day0+200) // renewed mid-year: valid well past the domain's expiry
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: alice registered bargain.com; cert valid %s..%s\n",
		day0, aliceCert.NotBefore, aliceCert.NotAfter)

	// WHOIS server over TCP, as the bulk collector sees it.
	srv := whois.NewServer(&whois.RegistrySource{Registry: reg})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	archive := whois.NewArchive()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	observe := func(day simtime.Day) {
		reg.Tick(day)
		rec, err := whois.Query(ctx, addr.String(), "bargain.com")
		if err != nil {
			fmt.Printf("%s: whois: %v\n", day, err)
			return
		}
		archive.ObserveRecord(rec)
		fmt.Printf("%s: whois created=%s status=%s\n", day, rec.Created, rec.Status)
	}

	observe(day0 + 100) // registered, creation date = day0

	// Alice walks away. The lifecycle runs: expiry → grace(45) →
	// redemption(30) → pendingDelete(5) → released.
	expiry := day0 + 365
	release := expiry + registry.GraceDays + registry.RedemptionDays + registry.PendingDeleteDays + 1
	observe(expiry + 10) // autoRenewPeriod
	reg.Tick(release)

	// The drop-catch service grabs it for Bob the moment it drops.
	if _, err := reg.Register("bargain.com", "bob", "DropCatch", release, 1); err != nil {
		log.Fatal(err)
	}
	observe(release + 1) // new creation date visible

	// Detection: join WHOIS re-registrations against the CT corpus.
	events := archive.ReRegistrations()
	fmt.Printf("\nWHOIS archive: %d re-registration event(s): %+v\n", len(events), events)

	certs, _ := logs.Dedup()
	corpus := stalecert.NewCorpus(certs, stalecert.CorpusOptions{})
	stale := stalecert.DetectRegistrantChange(corpus, events)
	for _, s := range stale {
		fmt.Printf("STALE: alice still holds a valid key for %s — %d days of potential impersonation of bob's site\n",
			s.Domain, s.StalenessDays())
	}
	if len(stale) == 0 {
		log.Fatal("expected a stale certificate")
	}

	// What would a 90-day maximum lifetime have done?
	capped := stalecert.SimulateCap(stale, 90)
	fmt.Printf("with a 90-day cap: %d of %d stale certs remain (%.0f%% staleness-days removed)\n",
		capped.RemainingStale, capped.StaleCerts, capped.StalenessDayReductionPct())
}
