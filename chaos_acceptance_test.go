package stalecert_test

// Chaos acceptance: the full seeded pipeline — a CT log served over HTTP,
// tailed into a fresh on-disk certstore through the resilient client, a CRL
// distribution point feeding revocation evidence through the resilient
// fetcher, and a staleapi server answering per-domain staleness queries —
// must produce byte-identical verdicts with 20% deterministic fault
// injection on every outbound call as it does fault-free, with the retries
// that made that possible visible in the resil metric families.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"stalecert/internal/certstore"
	"stalecert/internal/core"
	"stalecert/internal/crl"
	"stalecert/internal/ctlog"
	"stalecert/internal/obs"
	"stalecert/internal/resil"
	"stalecert/internal/simtime"
	"stalecert/internal/staleapi"
	"stalecert/internal/x509sim"
)

// chaosQueryDomains are the staleness endpoints compared across runs: plain
// sites, the revoked domain, and one with no certificates at all.
var chaosQueryDomains = []string{
	"site01.com", "site07.com", "site12.com", "revoked.com", "nocerts.example",
}

// runChaosPipeline builds the whole pipeline from scratch (fresh log, fresh
// store) and returns each queried domain's staleness response body. A nil
// chaos runs fault-free; a non-nil one injects its seeded fault stream into
// both the CT tail and the CRL fetch legs. A non-nil spans store receives
// the CT leg's call and per-attempt client spans.
func runChaosPipeline(t *testing.T, chaos *resil.Chaos, spans *obs.SpanStore) map[string]string {
	t.Helper()
	day := simtime.MustParse("2022-06-01")

	// Seeded CT log over HTTP.
	log := ctlog.New("chaos-log", ctlog.Shard{})
	logSrv := ctlog.NewServer(log)
	logSrv.SetNow(day)
	addCert := func(serial uint64, names []string) {
		t.Helper()
		c, err := x509sim.New(x509sim.SerialNumber(serial), 1, x509sim.KeyID(serial), names, 100, 1200)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := log.AddChain(c, day); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for i := uint64(1); i <= 16; i++ {
		addCert(i, []string{fmt.Sprintf("site%02d.com", i)})
		total++
	}
	addCert(100, []string{"revoked.com"})
	total++
	logTS := httptest.NewServer(logSrv.Handler())
	defer logTS.Close()

	// CRL distribution point with one key-compromise revocation matching the
	// revoked.com certificate.
	auth := crl.NewAuthority("ChaosCA")
	auth.Revoke(1, 100, 600, crl.KeyCompromise)
	crlSrv := crl.NewServer(7)
	crlSrv.SetNow(day)
	crlSrv.Host(auth, 0)
	crlTS := httptest.NewServer(crlSrv.Handler())
	defer crlTS.Close()

	// Resilient CT client: tight backoff so injected faults are ridden out
	// quickly, per-attempt budget so blackholed requests are cut off, and a
	// fast-recovering breaker so an unlucky trip cannot stall the test.
	breakers := resil.NewBreakerSet(resil.BreakerConfig{
		Service:  "chaos-accept",
		Cooldown: 200 * time.Millisecond,
	})
	client := ctlog.NewClientWithOptions(logTS.URL, logTS.Client(), resil.Options{
		Service: "chaos-accept-ct",
		Breaker: breakers,
		Chaos:   chaos,
		Spans:   spans,
		Policy: resil.Policy{
			MaxAttempts: 5,
			BaseDelay:   5 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
			PerAttempt:  500 * time.Millisecond,
		},
	})

	store, err := certstore.Open(certstore.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ing := certstore.NewIngester(store, client)

	// Ingest until the store holds the whole log. Individual Sync rounds may
	// still fail when a request exhausts its attempt budget (0.2^5 per call);
	// the checkpoint makes every retry resume, never re-ingest.
	ctx := context.Background()
	deadline := time.Now().Add(60 * time.Second)
	for store.Len() < total {
		if time.Now().After(deadline) {
			t.Fatalf("ingest did not complete: %d/%d certs", store.Len(), total)
		}
		if _, err := ing.Sync(ctx); err != nil {
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Evidence: CRL fetch through the resilient fetcher, repeated until a
	// round succeeds completely so both runs converge on identical evidence.
	fetcher := &crl.Fetcher{Base: crlTS.URL}
	if chaos != nil {
		fetcher.HC = &http.Client{Transport: chaos.WithBase(crlTS.Client().Transport)}
	} else {
		fetcher.HC = crlTS.Client()
	}
	names := []string{"ChaosCA"}
	evidence := func(ctx context.Context, domain string) (core.DomainEvidence, error) {
		ev := core.DomainEvidence{RevocationCutoff: simtime.NoDay}
		for {
			if ctx.Err() != nil {
				return ev, ctx.Err()
			}
			fctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			lists, err := fetcher.FetchAll(fctx, names)
			cancel()
			if err == nil && len(lists) == len(names) {
				for _, l := range lists {
					ev.Revocations = append(ev.Revocations, l.Entries...)
				}
				return ev, nil
			}
		}
	}

	api := staleapi.NewServer(staleapi.Config{
		Store:    store,
		Evidence: evidence,
		Now:      func() simtime.Day { return day },
		Health:   obs.NewHealth(),
	})
	apiTS := httptest.NewServer(api.Handler())
	defer apiTS.Close()

	out := make(map[string]string, len(chaosQueryDomains))
	for _, d := range chaosQueryDomains {
		resp, err := apiTS.Client().Get(apiTS.URL + "/v1/domain/" + d + "/staleness")
		if err != nil {
			t.Fatalf("staleness %s: %v", d, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("staleness %s: read body: %v", d, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("staleness %s: status %d: %s", d, resp.StatusCode, body)
		}
		out[d] = string(body)
	}
	return out
}

// metricTotal sums every labelled series of one counter family.
func metricTotal(family string) float64 {
	var total float64
	for _, s := range obs.Default().Snapshot() {
		if s.Name == family {
			total += s.Value
		}
	}
	return total
}

func TestChaosPipelineVerdictsMatchFaultFree(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos acceptance is not a -short test")
	}

	clean := runChaosPipeline(t, nil, nil)

	retriesBefore := metricTotal("resil_retries_total")
	injectedBefore := metricTotal("resil_chaos_injections_total")

	// Private span store at sample rate 0: only the tail-sampling error rule
	// can keep a trace, so everything retained below was fault-touched. The
	// seed is chosen so the deterministic fault stream hits the CT leg (the
	// one behind resil.Transport), not just the CRL fetcher's retry loop.
	spans := obs.NewSpanStore(512, 0, 0)
	spans.Registry = obs.NewRegistry()
	chaotic := runChaosPipeline(t, resil.NewChaos(nil, 18, resil.DefaultRates(0.2)), spans)

	if len(chaotic) != len(clean) {
		t.Fatalf("chaos run answered %d domains, fault-free %d", len(chaotic), len(clean))
	}
	for _, d := range chaosQueryDomains {
		if chaotic[d] != clean[d] {
			t.Errorf("verdict for %s drifted under chaos:\nfault-free: %s\nchaos:      %s", d, clean[d], chaotic[d])
		}
	}

	// The identical verdicts must have been earned: faults were injected and
	// retries absorbed them.
	if injected := metricTotal("resil_chaos_injections_total") - injectedBefore; injected == 0 {
		t.Error("chaos run injected no faults")
	}
	if retries := metricTotal("resil_retries_total") - retriesBefore; retries == 0 {
		t.Error("chaos run performed no retries — faults were not absorbed by the resilience layer")
	}

	// Injected-fault traces must be tail-kept: at sample rate 0 every kept
	// trace was retained by the error rule, triggered by a failed attempt or
	// an exhausted call.
	kept := spans.Traces(obs.TraceFilter{WithSpans: true})
	if len(kept) == 0 {
		t.Fatal("chaos run kept no traces at sample=0 — injected faults did not trip tail sampling")
	}
	for _, tr := range kept {
		if tr.KeepReason != obs.KeepError {
			t.Fatalf("trace %s kept for %q, want %q at sample=0", tr.TraceID, tr.KeepReason, obs.KeepError)
		}
	}

	// At least one kept trace must show the retry anatomy: a call span that
	// needed several attempts, with each attempt visible as a numbered
	// sibling client span beneath it and the first of them failed.
	retried := false
	for _, tr := range kept {
		for _, root := range obs.BuildSpanTree(tr.Spans) {
			if root.Kind != obs.SpanCall || root.Attempt < 2 || len(root.Children) < 2 {
				continue
			}
			ok := true
			for i, att := range root.Children {
				if att.Kind != obs.SpanClient || att.Attempt != i+1 {
					ok = false
				}
			}
			first := root.Children[0]
			if ok && (first.Err != "" || first.Status >= 500) {
				retried = true
			}
		}
	}
	if !retried {
		t.Error("no kept trace shows a retried call with numbered per-attempt client spans under it")
	}

	// Breaker state must be observable on the debug surface: the registered
	// sets (including this test's) show up on /v1/breakers via the obs mux.
	debugTS := httptest.NewServer(obs.HandlerFor(obs.Default(), obs.DefaultHealth()))
	defer debugTS.Close()
	resp, err := debugTS.Client().Get(debugTS.URL + "/v1/breakers")
	if err != nil {
		t.Fatal(err)
	}
	breakersBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/breakers status %d", resp.StatusCode)
	}
	var statuses []resil.BreakerStatus
	if err := json.Unmarshal(breakersBody, &statuses); err != nil {
		t.Fatalf("/v1/breakers is not JSON: %v\n%s", err, breakersBody)
	}
	found := false
	for _, st := range statuses {
		if st.Service == "chaos-accept" {
			found = true
		}
	}
	if !found {
		t.Errorf("chaos-accept breaker missing from /v1/breakers: %s", breakersBody)
	}

	// A verdict sanity check so byte-equality is not vacuous: the revoked
	// domain reports its key-compromise staleness in both runs.
	var sr staleapi.StalenessResponse
	if err := json.Unmarshal([]byte(chaotic["revoked.com"]), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Stale) != 1 || sr.Stale[0].Reason != "keyCompromise" || sr.Stale[0].StalenessDays <= 0 {
		t.Fatalf("revoked.com verdict = %+v", sr)
	}
}
