// Benchmarks regenerating every table and figure in the paper's evaluation,
// plus ablations for the design choices DESIGN.md calls out. The simulated
// world is built once and shared; each benchmark measures the cost of its
// pipeline/artifact over that fixed world.
package stalecert_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"stalecert"
	"stalecert/internal/certstore"
	"stalecert/internal/core"
	"stalecert/internal/ctlog"
	"stalecert/internal/dnssim"
	"stalecert/internal/merkle"
	"stalecert/internal/simtime"
	"stalecert/internal/worldsim"
	"stalecert/internal/x509sim"
)

var (
	benchOnce    sync.Once
	benchResults *stalecert.Results
)

func benchScenario() worldsim.Scenario {
	s := worldsim.Default()
	s.Start = simtime.MustParse("2016-01-01")
	s.BaseDailyRegistrations = 2
	s.AnnualRegistrationGrowth = 1.12
	return s
}

func benchRun(b *testing.B) *stalecert.Results {
	b.Helper()
	benchOnce.Do(func() {
		benchResults = stalecert.Run(benchScenario())
	})
	return benchResults
}

// Table 3: dataset inventory.
func BenchmarkTable3Datasets(b *testing.B) {
	r := benchRun(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := r.Table3(); len(tbl.Rows) != 4 {
			b.Fatal("table 3 wrong")
		}
	}
}

// Table 4: the full detection pipeline (corpus build + all three joins).
func BenchmarkTable4DetectionPipeline(b *testing.B) {
	r := benchRun(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := stalecert.Detect(r.World)
		if len(res.Table4Rows()) != 4 {
			b.Fatal("pipeline wrong")
		}
	}
}

// Table 5: reputation sampling + temporal join.
func BenchmarkTable5Reputation(b *testing.B) {
	r := benchRun(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, analysis := r.Table5(int64(i), 100_000, 0.01); analysis.Sampled == 0 {
			b.Fatal("no sample")
		}
	}
}

// Table 6: popularity bucketing over biannual rank samples.
func BenchmarkTable6Popularity(b *testing.B) {
	r := benchRun(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := r.Table6(int64(i)); len(tbl.Rows) == 0 {
			b.Fatal("empty table 6")
		}
	}
}

// Table 7: CRL coverage ledger.
func BenchmarkTable7CRLCoverage(b *testing.B) {
	r := benchRun(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := r.Table7(); len(tbl.Rows) == 0 {
			b.Fatal("empty table 7")
		}
	}
}

// Figure 4: monthly key-compromise volumes by CA.
func BenchmarkFigure4KeyCompromiseMonthly(b *testing.B) {
	r := benchRun(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fig := r.Figure4(); len(fig.Rows) == 0 {
			b.Fatal("empty figure 4")
		}
	}
}

// Figure 5a: monthly registrant-change stale certificates.
func BenchmarkFigure5aMonthlyStale(b *testing.B) {
	r := benchRun(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fig := r.Figure5a(); len(fig.Rows) == 0 {
			b.Fatal("empty figure 5a")
		}
	}
}

// Figure 5b: issuer breakdown of the registrant-change spike.
func BenchmarkFigure5bIssuerBreakdown(b *testing.B) {
	r := benchRun(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fig := r.Figure5b(); len(fig.Columns) < 2 {
			b.Fatal("figure 5b wrong")
		}
	}
}

// Figure 6: staleness CDFs for all three methods.
func BenchmarkFigure6StalenessCDF(b *testing.B) {
	r := benchRun(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := r.Figure6(); len(s.Names) != 3 {
			b.Fatal("figure 6 wrong")
		}
	}
}

// Figure 7: per-year staleness CDFs.
func BenchmarkFigure7YearlyCDF(b *testing.B) {
	r := benchRun(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := r.Figure7(); len(s.Names) == 0 {
			b.Fatal("figure 7 wrong")
		}
	}
}

// Figure 8: survival analysis.
func BenchmarkFigure8Survival(b *testing.B) {
	r := benchRun(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at90 := r.Figure8At(90)
		if len(at90) != 3 {
			b.Fatal("figure 8 wrong")
		}
	}
}

// Figure 9: lifetime-cap simulation across methods and caps.
func BenchmarkFigure9LifetimeCaps(b *testing.B) {
	r := benchRun(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := r.Figure9(nil); len(rows) != 12 {
			b.Fatal("figure 9 wrong")
		}
	}
}

// Headline: the §6 90-day-cap estimate.
func BenchmarkHeadline90DayCap(b *testing.B) {
	r := benchRun(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := r.Headline()
		if h.OverallDayReductionPct <= 0 {
			b.Fatal("headline wrong")
		}
	}
}

// Ablations.

// BenchmarkAblationDedup compares CT deduplication by full-body fingerprint
// (catches precert/final pairs and cross-log copies) against the cheaper
// (issuer, serial) key (misses nothing in our serial-disciplined simulator
// but is not sound for real CT data).
func BenchmarkAblationDedup(b *testing.B) {
	r := benchRun(b)
	entries := allEntries(b, r.World.Logs)
	b.Run("fingerprint", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seen := make(map[x509sim.Fingerprint]bool, len(entries))
			kept := 0
			for _, e := range entries {
				fp := e.Cert.Fingerprint()
				if !seen[fp] {
					seen[fp] = true
					kept++
				}
			}
			if kept == 0 {
				b.Fatal("no entries")
			}
		}
	})
	b.Run("issuer-serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seen := make(map[x509sim.DedupKey]bool, len(entries))
			kept := 0
			for _, e := range entries {
				k := e.Cert.DedupKey()
				if !seen[k] {
					seen[k] = true
					kept++
				}
			}
			if kept == 0 {
				b.Fatal("no entries")
			}
		}
	})
}

func allEntries(b *testing.B, col *ctlog.Collection) []ctlog.Entry {
	b.Helper()
	var out []ctlog.Entry
	for _, l := range col.Logs() {
		if l.Size() == 0 {
			continue
		}
		es, err := l.Entries(0, l.Size()-1)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, es...)
	}
	return out
}

// BenchmarkAblationSnapshotDiff compares the full-snapshot map differ
// against the compact sorted-merge ScanLog differ on identical data.
func BenchmarkAblationSnapshotDiff(b *testing.B) {
	const domains = 5000
	prev := dnssim.NewSnapshot(100)
	next := dnssim.NewSnapshot(101)
	var prevSorted, nextSorted []string
	for i := 0; i < domains; i++ {
		d := fmt.Sprintf("d%06d.com", i)
		rec := dnssim.Record{Name: d, Type: dnssim.TypeNS, Data: "kiki.ns.cloudflare.com"}
		prev.Add(d, rec)
		prevSorted = append(prevSorted, d)
		if i%100 == 0 { // 1% depart
			next.Add(d, dnssim.Record{Name: d, Type: dnssim.TypeNS, Data: "ns.other.net"})
		} else {
			next.Add(d, rec)
			nextSorted = append(nextSorted, d)
		}
	}
	pred := func(r dnssim.Record) bool { return r.Data == "kiki.ns.cloudflare.com" }

	b.Run("full-snapshot-map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			deps := dnssim.FindDepartures(prev, next, pred)
			if len(deps) != domains/100 {
				b.Fatalf("departures = %d", len(deps))
			}
		}
	})
	b.Run("sorted-merge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			deps := sortedMergeDiff(prevSorted, nextSorted)
			if len(deps) != domains/100 {
				b.Fatalf("departures = %d", len(deps))
			}
		}
	})
}

func sortedMergeDiff(prev, next []string) []string {
	var out []string
	j, k := 0, 0
	for j < len(prev) {
		switch {
		case k >= len(next) || prev[j] < next[k]:
			out = append(out, prev[j])
			j++
		case prev[j] == next[k]:
			j++
			k++
		default:
			k++
		}
	}
	return out
}

// BenchmarkAblationDomainIndex compares e2LD lookups with the inverted index
// against linear corpus scans.
func BenchmarkAblationDomainIndex(b *testing.B) {
	r := benchRun(b)
	certs := r.Corpus.Certs()
	domains := r.World.AllDomains()
	if len(domains) > 200 {
		domains = domains[:200]
	}
	b.Run("indexed", func(b *testing.B) {
		corpus := core.NewCorpus(certs, core.CorpusOptions{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := corpus.ByE2LD(domains[i%len(domains)]); got == nil {
				_ = got
			}
		}
	})
	b.Run("linear-scan", func(b *testing.B) {
		corpus := core.NewCorpus(certs, core.CorpusOptions{NoIndex: true})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := corpus.ByE2LD(domains[i%len(domains)]); got == nil {
				_ = got
			}
		}
	})
}

// Certstore benchmark fixture: a 100K-certificate store built once and
// shared. Domains are distinct e2LDs so a lookup's working set is small and
// the index/scan contrast is pure lookup cost.
var (
	csBenchOnce    sync.Once
	csBenchStore   *certstore.Store
	csBenchDomains []string
	csBenchFPs     []x509sim.Fingerprint
	csBenchErr     error
)

func certstoreBench(b *testing.B) (*certstore.Store, []string, []x509sim.Fingerprint) {
	b.Helper()
	csBenchOnce.Do(func() {
		dir, err := os.MkdirTemp("", "certstore-bench-*")
		if err != nil {
			csBenchErr = err
			return
		}
		s, err := certstore.Open(certstore.Options{Dir: dir})
		if err != nil {
			csBenchErr = err
			return
		}
		const n = 100_000
		batch := make([]*x509sim.Certificate, 0, 1024)
		for i := 0; i < n; i++ {
			domain := fmt.Sprintf("d%06d.com", i)
			c, err := x509sim.New(
				x509sim.SerialNumber(i+1), x509sim.IssuerID(i%7+1), x509sim.KeyID(i+1),
				[]string{domain, "www." + domain}, 100, 900)
			if err != nil {
				csBenchErr = err
				return
			}
			batch = append(batch, c)
			if i%157 == 0 {
				csBenchDomains = append(csBenchDomains, domain)
				csBenchFPs = append(csBenchFPs, c.Fingerprint())
			}
			if len(batch) == cap(batch) {
				if _, err := s.Append(batch); err != nil {
					csBenchErr = err
					return
				}
				batch = batch[:0]
			}
		}
		if _, err := s.Append(batch); err != nil {
			csBenchErr = err
			return
		}
		csBenchStore = s
	})
	if csBenchErr != nil {
		b.Fatal(csBenchErr)
	}
	return csBenchStore, csBenchDomains, csBenchFPs
}

// BenchmarkCertstoreLookup is the subsystem's acceptance benchmark: sharded
// index lookups against a 100K-cert store versus a linear corpus scan, plus
// parallel readers exercising the per-shard read locks.
func BenchmarkCertstoreLookup(b *testing.B) {
	store, domains, fps := certstoreBench(b)

	b.Run("sharded-e2ld", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := store.ByE2LD(domains[i%len(domains)]); len(got) == 0 {
				b.Fatal("missing domain")
			}
		}
	})
	b.Run("sharded-fingerprint", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := store.ByFingerprint(fps[i%len(fps)]); !ok {
				b.Fatal("missing fingerprint")
			}
		}
	})
	b.Run("linear-scan", func(b *testing.B) {
		corpus := core.NewCorpus(store.Certs(), core.CorpusOptions{NoIndex: true})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := corpus.ByE2LD(domains[i%len(domains)]); len(got) == 0 {
				b.Fatal("missing domain")
			}
		}
	})
	b.Run("parallel-readers", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if got := store.ByE2LD(domains[i%len(domains)]); len(got) == 0 {
					b.Fatal("missing domain")
				}
				if _, ok := store.ByFingerprint(fps[i%len(fps)]); !ok {
					b.Fatal("missing fingerprint")
				}
				i++
			}
		})
	})
}

// BenchmarkAblationMerkleProofs compares inclusion-proof generation on a
// warm tree (aligned perfect-subtree roots cached across proofs) against a
// cold tree rebuilt per batch, quantifying the proof cache.
func BenchmarkAblationMerkleProofs(b *testing.B) {
	const n = 4096
	leaves := make([][]byte, n)
	for i := range leaves {
		leaves[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	build := func() *merkle.Tree {
		t := &merkle.Tree{}
		for _, l := range leaves {
			t.AppendData(l)
		}
		return t
	}
	b.Run("warm-cache", func(b *testing.B) {
		t := build()
		// Prime the cache.
		if _, err := t.InclusionProof(0, n); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := t.InclusionProof(uint64(i)%n, n); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold-tree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := build()
			if _, err := t.InclusionProof(uint64(i)%n, n); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWorldSimulation measures raw simulation throughput (days/op over
// a one-year horizon at bench scale).
func BenchmarkWorldSimulation(b *testing.B) {
	s := benchScenario()
	s.End = s.Start + 365
	s.WHOISWindow = simtime.Span{Start: s.Start, End: s.End}
	s.ADNSWindow = simtime.Span{Start: s.End - 30, End: s.End}
	s.CRLWindow = simtime.Span{Start: s.End - 30, End: s.End}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Seed = int64(i + 1)
		w := worldsim.NewWorld(s)
		w.Run()
		if w.DomainCount() == 0 {
			b.Fatal("no domains")
		}
	}
}
