// Package stalecert reproduces "Stale TLS Certificates: Investigating
// Precarious Third-Party Access to Valid TLS Keys" (IMC 2023): a measurement
// pipeline that detects certificates which remain valid after the real-world
// facts they attest to have changed, leaving a third party in control of a
// working TLS key for a domain it no longer operates.
//
// The package is a facade over the full system:
//
//   - a simulated internet (internal/worldsim) producing the paper's four
//     datasets — Certificate Transparency, daily CRLs, bulk WHOIS, and daily
//     active-DNS scans — through real substrates: an RFC 6962 CT log with an
//     HTTP API, RFC 5280-style CRLs over HTTP, a port-43 WHOIS server, and an
//     RFC 1035 DNS server over UDP;
//   - the three third-party stale-certificate detectors (internal/core):
//     key-compromise revocations joined against CT, domain registrant changes
//     from registry creation dates, and managed-TLS departures from daily DNS
//     diffs;
//   - the certificate-lifetime reduction analysis (§6) estimating how far
//     shorter maximum lifetimes shrink the stale population.
//
// # Quick start
//
//	results := stalecert.Run(stalecert.QuickScenario())
//	for _, row := range results.Table4Rows() {
//		fmt.Printf("%-26s %6d certs (%.1f/day)\n", row.Method, row.Certs, row.CertsPerDay())
//	}
//	h := results.Headline()
//	fmt.Printf("90-day cap cuts staleness-days by %.0f%%\n", h.OverallDayReductionPct)
//
// Users with their own certificate, revocation, WHOIS or DNS data can skip
// the simulator and drive the detectors directly via NewCorpus,
// DetectRevoked, DetectRegistrantChange and DetectManagedTLSDeparture.
package stalecert

import (
	"stalecert/internal/core"
	"stalecert/internal/crl"
	"stalecert/internal/dnssim"
	"stalecert/internal/experiments"
	"stalecert/internal/simtime"
	"stalecert/internal/whois"
	"stalecert/internal/worldsim"
	"stalecert/internal/x509sim"
)

// Scenario parameterises a world simulation; see worldsim.Scenario for every
// knob. Build one with DefaultScenario or QuickScenario and adjust fields.
type Scenario = worldsim.Scenario

// World is a simulated internet mid- or post-run.
type World = worldsim.World

// Results bundles a full pipeline run: corpus, per-method detections,
// detection windows, and every table/figure regenerator.
type Results = experiments.Results

// Certificate is the compact certificate model shared by every pipeline.
type Certificate = x509sim.Certificate

// StaleCert is one detected stale certificate.
type StaleCert = core.StaleCert

// Method identifies a detection pipeline (Table 4 rows).
type Method = core.Method

// Detection methods.
const (
	MethodRevocation       = core.MethodRevocation
	MethodKeyCompromise    = core.MethodKeyCompromise
	MethodRegistrantChange = core.MethodRegistrantChange
	MethodManagedTLS       = core.MethodManagedTLS
)

// Corpus is the deduplicated, e2LD-indexed CT corpus.
type Corpus = core.Corpus

// CorpusOptions tunes corpus construction.
type CorpusOptions = core.CorpusOptions

// RevocationEntry is one CRL row (issuer key, serial, time, reason).
type RevocationEntry = crl.Entry

// ReRegistration is a WHOIS-visible registrant change.
type ReRegistration = whois.ReRegistration

// Departure is a managed-TLS delegation disappearance between daily scans.
type Departure = dnssim.Departure

// CapResult is the outcome of one maximum-lifetime cap simulation.
type CapResult = core.CapResult

// Day is the day-granular simulation clock (days since 2013-01-01 UTC).
type Day = simtime.Day

// DefaultScenario returns the paper-scale default: 2013-03 through 2023-05,
// roughly 60K e2LDs and 350K certificates. A full run takes tens of seconds.
func DefaultScenario() Scenario { return worldsim.Default() }

// QuickScenario returns a reduced-scale scenario with the same dynamics,
// suitable for tests and exploration.
func QuickScenario() Scenario { return worldsim.Quick() }

// Simulate runs a world to completion and returns it with all datasets
// populated.
func Simulate(s Scenario) *World {
	w := worldsim.NewWorld(s)
	w.Run()
	return w
}

// Detect runs the three measurement pipelines over a simulated world.
func Detect(w *World) *Results { return experiments.Detect(w) }

// Run simulates a world and runs every detection pipeline.
func Run(s Scenario) *Results { return experiments.Run(s) }

// NewCorpus builds a detector-ready corpus from certificates (applies
// fingerprint dedup and the paper's >3K-certs-per-FQDN anomaly filter).
func NewCorpus(certs []*Certificate, opts CorpusOptions) *Corpus {
	return core.NewCorpus(certs, opts)
}

// DetectRevoked joins CRL entries against the corpus with the paper's §4.1
// outlier filters; pass cutoff simtime.NoDay to disable the date filter.
func DetectRevoked(corpus *Corpus, entries []RevocationEntry, cutoff Day) ([]StaleCert, core.RevocationStats) {
	return core.DetectRevoked(corpus, entries, cutoff)
}

// SplitKeyCompromise extracts the key-compromise subset of revocation-stale
// certificates.
func SplitKeyCompromise(revoked []StaleCert) []StaleCert {
	return core.SplitKeyCompromise(revoked)
}

// DetectRegistrantChange finds certificates whose validity spans a public
// re-registration of a domain they name.
func DetectRegistrantChange(corpus *Corpus, events []ReRegistration) []StaleCert {
	return core.DetectRegistrantChange(corpus, events)
}

// DetectManagedTLSDeparture finds provider-managed certificates still valid
// when the customer's delegation to the provider disappears.
func DetectManagedTLSDeparture(corpus *Corpus, departures []Departure, isManaged func(*Certificate) bool) []StaleCert {
	return core.DetectManagedTLSDeparture(corpus, departures, isManaged)
}

// SimulateCap estimates the effect of one maximum-lifetime cap on a stale
// population (§6 / Figure 9).
func SimulateCap(stale []StaleCert, capDays int) CapResult {
	return core.SimulateCap(stale, capDays)
}

// SimulateCaps applies several caps; StandardCaps holds the paper's
// 45/90/215/398-day set.
func SimulateCaps(stale []StaleCert, caps []int) []CapResult {
	return core.SimulateCaps(stale, caps)
}

// StandardCaps are the lifetimes the paper simulates.
var StandardCaps = core.StandardCaps
