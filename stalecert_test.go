package stalecert_test

import (
	"sync"
	"testing"

	"stalecert"
	"stalecert/internal/simtime"
)

func apiScenario() stalecert.Scenario {
	s := stalecert.QuickScenario()
	s.Start = simtime.MustParse("2019-01-01")
	s.End = simtime.MustParse("2021-06-30")
	s.BaseDailyRegistrations = 2
	s.WHOISWindow = simtime.Span{Start: simtime.MustParse("2019-01-01"), End: simtime.MustParse("2021-06-30")}
	s.ADNSWindow = simtime.Span{Start: simtime.MustParse("2021-01-01"), End: simtime.MustParse("2021-03-31")}
	s.CRLWindow = simtime.Span{Start: simtime.MustParse("2021-04-01"), End: simtime.MustParse("2021-06-30")}
	s.GoDaddyBreach = false
	return s
}

var (
	apiOnce    sync.Once
	apiResults *stalecert.Results
)

func apiRun(t *testing.T) *stalecert.Results {
	t.Helper()
	apiOnce.Do(func() { apiResults = stalecert.Run(apiScenario()) })
	return apiResults
}

func TestPublicAPIEndToEnd(t *testing.T) {
	r := apiRun(t)
	if r.Corpus.Len() == 0 {
		t.Fatal("empty corpus")
	}
	rows := r.Table4Rows()
	if len(rows) != 4 {
		t.Fatalf("table 4 rows = %d", len(rows))
	}
	for _, m := range []stalecert.Method{
		stalecert.MethodRevocation, stalecert.MethodRegistrantChange, stalecert.MethodManagedTLS,
	} {
		if len(r.ByMethod(m)) == 0 {
			t.Errorf("no detections for %v", m)
		}
	}
}

func TestPublicAPISimulateThenDetect(t *testing.T) {
	s := apiScenario()
	s.End = s.Start + 420
	w := stalecert.Simulate(s)
	if w.DomainCount() == 0 {
		t.Fatal("no domains simulated")
	}
	r := stalecert.Detect(w)
	if r.Corpus.Len() == 0 {
		t.Fatal("detect produced empty corpus")
	}
}

func TestPublicAPIDirectDetectors(t *testing.T) {
	r := apiRun(t)
	// Re-run the registrant-change detector directly on the world's data.
	corpus := stalecert.NewCorpus(r.Corpus.Certs(), stalecert.CorpusOptions{})
	stale := stalecert.DetectRegistrantChange(corpus, r.World.Whois.ReRegistrations())
	if len(stale) != len(r.RegChange) {
		t.Fatalf("direct detector found %d, pipeline found %d", len(stale), len(r.RegChange))
	}
	revoked, stats := stalecert.DetectRevoked(corpus, r.World.RevocationEntries(), simtime.NoDay)
	if stats.MatchedInCT == 0 || len(revoked) == 0 {
		t.Fatal("direct revocation join found nothing")
	}
	kc := stalecert.SplitKeyCompromise(revoked)
	for _, s := range kc {
		if s.Method != stalecert.MethodKeyCompromise {
			t.Fatal("split did not relabel")
		}
	}
}

func TestPublicAPICapSimulation(t *testing.T) {
	r := apiRun(t)
	caps := stalecert.SimulateCaps(r.RegChange, stalecert.StandardCaps)
	if len(caps) != 4 {
		t.Fatalf("caps = %d", len(caps))
	}
	r90 := stalecert.SimulateCap(r.RegChange, 90)
	if r90.CapDays != 90 || r90.StaleCerts != len(r.RegChange) {
		t.Fatalf("cap result = %+v", r90)
	}
	if r90.StalenessDayReductionPct() < 0 || r90.StalenessDayReductionPct() > 100 {
		t.Fatalf("reduction out of range: %v", r90.StalenessDayReductionPct())
	}
}
