module stalecert

go 1.22
