module stalecert

go 1.23
