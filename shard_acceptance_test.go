package stalecert_test

// Sharding acceptance: a 3-shard staleapid fleet behind the stalegw gateway
// must be indistinguishable from one unsharded staleapid — byte-identical
// staleness verdicts, certificate lookups (both fingerprint spellings) and
// domain listings over the whole seeded corpus. Then one shard dies: the
// gateway degrades instead of failing — last-good verdicts marked degraded
// with X-Missing-Shards and X-Stale-Evidence, partial domain listings, a
// degraded (not unready) quorum probe, and the dead shard's circuit breaker
// visibly open on /v1/breakers.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"stalecert/internal/certstore"
	"stalecert/internal/core"
	"stalecert/internal/crl"
	"stalecert/internal/ctlog"
	"stalecert/internal/obs"
	"stalecert/internal/resil"
	"stalecert/internal/shard"
	"stalecert/internal/simtime"
	"stalecert/internal/staleapi"
	"stalecert/internal/stalegw"
	"stalecert/internal/x509sim"
)

func acceptGet(t *testing.T, base, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp, string(body)
}

func TestShardedFleetMatchesUnshardedVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("sharding acceptance is not a -short test")
	}
	day := simtime.MustParse("2022-06-01")
	const shardCount = 3

	// Seeded CT log: 24 plain domains plus a revoked one.
	log := ctlog.New("shard-accept-log", ctlog.Shard{})
	logSrv := ctlog.NewServer(log)
	logSrv.SetNow(day)
	var domains []string
	var certs []*x509sim.Certificate
	addCert := func(serial uint64, names []string) {
		t.Helper()
		c, err := x509sim.New(x509sim.SerialNumber(serial), 1, x509sim.KeyID(serial), names, 100, 1200)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := log.AddChain(c, day); err != nil {
			t.Fatal(err)
		}
		certs = append(certs, c)
	}
	for i := uint64(0); i < 24; i++ {
		d := fmt.Sprintf("accept%02d.com", i)
		domains = append(domains, d)
		addCert(i+1, []string{d, "www." + d})
	}
	domains = append(domains, "revoked.com")
	addCert(100, []string{"revoked.com"})
	logTS := httptest.NewServer(logSrv.Handler())
	defer logTS.Close()

	// Revocation evidence shared by every replica.
	auth := crl.NewAuthority("ShardCA")
	auth.Revoke(1, 100, 600, crl.KeyCompromise)
	crlSrv := crl.NewServer(7)
	crlSrv.SetNow(day)
	crlSrv.Host(auth, 0)
	crlTS := httptest.NewServer(crlSrv.Handler())
	defer crlTS.Close()
	evidence := func(ctx context.Context, domain string) (core.DomainEvidence, error) {
		ev := core.DomainEvidence{RevocationCutoff: simtime.NoDay}
		fetcher := &crl.Fetcher{Base: crlTS.URL, HC: crlTS.Client()}
		lists, err := fetcher.FetchAll(ctx, []string{"ShardCA"})
		if err != nil {
			return ev, err
		}
		for _, l := range lists {
			ev.Revocations = append(ev.Revocations, l.Entries...)
		}
		return ev, nil
	}
	newAPI := func(store *certstore.Store, self *shard.Self) *httptest.Server {
		api := staleapi.NewServer(staleapi.Config{
			Store:    store,
			Evidence: evidence,
			Now:      func() simtime.Day { return day },
			Health:   obs.NewHealth(),
			Shard:    self,
		})
		return httptest.NewServer(api.Handler())
	}
	ctx := context.Background()

	// The reference: one unsharded replica holding the whole log.
	whole, err := certstore.Open(certstore.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer whole.Close()
	if _, err := certstore.NewIngester(whole, ctlog.NewClient(logTS.URL, logTS.Client())).Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if whole.Len() != len(certs) {
		t.Fatalf("unsharded store holds %d certs, want %d", whole.Len(), len(certs))
	}
	wholeTS := newAPI(whole, nil)
	defer wholeTS.Close()

	// The fleet: three replicas tailing the same log, each keeping only its
	// ring slice.
	ring := shard.MustRing(shardCount, shard.DefaultVNodes)
	stores := make([]*certstore.Store, shardCount)
	apiTS := make([]*httptest.Server, shardCount)
	addrs := make([]string, shardCount)
	fleetTotal := 0
	for i := 0; i < shardCount; i++ {
		st, err := certstore.Open(certstore.Options{Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		ing := certstore.NewIngester(st, ctlog.NewClient(logTS.URL, logTS.Client()))
		ing.Keep = shard.KeepFunc(ring, st.PSL(), i)
		ing.Shard = &certstore.ShardConfig{Epoch: 1, Index: i, Count: shardCount,
			VNodes: shard.DefaultVNodes, Hash: shard.HashName}
		if _, err := ing.Sync(ctx); err != nil {
			t.Fatalf("shard %d sync: %v", i, err)
		}
		if st.Len() == 0 {
			t.Fatalf("shard %d ingested nothing", i)
		}
		fleetTotal += st.Len()
		stores[i] = st
		apiTS[i] = newAPI(st, &shard.Self{Version: shard.MapVersion, Epoch: 1,
			Hash: shard.HashName, VNodes: shard.DefaultVNodes,
			Shard: shard.Assignment{Index: i, Count: shardCount}})
		defer apiTS[i].Close()
		addrs[i] = apiTS[i].URL
	}
	if fleetTotal != len(certs) {
		t.Fatalf("fleet slices sum to %d certs, want %d (overlap or loss)", fleetTotal, len(certs))
	}

	// Gateway over the fleet: resilient client with a fast-tripping,
	// slow-closing breaker so the kill below is visible on /v1/breakers.
	breakers := resil.NewBreakerSet(resil.BreakerConfig{
		Service:     "shard-accept-gw",
		MinRequests: 2,
		Threshold:   0.5,
		Cooldown:    time.Minute,
	})
	gwClient := resil.NewHTTPClient(resil.Options{
		Service: "shard-accept-gw",
		Breaker: breakers,
		Policy: resil.Policy{
			MaxAttempts: 2,
			BaseDelay:   time.Millisecond,
			MaxDelay:    5 * time.Millisecond,
			PerAttempt:  2 * time.Second,
		},
	})
	gw, err := stalegw.New(stalegw.Config{
		Map:      shard.NewMap(1, shard.DefaultVNodes, addrs),
		Client:   gwClient,
		CacheTTL: 80 * time.Millisecond,
		Health:   obs.NewHealth(),
	})
	if err != nil {
		t.Fatal(err)
	}
	gwTS := httptest.NewServer(gw.Handler())
	defer gwTS.Close()

	gw.ProbeOnce(ctx)
	if err := gw.QuorumProbe(ctx); err != nil {
		t.Fatalf("healthy fleet not ready: %v", err)
	}

	// Fault-free equivalence: every domain's staleness verdict and cert
	// listing, several certificates under both fingerprint spellings, and
	// the merged domain listing must be byte-identical to the unsharded
	// reference.
	for _, d := range append(domains, "nocerts.example") {
		for _, ep := range []string{"/v1/domain/" + d + "/staleness", "/v1/domain/" + d + "/certs"} {
			wantResp, want := acceptGet(t, wholeTS.URL, ep)
			gotResp, got := acceptGet(t, gwTS.URL, ep)
			if gotResp.StatusCode != wantResp.StatusCode || got != want {
				t.Fatalf("%s diverges (status %d vs %d):\nunsharded: %s\ngateway:   %s",
					ep, wantResp.StatusCode, gotResp.StatusCode, want, got)
			}
		}
	}
	for _, c := range []*x509sim.Certificate{certs[0], certs[11], certs[len(certs)-1]} {
		fp := c.Fingerprint()
		for _, form := range []string{fp.Hex(), fp.String()} {
			_, want := acceptGet(t, wholeTS.URL, "/v1/cert/"+form)
			_, got := acceptGet(t, gwTS.URL, "/v1/cert/"+form)
			if got != want {
				t.Fatalf("cert %s diverges:\nunsharded: %s\ngateway:   %s", form, want, got)
			}
		}
	}
	_, wantList := acceptGet(t, wholeTS.URL, "/v1/domains")
	_, gotList := acceptGet(t, gwTS.URL, "/v1/domains")
	if gotList != wantList {
		t.Fatalf("domain listing diverges:\nunsharded: %s\ngateway:   %s", wantList, gotList)
	}

	// Kill one shard — the one owning accept00.com, whose verdict the
	// gateway has cached above.
	deadDomain := "accept00.com"
	dead := ring.Lookup(shard.KeyForDomain(deadDomain))
	deadHost := apiTS[dead].Listener.Addr().String()
	apiTS[dead].Close()
	time.Sleep(120 * time.Millisecond) // let the cached verdict expire

	// Owner-routed query for the dead shard's domain: 200 from last-good,
	// marked degraded, naming the missing shard.
	resp, body := acceptGet(t, gwTS.URL, "/v1/domain/"+deadDomain+"/staleness")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-kill staleness status = %d: %s", resp.StatusCode, body)
	}
	var verdict map[string]any
	if err := json.Unmarshal([]byte(body), &verdict); err != nil {
		t.Fatal(err)
	}
	if verdict["degraded"] != true {
		t.Fatalf("post-kill verdict not marked degraded: %s", body)
	}
	if got := resp.Header.Get(stalegw.MissingShardsHeader); got != strconv.Itoa(dead) {
		t.Fatalf("%s = %q, want %d", stalegw.MissingShardsHeader, got, dead)
	}
	if resp.Header.Get(obs.StaleEvidenceHeader) == "" {
		t.Fatal("post-kill verdict missing X-Stale-Evidence")
	}

	// Scatter-merge with a dead shard: partial results, marked.
	resp, body = acceptGet(t, gwTS.URL, "/v1/domains")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-kill domains status = %d", resp.StatusCode)
	}
	var listing stalegw.DomainsResponse
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if !listing.Degraded || len(listing.MissingShards) != 1 || listing.MissingShards[0] != dead {
		t.Fatalf("post-kill listing = %+v, want degraded with missing shard %d", listing, dead)
	}
	if listing.Total != len(domains)-stores[dead].Len() {
		t.Fatalf("post-kill listing total = %d, want %d live domains", listing.Total, len(domains)-stores[dead].Len())
	}

	// A cert on a live shard still resolves through the fan-out.
	liveCert := certs[0]
	if ring.Lookup(shard.KeyForDomain("accept00.com")) == dead {
		for i, c := range certs[:24] {
			if ring.Lookup(shard.KeyForDomain(fmt.Sprintf("accept%02d.com", i))) != dead {
				liveCert = c
				break
			}
		}
	}
	resp, body = acceptGet(t, gwTS.URL, "/v1/cert/"+liveCert.Fingerprint().Hex())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-kill live-shard cert status = %d: %s", resp.StatusCode, body)
	}

	// Readiness degrades (2/3 up ≥ majority quorum) without going unready.
	gw.ProbeOnce(ctx)
	if err := gw.QuorumProbe(ctx); err == nil || !obs.IsDegraded(err) {
		t.Fatalf("post-kill quorum probe = %v, want degraded", err)
	}

	// Enough failed legs must hit the dead shard to outweigh the successful
	// equivalence-phase calls in its breaker window and trip the circuit:
	// the breaker is then open on the /v1/breakers debug surface.
	for i := 0; i < 20; i++ {
		acceptGet(t, gwTS.URL, "/v1/domain/"+deadDomain+"/staleness")
	}
	brTS := httptest.NewServer(resil.Handler())
	defer brTS.Close()
	_, body = acceptGet(t, brTS.URL, "/v1/breakers")
	var statuses []resil.BreakerStatus
	if err := json.Unmarshal([]byte(body), &statuses); err != nil {
		t.Fatal(err)
	}
	open := false
	for _, s := range statuses {
		if s.Service == "shard-accept-gw" && s.Peer == deadHost && s.State == "open" {
			open = true
		}
	}
	if !open {
		t.Fatalf("dead shard %s breaker not open on /v1/breakers: %s", deadHost, body)
	}
}
