package stalecert_test

// Replication acceptance: a 2-slice × 2-replica staleapid fleet behind the
// stalegw gateway must survive the death of one replica with zero visible
// damage — byte-identical, non-degraded answers, no 5xx, no X-Missing-Shards,
// the failover counter advancing — and stay FULLY ready (not merely
// degraded) on the per-slice quorum probe, because the dead replica's
// sibling still covers the slice. A deliberately slowed replica additionally
// exercises the hedged-read path: the gateway races the sibling after the
// hedge delay and the hedge counters advance.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"stalecert/internal/certstore"
	"stalecert/internal/core"
	"stalecert/internal/crl"
	"stalecert/internal/ctlog"
	"stalecert/internal/obs"
	"stalecert/internal/resil"
	"stalecert/internal/shard"
	"stalecert/internal/simtime"
	"stalecert/internal/staleapi"
	"stalecert/internal/stalegw"
	"stalecert/internal/x509sim"
)

func TestReplicatedFleetSurvivesReplicaDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("replication acceptance is not a -short test")
	}
	day := simtime.MustParse("2022-06-01")
	const sliceCount = 2
	const replicaCount = 2

	// Seeded CT log: 24 plain domains plus a revoked one.
	log := ctlog.New("replica-accept-log", ctlog.Shard{})
	logSrv := ctlog.NewServer(log)
	logSrv.SetNow(day)
	var domains []string
	var certs []*x509sim.Certificate
	addCert := func(serial uint64, names []string) {
		t.Helper()
		c, err := x509sim.New(x509sim.SerialNumber(serial), 1, x509sim.KeyID(serial), names, 100, 1200)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := log.AddChain(c, day); err != nil {
			t.Fatal(err)
		}
		certs = append(certs, c)
	}
	for i := uint64(0); i < 24; i++ {
		d := fmt.Sprintf("replica%02d.com", i)
		domains = append(domains, d)
		addCert(i+1, []string{d, "www." + d})
	}
	domains = append(domains, "replica-revoked.com")
	addCert(100, []string{"replica-revoked.com"})
	logTS := httptest.NewServer(logSrv.Handler())
	defer logTS.Close()

	// Revocation evidence shared by every replica.
	auth := crl.NewAuthority("ReplicaCA")
	auth.Revoke(1, 100, 600, crl.KeyCompromise)
	crlSrv := crl.NewServer(7)
	crlSrv.SetNow(day)
	crlSrv.Host(auth, 0)
	crlTS := httptest.NewServer(crlSrv.Handler())
	defer crlTS.Close()
	evidence := func(ctx context.Context, domain string) (core.DomainEvidence, error) {
		ev := core.DomainEvidence{RevocationCutoff: simtime.NoDay}
		fetcher := &crl.Fetcher{Base: crlTS.URL, HC: crlTS.Client()}
		lists, err := fetcher.FetchAll(ctx, []string{"ReplicaCA"})
		if err != nil {
			return ev, err
		}
		for _, l := range lists {
			ev.Revocations = append(ev.Revocations, l.Entries...)
		}
		return ev, nil
	}
	// slowReplica, when set, delays one chosen replica (slice 1, replica 0)
	// long enough that the gateway's hedge timer fires and the sibling wins.
	var slowReplica atomic.Bool
	newAPI := func(store *certstore.Store, self *shard.Self, slow bool) *httptest.Server {
		api := staleapi.NewServer(staleapi.Config{
			Store:    store,
			Evidence: evidence,
			Now:      func() simtime.Day { return day },
			Health:   obs.NewHealth(),
			Shard:    self,
			// A nanosecond cache TTL keeps "cached": false on every replica
			// answer, so which sibling serves a query never changes the bytes.
			CacheTTL: time.Nanosecond,
		})
		h := api.Handler()
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if slow && slowReplica.Load() {
				select {
				case <-r.Context().Done():
					return
				case <-time.After(120 * time.Millisecond):
				}
			}
			h.ServeHTTP(w, r)
		}))
	}
	ctx := context.Background()

	// The reference: one unsharded replica holding the whole log.
	whole, err := certstore.Open(certstore.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer whole.Close()
	if _, err := certstore.NewIngester(whole, ctlog.NewClient(logTS.URL, logTS.Client())).Sync(ctx); err != nil {
		t.Fatal(err)
	}
	wholeTS := newAPI(whole, nil, false)
	defer wholeTS.Close()

	// The fleet: 2 slices × 2 replicas. Both replicas of a slice tail the
	// same log into separate stores under the same SHARD identity — the
	// deployment shape cmd/staleapid documents for replication.
	ring := shard.MustRing(sliceCount, shard.DefaultVNodes)
	apiTS := make([][]*httptest.Server, sliceCount)
	groups := make([][]string, sliceCount)
	for i := 0; i < sliceCount; i++ {
		for r := 0; r < replicaCount; r++ {
			st, err := certstore.Open(certstore.Options{Dir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			ing := certstore.NewIngester(st, ctlog.NewClient(logTS.URL, logTS.Client()))
			ing.Keep = shard.KeepFunc(ring, st.PSL(), i)
			ing.Shard = &certstore.ShardConfig{Epoch: 1, Index: i, Count: sliceCount,
				VNodes: shard.DefaultVNodes, Hash: shard.HashName}
			if _, err := ing.Sync(ctx); err != nil {
				t.Fatalf("slice %d replica %d sync: %v", i, r, err)
			}
			if st.Len() == 0 {
				t.Fatalf("slice %d replica %d ingested nothing", i, r)
			}
			ts := newAPI(st, &shard.Self{Version: shard.MapVersion, Epoch: 1,
				Hash: shard.HashName, VNodes: shard.DefaultVNodes,
				Shard: shard.Assignment{Index: i, Count: sliceCount}}, i == 1 && r == 0)
			defer ts.Close()
			apiTS[i] = append(apiTS[i], ts)
			groups[i] = append(groups[i], ts.URL)
		}
	}

	// Gateway over the replicated fleet: hedging armed on the real clock,
	// breakers shared between the resilient client and replica selection.
	breakers := resil.NewBreakerSet(resil.BreakerConfig{
		Service:     "replica-accept-gw",
		MinRequests: 2,
		Threshold:   0.5,
		Cooldown:    time.Minute,
	})
	gwClient := resil.NewHTTPClient(resil.Options{
		Service: "replica-accept-gw",
		Breaker: breakers,
		Policy: resil.Policy{
			MaxAttempts: 2,
			BaseDelay:   time.Millisecond,
			MaxDelay:    5 * time.Millisecond,
			PerAttempt:  2 * time.Second,
		},
	})
	gw, err := stalegw.New(stalegw.Config{
		Map:        shard.NewReplicatedMap(1, shard.DefaultVNodes, groups),
		Client:     gwClient,
		CacheTTL:   60 * time.Millisecond,
		HedgeAfter: 5 * time.Millisecond,
		Breakers:   breakers,
		Health:     obs.NewHealth(),
	})
	if err != nil {
		t.Fatal(err)
	}
	gwTS := httptest.NewServer(gw.Handler())
	defer gwTS.Close()

	gw.ProbeOnce(ctx)
	if err := gw.QuorumProbe(ctx); err != nil {
		t.Fatalf("healthy fleet not ready: %v", err)
	}

	// Fault-free equivalence, recording every body for the post-kill replay:
	// the replicated fleet must already be indistinguishable from the
	// unsharded reference, whichever sibling happens to serve each leg.
	endpoints := []string{"/v1/domains"}
	for _, d := range domains {
		endpoints = append(endpoints,
			"/v1/domain/"+d+"/staleness", "/v1/domain/"+d+"/certs")
	}
	prekill := make(map[string]string, len(endpoints))
	for _, ep := range endpoints {
		wantResp, want := acceptGet(t, wholeTS.URL, ep)
		gotResp, got := acceptGet(t, gwTS.URL, ep)
		if gotResp.StatusCode != wantResp.StatusCode || got != want {
			t.Fatalf("%s diverges (status %d vs %d):\nunsharded: %s\ngateway:   %s",
				ep, wantResp.StatusCode, gotResp.StatusCode, want, got)
		}
		prekill[ep] = got
	}

	// Hedged reads: slow down slice 1's replica 0. Whenever rotation makes it
	// leg 0, the hedge timer fires at 5ms and the sibling answers — fast,
	// byte-identical, and visible on the hedge counters.
	var slice1Domains []string
	for _, d := range domains {
		if ring.Lookup(shard.KeyForDomain(d)) == 1 {
			slice1Domains = append(slice1Domains, d)
		}
	}
	if len(slice1Domains) < 4 {
		t.Fatalf("ring gave slice 1 only %d of %d domains", len(slice1Domains), len(domains))
	}
	hedged := obs.Default().Counter("stalegw_hedged_requests_total", "shard", "1")
	hedgeWins := obs.Default().Counter("stalegw_hedge_wins_total", "shard", "1")
	hedgedBefore, winsBefore := hedged.Value(), hedgeWins.Value()
	time.Sleep(100 * time.Millisecond) // expire the sweep's cached entries: hedged reads must hit replicas
	slowReplica.Store(true)
	for _, d := range slice1Domains {
		start := time.Now()
		resp, body := acceptGet(t, gwTS.URL, "/v1/domain/"+d+"/staleness")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("hedged read %s status = %d: %s", d, resp.StatusCode, body)
		}
		if body != prekill["/v1/domain/"+d+"/staleness"] {
			t.Fatalf("hedged read %s diverges from pre-hedge body:\n%s", d, body)
		}
		if elapsed := time.Since(start); elapsed > 90*time.Millisecond {
			t.Fatalf("hedged read %s took %s — hedge did not rescue the slow leg", d, elapsed)
		}
	}
	slowReplica.Store(false)
	if hedged.Value() == hedgedBefore {
		t.Fatal("stalegw_hedged_requests_total{shard=1} did not advance across hedged reads")
	}
	if hedgeWins.Value() == winsBefore {
		t.Fatal("stalegw_hedge_wins_total{shard=1} did not advance — sibling never won")
	}

	// Kill slice 0's replica 0 mid-stream — no re-probe, so the gateway still
	// believes both replicas are healthy and must discover the death the hard
	// way, per query, through failover.
	apiTS[0][0].Close()
	time.Sleep(100 * time.Millisecond) // let every cached gateway entry expire

	failovers := obs.Default().Counter("stalegw_failovers_total", "shard", "0")
	failoversBefore := failovers.Value()
	for _, ep := range endpoints {
		resp, got := acceptGet(t, gwTS.URL, ep)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-kill %s status = %d (want 200, zero 5xx): %s", ep, resp.StatusCode, got)
		}
		if h := resp.Header.Get(stalegw.MissingShardsHeader); h != "" {
			t.Fatalf("post-kill %s carries %s=%q — replica death leaked as slice loss", ep, stalegw.MissingShardsHeader, h)
		}
		if got != prekill[ep] {
			t.Fatalf("post-kill %s not byte-identical to pre-kill:\npre:  %s\npost: %s", ep, prekill[ep], got)
		}
	}
	if failovers.Value() == failoversBefore {
		t.Fatal("stalegw_failovers_total{shard=0} did not advance — dead replica was never leg 0")
	}

	// Readiness after the death: the probe round sees the dead replica, but
	// the slice quorum counts slices, not processes — one live sibling keeps
	// the fleet FULLY ready, not merely degraded.
	gw.ProbeOnce(ctx)
	if err := gw.QuorumProbe(ctx); err != nil {
		t.Fatalf("quorum probe after replica death = %v, want fully ready", err)
	}
	resp, body := acceptGet(t, gwTS.URL, "/readyz")
	if resp.StatusCode != http.StatusOK || strings.Contains(body, "degraded") || strings.Contains(body, "not-ready") {
		t.Fatalf("post-kill readyz = %d %q, want fully ready", resp.StatusCode, body)
	}
	if v := obs.Default().Gauge("stalegw_replica_up", "shard", "0", "replica", "0").Value(); v != 0 {
		t.Fatalf("stalegw_replica_up{shard=0,replica=0} = %v, want 0 after death", v)
	}
	if v := obs.Default().Gauge("stalegw_replica_up", "shard", "0", "replica", "1").Value(); v != 1 {
		t.Fatalf("stalegw_replica_up{shard=0,replica=1} = %v, want 1", v)
	}
	if v := obs.Default().Gauge("stalegw_shard_up", "shard", strconv.Itoa(0)).Value(); v != 1 {
		t.Fatalf("stalegw_shard_up{shard=0} = %v, want 1 — sibling covers the slice", v)
	}

	// And queries keep flowing without failover noise once the probe round
	// has demoted the dead replica: it is never leg 0 again.
	failoversSettled := failovers.Value()
	for _, d := range domains {
		if ring.Lookup(shard.KeyForDomain(d)) != 0 {
			continue
		}
		resp, _ := acceptGet(t, gwTS.URL, "/v1/domain/"+d+"/certs?post=probe")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-probe %s status = %d", d, resp.StatusCode)
		}
	}
	if v := failovers.Value(); v != failoversSettled {
		t.Fatalf("failovers advanced %d→%d after the probe demoted the dead replica", failoversSettled, v)
	}
}
