package stalecert_test

import (
	"fmt"

	"stalecert"
	"stalecert/internal/simtime"
	"stalecert/internal/whois"
	"stalecert/internal/x509sim"
)

// ExampleDetectRegistrantChange shows driving a detector directly with your
// own data, no simulator involved: one certificate whose validity spans a
// domain re-registration.
func ExampleDetectRegistrantChange() {
	cert, _ := x509sim.New(1, 1, 1, []string{"bargain.com", "www.bargain.com"},
		simtime.MustParse("2020-06-01"), simtime.MustParse("2021-06-01"))
	corpus := stalecert.NewCorpus([]*stalecert.Certificate{cert}, stalecert.CorpusOptions{})

	// Bulk WHOIS observed a new registry creation date mid-validity.
	events := []whois.ReRegistration{{
		Domain:       "bargain.com",
		PrevCreation: simtime.MustParse("2019-01-15"),
		NewCreation:  simtime.MustParse("2021-02-01"),
	}}

	stale := stalecert.DetectRegistrantChange(corpus, events)
	for _, s := range stale {
		fmt.Printf("%s: prior owner keeps a valid key for %d days\n", s.Domain, s.StalenessDays())
	}
	// Output: bargain.com: prior owner keeps a valid key for 121 days
}

// ExampleSimulateCap estimates the effect of a 90-day maximum lifetime on a
// stale population (§6 of the paper).
func ExampleSimulateCap() {
	longCert, _ := x509sim.New(1, 1, 1, []string{"a.com"}, 0, 364) // 365-day cert
	shortCert, _ := x509sim.New(2, 1, 2, []string{"b.com"}, 0, 89) // 90-day cert
	stale := []stalecert.StaleCert{
		{Cert: longCert, Method: stalecert.MethodRegistrantChange, EventDay: 120, Domain: "a.com"},
		{Cert: shortCert, Method: stalecert.MethodRegistrantChange, EventDay: 30, Domain: "b.com"},
	}
	r := stalecert.SimulateCap(stale, 90)
	fmt.Printf("stale certs %d -> %d; staleness days %d -> %d\n",
		r.StaleCerts, r.RemainingStale, r.StalenessDays, r.CappedStaleDays)
	// Output: stale certs 2 -> 1; staleness days 305 -> 60
}
