package stalecert_test

// Trace acceptance: the ISSUE's end-to-end criterion. A request enters a
// staleapid-shaped daemon, fans out an evidence fetch to a ctlogd-shaped
// daemon through the resilient client, and the first attempt fails — the
// whole journey must be retrievable from the fleet aggregator's
// /fleet/traces/{id} as ONE stitched span tree spanning both daemons, with
// the retry attempts visible as numbered sibling client spans, and the
// daemon's latency histogram must expose a trace-ID exemplar that
// obs.ParseProm round-trips.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"stalecert/internal/obs"
	"stalecert/internal/resil"
)

// tracedDaemon bundles one in-process daemon's observability surface: its
// private registry and span store, plus an httptest server exposing the
// debug endpoints the aggregator scrapes (/metrics, /v1/traces).
type tracedDaemon struct {
	reg   *obs.Registry
	spans *obs.SpanStore
	debug *httptest.Server
}

func newTracedDaemon(t *testing.T) *tracedDaemon {
	t.Helper()
	d := &tracedDaemon{reg: obs.NewRegistry(), spans: obs.NewSpanStore(64, 0, 0)}
	d.spans.Registry = d.reg
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		obs.WriteProm(w, d.reg)
	})
	mux.Handle("GET /v1/traces", d.spans.Handler())
	mux.Handle("GET /v1/traces/{id}", d.spans.Handler())
	d.debug = httptest.NewServer(mux)
	t.Cleanup(d.debug.Close)
	return d
}

func TestRequestTracedAcrossFleet(t *testing.T) {
	// ctlogd: flaky — the first get-sth 503s, the retry succeeds. Both
	// requests land in ctlogd's own span store via the server middleware.
	ct := newTracedDaemon(t)
	var hits atomic.Int64
	ctMux := http.NewServeMux()
	ctMux.HandleFunc("GET /ct/v1/get-sth", func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			http.Error(w, "wedged", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"tree_size":17}`))
	})
	ctSrv := httptest.NewServer(obs.MiddlewareSpans(ct.reg, ct.spans, "ctlogd", ctMux))
	defer ctSrv.Close()

	// staleapid: its staleness handler performs the evidence fetch against
	// ctlogd through the full resilience stack, propagating the request
	// context so every attempt joins the incoming trace.
	api := newTracedDaemon(t)
	evidenceClient := resil.InstrumentClient(ctSrv.Client(), resil.Options{
		Service:   "staleapid",
		NoBreaker: true,
		Spans:     api.spans,
		Policy: resil.Policy{
			MaxAttempts: 3,
			BaseDelay:   time.Millisecond,
			MaxDelay:    2 * time.Millisecond,
			Jitter:      func(d time.Duration) time.Duration { return d },
		},
	})
	apiMux := http.NewServeMux()
	apiMux.HandleFunc("GET /v1/domain/{e2ld}/staleness", func(w http.ResponseWriter, r *http.Request) {
		req, _ := http.NewRequestWithContext(r.Context(), http.MethodGet, ctSrv.URL+"/ct/v1/get-sth", nil)
		resp, err := evidenceClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		w.Write([]byte(`{"domain":"` + r.PathValue("e2ld") + `","stale":[]}`))
	})
	apiSrv := httptest.NewServer(obs.MiddlewareSpans(api.reg, api.spans, "staleapid", apiMux))
	defer apiSrv.Close()

	// Drive one request carrying our own traceparent, so the trace ID is
	// known up front. Both stores run at sample rate 0: only the failed
	// first attempt keeps this trace, on both daemons independently.
	caller := obs.NewRequestID()
	req, _ := http.NewRequest(http.MethodGet, apiSrv.URL+"/v1/domain/example.com/staleness", nil)
	req.Header.Set(obs.TraceHeader, caller.String())
	resp, err := apiSrv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("staleness request status %d", resp.StatusCode)
	}

	// Fleet assembly: obsagg scrapes both daemons and stitches the shared
	// trace ID into one tree.
	agg := &obs.Aggregator{
		Targets: []obs.Target{
			{Job: "staleapid", URL: api.debug.URL},
			{Job: "ctlogd", URL: ct.debug.URL},
		},
		Registry: obs.NewRegistry(),
	}
	agg.ScrapeOnce(context.Background())

	aggSrv := httptest.NewServer(agg.Handler())
	defer aggSrv.Close()
	fresp, err := aggSrv.Client().Get(aggSrv.URL + "/fleet/traces/" + caller.Trace())
	if err != nil {
		t.Fatal(err)
	}
	defer fresp.Body.Close()
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("/fleet/traces/{id} status %d", fresp.StatusCode)
	}
	var tree obs.TraceTreeJSON
	if err := json.NewDecoder(fresp.Body).Decode(&tree); err != nil {
		t.Fatal(err)
	}

	if len(tree.Services) != 2 || tree.Services[0] != "ctlogd" || tree.Services[1] != "staleapid" {
		t.Fatalf("stitched services = %v, want both daemons", tree.Services)
	}
	if !tree.Error || tree.KeepReason != obs.KeepError {
		t.Fatalf("trace error=%v keep=%q, want tail-kept by the error rule", tree.Error, tree.KeepReason)
	}
	if len(tree.Spans) != 1 {
		t.Fatalf("stitched tree has %d roots, want 1:\n%+v", len(tree.Spans), tree.Spans)
	}

	// The stitched anatomy, hop by hop: staleapid's server span, under it
	// the logical evidence call, under that the two numbered attempts, and
	// under EACH attempt the ctlogd server span that handled it.
	root := tree.Spans[0]
	if root.Kind != obs.SpanServer || root.Service != "staleapid" || root.Route != "/v1/domain/{e2ld}/staleness" {
		t.Fatalf("root span wrong: %+v", root.SpanRecord)
	}
	if len(root.Children) != 1 {
		t.Fatalf("root has %d children, want the one evidence call", len(root.Children))
	}
	call := root.Children[0]
	if call.Kind != obs.SpanCall || call.Attempt != 2 || call.Status != http.StatusOK {
		t.Fatalf("call span wrong: %+v", call.SpanRecord)
	}
	if len(call.Children) != 2 {
		t.Fatalf("call has %d attempt children, want 2 sibling attempts", len(call.Children))
	}
	for i, att := range call.Children {
		if att.Kind != obs.SpanClient || att.Attempt != i+1 {
			t.Fatalf("attempt %d span wrong: %+v", i+1, att.SpanRecord)
		}
		if len(att.Children) != 1 || att.Children[0].Service != "ctlogd" || att.Children[0].Kind != obs.SpanServer {
			t.Fatalf("attempt %d not stitched to its ctlogd server span: %+v", i+1, att.Children)
		}
		if att.Children[0].Status != att.Status {
			t.Fatalf("attempt %d status %d but its server span saw %d", i+1, att.Status, att.Children[0].Status)
		}
	}
	if call.Children[0].Status != http.StatusServiceUnavailable || call.Children[1].Status != http.StatusOK {
		t.Fatalf("attempt statuses = %d, %d; want 503 then 200",
			call.Children[0].Status, call.Children[1].Status)
	}

	// Exemplars: staleapid's latency histogram links the kept trace from its
	// exposition, in OpenMetrics syntax that ParseProm round-trips — the
	// same path the aggregator just used.
	mresp, err := api.debug.Client().Get(api.debug.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), `# {trace_id="`+caller.Trace()+`"}`) {
		t.Fatalf("/metrics exposes no exemplar for the kept trace:\n%s", mbody)
	}
	samples, err := obs.ParseProm(strings.NewReader(string(mbody)))
	if err != nil {
		t.Fatalf("ParseProm rejected exemplar exposition: %v", err)
	}
	linked := false
	for _, s := range samples {
		if s.Name != "http_request_seconds" {
			continue
		}
		for _, b := range s.Buckets {
			if b.Exemplar != nil && b.Exemplar.TraceID == caller.Trace() {
				linked = true
			}
		}
	}
	if !linked {
		t.Fatal("parsed exposition lost the trace-ID exemplar")
	}
	// And the aggregator federated that histogram without choking on it.
	found := false
	for _, s := range agg.Federated() {
		if s.Name == "http_request_seconds" {
			found = true
		}
	}
	if !found {
		t.Fatal("aggregator did not federate the exemplar-bearing histogram")
	}
}
