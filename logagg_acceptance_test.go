package stalecert_test

// Log-aggregation acceptance: the ISSUE's end-to-end criteria. First, a
// chaos-injected failing request must leave a stitched fleet trace whose ID
// retrieves log lines from BOTH daemons via the aggregator's
// /fleet/logs?trace= — and /fleet/traces/{id} must embed those same lines as
// the trace's drill-down. Second, a fired SLO burn-rate alert must leave a
// log-ring black-box snapshot (logs.jsonl) alongside the pprof files of the
// capture set it triggers.

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"stalecert/internal/obs"
	"stalecert/internal/resil"
)

// loggedDaemon bundles one in-process daemon's full observability surface:
// private registry, span store and log ring, a logger teeing into the ring,
// and an httptest server exposing the debug endpoints the aggregator scrapes
// (/metrics, /v1/traces, /v1/logs).
type loggedDaemon struct {
	reg    *obs.Registry
	spans  *obs.SpanStore
	ring   *obs.LogRing
	logger *slog.Logger
	debug  *httptest.Server
}

func newLoggedDaemon(t *testing.T, component string) *loggedDaemon {
	t.Helper()
	d := &loggedDaemon{
		reg:   obs.NewRegistry(),
		spans: obs.NewSpanStore(64, 1, 0), // -trace-sample 1: keep everything
		ring:  obs.NewLogRing(64),
	}
	d.spans.Registry = d.reg
	d.ring.Registry = d.reg
	inner := slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug})
	d.logger = slog.New(obs.NewTeeHandler(inner, d.ring)).With("component", component)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		obs.WriteProm(w, d.reg)
	})
	mux.Handle("GET /v1/traces", d.spans.Handler())
	mux.Handle("GET /v1/traces/{id}", d.spans.Handler())
	mux.Handle("GET /v1/logs", d.ring.Handler())
	d.debug = httptest.NewServer(mux)
	t.Cleanup(d.debug.Close)
	return d
}

// chaosSeedFor finds a seed whose deterministic fault stream injects exactly
// one fault on the first draw and none on the next few — the "one flaky
// attempt, then recovery" shape the retry loop is built for. Searching at
// runtime keeps the test honest across math/rand implementations.
func chaosSeedFor(t *testing.T, rate float64, cleanDraws int) int64 {
	t.Helper()
	for seed := int64(1); seed < 10000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		if rng.Float64() >= rate {
			continue // first request must fault
		}
		ok := true
		for i := 0; i < cleanDraws; i++ {
			if rng.Float64() < rate {
				ok = false
				break
			}
		}
		if ok {
			return seed
		}
	}
	t.Fatal("no chaos seed found")
	return 0
}

func TestChaosFailureCorrelatedAcrossFleetLogs(t *testing.T) {
	// ctlogd: healthy, but the evidence client reaches it through a seeded
	// chaos transport that 503s the first attempt. Its handler logs with the
	// request context, so the record carries the trace ID.
	ct := newLoggedDaemon(t, "ctlogd")
	ctMux := http.NewServeMux()
	ctMux.HandleFunc("GET /ct/v1/get-sth", func(w http.ResponseWriter, r *http.Request) {
		ct.logger.InfoContext(r.Context(), "sth served", "tree_size", 17)
		w.Write([]byte(`{"tree_size":17}`))
	})
	ctSrv := httptest.NewServer(obs.MiddlewareSpans(ct.reg, ct.spans, "ctlogd", ctMux))
	defer ctSrv.Close()

	// staleapid: fetches evidence through the resilience stack with chaos at
	// the bottom, logging the fetch outcome under the same request context.
	api := newLoggedDaemon(t, "staleapid")
	const faultRate = 0.5
	chaos := resil.NewChaos(ctSrv.Client().Transport, chaosSeedFor(t, faultRate, 4),
		resil.Rates{Status5xx: faultRate})
	evidenceClient := resil.InstrumentClient(ctSrv.Client(), resil.Options{
		Service:   "staleapid",
		NoBreaker: true,
		Chaos:     chaos,
		Spans:     api.spans,
		Policy: resil.Policy{
			MaxAttempts: 3,
			BaseDelay:   time.Millisecond,
			MaxDelay:    2 * time.Millisecond,
			Jitter:      func(d time.Duration) time.Duration { return d },
		},
	})
	apiMux := http.NewServeMux()
	apiMux.HandleFunc("GET /v1/domain/{e2ld}/staleness", func(w http.ResponseWriter, r *http.Request) {
		req, _ := http.NewRequestWithContext(r.Context(), http.MethodGet, ctSrv.URL+"/ct/v1/get-sth", nil)
		resp, err := evidenceClient.Do(req)
		if err != nil {
			api.logger.ErrorContext(r.Context(), "evidence fetch failed", "err", err)
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			api.logger.ErrorContext(r.Context(), "evidence fetch degraded", "status", resp.StatusCode)
		} else {
			api.logger.InfoContext(r.Context(), "staleness verdict computed",
				"domain", r.PathValue("e2ld"), "evidence_status", resp.StatusCode)
		}
		w.Write([]byte(`{"domain":"` + r.PathValue("e2ld") + `","stale":[]}`))
	})
	apiSrv := httptest.NewServer(obs.MiddlewareSpans(api.reg, api.spans, "staleapid", apiMux))
	defer apiSrv.Close()

	// One request with a caller-supplied traceparent so the ID is known.
	injectionsBefore := obs.Default().Counter("resil_chaos_injections_total", "kind", "status_5xx").Value()
	caller := obs.NewRequestID()
	req, _ := http.NewRequest(http.MethodGet, apiSrv.URL+"/v1/domain/example.com/staleness", nil)
	req.Header.Set(obs.TraceHeader, caller.String())
	resp, err := apiSrv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("staleness request status %d", resp.StatusCode)
	}
	// The chaos transport must actually have failed the first attempt —
	// otherwise this test is not exercising the failing-request criterion.
	if got := obs.Default().Counter("resil_chaos_injections_total", "kind", "status_5xx").Value(); got == injectionsBefore {
		t.Fatal("chaos fault was not injected")
	}

	// Fleet assembly: one scrape round federates metrics, traces AND logs.
	agg := &obs.Aggregator{
		Targets: []obs.Target{
			{Job: "staleapid", URL: api.debug.URL},
			{Job: "ctlogd", URL: ct.debug.URL},
		},
		Registry: obs.NewRegistry(),
		Logger:   slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	agg.ScrapeOnce(context.Background())
	aggSrv := httptest.NewServer(agg.Handler())
	defer aggSrv.Close()

	// Criterion 1: the stitched trace's ID retrieves >= 2 daemons' log lines
	// from /fleet/logs?trace=.
	lresp, err := aggSrv.Client().Get(aggSrv.URL + "/fleet/logs?trace=" + caller.Trace())
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	if lresp.StatusCode != http.StatusOK {
		t.Fatalf("/fleet/logs?trace= status %d", lresp.StatusCode)
	}
	var logs []obs.LogRecord
	if err := json.NewDecoder(lresp.Body).Decode(&logs); err != nil {
		t.Fatal(err)
	}
	jobs := map[string]bool{}
	for _, rec := range logs {
		if rec.TraceID != caller.Trace() {
			t.Fatalf("record for wrong trace: %+v", rec)
		}
		if rec.Job == "" || rec.Instance == "" {
			t.Fatalf("federated record missing job/instance labels: %+v", rec)
		}
		jobs[rec.Job] = true
	}
	if !jobs["staleapid"] || !jobs["ctlogd"] {
		t.Fatalf("trace-correlated logs cover jobs %v, want both staleapid and ctlogd (records: %+v)", jobs, logs)
	}
	// Merged stream reads chronologically.
	for i := 1; i < len(logs); i++ {
		if logs[i].Time.Before(logs[i-1].Time) {
			t.Fatalf("fleet logs out of time order at %d: %+v", i, logs)
		}
	}

	// Criterion 2: the trace drill-down embeds the same correlated lines.
	tresp, err := aggSrv.Client().Get(aggSrv.URL + "/fleet/traces/" + caller.Trace())
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("/fleet/traces/{id} status %d", tresp.StatusCode)
	}
	var tree obs.TraceTreeJSON
	if err := json.NewDecoder(tresp.Body).Decode(&tree); err != nil {
		t.Fatal(err)
	}
	if len(tree.Services) != 2 {
		t.Fatalf("stitched services = %v, want both daemons", tree.Services)
	}
	if len(tree.Logs) != len(logs) {
		t.Fatalf("trace drill-down embeds %d log lines, /fleet/logs?trace= returned %d", len(tree.Logs), len(logs))
	}

	// And the generic filters compose over the federated stream.
	qresp, err := aggSrv.Client().Get(aggSrv.URL + "/fleet/logs?job=staleapid&q=staleness")
	if err != nil {
		t.Fatal(err)
	}
	defer qresp.Body.Close()
	var filtered []obs.LogRecord
	if err := json.NewDecoder(qresp.Body).Decode(&filtered); err != nil {
		t.Fatal(err)
	}
	if len(filtered) == 0 {
		t.Fatal("?job=&q= filter returned nothing")
	}
}

func TestSLOBurnAlertLeavesLogBlackBox(t *testing.T) {
	if testing.Short() {
		t.Skip("captures a CPU profile")
	}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	reg := obs.NewRegistry()
	ring := obs.NewLogRing(32)
	ring.Registry = reg
	// The log lines that preceded the incident — what the black box must ship.
	ring.Append(obs.LogRecord{Time: time.Now().UTC(), Level: "INFO", Service: "svc",
		Msg: "serving", TraceID: "pre-incident"})
	ring.Append(obs.LogRecord{Time: time.Now().UTC(), Level: "ERROR", Service: "svc",
		Msg: "backend wedged", Attrs: map[string]string{"err": "connection refused"}})

	dir := t.TempDir()
	capture := &obs.ProfileCapture{
		Dir:         dir,
		CPUDuration: 50 * time.Millisecond,
		Logger:      quiet,
		Logs:        ring,
	}

	specs, err := obs.ParseSLOSpecs("availability:99")
	if err != nil {
		t.Fatal(err)
	}
	fired := make(chan obs.SLOAlert, 8)
	engine := &obs.SLOEngine{
		Reg:     reg,
		Service: "svc",
		Specs:   specs,
		Logger:  quiet,
		// The same wiring Flags.Setup installs: a firing burn alert triggers
		// an async capture.
		OnAlert: func(a obs.SLOAlert) {
			if a.Firing {
				capture.TriggerAsync("slo-" + a.SLO + "-" + a.Severity)
				fired <- a
			}
		},
	}

	// Total outage under a fake clock: every request 5xx for a minute burns
	// the 1% budget at 100x — both severities fire.
	bad := reg.Counter("http_requests_total", "service", "svc", "route", "/x", "code", "5xx")
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	engine.Evaluate(t0)
	bad.Add(100)
	engine.Evaluate(t0.Add(time.Minute))

	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("SLO burn alert never fired")
	}

	// TriggerAsync runs the capture in the background; wait for it to land.
	deadline := time.Now().Add(10 * time.Second)
	var entries []obs.ProfileEntry
	for time.Now().Before(deadline) {
		if entries = capture.List(); len(entries) > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(entries) == 0 {
		t.Fatal("alert-triggered capture never completed")
	}
	entry := entries[0]

	files := map[string]bool{}
	for _, f := range entry.Files {
		files[f] = true
	}
	if !files["cpu.pprof"] || !files[obs.LogSnapshotName] {
		t.Fatalf("capture set files = %v, want pprof profiles plus %s", entry.Files, obs.LogSnapshotName)
	}
	// Both live side by side on disk in the capture's ring directory.
	if _, err := os.Stat(filepath.Join(dir, entry.ID, "cpu.pprof")); err != nil {
		t.Fatalf("cpu profile missing: %v", err)
	}
	snap := filepath.Join(dir, entry.ID, obs.LogSnapshotName)
	recs, err := obs.ReadSnapshotFile(snap)
	if err != nil {
		t.Fatalf("log black box unreadable: %v", err)
	}
	if len(recs) != 2 || recs[1].Msg != "backend wedged" || recs[1].Attrs["err"] != "connection refused" {
		t.Fatalf("black box lost the pre-incident log lines: %+v", recs)
	}
}
