package stalecert_test

// Fleet-query acceptance: the ISSUE's end-to-end criteria for the obsagg
// time-series engine. A loopback fleet (ctlogd + staleapid stand-ins) runs
// under a seeded open-loop load while the aggregator federates on a short
// cadence; afterwards /fleet/query must answer (1) a rate() within 15% of
// the client-observed QPS, (2) a histogram_quantile(0.99) within bucket
// resolution of the client p99, (3) an injected error-log burst must fire
// the rules-engine alert under the legacy counter name with legacy re-arm
// semantics, and (4) killing a daemon must mark its series stale — gone
// from instant answers, history still selectable.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strconv"
	"testing"
	"time"

	"stalecert/internal/loadgen"
	"stalecert/internal/obs"
)

// queriedDaemon is one in-process daemon: instrumented API surface plus the
// debug /metrics endpoint the aggregator scrapes.
type queriedDaemon struct {
	reg   *obs.Registry
	ring  *obs.LogRing
	api   *httptest.Server
	debug *httptest.Server
}

func newQueriedDaemon(t *testing.T, service string, mux *http.ServeMux) *queriedDaemon {
	t.Helper()
	d := &queriedDaemon{reg: obs.NewRegistry(), ring: obs.NewLogRing(256)}
	d.ring.Registry = d.reg
	d.api = httptest.NewServer(obs.Middleware(d.reg, service, mux))
	t.Cleanup(d.api.Close)
	debugMux := http.NewServeMux()
	debugMux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		obs.WriteProm(w, d.reg)
	})
	d.debug = httptest.NewServer(debugMux)
	t.Cleanup(d.debug.Close)
	return d
}

// fleetVector runs one instant query against /fleet/query and decodes the
// vector answer.
func fleetVector(t *testing.T, aggURL, expr string) []struct {
	Metric map[string]string `json:"metric"`
	Value  [2]any            `json:"value"`
} {
	t.Helper()
	resp, err := http.Get(aggURL + "/fleet/query?query=" + url.QueryEscape(expr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query %q: status %d: %s", expr, resp.StatusCode, body)
	}
	var out struct {
		Status string `json:"status"`
		Data   struct {
			ResultType string `json:"resultType"`
			Result     []struct {
				Metric map[string]string `json:"metric"`
				Value  [2]any            `json:"value"`
			} `json:"result"`
		} `json:"data"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("query %q: bad JSON %s: %v", expr, body, err)
	}
	if out.Status != "success" || out.Data.ResultType != "vector" {
		t.Fatalf("query %q: %s", expr, body)
	}
	return out.Data.Result
}

func vectorValue(t *testing.T, entry struct {
	Metric map[string]string `json:"metric"`
	Value  [2]any            `json:"value"`
}) float64 {
	t.Helper()
	s, ok := entry.Value[1].(string)
	if !ok {
		t.Fatalf("vector value not a string: %+v", entry.Value)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// bucketIdx maps a latency to its DurationBuckets index — "within bucket
// resolution" means the client and server quantiles land within one ×4
// bucket of each other.
func bucketIdx(secs float64) int {
	for i, b := range obs.DurationBuckets {
		if secs <= b {
			return i
		}
	}
	return len(obs.DurationBuckets)
}

func TestFleetQueryAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a multi-second load")
	}
	// ctlogd stand-in: serves the STH instantly.
	ctMux := http.NewServeMux()
	ctMux.HandleFunc("GET /ct/v1/get-sth", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"tree_size":17}`))
	})
	ct := newQueriedDaemon(t, "ctlogd", ctMux)

	// staleapid stand-in: a fixed ~2ms of "work" keeps the server-side
	// latency histogram well inside one bucket, dominating client overhead.
	apiMux := http.NewServeMux()
	apiMux.HandleFunc("GET /v1/domain/{e2ld}/staleness", func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Millisecond)
		w.Write([]byte(`{"domain":"` + r.PathValue("e2ld") + `","stale":[]}`))
	})
	api := newQueriedDaemon(t, "staleapid", apiMux)

	agg := &obs.Aggregator{
		Targets: []obs.Target{
			{Job: "staleapid", URL: api.debug.URL},
			{Job: "ctlogd", URL: ct.debug.URL},
		},
		Registry:            obs.NewRegistry(),
		Logger:              slog.New(slog.NewTextHandler(io.Discard, nil)),
		ErrorBurstThreshold: 5,
		AlertRearm:          time.Hour,
		TSDB:                &obs.TSDB{Retention: time.Minute, StaleAfter: time.Second},
	}
	aggSrv := httptest.NewServer(agg.Handler())
	defer aggSrv.Close()

	// Drive a deterministic open-loop load while federating every 250ms.
	hc := api.api.Client()
	ops := []loadgen.Op{
		{Name: "staleness", Weight: 70, Do: func(ctx context.Context) (int64, error) {
			return loadGet(ctx, hc, api.api.URL+"/v1/domain/example.com/staleness")
		}},
		{Name: "sth", Weight: 30, Do: func(ctx context.Context) (int64, error) {
			return loadGet(ctx, hc, ct.api.URL+"/ct/v1/get-sth")
		}},
	}
	done := make(chan *loadgen.Result, 1)
	go func() {
		res, err := loadgen.Run(context.Background(), loadgen.Config{
			Ops: ops, Mode: loadgen.ModeOpen, QPS: 150,
			Duration: 4 * time.Second, Workers: 16, Seed: 1,
		})
		if err != nil {
			t.Error(err)
			done <- nil
			return
		}
		done <- res
	}()
	rounds := 0
	var res *loadgen.Result
	ticker := time.NewTicker(250 * time.Millisecond)
	defer ticker.Stop()
waitLoad:
	for {
		select {
		case res = <-done:
			break waitLoad
		case <-ticker.C:
			agg.ScrapeOnce(context.Background())
			rounds++
		}
	}
	if res == nil {
		t.Fatal("load run failed")
	}
	agg.ScrapeOnce(context.Background()) // capture the final counters
	rounds++
	if rounds < 3 {
		t.Fatalf("only %d federation rounds during the run, want >= 3", rounds)
	}
	// The /fleet header agrees on the round count.
	fresp, err := http.Get(aggSrv.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	header, _ := io.ReadAll(fresp.Body)
	fresp.Body.Close()
	m := regexp.MustCompile(`(\d+) scrape rounds`).FindSubmatch(header)
	if m == nil {
		t.Fatalf("/fleet header lacks a round count: %s", header)
	}
	if n, _ := strconv.Atoi(string(m[1])); n < rounds {
		t.Fatalf("/fleet reports %d rounds, drove %d", n, rounds)
	}

	// Criterion 1: rate() agrees with the client-observed QPS within 15%.
	stalenessQPS := float64(res.PerOp["staleness"].Count) / res.Elapsed.Seconds()
	vec := fleetVector(t, aggSrv.URL, `sum(rate(http_requests_total{job="staleapid"}[30s]))`)
	if len(vec) != 1 {
		t.Fatalf("rate query returned %d series, want 1", len(vec))
	}
	gotQPS := vectorValue(t, vec[0])
	if diff := math.Abs(gotQPS-stalenessQPS) / stalenessQPS; diff > 0.15 {
		t.Fatalf("fleet rate() = %.1f/s, client observed %.1f/s (%.0f%% off, want <= 15%%)",
			gotQPS, stalenessQPS, diff*100)
	}

	// Criterion 2: the fleet p99 lands within one histogram bucket of the
	// client-side p99.
	clientP99 := res.PerOp["staleness"].Latency.Quantile(0.99).Seconds()
	vec = fleetVector(t, aggSrv.URL,
		`histogram_quantile(0.99, sum by (le) (rate(http_request_seconds_bucket{job="staleapid"}[30s])))`)
	if len(vec) != 1 {
		t.Fatalf("quantile query returned %d series, want 1", len(vec))
	}
	gotP99 := vectorValue(t, vec[0])
	if gotP99 <= 0 || math.IsNaN(gotP99) || math.IsInf(gotP99, 0) {
		t.Fatalf("fleet p99 = %v", gotP99)
	}
	if di := bucketIdx(gotP99) - bucketIdx(clientP99); di < -1 || di > 1 {
		t.Fatalf("fleet p99 %.4fs (bucket %d) vs client p99 %.4fs (bucket %d): more than one bucket apart",
			gotP99, bucketIdx(gotP99), clientP99, bucketIdx(clientP99))
	}

	// Criterion 3: an error-log burst fires the rules-engine alert under the
	// legacy counter name, once, and stays re-armed.
	burstCounter := func() uint64 {
		return agg.Registry.Counter("obsagg_error_burst_alerts_total", "job", "staleapid").Value()
	}
	logBurst := func(n int) {
		for i := 0; i < n; i++ {
			api.ring.Append(obs.LogRecord{Time: time.Now().UTC(), Level: "ERROR",
				Service: "staleapid", Msg: fmt.Sprintf("backend wedged %d", i)})
		}
	}
	logBurst(50)
	agg.ScrapeOnce(context.Background()) // first point of the error series
	logBurst(50)
	agg.ScrapeOnce(context.Background()) // irate over the burst breaches 5/s
	if got := burstCounter(); got != 1 {
		t.Fatalf("error-burst alerts after burst = %d, want 1", got)
	}
	logBurst(50)
	agg.ScrapeOnce(context.Background())
	if got := burstCounter(); got != 1 {
		t.Fatalf("error-burst alert refired inside the re-arm window (count %d)", got)
	}

	// Criterion 4: killing ctlogd marks its series stale after StaleAfter —
	// instant answers drop it, history stays selectable, the healthy daemon
	// keeps answering.
	ct.debug.Close()
	time.Sleep(1200 * time.Millisecond)
	agg.ScrapeOnce(context.Background())
	if vec := fleetVector(t, aggSrv.URL, `http_requests_total{job="ctlogd"}`); len(vec) != 0 {
		t.Fatalf("dead ctlogd still in instant answers: %+v", vec)
	}
	if vec := fleetVector(t, aggSrv.URL, `count_over_time(http_requests_total{job="ctlogd"}[1m])`); len(vec) == 0 {
		t.Fatal("dead ctlogd's history vanished from range selections before retention")
	}
	if vec := fleetVector(t, aggSrv.URL, `http_requests_total{job="staleapid"}`); len(vec) == 0 {
		t.Fatal("healthy staleapid missing from instant answers after peer death")
	}
}

func loadGet(ctx context.Context, hc *http.Client, u string) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, err
	}
	n, _ := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return n, fmt.Errorf("GET %s: status %d", u, resp.StatusCode)
	}
	return n, nil
}
