package dnsname

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Example.COM", "example.com"},
		{"example.com.", "example.com"},
		{"EXAMPLE.com.", "example.com"},
		{"already.lower", "already.lower"},
		{"", ""},
	}
	for _, c := range cases {
		if got := Canonical(c.in); got != c.want {
			t.Errorf("Canonical(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCheckValid(t *testing.T) {
	valid := []string{
		"example.com",
		"a.b.c.d.e.example.co.uk",
		"xn--bcher-kva.example",
		"_acme-challenge.example.com",
		"123.example.com",
		"sni123456.cloudflaressl.com",
	}
	for _, n := range valid {
		if err := Check(n, false); err != nil {
			t.Errorf("Check(%q) = %v, want nil", n, err)
		}
	}
}

func TestCheckInvalid(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"", ErrEmpty},
		{strings.Repeat("a", 64) + ".com", ErrLabelLong},
		{strings.Repeat("a.", 130) + "com", ErrTooLong},
		{"foo..com", ErrBadLabel},
		{"-foo.com", ErrBadHyphen},
		{"foo-.com", ErrBadHyphen},
		{"f*o.com", ErrBadRune},
		{"foo com", ErrBadRune},
		{"*.example.com", ErrBadWildcat}, // wildcard not allowed here
	}
	for _, c := range cases {
		if err := Check(c.name, false); err != c.err {
			t.Errorf("Check(%q) = %v, want %v", c.name, err, c.err)
		}
	}
}

func TestCheckWildcard(t *testing.T) {
	if err := Check("*.example.com", true); err != nil {
		t.Errorf("wildcard rejected: %v", err)
	}
	if err := Check("foo.*.example.com", true); err != ErrBadWildcat {
		t.Errorf("interior wildcard: %v", err)
	}
	if err := Check("*", true); err != ErrBadWildcat {
		t.Errorf("bare wildcard: %v", err)
	}
}

func TestParentChain(t *testing.T) {
	name := "a.b.example.com"
	want := []string{"b.example.com", "example.com", "com", ""}
	for _, w := range want {
		name = Parent(name)
		if name != w {
			t.Fatalf("Parent chain got %q, want %q", name, w)
		}
	}
}

func TestIsSubdomain(t *testing.T) {
	cases := []struct {
		child, parent string
		want          bool
	}{
		{"a.example.com", "example.com", true},
		{"example.com", "example.com", true},
		{"aexample.com", "example.com", false},
		{"example.com", "a.example.com", false},
		{"deep.a.example.com", "example.com", true},
		{"example.com", "", false},
	}
	for _, c := range cases {
		if got := IsSubdomain(c.child, c.parent); got != c.want {
			t.Errorf("IsSubdomain(%q,%q) = %v", c.child, c.parent, got)
		}
	}
}

func TestMatchWildcard(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"*.example.com", "foo.example.com", true},
		{"*.example.com", "example.com", false},
		{"*.example.com", "a.b.example.com", false}, // one label only
		{"example.com", "example.com", true},
		{"example.com", "foo.example.com", false},
		{"*.cloudflaressl.com", "sni12345.cloudflaressl.com", true},
	}
	for _, c := range cases {
		if got := MatchWildcard(c.pattern, c.name); got != c.want {
			t.Errorf("MatchWildcard(%q,%q) = %v", c.pattern, c.name, got)
		}
	}
}

func TestReverse(t *testing.T) {
	if got := Reverse("a.b.c"); got != "c.b.a" {
		t.Fatalf("Reverse = %q", got)
	}
	if got := Reverse("single"); got != "single" {
		t.Fatalf("Reverse single label = %q", got)
	}
}

func TestCountLabels(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{{"", 0}, {"com", 1}, {"example.com", 2}, {"a.b.c.d", 4}}
	for _, c := range cases {
		if got := CountLabels(c.in); got != c.want {
			t.Errorf("CountLabels(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestQuickReverseInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		// Build a name from arbitrary bytes: map into [a-z] labels.
		var b strings.Builder
		for i, c := range raw {
			if i > 0 && i%5 == 0 {
				b.WriteByte('.')
			}
			b.WriteByte('a' + c%26)
		}
		name := strings.Trim(b.String(), ".")
		if name == "" {
			return true
		}
		name = strings.ReplaceAll(name, "..", ".")
		return Reverse(Reverse(name)) == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCanonicalIdempotent(t *testing.T) {
	f := func(s string) bool {
		c := Canonical(s)
		return Canonical(c) == c || strings.HasSuffix(c, ".")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubdomainTransitive(t *testing.T) {
	// child ⊂ mid and mid ⊂ parent ⇒ child ⊂ parent, for generated chains.
	f := func(a, b, c uint8) bool {
		parent := "example.com"
		mid := label(a) + "." + parent
		child := label(b) + "." + label(c) + "." + parent
		_ = mid
		return IsSubdomain(child, parent) && IsSubdomain(mid, parent)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func label(n uint8) string {
	return string(rune('a' + n%26))
}
