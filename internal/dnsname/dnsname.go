// Package dnsname provides canonicalisation and label arithmetic for DNS
// names. Every name that crosses a package boundary in this repository is
// canonical: lower-case ASCII, no trailing dot, labels separated by single
// dots. The package also implements the wildcard-matching rules certificates
// use (RFC 6125 §6.4.3: a single '*' as the entire left-most label).
package dnsname

import (
	"errors"
	"strings"
)

// Errors returned by Check.
var (
	ErrEmpty      = errors.New("dnsname: empty name")
	ErrTooLong    = errors.New("dnsname: name exceeds 253 octets")
	ErrBadLabel   = errors.New("dnsname: bad label")
	ErrLabelLong  = errors.New("dnsname: label exceeds 63 octets")
	ErrBadRune    = errors.New("dnsname: invalid character")
	ErrBadHyphen  = errors.New("dnsname: label starts or ends with hyphen")
	ErrBadWildcat = errors.New("dnsname: wildcard label must be exactly *")
)

// Canonical lower-cases s and strips one trailing dot. It does not validate;
// call Check for that.
func Canonical(s string) string {
	s = strings.TrimSuffix(s, ".")
	// Fast path: already lower-case.
	lower := true
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			lower = false
			break
		}
	}
	if lower {
		return s
	}
	return strings.ToLower(s)
}

// Check validates a canonical DNS name, optionally permitting a leading
// wildcard label ("*.example.com").
func Check(name string, allowWildcard bool) error {
	if name == "" {
		return ErrEmpty
	}
	if len(name) > 253 {
		return ErrTooLong
	}
	labels := strings.Split(name, ".")
	for i, l := range labels {
		if l == "*" {
			if !allowWildcard || i != 0 || len(labels) == 1 {
				return ErrBadWildcat
			}
			continue
		}
		if err := checkLabel(l); err != nil {
			return err
		}
	}
	return nil
}

func checkLabel(l string) error {
	if l == "" {
		return ErrBadLabel
	}
	if len(l) > 63 {
		return ErrLabelLong
	}
	if l[0] == '-' || l[len(l)-1] == '-' {
		return ErrBadHyphen
	}
	for i := 0; i < len(l); i++ {
		c := l[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
		case c == '-' || c == '_': // '_' occurs in ACME/service labels
		default:
			return ErrBadRune
		}
	}
	return nil
}

// Labels splits a canonical name into its labels.
func Labels(name string) []string {
	if name == "" {
		return nil
	}
	return strings.Split(name, ".")
}

// CountLabels returns the number of labels without allocating.
func CountLabels(name string) int {
	if name == "" {
		return 0
	}
	return strings.Count(name, ".") + 1
}

// Parent returns the name with its left-most label removed, or "" when no
// parent exists ("com" → "").
func Parent(name string) string {
	i := strings.IndexByte(name, '.')
	if i < 0 {
		return ""
	}
	return name[i+1:]
}

// IsSubdomain reports whether child is equal to, or a strict subdomain of,
// parent. Both must be canonical.
func IsSubdomain(child, parent string) bool {
	if parent == "" {
		return false
	}
	if child == parent {
		return true
	}
	return strings.HasSuffix(child, "."+parent)
}

// MatchWildcard reports whether pattern (possibly "*.example.com") covers
// name under RFC 6125 rules: the wildcard matches exactly one left-most
// label and never matches the bare parent.
func MatchWildcard(pattern, name string) bool {
	if !strings.HasPrefix(pattern, "*.") {
		return pattern == name
	}
	suffix := pattern[1:] // ".example.com"
	if !strings.HasSuffix(name, suffix) {
		return false
	}
	first := name[:len(name)-len(suffix)]
	return first != "" && !strings.Contains(first, ".")
}

// Reverse returns the name with label order reversed ("a.b.c" → "c.b.a").
// Reversed names sort hierarchically, which the DNS snapshot differ exploits
// for sorted-merge comparisons.
func Reverse(name string) string {
	labels := Labels(name)
	for i, j := 0, len(labels)-1; i < j; i, j = i+1, j-1 {
		labels[i], labels[j] = labels[j], labels[i]
	}
	return strings.Join(labels, ".")
}
