// Package registry implements the gTLD domain-registration lifecycle behind
// the paper's registrant-change analysis: registration, renewal, transfer,
// expiration through the 45-day grace and 30-day redemption periods, pending
// delete, and public re-registration (drop-catch) — which is the only
// registrant change that surfaces as a new registry creation date.
package registry

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"sync"

	"stalecert/internal/dnsname"
	"stalecert/internal/simtime"
)

// Lifecycle windows (Verisign-style gTLD policy, in days).
const (
	GraceDays         = 45 // registrar auto-renew grace after expiry
	RedemptionDays    = 30 // redemption period after grace
	PendingDeleteDays = 5  // pending delete before release
)

// Status is the lifecycle state of a domain name.
type Status uint8

// Lifecycle states.
const (
	StatusAvailable Status = iota // not registered (or released)
	StatusActive
	StatusGrace      // expired, within the registrar grace window
	StatusRedemption // recoverable only by the prior registrant
	StatusPendingDelete
)

var statusNames = [...]string{"available", "active", "grace", "redemption", "pendingDelete"}

// String names the status.
func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Registration is one continuous registration of a domain by (a chain of)
// registrants. The registry creation date only changes when the domain is
// deleted and re-registered.
type Registration struct {
	Domain     string
	Registrant string // opaque registrant identity
	Registrar  string
	Created    simtime.Day // registry creation date
	Expires    simtime.Day
	// Transfers lists (day, newRegistrant) changes that did NOT reset the
	// creation date — the cases the paper's method cannot see.
	Transfers []Transfer
}

// Transfer is an ownership change within a registration.
type Transfer struct {
	Day           simtime.Day
	To            string
	PreRelease    bool // registrar sold the expired name before deletion
	FromRegistrar string
}

// Errors returned by Registry operations.
var (
	ErrTaken        = errors.New("registry: domain not available")
	ErrNotFound     = errors.New("registry: domain not registered")
	ErrBadDomain    = errors.New("registry: malformed domain")
	ErrWrongTLD     = errors.New("registry: TLD not operated by this registry")
	ErrNotRenewable = errors.New("registry: domain not renewable in its current state")
)

type domainState struct {
	current *Registration // nil when available
	status  Status
	expired simtime.Day // when the current registration entered grace
	history []Registration
}

// Registry operates a set of TLDs (e.g. Verisign's com and net). It is safe
// for concurrent use.
type Registry struct {
	tlds map[string]bool

	mu      sync.RWMutex
	domains map[string]*domainState
	clock   simtime.Day
	// schedule holds (domain, due-day) checkpoints so Tick only visits
	// domains with a lifecycle transition due, not the whole namespace.
	schedule dueHeap
}

// dueEntry schedules a lifecycle check for a domain.
type dueEntry struct {
	domain string
	due    simtime.Day
}

// dueHeap is a min-heap on due day.
type dueHeap []dueEntry

func (h dueHeap) Len() int           { return len(h) }
func (h dueHeap) Less(i, j int) bool { return h[i].due < h[j].due }
func (h dueHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *dueHeap) Push(x any)        { *h = append(*h, x.(dueEntry)) }
func (h *dueHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// New creates a registry operating the given TLDs.
func New(tlds ...string) *Registry {
	r := &Registry{tlds: make(map[string]bool, len(tlds)), domains: make(map[string]*domainState)}
	for _, t := range tlds {
		r.tlds[dnsname.Canonical(t)] = true
	}
	return r
}

// TLDs returns the operated TLDs, sorted.
func (r *Registry) TLDs() []string {
	out := make([]string, 0, len(r.tlds))
	for t := range r.tlds {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

func (r *Registry) checkDomain(domain string) (string, error) {
	domain = dnsname.Canonical(domain)
	if err := dnsname.Check(domain, false); err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadDomain, err)
	}
	if dnsname.CountLabels(domain) != 2 {
		return "", fmt.Errorf("%w: %q is not a second-level domain", ErrBadDomain, domain)
	}
	if !r.tlds[dnsname.Parent(domain)] {
		return "", fmt.Errorf("%w: %q", ErrWrongTLD, domain)
	}
	return domain, nil
}

// Register creates a new registration for an available domain, valid for the
// given number of years. It returns the new registration.
func (r *Registry) Register(domain, registrant, registrar string, day simtime.Day, years int) (Registration, error) {
	domain, err := r.checkDomain(domain)
	if err != nil {
		return Registration{}, err
	}
	if years < 1 {
		years = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.domains[domain]
	if st == nil {
		st = &domainState{}
		r.domains[domain] = st
	}
	if st.current != nil {
		return Registration{}, fmt.Errorf("%w: %q is %v", ErrTaken, domain, st.status)
	}
	reg := Registration{
		Domain:     domain,
		Registrant: registrant,
		Registrar:  registrar,
		Created:    day,
		Expires:    day + simtime.Day(365*years),
	}
	st.current = &reg
	st.status = StatusActive
	heap.Push(&r.schedule, dueEntry{domain: domain, due: reg.Expires + 1})
	return reg, nil
}

// Renew extends the current registration. Domains in grace can still be
// renewed by their registrant; redemption and later cannot (drop instead).
func (r *Registry) Renew(domain string, day simtime.Day, years int) error {
	domain, err := r.checkDomain(domain)
	if err != nil {
		return err
	}
	if years < 1 {
		years = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.domains[domain]
	if st == nil || st.current == nil {
		return fmt.Errorf("%w: %q", ErrNotFound, domain)
	}
	if st.status != StatusActive && st.status != StatusGrace {
		return fmt.Errorf("%w: %q is %v", ErrNotRenewable, domain, st.status)
	}
	base := st.current.Expires
	if base < day {
		base = day
	}
	st.current.Expires = base + simtime.Day(365*years)
	st.status = StatusActive
	heap.Push(&r.schedule, dueEntry{domain: domain, due: st.current.Expires + 1})
	return nil
}

// Transfer changes the registrant of a live registration without touching
// the creation date — the registrant-change flavours (cases 1 and 2 in §2.1)
// that thin WHOIS cannot reveal. preRelease marks case 2 (sale of an expired
// domain before deletion), allowed only during grace/redemption.
func (r *Registry) Transfer(domain, newRegistrant string, day simtime.Day, preRelease bool) error {
	domain, err := r.checkDomain(domain)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.domains[domain]
	if st == nil || st.current == nil {
		return fmt.Errorf("%w: %q", ErrNotFound, domain)
	}
	if preRelease {
		if st.status != StatusGrace && st.status != StatusRedemption {
			return fmt.Errorf("registry: pre-release transfer of %q requires grace/redemption, is %v", domain, st.status)
		}
		// Pre-release sale restores the registration.
		st.status = StatusActive
		st.current.Expires = day + 365
		heap.Push(&r.schedule, dueEntry{domain: domain, due: st.current.Expires + 1})
	} else if st.status != StatusActive {
		return fmt.Errorf("registry: transfer of %q requires active status, is %v", domain, st.status)
	}
	st.current.Transfers = append(st.current.Transfers, Transfer{Day: day, To: newRegistrant, PreRelease: preRelease})
	st.current.Registrant = newRegistrant
	return nil
}

// Tick advances the lifecycle clock to day, moving expired domains through
// grace → redemption → pendingDelete → available. Released registrations move
// to history; their creation dates remain queryable via History. Tick is
// schedule-driven: only domains with a due transition are visited, so daily
// ticks over a large namespace stay cheap.
func (r *Registry) Tick(day simtime.Day) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if day > r.clock {
		r.clock = day
	}
	for len(r.schedule) > 0 && r.schedule[0].due <= day {
		e := heap.Pop(&r.schedule).(dueEntry)
		st := r.domains[e.domain]
		if st == nil || st.current == nil {
			continue // renewed-then-dropped or stale checkpoint
		}
		r.advance(e.domain, st, day)
	}
}

// advance runs the lifecycle cascade for one domain up to day and schedules
// the next checkpoint.
func (r *Registry) advance(domain string, st *domainState, day simtime.Day) {
	for st.current != nil {
		prev := st.status
		switch st.status {
		case StatusActive:
			if day > st.current.Expires {
				st.status = StatusGrace
				st.expired = st.current.Expires
			}
		case StatusGrace:
			if day > st.expired+GraceDays {
				st.status = StatusRedemption
			}
		case StatusRedemption:
			if day > st.expired+GraceDays+RedemptionDays {
				st.status = StatusPendingDelete
			}
		case StatusPendingDelete:
			if day > st.expired+GraceDays+RedemptionDays+PendingDeleteDays {
				st.history = append(st.history, *st.current)
				st.current = nil
				st.status = StatusAvailable
			}
		}
		if st.status == prev {
			break
		}
	}
	if st.current == nil {
		return
	}
	// Schedule the next transition checkpoint.
	var next simtime.Day
	switch st.status {
	case StatusActive:
		next = st.current.Expires + 1
	case StatusGrace:
		next = st.expired + GraceDays + 1
	case StatusRedemption:
		next = st.expired + GraceDays + RedemptionDays + 1
	case StatusPendingDelete:
		next = st.expired + GraceDays + RedemptionDays + PendingDeleteDays + 1
	}
	if next > day {
		heap.Push(&r.schedule, dueEntry{domain: domain, due: next})
	}
}

// Lookup returns the current registration and status of a domain.
func (r *Registry) Lookup(domain string) (Registration, Status, bool) {
	domain = dnsname.Canonical(domain)
	r.mu.RLock()
	defer r.mu.RUnlock()
	st := r.domains[domain]
	if st == nil || st.current == nil {
		return Registration{}, StatusAvailable, false
	}
	return *st.current, st.status, true
}

// History returns all past (released) registrations of a domain, oldest
// first, excluding the current one.
func (r *Registry) History(domain string) []Registration {
	domain = dnsname.Canonical(domain)
	r.mu.RLock()
	defer r.mu.RUnlock()
	st := r.domains[domain]
	if st == nil {
		return nil
	}
	return append([]Registration(nil), st.history...)
}

// Domains returns every domain that has ever been registered, sorted.
func (r *Registry) Domains() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.domains))
	for d := range r.domains {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// ActiveDomains returns the currently registered domains, sorted.
func (r *Registry) ActiveDomains() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for d, st := range r.domains {
		if st.current != nil {
			out = append(out, d)
		}
	}
	sort.Strings(out)
	return out
}
