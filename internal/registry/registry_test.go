package registry

import (
	"errors"
	"testing"
	"testing/quick"

	"stalecert/internal/simtime"
)

func TestRegisterAndLookup(t *testing.T) {
	r := New("com", "net")
	reg, err := r.Register("Example.COM", "alice", "godaddy", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Created != 100 || reg.Expires != 465 {
		t.Fatalf("reg = %+v", reg)
	}
	got, status, ok := r.Lookup("example.com")
	if !ok || status != StatusActive || got.Registrant != "alice" {
		t.Fatalf("lookup = %+v %v %v", got, status, ok)
	}
}

func TestRegisterValidation(t *testing.T) {
	r := New("com")
	cases := []struct {
		domain string
		err    error
	}{
		{"example.org", ErrWrongTLD},
		{"sub.example.com", ErrBadDomain},
		{"com", ErrBadDomain},
		{"bad domain.com", ErrBadDomain},
	}
	for _, c := range cases {
		if _, err := r.Register(c.domain, "x", "y", 0, 1); !errors.Is(err, c.err) {
			t.Errorf("Register(%q) = %v, want %v", c.domain, err, c.err)
		}
	}
	if _, err := r.Register("taken.com", "a", "r", 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("taken.com", "b", "r", 1, 1); !errors.Is(err, ErrTaken) {
		t.Fatalf("double register: %v", err)
	}
}

func TestLifecycleProgression(t *testing.T) {
	r := New("com")
	if _, err := r.Register("cycle.com", "alice", "r", 0, 1); err != nil {
		t.Fatal(err)
	}
	expires := simtime.Day(365)

	steps := []struct {
		day  simtime.Day
		want Status
	}{
		{expires, StatusActive}, // expiry day itself still active
		{expires + 1, StatusGrace},
		{expires + GraceDays, StatusGrace},
		{expires + GraceDays + 1, StatusRedemption},
		{expires + GraceDays + RedemptionDays, StatusRedemption},
		{expires + GraceDays + RedemptionDays + 1, StatusPendingDelete},
		{expires + GraceDays + RedemptionDays + PendingDeleteDays + 1, StatusAvailable},
	}
	for _, s := range steps {
		r.Tick(s.day)
		_, status, _ := r.Lookup("cycle.com")
		if status != s.want {
			t.Fatalf("day %v: status = %v, want %v", s.day, status, s.want)
		}
	}
	// Released: history keeps the old registration; re-registration gets a
	// new creation date.
	hist := r.History("cycle.com")
	if len(hist) != 1 || hist[0].Created != 0 {
		t.Fatalf("history = %+v", hist)
	}
	day := expires + GraceDays + RedemptionDays + PendingDeleteDays + 10
	reg, err := r.Register("cycle.com", "bob", "dropcatch", day, 1)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Created != day || reg.Registrant != "bob" {
		t.Fatalf("re-registration = %+v", reg)
	}
}

func TestRenewDuringGraceRestoresActive(t *testing.T) {
	r := New("com")
	if _, err := r.Register("renew.com", "alice", "r", 0, 1); err != nil {
		t.Fatal(err)
	}
	r.Tick(370) // in grace
	if _, status, _ := r.Lookup("renew.com"); status != StatusGrace {
		t.Fatalf("status = %v", status)
	}
	if err := r.Renew("renew.com", 370, 1); err != nil {
		t.Fatal(err)
	}
	got, status, _ := r.Lookup("renew.com")
	if status != StatusActive || got.Expires != 370+365 {
		t.Fatalf("after renew: %+v %v", got, status)
	}
	// Renewal before expiry extends from the old expiry date.
	r2 := New("com")
	if _, err := r2.Register("early.com", "a", "r", 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := r2.Renew("early.com", 100, 1); err != nil {
		t.Fatal(err)
	}
	reg, _, _ := r2.Lookup("early.com")
	if reg.Expires != 365+365 {
		t.Fatalf("early renew expires = %v", reg.Expires)
	}
}

func TestRenewRejectedInRedemption(t *testing.T) {
	r := New("com")
	if _, err := r.Register("late.com", "a", "r", 0, 1); err != nil {
		t.Fatal(err)
	}
	r.Tick(365 + GraceDays + 10)
	if err := r.Renew("late.com", 365+GraceDays+10, 1); !errors.Is(err, ErrNotRenewable) {
		t.Fatalf("renew in redemption: %v", err)
	}
	if err := r.Renew("never.com", 0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("renew unknown: %v", err)
	}
}

func TestTransferKeepsCreationDate(t *testing.T) {
	r := New("com")
	if _, err := r.Register("xfer.com", "alice", "r1", 50, 2); err != nil {
		t.Fatal(err)
	}
	if err := r.Transfer("xfer.com", "bob", 200, false); err != nil {
		t.Fatal(err)
	}
	reg, status, _ := r.Lookup("xfer.com")
	if reg.Registrant != "bob" || reg.Created != 50 || status != StatusActive {
		t.Fatalf("after transfer: %+v %v", reg, status)
	}
	if len(reg.Transfers) != 1 || reg.Transfers[0].To != "bob" {
		t.Fatalf("transfer log = %+v", reg.Transfers)
	}
}

func TestPreReleaseTransfer(t *testing.T) {
	r := New("com")
	if _, err := r.Register("pre.com", "alice", "r", 0, 1); err != nil {
		t.Fatal(err)
	}
	// Not allowed while active.
	if err := r.Transfer("pre.com", "eve", 100, true); err == nil {
		t.Fatal("pre-release transfer of active domain accepted")
	}
	r.Tick(380) // grace
	if err := r.Transfer("pre.com", "eve", 380, true); err != nil {
		t.Fatal(err)
	}
	reg, status, _ := r.Lookup("pre.com")
	if status != StatusActive || reg.Registrant != "eve" || reg.Created != 0 {
		t.Fatalf("pre-release result: %+v %v", reg, status)
	}
	if reg.Expires != 380+365 {
		t.Fatalf("pre-release expiry = %v", reg.Expires)
	}
	// Regular transfer requires active.
	r2 := New("com")
	if _, err := r2.Register("x.com", "a", "r", 0, 1); err != nil {
		t.Fatal(err)
	}
	r2.Tick(380)
	if err := r2.Transfer("x.com", "b", 380, false); err == nil {
		t.Fatal("regular transfer in grace accepted")
	}
}

func TestDomainsListing(t *testing.T) {
	r := New("com")
	for _, d := range []string{"b.com", "a.com", "c.com"} {
		if _, err := r.Register(d, "x", "r", 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	r.Tick(365 + GraceDays + RedemptionDays + PendingDeleteDays + 1)
	if got := r.ActiveDomains(); len(got) != 0 {
		t.Fatalf("active after drop = %v", got)
	}
	if got := r.Domains(); len(got) != 3 || got[0] != "a.com" {
		t.Fatalf("all domains = %v", got)
	}
}

func TestQuickLifecycleNeverSkipsStates(t *testing.T) {
	// Property: ticking day-by-day, status transitions follow the exact
	// order active → grace → redemption → pendingDelete → available.
	f := func(years uint8) bool {
		y := int(years)%3 + 1
		r := New("com")
		if _, err := r.Register("q.com", "a", "r", 0, y); err != nil {
			return false
		}
		order := map[Status]int{StatusActive: 0, StatusGrace: 1, StatusRedemption: 2, StatusPendingDelete: 3, StatusAvailable: 4}
		last := StatusActive
		for day := simtime.Day(0); day < simtime.Day(365*y+GraceDays+RedemptionDays+PendingDeleteDays+10); day++ {
			r.Tick(day)
			_, status, _ := r.Lookup("q.com")
			if order[status] < order[last] || order[status] > order[last]+1 {
				return false
			}
			last = status
		}
		return last == StatusAvailable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
