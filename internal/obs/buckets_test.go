package obs

import (
	"testing"
)

func TestParseLatencyBuckets(t *testing.T) {
	got, err := ParseLatencyBuckets("250us, 1ms,5ms,0.25,1s")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.00025, 0.001, 0.005, 0.25, 1}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if !approx(got[i], want[i]) {
			t.Errorf("bucket[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"", ",,", "abc", "1ms,xyz"} {
		if _, err := ParseLatencyBuckets(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestSetDurationBuckets(t *testing.T) {
	orig := DurationBuckets
	defer func() { DurationBuckets = orig }()

	if err := SetDurationBuckets([]float64{0.001, 0.25, 1}); err != nil {
		t.Fatal(err)
	}
	// New histograms pick up the override; the 0.25 bound means a 250ms SLO
	// threshold counts good events exactly instead of interpolating.
	reg := NewRegistry()
	h := reg.Histogram("http_request_seconds", nil, "service", "svc", "route", "/x")
	h.Observe(0.1)
	h.Observe(0.9)
	for _, s := range reg.Snapshot() {
		if s.Name != "http_request_seconds" {
			continue
		}
		if len(s.Buckets) != 4 { // 3 finite + +Inf
			t.Fatalf("buckets = %v", s.Buckets)
		}
		if s.Buckets[1].UpperBound != 0.25 || s.Buckets[1].Count != 1 {
			t.Errorf("0.25 bucket = %+v", s.Buckets[1])
		}
		if got := goodUnderThreshold(s, 0.25); got != 1 {
			t.Errorf("good under aligned threshold = %v, want exactly 1", got)
		}
	}

	for _, bad := range [][]float64{nil, {}, {-1}, {0}, {1, 1}, {2, 1}} {
		if err := SetDurationBuckets(bad); err == nil {
			t.Errorf("%v accepted", bad)
		}
	}
}
