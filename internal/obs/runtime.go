package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// RegisterRuntimeMetrics publishes process identity and Go runtime health
// gauges on reg (nil for Default()):
//
//	build_info{daemon,go_version,revision} 1   who is running, built from what
//	go_goroutines{daemon}                      scheduler pressure
//	go_heap_alloc_bytes{daemon}                live heap
//	go_heap_objects{daemon}                    live objects
//	go_gc_cycles_total{daemon}                 completed GC cycles
//	go_gc_pause_seconds_total{daemon}          cumulative stop-the-world time
//
// build_info follows the Prometheus convention of a constant-1 gauge whose
// labels carry the values, so a fleet scrape answers "which revision is each
// daemon running" without a separate inventory. The runtime gauges refresh
// via a snapshot hook — values are read at scrape time, with no background
// ticker. Safe to call more than once per registry; later calls only update
// the daemon label set registered first.
func RegisterRuntimeMetrics(reg *Registry, daemon string) {
	if reg == nil {
		reg = Default()
	}
	goVersion, revision := buildIdentity()
	reg.Gauge("build_info",
		"daemon", daemon, "go_version", goVersion, "revision", revision).Set(1)

	goroutines := reg.Gauge("go_goroutines", "daemon", daemon)
	heapAlloc := reg.Gauge("go_heap_alloc_bytes", "daemon", daemon)
	heapObjects := reg.Gauge("go_heap_objects", "daemon", daemon)
	gcCycles := reg.Gauge("go_gc_cycles_total", "daemon", daemon)
	gcPause := reg.Gauge("go_gc_pause_seconds_total", "daemon", daemon)
	reg.OnSnapshot(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapObjects.Set(float64(ms.HeapObjects))
		gcCycles.Set(float64(ms.NumGC))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
	})
}

var buildIdentityOnce = sync.OnceValues(func() (string, string) {
	goVersion := runtime.Version()
	revision := "unknown"
	if info, ok := debug.ReadBuildInfo(); ok {
		if info.GoVersion != "" {
			goVersion = info.GoVersion
		}
		dirty := false
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				if len(s.Value) > 12 {
					revision = s.Value[:12]
				} else if s.Value != "" {
					revision = s.Value
				}
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if dirty && revision != "unknown" {
			revision += "-dirty"
		}
	}
	return goVersion, revision
})

// buildIdentity returns the go toolchain version and (short) VCS revision the
// binary was built from, resolved once per process.
func buildIdentity() (goVersion, revision string) { return buildIdentityOnce() }
