package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
)

// TraceHeader is the HTTP header carrying the request ID between services,
// in the W3C Trace Context "traceparent" layout:
//
//	00-<32 hex trace id>-<16 hex span id>-01
//
// The trace ID is the correlation key: every hop of one logical operation
// (scrape -> get-sth -> get-entries) logs the same trace, while each hop
// mints its own span ID.
const TraceHeader = "traceparent"

// RequestID identifies one logical request across service boundaries.
type RequestID struct {
	TraceID [16]byte
	SpanID  [8]byte
}

// NewRequestID mints a random request ID.
func NewRequestID() RequestID {
	var id RequestID
	_, _ = rand.Read(id.TraceID[:])
	_, _ = rand.Read(id.SpanID[:])
	return id
}

// IsZero reports whether the ID is unset.
func (id RequestID) IsZero() bool { return id.TraceID == [16]byte{} }

// String renders the traceparent header value.
func (id RequestID) String() string {
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = hex.AppendEncode(b, id.TraceID[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, id.SpanID[:])
	b = append(b, "-01"...)
	return string(b)
}

// Trace returns the hex trace ID — the value access logs record.
func (id RequestID) Trace() string { return hex.EncodeToString(id.TraceID[:]) }

// Span returns the hex span ID — the form span records store and link by.
func (id RequestID) Span() string { return hex.EncodeToString(id.SpanID[:]) }

// Child returns the ID with a fresh span ID, for an outgoing hop that stays
// inside the same trace.
func (id RequestID) Child() RequestID {
	_, _ = rand.Read(id.SpanID[:])
	return id
}

// ParseTraceparent decodes a traceparent header value. It accepts any
// two-hex-digit version and requires a non-zero trace ID.
func ParseTraceparent(h string) (RequestID, bool) {
	var id RequestID
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return id, false
	}
	if !isHex(h[:2]) || !isHex(h[53:55]) {
		return id, false
	}
	if _, err := hex.Decode(id.TraceID[:], []byte(h[3:35])); err != nil {
		return RequestID{}, false
	}
	if _, err := hex.Decode(id.SpanID[:], []byte(h[36:52])); err != nil {
		return RequestID{}, false
	}
	if id.IsZero() {
		return RequestID{}, false
	}
	return id, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F') {
			return false
		}
	}
	return true
}

type requestIDKey struct{}

// ContextWithRequestID returns ctx carrying the request ID.
func ContextWithRequestID(ctx context.Context, id RequestID) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFromContext extracts the request ID placed by Middleware or
// ContextWithRequestID; ok is false when none is set.
func RequestIDFromContext(ctx context.Context) (RequestID, bool) {
	id, ok := ctx.Value(requestIDKey{}).(RequestID)
	return id, ok
}

// RequestIDFromRequest is a convenience for handlers below a Middleware.
func RequestIDFromRequest(r *http.Request) (RequestID, bool) {
	return RequestIDFromContext(r.Context())
}

type attemptKey struct{}

// ContextWithAttempt returns ctx carrying a retry attempt number (1-based).
// The resilient transport tags each attempt's context so the per-attempt
// client span records which try it was.
func ContextWithAttempt(ctx context.Context, attempt int) context.Context {
	return context.WithValue(ctx, attemptKey{}, attempt)
}

// AttemptFromContext extracts the attempt number, or 0 when unset.
func AttemptFromContext(ctx context.Context) int {
	n, _ := ctx.Value(attemptKey{}).(int)
	return n
}
