package obs

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements triggered profiling: ProfileCapture snapshots
// CPU/heap/goroutine pprof profiles into a bounded on-disk ring when an SLO
// burn-rate alert fires or an operator POSTs /v1/profile, and serves the
// ring at GET /v1/profiles — a p99 regression caught by staleload comes with
// the profile that explains it instead of a "reproduce locally" chase.

// ProfileEntry describes one captured profile set.
type ProfileEntry struct {
	// ID is the ring-directory name, e.g. "p000003-slo-latency-page".
	ID string `json:"id"`
	// Reason records what triggered the capture.
	Reason string `json:"reason"`
	// CapturedAt is the capture start time.
	CapturedAt time.Time `json:"captured_at"`
	// Files lists the profile files in the entry (cpu.pprof, heap.pprof,
	// goroutine.pprof).
	Files []string `json:"files"`
}

// ProfileCapture writes triggered pprof snapshots into a bounded directory
// ring. Captures serialise on an internal mutex (the runtime allows one CPU
// profile at a time) and automatic triggers are rate-limited by Cooldown so
// a flapping alert cannot fill the disk. Each capture set also embeds a
// black-box snapshot of the log ring (logs.jsonl) — the alert or panic that
// triggered the capture ships with the log lines that preceded it.
type ProfileCapture struct {
	// Dir is the ring directory (created on first capture).
	Dir string
	// Max bounds retained entries; older entries are pruned (default 16).
	Max int
	// CPUDuration is the CPU profile length (default 2s).
	CPUDuration time.Duration
	// Cooldown is the minimum gap between TriggerAsync captures (default
	// 1m); explicit Capture calls ignore it.
	Cooldown time.Duration
	// Logger receives capture outcomes (nil: slog.Default()).
	Logger *slog.Logger
	// Logs is the ring snapshotted into each capture set (nil: the
	// process-wide DefaultLogRing at capture time).
	Logs *LogRing

	mu        sync.Mutex
	seq       int
	lastAuto  time.Time
	capturing bool
}

// The process-wide capture target the Middleware panic path triggers;
// Flags.Setup points it at the -profile-dir ring (nil when disabled).
var defaultCapture atomic.Pointer[ProfileCapture]

// SetDefaultCapture installs (or, with nil, clears) the capture set that
// crash black-boxes are written through.
func SetDefaultCapture(c *ProfileCapture) {
	if c == nil {
		defaultCapture.Store(nil)
		return
	}
	defaultCapture.Store(c)
}

// DefaultCapture returns the process-wide capture target, or nil.
func DefaultCapture() *ProfileCapture { return defaultCapture.Load() }

func (p *ProfileCapture) logger() *slog.Logger {
	if p.Logger != nil {
		return p.Logger
	}
	return slog.Default()
}

func (p *ProfileCapture) max() int {
	if p.Max > 0 {
		return p.Max
	}
	return 16
}

func (p *ProfileCapture) cpuDuration() time.Duration {
	if p.CPUDuration > 0 {
		return p.CPUDuration
	}
	return 2 * time.Second
}

// safeReason keeps trigger reasons usable as directory-name components.
func safeReason(reason string) string {
	var b strings.Builder
	for _, r := range reason {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	s := strings.Trim(b.String(), "-")
	if s == "" {
		return "manual"
	}
	if len(s) > 48 {
		s = s[:48]
	}
	return s
}

// Capture synchronously snapshots CPU (for CPUDuration), heap and goroutine
// profiles into a fresh ring entry and prunes the ring to Max. Concurrent
// calls coalesce: a capture already in flight makes Capture return an error
// immediately rather than queue behind the CPU profiler.
func (p *ProfileCapture) Capture(reason string) (ProfileEntry, error) {
	p.mu.Lock()
	if p.capturing {
		p.mu.Unlock()
		return ProfileEntry{}, fmt.Errorf("obs: profile capture already in flight")
	}
	p.capturing = true
	p.seq++
	seq := p.seq
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.capturing = false
		p.mu.Unlock()
	}()

	entry := ProfileEntry{
		ID:         fmt.Sprintf("p%06d-%s", seq, safeReason(reason)),
		Reason:     reason,
		CapturedAt: time.Now().UTC(),
	}
	dir := filepath.Join(p.Dir, entry.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ProfileEntry{}, fmt.Errorf("obs: profile dir: %w", err)
	}

	// CPU first: it needs wall time; heap/goroutine are instant snapshots
	// taken right after, so the three describe the same incident window.
	cpuPath := filepath.Join(dir, "cpu.pprof")
	cpuFile, err := os.Create(cpuPath)
	if err != nil {
		return ProfileEntry{}, fmt.Errorf("obs: create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(cpuFile); err != nil {
		cpuFile.Close()
		// Another subsystem (e.g. /debug/pprof/profile) holds the CPU
		// profiler; capture the instant profiles anyway.
		os.Remove(cpuPath)
		p.logger().Warn("cpu profile unavailable, capturing heap/goroutine only", "err", err)
	} else {
		time.Sleep(p.cpuDuration())
		pprof.StopCPUProfile()
		cpuFile.Close()
		entry.Files = append(entry.Files, "cpu.pprof")
	}

	for _, prof := range []string{"heap", "goroutine"} {
		f, err := os.Create(filepath.Join(dir, prof+".pprof"))
		if err != nil {
			return ProfileEntry{}, fmt.Errorf("obs: create %s profile: %w", prof, err)
		}
		err = pprof.Lookup(prof).WriteTo(f, 0)
		f.Close()
		if err != nil {
			return ProfileEntry{}, fmt.Errorf("obs: write %s profile: %w", prof, err)
		}
		entry.Files = append(entry.Files, prof+".pprof")
	}

	// Black box: the log lines leading up to whatever triggered this capture,
	// snapshotted next to the profiles they explain.
	ring := p.Logs
	if ring == nil {
		ring = DefaultLogRing()
	}
	if ring != nil {
		if err := ring.SnapshotDir(dir); err != nil {
			p.logger().Warn("log black-box snapshot failed", "err", err)
		} else {
			entry.Files = append(entry.Files, LogSnapshotName)
		}
	}

	meta, err := json.MarshalIndent(entry, "", "  ")
	if err == nil {
		err = os.WriteFile(filepath.Join(dir, "meta.json"), append(meta, '\n'), 0o644)
	}
	if err != nil {
		return ProfileEntry{}, fmt.Errorf("obs: write profile meta: %w", err)
	}
	p.prune()
	p.logger().Info("profile captured", "id", entry.ID, "reason", reason,
		"files", strings.Join(entry.Files, ","))
	return entry, nil
}

// TriggerAsync starts a capture in the background unless one ran within
// Cooldown — the alert-hook entry point, safe to call from an SLO
// evaluation tick.
func (p *ProfileCapture) TriggerAsync(reason string) {
	cooldown := p.Cooldown
	if cooldown <= 0 {
		cooldown = time.Minute
	}
	p.mu.Lock()
	if time.Since(p.lastAuto) < cooldown {
		p.mu.Unlock()
		return
	}
	p.lastAuto = time.Now()
	p.mu.Unlock()
	go func() {
		if _, err := p.Capture(reason); err != nil {
			p.logger().Warn("triggered profile capture failed", "reason", reason, "err", err)
		}
	}()
}

// prune deletes the oldest ring entries beyond Max.
func (p *ProfileCapture) prune() {
	entries := p.List()
	for len(entries) > p.max() {
		oldest := entries[0]
		_ = os.RemoveAll(filepath.Join(p.Dir, oldest.ID))
		entries = entries[1:]
	}
}

// List returns the ring's entries, oldest first. The listing is read from
// disk so it survives restarts.
func (p *ProfileCapture) List() []ProfileEntry {
	dirs, err := os.ReadDir(p.Dir)
	if err != nil {
		return nil
	}
	var out []ProfileEntry
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(p.Dir, d.Name(), "meta.json"))
		if err != nil {
			continue
		}
		var e ProfileEntry
		if json.Unmarshal(data, &e) != nil || e.ID != d.Name() {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	// Resuming after a restart must not reuse sequence numbers of surviving
	// entries.
	if len(out) > 0 {
		last := out[len(out)-1].ID
		var seq int
		if _, err := fmt.Sscanf(last, "p%06d", &seq); err == nil {
			p.mu.Lock()
			if seq > p.seq {
				p.seq = seq
			}
			p.mu.Unlock()
		}
	}
	return out
}

// Handler serves the capture surface:
//
//	POST /v1/profile                 trigger a synchronous capture
//	                                 (?reason=... names the entry)
//	GET  /v1/profiles                list ring entries (JSON, oldest first)
//	GET  /v1/profiles/{id}/{file}    download one profile file
func (p *ProfileCapture) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/profile", func(w http.ResponseWriter, r *http.Request) {
		reason := r.URL.Query().Get("reason")
		if reason == "" {
			reason = "manual"
		}
		entry, err := p.Capture(reason)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = json.NewEncoder(w).Encode(entry)
	})
	mux.HandleFunc("GET /v1/profiles", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		entries := p.List()
		if entries == nil {
			entries = []ProfileEntry{}
		}
		_ = json.NewEncoder(w).Encode(entries)
	})
	mux.HandleFunc("GET /v1/profiles/{id}/{file}", func(w http.ResponseWriter, r *http.Request) {
		id, file := r.PathValue("id"), r.PathValue("file")
		// The ring only ever contains names shaped like safeReason output;
		// reject anything that could escape the directory.
		if id != filepath.Base(id) || file != filepath.Base(file) ||
			strings.HasPrefix(id, ".") || strings.HasPrefix(file, ".") {
			http.Error(w, "bad profile path", http.StatusBadRequest)
			return
		}
		http.ServeFile(w, r, filepath.Join(p.Dir, id, file))
	})
	return mux
}
