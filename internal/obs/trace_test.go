package obs

import (
	"fmt"
	"strings"
	"testing"
)

func TestTraceNesting(t *testing.T) {
	tr := NewTrace("pipeline")
	world := tr.StartSpan("world_build")
	world.SetDays(100, 465)
	world.AddItems(42)
	world.End()
	det := tr.StartSpan("detect")
	join := tr.StartSpan("join")
	join.AddItems(7)
	join.End()
	det.End()
	tr.End()

	root := tr.Root()
	if len(root.children) != 2 {
		t.Fatalf("root children = %d, want 2", len(root.children))
	}
	if root.children[0].Name != "world_build" || root.children[1].Name != "detect" {
		t.Errorf("children = %q, %q", root.children[0].Name, root.children[1].Name)
	}
	if len(root.children[1].children) != 1 || root.children[1].children[0].Name != "join" {
		t.Errorf("join not nested under detect")
	}

	j := tr.JSON()
	if j.Name != "pipeline" || len(j.Children) != 2 {
		t.Fatalf("JSON root = %+v", j)
	}
	if j.Children[0].Items != 42 || j.Children[0].Days != "100..465" {
		t.Errorf("world_build JSON = %+v", j.Children[0])
	}
	if j.Children[1].Children[0].Items != 7 {
		t.Errorf("join JSON = %+v", j.Children[1].Children[0])
	}
	for _, c := range append([]StageJSON{j}, j.Children...) {
		if c.Ms < 0 {
			t.Errorf("stage %q has negative duration", c.Name)
		}
	}
}

func TestTraceEndClosesOpenDescendants(t *testing.T) {
	tr := NewTrace("root")
	outer := tr.StartSpan("outer")
	tr.StartSpan("inner") // never explicitly ended
	outer.End()
	if !outer.children[0].ended {
		t.Error("inner span not closed by outer.End")
	}
	// New spans open under the root again.
	s := tr.StartSpan("after")
	s.End()
	if len(tr.Root().children) != 2 {
		t.Errorf("root children = %d, want 2", len(tr.Root().children))
	}
}

func TestTraceDayFormatter(t *testing.T) {
	tr := NewTrace("root")
	tr.FormatDay = func(d int) string {
		return map[int]string{1: "2019-01-02", 5: "2019-01-06"}[d]
	}
	s := tr.StartSpan("stage")
	s.SetDays(1, 5)
	s.End()
	tr.End()
	if got := tr.JSON().Children[0].Days; got != "2019-01-02..2019-01-06" {
		t.Errorf("formatted days = %q", got)
	}
	if out := tr.Render(); !strings.Contains(out, "days=2019-01-02..2019-01-06") {
		t.Errorf("render missing formatted days:\n%s", out)
	}
}

func TestRenderShape(t *testing.T) {
	tr := NewTrace("pipeline")
	s := tr.StartSpan("stage")
	s.AddItems(3)
	s.End()
	tr.End()
	out := tr.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("render lines = %d, want 2:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "pipeline") {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  stage") || !strings.Contains(lines[1], "items=3") {
		t.Errorf("line 1 = %q", lines[1])
	}
}

func TestRenderDeepNesting(t *testing.T) {
	// Depth past 14 used to hand fmt a negative name-column width (30-2*depth
	// with the * verb), which pads by the absolute value — deep spans grew
	// wider again. The width is clamped now; just require every level to
	// render with monotonically non-decreasing indentation and no panic.
	tr := NewTrace("root")
	for i := 0; i < 20; i++ {
		tr.StartSpan(fmt.Sprintf("level%d", i))
	}
	tr.End()
	out := tr.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 21 {
		t.Fatalf("render lines = %d, want 21:\n%s", len(lines), out)
	}
	prevIndent := -1
	for i, line := range lines {
		indent := len(line) - len(strings.TrimLeft(line, " "))
		if indent < prevIndent {
			t.Fatalf("line %d indent %d < previous %d:\n%s", i, indent, prevIndent, out)
		}
		prevIndent = indent
	}
	if !strings.Contains(lines[20], "level19") {
		t.Errorf("deepest line = %q", lines[20])
	}
}

func TestTraceRecordMirrorsStages(t *testing.T) {
	st := NewSpanStore(8, 1, 0)
	st.Registry = NewRegistry()

	// Under an enclosing request: stages parent beneath the request's span.
	id := NewRequestID()
	tr := NewTrace("staleness")
	sp := tr.StartSpan("evidence")
	sp.AddItems(2)
	sp.End()
	tr.StartSpan("detect").End()
	tr.End()
	tr.Record(st, id, "staleapid")
	st.RecordRoot(SpanRecord{TraceID: id.Trace(), SpanID: id.Span(), Service: "staleapid",
		Name: "GET /v1/...", Kind: SpanServer, Status: 200})
	rec, ok := st.Trace(id.Trace())
	if !ok {
		t.Fatal("trace not kept")
	}
	// root stage + evidence + detect + server root
	if len(rec.Spans) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(rec.Spans), rec.Spans)
	}
	roots := BuildSpanTree(rec.Spans)
	if len(roots) != 1 || roots[0].SpanID != id.Span() {
		t.Fatalf("stage spans did not attach under the request span: %+v", roots)
	}
	stageRoot := roots[0].Children[0]
	if stageRoot.Kind != SpanStage || stageRoot.Name != "staleness" || len(stageRoot.Children) != 2 {
		t.Fatalf("stage tree wrong: %+v", stageRoot)
	}
	if stageRoot.Children[0].Items+stageRoot.Children[1].Items != 2 {
		t.Fatalf("stage items lost: %+v", stageRoot.Children)
	}

	// Standalone (zero RequestID): the root stage roots and keeps the trace.
	st2 := NewSpanStore(8, 1, 0)
	st2.Registry = NewRegistry()
	tr2 := NewTrace("pipeline")
	tr2.StartSpan("build").End()
	tr2.End()
	tr2.Record(st2, RequestID{}, "experiments")
	if st2.Len() != 1 {
		t.Fatalf("standalone trace not kept, len=%d", st2.Len())
	}
	got := st2.Traces(TraceFilter{WithSpans: true})[0]
	if got.Root != "experiments pipeline" || len(got.Spans) != 2 {
		t.Fatalf("standalone trace wrong: root=%q spans=%d", got.Root, len(got.Spans))
	}
}
