package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file implements the fleet query language served at /fleet/query: a
// small, Prometheus-shaped expression evaluator over the obsagg TSDB.
// Supported surface — enough for real fleet questions, nothing more:
//
//	metric{label="v", other!="x", re=~"a|b"}          instant selector
//	metric{...}[90s]                                  range selector
//	rate(m[1m])  increase(m[1m])  irate(m[1m])        counter functions
//	avg/max/min/sum/count_over_time(m[1m])            window aggregations
//	histogram_quantile(0.99, m_bucket{...})           log-linear buckets,
//	                                                  exemplar-aware
//	sum/avg/min/max/count by (label, ...) (expr)      label aggregation
//	expr + - * / expr,   expr > < >= <= == != expr    arithmetic & filters
//
// Counter functions are restart-aware: a value drop inside the window is
// treated as a counter reset, contributing only the post-reset value.

// ---- AST ----

type exprNode interface{ exprString() string }

type numLit struct{ v float64 }

type selectorNode struct {
	name     string
	matchers []Matcher
	rng      time.Duration // 0 = instant selector
}

type callNode struct {
	fn   string
	args []exprNode
}

type aggNode struct {
	op  string
	by  []string
	arg exprNode
}

type binNode struct {
	op       string
	lhs, rhs exprNode
}

func (n numLit) exprString() string { return formatFloat(n.v) }
func (n selectorNode) exprString() string {
	s := n.name
	if len(n.matchers) > 0 {
		s += "{...}"
	}
	if n.rng > 0 {
		s += "[" + n.rng.String() + "]"
	}
	return s
}
func (n callNode) exprString() string { return n.fn + "(...)" }
func (n aggNode) exprString() string  { return n.op + "(...)" }
func (n binNode) exprString() string {
	return n.lhs.exprString() + " " + n.op + " " + n.rhs.exprString()
}

// ---- lexer ----

type token struct {
	kind byte // 'i' ident, 'n' number, 's' string, 'o' operator/punct, 0 EOF
	text string
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func isIdentStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') || c == '.' }

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isIdentStart(c):
			j := i + 1
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			toks = append(toks, token{'i', src[i:j]})
			i = j
		case c >= '0' && c <= '9' || c == '.':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' ||
				src[j] == 'e' || src[j] == 'E' ||
				((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, token{'n', src[i:j]})
			i = j
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			var b strings.Builder
			for j < len(src) && src[j] != quote {
				if src[j] == '\\' && j+1 < len(src) {
					switch src[j+1] {
					case 'n':
						b.WriteByte('\n')
					default:
						b.WriteByte(src[j+1])
					}
					j += 2
					continue
				}
				b.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("unterminated string at offset %d", i)
			}
			toks = append(toks, token{'s', b.String()})
			i = j + 1
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "=~", "!~", "!=", "==", ">=", "<=":
				toks = append(toks, token{'o', two})
				i += 2
				continue
			}
			switch c {
			case '{', '}', '(', ')', '[', ']', ',', '=', '>', '<', '+', '-', '*', '/':
				toks = append(toks, token{'o', string(c)})
				i++
			default:
				return nil, fmt.Errorf("unexpected character %q at offset %d", c, i)
			}
		}
	}
	return toks, nil
}

// ---- parser ----

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return token{}
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(kind byte, text string) error {
	t := p.next()
	if t.kind != kind || (text != "" && t.text != text) {
		return fmt.Errorf("expected %q, got %q", text, t.text)
	}
	return nil
}

var aggOps = map[string]bool{"sum": true, "avg": true, "min": true, "max": true, "count": true}

var queryFuncs = map[string]bool{
	"rate": true, "increase": true, "irate": true,
	"avg_over_time": true, "max_over_time": true, "min_over_time": true,
	"sum_over_time": true, "count_over_time": true,
	"histogram_quantile": true,
}

// ParseQuery parses one fleet query expression.
func ParseQuery(src string) (exprNode, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	n, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != 0 {
		return nil, fmt.Errorf("trailing input at %q", t.text)
	}
	return n, nil
}

func (p *parser) parseExpr() (exprNode, error) { return p.parseCompare() }

func (p *parser) parseCompare() (exprNode, error) {
	lhs, err := p.parseAddSub()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != 'o' {
			return lhs, nil
		}
		switch t.text {
		case ">", "<", ">=", "<=", "==", "!=":
			p.next()
			rhs, err := p.parseAddSub()
			if err != nil {
				return nil, err
			}
			lhs = binNode{op: t.text, lhs: lhs, rhs: rhs}
		default:
			return lhs, nil
		}
	}
}

func (p *parser) parseAddSub() (exprNode, error) {
	lhs, err := p.parseMulDiv()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != 'o' || (t.text != "+" && t.text != "-") {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseMulDiv()
		if err != nil {
			return nil, err
		}
		lhs = binNode{op: t.text, lhs: lhs, rhs: rhs}
	}
}

func (p *parser) parseMulDiv() (exprNode, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != 'o' || (t.text != "*" && t.text != "/") {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		lhs = binNode{op: t.text, lhs: lhs, rhs: rhs}
	}
}

func (p *parser) parseUnary() (exprNode, error) {
	if t := p.peek(); t.kind == 'o' && t.text == "-" {
		p.next()
		n, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return binNode{op: "*", lhs: numLit{-1}, rhs: n}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (exprNode, error) {
	t := p.peek()
	switch t.kind {
	case 'n':
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", t.text)
		}
		return numLit{v}, nil
	case 'o':
		if t.text == "(" {
			p.next()
			n, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect('o', ")"); err != nil {
				return nil, err
			}
			return n, nil
		}
		return nil, fmt.Errorf("unexpected %q", t.text)
	case 'i':
		p.next()
		name := t.text
		if aggOps[name] {
			if nt := p.peek(); nt.kind == 'i' && nt.text == "by" || nt.kind == 'o' && nt.text == "(" {
				return p.parseAgg(name)
			}
		}
		if queryFuncs[name] {
			if nt := p.peek(); nt.kind == 'o' && nt.text == "(" {
				return p.parseCall(name)
			}
		}
		return p.parseSelector(name)
	}
	return nil, fmt.Errorf("unexpected end of query")
}

// parseAgg accepts both `sum by (a, b) (expr)` and `sum(expr) by (a, b)`.
func (p *parser) parseAgg(op string) (exprNode, error) {
	var by []string
	var err error
	if t := p.peek(); t.kind == 'i' && t.text == "by" {
		p.next()
		if by, err = p.parseLabelList(); err != nil {
			return nil, err
		}
	}
	if err := p.expect('o', "("); err != nil {
		return nil, err
	}
	arg, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect('o', ")"); err != nil {
		return nil, err
	}
	if t := p.peek(); by == nil && t.kind == 'i' && t.text == "by" {
		p.next()
		if by, err = p.parseLabelList(); err != nil {
			return nil, err
		}
	}
	return aggNode{op: op, by: by, arg: arg}, nil
}

func (p *parser) parseLabelList() ([]string, error) {
	if err := p.expect('o', "("); err != nil {
		return nil, err
	}
	labels := []string{}
	for {
		t := p.next()
		if t.kind == 'o' && t.text == ")" {
			return labels, nil
		}
		if t.kind != 'i' {
			return nil, fmt.Errorf("expected label name, got %q", t.text)
		}
		labels = append(labels, t.text)
		if nt := p.peek(); nt.kind == 'o' && nt.text == "," {
			p.next()
		}
	}
}

func (p *parser) parseCall(fn string) (exprNode, error) {
	if err := p.expect('o', "("); err != nil {
		return nil, err
	}
	var args []exprNode
	for {
		if t := p.peek(); t.kind == 'o' && t.text == ")" {
			p.next()
			break
		}
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if t := p.peek(); t.kind == 'o' && t.text == "," {
			p.next()
		}
	}
	return callNode{fn: fn, args: args}, nil
}

func (p *parser) parseSelector(name string) (exprNode, error) {
	sel := selectorNode{name: name}
	if t := p.peek(); t.kind == 'o' && t.text == "{" {
		p.next()
		for {
			t := p.next()
			if t.kind == 'o' && t.text == "}" {
				break
			}
			if t.kind != 'i' {
				return nil, fmt.Errorf("expected label name in matcher, got %q", t.text)
			}
			opTok := p.next()
			var op MatchOp
			switch opTok.text {
			case "=":
				op = MatchEq
			case "!=":
				op = MatchNe
			case "=~":
				op = MatchRe
			case "!~":
				op = MatchNre
			default:
				return nil, fmt.Errorf("bad matcher operator %q", opTok.text)
			}
			val := p.next()
			if val.kind != 's' {
				return nil, fmt.Errorf("matcher value for %s must be a quoted string", t.text)
			}
			m, err := NewMatcher(t.text, op, val.text)
			if err != nil {
				return nil, err
			}
			sel.matchers = append(sel.matchers, m)
			if nt := p.peek(); nt.kind == 'o' && nt.text == "," {
				p.next()
			}
		}
	}
	if t := p.peek(); t.kind == 'o' && t.text == "[" {
		p.next()
		dt := p.next()
		// Durations lex as number+ident ("90" "s") or as a single ident ("1m30s"
		// starts with a digit, so: number "1" + ident "m30s").
		spec := dt.text
		for {
			nt := p.peek()
			if nt.kind == 'i' || nt.kind == 'n' {
				p.next()
				spec += nt.text
				continue
			}
			break
		}
		d, err := time.ParseDuration(spec)
		if err != nil {
			// Bare numbers are seconds.
			if secs, serr := strconv.ParseFloat(spec, 64); serr == nil {
				d = time.Duration(secs * float64(time.Second))
			} else {
				return nil, fmt.Errorf("bad range duration %q", spec)
			}
		}
		if d <= 0 {
			return nil, fmt.Errorf("range duration must be positive")
		}
		if err := p.expect('o', "]"); err != nil {
			return nil, err
		}
		sel.rng = d
	}
	return sel, nil
}

// ---- values ----

type vecSample struct {
	name     string // metric family, kept only for bare selectors
	labels   string
	pairs    []string
	v        float64
	exemplar *Exemplar
}

type matrixSeries struct {
	labels   string
	pairs    []string
	pts      []Point
	exemplar *Exemplar
}

// queryValue is float64 (scalar), []vecSample or []matrixSeries.
type queryValue interface{}

// ---- evaluator ----

type evalCtx struct {
	db *TSDB
	at time.Time
}

func evalInstant(db *TSDB, node exprNode, at time.Time) (queryValue, error) {
	return (&evalCtx{db: db, at: at}).eval(node)
}

func (c *evalCtx) eval(node exprNode) (queryValue, error) {
	switch n := node.(type) {
	case numLit:
		return n.v, nil
	case selectorNode:
		if n.rng > 0 {
			sel := c.db.Select(n.name, n.matchers, c.at.Add(-n.rng), c.at)
			out := make([]matrixSeries, 0, len(sel))
			for _, sd := range sel {
				out = append(out, matrixSeries{labels: sd.Labels, pairs: sd.Pairs, pts: sd.Points, exemplar: sd.Exemplar})
			}
			return out, nil
		}
		sel := c.db.Latest(n.name, n.matchers, c.at)
		out := make([]vecSample, 0, len(sel))
		for _, sd := range sel {
			out = append(out, vecSample{name: sd.Name, labels: sd.Labels, pairs: sd.Pairs,
				v: sd.Points[0].V, exemplar: sd.Exemplar})
		}
		return out, nil
	case callNode:
		return c.evalCall(n)
	case aggNode:
		return c.evalAgg(n)
	case binNode:
		return c.evalBin(n)
	}
	return nil, fmt.Errorf("unknown expression node")
}

func (c *evalCtx) evalMatrixArg(n callNode) ([]matrixSeries, error) {
	if len(n.args) != 1 {
		return nil, fmt.Errorf("%s expects exactly one range-vector argument", n.fn)
	}
	v, err := c.eval(n.args[0])
	if err != nil {
		return nil, err
	}
	m, ok := v.([]matrixSeries)
	if !ok {
		return nil, fmt.Errorf("%s expects a range vector (did you forget [duration]?)", n.fn)
	}
	return m, nil
}

func (c *evalCtx) evalCall(n callNode) (queryValue, error) {
	switch n.fn {
	case "rate", "increase", "irate":
		mat, err := c.evalMatrixArg(n)
		if err != nil {
			return nil, err
		}
		var out []vecSample
		for _, sr := range mat {
			if len(sr.pts) < 2 {
				continue
			}
			v, ok := counterFunc(n.fn, sr.pts)
			if !ok {
				continue
			}
			out = append(out, vecSample{labels: sr.labels, pairs: sr.pairs, v: v, exemplar: sr.exemplar})
		}
		return out, nil
	case "avg_over_time", "max_over_time", "min_over_time", "sum_over_time", "count_over_time":
		mat, err := c.evalMatrixArg(n)
		if err != nil {
			return nil, err
		}
		var out []vecSample
		for _, sr := range mat {
			if len(sr.pts) == 0 {
				continue
			}
			out = append(out, vecSample{labels: sr.labels, pairs: sr.pairs,
				v: overTime(n.fn, sr.pts), exemplar: sr.exemplar})
		}
		return out, nil
	case "histogram_quantile":
		if len(n.args) != 2 {
			return nil, fmt.Errorf("histogram_quantile expects (q, bucket-vector)")
		}
		qv, err := c.eval(n.args[0])
		if err != nil {
			return nil, err
		}
		q, ok := qv.(float64)
		if !ok {
			return nil, fmt.Errorf("histogram_quantile quantile must be a scalar")
		}
		bv, err := c.eval(n.args[1])
		if err != nil {
			return nil, err
		}
		vec, ok := bv.([]vecSample)
		if !ok {
			return nil, fmt.Errorf("histogram_quantile expects an instant bucket vector")
		}
		return histogramQuantileVec(q, vec), nil
	}
	return nil, fmt.Errorf("unknown function %q", n.fn)
}

// counterFunc computes the restart-aware counter functions over one series'
// window. rate and increase adjust for resets across the whole window (a
// drop adds the pre-reset value back); irate uses only the last two points,
// treating a drop as a reset to zero — the instantaneous variant the burst
// alert rule relies on.
func counterFunc(fn string, pts []Point) (float64, bool) {
	switch fn {
	case "irate":
		a, b := pts[len(pts)-2], pts[len(pts)-1]
		dt := b.T.Sub(a.T).Seconds()
		if dt <= 0 {
			return 0, false
		}
		dv := b.V - a.V
		if dv < 0 {
			dv = b.V
		}
		return dv / dt, true
	case "rate", "increase":
		first, last := pts[0], pts[len(pts)-1]
		dt := last.T.Sub(first.T).Seconds()
		if dt <= 0 {
			return 0, false
		}
		adj := 0.0
		prev := first.V
		for _, p := range pts[1:] {
			if p.V < prev {
				adj += prev
			}
			prev = p.V
		}
		inc := last.V - first.V + adj
		if fn == "increase" {
			return inc, true
		}
		return inc / dt, true
	}
	return 0, false
}

func overTime(fn string, pts []Point) float64 {
	switch fn {
	case "count_over_time":
		return float64(len(pts))
	case "sum_over_time", "avg_over_time":
		sum := 0.0
		for _, p := range pts {
			sum += p.V
		}
		if fn == "sum_over_time" {
			return sum
		}
		return sum / float64(len(pts))
	case "max_over_time":
		m := pts[0].V
		for _, p := range pts[1:] {
			m = math.Max(m, p.V)
		}
		return m
	case "min_over_time":
		m := pts[0].V
		for _, p := range pts[1:] {
			m = math.Min(m, p.V)
		}
		return m
	}
	return math.NaN()
}

// bucketPt is one cumulative histogram bucket with a float count — counts
// stay floats so quantiles over rate() output keep their precision.
type bucketPt struct {
	bound float64
	count float64
	ex    *Exemplar
}

// histogramQuantileVec groups a _bucket vector by its labels minus le and
// computes the quantile per group from the cumulative bucket counts. The
// result carries the exemplar of the bucket the quantile lands in, so a p99
// answer links straight to a sampled slow trace.
func histogramQuantileVec(q float64, vec []vecSample) []vecSample {
	type group struct {
		pairs   []string
		buckets []bucketPt
	}
	groups := make(map[string]*group)
	order := []string{}
	for _, s := range vec {
		le, ok := pairValue(s.pairs, "le")
		if !ok {
			continue
		}
		bound, err := parsePromFloat(le)
		if err != nil {
			continue
		}
		rest := dropPairs(s.pairs, "le")
		key := formatLabels(rest)
		g := groups[key]
		if g == nil {
			g = &group{pairs: rest}
			groups[key] = g
			order = append(order, key)
		}
		g.buckets = append(g.buckets, bucketPt{bound: bound, count: s.v, ex: s.exemplar})
	}
	sort.Strings(order)
	var out []vecSample
	for _, key := range order {
		g := groups[key]
		v, ex := histogramQuantile(q, g.buckets)
		out = append(out, vecSample{labels: key, pairs: g.pairs, v: v, exemplar: ex})
	}
	return out
}

// HistogramQuantile estimates the q-quantile from cumulative histogram
// buckets (the shape Snapshot and ParseProm produce), interpolating linearly
// inside the bucket the quantile lands in — the same estimate Prometheus'
// histogram_quantile makes over the exposition format.
func HistogramQuantile(q float64, buckets []BucketCount) float64 {
	bs := make([]bucketPt, 0, len(buckets))
	for _, b := range buckets {
		bs = append(bs, bucketPt{bound: b.UpperBound, count: float64(b.Count), ex: b.Exemplar})
	}
	v, _ := histogramQuantile(q, bs)
	return v
}

func histogramQuantile(q float64, buckets []bucketPt) (float64, *Exemplar) {
	if len(buckets) == 0 || q < 0 || q > 1 {
		return math.NaN(), nil
	}
	bs := make([]bucketPt, len(buckets))
	copy(bs, buckets)
	sort.Slice(bs, func(i, j int) bool { return bs[i].bound < bs[j].bound })
	total := bs[len(bs)-1].count
	if total <= 0 {
		return math.NaN(), nil
	}
	rank := q * total
	idx := 0
	for idx < len(bs)-1 && bs[idx].count < rank {
		idx++
	}
	b := bs[idx]
	if math.IsInf(b.bound, 1) {
		// The quantile lands in the overflow bucket: the best bounded answer
		// is the highest finite bound.
		if idx == 0 {
			return math.NaN(), b.ex
		}
		return bs[idx-1].bound, b.ex
	}
	lower, prevCount := 0.0, 0.0
	if idx > 0 {
		lower = bs[idx-1].bound
		prevCount = bs[idx-1].count
	}
	inBucket := b.count - prevCount
	if inBucket <= 0 {
		return b.bound, b.ex
	}
	return lower + (b.bound-lower)*(rank-prevCount)/inBucket, b.ex
}

func dropPairs(pairs []string, keys ...string) []string {
	out := make([]string, 0, len(pairs))
	for i := 0; i+1 < len(pairs); i += 2 {
		drop := false
		for _, k := range keys {
			if pairs[i] == k {
				drop = true
				break
			}
		}
		if !drop {
			out = append(out, pairs[i], pairs[i+1])
		}
	}
	return out
}

func keepPairs(pairs []string, keys []string) []string {
	var out []string
	for _, k := range keys {
		if v, ok := pairValue(pairs, k); ok {
			out = append(out, k, v)
		}
	}
	return out
}

func (c *evalCtx) evalAgg(n aggNode) (queryValue, error) {
	v, err := c.eval(n.arg)
	if err != nil {
		return nil, err
	}
	vec, ok := v.([]vecSample)
	if !ok {
		return nil, fmt.Errorf("%s expects an instant vector", n.op)
	}
	type group struct {
		pairs []string
		sum   float64
		min   float64
		max   float64
		count int
		ex    *Exemplar
	}
	groups := make(map[string]*group)
	order := []string{}
	for _, s := range vec {
		kept := keepPairs(s.pairs, n.by)
		key := formatLabels(kept)
		g := groups[key]
		if g == nil {
			g = &group{pairs: kept, min: s.v, max: s.v}
			groups[key] = g
			order = append(order, key)
		}
		g.sum += s.v
		g.min = math.Min(g.min, s.v)
		g.max = math.Max(g.max, s.v)
		g.count++
		if g.ex == nil {
			g.ex = s.exemplar
		}
	}
	sort.Strings(order)
	out := make([]vecSample, 0, len(groups))
	for _, key := range order {
		g := groups[key]
		var val float64
		switch n.op {
		case "sum":
			val = g.sum
		case "avg":
			val = g.sum / float64(g.count)
		case "min":
			val = g.min
		case "max":
			val = g.max
		case "count":
			val = float64(g.count)
		}
		out = append(out, vecSample{labels: key, pairs: g.pairs, v: val, exemplar: g.ex})
	}
	return out, nil
}

func isComparison(op string) bool {
	switch op {
	case ">", "<", ">=", "<=", "==", "!=":
		return true
	}
	return false
}

func applyOp(op string, a, b float64) float64 {
	switch op {
	case "+":
		return a + b
	case "-":
		return a - b
	case "*":
		return a * b
	case "/":
		return a / b
	}
	return math.NaN()
}

func compare(op string, a, b float64) bool {
	switch op {
	case ">":
		return a > b
	case "<":
		return a < b
	case ">=":
		return a >= b
	case "<=":
		return a <= b
	case "==":
		return a == b
	case "!=":
		return a != b
	}
	return false
}

func (c *evalCtx) evalBin(n binNode) (queryValue, error) {
	lv, err := c.eval(n.lhs)
	if err != nil {
		return nil, err
	}
	rv, err := c.eval(n.rhs)
	if err != nil {
		return nil, err
	}
	ls, lIsScalar := lv.(float64)
	rs, rIsScalar := rv.(float64)
	lvec, lIsVec := lv.([]vecSample)
	rvec, rIsVec := rv.([]vecSample)
	switch {
	case lIsScalar && rIsScalar:
		if isComparison(n.op) {
			if compare(n.op, ls, rs) {
				return 1.0, nil
			}
			return 0.0, nil
		}
		return applyOp(n.op, ls, rs), nil
	case lIsVec && rIsScalar:
		var out []vecSample
		for _, s := range lvec {
			if isComparison(n.op) {
				if compare(n.op, s.v, rs) {
					out = append(out, s)
				}
				continue
			}
			s.name = ""
			s.v = applyOp(n.op, s.v, rs)
			out = append(out, s)
		}
		return out, nil
	case lIsScalar && rIsVec:
		var out []vecSample
		for _, s := range rvec {
			if isComparison(n.op) {
				if compare(n.op, ls, s.v) {
					out = append(out, s)
				}
				continue
			}
			s.name = ""
			s.v = applyOp(n.op, ls, s.v)
			out = append(out, s)
		}
		return out, nil
	case lIsVec && rIsVec:
		// One-to-one matching on identical label sets — both sides of a
		// ratio like sum by (job)(errors) / sum by (job)(total) line up.
		rhs := make(map[string]float64, len(rvec))
		for _, s := range rvec {
			rhs[s.labels] = s.v
		}
		var out []vecSample
		for _, s := range lvec {
			other, ok := rhs[s.labels]
			if !ok {
				continue
			}
			if isComparison(n.op) {
				if compare(n.op, s.v, other) {
					out = append(out, s)
				}
				continue
			}
			s.name = ""
			s.v = applyOp(n.op, s.v, other)
			out = append(out, s)
		}
		return out, nil
	}
	return nil, fmt.Errorf("unsupported operand types for %q (range vectors need a function like rate())", n.op)
}

// ---- HTTP surface ----

const maxRangeSteps = 11000

type queryJSONData struct {
	ResultType string `json:"resultType"`
	Result     any    `json:"result"`
}

type queryJSON struct {
	Status string         `json:"status"`
	Data   *queryJSONData `json:"data,omitempty"`
	Error  string         `json:"error,omitempty"`
}

type vectorJSON struct {
	Metric  map[string]string `json:"metric"`
	Value   [2]any            `json:"value"`
	TraceID string            `json:"trace_id,omitempty"`
}

type matrixJSON struct {
	Metric map[string]string `json:"metric"`
	Values [][2]any          `json:"values"`
}

func metricMap(name string, pairs []string) map[string]string {
	m := make(map[string]string, len(pairs)/2+1)
	if name != "" {
		m["__name__"] = name
	}
	for i := 0; i+1 < len(pairs); i += 2 {
		m[pairs[i]] = pairs[i+1]
	}
	return m
}

func jsonValue(t time.Time, v float64) [2]any {
	return [2]any{float64(t.UnixMilli()) / 1000, strconv.FormatFloat(v, 'g', -1, 64)}
}

func writeQueryError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(queryJSON{Status: "error", Error: err.Error()})
}

func parseQueryTime(s string, fallback time.Time) (time.Time, error) {
	if s == "" {
		return fallback, nil
	}
	if secs, err := strconv.ParseFloat(s, 64); err == nil {
		return time.Unix(0, int64(secs*1e9)), nil
	}
	if t, err := time.Parse(time.RFC3339Nano, s); err == nil {
		return t, nil
	}
	return time.Time{}, fmt.Errorf("bad timestamp %q (unix seconds or RFC3339)", s)
}

func parseQueryStep(s string) (time.Duration, error) {
	if s == "" {
		return 15 * time.Second, nil
	}
	if d, err := time.ParseDuration(s); err == nil && d > 0 {
		return d, nil
	}
	if secs, err := strconv.ParseFloat(s, 64); err == nil && secs > 0 {
		return time.Duration(secs * float64(time.Second)), nil
	}
	return 0, fmt.Errorf("bad step %q", s)
}

// handleFleetQuery serves GET /fleet/query: ?query=<expr> with either
// ?time= (instant; default now) or ?start=&end=&step= (range). Responses
// use the Prometheus HTTP API shape, with trace_id carried on vector
// entries whose value descends from an exemplar-bearing bucket.
func (a *Aggregator) handleFleetQuery(w http.ResponseWriter, r *http.Request) {
	q := r.FormValue("query")
	if q == "" {
		writeQueryError(w, http.StatusBadRequest, fmt.Errorf("missing query parameter"))
		return
	}
	node, err := ParseQuery(q)
	if err != nil {
		writeQueryError(w, http.StatusBadRequest, fmt.Errorf("parse error: %w", err))
		return
	}
	db := a.tsdb()
	now := a.now()
	if r.FormValue("start") != "" || r.FormValue("end") != "" {
		start, err := parseQueryTime(r.FormValue("start"), now.Add(-time.Hour))
		if err != nil {
			writeQueryError(w, http.StatusBadRequest, err)
			return
		}
		end, err := parseQueryTime(r.FormValue("end"), now)
		if err != nil {
			writeQueryError(w, http.StatusBadRequest, err)
			return
		}
		step, err := parseQueryStep(r.FormValue("step"))
		if err != nil {
			writeQueryError(w, http.StatusBadRequest, err)
			return
		}
		if end.Before(start) {
			writeQueryError(w, http.StatusBadRequest, fmt.Errorf("end precedes start"))
			return
		}
		if int(end.Sub(start)/step) > maxRangeSteps {
			writeQueryError(w, http.StatusBadRequest, fmt.Errorf("range of %s at step %s exceeds %d steps", end.Sub(start), step, maxRangeSteps))
			return
		}
		series := make(map[string]*matrixJSON)
		order := []string{}
		for at := start; !at.After(end); at = at.Add(step) {
			v, err := evalInstant(db, node, at)
			if err != nil {
				writeQueryError(w, http.StatusUnprocessableEntity, err)
				return
			}
			var vec []vecSample
			switch tv := v.(type) {
			case float64:
				vec = []vecSample{{v: tv}}
			case []vecSample:
				vec = tv
			default:
				writeQueryError(w, http.StatusUnprocessableEntity, fmt.Errorf("range query requires an instant-vector or scalar expression"))
				return
			}
			for _, s := range vec {
				key := s.name + s.labels
				sr := series[key]
				if sr == nil {
					sr = &matrixJSON{Metric: metricMap(s.name, s.pairs)}
					series[key] = sr
					order = append(order, key)
				}
				sr.Values = append(sr.Values, jsonValue(at, s.v))
			}
		}
		sort.Strings(order)
		result := make([]matrixJSON, 0, len(order))
		for _, key := range order {
			result = append(result, *series[key])
		}
		writeQueryJSON(w, "matrix", result)
		return
	}
	at, err := parseQueryTime(r.FormValue("time"), now)
	if err != nil {
		writeQueryError(w, http.StatusBadRequest, err)
		return
	}
	v, err := evalInstant(db, node, at)
	if err != nil {
		writeQueryError(w, http.StatusUnprocessableEntity, err)
		return
	}
	switch tv := v.(type) {
	case float64:
		writeQueryJSON(w, "scalar", jsonValue(at, tv))
	case []vecSample:
		result := make([]vectorJSON, 0, len(tv))
		for _, s := range tv {
			e := vectorJSON{Metric: metricMap(s.name, s.pairs), Value: jsonValue(at, s.v)}
			if s.exemplar != nil {
				e.TraceID = s.exemplar.TraceID
			}
			result = append(result, e)
		}
		writeQueryJSON(w, "vector", result)
	case []matrixSeries:
		result := make([]matrixJSON, 0, len(tv))
		for _, sr := range tv {
			m := matrixJSON{Metric: metricMap("", sr.pairs)}
			for _, p := range sr.pts {
				m.Values = append(m.Values, jsonValue(p.T, p.V))
			}
			result = append(result, m)
		}
		writeQueryJSON(w, "matrix", result)
	}
}

func writeQueryJSON(w http.ResponseWriter, resultType string, result any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(queryJSON{Status: "success",
		Data: &queryJSONData{ResultType: resultType, Result: result}})
}
