package obs

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file implements the declarative SLO engine: specs over the RED
// metrics the Middleware already records (availability from
// http_requests_total, latency from http_request_seconds), evaluated with
// multi-window multi-burn-rate rules (Google SRE workbook style: a fast
// 5m+1h pair that pages on sharp burns, a slow 6h+3d pair that tickets on
// sustained ones). Every daemon exposes the results as slo_burn_rate,
// slo_error_budget_remaining and slo_alert_firing metric families; obsagg
// federates them and serves the fleet view at /fleet/slo.

// SLOKind discriminates objective types.
type SLOKind string

// SLO objective kinds.
const (
	// SLOAvailability counts non-5xx responses as good events.
	SLOAvailability SLOKind = "availability"
	// SLOLatency counts responses at or under Threshold as good events.
	SLOLatency SLOKind = "latency"
)

// SLOSpec is one declarative objective over a service's RED metrics.
type SLOSpec struct {
	// Name labels the exported series; defaults to the kind (plus threshold
	// for latency), e.g. "availability" or "latency-250ms".
	Name string
	Kind SLOKind
	// Objective is the target good-event fraction, e.g. 0.999.
	Objective float64
	// Threshold is the latency objective's good/bad boundary.
	Threshold time.Duration
}

// ErrorBudget returns the tolerated bad-event fraction (1 - objective).
func (s SLOSpec) ErrorBudget() float64 { return 1 - s.Objective }

// ParseSLOSpecs parses the -slo flag syntax: comma-separated objectives,
// each `availability:<percent>` or `latency:<percent>:<threshold>`, e.g.
//
//	availability:99.9,latency:99:250ms
//
// The empty string, "off" and "none" parse as no objectives.
func ParseSLOSpecs(spec string) ([]SLOSpec, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" || spec == "none" {
		return nil, nil
	}
	var out []SLOSpec
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		kind := SLOKind(fields[0])
		switch kind {
		case SLOAvailability:
			if len(fields) != 2 {
				return nil, fmt.Errorf("obs: bad SLO %q (want availability:<percent>)", part)
			}
		case SLOLatency:
			if len(fields) != 3 {
				return nil, fmt.Errorf("obs: bad SLO %q (want latency:<percent>:<threshold>)", part)
			}
		default:
			return nil, fmt.Errorf("obs: unknown SLO kind %q", fields[0])
		}
		pct, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || pct <= 0 || pct >= 100 {
			return nil, fmt.Errorf("obs: bad SLO objective %q (want a percent in (0,100))", fields[1])
		}
		s := SLOSpec{Kind: kind, Objective: pct / 100, Name: string(kind)}
		if kind == SLOLatency {
			thr, err := time.ParseDuration(fields[2])
			if err != nil || thr <= 0 {
				return nil, fmt.Errorf("obs: bad SLO latency threshold %q", fields[2])
			}
			s.Threshold = thr
			s.Name = fmt.Sprintf("latency-%s", thr)
		}
		out = append(out, s)
	}
	return out, nil
}

// SLOWindow is one evaluation window.
type SLOWindow struct {
	Name string
	Dur  time.Duration
}

// DefaultSLOWindows is the multi-window set: the first two are the fast
// (paging) pair, the last two the slow (ticket) pair.
var DefaultSLOWindows = []SLOWindow{
	{"5m", 5 * time.Minute},
	{"1h", time.Hour},
	{"6h", 6 * time.Hour},
	{"3d", 72 * time.Hour},
}

// Burn-rate thresholds: the fast pair pages when the budget burns 14.4x
// faster than sustainable (a 99.9% monthly budget gone in 2 days), the slow
// pair tickets at 1x (budget exactly exhausted by period end).
const (
	DefaultFastBurn = 14.4
	DefaultSlowBurn = 1.0
)

// SLOAlert describes one burn-rate alert transition.
type SLOAlert struct {
	Service  string
	SLO      string
	Severity string // "page" (fast pair) or "ticket" (slow pair)
	BurnRate float64
	Window   string
	Firing   bool
}

// sloSample is one cumulative good/total reading.
type sloSample struct {
	at          time.Time
	good, total float64
}

// sloState tracks one spec's sample ring and alert latches.
type sloState struct {
	spec         SLOSpec
	ring         []sloSample
	firingFast   bool
	firingSlow   bool
	burnByWindow map[string]float64
}

// SLOEngine periodically samples a registry's RED metrics, maintains
// windowed good/total deltas per spec, and exports:
//
//	slo_burn_rate{service,slo,window}        budget-burn multiple per window
//	slo_error_budget_remaining{service,slo}  fraction of the longest window's
//	                                         budget still unspent (can go negative)
//	slo_alert_firing{service,slo,severity}   1 while a burn-rate rule fires
//	slo_alerts_total{service,slo,severity}   transitions into firing
//
// Evaluation is driven either by Run's ticker or by explicit Evaluate calls
// with a caller-controlled clock (tests).
type SLOEngine struct {
	// Reg is both the metrics source and the export target (nil: Default()).
	Reg *Registry
	// Service scopes the RED series the engine reads.
	Service string
	Specs   []SLOSpec
	// Windows defaults to DefaultSLOWindows; the first two entries form the
	// fast (page) pair, the last two the slow (ticket) pair.
	Windows []SLOWindow
	// FastBurn/SlowBurn override the default burn-rate thresholds.
	FastBurn float64
	SlowBurn float64
	// Interval is Run's sampling period (default 10s).
	Interval time.Duration
	// Logger receives alert transitions (nil: slog.Default()).
	Logger *slog.Logger
	// OnAlert, when set, observes every alert transition (both directions);
	// Setup uses it to trigger profile captures.
	OnAlert func(SLOAlert)

	mu     sync.Mutex
	states []*sloState
}

func (e *SLOEngine) reg() *Registry {
	if e.Reg != nil {
		return e.Reg
	}
	return Default()
}

func (e *SLOEngine) logger() *slog.Logger {
	if e.Logger != nil {
		return e.Logger
	}
	return slog.Default()
}

func (e *SLOEngine) windows() []SLOWindow {
	if len(e.Windows) > 0 {
		return e.Windows
	}
	return DefaultSLOWindows
}

func (e *SLOEngine) fastBurn() float64 {
	if e.FastBurn > 0 {
		return e.FastBurn
	}
	return DefaultFastBurn
}

func (e *SLOEngine) slowBurn() float64 {
	if e.SlowBurn > 0 {
		return e.SlowBurn
	}
	return DefaultSlowBurn
}

// Run evaluates immediately and then on every Interval tick until ctx ends.
func (e *SLOEngine) Run(ctx context.Context) {
	interval := e.Interval
	if interval <= 0 {
		interval = 10 * time.Second
	}
	e.Evaluate(time.Now())
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			e.Evaluate(time.Now())
		}
	}
}

// collect reads the cumulative good/total event counts for one spec from the
// registry snapshot.
func collectSLO(samples []Sample, service string, spec SLOSpec) (good, total float64) {
	switch spec.Kind {
	case SLOAvailability:
		for _, s := range samples {
			if s.Name != "http_requests_total" || LabelValue(s, "service") != service {
				continue
			}
			total += s.Value
			if LabelValue(s, "code") != "5xx" {
				good += s.Value
			}
		}
	case SLOLatency:
		for _, s := range samples {
			if s.Name != "http_request_seconds" || s.Kind != KindHistogram ||
				LabelValue(s, "service") != service {
				continue
			}
			total += float64(s.Count)
			good += goodUnderThreshold(s, spec.Threshold.Seconds())
		}
	}
	return good, total
}

// goodUnderThreshold estimates how many of a histogram's observations fell
// at or under the threshold, interpolating linearly within the straddling
// bucket. Aligning a bucket boundary to the threshold (-latency-buckets)
// makes the count exact.
func goodUnderThreshold(s Sample, threshold float64) float64 {
	prevBound, prevCum := 0.0, 0.0
	for _, b := range s.Buckets {
		if b.UpperBound >= threshold {
			if math.IsInf(b.UpperBound, 1) {
				return prevCum // everything above the last finite bound is bad
			}
			width := b.UpperBound - prevBound
			if width <= 0 {
				return float64(b.Count)
			}
			frac := (threshold - prevBound) / width
			return prevCum + frac*(float64(b.Count)-prevCum)
		}
		prevBound, prevCum = b.UpperBound, float64(b.Count)
	}
	return prevCum
}

// windowDelta returns the good/total deltas over the window ending at the
// ring's newest sample, using the newest sample at or before the window
// start (falling back to the oldest while history is still shorter than the
// window).
func windowDelta(ring []sloSample, window time.Duration) (good, total float64) {
	if len(ring) < 2 {
		return 0, 0
	}
	newest := ring[len(ring)-1]
	cutoff := newest.at.Add(-window)
	ref := ring[0]
	for _, s := range ring {
		if s.at.After(cutoff) {
			break
		}
		ref = s
	}
	return newest.good - ref.good, newest.total - ref.total
}

// Evaluate takes one sample at now and refreshes every exported series.
// Exposed (with a caller-supplied clock) so tests can drive window math
// deterministically.
func (e *SLOEngine) Evaluate(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.states == nil {
		for _, spec := range e.Specs {
			e.states = append(e.states, &sloState{spec: spec, burnByWindow: make(map[string]float64)})
		}
	}
	reg := e.reg()
	snap := reg.Snapshot()
	windows := e.windows()
	longest := windows[len(windows)-1]

	for _, st := range e.states {
		good, total := collectSLO(snap, e.Service, st.spec)
		st.ring = append(st.ring, sloSample{at: now, good: good, total: total})
		// Keep one sample beyond the longest window so windowDelta always
		// has a reference point at or before the cutoff.
		cutoff := now.Add(-longest.Dur)
		drop := 0
		for drop < len(st.ring)-1 && !st.ring[drop+1].at.After(cutoff) {
			drop++
		}
		st.ring = st.ring[drop:]

		budget := st.spec.ErrorBudget()
		for _, w := range windows {
			g, t := windowDelta(st.ring, w.Dur)
			burn := 0.0
			if t > 0 && budget > 0 {
				burn = ((t - g) / t) / budget
			}
			st.burnByWindow[w.Name] = burn
			reg.Gauge("slo_burn_rate", "service", e.Service, "slo", st.spec.Name, "window", w.Name).Set(burn)
		}
		// Budget remaining over the longest window: 1 - consumed fraction.
		g, t := windowDelta(st.ring, longest.Dur)
		remaining := 1.0
		if t > 0 && budget > 0 {
			remaining = 1 - ((t-g)/t)/budget
		}
		reg.Gauge("slo_error_budget_remaining", "service", e.Service, "slo", st.spec.Name).Set(remaining)

		e.latch(st, "page", windows[0], windows[1], e.fastBurn(), &st.firingFast)
		if len(windows) >= 4 {
			e.latch(st, "ticket", windows[2], windows[3], e.slowBurn(), &st.firingSlow)
		}
	}
}

// latch updates one severity's firing state: the rule fires while BOTH
// windows burn at or above the threshold (the short window confirms the
// burn is current, the long one that it is material), and resolves when
// either drops below.
func (e *SLOEngine) latch(st *sloState, severity string, short, long SLOWindow, threshold float64, firing *bool) {
	reg := e.reg()
	shortBurn := st.burnByWindow[short.Name]
	longBurn := st.burnByWindow[long.Name]
	now := shortBurn >= threshold && longBurn >= threshold
	gauge := reg.Gauge("slo_alert_firing", "service", e.Service, "slo", st.spec.Name, "severity", severity)
	if now == *firing {
		gauge.Set(boolGauge(now))
		return
	}
	*firing = now
	gauge.Set(boolGauge(now))
	alert := SLOAlert{
		Service: e.Service, SLO: st.spec.Name, Severity: severity,
		BurnRate: shortBurn, Window: short.Name, Firing: now,
	}
	if now {
		reg.Counter("slo_alerts_total", "service", e.Service, "slo", st.spec.Name, "severity", severity).Inc()
		e.logger().Warn("slo burn-rate alert firing", "service", e.Service,
			"slo", st.spec.Name, "severity", severity,
			"burn_short", shortBurn, "burn_long", longBurn,
			"windows", short.Name+"+"+long.Name, "threshold", threshold)
	} else {
		e.logger().Info("slo burn-rate alert resolved", "service", e.Service,
			"slo", st.spec.Name, "severity", severity)
	}
	if e.OnAlert != nil {
		e.OnAlert(alert)
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// FiringAlerts lists the currently firing (slo, severity) pairs, sorted.
func (e *SLOEngine) FiringAlerts() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for _, st := range e.states {
		if st.firingFast {
			out = append(out, st.spec.Name+"/page")
		}
		if st.firingSlow {
			out = append(out, st.spec.Name+"/ticket")
		}
	}
	sort.Strings(out)
	return out
}
