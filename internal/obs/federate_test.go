package obs

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"testing"
)

// TestParsePromRoundTripsWriteProm is the federation contract: everything our
// exposition writer emits — counters, gauges, labelled histograms, and label
// values containing backslashes, quotes and newlines — must parse back into
// the identical sample list.
func TestParsePromRoundTripsWriteProm(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("plain_total").Add(42)
	reg.Counter("evil_total", "path", `C:\temp\"quoted"`, "msg", "line1\nline2").Inc()
	reg.Counter("evil_total", "path", `trailing\`, "msg", `say "hi"`).Add(7)
	reg.Gauge("temp_celsius", "room", "server\nroom").Set(21.5)
	h := reg.Histogram("req_seconds", []float64{0.1, 1, 10}, "svc", `a\b"c`)
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	WriteProm(&buf, reg)
	got, err := ParseProm(&buf)
	if err != nil {
		t.Fatalf("ParseProm: %v\nexposition:\n%s", err, buf.String())
	}
	want := reg.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch\ngot:  %+v\nwant: %+v\nexposition:\n%s", got, want, buf.String())
	}

	// Second generation: re-render the parsed samples and parse again.
	var buf2 bytes.Buffer
	WriteSamples(&buf2, got)
	got2, err := ParseProm(&buf2)
	if err != nil {
		t.Fatalf("second-generation ParseProm: %v", err)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Fatal("second-generation round trip diverged")
	}
}

func TestParsePromUntypedAndTimestamps(t *testing.T) {
	input := "some_metric{a=\"b\"} 3 1700000000\nbare_value 2.5\n"
	samples, err := ParseProm(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("samples = %+v", samples)
	}
	if samples[0].Name != "bare_value" || samples[0].Kind != KindGauge || samples[0].Value != 2.5 {
		t.Errorf("bare sample = %+v", samples[0])
	}
	if samples[1].Value != 3 {
		t.Errorf("timestamped sample = %+v", samples[1])
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		"unterminated{a=\"b 3\n",
		"bad_value{} xyz\n",
	} {
		if _, err := ParseProm(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseProm(%q) succeeded, want error", bad)
		}
	}
}

func TestWithLabelsAndLabelValue(t *testing.T) {
	s := Sample{Name: "m", Labels: `{code="2xx",svc="x"}`}
	out, err := WithLabels(s, "job", "ctlogd", "svc", "y")
	if err != nil {
		t.Fatal(err)
	}
	if out.Labels != `{code="2xx",job="ctlogd",svc="y"}` {
		t.Errorf("labels = %s", out.Labels)
	}
	if LabelValue(out, "job") != "ctlogd" || LabelValue(out, "code") != "2xx" {
		t.Errorf("LabelValue lookup failed on %s", out.Labels)
	}
	if LabelValue(out, "absent") != "" {
		t.Error("absent label should be empty")
	}
	// Escaped values survive the relabelling round trip.
	evil := Sample{Name: "m", Labels: formatLabels([]string{"p", "a\\b\n\"c\""})}
	out, err = WithLabels(evil, "job", "j")
	if err != nil {
		t.Fatal(err)
	}
	if LabelValue(out, "p") != "a\\b\n\"c\"" {
		t.Errorf("escaped value corrupted: %q", LabelValue(out, "p"))
	}
}

func TestParseTargets(t *testing.T) {
	targets, err := ParseTargets("ctlogd=http://127.0.0.1:9090, crld=http://127.0.0.1:9091")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 2 || targets[0].Job != "ctlogd" || targets[1].Job != "crld" {
		t.Fatalf("targets = %+v", targets)
	}
	if targets[0].Instance() != "127.0.0.1:9090" {
		t.Errorf("instance = %q", targets[0].Instance())
	}
	for _, bad := range []string{"", "nourl", "=http://x"} {
		if _, err := ParseTargets(bad); err == nil {
			t.Errorf("ParseTargets(%q) succeeded", bad)
		}
	}
}

func TestAggregatorFederatesAndRelabels(t *testing.T) {
	remote := NewRegistry()
	remote.Counter("http_requests_total", "service", "ctlogd", "route", "/ct/v1/get-sth", "code", "2xx").Add(5)
	ts := httptest.NewServer(HandlerFor(remote, NewHealth()))
	defer ts.Close()

	agg := &Aggregator{
		Targets:  []Target{{Job: "ctlogd", URL: ts.URL}},
		Registry: NewRegistry(),
		SelfJob:  "obsagg",
	}
	if err := agg.Ready(context.Background()); err == nil {
		t.Error("aggregator ready before any scrape round")
	}
	agg.ScrapeOnce(context.Background())
	if err := agg.Ready(context.Background()); err != nil {
		t.Errorf("aggregator not ready after a round: %v", err)
	}

	u, _ := url.Parse(ts.URL)
	fed := agg.Federated()
	var found, selfFound bool
	for _, s := range fed {
		if s.Name == "http_requests_total" && LabelValue(s, "job") == "ctlogd" {
			found = true
			if LabelValue(s, "instance") != u.Host {
				t.Errorf("instance = %q, want %q", LabelValue(s, "instance"), u.Host)
			}
			if s.Value != 5 {
				t.Errorf("federated value = %v, want 5", s.Value)
			}
		}
		if LabelValue(s, "job") == "obsagg" && s.Name == "obsagg_scrapes_total" {
			selfFound = true
		}
	}
	if !found {
		t.Fatalf("scraped series missing from federation: %+v", fed)
	}
	if !selfFound {
		t.Error("SelfJob series missing from federation")
	}

	// The federated exposition itself must parse (federation is composable).
	var buf bytes.Buffer
	WriteSamples(&buf, fed)
	if _, err := ParseProm(&buf); err != nil {
		t.Fatalf("federated exposition does not re-parse: %v", err)
	}
}

func TestAggregatorScrapeFailureKeepsLastGoodAndAlerts(t *testing.T) {
	remote := NewRegistry()
	remote.Counter("up_total").Inc()
	ts := httptest.NewServer(HandlerFor(remote, NewHealth()))

	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	agg := &Aggregator{
		Targets:  []Target{{Job: "ctlogd", URL: ts.URL}},
		Registry: NewRegistry(),
		Logger:   logger,
	}
	agg.ScrapeOnce(context.Background())
	ts.Close() // target goes down
	agg.ScrapeOnce(context.Background())

	var kept bool
	for _, s := range agg.Federated() {
		if s.Name == "up_total" {
			kept = true
		}
	}
	if !kept {
		t.Error("last good series dropped after scrape failure")
	}
	if !strings.Contains(logBuf.String(), "scrape failed") {
		t.Errorf("no scrape-failure alert in logs: %s", logBuf.String())
	}

	snap := agg.Registry.Snapshot()
	var okCount, errCount float64
	for _, s := range snap {
		if s.Name == "obsagg_scrapes_total" {
			switch LabelValue(s, "outcome") {
			case "ok":
				okCount = s.Value
			case "error":
				errCount = s.Value
			}
		}
	}
	if okCount != 1 || errCount != 1 {
		t.Errorf("scrape outcomes ok=%v error=%v, want 1/1", okCount, errCount)
	}
}

func TestAggregatorErrorRateAlert(t *testing.T) {
	remote := NewRegistry()
	remote.Counter("http_requests_total", "service", "crld", "route", "/crl/{ca}", "code", "2xx").Add(1)
	remote.Counter("http_requests_total", "service", "crld", "route", "/crl/{ca}", "code", "5xx").Add(9)
	ts := httptest.NewServer(HandlerFor(remote, NewHealth()))
	defer ts.Close()

	var logBuf bytes.Buffer
	agg := &Aggregator{
		Targets:            []Target{{Job: "crld", URL: ts.URL}},
		Registry:           NewRegistry(),
		Logger:             slog.New(slog.NewTextHandler(&logBuf, nil)),
		ErrorRateThreshold: 0.5,
	}
	agg.ScrapeOnce(context.Background())
	if !strings.Contains(logBuf.String(), "error rate above threshold") {
		t.Errorf("no error-rate alert in logs: %s", logBuf.String())
	}
}

func TestAggregatorFleetSummary(t *testing.T) {
	remote := NewRegistry()
	remote.Counter("x_total").Inc()
	ts := httptest.NewServer(HandlerFor(remote, NewHealth()))
	defer ts.Close()

	agg := &Aggregator{
		Targets:  []Target{{Job: "ctlogd", URL: ts.URL}},
		Registry: NewRegistry(),
	}
	agg.ScrapeOnce(context.Background())

	fleetSrv := httptest.NewServer(agg.Handler())
	defer fleetSrv.Close()
	resp, err := http.Get(fleetSrv.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"1 targets", "ctlogd", "up"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("fleet summary missing %q:\n%s", want, body)
		}
	}
}
