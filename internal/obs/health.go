package obs

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// ProbeFunc reports one readiness condition: nil means ready. Probes must be
// safe for concurrent use and should return quickly (the readyz handler runs
// them with a short deadline).
type ProbeFunc func(ctx context.Context) error

// Health is a named set of readiness probes backing the /healthz and /readyz
// endpoints. Liveness (/healthz) is unconditional — the process is up;
// readiness (/readyz) is the conjunction of every registered probe, so
// orchestrators hold traffic until the daemon's state (CT tree, CA registry,
// zone file, ...) is actually loaded.
type Health struct {
	started time.Time

	mu     sync.RWMutex
	names  []string
	probes map[string]ProbeFunc
}

// NewHealth creates an empty probe set.
func NewHealth() *Health {
	return &Health{started: time.Now(), probes: make(map[string]ProbeFunc)}
}

var defaultHealth = NewHealth()

// DefaultHealth returns the process-wide probe set served by the debug
// endpoints a daemon starts through Flags.Setup.
func DefaultHealth() *Health { return defaultHealth }

// Register adds (or replaces) a named probe.
func (h *Health) Register(name string, probe ProbeFunc) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.probes[name]; !ok {
		h.names = append(h.names, name)
		sort.Strings(h.names)
	}
	h.probes[name] = probe
}

// ProbeResult is one probe's outcome.
type ProbeResult struct {
	Name string
	Err  error
}

// Check runs every probe and returns results sorted by name.
func (h *Health) Check(ctx context.Context) []ProbeResult {
	h.mu.RLock()
	names := append([]string(nil), h.names...)
	probes := make([]ProbeFunc, len(names))
	for i, n := range names {
		probes[i] = h.probes[n]
	}
	h.mu.RUnlock()
	out := make([]ProbeResult, len(names))
	for i, n := range names {
		out[i] = ProbeResult{Name: n, Err: probes[i](ctx)}
	}
	return out
}

// Uptime reports time since the probe set was created (process start for
// DefaultHealth).
func (h *Health) Uptime() time.Duration { return time.Since(h.started) }

func (h *Health) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok uptime=%s\n", h.Uptime().Round(time.Millisecond))
}

func (h *Health) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	WriteReadyz(w, h.Check(ctx))
}

// WriteReadyz renders probe results with three-way semantics: any hard
// failure → 503 unready; only Degraded failures → 200 with the degradations
// listed (the daemon serves, on last-good data); all clean → 200 ready.
// Exported so daemons with bespoke readyz handlers keep the same contract.
func WriteReadyz(w http.ResponseWriter, results []ProbeResult) {
	status := http.StatusOK
	for _, res := range results {
		if res.Err != nil && !IsDegraded(res.Err) {
			status = http.StatusServiceUnavailable
			break
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(status)
	if len(results) == 0 {
		fmt.Fprintln(w, "ready (no probes registered)")
		return
	}
	for _, res := range results {
		switch {
		case res.Err == nil:
			fmt.Fprintf(w, "ready %s\n", res.Name)
		case IsDegraded(res.Err):
			fmt.Fprintf(w, "degraded %s: %v\n", res.Name, res.Err)
		default:
			fmt.Fprintf(w, "not-ready %s: %v\n", res.Name, res.Err)
		}
	}
}

// degradedError marks a probe failure as "degraded": the daemon still
// serves — on last-good data — so orchestrators should keep routing to it.
type degradedError struct{ err error }

func (e *degradedError) Error() string { return "degraded: " + e.err.Error() }
func (e *degradedError) Unwrap() error { return e.err }

// Degraded wraps a probe error to downgrade it from unready (503) to
// degraded (200 with the condition listed): the daemon is impaired but still
// serving useful responses. Degraded(nil) is nil.
func Degraded(err error) error {
	if err == nil {
		return nil
	}
	return &degradedError{err: err}
}

// IsDegraded reports whether err carries the Degraded marker.
func IsDegraded(err error) bool {
	var de *degradedError
	return errors.As(err, &de)
}

// Ready is a settable readiness condition: it starts failing with a reason
// and flips healthy once OK (or Fail with a new error) is called. Register
// its Probe with a Health and call OK when initialisation finishes.
type Ready struct {
	mu  sync.Mutex
	err error
}

// NewReady creates a condition that is initially not ready for the given
// reason.
func NewReady(reason string) *Ready {
	return &Ready{err: fmt.Errorf("%s", reason)}
}

// OK marks the condition ready.
func (r *Ready) OK() { r.set(nil) }

// Fail marks the condition not ready.
func (r *Ready) Fail(err error) { r.set(err) }

func (r *Ready) set(err error) {
	r.mu.Lock()
	r.err = err
	r.mu.Unlock()
}

// Probe implements ProbeFunc.
func (r *Ready) Probe(context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}
