package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func serverSpan(trace string, dur time.Duration, status int) SpanRecord {
	return SpanRecord{
		TraceID:  trace,
		SpanID:   "root-" + trace,
		Service:  "svc",
		Name:     "GET /x",
		Kind:     SpanServer,
		Route:    "/x",
		Start:    time.Now(),
		Duration: dur,
		Status:   status,
	}
}

func TestTailKeepsSlowTrace(t *testing.T) {
	st := NewSpanStore(8, 0, 100*time.Millisecond) // sample 0: only rules keep
	st.Registry = NewRegistry()
	if st.RecordRoot(serverSpan("fast", 10*time.Millisecond, 200)) {
		t.Fatal("fast healthy trace kept with sample=0")
	}
	if !st.RecordRoot(serverSpan("slow", 150*time.Millisecond, 200)) {
		t.Fatal("slow trace dropped")
	}
	tr, ok := st.Trace("slow")
	if !ok || tr.KeepReason != KeepSlow {
		t.Fatalf("slow trace keep reason = %q, ok=%v; want %q", tr.KeepReason, ok, KeepSlow)
	}
}

func TestTailKeepsErrorTrace(t *testing.T) {
	st := NewSpanStore(8, 0, 0)
	st.Registry = NewRegistry()
	if !st.RecordRoot(serverSpan("boom", time.Millisecond, 503)) {
		t.Fatal("5xx trace dropped")
	}
	tr, _ := st.Trace("boom")
	if tr.KeepReason != KeepError || !tr.Error {
		t.Fatalf("got reason %q error=%v; want error keep", tr.KeepReason, tr.Error)
	}

	// A healthy root whose buffered child failed is an error trace too: the
	// tail decision sees the whole trace, not just the root.
	st.Record(SpanRecord{TraceID: "childboom", SpanID: "c1", ParentID: "root-childboom",
		Service: "svc", Kind: SpanClient, Err: "connection refused"})
	if !st.RecordRoot(serverSpan("childboom", time.Millisecond, 200)) {
		t.Fatal("trace with failed child span dropped")
	}
	tr, _ = st.Trace("childboom")
	if tr.KeepReason != KeepError || len(tr.Spans) != 2 {
		t.Fatalf("got reason %q spans=%d; want error keep with both spans", tr.KeepReason, len(tr.Spans))
	}
}

func TestTailProbabilisticDropIsTraceIDConsistent(t *testing.T) {
	// The probabilistic verdict is a pure function of the trace ID, so two
	// independent stores (two daemons) agree on every trace — that is what
	// makes sampled traces stitch fleet-wide.
	a := NewSpanStore(4096, 0.2, 0)
	b := NewSpanStore(4096, 0.2, 0)
	a.Registry = NewRegistry()
	b.Registry = NewRegistry()
	kept := 0
	for i := 0; i < 2000; i++ {
		id := fmt.Sprintf("trace-%04d", i)
		ka := a.RecordRoot(serverSpan(id, time.Millisecond, 200))
		kb := b.RecordRoot(serverSpan(id, time.Millisecond, 200))
		if ka != kb {
			t.Fatalf("stores disagree on trace %s: %v vs %v", id, ka, kb)
		}
		if ka {
			kept++
		}
	}
	// ~20% of 2000 with generous slack; the exact set is deterministic.
	if kept < 250 || kept > 550 {
		t.Fatalf("kept %d of 2000 at sample=0.2, want roughly 400", kept)
	}
	// And deterministic across runs of the same store config.
	c := NewSpanStore(4096, 0.2, 0)
	c.Registry = a.Registry
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("trace-%04d", i)
		_, wantKept := a.Trace(id)
		if got := c.RecordRoot(serverSpan(id, time.Millisecond, 200)); got != wantKept {
			t.Fatalf("verdict for %s not deterministic: %v then %v", id, wantKept, got)
		}
	}
}

func TestSpanStoreRingEviction(t *testing.T) {
	st := NewSpanStore(3, 1, 0) // keep everything, capacity 3
	st.Registry = NewRegistry()
	for i := 0; i < 10; i++ {
		st.RecordRoot(serverSpan(fmt.Sprintf("t%d", i), time.Millisecond, 200))
	}
	if st.Len() != 3 {
		t.Fatalf("kept %d traces, capacity 3", st.Len())
	}
	if _, ok := st.Trace("t0"); ok {
		t.Fatal("oldest trace survived eviction")
	}
	traces := st.Traces(TraceFilter{})
	if len(traces) != 3 || traces[0].TraceID != "t9" || traces[2].TraceID != "t7" {
		t.Fatalf("newest-first listing wrong: %+v", traces)
	}
}

func TestSpanStoreConcurrentWriters(t *testing.T) {
	st := NewSpanStore(16, 1, 0)
	st.Registry = NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("w%d-t%d", w, i)
				st.Record(SpanRecord{TraceID: id, SpanID: id + "-child", ParentID: id + "-root",
					Service: "svc", Kind: SpanClient})
				st.RecordRoot(serverSpan(id, time.Millisecond, 200))
				st.Traces(TraceFilter{Limit: 4})
				st.Trace(id)
			}
		}(w)
	}
	wg.Wait()
	if got := st.Len(); got != 16 {
		t.Fatalf("store holds %d traces, capacity 16", got)
	}
}

func TestSpanStorePendingBounded(t *testing.T) {
	st := NewSpanStore(4, 1, 0)
	st.Registry = NewRegistry()
	// Roots that never finish must not leak the pending buffer.
	for i := 0; i < 100; i++ {
		st.Record(SpanRecord{TraceID: fmt.Sprintf("orphan%d", i), SpanID: "s", Service: "svc"})
	}
	st.mu.Lock()
	pending := len(st.pending)
	st.mu.Unlock()
	if pending > 4 {
		t.Fatalf("pending buffer grew to %d, capacity 4", pending)
	}
}

func TestStragglerSpanJoinsKeptTrace(t *testing.T) {
	st := NewSpanStore(8, 1, 0)
	st.Registry = NewRegistry()
	st.RecordRoot(serverSpan("t", 10*time.Millisecond, 200))
	st.Record(SpanRecord{TraceID: "t", SpanID: "late", ParentID: "root-t", Service: "other", Kind: SpanClient})
	tr, _ := st.Trace("t")
	if len(tr.Spans) != 2 {
		t.Fatalf("straggler span lost: %d spans", len(tr.Spans))
	}
	if len(tr.Services) != 2 || tr.Services[0] != "other" || tr.Services[1] != "svc" {
		t.Fatalf("services not merged sorted: %v", tr.Services)
	}
}

func TestBuildSpanTree(t *testing.T) {
	base := time.Now()
	spans := []SpanRecord{
		{SpanID: "b", ParentID: "a", Start: base.Add(2 * time.Millisecond)},
		{SpanID: "a", Start: base},
		{SpanID: "c", ParentID: "a", Start: base.Add(time.Millisecond)},
		{SpanID: "c", ParentID: "a", Start: base.Add(time.Millisecond)}, // dup dropped
		{SpanID: "d", ParentID: "missing", Start: base.Add(3 * time.Millisecond)},
	}
	roots := BuildSpanTree(spans)
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2 (a + orphan d)", len(roots))
	}
	if roots[0].SpanID != "a" || roots[1].SpanID != "d" {
		t.Fatalf("root order wrong: %s, %s", roots[0].SpanID, roots[1].SpanID)
	}
	if len(roots[0].Children) != 2 || roots[0].Children[0].SpanID != "c" || roots[0].Children[1].SpanID != "b" {
		t.Fatalf("children of a wrong: %+v", roots[0].Children)
	}
}

func TestTraceHandlers(t *testing.T) {
	st := NewSpanStore(8, 1, 0)
	st.Registry = NewRegistry()
	rec := serverSpan("t1", 20*time.Millisecond, 200)
	st.Record(SpanRecord{TraceID: "t1", SpanID: "child", ParentID: rec.SpanID, Service: "svc", Kind: SpanClient})
	st.RecordRoot(rec)
	st.RecordRoot(serverSpan("t2", time.Millisecond, 500))

	srv := httptest.NewServer(st.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/v1/traces")
	if code != 200 {
		t.Fatalf("/v1/traces status %d", code)
	}
	var list []TraceRecord
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("bad listing JSON: %v", err)
	}
	if len(list) != 2 || list[0].Spans != nil {
		t.Fatalf("listing: %d traces, spans included=%v", len(list), list[0].Spans != nil)
	}

	code, body = get("/v1/traces?error=1")
	if err := json.Unmarshal([]byte(body), &list); err != nil || code != 200 {
		t.Fatalf("error filter: %v status %d", err, code)
	}
	if len(list) != 1 || list[0].TraceID != "t2" {
		t.Fatalf("error filter returned %+v", list)
	}

	code, body = get("/v1/traces/t1")
	if code != 200 {
		t.Fatalf("/v1/traces/t1 status %d", code)
	}
	var tree TraceTreeJSON
	if err := json.Unmarshal([]byte(body), &tree); err != nil {
		t.Fatalf("bad tree JSON: %v", err)
	}
	if len(tree.Spans) != 1 || len(tree.Spans[0].Children) != 1 || tree.Spans[0].Children[0].SpanID != "child" {
		t.Fatalf("tree shape wrong: %+v", tree.Spans)
	}

	if code, _ := get("/v1/traces/nope"); code != 404 {
		t.Fatalf("unknown trace status %d, want 404", code)
	}

	var nilStore *SpanStore
	h := httptest.NewServer(nilStore.Handler())
	defer h.Close()
	resp, err := h.Client().Get(h.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("disabled store status %d, want 404", resp.StatusCode)
	}
}

func TestSpanRecordJSONRoundTrip(t *testing.T) {
	in := SpanRecord{TraceID: "t", SpanID: "s", ParentID: "p", Service: "svc", Name: "GET /x",
		Kind: SpanClient, Start: time.Now().UTC(), Duration: 1234567 * time.Nanosecond,
		Peer: "127.0.0.1:99", Status: 503, Attempt: 2, Items: 7, Err: "boom"}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out SpanRecord
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip changed record:\n in %+v\nout %+v", in, out)
	}
}
