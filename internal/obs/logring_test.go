package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func testRing(capacity int) *LogRing {
	r := NewLogRing(capacity)
	r.Registry = NewRegistry()
	return r
}

func TestLogRingEvictionOrder(t *testing.T) {
	r := testRing(4)
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 7; i++ {
		r.Append(LogRecord{Time: base.Add(time.Duration(i) * time.Second),
			Level: "INFO", Msg: "m", Attrs: map[string]string{"i": string(rune('a' + i))}})
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	recs := r.Query(LogFilter{})
	if len(recs) != 4 {
		t.Fatalf("Query returned %d records, want 4", len(recs))
	}
	// Oldest-first, and only the newest four survive: seqs 4..7.
	for i, rec := range recs {
		if want := uint64(4 + i); rec.Seq != want {
			t.Errorf("recs[%d].Seq = %d, want %d", i, rec.Seq, want)
		}
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Time.Before(recs[i-1].Time) {
			t.Errorf("records out of time order at %d", i)
		}
	}
}

func TestLogRingCountsRecords(t *testing.T) {
	r := testRing(8)
	r.Append(LogRecord{Level: "INFO", Service: "ctlogd", Msg: "a"})
	r.Append(LogRecord{Level: "ERROR", Service: "ctlogd", Msg: "b"})
	r.Append(LogRecord{Level: "ERROR", Service: "ctlogd", Msg: "c"})
	if got := r.Registry.Counter("log_records_total", "service", "ctlogd", "level", "error").Value(); got != 2 {
		t.Errorf("log_records_total{level=error} = %d, want 2", got)
	}
	if got := r.Registry.Counter("log_records_total", "service", "ctlogd", "level", "info").Value(); got != 1 {
		t.Errorf("log_records_total{level=info} = %d, want 1", got)
	}
}

func TestLogRingConcurrent(t *testing.T) {
	r := testRing(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Append(LogRecord{Time: time.Now(), Level: "INFO", Msg: "w"})
			}
		}(w)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				recs := r.Query(LogFilter{Limit: 10})
				if len(recs) > 10 {
					t.Errorf("limit ignored: %d records", len(recs))
					return
				}
				var buf bytes.Buffer
				if err := r.WriteJSONL(&buf); err != nil {
					t.Errorf("WriteJSONL: %v", err)
					return
				}
			}
		}()
	}
	// Wait for the writers, then release the readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	<-done
	if got := r.Len(); got != 64 {
		t.Fatalf("Len = %d, want full ring 64", got)
	}
	// Sequence numbers must be dense and strictly increasing across the
	// retained window even under contention.
	recs := r.Query(LogFilter{})
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("non-contiguous seq at %d: %d then %d", i, recs[i-1].Seq, recs[i].Seq)
		}
	}
}

func TestLogFilterCombinations(t *testing.T) {
	r := testRing(16)
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	r.Append(LogRecord{Time: base, Level: "DEBUG", Msg: "poll round", TraceID: "aaa"})
	r.Append(LogRecord{Time: base.Add(time.Second), Level: "INFO", Msg: "request served",
		TraceID: "bbb", Attrs: map[string]string{"route": "/v1/cert/{fp}"}})
	r.Append(LogRecord{Time: base.Add(2 * time.Second), Level: "ERROR", Msg: "backend down", TraceID: "bbb"})
	r.Append(LogRecord{Time: base.Add(3 * time.Second), Level: "WARN", Msg: "retrying", TraceID: "aaa"})

	cases := []struct {
		name string
		f    LogFilter
		want []string // expected messages in order
	}{
		{"all", LogFilter{}, []string{"poll round", "request served", "backend down", "retrying"}},
		{"min level warn", LogFilter{MinLevel: slog.LevelWarn, LevelSet: true}, []string{"backend down", "retrying"}},
		{"trace", LogFilter{TraceID: "bbb"}, []string{"request served", "backend down"}},
		{"since", LogFilter{Since: base.Add(time.Second)}, []string{"backend down", "retrying"}},
		{"q msg", LogFilter{Q: "SERVED"}, []string{"request served"}},
		{"q attr", LogFilter{Q: "/v1/cert"}, []string{"request served"}},
		{"limit", LogFilter{Limit: 2}, []string{"backend down", "retrying"}},
		{"trace+level", LogFilter{TraceID: "bbb", MinLevel: slog.LevelError, LevelSet: true}, []string{"backend down"}},
		{"since+limit", LogFilter{Since: base, Limit: 1}, []string{"retrying"}},
	}
	for _, tc := range cases {
		var got []string
		for _, rec := range r.Query(tc.f) {
			got = append(got, rec.Msg)
		}
		if strings.Join(got, "|") != strings.Join(tc.want, "|") {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestLogsEndpoint(t *testing.T) {
	r := testRing(16)
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	r.Append(LogRecord{Time: base, Level: "INFO", Msg: "hello", TraceID: "t1"})
	r.Append(LogRecord{Time: base.Add(time.Second), Level: "ERROR", Msg: "boom", TraceID: "t2"})
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(query string) []LogRecord {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/logs" + query)
		if err != nil {
			t.Fatalf("GET %s: %v", query, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", query, resp.StatusCode)
		}
		var recs []LogRecord
		if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return recs
	}
	if recs := get(""); len(recs) != 2 {
		t.Errorf("unfiltered: %d records, want 2", len(recs))
	}
	if recs := get("?level=error"); len(recs) != 1 || recs[0].Msg != "boom" {
		t.Errorf("?level=error: %+v", recs)
	}
	if recs := get("?trace=t1"); len(recs) != 1 || recs[0].Msg != "hello" {
		t.Errorf("?trace=t1: %+v", recs)
	}
	if recs := get("?q=boo&limit=5"); len(recs) != 1 || recs[0].Msg != "boom" {
		t.Errorf("?q=boo: %+v", recs)
	}
	if recs := get("?since=" + base.Format(time.RFC3339Nano)); len(recs) != 1 || recs[0].Msg != "boom" {
		t.Errorf("?since=: %+v", recs)
	}
	resp, err := http.Get(srv.URL + "/v1/logs?level=nonsense")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad level: status %d, want 400", resp.StatusCode)
	}
}

func TestTeeHandlerRecordsAttrsAndTrace(t *testing.T) {
	ring := testRing(16)
	var stderr bytes.Buffer
	inner := slog.NewTextHandler(&stderr, &slog.HandlerOptions{Level: slog.LevelDebug})
	logger := slog.New(NewTeeHandler(inner, ring))

	id := NewRequestID()
	ctx := ContextWithRequestID(context.Background(), id)
	logger.With("component", "ctlogd").WithGroup("tls").
		InfoContext(ctx, "handshake done", "cipher", "TLS_AES_128_GCM_SHA256")
	logger.Info("served", "request_id", "deadbeef", slog.Group("http", "code", 200))

	recs := ring.Query(LogFilter{})
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
	r0 := recs[0]
	if r0.Service != "ctlogd" {
		t.Errorf("Service = %q, want ctlogd (promoted from component attr)", r0.Service)
	}
	if r0.TraceID != id.Trace() || r0.SpanID != id.Span() {
		t.Errorf("trace/span = %q/%q, want from context %q/%q", r0.TraceID, r0.SpanID, id.Trace(), id.Span())
	}
	if got := r0.Attrs["tls.cipher"]; got != "TLS_AES_128_GCM_SHA256" {
		t.Errorf("group-dotted attr = %q (attrs %v)", got, r0.Attrs)
	}
	r1 := recs[1]
	if r1.TraceID != "deadbeef" {
		t.Errorf("TraceID = %q, want promoted request_id attr", r1.TraceID)
	}
	if got := r1.Attrs["http.code"]; got != "200" {
		t.Errorf("inline group attr = %q (attrs %v)", got, r1.Attrs)
	}
	// The stderr side is untouched by the tee.
	if !strings.Contains(stderr.String(), "handshake done") || !strings.Contains(stderr.String(), "served") {
		t.Errorf("stderr output missing records: %q", stderr.String())
	}
}

func TestLogLevelEndpoint(t *testing.T) {
	old := LogLevel()
	defer SetLogLevel(old)
	SetLogLevel(slog.LevelInfo)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/loglevel", serveLogLevel)
	mux.HandleFunc("PUT /v1/loglevel", serveLogLevel)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	levelOf := func(resp *http.Response) string {
		t.Helper()
		defer resp.Body.Close()
		var out struct {
			Level string `json:"level"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return out.Level
	}

	resp, err := http.Get(srv.URL + "/v1/loglevel")
	if err != nil {
		t.Fatal(err)
	}
	if got := levelOf(resp); got != "INFO" {
		t.Errorf("GET = %q, want INFO", got)
	}

	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/loglevel?level=debug", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := levelOf(resp); got != "DEBUG" {
		t.Errorf("PUT ?level=debug = %q, want DEBUG", got)
	}
	if LogLevel() != slog.LevelDebug {
		t.Errorf("process level = %v, want debug", LogLevel())
	}

	req, _ = http.NewRequest(http.MethodPut, srv.URL+"/v1/loglevel", strings.NewReader(`{"level":"warn"}`))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := levelOf(resp); got != "WARN" {
		t.Errorf("PUT JSON body = %q, want WARN", got)
	}

	req, _ = http.NewRequest(http.MethodPut, srv.URL+"/v1/loglevel?level=nonsense", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad level: status %d, want 400", resp.StatusCode)
	}
	if LogLevel() != slog.LevelWarn {
		t.Errorf("bad PUT changed level to %v", LogLevel())
	}
}

func TestLogSnapshotRoundTrip(t *testing.T) {
	r := testRing(8)
	r.Append(LogRecord{Time: time.Now().UTC(), Level: "ERROR", Service: "staleapid",
		Msg: "boom", TraceID: "abc", Attrs: map[string]string{"err": "EOF"}})
	r.Append(LogRecord{Time: time.Now().UTC(), Level: "INFO", Msg: "recovered"})

	dir := t.TempDir()
	if err := r.SnapshotDir(dir); err != nil {
		t.Fatalf("SnapshotDir: %v", err)
	}
	path := filepath.Join(dir, LogSnapshotName)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}
	recs, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatalf("ReadSnapshotFile: %v", err)
	}
	if len(recs) != 2 || recs[0].Msg != "boom" || recs[0].Attrs["err"] != "EOF" || recs[1].Msg != "recovered" {
		t.Errorf("round trip mismatch: %+v", recs)
	}
}
