package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"
)

// This file implements the fleet SLO view: every daemon's SLOEngine exports
// slo_burn_rate / slo_error_budget_remaining / slo_alert_firing gauges, the
// aggregator's normal metrics federation carries them under job/instance
// labels, and this file digests the federated series into a per-job SLO
// summary served at /fleet/slo — plus fleet-level burn-rate alerts (with
// the same re-arm policy as slow-trace alerts) so one obsagg log stream
// watches every daemon's error budget.

// FleetSLO is one (job, slo) row of the fleet SLO view.
type FleetSLO struct {
	Job             string             `json:"job"`
	Instance        string             `json:"instance"`
	SLO             string             `json:"slo"`
	BurnRates       map[string]float64 `json:"burn_rates"` // window -> burn multiple
	BudgetRemaining float64            `json:"budget_remaining"`
	Firing          []string           `json:"firing,omitempty"` // severities with alert_firing == 1
}

// FleetSLOs digests the federated slo_* series into sorted per-job rows.
func (a *Aggregator) FleetSLOs() []FleetSLO {
	type key struct{ job, instance, slo string }
	rows := make(map[key]*FleetSLO)
	row := func(s Sample) *FleetSLO {
		k := key{LabelValue(s, "job"), LabelValue(s, "instance"), LabelValue(s, "slo")}
		if k.slo == "" {
			return nil
		}
		r := rows[k]
		if r == nil {
			r = &FleetSLO{Job: k.job, Instance: k.instance, SLO: k.slo,
				BurnRates: make(map[string]float64), BudgetRemaining: 1}
			rows[k] = r
		}
		return r
	}
	for _, s := range a.Federated() {
		switch s.Name {
		case "slo_burn_rate":
			if r := row(s); r != nil {
				r.BurnRates[LabelValue(s, "window")] = s.Value
			}
		case "slo_error_budget_remaining":
			if r := row(s); r != nil {
				r.BudgetRemaining = s.Value
			}
		case "slo_alert_firing":
			if r := row(s); r != nil && s.Value >= 1 {
				r.Firing = append(r.Firing, LabelValue(s, "severity"))
			}
		}
	}
	out := make([]FleetSLO, 0, len(rows))
	for _, r := range rows {
		sort.Strings(r.Firing)
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Job != out[j].Job {
			return out[i].Job < out[j].Job
		}
		if out[i].Instance != out[j].Instance {
			return out[i].Instance < out[j].Instance
		}
		return out[i].SLO < out[j].SLO
	})
	return out
}

// The fleet-level SLO burn alert is the built-in "fleet-slo-burn" rule on
// the rules engine (rules.go): max by (instance, job, severity, slo)
// (slo_alert_firing) >= 1, keyed job/slo/severity for re-arm, counted in
// obsagg_slo_alerts_total{job,severity}, annotated from FleetSLOs.

func burnSummary(burns map[string]float64) string {
	keys := make([]string, 0, len(burns))
	for k := range burns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+formatFloat(burns[k]))
	}
	return strings.Join(parts, " ")
}

func (a *Aggregator) handleFleetSLO(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	rows := a.FleetSLOs()
	if rows == nil {
		rows = []FleetSLO{}
	}
	_ = json.NewEncoder(w).Encode(rows)
}
