package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestObserveExemplarLandsInBucket(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", []float64{0.1, 1, 10}, "svc", "a")
	h.ObserveExemplar(0.5, "trace-1")
	h.ObserveExemplar(0.05, "trace-2")
	h.Observe(5) // plain observation: no exemplar for this bucket

	var sample *Sample
	for _, s := range reg.Snapshot() {
		if s.Name == "lat_seconds" {
			s := s
			sample = &s
		}
	}
	if sample == nil {
		t.Fatal("histogram missing from snapshot")
	}
	if sample.Count != 3 {
		t.Fatalf("count %d, want 3 (ObserveExemplar must still observe)", sample.Count)
	}
	wantByBound := map[float64]string{0.1: "trace-2", 1: "trace-1"}
	for _, b := range sample.Buckets {
		want, expect := wantByBound[b.UpperBound]
		switch {
		case expect && (b.Exemplar == nil || b.Exemplar.TraceID != want):
			t.Errorf("bucket le=%v exemplar = %+v, want trace %q", b.UpperBound, b.Exemplar, want)
		case !expect && b.Exemplar != nil:
			t.Errorf("bucket le=%v has unexpected exemplar %+v", b.UpperBound, b.Exemplar)
		case expect && b.Exemplar.Value != map[string]float64{"trace-2": 0.05, "trace-1": 0.5}[want]:
			t.Errorf("bucket le=%v exemplar value = %v", b.UpperBound, b.Exemplar.Value)
		}
	}

	// Last writer wins within one bucket.
	h.ObserveExemplar(0.6, "trace-3")
	for _, s := range reg.Snapshot() {
		if s.Name != "lat_seconds" {
			continue
		}
		for _, b := range s.Buckets {
			if b.UpperBound == 1 && (b.Exemplar == nil || b.Exemplar.TraceID != "trace-3") {
				t.Errorf("bucket le=1 exemplar = %+v, want trace-3", b.Exemplar)
			}
		}
	}
}

func TestExemplarExpositionRoundTrips(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("req_seconds", []float64{0.1, 1}, "svc", "api")
	h.ObserveExemplar(0.03, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.Observe(0.5)
	reg.Counter("plain_total").Inc()

	var buf bytes.Buffer
	WriteProm(&buf, reg)
	text := buf.String()
	if !strings.Contains(text, `# {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.03`) {
		t.Fatalf("exposition missing OpenMetrics exemplar:\n%s", text)
	}

	got, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseProm on exemplar exposition: %v\n%s", err, text)
	}
	want := reg.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("exemplar round trip mismatch\ngot:  %+v\nwant: %+v\nexposition:\n%s", got, want, text)
	}

	// Second generation (aggregator re-emits what it parsed).
	var buf2 bytes.Buffer
	WriteSamples(&buf2, got)
	got2, err := ParseProm(&buf2)
	if err != nil {
		t.Fatalf("second-generation ParseProm: %v", err)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Fatal("second-generation exemplar round trip diverged")
	}
}

func TestParsePromExemplarForms(t *testing.T) {
	input := "# TYPE req_seconds histogram\n" +
		`req_seconds_bucket{le="1"} 3 # {trace_id="abc"} 0.25 1700000000` + "\n" +
		`req_seconds_bucket{le="+Inf"} 3` + "\n" +
		"req_seconds_sum 0.75\nreq_seconds_count 3\n"
	samples, err := ParseProm(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || len(samples[0].Buckets) != 2 {
		t.Fatalf("parsed %+v", samples)
	}
	ex := samples[0].Buckets[0].Exemplar
	if ex == nil || ex.TraceID != "abc" || ex.Value != 0.25 {
		t.Fatalf("exemplar with timestamp parsed as %+v", ex)
	}
	if samples[0].Buckets[1].Exemplar != nil {
		t.Fatal("+Inf bucket grew an exemplar from nowhere")
	}

	if _, err := ParseProm(strings.NewReader("# TYPE x histogram\nx_bucket{le=\"1\"} 1 # junk\n")); err == nil {
		t.Fatal("malformed exemplar accepted")
	}
}
