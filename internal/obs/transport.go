package obs

import (
	"log/slog"
	"net/http"
	"time"
)

// Transport is an instrumented http.RoundTripper for outbound calls: it
// propagates the request ID from the context (minting one when the caller has
// none) via the traceparent header with a fresh span ID per hop, records
// per-peer latency and outcome metrics, and emits a debug-level slog record
// per call carrying the trace ID for client/server log correlation.
//
// Each round trip also records one client span into the span store (Spans,
// nil for the process-wide DefaultSpans): the span's parent is the caller's
// context span, so an enclosing server request shows its outbound fan-out,
// and the resilient transport's per-attempt invocations become sibling spans
// tagged with their attempt number — retries are visible in the trace. When
// the transport minted the trace itself (no context ID — a free-standing
// client like a poller), the client span is the trace's local root and the
// tail-sampling decision runs immediately.
//
// Metrics (peer is the target host:port):
//
//	http_client_requests_total{service,peer,code}   code: 2xx..5xx or "error"
//	http_client_request_seconds{service,peer}
//
// The zero value is not usable; set Service. Base and Registry default to
// http.DefaultTransport and Default().
type Transport struct {
	Base     http.RoundTripper
	Registry *Registry
	Service  string
	// Spans receives the client spans; nil resolves DefaultSpans per call.
	Spans *SpanStore
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	reg := t.Registry
	if reg == nil {
		reg = Default()
	}
	parentSpan := ""
	id, hadID := RequestIDFromContext(req.Context())
	if hadID {
		parentSpan = id.Span()
		id = id.Child()
	} else {
		id = NewRequestID()
	}
	// RoundTrippers must not mutate the caller's request.
	req = req.Clone(req.Context())
	req.Header.Set(TraceHeader, id.String())

	peer := req.URL.Host
	start := time.Now()
	resp, err := base.RoundTrip(req)
	elapsed := time.Since(start)

	code := "error"
	status := 0
	errStr := ""
	if err == nil {
		code = statusClass(resp.StatusCode)
		status = resp.StatusCode
	} else {
		errStr = err.Error()
	}
	reg.Counter("http_client_requests_total", "service", t.Service, "peer", peer, "code", code).Inc()
	reg.Histogram("http_client_request_seconds", nil, "service", t.Service, "peer", peer).
		Observe(elapsed.Seconds())

	rec := SpanRecord{
		TraceID:  id.Trace(),
		SpanID:   id.Span(),
		ParentID: parentSpan,
		Service:  t.Service,
		Name:     req.Method + " " + req.URL.Path,
		Kind:     SpanClient,
		Start:    start,
		Duration: elapsed,
		Peer:     peer,
		Status:   status,
		Attempt:  AttemptFromContext(req.Context()),
		Err:      errStr,
	}
	st := t.Spans
	if st == nil {
		st = DefaultSpans()
	}
	if hadID {
		st.Record(rec)
	} else {
		// This transport originated the trace, so the client span is the
		// local root: decide keep/drop now.
		st.RecordRoot(rec)
	}

	slog.Debug("http request", "service", t.Service, "direction", "client",
		"method", req.Method, "peer", peer, "path", req.URL.Path, "status", status,
		"err", err, "duration_ms", float64(elapsed.Microseconds())/1000,
		"request_id", id.Trace())
	return resp, err
}

// NewHTTPClient returns an http.Client whose transport is instrumented for
// the named service against the given registry (nil for Default()).
func NewHTTPClient(reg *Registry, service string) *http.Client {
	return &http.Client{Transport: &Transport{Registry: reg, Service: service}}
}

// InstrumentClient wraps hc's transport (http.DefaultClient semantics when hc
// is nil) with an instrumented Transport on the Default registry. Packages
// use it to give their "nil means default client" constructors per-peer
// metrics without changing signatures.
func InstrumentClient(hc *http.Client, service string) *http.Client {
	if hc == nil {
		return NewHTTPClient(nil, service)
	}
	if _, ok := hc.Transport.(*Transport); ok {
		return hc // already instrumented
	}
	wrapped := *hc
	wrapped.Transport = &Transport{Base: hc.Transport, Service: service}
	return &wrapped
}
