package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Trace is a tree of timed pipeline stages. Spans opened with StartSpan nest
// under the innermost open span, so sequential pipeline code produces the
// stage hierarchy (pipeline → detector → join) without threading parents
// around. A Trace is safe for concurrent use, though stages of a sequential
// pipeline normally open and close in order.
type Trace struct {
	// FormatDay, when set, renders the simulated-day attributes of spans in
	// Render and JSON output (e.g. simtime's YYYY-MM-DD).
	FormatDay func(day int) string

	mu   sync.Mutex
	root *Span
	cur  *Span
}

// Span is one timed stage. Fields are managed by the Trace; mutate through
// the methods only.
type Span struct {
	Name string

	tr       *Trace
	parent   *Span
	start    time.Time
	dur      time.Duration
	ended    bool
	items    int64
	dayFrom  int
	dayTo    int
	hasDays  bool
	children []*Span
}

// NewTrace starts a trace whose root span has the given name.
func NewTrace(name string) *Trace {
	t := &Trace{}
	t.root = &Span{Name: name, tr: t, start: time.Now()}
	t.cur = t.root
	return t
}

// StartSpan opens a child of the innermost open span.
func (t *Trace) StartSpan(name string) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur == nil {
		t.cur = t.root // trace already ended: attach further spans to the root
	}
	s := &Span{Name: name, tr: t, parent: t.cur, start: time.Now()}
	t.cur.children = append(t.cur.children, s)
	t.cur = s
	return s
}

// End closes the span (and any still-open descendants), recording wall time.
func (s *Span) End() {
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.ended {
		return
	}
	now := time.Now()
	if isDescendant(s, t.cur) {
		// Close any descendants left open, innermost first, and pop the
		// current-span pointer past s.
		for cur := t.cur; cur != s; cur = cur.parent {
			if !cur.ended {
				cur.ended = true
				cur.dur = now.Sub(cur.start)
			}
		}
		t.cur = s.parent
	}
	s.ended = true
	s.dur = now.Sub(s.start)
}

func isDescendant(ancestor, s *Span) bool {
	for p := s; p != nil; p = p.parent {
		if p == ancestor {
			return true
		}
	}
	return false
}

// AddItems accumulates an item count on the span (entries scraped, certs
// joined, ...).
func (s *Span) AddItems(n int) {
	s.tr.mu.Lock()
	s.items += int64(n)
	s.tr.mu.Unlock()
}

// SetDays records the simulated-day range the stage covered.
func (s *Span) SetDays(from, to int) {
	s.tr.mu.Lock()
	s.dayFrom, s.dayTo, s.hasDays = from, to, true
	s.tr.mu.Unlock()
}

// End closes the root span (and anything still open beneath it).
func (t *Trace) End() { t.root.End() }

// Root returns the root span.
func (t *Trace) Root() *Span { return t.root }

// Duration returns the root span's recorded wall time (the time since start
// if the trace is still open).
func (t *Trace) Duration() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root.ended {
		return t.root.dur
	}
	return time.Since(t.root.start)
}

// StageJSON is the serializable stage-timing tree emitted by cmd/staled
// -json and cmd/experiments.
type StageJSON struct {
	Name     string      `json:"name"`
	Ms       float64     `json:"ms"`
	Items    int64       `json:"items,omitempty"`
	Days     string      `json:"days,omitempty"`
	Children []StageJSON `json:"children,omitempty"`
}

// JSON renders the trace as a stage tree.
func (t *Trace) JSON() StageJSON {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.jsonLocked(t.root)
}

func (t *Trace) jsonLocked(s *Span) StageJSON {
	out := StageJSON{
		Name:  s.Name,
		Ms:    float64(t.durLocked(s).Microseconds()) / 1000,
		Items: s.items,
		Days:  t.daysLocked(s),
	}
	for _, c := range s.children {
		out.Children = append(out.Children, t.jsonLocked(c))
	}
	return out
}

func (t *Trace) durLocked(s *Span) time.Duration {
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

func (t *Trace) daysLocked(s *Span) string {
	if !s.hasDays {
		return ""
	}
	if t.FormatDay != nil {
		return t.FormatDay(s.dayFrom) + ".." + t.FormatDay(s.dayTo)
	}
	return fmt.Sprintf("%d..%d", s.dayFrom, s.dayTo)
}

// Record mirrors the trace's stage tree into the span store as "stage"
// spans, so pipeline internals (evidence fetch, detector, join) show up
// inside the distributed trace of the request that ran them. Each stage gets
// a minted span ID; the root stage parents under id's span, stitching the
// stage tree beneath the enclosing server or call span. When id is zero —
// a standalone pipeline with no enclosing request, like cmd/experiments —
// a fresh trace is minted and the root stage becomes the trace's local root,
// making the tail keep/drop decision itself.
//
// st == nil resolves DefaultSpans; recording into a disabled (nil) store is
// a no-op.
func (t *Trace) Record(st *SpanStore, id RequestID, service string) {
	if st == nil {
		st = DefaultSpans()
	}
	if st == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id.IsZero() {
		id = NewRequestID()
		// Children first: they buffer as pending, then the root's RecordRoot
		// makes the keep/drop decision for the whole batch.
		for _, c := range t.root.children {
			t.recordStagesLocked(st, c, id, id.Span(), service)
		}
		st.RecordRoot(SpanRecord{
			TraceID:  id.Trace(),
			SpanID:   id.Span(),
			Service:  service,
			Name:     t.root.Name,
			Kind:     SpanStage,
			Start:    t.root.start,
			Duration: t.durLocked(t.root),
			Items:    t.root.items,
		})
		return
	}
	t.recordStagesLocked(st, t.root, id, id.Span(), service)
}

func (t *Trace) recordStagesLocked(st *SpanStore, s *Span, id RequestID, parent, service string) {
	sid := id.Child().Span()
	st.Record(SpanRecord{
		TraceID:  id.Trace(),
		SpanID:   sid,
		ParentID: parent,
		Service:  service,
		Name:     s.Name,
		Kind:     SpanStage,
		Start:    s.start,
		Duration: t.durLocked(s),
		Items:    s.items,
	})
	for _, c := range s.children {
		t.recordStagesLocked(st, c, id, sid, service)
	}
}

// Render returns an indented human-readable stage tree.
func (t *Trace) Render() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	t.renderLocked(&b, t.root, 0)
	return b.String()
}

func (t *Trace) renderLocked(b *strings.Builder, s *Span, depth int) {
	// Past depth 14 the name column width 30-2*depth goes non-positive; fmt
	// interprets a negative * width as its absolute value, which would make
	// deep spans pad *wider* again as depth grows. Clamp so columns degrade
	// gracefully instead.
	nameWidth := 30 - 2*depth
	if nameWidth < 1 {
		nameWidth = 1
	}
	fmt.Fprintf(b, "%-*s%-*s %10s", 2*depth, "", nameWidth, s.Name, t.durLocked(s).Round(time.Microsecond))
	if s.items > 0 {
		fmt.Fprintf(b, "  items=%d", s.items)
	}
	if d := t.daysLocked(s); d != "" {
		fmt.Fprintf(b, "  days=%s", d)
	}
	b.WriteByte('\n')
	for _, c := range s.children {
		t.renderLocked(b, c, depth+1)
	}
}
