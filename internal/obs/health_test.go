package obs

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHealthzAlwaysOK(t *testing.T) {
	h := NewHealth()
	h.Register("never", func(context.Context) error { return errors.New("down") })
	ts := httptest.NewServer(HandlerFor(NewRegistry(), h))
	defer ts.Close()
	code, body := getBody(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Errorf("healthz = %d, want 200 even with failing probes", code)
	}
	if !strings.Contains(body, "ok") {
		t.Errorf("healthz body = %q", body)
	}
}

func TestReadyzFlipsOnceProbesPass(t *testing.T) {
	h := NewHealth()
	ready := NewReady("tree not loaded")
	h.Register("ct-tree-loaded", ready.Probe)
	ts := httptest.NewServer(HandlerFor(NewRegistry(), h))
	defer ts.Close()

	code, body := getBody(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before init = %d, want 503", code)
	}
	if !strings.Contains(body, "not-ready ct-tree-loaded: tree not loaded") {
		t.Errorf("readyz body = %q", body)
	}

	ready.OK()
	code, body = getBody(t, ts.URL+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz after init = %d, want 200", code)
	}
	if !strings.Contains(body, "ready ct-tree-loaded") {
		t.Errorf("readyz body = %q", body)
	}

	// A later failure flips it back: readiness is a live conjunction.
	ready.Fail(errors.New("tree corrupted"))
	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz after Fail = %d, want 503", code)
	}
}

func TestReadyzNoProbes(t *testing.T) {
	ts := httptest.NewServer(HandlerFor(NewRegistry(), NewHealth()))
	defer ts.Close()
	code, body := getBody(t, ts.URL+"/readyz")
	if code != http.StatusOK {
		t.Errorf("readyz with no probes = %d, want 200", code)
	}
	if !strings.Contains(body, "no probes registered") {
		t.Errorf("body = %q", body)
	}
}

func TestHealthCheckSortedResults(t *testing.T) {
	h := NewHealth()
	h.Register("b", func(context.Context) error { return nil })
	h.Register("a", func(context.Context) error { return errors.New("x") })
	h.Register("c", func(context.Context) error { return nil })
	res := h.Check(context.Background())
	if len(res) != 3 || res[0].Name != "a" || res[1].Name != "b" || res[2].Name != "c" {
		t.Fatalf("results = %+v", res)
	}
	if res[0].Err == nil || res[1].Err != nil {
		t.Errorf("probe outcomes wrong: %+v", res)
	}
}
