package obs

import (
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// serverChaos is the process-wide server-side latency injection config
// (-chaos-server-latency): a deterministic counter-paced delay added to a
// fraction of handled requests, the knob acceptance tests use to force a
// latency SLO burn without a slow dependency. Nil means disabled.
type serverChaos struct {
	latency time.Duration
	rate    float64
	n       atomic.Uint64
}

// should reports whether the n-th request gets the injected delay:
// floor-crossing on a counter spaces injections evenly (rate 0.25 delays
// exactly every 4th request), independent of timing.
func (c *serverChaos) should() bool {
	n := c.n.Add(1)
	return uint64(float64(n)*c.rate) > uint64(float64(n-1)*c.rate)
}

var serverChaosCfg atomic.Pointer[serverChaos]

// SetServerChaosLatency configures (or, with d <= 0 or rate <= 0, clears)
// deterministic server-side latency injection: every Middleware-wrapped
// handler in the process sleeps d before serving the affected fraction of
// requests, counted in obs_chaos_server_latency_total. TEST/ACCEPTANCE
// ONLY — it exists so a forced latency regression flips the SLO burn-rate
// alert and exercises triggered profiling end to end.
func SetServerChaosLatency(d time.Duration, rate float64) {
	if d <= 0 || rate <= 0 {
		serverChaosCfg.Store(nil)
		return
	}
	if rate > 1 {
		rate = 1
	}
	serverChaosCfg.Store(&serverChaos{latency: d, rate: rate})
}

// Middleware wraps an HTTP handler with the per-request observability every
// daemon surface shares:
//
//   - RED metrics in reg: http_requests_total{service,route,code},
//     http_request_seconds{service,route} and the
//     http_in_flight_requests{service} gauge;
//   - panic recovery: a panicking handler produces a 500 (when nothing was
//     written yet) and an http_panics_total{service} increment instead of a
//     dead connection;
//   - request-ID propagation: an incoming traceparent header is honoured,
//     otherwise a fresh ID is minted; either way the ID is stored in the
//     request context (RequestIDFromContext) and echoed on the response;
//   - a structured slog access-log record per request, carrying the trace ID
//     so one scrape can be followed from client to server logs.
//
// The route label comes from the ServeMux pattern that matched (bounded
// cardinality even for parameterised routes like /crl/{ca}); unmatched
// requests are labelled "unmatched".
//
// The middleware also records one server span per request into the
// process-wide span store (DefaultSpans): an incoming traceparent's span ID
// becomes the server span's parent (stitching the caller's client span to
// this hop), a fresh span ID is minted for the request itself, and when the
// request finishes the store makes the tail-based keep/drop decision for the
// whole locally-buffered trace. Kept requests attach their trace ID as the
// latency histogram's bucket exemplar, so a p99 spike in
// http_request_seconds links directly to a stored trace.
func Middleware(reg *Registry, service string, next http.Handler) http.Handler {
	return MiddlewareSpans(reg, nil, service, next)
}

// MiddlewareSpans is Middleware with an explicit span store; spans == nil
// resolves DefaultSpans per request (tests and fleet simulations pass
// private stores).
func MiddlewareSpans(reg *Registry, spans *SpanStore, service string, next http.Handler) http.Handler {
	if reg == nil {
		reg = Default()
	}
	inFlight := reg.Gauge("http_in_flight_requests", "service", service)
	panics := reg.Counter("http_panics_total", "service", service)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		parentSpan := ""
		id, ok := ParseTraceparent(r.Header.Get(TraceHeader))
		if ok {
			// The incoming span ID is the caller's client span: it parents
			// this hop's server span, which gets a fresh span ID of its own.
			parentSpan = id.Span()
			id = id.Child()
		} else {
			id = NewRequestID()
		}
		r = r.WithContext(ContextWithRequestID(r.Context(), id))
		w.Header().Set(TraceHeader, id.String())

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		inFlight.Add(1)
		defer func() {
			inFlight.Add(-1)
			spanErr := ""
			if rec := recover(); rec != nil {
				panics.Inc()
				if !sw.wrote {
					http.Error(sw.ResponseWriter, "internal server error", http.StatusInternalServerError)
				}
				sw.status = http.StatusInternalServerError
				spanErr = fmt.Sprintf("panic: %v", rec)
				slog.Error("handler panic", "service", service, "method", r.Method,
					"path", r.URL.Path, "request_id", id.Trace(),
					"panic", rec, "stack", string(debug.Stack()))
				// Crash black box: snapshot profiles + the log ring (which now
				// ends with the record above) into the capture directory.
				if c := DefaultCapture(); c != nil {
					c.TriggerAsync("panic-" + service)
				}
			}
			elapsed := time.Since(start)
			route := routeLabel(r)
			code := statusClass(sw.status)
			reg.Counter("http_requests_total", "service", service, "route", route, "code", code).Inc()

			st := spans
			if st == nil {
				st = DefaultSpans()
			}
			kept := st.RecordRoot(SpanRecord{
				TraceID:  id.Trace(),
				SpanID:   id.Span(),
				ParentID: parentSpan,
				Service:  service,
				Name:     r.Method + " " + route,
				Kind:     SpanServer,
				Start:    start,
				Duration: elapsed,
				Route:    route,
				Status:   sw.status,
				Err:      spanErr,
			})
			hist := reg.Histogram("http_request_seconds", nil, "service", service, "route", route)
			if kept {
				hist.ObserveExemplar(elapsed.Seconds(), id.Trace())
			} else {
				hist.Observe(elapsed.Seconds())
			}
			slog.Info("http request", "service", service, "method", r.Method,
				"route", route, "path", r.URL.Path, "status", sw.status,
				"bytes", sw.bytes, "duration_ms", float64(elapsed.Microseconds())/1000,
				"remote", r.RemoteAddr, "request_id", id.Trace())
		}()
		if chaos := serverChaosCfg.Load(); chaos != nil && chaos.should() {
			reg.Counter("obs_chaos_server_latency_total", "service", service).Inc()
			time.Sleep(chaos.latency)
		}
		next.ServeHTTP(sw, r)
	})
}

// routeLabel derives the metrics route label for a finished request. The
// inner ServeMux records the matched pattern on the request it was handed, so
// reading it after ServeHTTP sees patterns like "GET /crl/{ca}".
func routeLabel(r *http.Request) string {
	p := r.Pattern
	if p == "" {
		return "unmatched"
	}
	if i := strings.IndexByte(p, ' '); i >= 0 {
		p = p[i+1:]
	}
	if p == "" {
		return "unmatched"
	}
	return p
}

// statusClass buckets a status code as "2xx", "4xx", ... for metric labels.
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}

// statusWriter captures the status code and body size written by a handler.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports flushing, so
// streaming handlers keep working behind the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
