package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutable time source for Aggregator.Now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func slowTrace(id string, start time.Time, dur time.Duration) TraceRecord {
	return TraceRecord{
		TraceID:  id,
		Root:     "GET /v1/cert/{fp}",
		Route:    "/v1/cert/{fp}",
		Start:    start,
		Duration: dur,
		Spans: []SpanRecord{{
			TraceID: id, SpanID: id + "-s1", Service: "staleapid",
			Name: "GET /v1/cert/{fp}", Start: start, Duration: dur,
		}},
	}
}

func alertCount(logs *bytes.Buffer) int {
	return strings.Count(logs.String(), "slow trace")
}

// TestSlowTraceAlertRearms: a trace that stays slow across scrape rounds
// re-alerts after the quiet period instead of firing exactly once forever.
func TestSlowTraceAlertRearms(t *testing.T) {
	var logs bytes.Buffer
	clock := &fakeClock{t: time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)}
	a := &Aggregator{
		Registry:   NewRegistry(),
		Logger:     slog.New(slog.NewTextHandler(&logs, nil)),
		TraceSlow:  10 * time.Millisecond,
		AlertRearm: time.Minute,
		Now:        clock.now,
	}
	tr := slowTrace("t1", clock.now(), 50*time.Millisecond)

	a.mergeTraces([]TraceRecord{tr})
	if got := alertCount(&logs); got != 1 {
		t.Fatalf("alerts after first merge = %d, want 1", got)
	}

	// Re-scraping the same slow trace inside the quiet period stays silent.
	clock.advance(10 * time.Second)
	a.mergeTraces([]TraceRecord{tr})
	if got := alertCount(&logs); got != 1 {
		t.Fatalf("alerts inside quiet period = %d, want 1", got)
	}

	// Past the quiet period the alert re-arms.
	clock.advance(time.Minute)
	a.mergeTraces([]TraceRecord{tr})
	if got := alertCount(&logs); got != 2 {
		t.Fatalf("alerts after quiet period = %d, want 2", got)
	}
	if got := a.reg().Counter("obsagg_slow_traces_total").Value(); got != 2 {
		t.Errorf("obsagg_slow_traces_total = %v, want 2", got)
	}
}

// TestSlowTraceAlertOneShotWithoutRearm: AlertRearm == 0 keeps the legacy
// fire-once-per-trace behaviour.
func TestSlowTraceAlertOneShotWithoutRearm(t *testing.T) {
	var logs bytes.Buffer
	clock := &fakeClock{t: time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)}
	a := &Aggregator{
		Registry:  NewRegistry(),
		Logger:    slog.New(slog.NewTextHandler(&logs, nil)),
		TraceSlow: 10 * time.Millisecond,
		Now:       clock.now,
	}
	tr := slowTrace("t1", clock.now(), 50*time.Millisecond)
	a.mergeTraces([]TraceRecord{tr})
	clock.advance(24 * time.Hour)
	a.mergeTraces([]TraceRecord{tr})
	if got := alertCount(&logs); got != 1 {
		t.Fatalf("one-shot alerts = %d, want 1", got)
	}
}

// evalRound mimics the tail of a scrape round for rule tests: the injected
// federated samples are appended to the TSDB at the (fake) clock, then the
// rules engine evaluates the built-in alert families against it.
func evalRound(a *Aggregator) {
	a.tsdb().Append(a.now(), a.Federated())
	a.evalRules()
}

// TestFleetSLOAlertRearms exercises the same re-arm policy on federated SLO
// burn alerts, driving the built-in fleet-slo-burn rule over injected
// federated samples.
func TestFleetSLOAlertRearms(t *testing.T) {
	var logs bytes.Buffer
	clock := &fakeClock{t: time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)}
	a := &Aggregator{
		Registry:   NewRegistry(),
		Logger:     slog.New(slog.NewTextHandler(&logs, nil)),
		AlertRearm: time.Minute,
		Now:        clock.now,
	}
	firing := []Sample{
		{Name: "slo_burn_rate", Kind: KindGauge, Value: 20,
			Labels: formatLabels([]string{"instance", "127.0.0.1:8786", "job", "staleapid", "slo", "availability", "window", "5m"})},
		{Name: "slo_alert_firing", Kind: KindGauge, Value: 1,
			Labels: formatLabels([]string{"instance", "127.0.0.1:8786", "job", "staleapid", "severity", "page", "slo", "availability"})},
	}
	a.mu.Lock()
	a.byJob = map[string][]Sample{"staleapid@127.0.0.1:8786": firing}
	a.mu.Unlock()

	rows := a.FleetSLOs()
	if len(rows) != 1 || rows[0].Job != "staleapid" || rows[0].SLO != "availability" {
		t.Fatalf("FleetSLOs = %+v", rows)
	}
	if len(rows[0].Firing) != 1 || rows[0].Firing[0] != "page" {
		t.Fatalf("firing severities = %v", rows[0].Firing)
	}
	if rows[0].BurnRates["5m"] != 20 {
		t.Errorf("burn rate = %v", rows[0].BurnRates)
	}

	count := func() int { return strings.Count(logs.String(), "fleet slo burn-rate alert") }
	evalRound(a)
	if got := count(); got != 1 {
		t.Fatalf("fleet alerts after first round = %d, want 1", got)
	}
	clock.advance(10 * time.Second)
	evalRound(a)
	if got := count(); got != 1 {
		t.Fatalf("fleet alerts inside quiet period = %d, want 1", got)
	}
	clock.advance(time.Minute)
	evalRound(a)
	if got := count(); got != 2 {
		t.Fatalf("fleet alerts after quiet period = %d, want 2", got)
	}
	if got := a.reg().Counter("obsagg_slo_alerts_total", "job", "staleapid", "severity", "page").Value(); got != 2 {
		t.Errorf("obsagg_slo_alerts_total = %v, want 2", got)
	}
}
