package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// This file implements fleet trace assembly: the Aggregator scrapes every
// target's /v1/traces alongside /metrics and stitches the per-daemon
// fragments of each trace ID into one fleet-wide record — the spans a
// request left in ctlogd, staleapid and the evidence fetcher become a single
// tree, retrievable from /fleet/traces/{id}. Stitching works because the
// tail-sampling verdict is trace-ID-consistent: a trace kept on one hop is
// kept on all hops (error/slow keeps are local, but those hops' fragments
// still carry the shared trace ID and merge with whatever else was kept).

// DefaultFleetTraceBuffer bounds stitched traces retained by an Aggregator
// when TraceBuffer is unset.
const DefaultFleetTraceBuffer = 512

// fleetTrace is one stitched trace being assembled across scrape rounds.
type fleetTrace struct {
	rec     TraceRecord
	spanIDs map[string]struct{}
	// lastAlert is when the slow-trace alert last fired for this trace;
	// zero means never. The alert re-arms after the aggregator's AlertRearm
	// quiet period, so a trace that keeps growing across scrape rounds
	// keeps alerting instead of firing exactly once forever.
	lastAlert time.Time
}

// scrapeTraces fetches one target's kept traces; targets running without
// tracing (-trace-buffer=0 or an older build) answer 404 and are skipped.
func (a *Aggregator) scrapeTraces(ctx context.Context, hc *http.Client, t Target) ([]TraceRecord, error) {
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	u := strings.TrimSuffix(t.URL, "/") + "/v1/traces?spans=1"
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil // tracing disabled on this target
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("obs: scrape traces %s: status %d", t.URL, resp.StatusCode)
	}
	var traces []TraceRecord
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		return nil, fmt.Errorf("obs: decode traces from %s: %w", t.URL, err)
	}
	return traces, nil
}

// mergeTraces folds one daemon's trace fragments into the fleet view:
// spans dedup by span ID (re-scraping the same target is idempotent), the
// summary extends to cover the earliest start and latest end seen, and the
// root is taken from the earliest-starting fragment — the hop that
// originated the request. Newly slow fleet traces raise a one-shot alert.
func (a *Aggregator) mergeTraces(traces []TraceRecord) {
	type alert struct{ rec TraceRecord }
	var alerts []alert
	a.mu.Lock()
	if a.traces == nil {
		a.traces = make(map[string]*fleetTrace)
	}
	for _, tr := range traces {
		if tr.TraceID == "" {
			continue
		}
		ft := a.traces[tr.TraceID]
		if ft == nil {
			ft = &fleetTrace{
				rec:     TraceRecord{TraceID: tr.TraceID, Root: tr.Root, Route: tr.Route, Start: tr.Start, KeepReason: tr.KeepReason},
				spanIDs: make(map[string]struct{}),
			}
			a.traces[tr.TraceID] = ft
			a.traceOrder = append(a.traceOrder, tr.TraceID)
			max := a.TraceBuffer
			if max <= 0 {
				max = DefaultFleetTraceBuffer
			}
			for len(a.traceOrder) > max {
				delete(a.traces, a.traceOrder[0])
				a.traceOrder = a.traceOrder[1:]
			}
		}
		end := ft.rec.Start.Add(ft.rec.Duration)
		if fragEnd := tr.Start.Add(tr.Duration); fragEnd.After(end) {
			end = fragEnd
		}
		if tr.Start.Before(ft.rec.Start) {
			// Earlier-starting fragment: this hop originated the request, so
			// its root names the fleet trace.
			ft.rec.Start = tr.Start
			ft.rec.Root = tr.Root
			if tr.Route != "" {
				ft.rec.Route = tr.Route
			}
		}
		ft.rec.Duration = end.Sub(ft.rec.Start)
		ft.rec.Error = ft.rec.Error || tr.Error
		ft.rec.KeepReason = strongerKeep(ft.rec.KeepReason, tr.KeepReason)
		for _, sp := range tr.Spans {
			if _, dup := ft.spanIDs[sp.SpanID]; dup {
				continue
			}
			ft.spanIDs[sp.SpanID] = struct{}{}
			ft.rec.Spans = append(ft.rec.Spans, sp)
			ft.rec.Services = mergeService(ft.rec.Services, sp.Service)
		}
		if a.TraceSlow > 0 && ft.rec.Duration >= a.TraceSlow && a.shouldAlert(ft) {
			ft.lastAlert = a.now()
			alerts = append(alerts, alert{rec: copyTrace(&ft.rec, false)})
		}
	}
	a.mu.Unlock()
	for _, al := range alerts {
		a.logger().Warn("slow trace", "trace_id", al.rec.TraceID,
			"duration_ms", float64(al.rec.Duration.Microseconds())/1000,
			"root", al.rec.Root, "services", strings.Join(al.rec.Services, ","),
			"threshold_ms", float64(a.TraceSlow.Microseconds())/1000)
		a.reg().Counter("obsagg_slow_traces_total").Inc()
	}
}

// shouldAlert applies the re-arm policy: a never-alerted trace always
// fires; an already-alerted one fires again only when AlertRearm > 0 and
// the quiet period has passed since the last alert (AlertRearm == 0 keeps
// the legacy one-shot behaviour).
func (a *Aggregator) shouldAlert(ft *fleetTrace) bool {
	if ft.lastAlert.IsZero() {
		return true
	}
	return a.AlertRearm > 0 && a.now().Sub(ft.lastAlert) >= a.AlertRearm
}

// FleetTraces returns stitched traces newest-first under the filter.
func (a *Aggregator) FleetTraces(f TraceFilter) []TraceRecord {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]TraceRecord, 0, len(a.traceOrder))
	for i := len(a.traceOrder) - 1; i >= 0; i-- {
		ft := a.traces[a.traceOrder[i]]
		if f.Route != "" && ft.rec.Route != f.Route {
			continue
		}
		if ft.rec.Duration < f.MinDuration {
			continue
		}
		if f.ErrorOnly && !ft.rec.Error {
			continue
		}
		out = append(out, copyTrace(&ft.rec, f.WithSpans))
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// FleetTrace returns one stitched trace with its spans.
func (a *Aggregator) FleetTrace(id string) (TraceRecord, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	ft, ok := a.traces[id]
	if !ok {
		return TraceRecord{}, false
	}
	return copyTrace(&ft.rec, true), true
}

// TraceCount reports how many stitched traces the fleet view holds.
func (a *Aggregator) TraceCount() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.traceOrder)
}

// strongerKeep merges keep reasons: error dominates slow dominates sampled —
// the fleet record reports the strongest reason any hop kept the trace for.
func strongerKeep(cur, next string) string {
	rank := func(r string) int {
		switch r {
		case KeepError:
			return 3
		case KeepSlow:
			return 2
		case KeepSampled:
			return 1
		}
		return 0
	}
	if rank(next) > rank(cur) {
		return next
	}
	return cur
}

func (a *Aggregator) handleFleetTraces(w http.ResponseWriter, r *http.Request) {
	f, err := parseTraceFilter(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	traces := a.FleetTraces(f)
	// Newest-first is scrape-order here, not strictly time-order: re-sort by
	// start so the listing reads chronologically.
	sort.Slice(traces, func(i, j int) bool { return traces[i].Start.After(traces[j].Start) })
	writeTraceJSON(w, traces)
}

func (a *Aggregator) handleFleetTrace(w http.ResponseWriter, r *http.Request) {
	tr, ok := a.FleetTrace(r.PathValue("id"))
	if !ok {
		http.Error(w, "unknown trace", http.StatusNotFound)
		return
	}
	writeTraceJSON(w, TraceTreeJSON{
		TraceID:    tr.TraceID,
		Duration:   tr.Duration,
		Services:   tr.Services,
		Error:      tr.Error,
		KeepReason: tr.KeepReason,
		Spans:      BuildSpanTree(tr.Spans),
		// The drill-down layer: every daemon's log lines for this trace,
		// merged and time-ordered by the fleet log store.
		Logs: a.FleetTraceLogs(tr.TraceID),
	})
}
