package obs

import (
	"bytes"
	"context"
	"log/slog"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseRuleSpecs(t *testing.T) {
	r, err := ParseRecordingRule(`job:qps:rate1m=sum by (job) (rate(http_requests_total[1m]))`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "job:qps:rate1m" || !strings.HasPrefix(r.Expr, "sum by") {
		t.Fatalf("parsed rule = %+v", r)
	}
	for _, bad := range []string{
		"",                       // empty
		"noequals",               // no expr
		"=expr",                  // no name
		"bad name=up",            // space in name
		"x=sum by (",             // unparseable expr
		"9starts_with_digit=up",  // bad leading char
		"trailing=",              // empty expr
	} {
		if _, err := ParseRecordingRule(bad); err == nil {
			t.Errorf("ParseRecordingRule(%q) succeeded", bad)
		}
		if _, err := ParseAlertRule(bad); err == nil {
			t.Errorf("ParseAlertRule(%q) succeeded", bad)
		}
	}
}

// TestRecordingRuleMaterialises: a recording rule's output becomes a
// queryable series under the rule name, and a later alert rule in the same
// round can watch it.
func TestRecordingRuleMaterialises(t *testing.T) {
	clock := &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
	var logs bytes.Buffer
	a := &Aggregator{
		Registry: NewRegistry(),
		Logger:   slog.New(slog.NewTextHandler(&logs, nil)),
		Now:      clock.now,
		RecordingRules: []RecordingRule{
			{Name: "job:requests:sum", Expr: `sum by (job) (http_requests_total)`},
		},
		AlertRules: []AlertRule{
			{Name: "too-many-requests", Expr: `job:requests:sum > 100`},
		},
	}
	a.mu.Lock()
	a.byJob = map[string][]Sample{"api@x": {
		counterSample("http_requests_total", 90, "code", "2xx", "job", "api"),
		counterSample("http_requests_total", 20, "code", "5xx", "job", "api"),
	}}
	a.mu.Unlock()
	evalRound(a)

	sel := a.tsdb().Latest("job:requests:sum", nil, clock.now())
	if len(sel) != 1 || sel[0].Points[0].V != 110 {
		t.Fatalf("recorded series = %+v, want 110", sel)
	}
	if job, _ := pairValue(sel[0].Pairs, "job"); job != "api" {
		t.Errorf("recorded series labels = %v", sel[0].Labels)
	}
	// The alert rule over the recorded series fired in the same round.
	if !strings.Contains(logs.String(), "alert rule firing") {
		t.Fatalf("alert over recorded series did not fire:\n%s", logs.String())
	}
	if got := a.reg().Counter("obsagg_rule_alerts_total", "rule", "too-many-requests").Value(); got != 1 {
		t.Errorf("obsagg_rule_alerts_total = %d, want 1", got)
	}
}

// TestUserAlertRuleRearms: user-defined alert rules get the same re-arm
// policy as the built-in families.
func TestUserAlertRuleRearms(t *testing.T) {
	clock := &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
	var logs bytes.Buffer
	a := &Aggregator{
		Registry:   NewRegistry(),
		Logger:     slog.New(slog.NewTextHandler(&logs, nil)),
		Now:        clock.now,
		AlertRearm: time.Minute,
		AlertRules: []AlertRule{{Name: "hot", Expr: `temp_celsius > 30`}},
	}
	a.mu.Lock()
	a.byJob = map[string][]Sample{"api@x": {{Name: "temp_celsius", Kind: KindGauge, Value: 40,
		Labels: formatLabels([]string{"job", "api"})}}}
	a.mu.Unlock()
	count := func() int { return strings.Count(logs.String(), "alert rule firing") }
	evalRound(a)
	if count() != 1 {
		t.Fatalf("first round alerts = %d", count())
	}
	clock.advance(10 * time.Second)
	evalRound(a)
	if count() != 1 {
		t.Fatalf("quiet-period alerts = %d", count())
	}
	clock.advance(time.Minute)
	evalRound(a)
	if count() != 2 {
		t.Fatalf("post-rearm alerts = %d", count())
	}
}

// TestErrorRateRuleFiresEveryRound: the re-expressed error-rate family
// keeps the legacy fire-every-breaching-round behaviour and message.
func TestErrorRateRuleFiresEveryRound(t *testing.T) {
	clock := &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
	var logs bytes.Buffer
	a := &Aggregator{
		Registry:           NewRegistry(),
		Logger:             slog.New(slog.NewTextHandler(&logs, nil)),
		Now:                clock.now,
		ErrorRateThreshold: 0.5,
		AlertRearm:         time.Hour, // would silence a re-armed rule; FireEvery ignores it
	}
	a.mu.Lock()
	a.byJob = map[string][]Sample{"api@x": {
		counterSample("http_requests_total", 1, "code", "2xx", "job", "api"),
		counterSample("http_requests_total", 9, "code", "5xx", "job", "api"),
	}}
	a.mu.Unlock()
	count := func() int { return strings.Count(logs.String(), "error rate above threshold") }
	evalRound(a)
	if count() != 1 {
		t.Fatalf("first round alerts = %d, want 1", count())
	}
	clock.advance(time.Second)
	evalRound(a)
	if count() != 2 {
		t.Fatalf("second round alerts = %d, want 2 (fires every round)", count())
	}
}

// TestGhostTargetMarkedStale is the federation gauge-ghosting regression: a
// loopback target that dies stays in /fleet marked down, its last-good
// series leave the federated instant view once its scrapes have failed past
// the staleness window, and instant queries stop answering from its frozen
// values — while its history stays range-queryable.
func TestGhostTargetMarkedStale(t *testing.T) {
	remote := NewRegistry()
	remote.Gauge("ingest_lag_seconds").Set(42)
	srv := httptest.NewServer(HandlerFor(remote, NewHealth()))
	clock := &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
	a := &Aggregator{
		Targets:  []Target{{Job: "ctlogd", URL: srv.URL}},
		Client:   srv.Client(),
		Registry: NewRegistry(),
		Logger:   quietLogger(),
		Now:      clock.now,
		TSDB:     &TSDB{StaleAfter: 30 * time.Second, Retention: time.Hour},
	}
	ctx := context.Background()
	a.ScrapeOnce(ctx)
	instance := a.Targets[0].Instance()

	if sel := a.tsdb().Latest("ingest_lag_seconds", nil, clock.now()); len(sel) != 1 || sel[0].Points[0].V != 42 {
		t.Fatalf("live target not queryable: %+v", sel)
	}

	// Kill the target. The first failed scrape is within the staleness
	// window: serve-stale keeps the last-good series (the existing
	// degraded-mode contract).
	srv.Close()
	clock.advance(10 * time.Second)
	a.ScrapeOnce(ctx)
	if got := len(a.Federated()); got == 0 {
		t.Fatal("last-good series dropped before staleness window elapsed")
	}
	if sel := a.tsdb().Latest("ingest_lag_seconds", nil, clock.now()); len(sel) != 1 {
		t.Fatalf("series gone from instant answers before staleness window: %+v", sel)
	}

	// Past StaleAfter the target is a ghost: federated view drops its
	// series, instant queries go quiet, history remains.
	clock.advance(time.Minute)
	a.ScrapeOnce(ctx)
	if got := len(a.Federated()); got != 0 {
		t.Fatalf("ghost target still has %d federated series", got)
	}
	if sel := a.tsdb().Latest("ingest_lag_seconds", nil, clock.now()); len(sel) != 0 {
		t.Fatalf("ghost target still answers instant queries: %+v", sel)
	}
	sel := a.tsdb().Select("ingest_lag_seconds",
		[]Matcher{{Key: "instance", Op: MatchEq, Value: instance}}, clock.now().Add(-time.Hour), clock.now())
	if len(sel) != 1 || len(sel[0].Points) == 0 {
		t.Fatalf("ghost target's history evicted early: %+v", sel)
	}
	if down := a.DownTargets(); len(down) != 1 {
		t.Errorf("DownTargets = %v", down)
	}
}

// TestParsePromNumericEdges: NaN, ±Inf, exponent notation and post-restart
// negative deltas survive federation parsing and TSDB append without panics
// or sign corruption.
func TestParsePromNumericEdges(t *testing.T) {
	input := strings.Join([]string{
		`nan_gauge NaN`,
		`posinf_gauge +Inf`,
		`neginf_gauge -Inf`,
		`exp_gauge 1.5e-9`,
		`bigexp_gauge 2.5E6`,
		`neg_gauge -12.75`,
	}, "\n") + "\n"
	samples, err := ParseProm(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, s := range samples {
		byName[s.Name] = s.Value
	}
	if !math.IsNaN(byName["nan_gauge"]) {
		t.Errorf("NaN = %v", byName["nan_gauge"])
	}
	if !math.IsInf(byName["posinf_gauge"], 1) || !math.IsInf(byName["neginf_gauge"], -1) {
		t.Errorf("Inf = %v / %v", byName["posinf_gauge"], byName["neginf_gauge"])
	}
	if byName["exp_gauge"] != 1.5e-9 || byName["bigexp_gauge"] != 2.5e6 {
		t.Errorf("exponents = %v / %v", byName["exp_gauge"], byName["bigexp_gauge"])
	}
	if byName["neg_gauge"] != -12.75 {
		t.Errorf("negative = %v", byName["neg_gauge"])
	}

	db := &TSDB{}
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	db.Append(now, samples)
	if got := db.SeriesCount(); got != len(samples) {
		t.Fatalf("TSDB series = %d, want %d", got, len(samples))
	}
	if sel := db.Latest("neginf_gauge", nil, now); len(sel) != 1 || !math.IsInf(sel[0].Points[0].V, -1) {
		t.Errorf("-Inf through TSDB = %+v", sel)
	}
	if sel := db.Latest("exp_gauge", nil, now); len(sel) != 1 || sel[0].Points[0].V != 1.5e-9 {
		t.Errorf("exponent through TSDB = %+v", sel)
	}

	// A counter that went backwards (daemon restart) appends cleanly and
	// rate() treats the drop as a reset rather than a negative rate.
	for i, v := range []float64{1000, 1100, 5} {
		db.Append(now.Add(time.Duration(i*10)*time.Second), []Sample{counterSample("restart_total", v)})
	}
	node, err := ParseQuery(`rate(restart_total[20s])`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := evalInstant(db, node, now.Add(20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	vecv := v.([]vecSample)
	if len(vecv) != 1 || vecv[0].v < 0 {
		t.Fatalf("rate across restart = %+v, want non-negative", vecv)
	}
	// 1000→1100 (+100) then reset contributing 5: 105 over 20s.
	if want := 105.0 / 20; math.Abs(vecv[0].v-want) > 1e-9 {
		t.Errorf("rate across restart = %v, want %v", vecv[0].v, want)
	}
}

// TestFederationToTSDBRoundTrip: a full loopback scrape lands relabelled
// series in the TSDB, queryable with job/instance matchers, including
// histogram bucket expansion of a real registry's histogram.
func TestFederationToTSDBRoundTrip(t *testing.T) {
	remote := NewRegistry()
	remote.Counter("http_requests_total", "code", "2xx", "route", "/v1/x", "service", "staleapid").Add(7)
	remote.Histogram("http_request_seconds", nil, "route", "/v1/x", "service", "staleapid").Observe(0.003)
	srv := httptest.NewServer(HandlerFor(remote, NewHealth()))
	defer srv.Close()
	a := &Aggregator{
		Targets:  []Target{{Job: "staleapid", URL: srv.URL}},
		Client:   srv.Client(),
		Registry: NewRegistry(),
		Logger:   quietLogger(),
	}
	a.ScrapeOnce(context.Background())
	db := a.tsdb()
	now := time.Now()
	m := []Matcher{{Key: "job", Op: MatchEq, Value: "staleapid"}}
	if sel := db.Latest("http_requests_total", m, now); len(sel) != 1 || sel[0].Points[0].V != 7 {
		t.Fatalf("federated counter in TSDB = %+v", sel)
	}
	buckets := db.Latest("http_request_seconds_bucket", m, now)
	if len(buckets) != len(DurationBuckets)+1 {
		t.Fatalf("federated histogram buckets = %d, want %d", len(buckets), len(DurationBuckets)+1)
	}
	if cnt := db.Latest("http_request_seconds_count", m, now); len(cnt) != 1 || cnt[0].Points[0].V != 1 {
		t.Fatalf("federated histogram count = %+v", cnt)
	}
}
