package obs

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func testCapture(t *testing.T) *ProfileCapture {
	t.Helper()
	return &ProfileCapture{
		Dir:         filepath.Join(t.TempDir(), "profiles"),
		CPUDuration: 10 * time.Millisecond,
		Logger:      discardLogger(),
	}
}

func TestProfileCaptureWritesRingEntry(t *testing.T) {
	p := testCapture(t)
	entry, err := p.Capture("slo-latency-page")
	if err != nil {
		t.Fatal(err)
	}
	if entry.ID != "p000001-slo-latency-page" {
		t.Errorf("entry ID = %q", entry.ID)
	}
	want := append([]string{}, entry.Files...)
	want = append(want, "meta.json")
	for _, f := range want {
		fi, err := os.Stat(filepath.Join(p.Dir, entry.ID, f))
		if err != nil {
			t.Errorf("missing %s: %v", f, err)
		} else if fi.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}
	// heap and goroutine snapshots are always possible; cpu is best-effort
	// (another profiler may hold the lock) but normally present.
	if len(entry.Files) < 2 {
		t.Errorf("entry files = %v", entry.Files)
	}
	list := p.List()
	if len(list) != 1 || list[0].ID != entry.ID || list[0].Reason != "slo-latency-page" {
		t.Errorf("List = %+v", list)
	}
}

func TestProfileRingPrunesOldest(t *testing.T) {
	p := testCapture(t)
	p.Max = 2
	for i := 0; i < 3; i++ {
		if _, err := p.Capture("x"); err != nil {
			t.Fatal(err)
		}
	}
	list := p.List()
	if len(list) != 2 {
		t.Fatalf("ring holds %d entries, want 2", len(list))
	}
	if list[0].ID != "p000002-x" || list[1].ID != "p000003-x" {
		t.Errorf("ring = %q, %q (oldest should be pruned)", list[0].ID, list[1].ID)
	}
}

func TestProfileSeqRestoredFromDisk(t *testing.T) {
	p := testCapture(t)
	if _, err := p.Capture("before"); err != nil {
		t.Fatal(err)
	}
	// A fresh ProfileCapture over the same directory (daemon restart) must
	// not reuse sequence numbers of surviving entries.
	p2 := testCapture(t)
	p2.Dir = p.Dir
	p2.List()
	entry, err := p2.Capture("after")
	if err != nil {
		t.Fatal(err)
	}
	if entry.ID != "p000002-after" {
		t.Errorf("post-restart entry ID = %q, want p000002-after", entry.ID)
	}
}

func TestProfileHandler(t *testing.T) {
	p := testCapture(t)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/profile?reason=bench", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var entry ProfileEntry
	if err := json.NewDecoder(resp.Body).Decode(&entry); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || entry.Reason != "bench" {
		t.Fatalf("POST /v1/profile: status %d, entry %+v", resp.StatusCode, entry)
	}

	resp, err = http.Get(srv.URL + "/v1/profiles")
	if err != nil {
		t.Fatal(err)
	}
	var list []ProfileEntry
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != entry.ID {
		t.Fatalf("GET /v1/profiles = %+v", list)
	}

	resp, err = http.Get(srv.URL + "/v1/profiles/" + entry.ID + "/heap.pprof")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("profile file download: status %d", resp.StatusCode)
	}

	// Traversal attempts must be rejected, not served.
	for _, path := range []string{
		"/v1/profiles/../secrets/heap.pprof",
		"/v1/profiles/" + entry.ID + "/..%2fmeta.json",
		"/v1/profiles/.hidden/heap.pprof",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("GET %s served; want rejection", path)
		}
	}
}

func TestProfileTriggerAsyncCooldown(t *testing.T) {
	p := testCapture(t)
	p.Cooldown = time.Hour
	p.TriggerAsync("alert")
	// Second trigger inside the cooldown is dropped, so exactly one entry
	// lands no matter how fast the alert flaps.
	p.TriggerAsync("alert")
	deadline := time.Now().Add(5 * time.Second)
	for len(p.List()) == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // would surface a straggler capture
	if got := len(p.List()); got != 1 {
		t.Fatalf("captures after cooldown-limited triggers = %d, want 1", got)
	}
}
