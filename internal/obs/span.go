package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements distributed trace capture: a bounded per-process span
// store fed by Middleware (server spans), Transport (client spans, one per
// resilience attempt) and the Trace stage-tree adapter, with Dapper-style
// tail-based sampling — the keep/drop decision is made when a trace's local
// root span finishes, so error, degraded and slow traces are always kept
// while the healthy bulk is sampled down. Kept traces are served on every
// daemon's debug listener as /v1/traces (summaries) and /v1/traces/{id}
// (full span tree); cmd/obsagg stitches the per-daemon fragments into fleet
// traces.

// Span kinds.
const (
	SpanServer = "server" // one handled HTTP request (Middleware)
	SpanClient = "client" // one outbound HTTP attempt (Transport)
	SpanCall   = "call"   // one logical outbound call spanning its retry attempts (resil)
	SpanStage  = "stage"  // one pipeline stage mirrored from a Trace
)

// Keep reasons recorded on sampled traces.
const (
	KeepError   = "error"   // the root or any span in the trace failed
	KeepSlow    = "slow"    // root latency crossed the slow threshold
	KeepSampled = "sampled" // probabilistically kept (trace-ID-consistent)
)

// SpanRecord is one finished span as stored and served over the wire.
// Duration serializes as nanoseconds so records round-trip exactly.
type SpanRecord struct {
	TraceID  string        `json:"trace_id"`
	SpanID   string        `json:"span_id"`
	ParentID string        `json:"parent_id,omitempty"`
	Service  string        `json:"service"`
	Name     string        `json:"name"`
	Kind     string        `json:"kind"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Route    string        `json:"route,omitempty"`
	Peer     string        `json:"peer,omitempty"`
	Status   int           `json:"status,omitempty"`
	Attempt  int           `json:"attempt,omitempty"`
	Items    int64         `json:"items,omitempty"`
	Err      string        `json:"err,omitempty"`
}

// failed reports whether the span counts as an error for tail-keeping.
func (r SpanRecord) failed() bool { return r.Err != "" || r.Status >= 500 }

// TraceRecord is one kept trace: summary fields plus (when requested) the
// flat span list the tree is built from.
type TraceRecord struct {
	TraceID    string        `json:"trace_id"`
	Root       string        `json:"root"` // "service name" of the local root span
	Route      string        `json:"route,omitempty"`
	Start      time.Time     `json:"start"`
	Duration   time.Duration `json:"duration_ns"`
	Services   []string      `json:"services"`
	Error      bool          `json:"error"`
	KeepReason string        `json:"keep_reason"`
	Spans      []SpanRecord  `json:"spans,omitempty"`
}

// SpanTree is one node of a stitched span tree: the span with its children
// ordered by parent-span linkage and start time.
type SpanTree struct {
	SpanRecord
	Children []*SpanTree `json:"children,omitempty"`
}

// TraceTreeJSON is the /v1/traces/{id} (and /fleet/traces/{id}) payload.
// Logs carries the log records correlated to the trace: the local ring's
// matching lines on a daemon, or every daemon's matching lines on the fleet
// surface.
type TraceTreeJSON struct {
	TraceID    string        `json:"trace_id"`
	Duration   time.Duration `json:"duration_ns"`
	Services   []string      `json:"services"`
	Error      bool          `json:"error"`
	KeepReason string        `json:"keep_reason,omitempty"`
	Spans      []*SpanTree   `json:"spans"`
	Logs       []LogRecord   `json:"logs,omitempty"`
}

// BuildSpanTree assembles flat spans (possibly from several daemons) into
// trees: each span attaches under the span whose ID it names as parent;
// spans whose parent was not captured become roots. Duplicate span IDs are
// dropped, siblings are ordered by start time then span ID.
func BuildSpanTree(spans []SpanRecord) []*SpanTree {
	nodes := make(map[string]*SpanTree, len(spans))
	order := make([]*SpanTree, 0, len(spans))
	for _, s := range spans {
		if _, dup := nodes[s.SpanID]; dup {
			continue
		}
		n := &SpanTree{SpanRecord: s}
		nodes[s.SpanID] = n
		order = append(order, n)
	}
	var roots []*SpanTree
	for _, n := range order {
		if p, ok := nodes[n.ParentID]; ok && n.ParentID != n.SpanID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortTrees(roots)
	for _, n := range order {
		sortTrees(n.Children)
	}
	return roots
}

func sortTrees(ts []*SpanTree) {
	sort.Slice(ts, func(i, j int) bool {
		if !ts[i].Start.Equal(ts[j].Start) {
			return ts[i].Start.Before(ts[j].Start)
		}
		return ts[i].SpanID < ts[j].SpanID
	})
}

// pendingTrace buffers spans while a trace is in flight, before the local
// root finishes and the tail decision is made.
type pendingTrace struct {
	spans    []SpanRecord
	hadError bool
}

// SpanStore is a bounded per-process buffer of spans keyed by trace ID. All
// spans of an in-flight trace are buffered; when the local root span is
// recorded (RecordRoot) the tail-based sampling decision runs: error and
// slow traces are always kept, the rest are kept with trace-ID-consistent
// probability — the same trace ID yields the same verdict in every daemon,
// so a probabilistically sampled trace survives on all hops and can be
// stitched fleet-wide. Kept traces live in a ring of Capacity traces,
// evicting oldest-kept first. Safe for concurrent use.
type SpanStore struct {
	capacity int
	sample   float64
	slow     time.Duration
	// Registry receives the store's own counters (nil: Default()).
	Registry *Registry

	mu           sync.Mutex
	pending      map[string]*pendingTrace
	pendingOrder []string
	kept         map[string]*TraceRecord
	keptOrder    []string
}

// NewSpanStore builds a store keeping at most capacity traces (<=0 uses
// 256), sampling non-error non-slow traces at rate sample (clamped to
// [0,1]), and always keeping traces whose root latency reaches slow
// (slow <= 0 disables the latency rule).
func NewSpanStore(capacity int, sample float64, slow time.Duration) *SpanStore {
	if capacity <= 0 {
		capacity = 256
	}
	if sample < 0 {
		sample = 0
	}
	if sample > 1 {
		sample = 1
	}
	return &SpanStore{
		capacity: capacity,
		sample:   sample,
		slow:     slow,
		pending:  make(map[string]*pendingTrace),
		kept:     make(map[string]*TraceRecord),
	}
}

var defaultSpans atomic.Pointer[SpanStore]

func init() {
	defaultSpans.Store(NewSpanStore(256, 0.10, 250*time.Millisecond))
}

// DefaultSpans returns the process-wide span store Middleware and Transport
// feed; nil when tracing is disabled (SetDefaultSpans(nil)).
func DefaultSpans() *SpanStore { return defaultSpans.Load() }

// SetDefaultSpans replaces the process-wide span store; nil disables span
// recording entirely. Flags.Setup calls this from the -trace-* flags.
func SetDefaultSpans(s *SpanStore) { defaultSpans.Store(s) }

func (s *SpanStore) reg() *Registry {
	if s.Registry != nil {
		return s.Registry
	}
	return Default()
}

// SlowThreshold returns the configured always-keep latency threshold.
func (s *SpanStore) SlowThreshold() time.Duration { return s.slow }

// Record buffers one non-root span of an in-flight trace. Spans arriving
// after the trace was kept are appended to the kept record directly, so
// stragglers from concurrent goroutines are not lost.
func (s *SpanStore) Record(rec SpanRecord) {
	if s == nil || rec.TraceID == "" {
		return
	}
	s.reg().Counter("trace_spans_recorded_total", "service", rec.Service).Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	if tr, ok := s.kept[rec.TraceID]; ok {
		tr.Spans = append(tr.Spans, rec)
		tr.Error = tr.Error || rec.failed()
		tr.Services = mergeService(tr.Services, rec.Service)
		return
	}
	s.addPendingLocked(rec)
}

// RecordRoot records the trace's local root span and makes the tail-based
// sampling decision, reporting whether the trace was kept (callers use this
// to attach histogram exemplars only for retrievable traces).
func (s *SpanStore) RecordRoot(rec SpanRecord) bool {
	if s == nil || rec.TraceID == "" {
		return false
	}
	s.reg().Counter("trace_spans_recorded_total", "service", rec.Service).Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	if tr, ok := s.kept[rec.TraceID]; ok {
		// A sibling root in an already-kept trace (e.g. the retried server
		// request after a 5xx attempt): append and extend the summary.
		tr.Spans = append(tr.Spans, rec)
		tr.Error = tr.Error || rec.failed()
		tr.Services = mergeService(tr.Services, rec.Service)
		if rec.Duration > tr.Duration {
			tr.Duration = rec.Duration
		}
		return true
	}
	p := s.pending[rec.TraceID]
	reason := ""
	switch {
	case rec.failed() || (p != nil && p.hadError):
		reason = KeepError
	case s.slow > 0 && rec.Duration >= s.slow:
		reason = KeepSlow
	case traceFrac(rec.TraceID) < s.sample:
		reason = KeepSampled
	}
	if p != nil {
		s.dropPendingLocked(rec.TraceID)
	}
	if reason == "" {
		s.reg().Counter("trace_dropped_total", "service", rec.Service).Inc()
		return false
	}
	var spans []SpanRecord
	if p != nil {
		spans = p.spans
	}
	spans = append(spans, rec)
	tr := &TraceRecord{
		TraceID:    rec.TraceID,
		Root:       rec.Service + " " + rec.Name,
		Route:      rec.Route,
		Start:      rec.Start,
		Duration:   rec.Duration,
		Error:      reason == KeepError,
		KeepReason: reason,
		Spans:      spans,
	}
	for _, sp := range spans {
		tr.Services = mergeService(tr.Services, sp.Service)
	}
	s.kept[rec.TraceID] = tr
	s.keptOrder = append(s.keptOrder, rec.TraceID)
	for len(s.keptOrder) > s.capacity {
		delete(s.kept, s.keptOrder[0])
		s.keptOrder = s.keptOrder[1:]
	}
	s.reg().Counter("trace_kept_total", "service", rec.Service, "reason", reason).Inc()
	s.reg().Gauge("trace_store_traces").Set(float64(len(s.keptOrder)))
	return true
}

func (s *SpanStore) addPendingLocked(rec SpanRecord) {
	p := s.pending[rec.TraceID]
	if p == nil {
		p = &pendingTrace{}
		s.pending[rec.TraceID] = p
		s.pendingOrder = append(s.pendingOrder, rec.TraceID)
		// Bound the in-flight buffer too: traces whose root never finishes
		// (crashed callers, one-way fire-and-forget spans) must not leak.
		for len(s.pendingOrder) > s.capacity {
			delete(s.pending, s.pendingOrder[0])
			s.pendingOrder = s.pendingOrder[1:]
		}
	}
	p.spans = append(p.spans, rec)
	p.hadError = p.hadError || rec.failed()
}

func (s *SpanStore) dropPendingLocked(traceID string) {
	delete(s.pending, traceID)
	for i, id := range s.pendingOrder {
		if id == traceID {
			s.pendingOrder = append(s.pendingOrder[:i], s.pendingOrder[i+1:]...)
			break
		}
	}
}

func mergeService(services []string, svc string) []string {
	if svc == "" {
		return services
	}
	i := sort.SearchStrings(services, svc)
	if i < len(services) && services[i] == svc {
		return services
	}
	services = append(services, "")
	copy(services[i+1:], services[i:])
	services[i] = svc
	return services
}

// traceFrac maps a trace ID to a uniform fraction in [0,1). It is a pure
// function of the ID, so every daemon in the fleet reaches the same
// probabilistic verdict for one trace — a sampled trace is kept on all hops
// and stitches completely.
func traceFrac(traceID string) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(traceID))
	x := h.Sum64()
	// FNV-1a's high bits mix poorly for short, similar IDs; finish with a
	// splitmix64 avalanche so the fraction is uniform regardless of ID shape.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// TraceFilter selects kept traces in Traces.
type TraceFilter struct {
	// Route keeps only traces whose root route matches exactly.
	Route string
	// MinDuration keeps only traces at least this long.
	MinDuration time.Duration
	// ErrorOnly keeps only traces carrying a failed span.
	ErrorOnly bool
	// Limit caps the result count (0 = all).
	Limit int
	// WithSpans includes each trace's flat span list.
	WithSpans bool
}

// Traces returns kept traces newest-first under the filter.
func (s *SpanStore) Traces(f TraceFilter) []TraceRecord {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TraceRecord, 0, len(s.keptOrder))
	for i := len(s.keptOrder) - 1; i >= 0; i-- {
		tr := s.kept[s.keptOrder[i]]
		if f.Route != "" && tr.Route != f.Route {
			continue
		}
		if tr.Duration < f.MinDuration {
			continue
		}
		if f.ErrorOnly && !tr.Error {
			continue
		}
		out = append(out, copyTrace(tr, f.WithSpans))
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Trace returns one kept trace with its spans.
func (s *SpanStore) Trace(id string) (TraceRecord, bool) {
	if s == nil {
		return TraceRecord{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tr, ok := s.kept[id]
	if !ok {
		return TraceRecord{}, false
	}
	return copyTrace(tr, true), true
}

// Len reports the number of kept traces.
func (s *SpanStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.keptOrder)
}

func copyTrace(tr *TraceRecord, withSpans bool) TraceRecord {
	out := *tr
	out.Services = append([]string(nil), tr.Services...)
	if withSpans {
		out.Spans = append([]SpanRecord(nil), tr.Spans...)
	} else {
		out.Spans = nil
	}
	return out
}

// Handler serves the store's query surface:
//
//	GET /v1/traces        recent kept-trace summaries; filters: ?route=,
//	                      ?min_ms=, ?error=1, ?limit=, ?spans=1
//	GET /v1/traces/{id}   one trace as a full span tree
//
// Flags.Setup mounts the same surface for the process-wide store on every
// debug listener via RegisterDebug.
func (s *SpanStore) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/traces", func(w http.ResponseWriter, r *http.Request) {
		serveTraces(s, w, r)
	})
	mux.HandleFunc("GET /v1/traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		serveTraceTree(s, w, r)
	})
	return mux
}

func init() {
	// Every debug listener serves the process-wide store's traces; the store
	// is resolved per request so SetDefaultSpans takes effect immediately.
	RegisterDebug("GET /v1/traces", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serveTraces(DefaultSpans(), w, r)
	}))
	RegisterDebug("GET /v1/traces/{id}", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serveTraceTree(DefaultSpans(), w, r)
	}))
}

// parseTraceFilter decodes the shared trace-listing query parameters
// (?route=, ?min_ms=, ?error=1, ?limit=, ?spans=1) used by both the
// per-daemon /v1/traces and the fleet /fleet/traces listings.
func parseTraceFilter(r *http.Request) (TraceFilter, error) {
	f := TraceFilter{
		Route:     r.URL.Query().Get("route"),
		ErrorOnly: r.URL.Query().Get("error") == "1",
		WithSpans: r.URL.Query().Get("spans") == "1",
	}
	if v := r.URL.Query().Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return f, fmt.Errorf("bad min_ms %q", v)
		}
		f.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return f, fmt.Errorf("bad limit %q", v)
		}
		f.Limit = n
	}
	return f, nil
}

func serveTraces(s *SpanStore, w http.ResponseWriter, r *http.Request) {
	if s == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	f, err := parseTraceFilter(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeTraceJSON(w, s.Traces(f))
}

func serveTraceTree(s *SpanStore, w http.ResponseWriter, r *http.Request) {
	if s == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	tr, ok := s.Trace(r.PathValue("id"))
	if !ok {
		http.Error(w, "unknown trace", http.StatusNotFound)
		return
	}
	writeTraceJSON(w, TraceTreeJSON{
		TraceID:    tr.TraceID,
		Duration:   tr.Duration,
		Services:   tr.Services,
		Error:      tr.Error,
		KeepReason: tr.KeepReason,
		Spans:      BuildSpanTree(tr.Spans),
		// The local drill-down: this process's ring lines for the trace.
		Logs: DefaultLogRing().Query(LogFilter{TraceID: tr.TraceID}),
	})
}

func writeTraceJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
