package obs

import (
	"math"
	"strings"
	"testing"
	"time"
	"unsafe"
)

func ts(sec int) time.Time {
	return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC).Add(time.Duration(sec) * time.Second)
}

func counterSample(name string, v float64, kv ...string) Sample {
	return Sample{Name: name, Labels: formatLabels(kv), Kind: KindCounter, Value: v}
}

func TestTSDBAppendAndSelect(t *testing.T) {
	db := &TSDB{}
	for i := 0; i < 5; i++ {
		db.Append(ts(i*10), []Sample{
			counterSample("reqs_total", float64(i*100), "job", "api", "code", "2xx"),
			counterSample("reqs_total", float64(i*2), "job", "api", "code", "5xx"),
		})
	}
	if got := db.SeriesCount(); got != 2 {
		t.Fatalf("SeriesCount = %d, want 2", got)
	}
	sel := db.Select("reqs_total", nil, ts(0).Add(-time.Second), ts(40))
	if len(sel) != 2 {
		t.Fatalf("Select returned %d series, want 2", len(sel))
	}
	for _, sd := range sel {
		if len(sd.Points) != 5 {
			t.Errorf("series %s has %d points, want 5", sd.Labels, len(sd.Points))
		}
	}
	m, err := NewMatcher("code", MatchEq, "5xx")
	if err != nil {
		t.Fatal(err)
	}
	inst := db.Latest("reqs_total", []Matcher{m}, ts(40))
	if len(inst) != 1 || inst[0].Points[0].V != 8 {
		t.Fatalf("Latest 5xx = %+v, want one point of 8", inst)
	}
}

func TestTSDBSameTimestampReplacesPoint(t *testing.T) {
	db := &TSDB{}
	db.Append(ts(0), []Sample{counterSample("x_total", 1)})
	db.Append(ts(0), []Sample{counterSample("x_total", 2)})
	sel := db.Select("x_total", nil, ts(-1), ts(1))
	if len(sel) != 1 || len(sel[0].Points) != 1 || sel[0].Points[0].V != 2 {
		t.Fatalf("duplicate-timestamp append = %+v, want single point of 2", sel)
	}
}

func TestTSDBRetentionEvictsPoints(t *testing.T) {
	db := &TSDB{Retention: 30 * time.Second}
	for i := 0; i < 10; i++ {
		db.Append(ts(i*10), []Sample{counterSample("x_total", float64(i))})
	}
	sel := db.Select("x_total", nil, ts(-1000), ts(1000))
	if len(sel) != 1 {
		t.Fatalf("series count = %d", len(sel))
	}
	// At append time ts(90), the cutoff is ts(60): points at 60, 70, 80, 90
	// survive (the one exactly at the cutoff is not Before it).
	if got := len(sel[0].Points); got != 4 {
		t.Fatalf("retained points = %d, want 4 (%+v)", got, sel[0].Points)
	}
	if sel[0].Points[0].V != 6 {
		t.Errorf("oldest retained = %v, want 6", sel[0].Points[0].V)
	}
}

func TestTSDBMaxSeriesDrops(t *testing.T) {
	db := &TSDB{MaxSeries: 2}
	db.Append(ts(0), []Sample{
		counterSample("a_total", 1, "i", "1"),
		counterSample("a_total", 1, "i", "2"),
		counterSample("a_total", 1, "i", "3"),
	})
	if got := db.SeriesCount(); got != 2 {
		t.Fatalf("SeriesCount = %d, want 2", got)
	}
	if got := db.DroppedSeries(); got != 1 {
		t.Fatalf("DroppedSeries = %d, want 1", got)
	}
	// Existing series still append fine at the cap.
	db.Append(ts(10), []Sample{counterSample("a_total", 2, "i", "1")})
	sel := db.Select("a_total", []Matcher{{Key: "i", Op: MatchEq, Value: "1"}}, ts(-1), ts(20))
	if len(sel) != 1 || len(sel[0].Points) != 2 {
		t.Fatalf("capped append to existing series failed: %+v", sel)
	}
}

func TestTSDBHistogramExpansion(t *testing.T) {
	db := &TSDB{}
	h := Sample{
		Name: "lat_seconds", Labels: formatLabels([]string{"job", "api"}), Kind: KindHistogram,
		Count: 10, Sum: 1.25,
		Buckets: []BucketCount{
			{UpperBound: 0.1, Count: 7, Exemplar: &Exemplar{TraceID: "t-slow", Value: 0.08}},
			{UpperBound: 1, Count: 9},
			{UpperBound: math.Inf(1), Count: 10},
		},
	}
	db.Append(ts(0), []Sample{h})
	if got := db.SeriesCount(); got != 5 { // 3 buckets + sum + count
		t.Fatalf("SeriesCount = %d, want 5", got)
	}
	buckets := db.Latest("lat_seconds_bucket", nil, ts(0))
	if len(buckets) != 3 {
		t.Fatalf("bucket series = %d, want 3", len(buckets))
	}
	var sawExemplar bool
	for _, b := range buckets {
		if le, _ := pairValue(b.Pairs, "le"); le == "" {
			t.Errorf("bucket series %s lacks le label", b.Labels)
		}
		if b.Exemplar != nil && b.Exemplar.TraceID == "t-slow" {
			sawExemplar = true
		}
	}
	if !sawExemplar {
		t.Error("bucket exemplar did not survive TSDB append")
	}
	if sum := db.Latest("lat_seconds_sum", nil, ts(0)); len(sum) != 1 || sum[0].Points[0].V != 1.25 {
		t.Errorf("lat_seconds_sum = %+v", sum)
	}
	if cnt := db.Latest("lat_seconds_count", nil, ts(0)); len(cnt) != 1 || cnt[0].Points[0].V != 10 {
		t.Errorf("lat_seconds_count = %+v", cnt)
	}
}

func TestTSDBMarkStaleDropsInstantKeepsRange(t *testing.T) {
	db := &TSDB{}
	db.Append(ts(0), []Sample{
		counterSample("up_total", 1, "instance", "a", "job", "ctlogd"),
		counterSample("up_total", 1, "instance", "b", "job", "staleapid"),
	})
	if n := db.MarkStale("job", "ctlogd", "instance", "a"); n != 1 {
		t.Fatalf("MarkStale marked %d series, want 1", n)
	}
	inst := db.Latest("up_total", nil, ts(1))
	if len(inst) != 1 || LabelsJob(inst[0]) != "staleapid" {
		t.Fatalf("instant answer after MarkStale = %+v, want only staleapid", inst)
	}
	rng := db.Select("up_total", nil, ts(-1), ts(1))
	if len(rng) != 2 {
		t.Fatalf("range answer after MarkStale = %d series, want 2 (history stays)", len(rng))
	}
	// A fresh append revives the series.
	db.Append(ts(5), []Sample{counterSample("up_total", 2, "instance", "a", "job", "ctlogd")})
	if inst := db.Latest("up_total", nil, ts(5)); len(inst) != 2 {
		t.Fatalf("revived series missing from instant answer: %+v", inst)
	}
}

// LabelsJob extracts the job pair from a selection for test assertions.
func LabelsJob(sd SeriesData) string {
	v, _ := pairValue(sd.Pairs, "job")
	return v
}

func TestTSDBStaleAfterExcludesSilentSeries(t *testing.T) {
	db := &TSDB{StaleAfter: 30 * time.Second, Retention: 10 * time.Minute}
	db.Append(ts(0), []Sample{counterSample("x_total", 1)})
	if inst := db.Latest("x_total", nil, ts(20)); len(inst) != 1 {
		t.Fatalf("series silent < StaleAfter excluded: %+v", inst)
	}
	if inst := db.Latest("x_total", nil, ts(40)); len(inst) != 0 {
		t.Fatalf("series silent > StaleAfter still answered: %+v", inst)
	}
}

func TestTSDBPruneReclaimsSeries(t *testing.T) {
	db := &TSDB{Retention: 30 * time.Second}
	db.Append(ts(0), []Sample{counterSample("gone_total", 1)})
	db.Append(ts(100), []Sample{counterSample("alive_total", 1)})
	if removed := db.Prune(ts(100)); removed != 1 {
		t.Fatalf("Prune removed %d, want 1", removed)
	}
	if got := db.SeriesCount(); got != 1 {
		t.Fatalf("SeriesCount after prune = %d, want 1", got)
	}
	if sel := db.Select("gone_total", nil, ts(-1000), ts(1000)); len(sel) != 0 {
		t.Fatalf("pruned series still selectable: %+v", sel)
	}
}

func TestTSDBLabelInterning(t *testing.T) {
	db := &TSDB{}
	labels := formatLabels([]string{"job", "api"})
	db.Append(ts(0), []Sample{
		{Name: "a_total", Labels: strings.Clone(labels), Kind: KindCounter, Value: 1},
		{Name: "b_total", Labels: strings.Clone(labels), Kind: KindCounter, Value: 1},
	})
	a := db.Select("a_total", nil, ts(-1), ts(1))
	b := db.Select("b_total", nil, ts(-1), ts(1))
	if len(a) != 1 || len(b) != 1 {
		t.Fatal("selection failed")
	}
	// Interning: both series share one backing string for the label set.
	if unsafe.StringData(a[0].Labels) != unsafe.StringData(b[0].Labels) {
		t.Error("equal label sets not interned to one backing string")
	}
}

func TestMatcherOps(t *testing.T) {
	cases := []struct {
		op    MatchOp
		value string
		in    string
		want  bool
	}{
		{MatchEq, "a", "a", true},
		{MatchEq, "a", "b", false},
		{MatchNe, "a", "b", true},
		{MatchRe, "ctlogd|crld", "crld", true},
		{MatchRe, "ctlogd|crld", "crld-2", false}, // anchored
		{MatchNre, "5..", "200", true},
		{MatchNre, "5..", "503", false},
	}
	for _, c := range cases {
		m, err := NewMatcher("l", c.op, c.value)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Matches(c.in); got != c.want {
			t.Errorf("op %d value %q in %q = %v, want %v", c.op, c.value, c.in, got, c.want)
		}
	}
	if _, err := NewMatcher("l", MatchRe, "("); err == nil {
		t.Error("bad regex accepted")
	}
}
