package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"
)

// This file implements fleet log aggregation: the Aggregator scrapes every
// target's /v1/logs alongside /metrics and /v1/traces, dedups records by
// their per-process sequence numbers, labels them with job/instance, and
// merges them into one bounded time-ordered fleet view served at /fleet/logs
// (same filters as the per-daemon endpoint, plus ?job= and ?instance=).
// /fleet/traces/{id} uses the same store to return the log lines correlated
// to a stitched trace from every daemon that touched it, and a re-armable
// error-burst alert watches the federated log_records_total counters so a
// daemon suddenly spewing error logs pages from the same obsagg stream as
// slow traces and SLO burns.

// DefaultFleetLogBuffer bounds merged log records retained by an Aggregator
// when FleetLogBuffer is unset.
const DefaultFleetLogBuffer = 4096

// logScrapeOverlap is re-requested on every round so records landing just
// before the previous scrape's cutoff are not missed; the sequence-number
// high-water mark dedups the overlap.
const logScrapeOverlap = 2 * time.Second

// logTargetState tracks per-target log-scrape progress.
type logTargetState struct {
	highSeq  uint64    // newest sequence number merged from this target
	lastTime time.Time // newest record time merged (the next ?since= basis)
}

// scrapeLogs fetches one target's fresh log records; targets running without
// a ring (-log-buffer=0 or an older build) answer 404 and are skipped.
func (a *Aggregator) scrapeLogs(ctx context.Context, hc *http.Client, t Target) ([]LogRecord, error) {
	key := t.Job + "\x00" + t.Instance()
	a.mu.RLock()
	var since time.Time
	if st, ok := a.logStates[key]; ok {
		since = st.lastTime.Add(-logScrapeOverlap)
	}
	a.mu.RUnlock()

	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	u := strings.TrimSuffix(t.URL, "/") + "/v1/logs"
	if !since.IsZero() {
		u += "?since=" + url.QueryEscape(since.UTC().Format(time.RFC3339Nano))
	}
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil // log ring disabled on this target
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("obs: scrape logs %s: status %d", t.URL, resp.StatusCode)
	}
	var recs []LogRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		return nil, fmt.Errorf("obs: decode logs from %s: %w", t.URL, err)
	}
	return recs, nil
}

// mergeLogs folds one target's scraped records into the fleet view: records
// already merged (sequence number at or under the target's high-water mark)
// are dropped, the rest gain job/instance labels and the merged slice is
// re-sorted by record time — so /fleet/logs reads chronologically even when
// instances' clocks or scrape rounds are skewed — and trimmed oldest-first
// to the buffer bound.
func (a *Aggregator) mergeLogs(t Target, recs []LogRecord) {
	if len(recs) == 0 {
		return
	}
	key := t.Job + "\x00" + t.Instance()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.logStates == nil {
		a.logStates = make(map[string]*logTargetState)
	}
	st := a.logStates[key]
	if st == nil {
		st = &logTargetState{}
		a.logStates[key] = st
	}
	// A restarted daemon starts a fresh sequence space: when the batch's
	// newest seq is below the high-water mark, reset instead of dropping the
	// new process's records forever.
	maxSeq := uint64(0)
	for _, r := range recs {
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
	}
	if maxSeq < st.highSeq {
		st.highSeq = 0
	}
	added := 0
	for _, r := range recs {
		if r.Seq <= st.highSeq {
			continue
		}
		r.Job = t.Job
		r.Instance = t.Instance()
		a.fleetLogs = append(a.fleetLogs, r)
		added++
		if r.Time.After(st.lastTime) {
			st.lastTime = r.Time
		}
	}
	for _, r := range recs {
		if r.Seq > st.highSeq {
			st.highSeq = r.Seq
		}
	}
	if added == 0 {
		return
	}
	sort.SliceStable(a.fleetLogs, func(i, j int) bool {
		ri, rj := a.fleetLogs[i], a.fleetLogs[j]
		if !ri.Time.Equal(rj.Time) {
			return ri.Time.Before(rj.Time)
		}
		if ri.Job != rj.Job {
			return ri.Job < rj.Job
		}
		if ri.Instance != rj.Instance {
			return ri.Instance < rj.Instance
		}
		return ri.Seq < rj.Seq
	})
	max := a.FleetLogBuffer
	if max <= 0 {
		max = DefaultFleetLogBuffer
	}
	if len(a.fleetLogs) > max {
		a.fleetLogs = append([]LogRecord(nil), a.fleetLogs[len(a.fleetLogs)-max:]...)
	}
}

// FleetLogs returns merged records in time order under the filter.
func (a *Aggregator) FleetLogs(f LogFilter) []LogRecord {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]LogRecord, 0, len(a.fleetLogs))
	for _, r := range a.fleetLogs {
		if f.matches(r) {
			out = append(out, r)
		}
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// FleetLogCount reports how many merged records the fleet view holds.
func (a *Aggregator) FleetLogCount() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.fleetLogs)
}

func (a *Aggregator) handleFleetLogs(w http.ResponseWriter, r *http.Request) {
	f, err := ParseLogFilter(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeLogJSON(w, a.FleetLogs(f))
}

// The fleet error-burst alert is the built-in "fleet-error-burst" rule on
// the rules engine (rules.go): sum by (job) (irate(log_records_total{
// level="error"}[retention])) > ErrorBurstThreshold. irate over the TSDB's
// last two appended points reproduces the legacy delta-between-checks
// detector, including restart re-baselining — a counter reset contributes
// only the post-restart value — while the ring-eviction-proof counter
// source and the obsagg_error_burst_alerts_total{job} firing counter are
// unchanged.

// FleetTraceLogs returns the merged log records correlated to one trace ID,
// in time order — the drill-down /fleet/traces/{id} embeds.
func (a *Aggregator) FleetTraceLogs(traceID string) []LogRecord {
	return a.FleetLogs(LogFilter{TraceID: traceID})
}
