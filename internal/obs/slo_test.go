package obs

import (
	"bytes"
	"log/slog"
	"math"
	"testing"
	"time"
)

// approx absorbs float64 rounding in burn-rate ratios.
func approx(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

func sloEngine(t *testing.T, reg *Registry, spec string) (*SLOEngine, *[]SLOAlert) {
	t.Helper()
	specs, err := ParseSLOSpecs(spec)
	if err != nil {
		t.Fatal(err)
	}
	var alerts []SLOAlert
	e := &SLOEngine{
		Reg:     reg,
		Service: "svc",
		Specs:   specs,
		Logger:  slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil)),
		OnAlert: func(a SLOAlert) { alerts = append(alerts, a) },
	}
	return e, &alerts
}

func gaugeValue(t *testing.T, reg *Registry, name string, labelPairs ...string) float64 {
	t.Helper()
	return reg.Gauge(name, labelPairs...).Value()
}

// TestSLOBurnRateExhaustionAndRecovery drives the availability objective
// through a full incident with a fake clock: total outage → both window
// pairs agree and fire, budget goes negative; sustained health → burn rates
// drop to zero, alerts resolve, budget recovers.
func TestSLOBurnRateExhaustionAndRecovery(t *testing.T) {
	reg := NewRegistry()
	e, alerts := sloEngine(t, reg, "availability:99") // 1% error budget
	ok := reg.Counter("http_requests_total", "service", "svc", "route", "/x", "code", "2xx")
	bad := reg.Counter("http_requests_total", "service", "svc", "route", "/x", "code", "5xx")

	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	e.Evaluate(t0)
	if got := gaugeValue(t, reg, "slo_burn_rate", "service", "svc", "slo", "availability", "window", "5m"); got != 0 {
		t.Fatalf("burn with no traffic = %v, want 0", got)
	}

	// Total outage: 100% errors for a minute. Burn = 1.0/0.01 = 100 in every
	// window (history shorter than all windows), so fast AND slow pairs
	// agree and both severities fire.
	bad.Add(100)
	e.Evaluate(t0.Add(time.Minute))
	for _, w := range []string{"5m", "1h", "6h", "3d"} {
		if got := gaugeValue(t, reg, "slo_burn_rate", "service", "svc", "slo", "availability", "window", w); !approx(got, 100) {
			t.Errorf("burn[%s] = %v, want 100", w, got)
		}
	}
	if got := gaugeValue(t, reg, "slo_alert_firing", "service", "svc", "slo", "availability", "severity", "page"); got != 1 {
		t.Errorf("page alert not firing: %v", got)
	}
	if got := gaugeValue(t, reg, "slo_alert_firing", "service", "svc", "slo", "availability", "severity", "ticket"); got != 1 {
		t.Errorf("ticket alert not firing: %v", got)
	}
	// Budget exhaustion: 100x burn means the remaining fraction is deeply
	// negative (1 - 100 = -99).
	if got := gaugeValue(t, reg, "slo_error_budget_remaining", "service", "svc", "slo", "availability"); !approx(got, -99) {
		t.Errorf("budget remaining = %v, want -99", got)
	}
	if len(*alerts) != 2 {
		t.Fatalf("alert transitions = %d, want 2 (page + ticket)", len(*alerts))
	}
	for _, a := range *alerts {
		if !a.Firing || a.Service != "svc" || a.SLO != "availability" {
			t.Errorf("unexpected alert %+v", a)
		}
	}
	if got := e.FiringAlerts(); len(got) != 2 {
		t.Errorf("FiringAlerts = %v", got)
	}

	// Recovery: errors stop, healthy traffic resumes, and enough time
	// passes that every window's delta is clean. All burn rates reset,
	// alerts resolve, budget returns to 1.
	ok.Add(100000)
	e.Evaluate(t0.Add(time.Minute + 73*time.Hour))
	for _, w := range []string{"5m", "1h", "6h", "3d"} {
		if got := gaugeValue(t, reg, "slo_burn_rate", "service", "svc", "slo", "availability", "window", w); got != 0 {
			t.Errorf("post-recovery burn[%s] = %v, want 0", w, got)
		}
	}
	if got := gaugeValue(t, reg, "slo_alert_firing", "service", "svc", "slo", "availability", "severity", "page"); got != 0 {
		t.Errorf("page alert still firing after recovery")
	}
	if got := gaugeValue(t, reg, "slo_error_budget_remaining", "service", "svc", "slo", "availability"); got != 1 {
		t.Errorf("budget remaining after recovery = %v, want 1", got)
	}
	if len(*alerts) != 4 {
		t.Fatalf("alert transitions = %d, want 4 (2 firing + 2 resolved)", len(*alerts))
	}
	if (*alerts)[2].Firing || (*alerts)[3].Firing {
		t.Error("resolution transitions should have Firing=false")
	}
	if got := e.FiringAlerts(); len(got) != 0 {
		t.Errorf("FiringAlerts after recovery = %v", got)
	}
}

// TestSLOFastSlowWindowDisagreement: a short sharp burst trips the fast
// pair; once the burst leaves the 5m window the page resolves while the
// long windows still remember the errors — the severities genuinely
// evaluate different windows.
func TestSLOFastSlowWindowDisagreement(t *testing.T) {
	reg := NewRegistry()
	e, _ := sloEngine(t, reg, "availability:99")
	ok := reg.Counter("http_requests_total", "service", "svc", "route", "/x", "code", "2xx")
	bad := reg.Counter("http_requests_total", "service", "svc", "route", "/x", "code", "5xx")

	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	ok.Add(1000)
	e.Evaluate(t0)
	// Sharp burst: 50% errors for 2 minutes.
	bad.Add(1000)
	ok.Add(1000)
	e.Evaluate(t0.Add(2 * time.Minute))
	if got := gaugeValue(t, reg, "slo_alert_firing", "service", "svc", "slo", "availability", "severity", "page"); got != 1 {
		t.Fatal("sharp burst should fire the page severity")
	}

	// 30 minutes of pure health: the 5m window is clean (page resolves)
	// but the 1h/6h/3d windows still contain the burst.
	ok.Add(10000)
	e.Evaluate(t0.Add(30 * time.Minute))
	ok.Add(10000)
	e.Evaluate(t0.Add(35 * time.Minute))
	if got := gaugeValue(t, reg, "slo_burn_rate", "service", "svc", "slo", "availability", "window", "5m"); got != 0 {
		t.Errorf("5m burn after clean half hour = %v, want 0", got)
	}
	if got := gaugeValue(t, reg, "slo_burn_rate", "service", "svc", "slo", "availability", "window", "3d"); got == 0 {
		t.Error("3d burn should still remember the burst")
	}
	if got := gaugeValue(t, reg, "slo_alert_firing", "service", "svc", "slo", "availability", "severity", "page"); got != 0 {
		t.Error("page severity should resolve once the fast window is clean")
	}
}

// TestSLOLatencyObjective checks the latency kind against the RED histogram,
// including the threshold-on-boundary case -latency-buckets enables.
func TestSLOLatencyObjective(t *testing.T) {
	reg := NewRegistry()
	e, _ := sloEngine(t, reg, "latency:99:250ms")
	buckets := []float64{0.1, 0.25, 1}
	h := reg.Histogram("http_request_seconds", buckets, "service", "svc", "route", "/x")

	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	e.Evaluate(t0)
	// 99% fast, 1% slow: exactly at objective, burn = 1 in-window.
	for i := 0; i < 99; i++ {
		h.Observe(0.05)
	}
	h.Observe(0.5)
	e.Evaluate(t0.Add(time.Minute))
	name := "latency-250ms"
	if got := gaugeValue(t, reg, "slo_burn_rate", "service", "svc", "slo", name, "window", "5m"); !approx(got, 1) {
		t.Errorf("burn at exactly-objective = %v, want 1", got)
	}
	if got := gaugeValue(t, reg, "slo_alert_firing", "service", "svc", "slo", name, "severity", "page"); got != 0 {
		t.Error("burn of 1 must not page")
	}

	// Regression: 20% of requests slower than threshold → burn 20 ≥ 14.4.
	for i := 0; i < 300; i++ {
		h.Observe(0.05)
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.9)
	}
	e.Evaluate(t0.Add(2 * time.Minute))
	if got := gaugeValue(t, reg, "slo_burn_rate", "service", "svc", "slo", name, "window", "5m"); got < 14.4 {
		t.Errorf("burn after regression = %v, want ≥ 14.4", got)
	}
	if got := gaugeValue(t, reg, "slo_alert_firing", "service", "svc", "slo", name, "severity", "page"); got != 1 {
		t.Error("sustained latency regression should page")
	}
}

func TestGoodUnderThresholdInterpolates(t *testing.T) {
	s := Sample{Kind: KindHistogram, Count: 100, Buckets: []BucketCount{
		{UpperBound: 0.1, Count: 40},
		{UpperBound: 0.3, Count: 80},
		{UpperBound: inf, Count: 100},
	}}
	// Threshold halfway through the (0.1, 0.3] bucket: 40 + 0.5*40 = 60.
	if got := goodUnderThreshold(s, 0.2); got != 60 {
		t.Errorf("interpolated good = %v, want 60", got)
	}
	// On a boundary: exact.
	if got := goodUnderThreshold(s, 0.1); got != 40 {
		t.Errorf("boundary good = %v, want 40", got)
	}
	// Above every finite bound: only finite-bucket observations are good.
	if got := goodUnderThreshold(s, 5); got != 80 {
		t.Errorf("above-range good = %v, want 80", got)
	}
}

func TestParseSLOSpecs(t *testing.T) {
	specs, err := ParseSLOSpecs("availability:99.9,latency:99:250ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("got %d specs", len(specs))
	}
	if specs[0].Kind != SLOAvailability || !approx(specs[0].Objective, 0.999) {
		t.Errorf("availability spec: %+v", specs[0])
	}
	if specs[1].Kind != SLOLatency || specs[1].Threshold != 250*time.Millisecond ||
		specs[1].Name != "latency-250ms" {
		t.Errorf("latency spec: %+v", specs[1])
	}
	for _, off := range []string{"", "off", "none"} {
		if s, err := ParseSLOSpecs(off); err != nil || len(s) != 0 {
			t.Errorf("%q should parse as no specs (got %v, %v)", off, s, err)
		}
	}
	for _, bad := range []string{"availability", "availability:0", "availability:100",
		"latency:99", "latency:99:zzz", "latency:99:-1s", "weird:50"} {
		if _, err := ParseSLOSpecs(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
