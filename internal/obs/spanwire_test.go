package obs

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestMiddlewareRecordsServerSpanAndExemplar(t *testing.T) {
	reg := NewRegistry()
	st := NewSpanStore(8, 1, 0) // keep everything
	st.Registry = reg
	h := MiddlewareSpans(reg, st, "api", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	mux := http.NewServeMux()
	mux.Handle("GET /things/{id}", h)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/things/42")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	traces := st.Traces(TraceFilter{WithSpans: true})
	if len(traces) != 1 {
		t.Fatalf("got %d kept traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Route != "/things/{id}" || tr.Root != "api GET /things/{id}" {
		t.Fatalf("trace summary wrong: %+v", tr)
	}
	span := tr.Spans[0]
	if span.Kind != SpanServer || span.Status != 200 || span.ParentID != "" {
		t.Fatalf("server span wrong: %+v", span)
	}

	// The kept trace's ID must be attached as the latency histogram exemplar.
	found := false
	for _, s := range reg.Snapshot() {
		if s.Name != "http_request_seconds" {
			continue
		}
		for _, b := range s.Buckets {
			if b.Exemplar != nil && b.Exemplar.TraceID == tr.TraceID {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no histogram bucket carries the kept trace's exemplar")
	}
}

func TestMiddlewareServerSpanParentsUnderCaller(t *testing.T) {
	reg := NewRegistry()
	st := NewSpanStore(8, 1, 0)
	st.Registry = reg
	srv := httptest.NewServer(MiddlewareSpans(reg, st, "api", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})))
	defer srv.Close()

	caller := NewRequestID()
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set(TraceHeader, caller.String())
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	tr, ok := st.Trace(caller.Trace())
	if !ok {
		t.Fatal("trace with incoming traceparent not kept")
	}
	span := tr.Spans[0]
	if span.ParentID != caller.Span() {
		t.Fatalf("server span parent = %q, want caller span %q", span.ParentID, caller.Span())
	}
	if span.SpanID == caller.Span() {
		t.Fatal("server reused the caller's span ID instead of minting its own")
	}
}

func TestTransportRecordsClientSpans(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	defer srv.Close()

	reg := NewRegistry()
	st := NewSpanStore(8, 1, 0)
	st.Registry = reg
	hc := &http.Client{Transport: &Transport{Registry: reg, Service: "cli", Spans: st}}

	// No context ID: the transport originates the trace and the client span
	// is its root — kept immediately at sample=1.
	resp, err := hc.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	traces := st.Traces(TraceFilter{WithSpans: true})
	if len(traces) != 1 {
		t.Fatalf("got %d kept traces, want 1", len(traces))
	}
	span := traces[0].Spans[0]
	if span.Kind != SpanClient || span.Status != http.StatusTeapot || span.ParentID != "" || span.Peer == "" {
		t.Fatalf("originated client span wrong: %+v", span)
	}

	// With a context ID the client span buffers under the caller's trace and
	// parents beneath the caller's span.
	id := NewRequestID()
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/y", nil)
	req = req.WithContext(ContextWithRequestID(req.Context(), id))
	resp, err = hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st.RecordRoot(SpanRecord{TraceID: id.Trace(), SpanID: id.Span(), Service: "cli",
		Name: "outer", Kind: SpanServer, Status: 200, Duration: time.Millisecond})
	tr, ok := st.Trace(id.Trace())
	if !ok || len(tr.Spans) != 2 {
		t.Fatalf("caller trace wrong: ok=%v %+v", ok, tr)
	}
	if tr.Spans[0].ParentID != id.Span() {
		t.Fatalf("client span parent = %q, want caller span %q", tr.Spans[0].ParentID, id.Span())
	}
}

func TestRegisterRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg, "testd")
	byName := map[string]Sample{}
	for _, s := range reg.Snapshot() {
		byName[s.Name] = s
	}
	bi, ok := byName["build_info"]
	if !ok || bi.Value != 1 {
		t.Fatalf("build_info = %+v", bi)
	}
	if LabelValue(bi, "daemon") != "testd" || LabelValue(bi, "go_version") == "" || LabelValue(bi, "revision") == "" {
		t.Fatalf("build_info labels wrong: %s", bi.Labels)
	}
	if g := byName["go_goroutines"]; g.Value < 1 {
		t.Fatalf("go_goroutines = %v, want >= 1", g.Value)
	}
	if h := byName["go_heap_alloc_bytes"]; h.Value <= 0 {
		t.Fatalf("go_heap_alloc_bytes = %v, want > 0", h.Value)
	}
	for _, name := range []string{"go_heap_objects", "go_gc_cycles_total", "go_gc_pause_seconds_total"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("runtime gauge %s missing", name)
		}
	}
}
