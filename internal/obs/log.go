package obs

import (
	"context"
	"flag"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"
)

// SetupLogger builds a slog logger writing to stderr in the given format
// ("text" or "json") at the given level ("debug", "info", "warn", "error"),
// installs it as the slog default, and returns it. The level is backed by
// the process-wide slog.LevelVar, so PUT /v1/loglevel retargets a live
// daemon, and the handler tees every record into the process log ring
// (DefaultLogRing) for /v1/logs. Unknown values fall back to text/info with
// a warning naming the bad value and the fallback.
func SetupLogger(format, level string) *slog.Logger {
	return setupLogger(os.Stderr, format, level)
}

// setupLogger is SetupLogger with an injectable sink (tests capture the
// warning output).
func setupLogger(w io.Writer, format, level string) *slog.Logger {
	lv, levelOK := parseLevelName(level)
	if !levelOK {
		lv = slog.LevelInfo
	}
	logLevel.Set(lv)
	opts := &slog.HandlerOptions{Level: &logLevel}
	var h slog.Handler
	f := strings.ToLower(format)
	if f == "json" {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	l := slog.New(NewTeeHandler(h, nil))
	slog.SetDefault(l)
	if !levelOK {
		l.Warn("unknown -log-level, falling back", "value", level, "fallback", "info")
	}
	if f != "json" && f != "text" {
		l.Warn("unknown -log-format, falling back", "value", format, "fallback", "text")
	}
	return l
}

// parseLevelName maps the -log-level flag values to slog levels, reporting
// whether the name was recognised.
func parseLevelName(level string) (slog.Level, bool) {
	switch strings.ToLower(level) {
	case "debug":
		return slog.LevelDebug, true
	case "info":
		return slog.LevelInfo, true
	case "warn", "warning":
		return slog.LevelWarn, true
	case "error":
		return slog.LevelError, true
	}
	return slog.LevelInfo, false
}

// Flags carries the standard observability flag values every cmd/ binary
// accepts. Bind with BindFlags before flag.Parse, then call Setup.
type Flags struct {
	DebugAddr   string
	LogFormat   string
	LogLevel    string
	LogBuffer   int
	TraceBuffer int
	TraceSample float64
	TraceSlow   time.Duration

	// SLO and triggered-profiling knobs.
	SLO             string
	SLOInterval     time.Duration
	ProfileDir      string
	LatencyBuckets  string
	ChaosSrvLatency time.Duration
	ChaosSrvRate    float64
}

// BindFlags registers -debug-addr, -log-format, -log-level, -log-buffer, the
// tracing flags -trace-buffer/-trace-sample/-trace-slow, the SLO flags
// -slo/-slo-interval, -profile-dir, -latency-buckets and the server-side
// chaos latency flags on fs.
func BindFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.DebugAddr, "debug-addr", "",
		"serve /metrics, /debug/vars and /debug/pprof on this address (empty disables)")
	fs.StringVar(&f.LogFormat, "log-format", "text", "log output format: text or json")
	fs.StringVar(&f.LogLevel, "log-level", "info", "log level: debug, info, warn or error")
	fs.IntVar(&f.LogBuffer, "log-buffer", DefaultLogBuffer,
		"structured log records retained in memory for /v1/logs (0 disables the ring)")
	fs.IntVar(&f.TraceBuffer, "trace-buffer", 256,
		"kept traces retained in memory for /v1/traces (0 disables tracing)")
	fs.Float64Var(&f.TraceSample, "trace-sample", 0.10,
		"fraction of healthy traces tail-kept (errors and slow traces are always kept)")
	fs.DurationVar(&f.TraceSlow, "trace-slow", 250*time.Millisecond,
		"root latency at or above which a trace is always kept")
	fs.StringVar(&f.SLO, "slo", "availability:99.9,latency:99:250ms",
		"comma-separated SLO objectives evaluated over the RED metrics "+
			"(availability:<pct> and latency:<pct>:<threshold>; \"off\" disables)")
	fs.DurationVar(&f.SLOInterval, "slo-interval", 10*time.Second,
		"SLO burn-rate sampling interval")
	fs.StringVar(&f.ProfileDir, "profile-dir", "",
		"directory for triggered pprof captures served at /v1/profiles (empty disables)")
	fs.StringVar(&f.LatencyBuckets, "latency-buckets", "",
		"override default latency histogram bucket bounds: comma-separated "+
			"ascending durations, e.g. 100us,250us,1ms,5ms,25ms,100ms,250ms,1s,5s")
	fs.DurationVar(&f.ChaosSrvLatency, "chaos-server-latency", 0,
		"TEST ONLY: delay injected into handled requests (0 disables)")
	fs.Float64Var(&f.ChaosSrvRate, "chaos-server-latency-rate", 1,
		"TEST ONLY: fraction of requests receiving -chaos-server-latency")
	return f
}

// Setup installs the configured logger (tagged with the component name),
// sizes the process-wide log ring (-log-buffer) and span store (-trace-*
// flags), applies -latency-buckets, registers the build_info and Go runtime
// gauges, starts the SLO burn-rate engine (-slo) with triggered profiling
// (-profile-dir) mounted at /v1/profile(s) — captures embed a log-ring
// black-box snapshot — arms server-side chaos latency when asked, and, when
// -debug-addr is set, starts the debug endpoint server — the Default
// registry and DefaultHealth probes behind the request-scoped Middleware, so
// the debug surface itself has RED metrics and access logs. The returned
// stop func gracefully shuts the debug server down and stops the SLO engine
// (no-op when disabled).
func (f *Flags) Setup(component string) (*slog.Logger, func(context.Context) error) {
	logger := SetupLogger(f.LogFormat, f.LogLevel).With("component", component)
	if f.LogBuffer > 0 {
		SetDefaultLogRing(NewLogRing(f.LogBuffer))
	} else {
		SetDefaultLogRing(nil)
	}
	if f.TraceBuffer > 0 {
		SetDefaultSpans(NewSpanStore(f.TraceBuffer, f.TraceSample, f.TraceSlow))
	} else {
		SetDefaultSpans(nil)
	}
	if f.LatencyBuckets != "" {
		bounds, err := ParseLatencyBuckets(f.LatencyBuckets)
		if err == nil {
			err = SetDurationBuckets(bounds)
		}
		if err != nil {
			logger.Error("bad -latency-buckets, keeping defaults", "err", err)
		}
	}
	RegisterRuntimeMetrics(Default(), component)

	var capture *ProfileCapture
	if f.ProfileDir != "" {
		capture = &ProfileCapture{Dir: f.ProfileDir, Logger: logger}
		h := capture.Handler()
		RegisterDebug("POST /v1/profile", h)
		RegisterDebug("GET /v1/profiles", h)
		RegisterDebug("GET /v1/profiles/{id}/{file}", h)
	}
	// The panic-recovery black box: Middleware triggers a capture (profiles +
	// log snapshot) through this process-wide pointer.
	SetDefaultCapture(capture)

	sloStop := func() {}
	if specs, err := ParseSLOSpecs(f.SLO); err != nil {
		logger.Error("bad -slo, SLO engine disabled", "err", err)
	} else if len(specs) > 0 {
		engine := &SLOEngine{
			Service:  component,
			Specs:    specs,
			Interval: f.SLOInterval,
			Logger:   logger,
		}
		if capture != nil {
			engine.OnAlert = func(a SLOAlert) {
				if a.Firing {
					capture.TriggerAsync("slo-" + a.SLO + "-" + a.Severity)
				}
			}
		}
		ctx, cancel := context.WithCancel(context.Background())
		sloStop = cancel
		go engine.Run(ctx)
	}

	if f.ChaosSrvLatency > 0 {
		logger.Warn("server-side chaos latency active", "latency", f.ChaosSrvLatency,
			"rate", f.ChaosSrvRate)
		SetServerChaosLatency(f.ChaosSrvLatency, f.ChaosSrvRate)
	}

	stop := func(context.Context) error { sloStop(); return nil }
	if f.DebugAddr != "" {
		h := Middleware(Default(), component, HandlerFor(Default(), DefaultHealth()))
		bound, shutdown, err := StartDebugServer(f.DebugAddr, h)
		if err != nil {
			logger.Error("debug server failed to start", "addr", f.DebugAddr, "err", err)
		} else {
			logger.Info("debug endpoints up", "addr", bound,
				"endpoints", "/metrics /debug/vars /debug/pprof /healthz /readyz /v1/traces /v1/logs /v1/loglevel /v1/profiles")
			stop = func(ctx context.Context) error { sloStop(); return shutdown(ctx) }
		}
	}
	return logger, stop
}
