package obs

import (
	"context"
	"flag"
	"log/slog"
	"os"
	"strings"
	"time"
)

// SetupLogger builds a slog logger writing to stderr in the given format
// ("text" or "json") at the given level ("debug", "info", "warn", "error"),
// installs it as the slog default, and returns it. Unknown values fall back
// to text/info.
func SetupLogger(format, level string) *slog.Logger {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		lv = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if strings.ToLower(format) == "json" {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	l := slog.New(h)
	slog.SetDefault(l)
	return l
}

// Flags carries the standard observability flag values every cmd/ binary
// accepts. Bind with BindFlags before flag.Parse, then call Setup.
type Flags struct {
	DebugAddr   string
	LogFormat   string
	LogLevel    string
	TraceBuffer int
	TraceSample float64
	TraceSlow   time.Duration
}

// BindFlags registers -debug-addr, -log-format, -log-level and the tracing
// flags -trace-buffer, -trace-sample and -trace-slow on fs.
func BindFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.DebugAddr, "debug-addr", "",
		"serve /metrics, /debug/vars and /debug/pprof on this address (empty disables)")
	fs.StringVar(&f.LogFormat, "log-format", "text", "log output format: text or json")
	fs.StringVar(&f.LogLevel, "log-level", "info", "log level: debug, info, warn or error")
	fs.IntVar(&f.TraceBuffer, "trace-buffer", 256,
		"kept traces retained in memory for /v1/traces (0 disables tracing)")
	fs.Float64Var(&f.TraceSample, "trace-sample", 0.10,
		"fraction of healthy traces tail-kept (errors and slow traces are always kept)")
	fs.DurationVar(&f.TraceSlow, "trace-slow", 250*time.Millisecond,
		"root latency at or above which a trace is always kept")
	return f
}

// Setup installs the configured logger (tagged with the component name),
// sizes the process-wide span store from the -trace-* flags, registers the
// build_info and Go runtime gauges, and, when -debug-addr is set, starts the
// debug endpoint server — the Default registry and DefaultHealth probes
// behind the request-scoped Middleware, so the debug surface itself has RED
// metrics and access logs. The returned stop func gracefully shuts the debug
// server down (no-op when disabled).
func (f *Flags) Setup(component string) (*slog.Logger, func(context.Context) error) {
	logger := SetupLogger(f.LogFormat, f.LogLevel).With("component", component)
	if f.TraceBuffer > 0 {
		SetDefaultSpans(NewSpanStore(f.TraceBuffer, f.TraceSample, f.TraceSlow))
	} else {
		SetDefaultSpans(nil)
	}
	RegisterRuntimeMetrics(Default(), component)
	stop := func(context.Context) error { return nil }
	if f.DebugAddr != "" {
		h := Middleware(Default(), component, HandlerFor(Default(), DefaultHealth()))
		bound, shutdown, err := StartDebugServer(f.DebugAddr, h)
		if err != nil {
			logger.Error("debug server failed to start", "addr", f.DebugAddr, "err", err)
		} else {
			logger.Info("debug endpoints up", "addr", bound,
				"endpoints", "/metrics /debug/vars /debug/pprof /healthz /readyz /v1/traces")
			stop = shutdown
		}
	}
	return logger, stop
}
