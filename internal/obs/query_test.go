package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"
)

// queryDB builds a TSDB with a small fleet's worth of history: two jobs'
// request counters climbing over 60s, a latency histogram, and an SLO gauge.
func queryDB(t *testing.T) *TSDB {
	t.Helper()
	db := &TSDB{}
	for i := 0; i <= 6; i++ {
		now := ts(i * 10)
		db.Append(now, []Sample{
			counterSample("http_requests_total", float64(i*100), "code", "2xx", "job", "api"),
			counterSample("http_requests_total", float64(i*10), "code", "5xx", "job", "api"),
			counterSample("http_requests_total", float64(i*50), "code", "2xx", "job", "gw"),
			{Name: "slo_burn_rate", Labels: formatLabels([]string{"job", "api", "slo", "availability", "window", "5m"}),
				Kind: KindGauge, Value: float64(i)},
		})
		h := Sample{
			Name: "http_request_seconds", Labels: formatLabels([]string{"job", "api"}), Kind: KindHistogram,
			Count: uint64(i * 100), Sum: float64(i),
			Buckets: []BucketCount{
				{UpperBound: 0.01, Count: uint64(i * 50)},
				{UpperBound: 0.1, Count: uint64(i * 90), Exemplar: &Exemplar{TraceID: "trace-p99", Value: 0.09}},
				{UpperBound: math.Inf(1), Count: uint64(i * 100)},
			},
		}
		db.Append(now, []Sample{h})
	}
	return db
}

func evalAt(t *testing.T, db *TSDB, expr string, at time.Time) queryValue {
	t.Helper()
	node, err := ParseQuery(expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	v, err := evalInstant(db, node, at)
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return v
}

func vec(t *testing.T, v queryValue) []vecSample {
	t.Helper()
	out, ok := v.([]vecSample)
	if !ok {
		t.Fatalf("value %T is not a vector", v)
	}
	return out
}

func TestQuerySelectorAndMatchers(t *testing.T) {
	db := queryDB(t)
	v := vec(t, evalAt(t, db, `http_requests_total{job="api"}`, ts(60)))
	if len(v) != 2 {
		t.Fatalf("api selector returned %d series, want 2", len(v))
	}
	v = vec(t, evalAt(t, db, `http_requests_total{job="api", code!="5xx"}`, ts(60)))
	if len(v) != 1 || v[0].v != 600 {
		t.Fatalf("negated matcher = %+v", v)
	}
	v = vec(t, evalAt(t, db, `http_requests_total{job=~"a.*"}`, ts(60)))
	if len(v) != 2 {
		t.Fatalf("regex matcher returned %d series, want 2", len(v))
	}
	if name := v[0].name; name != "http_requests_total" {
		t.Errorf("bare selector lost metric name: %q", name)
	}
}

func TestQueryRateIncrease(t *testing.T) {
	db := queryDB(t)
	// 2xx api counter climbs 100 per 10s: rate = 10/s over any window.
	v := vec(t, evalAt(t, db, `rate(http_requests_total{code="2xx", job="api"}[60s])`, ts(60)))
	if len(v) != 1 || math.Abs(v[0].v-10) > 1e-9 {
		t.Fatalf("rate = %+v, want 10/s", v)
	}
	v = vec(t, evalAt(t, db, `increase(http_requests_total{code="2xx", job="api"}[30s])`, ts(60)))
	if len(v) != 1 || math.Abs(v[0].v-300) > 1e-9 {
		t.Fatalf("increase = %+v, want 300", v)
	}
}

func TestQueryRateCounterReset(t *testing.T) {
	db := &TSDB{}
	// Counter restarts mid-window: 0, 100, 200, (restart) 50, 150.
	vals := []float64{0, 100, 200, 50, 150}
	for i, val := range vals {
		db.Append(ts(i*10), []Sample{counterSample("c_total", val)})
	}
	v := vec(t, evalAt(t, db, `increase(c_total[40s])`, ts(40)))
	// 0→200 is 200, restart adds 50, 50→150 is 100: 350 total.
	if len(v) != 1 || math.Abs(v[0].v-350) > 1e-9 {
		t.Fatalf("reset-adjusted increase = %+v, want 350", v)
	}
	v = vec(t, evalAt(t, db, `irate(c_total[40s])`, ts(30)))
	// Last two points at ts(30) are 200 → 50: a reset, so irate sees 50/10s.
	if len(v) != 1 || math.Abs(v[0].v-5) > 1e-9 {
		t.Fatalf("irate across reset = %+v, want 5/s", v)
	}
}

func TestQueryOverTimeFunctions(t *testing.T) {
	db := queryDB(t)
	cases := map[string]float64{
		`avg_over_time(slo_burn_rate[60s])`:   3, // 0..6 (the window is [0s, 60s])
		`max_over_time(slo_burn_rate[60s])`:   6,
		`min_over_time(slo_burn_rate[60s])`:   0,
		`sum_over_time(slo_burn_rate[60s])`:   21,
		`count_over_time(slo_burn_rate[60s])`: 7,
	}
	for expr, want := range cases {
		v := vec(t, evalAt(t, db, expr, ts(60)))
		if len(v) != 1 || math.Abs(v[0].v-want) > 1e-9 {
			t.Errorf("%s = %+v, want %v", expr, v, want)
		}
	}
}

func TestQueryAggregationBy(t *testing.T) {
	db := queryDB(t)
	v := vec(t, evalAt(t, db, `sum by (job) (http_requests_total)`, ts(60)))
	if len(v) != 2 {
		t.Fatalf("sum by (job) returned %d groups, want 2", len(v))
	}
	byJob := map[string]float64{}
	for _, s := range v {
		j, _ := pairValue(s.pairs, "job")
		byJob[j] = s.v
	}
	if byJob["api"] != 660 || byJob["gw"] != 300 {
		t.Fatalf("sum by (job) = %v", byJob)
	}
	// Trailing-by spelling parses to the same thing.
	v2 := vec(t, evalAt(t, db, `sum(http_requests_total) by (job)`, ts(60)))
	if len(v2) != 2 {
		t.Fatalf("trailing by returned %d groups", len(v2))
	}
	// Aggregation without by collapses to one ungrouped sample.
	v3 := vec(t, evalAt(t, db, `max(http_requests_total)`, ts(60)))
	if len(v3) != 1 || v3[0].v != 600 || v3[0].labels != "" {
		t.Fatalf("max() = %+v", v3)
	}
}

func TestQueryBinaryOpsAndFilters(t *testing.T) {
	db := queryDB(t)
	// Vector/vector ratio with one-to-one matching on the by-labels.
	v := vec(t, evalAt(t, db,
		`sum by (job) (http_requests_total{code="5xx"}) / sum by (job) (http_requests_total)`, ts(60)))
	if len(v) != 1 {
		t.Fatalf("ratio = %+v, want only the api job (gw has no 5xx)", v)
	}
	want := 60.0 / 660.0
	if math.Abs(v[0].v-want) > 1e-9 {
		t.Fatalf("error ratio = %v, want %v", v[0].v, want)
	}
	// Comparison filters: only the api 2xx series exceeds 400.
	v = vec(t, evalAt(t, db, `http_requests_total > 400`, ts(60)))
	if len(v) != 1 || v[0].v != 600 {
		t.Fatalf("filter = %+v", v)
	}
	// Scalar arithmetic, scalar comparison.
	if got := evalAt(t, db, `(2 + 3) * 4`, ts(60)).(float64); got != 20 {
		t.Fatalf("scalar arithmetic = %v", got)
	}
	if got := evalAt(t, db, `2 > 3`, ts(60)).(float64); got != 0 {
		t.Fatalf("scalar comparison = %v", got)
	}
	// Vector * scalar.
	v = vec(t, evalAt(t, db, `sum by (job) (http_requests_total{job="gw"}) * 2`, ts(60)))
	if len(v) != 1 || v[0].v != 600 {
		t.Fatalf("vector*scalar = %+v", v)
	}
}

func TestQueryHistogramQuantile(t *testing.T) {
	db := queryDB(t)
	// At ts(60): cumulative 300/540/600. p50 rank 300 lands exactly on the
	// 0.01 bucket; p99 rank 594 lands in the +Inf bucket → highest finite
	// bound 0.1.
	v := vec(t, evalAt(t, db, `histogram_quantile(0.5, http_request_seconds_bucket{job="api"})`, ts(60)))
	if len(v) != 1 {
		t.Fatalf("quantile groups = %+v", v)
	}
	if math.Abs(v[0].v-0.01) > 1e-9 {
		t.Errorf("p50 = %v, want 0.01", v[0].v)
	}
	v = vec(t, evalAt(t, db, `histogram_quantile(0.99, http_request_seconds_bucket{job="api"})`, ts(60)))
	if math.Abs(v[0].v-0.1) > 1e-9 {
		t.Errorf("p99 = %v, want 0.1", v[0].v)
	}
	// p80: rank 480 lands in the 0.1 bucket (300..540): interpolated
	// between 0.01 and 0.1 at (480-300)/240.
	v = vec(t, evalAt(t, db, `histogram_quantile(0.8, http_request_seconds_bucket{job="api"})`, ts(60)))
	want := 0.01 + (0.1-0.01)*(480.0-300)/240
	if math.Abs(v[0].v-want) > 1e-9 {
		t.Errorf("p80 = %v, want %v", v[0].v, want)
	}
	if v[0].exemplar == nil || v[0].exemplar.TraceID != "trace-p99" {
		t.Errorf("quantile lost the landing bucket's exemplar: %+v", v[0].exemplar)
	}
	// Composed with rate() — the canonical latency question.
	v = vec(t, evalAt(t, db,
		`histogram_quantile(0.8, sum by (le) (rate(http_request_seconds_bucket{job="api"}[60s])))`, ts(60)))
	if len(v) != 1 || math.Abs(v[0].v-want) > 1e-9 {
		t.Errorf("quantile over rate = %+v, want %v", v, want)
	}
}

func TestHistogramQuantileExported(t *testing.T) {
	buckets := []BucketCount{
		{UpperBound: 1, Count: 50},
		{UpperBound: 2, Count: 100},
		{UpperBound: math.Inf(1), Count: 100},
	}
	if got := HistogramQuantile(0.5, buckets); math.Abs(got-1) > 1e-9 {
		t.Errorf("p50 = %v, want 1", got)
	}
	if got := HistogramQuantile(0.75, buckets); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p75 = %v, want 1.5", got)
	}
	if got := HistogramQuantile(0.5, nil); !math.IsNaN(got) {
		t.Errorf("empty buckets = %v, want NaN", got)
	}
}

func TestQueryParseErrors(t *testing.T) {
	bad := []string{
		``,
		`sum by (job (http_requests_total)`,
		`rate(http_requests_total)`, // not a range vector — eval-time error
		`http_requests_total{job=api}`,
		`http_requests_total[`,
		`1 +`,
		`histogram_quantile(0.5)`,
		`nosuchfunc(x[1m])`, // parses as selector "nosuchfunc" then trailing (
	}
	for _, q := range bad {
		node, err := ParseQuery(q)
		if err != nil {
			continue
		}
		if _, err := evalInstant(&TSDB{}, node, ts(0)); err == nil {
			t.Errorf("query %q parsed and evaluated without error", q)
		}
	}
}

func TestFleetQueryHandler(t *testing.T) {
	a := &Aggregator{Registry: NewRegistry(), TSDB: queryDB(t),
		Now: func() time.Time { return ts(60) }}
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	// Instant vector.
	code, body := get("/fleet/query?query=" + url.QueryEscape(`sum by (job) (http_requests_total)`))
	if code != 200 {
		t.Fatalf("instant query status %d: %s", code, body)
	}
	var r struct {
		Status string `json:"status"`
		Data   struct {
			ResultType string `json:"resultType"`
			Result     []struct {
				Metric map[string]string `json:"metric"`
				Value  [2]any            `json:"value"`
			} `json:"result"`
		} `json:"data"`
	}
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if r.Status != "success" || r.Data.ResultType != "vector" || len(r.Data.Result) != 2 {
		t.Fatalf("instant response = %s", body)
	}
	for _, e := range r.Data.Result {
		if e.Metric["job"] == "api" {
			if v, _ := strconv.ParseFloat(e.Value[1].(string), 64); v != 660 {
				t.Errorf("api sum = %v, want 660", e.Value[1])
			}
		}
	}

	// Range query.
	start := strconv.FormatInt(ts(0).Unix(), 10)
	end := strconv.FormatInt(ts(60).Unix(), 10)
	code, body = get("/fleet/query?query=" + url.QueryEscape(`sum by (job) (http_requests_total)`) +
		"&start=" + start + "&end=" + end + "&step=10s")
	if code != 200 {
		t.Fatalf("range query status %d: %s", code, body)
	}
	var rr struct {
		Status string `json:"status"`
		Data   struct {
			ResultType string `json:"resultType"`
			Result     []struct {
				Metric map[string]string `json:"metric"`
				Values [][2]any          `json:"values"`
			} `json:"result"`
		} `json:"data"`
	}
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if rr.Data.ResultType != "matrix" || len(rr.Data.Result) != 2 {
		t.Fatalf("range response = %s", body)
	}
	for _, sr := range rr.Data.Result {
		if len(sr.Values) != 7 {
			t.Errorf("series %v has %d steps, want 7", sr.Metric, len(sr.Values))
		}
	}

	// Parse errors are 400 with status=error.
	code, body = get("/fleet/query?query=" + url.QueryEscape(`sum by (`))
	if code != 400 || !strings.Contains(string(body), `"error"`) {
		t.Fatalf("parse error response = %d %s", code, body)
	}
	// Missing query parameter.
	if code, _ := get("/fleet/query"); code != 400 {
		t.Fatalf("missing query param status = %d", code)
	}
	// Exemplar-bearing quantile carries trace_id.
	code, body = get("/fleet/query?query=" + url.QueryEscape(`histogram_quantile(0.8, http_request_seconds_bucket)`))
	if code != 200 || !strings.Contains(string(body), `"trace_id":"trace-p99"`) {
		t.Fatalf("exemplar response = %d %s", code, body)
	}
}
