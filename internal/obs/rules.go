package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file implements obsagg's rules engine: recording rules materialise
// query expressions back into the TSDB as new series each scrape round, and
// alert rules log + count every labelled result their expression yields,
// under the fleet-wide re-arm policy. The three hand-coded alert families
// that predate the engine — per-job error rate, SLO burn, and error-log
// burst — are expressed as built-in rules on the same machinery, keeping
// their messages, counter names and re-arm semantics byte-compatible.
//
// Evaluation order within a round: recording rules first (in declaration
// order, each one's output visible to the next), then alert rules — so an
// alert can watch a just-recorded series.

// RecordingRule evaluates Expr each scrape round and appends the resulting
// vector to the TSDB under Name (as gauge series), queryable like any
// scraped family.
type RecordingRule struct {
	Name string
	Expr string
}

// AlertRule evaluates Expr each scrape round; every sample the expression
// yields (comparisons filter, so "only while breaching") fires one alert:
// a Warn log with Message plus the result labels, and an increment of the
// Metric counter labelled by MetricLabels.
type AlertRule struct {
	Name string
	Expr string
	// Message is the slog message logged when firing (default "alert rule firing").
	Message string
	// Metric is the counter family incremented per firing ("" = obsagg_rule_alerts_total).
	Metric string
	// MetricLabels are result-label keys copied onto the counter (nil: a
	// single "rule" label carrying the rule name).
	MetricLabels []string
	// KeyLabels are the result-label keys forming the re-arm identity
	// (nil: the full result label set).
	KeyLabels []string
	// FireEvery bypasses re-arm tracking: the rule logs every round it
	// breaches (the legacy error-rate behaviour).
	FireEvery bool
	// Annotate returns extra slog attrs for a firing (may be nil).
	Annotate func(pairs []string, value float64) []any
}

// validMetricName reports whether s is a legal Prometheus metric name
// (colons allowed, for the recording-rule convention).
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func splitRuleSpec(spec string) (name, expr string, err error) {
	eq := strings.Index(spec, "=")
	if eq <= 0 || eq == len(spec)-1 {
		return "", "", fmt.Errorf("obs: rule spec %q must be name=expr", spec)
	}
	name = strings.TrimSpace(spec[:eq])
	expr = strings.TrimSpace(spec[eq+1:])
	if !validMetricName(name) {
		return "", "", fmt.Errorf("obs: rule name %q is not a valid metric name", name)
	}
	if _, err := ParseQuery(expr); err != nil {
		return "", "", fmt.Errorf("obs: rule %s: %w", name, err)
	}
	return name, expr, nil
}

// ParseRecordingRule parses a -record flag value ("name=expr").
func ParseRecordingRule(spec string) (RecordingRule, error) {
	name, expr, err := splitRuleSpec(spec)
	if err != nil {
		return RecordingRule{}, err
	}
	return RecordingRule{Name: name, Expr: expr}, nil
}

// ParseAlertRule parses an -alert-rule flag value ("name=expr").
func ParseAlertRule(spec string) (AlertRule, error) {
	name, expr, err := splitRuleSpec(spec)
	if err != nil {
		return AlertRule{}, err
	}
	return AlertRule{Name: name, Expr: expr}, nil
}

// tsdb returns the aggregator's TSDB, lazily creating a default-configured
// one. Never call while holding a.mu.
func (a *Aggregator) tsdb() *TSDB {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.TSDB == nil {
		a.TSDB = &TSDB{}
	}
	return a.TSDB
}

var (
	parsedRulesMu sync.Mutex
	parsedRules   = map[string]exprNode{}
)

func parseCached(expr string) (exprNode, error) {
	parsedRulesMu.Lock()
	defer parsedRulesMu.Unlock()
	if n, ok := parsedRules[expr]; ok {
		return n, nil
	}
	n, err := ParseQuery(expr)
	if err != nil {
		return nil, err
	}
	parsedRules[expr] = n
	return n, nil
}

// builtinAlertRules assembles the legacy alert families as rules, driven by
// the aggregator's existing thresholds.
func (a *Aggregator) builtinAlertRules() []AlertRule {
	var rules []AlertRule
	if a.ErrorRateThreshold > 0 {
		t := strconv.FormatFloat(a.ErrorRateThreshold, 'g', -1, 64)
		rules = append(rules, AlertRule{
			Name: "fleet-error-rate",
			Expr: `sum by (job) (http_requests_total{code="5xx"}) / sum by (job) (http_requests_total) > ` + t,
			// Log every breaching round, like the legacy alertErrorRates.
			Message:   "error rate above threshold",
			FireEvery: true,
			Metric:    "obsagg_error_rate_alerts_total",
			Annotate: func(pairs []string, v float64) []any {
				return []any{"threshold", a.ErrorRateThreshold}
			},
		})
	}
	rules = append(rules, AlertRule{
		Name:         "fleet-slo-burn",
		Expr:         `max by (instance, job, severity, slo) (slo_alert_firing) >= 1`,
		Message:      "fleet slo burn-rate alert",
		Metric:       "obsagg_slo_alerts_total",
		MetricLabels: []string{"job", "severity"},
		KeyLabels:    []string{"job", "slo", "severity"},
		Annotate:     a.annotateSLOBurn,
	})
	if a.ErrorBurstThreshold > 0 {
		// irate (the last two appended points) reproduces the legacy
		// "delta since last check / elapsed" burst detector, including its
		// restart re-baselining: a counter reset contributes only the
		// post-restart value, which stays under any sane threshold.
		window := a.tsdb().retention().String()
		t := strconv.FormatFloat(a.ErrorBurstThreshold, 'g', -1, 64)
		rules = append(rules, AlertRule{
			Name:         "fleet-error-burst",
			Expr:         `sum by (job) (irate(log_records_total{level="error"}[` + window + `])) > ` + t,
			Message:      "fleet error-log burst",
			Metric:       "obsagg_error_burst_alerts_total",
			MetricLabels: []string{"job"},
			KeyLabels:    []string{"job"},
			Annotate: func(pairs []string, v float64) []any {
				job, _ := pairValue(pairs, "job")
				return []any{"threshold_per_s", a.ErrorBurstThreshold,
					"hint", "/fleet/logs?level=error&job=" + job}
			},
		})
	}
	return rules
}

// annotateSLOBurn decorates a firing SLO rule with the burn-rate and budget
// detail the /fleet/slo digest carries for that (job, slo) row.
func (a *Aggregator) annotateSLOBurn(pairs []string, _ float64) []any {
	job, _ := pairValue(pairs, "job")
	slo, _ := pairValue(pairs, "slo")
	for _, row := range a.FleetSLOs() {
		if row.Job == job && row.SLO == slo {
			return []any{"burn_rates", burnSummary(row.BurnRates),
				"budget_remaining", row.BudgetRemaining}
		}
	}
	return nil
}

// evalRules runs the round's recording rules then alert rules against the
// TSDB. Called at the end of every scrape round.
func (a *Aggregator) evalRules() {
	db := a.tsdb()
	now := a.now()
	for _, r := range a.RecordingRules {
		node, err := parseCached(r.Expr)
		if err != nil {
			a.logger().Warn("recording rule parse failed", "rule", r.Name, "err", err)
			continue
		}
		v, err := evalInstant(db, node, now)
		if err != nil {
			a.logger().Warn("recording rule eval failed", "rule", r.Name, "err", err)
			continue
		}
		switch tv := v.(type) {
		case float64:
			db.Append(now, []Sample{{Name: r.Name, Kind: KindGauge, Value: tv}})
		case []vecSample:
			samples := make([]Sample, 0, len(tv))
			for _, s := range tv {
				samples = append(samples, Sample{Name: r.Name, Labels: s.labels, Kind: KindGauge, Value: s.v})
			}
			db.Append(now, samples)
		default:
			a.logger().Warn("recording rule yielded a range vector", "rule", r.Name)
		}
	}
	rules := a.builtinAlertRules()
	rules = append(rules, a.AlertRules...)
	for _, r := range rules {
		a.evalAlertRule(db, r, now)
	}
}

func (a *Aggregator) evalAlertRule(db *TSDB, r AlertRule, now time.Time) {
	node, err := parseCached(r.Expr)
	if err != nil {
		a.logger().Warn("alert rule parse failed", "rule", r.Name, "err", err)
		return
	}
	v, err := evalInstant(db, node, now)
	if err != nil {
		a.logger().Warn("alert rule eval failed", "rule", r.Name, "err", err)
		return
	}
	var vec []vecSample
	switch tv := v.(type) {
	case float64:
		if tv == 0 {
			return // scalar comparisons yield 0 (quiet) or 1 (firing)
		}
		vec = []vecSample{{v: tv}}
	case []vecSample:
		vec = tv
	default:
		a.logger().Warn("alert rule yielded a range vector", "rule", r.Name)
		return
	}
	for _, s := range vec {
		key := r.Name
		if r.KeyLabels != nil {
			for _, k := range r.KeyLabels {
				kv, _ := pairValue(s.pairs, k)
				key += "/" + kv
			}
		} else {
			key += "/" + s.labels
		}
		fire := r.FireEvery
		if !fire {
			a.mu.Lock()
			if a.ruleAlerts == nil {
				a.ruleAlerts = make(map[string]time.Time)
			}
			last, seen := a.ruleAlerts[key]
			fire = !seen || (a.AlertRearm > 0 && now.Sub(last) >= a.AlertRearm)
			if fire {
				a.ruleAlerts[key] = now
			}
			a.mu.Unlock()
		}
		if !fire {
			continue
		}
		msg := r.Message
		if msg == "" {
			msg = "alert rule firing"
		}
		attrs := []any{"rule", r.Name}
		for i := 0; i+1 < len(s.pairs); i += 2 {
			attrs = append(attrs, s.pairs[i], s.pairs[i+1])
		}
		attrs = append(attrs, "value", s.v)
		if r.Annotate != nil {
			attrs = append(attrs, r.Annotate(s.pairs, s.v)...)
		}
		a.logger().Warn(msg, attrs...)
		metric := r.Metric
		if metric == "" {
			metric = "obsagg_rule_alerts_total"
		}
		var counterLabels []string
		if r.MetricLabels != nil {
			for _, k := range r.MetricLabels {
				kv, _ := pairValue(s.pairs, k)
				counterLabels = append(counterLabels, k, kv)
			}
		} else {
			counterLabels = []string{"rule", r.Name}
		}
		a.reg().Counter(metric, counterLabels...).Inc()
	}
}
