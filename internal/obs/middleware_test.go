package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// middlewareMux is a representative daemon surface: one parameterised route
// that succeeds, one that panics after writing nothing, one that records the
// context request ID so tests can assert propagation.
func middlewareMux(t *testing.T, gotID *RequestID) http.Handler {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /crl/{ca}", func(w http.ResponseWriter, r *http.Request) {
		if id, ok := RequestIDFromRequest(r); ok && gotID != nil {
			*gotID = id
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	mux.HandleFunc("GET /fail", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	})
	return mux
}

func findSample(t *testing.T, samples []Sample, name, labels string) Sample {
	t.Helper()
	for _, s := range samples {
		if s.Name == name && s.Labels == labels {
			return s
		}
	}
	t.Fatalf("no sample %s%s in %d samples", name, labels, len(samples))
	return Sample{}
}

func TestMiddlewareREDMetrics(t *testing.T) {
	reg := NewRegistry()
	ts := httptest.NewServer(Middleware(reg, "crld", middlewareMux(t, nil)))
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/crl/LetsEncrypt")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/nosuchroute")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	snap := reg.Snapshot()
	ok := findSample(t, snap, "http_requests_total",
		`{code="2xx",route="/crl/{ca}",service="crld"}`)
	if ok.Value != 3 {
		t.Errorf("2xx count = %v, want 3", ok.Value)
	}
	// The mux 404 is labelled with the unmatched fallback, not a raw path.
	nf := findSample(t, snap, "http_requests_total",
		`{code="4xx",route="unmatched",service="crld"}`)
	if nf.Value != 1 {
		t.Errorf("4xx count = %v, want 1", nf.Value)
	}
	lat := findSample(t, snap, "http_request_seconds",
		`{route="/crl/{ca}",service="crld"}`)
	if lat.Count != 3 {
		t.Errorf("latency observations = %d, want 3", lat.Count)
	}
	inFlight := findSample(t, snap, "http_in_flight_requests", `{service="crld"}`)
	if inFlight.Value != 0 {
		t.Errorf("in-flight after completion = %v, want 0", inFlight.Value)
	}
}

func TestMiddlewarePanicRecovery(t *testing.T) {
	reg := NewRegistry()
	ts := httptest.NewServer(Middleware(reg, "crld", middlewareMux(t, nil)))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatalf("panicking handler killed the connection: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
	snap := reg.Snapshot()
	if p := findSample(t, snap, "http_panics_total", `{service="crld"}`); p.Value != 1 {
		t.Errorf("panics = %v, want 1", p.Value)
	}
	if c := findSample(t, snap, "http_requests_total",
		`{code="5xx",route="/boom",service="crld"}`); c.Value != 1 {
		t.Errorf("5xx count = %v, want 1", c.Value)
	}
}

func TestMiddlewareHonoursIncomingTraceparent(t *testing.T) {
	var gotID RequestID
	ts := httptest.NewServer(Middleware(NewRegistry(), "crld", middlewareMux(t, &gotID)))
	defer ts.Close()

	want := NewRequestID()
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/crl/X", nil)
	req.Header.Set(TraceHeader, want.String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if gotID.TraceID != want.TraceID {
		t.Errorf("context trace = %s, want %s", gotID.Trace(), want.Trace())
	}
	echo := resp.Header.Get(TraceHeader)
	if !strings.Contains(echo, want.Trace()) {
		t.Errorf("response header %q does not carry trace %s", echo, want.Trace())
	}
}

func TestMiddlewareMintsIDWhenHeaderAbsentOrBad(t *testing.T) {
	for _, header := range []string{"", "garbage", "00-zzzz-1-01"} {
		var gotID RequestID
		ts := httptest.NewServer(Middleware(NewRegistry(), "crld", middlewareMux(t, &gotID)))
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/crl/X", nil)
		if header != "" {
			req.Header.Set(TraceHeader, header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if gotID.IsZero() {
			t.Errorf("header %q: no request ID minted", header)
		}
		if resp.Header.Get(TraceHeader) == "" {
			t.Errorf("header %q: minted ID not echoed", header)
		}
		ts.Close()
	}
}

func TestTransportPropagatesContextID(t *testing.T) {
	reg := NewRegistry()
	var serverSeen string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serverSeen = r.Header.Get(TraceHeader)
	}))
	defer ts.Close()

	parent := NewRequestID()
	hc := &http.Client{Transport: &Transport{Registry: reg, Service: "tester"}}
	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	req = req.WithContext(ContextWithRequestID(req.Context(), parent))
	resp, err := hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	sent, ok := ParseTraceparent(serverSeen)
	if !ok {
		t.Fatalf("server saw unparseable traceparent %q", serverSeen)
	}
	if sent.TraceID != parent.TraceID {
		t.Errorf("propagated trace = %s, want %s", sent.Trace(), parent.Trace())
	}
	if sent.SpanID == parent.SpanID {
		t.Error("outbound hop reused the parent span ID")
	}
	peer := req.URL.Host
	c := findSample(t, reg.Snapshot(), "http_client_requests_total",
		`{code="2xx",peer="`+peer+`",service="tester"}`)
	if c.Value != 1 {
		t.Errorf("client counter = %v, want 1", c.Value)
	}
}

func TestInstrumentClientIdempotent(t *testing.T) {
	hc := NewHTTPClient(nil, "svc")
	if again := InstrumentClient(hc, "svc"); again != hc {
		t.Error("InstrumentClient re-wrapped an instrumented client")
	}
	plain := &http.Client{}
	wrapped := InstrumentClient(plain, "svc")
	if wrapped == plain {
		t.Error("InstrumentClient did not wrap a plain client")
	}
	if _, ok := wrapped.Transport.(*Transport); !ok {
		t.Error("wrapped transport is not a *Transport")
	}
	if plain.Transport != nil {
		t.Error("InstrumentClient mutated the caller's client")
	}
}

func TestStatusClass(t *testing.T) {
	cases := map[int]string{200: "2xx", 204: "2xx", 301: "3xx", 404: "4xx", 500: "5xx", 99: "other", 600: "other"}
	for code, want := range cases {
		if got := statusClass(code); got != want {
			t.Errorf("statusClass(%d) = %q, want %q", code, got, want)
		}
	}
}
