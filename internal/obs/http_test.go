package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

// promLine matches one Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[-+]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)

func populated() *Registry {
	r := NewRegistry()
	r.Counter("requests_total", "endpoint", "get-entries").Add(5)
	r.Gauge("queue_depth").Set(2.5)
	h := r.Histogram("latency_seconds", []float64{0.001, 0.1, 10})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(100)
	return r
}

func TestMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(populated()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)

	for _, want := range []string{
		"# TYPE requests_total counter",
		`requests_total{endpoint="get-entries"} 5`,
		"# TYPE queue_depth gauge",
		"queue_depth 2.5",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.001"} 1`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid Prometheus line %q", line)
		}
	}
}

func TestDebugVarsEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(populated()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)

	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("vars output is not valid JSON: %v\n%s", err, body)
	}
	// Standard expvars published by importing expvar.
	if _, ok := vars["cmdline"]; !ok {
		t.Error("vars missing cmdline")
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("vars missing memstats")
	}
	if got, ok := vars[`requests_total{endpoint="get-entries"}`]; !ok || got.(float64) != 5 {
		t.Errorf("vars counter = %v (present=%v)", got, ok)
	}
	hist, ok := vars["latency_seconds"].(map[string]any)
	if !ok || hist["count"].(float64) != 3 {
		t.Errorf("vars histogram = %v", vars["latency_seconds"])
	}
}

func TestPprofMounted(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d", resp.StatusCode)
	}
}

func TestStartDebug(t *testing.T) {
	r := populated()
	addr, shutdown, err := StartDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(context.Background())
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "requests_total") {
		t.Errorf("debug server metrics missing counter:\n%s", body)
	}
	if err := shutdown(context.Background()); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}
