package obs

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func TestMergeLogsOrderingAcrossSkewedInstances(t *testing.T) {
	a := &Aggregator{Registry: NewRegistry(), Logger: quietLogger()}
	t1 := Target{Job: "ctlogd", URL: "http://a:1"}
	t2 := Target{Job: "staleapid", URL: "http://b:2"}
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

	// ctlogd's scrape arrives first but its records interleave in time with
	// staleapid's: the merged view must read chronologically regardless of
	// scrape order.
	a.mergeLogs(t1, []LogRecord{
		{Seq: 1, Time: base.Add(1 * time.Second), Level: "INFO", Msg: "ct-1"},
		{Seq: 2, Time: base.Add(4 * time.Second), Level: "INFO", Msg: "ct-2"},
	})
	a.mergeLogs(t2, []LogRecord{
		{Seq: 1, Time: base, Level: "INFO", Msg: "api-1"},
		{Seq: 2, Time: base.Add(2 * time.Second), Level: "INFO", Msg: "api-2"},
		{Seq: 3, Time: base.Add(3 * time.Second), Level: "INFO", Msg: "api-3"},
	})

	var got []string
	for _, r := range a.FleetLogs(LogFilter{}) {
		got = append(got, r.Msg)
	}
	want := []string{"api-1", "ct-1", "api-2", "api-3", "ct-2"}
	if len(got) != len(want) {
		t.Fatalf("merged %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged %v, want %v", got, want)
		}
	}
	// Records carry the aggregator-assigned job/instance labels.
	recs := a.FleetLogs(LogFilter{Job: "ctlogd"})
	if len(recs) != 2 || recs[0].Instance != t1.Instance() {
		t.Errorf("job filter: %+v", recs)
	}
}

func TestMergeLogsDedupAndRestartReset(t *testing.T) {
	a := &Aggregator{Registry: NewRegistry(), Logger: quietLogger()}
	tgt := Target{Job: "crld", URL: "http://c:3"}
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

	batch := []LogRecord{
		{Seq: 5, Time: base, Level: "INFO", Msg: "one"},
		{Seq: 6, Time: base.Add(time.Second), Level: "INFO", Msg: "two"},
	}
	a.mergeLogs(tgt, batch)
	// Scrape overlap re-delivers the same records plus one new one: only the
	// new record lands.
	a.mergeLogs(tgt, append(batch, LogRecord{Seq: 7, Time: base.Add(2 * time.Second), Level: "INFO", Msg: "three"}))
	if got := a.FleetLogCount(); got != 3 {
		t.Fatalf("after overlap re-scrape: %d records, want 3", got)
	}

	// The daemon restarts: sequence numbers start over. The batch's newest
	// seq (2) below the high-water mark (7) resets the mark so the fresh
	// process's records are kept.
	a.mergeLogs(tgt, []LogRecord{
		{Seq: 1, Time: base.Add(3 * time.Second), Level: "INFO", Msg: "reborn"},
		{Seq: 2, Time: base.Add(4 * time.Second), Level: "INFO", Msg: "again"},
	})
	if got := a.FleetLogCount(); got != 5 {
		t.Fatalf("after restart: %d records, want 5", got)
	}
	recs := a.FleetLogs(LogFilter{})
	if recs[len(recs)-1].Msg != "again" {
		t.Errorf("restart records missing: %+v", recs)
	}
}

func TestMergeLogsBufferTrim(t *testing.T) {
	a := &Aggregator{Registry: NewRegistry(), Logger: quietLogger(), FleetLogBuffer: 3}
	tgt := Target{Job: "ctlogd", URL: "http://a:1"}
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	var recs []LogRecord
	for i := 0; i < 6; i++ {
		recs = append(recs, LogRecord{Seq: uint64(i + 1), Time: base.Add(time.Duration(i) * time.Second),
			Level: "INFO", Msg: "m"})
	}
	a.mergeLogs(tgt, recs)
	if got := a.FleetLogCount(); got != 3 {
		t.Fatalf("trimmed to %d, want 3", got)
	}
	kept := a.FleetLogs(LogFilter{})
	if kept[0].Seq != 4 {
		t.Errorf("oldest kept seq = %d, want 4 (oldest evicted first)", kept[0].Seq)
	}
}

func TestScrapeLogsEndToEnd(t *testing.T) {
	ring := testRing(16)
	base := time.Now().UTC()
	ring.Append(LogRecord{Time: base, Level: "INFO", Msg: "first", TraceID: "tr1"})
	ring.Append(LogRecord{Time: base.Add(time.Second), Level: "ERROR", Msg: "second", TraceID: "tr1"})
	srv := httptest.NewServer(ring.Handler())
	defer srv.Close()

	a := &Aggregator{Registry: NewRegistry(), Logger: quietLogger()}
	tgt := Target{Job: "ctlogd", URL: srv.URL}
	recs, err := a.scrapeLogs(context.Background(), srv.Client(), tgt)
	if err != nil {
		t.Fatalf("scrapeLogs: %v", err)
	}
	a.mergeLogs(tgt, recs)
	if got := a.FleetLogCount(); got != 2 {
		t.Fatalf("merged %d records, want 2", got)
	}

	// Second round: the ?since= cursor plus seq dedup deliver only new data.
	ring.Append(LogRecord{Time: base.Add(2 * time.Second), Level: "INFO", Msg: "third"})
	recs, err = a.scrapeLogs(context.Background(), srv.Client(), tgt)
	if err != nil {
		t.Fatalf("scrapeLogs round 2: %v", err)
	}
	a.mergeLogs(tgt, recs)
	if got := a.FleetLogCount(); got != 3 {
		t.Fatalf("after round 2: %d records, want 3", got)
	}

	// Trace correlation flows through the fleet store.
	if logs := a.FleetTraceLogs("tr1"); len(logs) != 2 {
		t.Errorf("FleetTraceLogs = %d records, want 2", len(logs))
	}

	// A target without a ring (404) is skipped without error.
	none := httptest.NewServer(http.NotFoundHandler())
	defer none.Close()
	recs, err = a.scrapeLogs(context.Background(), none.Client(), Target{Job: "old", URL: none.URL})
	if err != nil || recs != nil {
		t.Errorf("404 target: recs=%v err=%v, want nil/nil", recs, err)
	}
}

func TestFleetLogsHandler(t *testing.T) {
	a := &Aggregator{Registry: NewRegistry(), Logger: quietLogger()}
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	a.mergeLogs(Target{Job: "ctlogd", URL: "http://a:1"}, []LogRecord{
		{Seq: 1, Time: base, Level: "ERROR", Msg: "boom", TraceID: "tr9"},
	})
	a.mergeLogs(Target{Job: "staleapid", URL: "http://b:2"}, []LogRecord{
		{Seq: 1, Time: base.Add(time.Second), Level: "INFO", Msg: "fine"},
	})
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()

	get := func(q string) []LogRecord {
		t.Helper()
		resp, err := http.Get(srv.URL + "/fleet/logs" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", q, resp.StatusCode)
		}
		var recs []LogRecord
		if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
			t.Fatal(err)
		}
		return recs
	}
	if recs := get(""); len(recs) != 2 {
		t.Errorf("unfiltered: %d, want 2", len(recs))
	}
	if recs := get("?job=ctlogd"); len(recs) != 1 || recs[0].Msg != "boom" {
		t.Errorf("?job=: %+v", recs)
	}
	if recs := get("?level=error"); len(recs) != 1 || recs[0].Job != "ctlogd" {
		t.Errorf("?level=error: %+v", recs)
	}
	if recs := get("?trace=tr9"); len(recs) != 1 || recs[0].Msg != "boom" {
		t.Errorf("?trace=: %+v", recs)
	}
}

func TestAlertErrorBurst(t *testing.T) {
	reg := NewRegistry()
	clock := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	a := &Aggregator{
		Registry:            reg,
		Logger:              quietLogger(),
		ErrorBurstThreshold: 1, // >1 error record/second pages
		AlertRearm:          time.Minute,
		Now:                 func() time.Time { return clock },
	}
	setErrTotal := func(job string, v float64) {
		a.mu.Lock()
		a.ensureMaps()
		a.byJob[job] = []Sample{{
			Name:   "log_records_total",
			Labels: formatLabels([]string{"job", job, "level", "error", "service", job}),
			Kind:   KindCounter,
			Value:  v,
		}}
		a.mu.Unlock()
	}
	fired := func() float64 {
		return float64(reg.Counter("obsagg_error_burst_alerts_total", "job", "ctlogd").Value())
	}

	// Round 1 baselines without firing.
	setErrTotal("ctlogd", 10)
	evalRound(a)
	if fired() != 0 {
		t.Fatal("first round fired")
	}

	// Round 2: 50 error records in 10s = 5/s > 1/s — fires.
	clock = clock.Add(10 * time.Second)
	setErrTotal("ctlogd", 60)
	evalRound(a)
	if fired() != 1 {
		t.Fatalf("burst did not fire: %v", fired())
	}

	// Round 3: still bursting but inside the re-arm quiet period — silent.
	clock = clock.Add(10 * time.Second)
	setErrTotal("ctlogd", 110)
	evalRound(a)
	if fired() != 1 {
		t.Fatalf("alert re-fired inside quiet period: %v", fired())
	}

	// Round 4: past the quiet period and still bursting — re-fires.
	clock = clock.Add(2 * time.Minute)
	setErrTotal("ctlogd", 1200)
	evalRound(a)
	if fired() != 2 {
		t.Fatalf("alert did not re-arm: %v", fired())
	}

	// Counter reset (restart) re-baselines instead of firing on a negative delta.
	clock = clock.Add(10 * time.Minute)
	setErrTotal("ctlogd", 3)
	evalRound(a)
	if fired() != 2 {
		t.Fatalf("restart fired an alert: %v", fired())
	}

	// A quiet job below threshold never fires.
	clock = clock.Add(10 * time.Second)
	setErrTotal("ctlogd", 5) // 2 records in 10s = 0.2/s
	evalRound(a)
	if fired() != 2 {
		t.Fatalf("sub-threshold rate fired: %v", fired())
	}
}
