package obs

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file implements metrics federation: a parser for the Prometheus text
// exposition format WriteProm emits, and an Aggregator that scrapes every
// daemon's /metrics on an interval, merges the series under added
// job/instance labels, and serves the combined fleet view.

// ParseProm parses Prometheus text exposition format into samples, the
// inverse of WriteSamples: counters and gauges become one sample each
// (kind from the TYPE comment; untyped series parse as gauges), and
// histogram _bucket/_sum/_count series are reassembled into one histogram
// sample per label set. Label values are unescaped; returned samples are
// sorted by family then labels with canonically re-rendered label sets, so
// ParseProm(WriteProm(reg)) round-trips Snapshot exactly.
func ParseProm(r io.Reader) ([]Sample, error) {
	kinds := make(map[string]Kind)
	type hkey struct{ family, labels string }
	order := []string{}
	flat := make(map[string]*Sample) // counters and gauges by family+labels
	hists := make(map[hkey]*Sample)  // histograms being reassembled
	horder := []hkey{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter":
					kinds[fields[2]] = KindCounter
				case "gauge":
					kinds[fields[2]] = KindGauge
				case "histogram":
					kinds[fields[2]] = KindHistogram
				}
			}
			continue
		}
		name, labels, value, ex, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: parse line %d: %w", lineNo, err)
		}
		if family, suffix := histogramFamily(name, kinds); family != "" {
			pairs, err := labelPairs(labels)
			if err != nil {
				return nil, fmt.Errorf("obs: parse line %d: %w", lineNo, err)
			}
			le := ""
			trimmed := pairs[:0]
			for i := 0; i < len(pairs); i += 2 {
				if pairs[i] == "le" {
					le = pairs[i+1]
					continue
				}
				trimmed = append(trimmed, pairs[i], pairs[i+1])
			}
			key := hkey{family, formatLabels(trimmed)}
			h := hists[key]
			if h == nil {
				h = &Sample{Name: family, Labels: key.labels, Kind: KindHistogram}
				hists[key] = h
				horder = append(horder, key)
			}
			switch suffix {
			case "_bucket":
				if le == "" {
					return nil, fmt.Errorf("obs: parse line %d: bucket without le label", lineNo)
				}
				bound := inf
				if le != "+Inf" {
					bound, err = strconv.ParseFloat(le, 64)
					if err != nil {
						return nil, fmt.Errorf("obs: parse line %d: bad le %q", lineNo, le)
					}
				}
				h.Buckets = append(h.Buckets, BucketCount{UpperBound: bound, Count: uint64(value), Exemplar: ex})
			case "_sum":
				h.Sum = value
			case "_count":
				h.Count = uint64(value)
			}
			continue
		}
		kind, ok := kinds[name]
		if !ok || kind == KindHistogram {
			kind = KindGauge // untyped series read back as gauges
		}
		pairs, err := labelPairs(labels)
		if err != nil {
			return nil, fmt.Errorf("obs: parse line %d: %w", lineNo, err)
		}
		canonical := formatLabels(pairs)
		key := name + canonical
		if _, dup := flat[key]; !dup {
			order = append(order, key)
		}
		flat[key] = &Sample{Name: name, Labels: canonical, Kind: kind, Value: value}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: scan exposition: %w", err)
	}

	out := make([]Sample, 0, len(order)+len(horder))
	for _, k := range order {
		out = append(out, *flat[k])
	}
	for _, k := range horder {
		h := hists[k]
		sort.Slice(h.Buckets, func(i, j int) bool { return h.Buckets[i].UpperBound < h.Buckets[j].UpperBound })
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out, nil
}

// histogramFamily reports whether name is a series of a family declared as a
// histogram, returning the base family and the matched suffix.
func histogramFamily(name string, kinds map[string]Kind) (family, suffix string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, s)
		if ok && kinds[base] == KindHistogram {
			return base, s
		}
	}
	return "", ""
}

// parseSampleLine splits `name{labels} value [# {exlabels} exvalue]` (labels
// and exemplar optional) without breaking on escaped quotes or commas inside
// label values.
func parseSampleLine(line string) (name, labels string, value float64, ex *Exemplar, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		end := labelSetEnd(line[i:])
		if end < 0 {
			return "", "", 0, nil, fmt.Errorf("unterminated label set in %q", line)
		}
		labels = line[i : i+end+1]
		rest = line[i+end+1:]
	} else if sp := strings.IndexByte(line, ' '); sp >= 0 {
		name = line[:sp]
		rest = line[sp:]
	} else {
		return "", "", 0, nil, fmt.Errorf("no value in %q", line)
	}
	if name == "" {
		return "", "", 0, nil, fmt.Errorf("no metric name in %q", line)
	}
	v := strings.TrimSpace(rest)
	// OpenMetrics exemplar: everything after " # " ('#' cannot appear in a
	// value or timestamp; label values were consumed above).
	if i := strings.IndexByte(v, '#'); i >= 0 {
		ex, err = parseExemplar(strings.TrimSpace(v[i+1:]))
		if err != nil {
			return "", "", 0, nil, err
		}
		v = strings.TrimSpace(v[:i])
	}
	// Prometheus allows an optional trailing timestamp; ignore it.
	if sp := strings.IndexByte(v, ' '); sp >= 0 {
		v = v[:sp]
	}
	value, err = parsePromFloat(v)
	if err != nil {
		return "", "", 0, nil, fmt.Errorf("bad value %q in %q", v, line)
	}
	return name, labels, value, ex, nil
}

// parseExemplar decodes `{trace_id="..."} value` after a bucket's `#`.
func parseExemplar(s string) (*Exemplar, error) {
	if !strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("malformed exemplar %q", s)
	}
	end := labelSetEnd(s)
	if end < 0 {
		return nil, fmt.Errorf("unterminated exemplar label set in %q", s)
	}
	pairs, err := labelPairs(s[:end+1])
	if err != nil {
		return nil, err
	}
	ex := &Exemplar{}
	for i := 0; i < len(pairs); i += 2 {
		if pairs[i] == "trace_id" {
			ex.TraceID = pairs[i+1]
		}
	}
	v := strings.TrimSpace(s[end+1:])
	if sp := strings.IndexByte(v, ' '); sp >= 0 {
		v = v[:sp] // optional exemplar timestamp
	}
	if v == "" {
		return nil, fmt.Errorf("exemplar without value in %q", s)
	}
	ex.Value, err = parsePromFloat(v)
	if err != nil {
		return nil, fmt.Errorf("bad exemplar value %q in %q", v, s)
	}
	return ex, nil
}

func parsePromFloat(v string) (float64, error) {
	switch v {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(v, 64)
}

// labelSetEnd returns the index of the closing '}' of a label set starting at
// s[0] == '{', respecting quoted values with backslash escapes.
func labelSetEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++ // skip the escaped byte
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return i
		}
	}
	return -1
}

// labelPairs decodes a rendered label set ("" or `{k="v",...}`) back into
// unescaped key/value pairs.
func labelPairs(labels string) ([]string, error) {
	if labels == "" {
		return nil, nil
	}
	if len(labels) < 2 || labels[0] != '{' || labels[len(labels)-1] != '}' {
		return nil, fmt.Errorf("malformed label set %q", labels)
	}
	s := labels[1 : len(labels)-1]
	var pairs []string
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || len(s) < eq+2 || s[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label in %q", labels)
		}
		key := strings.TrimSpace(s[:eq])
		rest := s[eq+2:]
		var b strings.Builder
		i := 0
		closed := false
		for i < len(rest) {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(c)
					b.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("unterminated value in %q", labels)
		}
		pairs = append(pairs, key, b.String())
		s = rest[i:]
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		}
	}
	return pairs, nil
}

// WithLabels returns the sample with the given label pairs set (overriding
// existing keys), re-rendered canonically.
func WithLabels(s Sample, setPairs ...string) (Sample, error) {
	pairs, err := labelPairs(s.Labels)
	if err != nil {
		return s, err
	}
	for i := 0; i < len(setPairs); i += 2 {
		replaced := false
		for j := 0; j < len(pairs); j += 2 {
			if pairs[j] == setPairs[i] {
				pairs[j+1] = setPairs[i+1]
				replaced = true
				break
			}
		}
		if !replaced {
			pairs = append(pairs, setPairs[i], setPairs[i+1])
		}
	}
	s.Labels = formatLabels(pairs)
	return s, nil
}

// LabelValue extracts one label's (unescaped) value from a sample, or "".
func LabelValue(s Sample, key string) string {
	pairs, err := labelPairs(s.Labels)
	if err != nil {
		return ""
	}
	for i := 0; i < len(pairs); i += 2 {
		if pairs[i] == key {
			return pairs[i+1]
		}
	}
	return ""
}

// Target is one daemon an Aggregator scrapes: Job names the service class
// (ctlogd, crld, ...) and URL is the base of its debug listener; /metrics is
// appended.
type Target struct {
	Job string
	URL string
}

// Instance derives the instance label (host:port) from the target URL.
func (t Target) Instance() string {
	if u, err := url.Parse(t.URL); err == nil && u.Host != "" {
		return u.Host
	}
	return t.URL
}

// ParseTargets parses the -targets flag syntax: a comma-separated list of
// job=URL entries, e.g. "ctlogd=http://127.0.0.1:9090,crld=http://127.0.0.1:9091".
func ParseTargets(spec string) ([]Target, error) {
	var out []Target
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		job, rawURL, ok := strings.Cut(part, "=")
		if !ok || job == "" || rawURL == "" {
			return nil, fmt.Errorf("obs: bad target %q (want job=URL)", part)
		}
		if _, err := url.Parse(rawURL); err != nil {
			return nil, fmt.Errorf("obs: bad target URL %q: %w", rawURL, err)
		}
		out = append(out, Target{Job: job, URL: rawURL})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("obs: no targets in %q", spec)
	}
	return out, nil
}

// targetState is the last scrape outcome for one target.
type targetState struct {
	target    Target
	lastOK    time.Time
	lastTry   time.Time
	lastErr   error
	series    int
	successes uint64
	failures  uint64
}

// Aggregator federates many daemons' metrics: each scrape round fetches
// every target's /metrics, parses it, adds job/instance labels, and replaces
// that target's series in the merged view. Scrape failures keep the previous
// round's series (marking the target down in the fleet summary) and raise a
// slog alert, as does any job whose server error rate crosses
// ErrorRateThreshold.
type Aggregator struct {
	Targets []Target
	// Client performs the scrapes; nil uses an instrumented client on reg.
	Client *http.Client
	// Registry receives the aggregator's own scrape metrics (nil: Default()).
	Registry *Registry
	// Logger receives scrape-failure and error-rate alerts (nil: slog.Default()).
	Logger *slog.Logger
	// ErrorRateThreshold is the 5xx/total fraction per job above which an
	// alert fires (0 disables).
	ErrorRateThreshold float64
	// SelfJob, when non-empty, merges Registry's own snapshot into the
	// federated view under this job name without an HTTP round trip.
	SelfJob string
	// TraceSlow, when > 0, logs a one-shot "slow trace" alert for any
	// stitched fleet trace whose end-to-end duration reaches it.
	TraceSlow time.Duration
	// TraceBuffer bounds stitched traces retained in the fleet view
	// (<= 0 uses DefaultFleetTraceBuffer).
	TraceBuffer int
	// AlertRearm is the quiet period after which per-trace slow alerts,
	// per-job SLO burn alerts and error-burst alerts may fire again (0: fire
	// once and stay silenced).
	AlertRearm time.Duration
	// FleetLogBuffer bounds merged log records retained in the fleet view
	// (<= 0 uses DefaultFleetLogBuffer).
	FleetLogBuffer int
	// ErrorBurstThreshold is the per-job error-log rate (records/second,
	// from the federated log_records_total counters) above which a fleet
	// error-burst alert fires (0 disables).
	ErrorBurstThreshold float64
	// TSDB stores every federation round's samples as queryable history
	// (nil: a default-configured TSDB is created on first use).
	TSDB *TSDB
	// RecordingRules are evaluated each round, in order, and their results
	// appended to the TSDB under the rule name.
	RecordingRules []RecordingRule
	// AlertRules are user-defined alert rules evaluated each round after
	// the built-in families (error rate, SLO burn, error burst).
	AlertRules []AlertRule
	// Now overrides the clock for alert re-arm decisions (tests).
	Now func() time.Time

	mu         sync.RWMutex
	byJob      map[string][]Sample // target key -> relabelled samples
	states     map[string]*targetState
	rounds     uint64
	traces     map[string]*fleetTrace // trace ID -> stitched fleet trace
	traceOrder []string
	fleetLogs  []LogRecord // merged log records, time-ordered
	logStates  map[string]*logTargetState
	ruleAlerts map[string]time.Time // rule/key-labels -> last alert time
}

func (a *Aggregator) now() time.Time {
	if a.Now != nil {
		return a.Now()
	}
	return time.Now()
}

func (a *Aggregator) reg() *Registry {
	if a.Registry != nil {
		return a.Registry
	}
	return Default()
}

func (a *Aggregator) logger() *slog.Logger {
	if a.Logger != nil {
		return a.Logger
	}
	return slog.Default()
}

func (a *Aggregator) client() *http.Client {
	if a.Client != nil {
		return a.Client
	}
	return NewHTTPClient(a.reg(), "obsagg")
}

// ScrapeOnce runs one scrape round over every target.
func (a *Aggregator) ScrapeOnce(ctx context.Context) {
	hc := a.client()
	began := time.Now()
	for _, t := range a.Targets {
		samples, err := a.scrapeTarget(ctx, hc, t)
		a.record(t, samples, err)
		traces, terr := a.scrapeTraces(ctx, hc, t)
		if terr != nil {
			a.logger().Warn("trace scrape failed", "job", t.Job, "instance", t.Instance(), "err", terr)
		} else {
			a.mergeTraces(traces)
		}
		logs, lerr := a.scrapeLogs(ctx, hc, t)
		if lerr != nil {
			a.logger().Warn("log scrape failed", "job", t.Job, "instance", t.Instance(), "err", lerr)
		} else {
			a.mergeLogs(t, logs)
		}
	}
	if a.SelfJob != "" {
		self := a.reg().Snapshot()
		relabelled := make([]Sample, 0, len(self))
		for _, s := range self {
			rs, err := WithLabels(s, "job", a.SelfJob, "instance", "self")
			if err != nil {
				continue
			}
			relabelled = append(relabelled, rs)
		}
		a.mu.Lock()
		a.ensureMaps()
		a.byJob[a.SelfJob+"\x00self"] = relabelled
		a.mu.Unlock()
		a.tsdb().Append(a.now(), relabelled)
	}
	a.mu.Lock()
	a.rounds++
	a.mu.Unlock()
	a.reg().Histogram("obsagg_round_seconds", nil).Observe(time.Since(began).Seconds())
	a.evalRules()
	db := a.tsdb()
	db.Prune(a.now())
	a.reg().Gauge("obsagg_tsdb_series").Set(float64(db.SeriesCount()))
	a.reg().Gauge("obsagg_tsdb_points").Set(float64(db.PointCount()))
	a.reg().Gauge("obsagg_tsdb_dropped_series").Set(float64(db.DroppedSeries()))
}

func (a *Aggregator) scrapeTarget(ctx context.Context, hc *http.Client, t Target) ([]Sample, error) {
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, strings.TrimSuffix(t.URL, "/")+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("obs: scrape %s: status %d", t.URL, resp.StatusCode)
	}
	samples, err := ParseProm(resp.Body)
	if err != nil {
		return nil, err
	}
	out := make([]Sample, 0, len(samples))
	for _, s := range samples {
		rs, err := WithLabels(s, "job", t.Job, "instance", t.Instance())
		if err != nil {
			return nil, err
		}
		out = append(out, rs)
	}
	return out, nil
}

func (a *Aggregator) ensureMaps() {
	if a.byJob == nil {
		a.byJob = make(map[string][]Sample)
	}
	if a.states == nil {
		a.states = make(map[string]*targetState)
	}
}

func (a *Aggregator) record(t Target, samples []Sample, err error) {
	key := t.Job + "\x00" + t.Instance()
	outcome := "ok"
	db := a.tsdb()
	now := a.now()
	ghosted := false
	var downFor time.Duration
	a.mu.Lock()
	a.ensureMaps()
	st := a.states[key]
	if st == nil {
		st = &targetState{target: t}
		a.states[key] = st
	}
	st.lastTry = now
	st.lastErr = err
	if err == nil {
		st.lastOK = st.lastTry
		st.series = len(samples)
		st.successes++
		a.byJob[key] = samples
	} else {
		st.failures++
		outcome = "error"
		// A target that has been gone past the staleness window is a ghost:
		// drop its last-good series from the federated view and mark its
		// TSDB series stale, so instant answers stop freezing on its final
		// values while its history stays range-queryable until retention.
		if _, live := a.byJob[key]; live && !st.lastOK.IsZero() && now.Sub(st.lastOK) > db.staleAfter() {
			delete(a.byJob, key)
			st.series = 0
			ghosted = true
			downFor = now.Sub(st.lastOK)
		}
	}
	a.mu.Unlock()
	if err == nil {
		db.Append(now, samples)
	} else if ghosted {
		db.MarkStale("job", t.Job, "instance", t.Instance())
		a.logger().Warn("target vanished; marking series stale",
			"job", t.Job, "instance", t.Instance(), "down_for", downFor.String())
	}
	a.reg().Counter("obsagg_scrapes_total", "job", t.Job, "outcome", outcome).Inc()
	if err != nil {
		a.logger().Warn("scrape failed", "job", t.Job, "instance", t.Instance(), "err", err)
	}
}

// Run scrapes immediately and then on every interval tick until ctx is done.
func (a *Aggregator) Run(ctx context.Context, interval time.Duration) {
	a.ScrapeOnce(ctx)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			a.ScrapeOnce(ctx)
		}
	}
}

// Federated returns the merged fleet snapshot, sorted by family then labels.
func (a *Aggregator) Federated() []Sample {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var out []Sample
	for _, samples := range a.byJob {
		out = append(out, samples...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// DownTargets lists targets whose last scrape failed ("job@instance"),
// sorted — the fleet view still carries their previous round's series.
func (a *Aggregator) DownTargets() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var down []string
	for _, st := range a.states {
		if st.lastErr != nil {
			down = append(down, st.target.Job+"@"+st.target.Instance())
		}
	}
	sort.Strings(down)
	return down
}

// Ready is a readiness probe with three-way semantics: unready (hard error)
// until the first scrape round completes, Degraded while any target's last
// scrape failed (the fleet view serves that target's last-good series), nil
// when every target answered.
func (a *Aggregator) Ready(context.Context) error {
	a.mu.RLock()
	rounds := a.rounds
	a.mu.RUnlock()
	if rounds == 0 {
		return fmt.Errorf("no scrape round completed yet")
	}
	if down := a.DownTargets(); len(down) > 0 {
		return Degraded(fmt.Errorf("serving last-good series for down targets: %s",
			strings.Join(down, ", ")))
	}
	return nil
}

// StaleEvidenceHeader marks a response that includes last-good data for an
// upstream that is currently failing; the value names the stale sources.
const StaleEvidenceHeader = "X-Stale-Evidence"

// Handler serves the fleet surface:
//
//	/metrics            the federated exposition (every job's series + job/instance labels)
//	/fleet              a plain-text per-target summary (up/down, last scrape, series)
//	/fleet/traces       stitched cross-daemon trace summaries (same filters
//	                    as the per-daemon /v1/traces)
//	/fleet/traces/{id}  one stitched trace as a full span tree, with the
//	                    correlated log lines from every daemon it touched
//	/fleet/logs         merged, time-ordered, instance-labelled log records
//	                    (same filters as the per-daemon /v1/logs, plus
//	                    ?job= and ?instance=)
//	/fleet/slo          per-job SLO burn rates, budget remaining and firing
//	                    alerts digested from the federated slo_* series
//	/fleet/query        instant (?query=&time=) and range (?start=&end=&step=)
//	                    expression queries over the TSDB of every round's
//	                    samples — Prometheus-shaped JSON answers
//
// While any target is down, /metrics responses carry an X-Stale-Evidence
// header naming the targets whose series are served from the last good round.
func (a *Aggregator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /fleet/logs", a.handleFleetLogs)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if down := a.DownTargets(); len(down) > 0 {
			w.Header().Set(StaleEvidenceHeader, strings.Join(down, ", "))
		}
		WriteSamples(w, a.Federated())
	})
	mux.HandleFunc("GET /fleet", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		a.writeFleet(w)
	})
	mux.HandleFunc("GET /fleet/traces", a.handleFleetTraces)
	mux.HandleFunc("GET /fleet/traces/{id}", a.handleFleetTrace)
	mux.HandleFunc("GET /fleet/slo", a.handleFleetSLO)
	mux.HandleFunc("GET /fleet/query", a.handleFleetQuery)
	return mux
}

func (a *Aggregator) writeFleet(w io.Writer) {
	a.mu.RLock()
	states := make([]*targetState, 0, len(a.states))
	for _, st := range a.states {
		states = append(states, st)
	}
	rounds := a.rounds
	a.mu.RUnlock()
	sort.Slice(states, func(i, j int) bool {
		if states[i].target.Job != states[j].target.Job {
			return states[i].target.Job < states[j].target.Job
		}
		return states[i].target.Instance() < states[j].target.Instance()
	})
	fmt.Fprintf(w, "fleet: %d targets, %d scrape rounds\n\n", len(states), rounds)
	fmt.Fprintf(w, "%-12s %-22s %-5s %8s %10s %10s  last error\n",
		"JOB", "INSTANCE", "UP", "SERIES", "SCRAPES", "FAILURES")
	for _, st := range states {
		up := "up"
		lastErr := ""
		if st.lastErr != nil {
			up = "down"
			lastErr = st.lastErr.Error()
		}
		fmt.Fprintf(w, "%-12s %-22s %-5s %8d %10d %10d  %s\n",
			st.target.Job, st.target.Instance(), up, st.series,
			st.successes+st.failures, st.failures, lastErr)
	}
}
