package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
)

// restoreLogging saves the process-wide logging state mutated by setupLogger
// (default logger + LevelVar) and restores it when the test ends.
func restoreLogging(t *testing.T) {
	t.Helper()
	oldLogger := slog.Default()
	oldLevel := LogLevel()
	t.Cleanup(func() {
		slog.SetDefault(oldLogger)
		SetLogLevel(oldLevel)
	})
}

func TestSetupLoggerKnownValues(t *testing.T) {
	restoreLogging(t)
	var buf bytes.Buffer
	setupLogger(&buf, "json", "warn")
	if LogLevel() != slog.LevelWarn {
		t.Errorf("level = %v, want warn", LogLevel())
	}
	if strings.Contains(buf.String(), "falling back") {
		t.Errorf("valid flags warned: %q", buf.String())
	}
	slog.Warn("check format")
	if !strings.Contains(buf.String(), `"msg":"check format"`) {
		t.Errorf("json format not applied: %q", buf.String())
	}
}

func TestSetupLoggerUnknownLevelWarns(t *testing.T) {
	restoreLogging(t)
	var buf bytes.Buffer
	setupLogger(&buf, "text", "verbose")
	out := buf.String()
	if !strings.Contains(out, "unknown -log-level, falling back") {
		t.Fatalf("no warning for unknown level: %q", out)
	}
	if !strings.Contains(out, "value=verbose") || !strings.Contains(out, "fallback=info") {
		t.Errorf("warning does not name bad value and fallback: %q", out)
	}
	if LogLevel() != slog.LevelInfo {
		t.Errorf("level = %v, want info fallback", LogLevel())
	}
}

func TestSetupLoggerUnknownFormatWarns(t *testing.T) {
	restoreLogging(t)
	var buf bytes.Buffer
	setupLogger(&buf, "yaml", "info")
	out := buf.String()
	if !strings.Contains(out, "unknown -log-format, falling back") {
		t.Fatalf("no warning for unknown format: %q", out)
	}
	if !strings.Contains(out, "value=yaml") || !strings.Contains(out, "fallback=text") {
		t.Errorf("warning does not name bad value and fallback: %q", out)
	}
	// The fallback format is text: the warning itself proves it (text
	// rendering uses key=value pairs, not JSON).
	if strings.Contains(out, `{"`) {
		t.Errorf("fallback format is not text: %q", out)
	}
}

func TestSetupLoggerUnknownBothWarnTwice(t *testing.T) {
	restoreLogging(t)
	var buf bytes.Buffer
	setupLogger(&buf, "xml", "chatty")
	out := buf.String()
	if !strings.Contains(out, "unknown -log-level, falling back") ||
		!strings.Contains(out, "unknown -log-format, falling back") {
		t.Errorf("expected both warnings, got: %q", out)
	}
}
