package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
)

// Handler serves the debug surface for a registry with the process-wide
// DefaultHealth probe set:
//
//	/metrics      Prometheus text exposition format
//	/debug/vars   expvar-compatible JSON (standard vars + every metric)
//	/debug/pprof  the net/http/pprof profiles
//	/healthz      liveness (always 200 while the process serves)
//	/readyz       readiness: 200 once every registered probe passes
//
// plus any extensions added via RegisterDebug.
func Handler(r *Registry) http.Handler { return HandlerFor(r, DefaultHealth()) }

// Process-wide debug-surface extensions (e.g. resil's /v1/breakers). Other
// packages register here from init so obs never needs to import them.
var (
	debugExtMu sync.Mutex
	debugExt   = map[string]http.Handler{}
)

// RegisterDebug mounts handler at pattern (http.ServeMux syntax) on every
// debug mux built afterwards. Intended for package init: last registration
// for a pattern wins, so re-registering is safe.
func RegisterDebug(pattern string, handler http.Handler) {
	debugExtMu.Lock()
	debugExt[pattern] = handler
	debugExtMu.Unlock()
}

// HandlerFor serves the debug surface for an explicit registry and probe set
// (tests and the federation aggregator construct private ones).
func HandlerFor(r *Registry, health *Health) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, r)
	})
	mux.HandleFunc("GET /debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		writeVars(w, r)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /healthz", health.handleHealthz)
	mux.HandleFunc("GET /readyz", health.handleReadyz)
	debugExtMu.Lock()
	for pattern, h := range debugExt {
		mux.Handle(pattern, h)
	}
	debugExtMu.Unlock()
	return mux
}

// WriteProm writes the registry snapshot in Prometheus text format.
func WriteProm(w io.Writer, r *Registry) { WriteSamples(w, r.Snapshot()) }

// WriteSamples writes samples (sorted by family then labels, as Snapshot and
// ParseProm return them) in Prometheus text format. Consecutive samples of
// one family share a single TYPE comment.
func WriteSamples(w io.Writer, samples []Sample) {
	lastFamily := ""
	for _, s := range samples {
		if s.Name != lastFamily {
			fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind)
			lastFamily = s.Name
		}
		switch s.Kind {
		case KindCounter, KindGauge:
			fmt.Fprintf(w, "%s%s %s\n", s.Name, s.Labels, formatFloat(s.Value))
		case KindHistogram:
			for _, b := range s.Buckets {
				if b.Exemplar != nil {
					// OpenMetrics exemplar syntax: the bucket's last sampled
					// observation with the trace ID it can be explained by.
					fmt.Fprintf(w, "%s_bucket%s %d # {trace_id=\"%s\"} %s\n",
						s.Name, withLE(s.Labels, b.UpperBound), b.Count,
						escapeLabelValue(b.Exemplar.TraceID), formatFloat(b.Exemplar.Value))
					continue
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, withLE(s.Labels, b.UpperBound), b.Count)
			}
			fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, s.Labels, formatFloat(s.Sum))
			fmt.Fprintf(w, "%s_count%s %d\n", s.Name, s.Labels, s.Count)
		}
	}
}

// withLE splices the le label into an existing label set.
func withLE(labels string, bound float64) string {
	le := `le="` + formatLE(bound) + `"`
	if labels == "" {
		return "{" + le + "}"
	}
	return labels[:len(labels)-1] + "," + le + "}"
}

func formatLE(bound float64) string {
	if math.IsInf(bound, 1) {
		return "+Inf"
	}
	return formatFloat(bound)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeVars emits expvar-compatible JSON: the process's published expvars
// (cmdline, memstats, ...) followed by every registry metric keyed by its
// full name.
func writeVars(w io.Writer, r *Registry) {
	fmt.Fprintf(w, "{\n")
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
	})
	for _, s := range r.Snapshot() {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		key, _ := json.Marshal(s.FullName())
		switch s.Kind {
		case KindCounter, KindGauge:
			fmt.Fprintf(w, "%s: %s", key, formatFloat(s.Value))
		case KindHistogram:
			fmt.Fprintf(w, "%s: {\"count\": %d, \"sum\": %s}", key, s.Count, formatFloat(s.Sum))
		}
	}
	fmt.Fprintf(w, "\n}\n")
}

// StartDebug serves Handler(r) on addr in the background, returning the
// bound address and a graceful-shutdown func. Pass "127.0.0.1:0" for an
// ephemeral port.
func StartDebug(addr string, r *Registry) (string, func(context.Context) error, error) {
	return StartDebugServer(addr, Handler(r))
}

// StartDebugServer serves an arbitrary debug handler (typically Handler or
// HandlerFor wrapped in Middleware) on addr in the background.
func StartDebugServer(addr string, h http.Handler) (string, func(context.Context) error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: debug listen: %w", err)
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Shutdown, nil
}
