package obs_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"stalecert/internal/ctlog"
	"stalecert/internal/obs"
	"stalecert/internal/x509sim"
)

var promSampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[-+]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)

// TestMetricsAfterScrape is the acceptance check for the observability layer:
// run a CT log server, scrape it over HTTP, then fetch /metrics and
// /debug/vars from a loopback debug server and verify the scrape showed up as
// a non-zero ctlog_entries_served_total in valid Prometheus text format.
func TestMetricsAfterScrape(t *testing.T) {
	l := ctlog.New("obs-it", ctlog.Shard{})
	for i := 0; i < 25; i++ {
		cert, err := x509sim.New(
			x509sim.SerialNumber(i+1), 1, x509sim.KeyID(i+1),
			[]string{fmt.Sprintf("it%03d.example.com", i)}, 10, 100,
		)
		if err != nil {
			t.Fatalf("cert: %v", err)
		}
		if _, err := l.AddChain(cert, 20); err != nil {
			t.Fatalf("add-chain: %v", err)
		}
	}
	logSrv := httptest.NewServer(ctlog.NewServer(l).Handler())
	defer logSrv.Close()

	bound, shutdown, err := obs.StartDebug("127.0.0.1:0", obs.Default())
	if err != nil {
		t.Fatalf("StartDebug: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = shutdown(ctx)
	}()

	client := ctlog.NewClient(logSrv.URL, nil)
	entries, _, err := client.Scrape(context.Background(), ctlog.ScrapeOptions{})
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	if len(entries) != 25 {
		t.Fatalf("scraped %d entries, want 25", len(entries))
	}

	// /metrics over real loopback HTTP.
	body := httpGet(t, "http://"+bound+"/metrics")
	served := promValue(t, body, "ctlog_entries_served_total")
	if served < 25 {
		t.Errorf("ctlog_entries_served_total = %v, want >= 25", served)
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promSampleLine.MatchString(line) {
			t.Errorf("invalid Prometheus sample line: %q", line)
		}
	}

	// /debug/vars must be valid JSON exposing the same counter.
	var vars map[string]any
	if err := json.Unmarshal([]byte(httpGet(t, "http://"+bound+"/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars not valid JSON: %v", err)
	}
	v, ok := vars["ctlog_entries_served_total"].(float64)
	if !ok || v < 25 {
		t.Errorf("/debug/vars ctlog_entries_served_total = %v, want >= 25", vars["ctlog_entries_served_total"])
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(raw)
}

// promValue extracts the sample value for an unlabelled metric name.
func promValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in /metrics output", name)
	return 0
}
