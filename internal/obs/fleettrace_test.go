package obs

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeDaemon is one scrapeable target: a private registry plus a private span
// store served on /metrics and /v1/traces, like a real daemon's debug surface.
func fakeDaemon(t *testing.T) (*Registry, *SpanStore, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	st := NewSpanStore(32, 1, 0)
	st.Registry = reg
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		WriteProm(w, reg)
	})
	mux.Handle("GET /v1/traces", st.Handler())
	mux.Handle("GET /v1/traces/{id}", st.Handler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return reg, st, srv
}

func TestAggregatorStitchesCrossDaemonTrace(t *testing.T) {
	_, upstream, upstreamSrv := fakeDaemon(t) // e.g. staleapid: originates
	_, downstream, downstreamSrv := fakeDaemon(t)

	base := time.Now()
	trace := "aaaabbbbccccddddaaaabbbbccccdddd"
	// staleapid handled a request (root), fanned out one client call.
	upstream.Record(SpanRecord{TraceID: trace, SpanID: "s-client", ParentID: "s-root",
		Service: "staleapid", Name: "GET /ct/v1/get-sth", Kind: SpanClient,
		Start: base.Add(time.Millisecond), Duration: 8 * time.Millisecond, Status: 200})
	upstream.RecordRoot(SpanRecord{TraceID: trace, SpanID: "s-root",
		Service: "staleapid", Name: "GET /v1/domain/{e2ld}/staleness", Kind: SpanServer,
		Route: "/v1/domain/{e2ld}/staleness", Start: base, Duration: 10 * time.Millisecond, Status: 200})
	// ctlogd saw that client call as its own server request.
	downstream.RecordRoot(SpanRecord{TraceID: trace, SpanID: "c-root", ParentID: "s-client",
		Service: "ctlogd", Name: "GET /ct/v1/get-sth", Kind: SpanServer,
		Route: "/ct/v1/get-sth", Start: base.Add(2 * time.Millisecond), Duration: 6 * time.Millisecond, Status: 200})

	var logBuf bytes.Buffer
	agg := &Aggregator{
		Targets: []Target{
			{Job: "staleapid", URL: upstreamSrv.URL},
			{Job: "ctlogd", URL: downstreamSrv.URL},
		},
		Registry:  NewRegistry(),
		Logger:    slog.New(slog.NewTextHandler(&logBuf, nil)),
		TraceSlow: 5 * time.Millisecond,
	}
	agg.ScrapeOnce(context.Background())

	tr, ok := agg.FleetTrace(trace)
	if !ok {
		t.Fatal("fleet trace missing after scrape")
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("stitched %d spans, want 3: %+v", len(tr.Spans), tr.Spans)
	}
	if len(tr.Services) != 2 || tr.Services[0] != "ctlogd" || tr.Services[1] != "staleapid" {
		t.Fatalf("services = %v", tr.Services)
	}
	if tr.Root != "staleapid GET /v1/domain/{e2ld}/staleness" {
		t.Fatalf("fleet root = %q, want the originating hop's root", tr.Root)
	}
	roots := BuildSpanTree(tr.Spans)
	if len(roots) != 1 {
		t.Fatalf("stitched tree has %d roots, want 1", len(roots))
	}
	if roots[0].SpanID != "s-root" ||
		len(roots[0].Children) != 1 || roots[0].Children[0].SpanID != "s-client" ||
		len(roots[0].Children[0].Children) != 1 || roots[0].Children[0].Children[0].SpanID != "c-root" {
		t.Fatalf("tree linkage wrong: %+v", roots[0])
	}

	// Slow alert fired exactly once for this trace, even across re-scrapes.
	agg.ScrapeOnce(context.Background())
	if n := strings.Count(logBuf.String(), "slow trace"); n != 1 {
		t.Fatalf("slow-trace alert fired %d times, want 1:\n%s", n, logBuf.String())
	}

	// Re-scraping did not duplicate spans.
	tr, _ = agg.FleetTrace(trace)
	if len(tr.Spans) != 3 {
		t.Fatalf("re-scrape duplicated spans: %d", len(tr.Spans))
	}

	// The HTTP surface serves the stitched tree.
	h := httptest.NewServer(agg.Handler())
	defer h.Close()
	resp, err := h.Client().Get(h.URL + "/fleet/traces/" + trace)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/fleet/traces/{id} status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{`"s-root"`, `"c-root"`, `"staleapid"`, `"ctlogd"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/fleet/traces/{id} missing %s:\n%s", want, body)
		}
	}
}

func TestAggregatorToleratesTracelessTargets(t *testing.T) {
	// A target without /v1/traces (older build / tracing disabled) answers
	// 404; the metrics scrape must still succeed with no trace alert noise.
	reg := NewRegistry()
	reg.Counter("up_total").Inc()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) { WriteProm(w, reg) })
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var logBuf bytes.Buffer
	agg := &Aggregator{
		Targets:  []Target{{Job: "old", URL: srv.URL}},
		Registry: NewRegistry(),
		Logger:   slog.New(slog.NewTextHandler(&logBuf, nil)),
	}
	agg.ScrapeOnce(context.Background())
	if got := agg.TraceCount(); got != 0 {
		t.Fatalf("trace count %d from traceless target", got)
	}
	if strings.Contains(logBuf.String(), "trace scrape failed") {
		t.Fatalf("404 traces endpoint raised an alert:\n%s", logBuf.String())
	}
	found := false
	for _, s := range agg.Federated() {
		if s.Name == "up_total" {
			found = true
		}
	}
	if !found {
		t.Fatal("metrics scrape lost alongside missing traces endpoint")
	}
}

func TestFleetTraceBufferBounded(t *testing.T) {
	agg := &Aggregator{Registry: NewRegistry(), TraceBuffer: 3,
		Logger: slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil))}
	var traces []TraceRecord
	for i := 0; i < 10; i++ {
		id := string(rune('a'+i)) + "-trace"
		traces = append(traces, TraceRecord{TraceID: id, Root: "svc x", Start: time.Now(),
			Spans: []SpanRecord{{TraceID: id, SpanID: id + "-s", Service: "svc"}}})
	}
	agg.mergeTraces(traces)
	if got := agg.TraceCount(); got != 3 {
		t.Fatalf("fleet buffer holds %d traces, capacity 3", got)
	}
	if _, ok := agg.FleetTrace("a-trace"); ok {
		t.Fatal("oldest fleet trace survived eviction")
	}
	if _, ok := agg.FleetTrace("j-trace"); !ok {
		t.Fatal("newest fleet trace missing")
	}
}
