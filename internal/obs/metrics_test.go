package obs

import (
	"math"
	"sort"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total")
	const goroutines, perG = 8, 10_000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Mix cached-handle increments with registry lookups to exercise
			// the RLock fast path concurrently.
			for j := 0; j < perG; j++ {
				c.Inc()
				r.Counter("test_total").Inc()
				r.Counter("labeled_total", "worker", "a").Add(1)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), uint64(2*goroutines*perG); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got, want := r.Counter("labeled_total", "worker", "a").Value(), uint64(goroutines*perG); got != want {
		t.Errorf("labeled counter = %d, want %d", got, want)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
				g.Add(2)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(8*1000*2); got != want {
		t.Errorf("gauge = %v, want %v", got, want)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", []float64{1, 10, 100})

	// Boundary values land in the bucket whose upper bound equals them
	// (le semantics: v <= bound).
	for _, v := range []float64{0.5, 1} { // -> le=1
		h.Observe(v)
	}
	for _, v := range []float64{1.0001, 10} { // -> le=10
		h.Observe(v)
	}
	h.Observe(99.9) // -> le=100
	h.Observe(101)  // -> +Inf overflow

	s := snapshotFor(t, r, "test_seconds")
	wantCumulative := []uint64{2, 4, 5, 6}
	if len(s.Buckets) != 4 {
		t.Fatalf("bucket count = %d, want 4 (3 bounds + Inf)", len(s.Buckets))
	}
	for i, b := range s.Buckets {
		if b.Count != wantCumulative[i] {
			t.Errorf("bucket[%d] (le=%v) = %d, want %d", i, b.UpperBound, b.Count, wantCumulative[i])
		}
	}
	if !math.IsInf(s.Buckets[3].UpperBound, 1) {
		t.Errorf("last bucket bound = %v, want +Inf", s.Buckets[3].UpperBound)
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	wantSum := 0.5 + 1 + 1.0001 + 10 + 99.9 + 101
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", []float64{1, 2, 4})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5000; j++ {
				h.Observe(float64(i%4) + 0.5)
			}
		}(i)
	}
	wg.Wait()
	if got, want := h.Count(), uint64(8*5000); got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	// Register in scrambled order, with labels in scrambled key order.
	r.Counter("zeta_total")
	r.Gauge("alpha_value")
	r.Counter("mid_total", "z", "1", "a", "2")
	r.Counter("mid_total", "a", "2", "z", "0")
	r.Histogram("beta_seconds", []float64{1})

	var got []string
	for _, s := range r.Snapshot() {
		got = append(got, s.FullName())
	}
	want := []string{
		"alpha_value",
		"beta_seconds",
		`mid_total{a="2",z="0"}`,
		`mid_total{a="2",z="1"}`,
		"zeta_total",
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d samples %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("snapshot[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if !sort.StringsAreSorted(got) {
		t.Errorf("snapshot not sorted: %v", got)
	}
	// Repeat snapshots must agree exactly.
	for i, s := range r.Snapshot() {
		if s.FullName() != got[i] {
			t.Errorf("second snapshot differs at %d: %q vs %q", i, s.FullName(), got[i])
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "k", `va"l\ue`+"\n").Inc()
	s := r.Snapshot()[0]
	want := `esc_total{k="va\"l\\ue\n"}`
	if s.FullName() != want {
		t.Errorf("escaped name = %q, want %q", s.FullName(), want)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash_total")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind mismatch")
		}
	}()
	r.Gauge("clash_total")
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 4, 4)
	want := []float64{1, 4, 16, 64}
	for i := range want {
		if b[i] != want[i] {
			t.Errorf("bucket[%d] = %v, want %v", i, b[i], want[i])
		}
	}
	if !sort.Float64sAreSorted(DurationBuckets) || !sort.Float64sAreSorted(SizeBuckets) {
		t.Error("standard bucket sets must be sorted")
	}
}

func snapshotFor(t *testing.T, r *Registry, name string) Sample {
	t.Helper()
	for _, s := range r.Snapshot() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("metric %q not in snapshot", name)
	return Sample{}
}
