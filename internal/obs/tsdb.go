package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file implements the fleet time-series database inside obsagg: every
// federation round appends the already-parsed, relabelled samples into
// per-series ring buffers, bounded by a retention window and a series cap,
// so /fleet/query can answer range questions ("what was ingest throughput
// over the last 10 minutes?") without an external Prometheus. Histogram
// samples are expanded into the conventional _bucket/_sum/_count float
// series (bucket exemplars ride along), label sets are interned, and series
// whose target vanished are marked stale so instant queries stop returning
// them while their history stays queryable until retention evicts it.

// TSDB defaults; a zero TSDB is usable and applies all of them.
const (
	DefaultTSDBRetention = 15 * time.Minute
	DefaultTSDBMaxSeries = 50000
	DefaultTSDBLookback  = 5 * time.Minute
)

// Point is one timestamped value in a series.
type Point struct {
	T time.Time
	V float64
}

type tsSeries struct {
	name       string
	labels     string   // canonical rendered label set ("" or `{k="v",...}`)
	pairs      []string // decoded key/value pairs, sorted by key
	kind       Kind
	pts        []Point
	lastAppend time.Time
	stale      bool // target vanished: excluded from instant answers
	exemplar   *Exemplar
}

// TSDB is an in-memory time-series store: one ring of points per unique
// (name, label set), appended by the aggregator each scrape round. All
// methods are safe for concurrent use. The zero value is ready to use.
type TSDB struct {
	// Retention bounds how far back points are kept (<= 0: DefaultTSDBRetention).
	Retention time.Duration
	// MaxSeries caps live series; appends that would create more are
	// dropped and counted (<= 0: DefaultTSDBMaxSeries).
	MaxSeries int
	// Lookback is how far back an instant query may reach for a series'
	// newest point (<= 0: DefaultTSDBLookback, capped at Retention).
	Lookback time.Duration
	// StaleAfter is how long a series may go without an append before
	// instant queries drop it (<= 0: Retention). The aggregator also
	// marks a vanished target's series stale explicitly once its scrapes
	// have failed for this long.
	StaleAfter time.Duration

	mu      sync.RWMutex
	byName  map[string]map[string]*tsSeries // family -> labels -> series
	intern  map[string]string
	total   int
	points  uint64
	dropped uint64
}

func (db *TSDB) retention() time.Duration {
	if db.Retention > 0 {
		return db.Retention
	}
	return DefaultTSDBRetention
}

func (db *TSDB) maxSeries() int {
	if db.MaxSeries > 0 {
		return db.MaxSeries
	}
	return DefaultTSDBMaxSeries
}

func (db *TSDB) lookback() time.Duration {
	lb := db.Lookback
	if lb <= 0 {
		lb = DefaultTSDBLookback
	}
	if r := db.retention(); lb > r {
		lb = r
	}
	return lb
}

func (db *TSDB) staleAfter() time.Duration {
	if db.StaleAfter > 0 {
		return db.StaleAfter
	}
	return db.retention()
}

// internLocked dedups label-set strings: every series holding the same
// rendered label set shares one backing string instead of a fresh copy per
// scrape round.
func (db *TSDB) internLocked(s string) string {
	if s == "" {
		return ""
	}
	if db.intern == nil {
		db.intern = make(map[string]string)
	}
	if c, ok := db.intern[s]; ok {
		return c
	}
	c := strings.Clone(s)
	db.intern[c] = c
	return c
}

// Append records one scrape round's samples at time now. Histograms are
// expanded into float _bucket/_sum/_count series (cumulative counts, like
// the exposition format), so query functions see plain number series.
// Appending to a series clears its stale mark.
func (db *TSDB) Append(now time.Time, samples []Sample) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, s := range samples {
		switch s.Kind {
		case KindHistogram:
			for _, b := range s.Buckets {
				db.appendLocked(now, s.Name+"_bucket", withLE(s.Labels, b.UpperBound), KindCounter, float64(b.Count), b.Exemplar)
			}
			db.appendLocked(now, s.Name+"_sum", s.Labels, KindCounter, s.Sum, nil)
			db.appendLocked(now, s.Name+"_count", s.Labels, KindCounter, float64(s.Count), nil)
		default:
			db.appendLocked(now, s.Name, s.Labels, s.Kind, s.Value, nil)
		}
	}
}

func (db *TSDB) appendLocked(now time.Time, name, labels string, kind Kind, v float64, ex *Exemplar) {
	if db.byName == nil {
		db.byName = make(map[string]map[string]*tsSeries)
	}
	fam := db.byName[name]
	if fam == nil {
		fam = make(map[string]*tsSeries)
		db.byName[name] = fam
	}
	sr := fam[labels]
	if sr == nil {
		if db.total >= db.maxSeries() {
			db.dropped++
			return
		}
		pairs, err := labelPairs(labels)
		if err != nil {
			db.dropped++
			return
		}
		sr = &tsSeries{name: db.internLocked(name), labels: db.internLocked(labels), pairs: pairs, kind: kind}
		fam[labels] = sr
		db.total++
	}
	if ex != nil {
		sr.exemplar = ex
	}
	sr.stale = false
	sr.lastAppend = now
	if n := len(sr.pts); n > 0 && !sr.pts[n-1].T.Before(now) {
		sr.pts[n-1] = Point{T: now, V: v} // same round appended twice: keep latest
	} else {
		sr.pts = append(sr.pts, Point{T: now, V: v})
		db.points++
	}
	cutoff := now.Add(-db.retention())
	k := 0
	for k < len(sr.pts) && sr.pts[k].T.Before(cutoff) {
		k++
	}
	if k > 0 {
		n := copy(sr.pts, sr.pts[k:])
		sr.pts = sr.pts[:n]
	}
}

// MarkStale flags every series carrying all the given label key/value pairs
// (e.g. "job", "ctlogd", "instance", "127.0.0.1:9001") as stale: instant
// queries stop returning them until a fresh append revives them, while
// range queries keep serving their remaining history.
func (db *TSDB) MarkStale(kv ...string) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	n := 0
	for _, fam := range db.byName {
		for _, sr := range fam {
			if sr.stale || !hasPairs(sr.pairs, kv) {
				continue
			}
			sr.stale = true
			n++
		}
	}
	return n
}

func hasPairs(pairs, want []string) bool {
	for i := 0; i+1 < len(want); i += 2 {
		v, ok := pairValue(pairs, want[i])
		if !ok || v != want[i+1] {
			return false
		}
	}
	return true
}

func pairValue(pairs []string, key string) (string, bool) {
	for i := 0; i+1 < len(pairs); i += 2 {
		if pairs[i] == key {
			return pairs[i+1], true
		}
	}
	return "", false
}

// Prune drops series whose newest point has aged out of retention entirely,
// reclaiming their slots under MaxSeries. Returns the number removed.
func (db *TSDB) Prune(now time.Time) int {
	cutoff := now.Add(-db.retention())
	db.mu.Lock()
	defer db.mu.Unlock()
	removed := 0
	for name, fam := range db.byName {
		for labels, sr := range fam {
			if len(sr.pts) == 0 || sr.pts[len(sr.pts)-1].T.Before(cutoff) {
				delete(fam, labels)
				db.total--
				removed++
			}
		}
		if len(fam) == 0 {
			delete(db.byName, name)
		}
	}
	return removed
}

// SeriesCount returns the number of live series.
func (db *TSDB) SeriesCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.total
}

// PointCount returns the cumulative number of points ever appended.
func (db *TSDB) PointCount() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.points
}

// DroppedSeries returns the cumulative number of appends refused by the
// MaxSeries cap (or by malformed label sets).
func (db *TSDB) DroppedSeries() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.dropped
}

// MatchOp is a label-matcher operator.
type MatchOp uint8

// Label matcher operators: equality, inequality, anchored-regex match and
// its negation.
const (
	MatchEq MatchOp = iota
	MatchNe
	MatchRe
	MatchNre
)

// Matcher is one label constraint in a series selector.
type Matcher struct {
	Key   string
	Op    MatchOp
	Value string
	re    *regexp.Regexp
}

// NewMatcher builds a matcher, compiling (and fully anchoring) the regex
// for the =~ / !~ operators.
func NewMatcher(key string, op MatchOp, value string) (Matcher, error) {
	m := Matcher{Key: key, Op: op, Value: value}
	if op == MatchRe || op == MatchNre {
		re, err := regexp.Compile("^(?:" + value + ")$")
		if err != nil {
			return m, fmt.Errorf("obs: bad label regex %q: %w", value, err)
		}
		m.re = re
	}
	return m, nil
}

// Matches reports whether one label value satisfies the matcher.
func (m Matcher) Matches(v string) bool {
	switch m.Op {
	case MatchEq:
		return v == m.Value
	case MatchNe:
		return v != m.Value
	case MatchRe:
		return m.re.MatchString(v)
	case MatchNre:
		return !m.re.MatchString(v)
	}
	return false
}

func matchSeries(sr *tsSeries, ms []Matcher) bool {
	for _, m := range ms {
		v, _ := pairValue(sr.pairs, m.Key)
		if !m.Matches(v) {
			return false
		}
	}
	return true
}

// SeriesData is one series' slice of a selection: its identity plus the
// points inside the queried window (instant selections carry exactly one).
type SeriesData struct {
	Name     string
	Labels   string
	Pairs    []string
	Kind     Kind
	Points   []Point
	Exemplar *Exemplar
}

// Latest answers an instant selection: for every live series of the family
// matching ms, the newest point no older than the lookback window at time
// at. Stale series (vanished targets) and series silent past StaleAfter are
// excluded — their history remains visible to Select.
func (db *TSDB) Latest(name string, ms []Matcher, at time.Time) []SeriesData {
	maxAge := db.lookback()
	if sa := db.staleAfter(); sa < maxAge {
		maxAge = sa
	}
	oldest := at.Add(-maxAge)
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []SeriesData
	for _, sr := range db.byName[name] {
		if sr.stale || !matchSeries(sr, ms) {
			continue
		}
		p, ok := newestAt(sr.pts, at)
		if !ok || p.T.Before(oldest) {
			continue
		}
		out = append(out, SeriesData{Name: sr.name, Labels: sr.labels, Pairs: sr.pairs,
			Kind: sr.kind, Points: []Point{p}, Exemplar: sr.exemplar})
	}
	sortSeriesData(out)
	return out
}

// newestAt returns the newest point at or before the query time.
func newestAt(pts []Point, at time.Time) (Point, bool) {
	i := sort.Search(len(pts), func(i int) bool { return pts[i].T.After(at) })
	if i == 0 {
		return Point{}, false
	}
	return pts[i-1], true
}

// Select answers a range selection: every matching series' points in
// [from, to], stale or not — history is history until retention evicts it.
func (db *TSDB) Select(name string, ms []Matcher, from, to time.Time) []SeriesData {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []SeriesData
	for _, sr := range db.byName[name] {
		if !matchSeries(sr, ms) {
			continue
		}
		lo := sort.Search(len(sr.pts), func(i int) bool { return !sr.pts[i].T.Before(from) })
		hi := sort.Search(len(sr.pts), func(i int) bool { return sr.pts[i].T.After(to) })
		if lo == hi {
			continue
		}
		pts := make([]Point, hi-lo)
		copy(pts, sr.pts[lo:hi])
		out = append(out, SeriesData{Name: sr.name, Labels: sr.labels, Pairs: sr.pairs,
			Kind: sr.kind, Points: pts, Exemplar: sr.exemplar})
	}
	sortSeriesData(out)
	return out
}

func sortSeriesData(s []SeriesData) {
	sort.Slice(s, func(i, j int) bool { return s[i].Labels < s[j].Labels })
}
