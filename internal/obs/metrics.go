// Package obs is the stdlib-only observability layer shared by every daemon
// and pipeline stage: a lock-cheap metrics registry (counters, gauges,
// log-bucketed histograms with labels), a nesting stage tracer, Prometheus /
// expvar / pprof HTTP exposition, and slog setup. Instrumented packages use
// the process-wide Default registry; tests can construct private registries.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates metric types.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind in Prometheus TYPE syntax.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing count. All methods are safe for
// concurrent use and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous float value.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add adjusts the value by delta (CAS loop; lock-free).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := floatBits(floatFrom(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return floatFrom(g.bits.Load()) }

// Exemplar links one histogram bucket to a sampled trace: the exposition
// emits OpenMetrics `# {trace_id="..."} value` syntax after the bucket line,
// so a latency spike points straight at a stored trace.
type Exemplar struct {
	TraceID string
	Value   float64
}

// Histogram accumulates observations into fixed buckets with upper bounds
// Bounds (plus an implicit +Inf overflow bucket). Safe for concurrent use.
type Histogram struct {
	bounds    []float64
	counts    []atomic.Uint64 // len(bounds)+1; last is +Inf
	exemplars []atomic.Pointer[Exemplar]
	count     atomic.Uint64
	sumBits   atomic.Uint64
}

// bucketIndex returns the first bucket whose upper bound contains v
// (v <= bound); len(bounds) is the +Inf overflow bucket.
func (h *Histogram) bucketIndex(v float64) int {
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) && h.bounds[i] < v {
		i++
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := floatBits(floatFrom(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value and attaches the trace ID as the
// exemplar of the bucket the observation lands in (last writer wins).
// Callers pass only trace IDs that are retrievable — i.e. the tail sampler
// kept the trace — so every exposed exemplar can be followed to /v1/traces.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if traceID != "" {
		h.exemplars[h.bucketIndex(v)].Store(&Exemplar{TraceID: traceID, Value: v})
	}
	h.Observe(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 { return floatFrom(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// ExpBuckets returns n log-scaled bucket upper bounds starting at start and
// growing by factor: start, start*factor, start*factor^2, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets covers 1µs through ~72min in ×4 steps — the default for
// latency histograms (observe seconds). Override before any histogram is
// registered via SetDurationBuckets (the -latency-buckets flag): the ×4
// default loses resolution for sub-millisecond cache hits and makes latency
// SLO thresholds interpolate instead of landing on a boundary.
var DurationBuckets = ExpBuckets(1e-6, 4, 16)

// SetDurationBuckets replaces the default latency bucket boundaries used by
// every histogram registered afterwards. Call before serving traffic
// (Flags.Setup does, from -latency-buckets): histograms already registered
// keep their bounds.
func SetDurationBuckets(bounds []float64) error {
	if len(bounds) == 0 {
		return fmt.Errorf("obs: empty bucket list")
	}
	for i, b := range bounds {
		if b <= 0 || math.IsInf(b, 0) || math.IsNaN(b) {
			return fmt.Errorf("obs: bucket bound %v is not a positive finite value", b)
		}
		if i > 0 && b <= bounds[i-1] {
			return fmt.Errorf("obs: bucket bounds must be strictly ascending (%v after %v)", b, bounds[i-1])
		}
	}
	DurationBuckets = bounds
	return nil
}

// ParseLatencyBuckets parses the -latency-buckets flag syntax — a
// comma-separated ascending list of Go durations ("250us,1ms,5ms,250ms,1s")
// — into histogram upper bounds in seconds.
func ParseLatencyBuckets(spec string) ([]float64, error) {
	parts := strings.Split(spec, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		d, err := parseDurationOrSeconds(p)
		if err != nil {
			return nil, fmt.Errorf("obs: bad latency bucket %q: %w", p, err)
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("obs: no buckets in %q", spec)
	}
	return out, nil
}

// parseDurationOrSeconds accepts a Go duration ("250ms") or a bare float
// second count ("0.25").
func parseDurationOrSeconds(s string) (float64, error) {
	if d, err := time.ParseDuration(s); err == nil {
		return d.Seconds(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("neither a duration nor seconds")
	}
	return v, nil
}

// SizeBuckets covers 1B through ~1GiB in ×4 steps — the default for payload
// sizes (observe bytes).
var SizeBuckets = ExpBuckets(1, 4, 16)

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func floatFrom(b uint64) float64 { return math.Float64frombits(b) }

var inf = math.Inf(1)

// metric is one registered time series: a family name plus a rendered label
// set, holding exactly one of the three instrument types.
type metric struct {
	family string
	labels string // `{k="v",...}` or ""
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry is a set of named metrics. Lookup takes a short RLock; updates on
// the returned instruments are pure atomics. The zero value is not usable;
// construct with NewRegistry (or use Default).
type Registry struct {
	mu       sync.RWMutex
	metrics  map[string]*metric
	families map[string]Kind
	hooks    []func()
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics:  make(map[string]*metric),
		families: make(map[string]Kind),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every instrumented package uses.
func Default() *Registry { return defaultRegistry }

// Counter returns (registering on first use) the counter with the given
// family name and label pairs ("key", "value", ...).
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	m := r.lookup(name, KindCounter, nil, labelPairs)
	return m.c
}

// Gauge returns the gauge with the given name and label pairs.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	m := r.lookup(name, KindGauge, nil, labelPairs)
	return m.g
}

// Histogram returns the histogram with the given name, bucket upper bounds
// (nil for DurationBuckets) and label pairs. Bounds are fixed at first
// registration.
func (r *Registry) Histogram(name string, bounds []float64, labelPairs ...string) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	m := r.lookup(name, KindHistogram, bounds, labelPairs)
	return m.h
}

func (r *Registry) lookup(family string, kind Kind, bounds []float64, labelPairs []string) *metric {
	labels := formatLabels(labelPairs)
	key := family + labels

	r.mu.RLock()
	m, ok := r.metrics[key]
	r.mu.RUnlock()
	if ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", key, kind, m.kind))
		}
		return m
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", key, kind, m.kind))
		}
		return m
	}
	if k, ok := r.families[family]; ok && k != kind {
		panic(fmt.Sprintf("obs: family %q holds %v metrics, requested %v", family, k, kind))
	}
	m = &metric{family: family, labels: labels, kind: kind}
	switch kind {
	case KindCounter:
		m.c = &Counter{}
	case KindGauge:
		m.g = &Gauge{}
	case KindHistogram:
		h := &Histogram{bounds: bounds}
		h.counts = make([]atomic.Uint64, len(bounds)+1)
		h.exemplars = make([]atomic.Pointer[Exemplar], len(bounds)+1)
		m.h = h
	}
	r.metrics[key] = m
	r.families[family] = kind
	return m
}

// formatLabels renders label pairs as a deterministic Prometheus label set.
func formatLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label pairs %q", pairs))
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// BucketCount is one histogram bucket in a snapshot: the cumulative count of
// observations at or below UpperBound, plus the bucket's exemplar when an
// observation was recorded with a sampled trace ID.
type BucketCount struct {
	UpperBound float64
	Count      uint64 // cumulative
	Exemplar   *Exemplar
}

// Sample is one metric's state in a snapshot.
type Sample struct {
	Name   string // family name
	Labels string // rendered label set ("" or `{k="v"}`)
	Kind   Kind

	// Counter / gauge value.
	Value float64

	// Histogram state; Buckets are cumulative and end with the +Inf bucket
	// (UpperBound = +Inf, Count = Count field).
	Count   uint64
	Sum     float64
	Buckets []BucketCount
}

// FullName returns the family with its label set appended.
func (s Sample) FullName() string { return s.Name + s.Labels }

// OnSnapshot registers a hook run at the start of every Snapshot, before
// metrics are collected. Runtime collectors use it to refresh point-in-time
// gauges (goroutines, heap) exactly when a scrape reads them, with no
// background ticker.
func (r *Registry) OnSnapshot(hook func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, hook)
	r.mu.Unlock()
}

// Snapshot returns a deterministic (sorted by family then labels) view of
// every registered metric.
func (r *Registry) Snapshot() []Sample {
	r.mu.RLock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.RUnlock()
	for _, hook := range hooks {
		hook()
	}

	r.mu.RLock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.RUnlock()

	sort.Slice(ms, func(i, j int) bool {
		if ms[i].family != ms[j].family {
			return ms[i].family < ms[j].family
		}
		return ms[i].labels < ms[j].labels
	})

	out := make([]Sample, 0, len(ms))
	for _, m := range ms {
		s := Sample{Name: m.family, Labels: m.labels, Kind: m.kind}
		switch m.kind {
		case KindCounter:
			s.Value = float64(m.c.Value())
		case KindGauge:
			s.Value = m.g.Value()
		case KindHistogram:
			s.Count = m.h.Count()
			s.Sum = m.h.Sum()
			var cum uint64
			s.Buckets = make([]BucketCount, 0, len(m.h.bounds)+1)
			for i, b := range m.h.bounds {
				cum += m.h.counts[i].Load()
				s.Buckets = append(s.Buckets, BucketCount{UpperBound: b, Count: cum,
					Exemplar: m.h.exemplars[i].Load()})
			}
			cum += m.h.counts[len(m.h.bounds)].Load()
			s.Buckets = append(s.Buckets, BucketCount{UpperBound: inf, Count: cum,
				Exemplar: m.h.exemplars[len(m.h.bounds)].Load()})
		}
		out = append(out, s)
	}
	return out
}

// Reset drops every registered metric and snapshot hook. Intended for tests
// that assert on the Default registry.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = make(map[string]*metric)
	r.families = make(map[string]Kind)
	r.hooks = nil
}
