package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the per-daemon log ring: a slog.Handler tee that keeps
// writing stderr exactly as before while also appending every record —
// structured, with the trace/span IDs already flowing through request
// contexts — into a bounded in-memory ring. The ring is queryable on every
// debug listener (GET /v1/logs with level/trace/since/substring filters), the
// process log level is flippable live (GET/PUT /v1/loglevel backed by a
// slog.LevelVar), and the ring can be snapshotted to disk as JSONL — the
// crash/alert black-box the profile capture set embeds. cmd/obsagg federates
// per-daemon rings into /fleet/logs (fleetlog.go).

// LogRecord is one structured log line as stored in a ring and served over
// the wire. Seq is a per-process monotonic sequence number (the federation
// dedup key); Job and Instance are empty in per-daemon rings and filled in by
// the aggregator.
type LogRecord struct {
	Seq      uint64            `json:"seq"`
	Time     time.Time         `json:"time"`
	Level    string            `json:"level"` // slog notation: DEBUG, INFO, WARN, ERROR
	Service  string            `json:"service,omitempty"`
	Msg      string            `json:"msg"`
	TraceID  string            `json:"trace_id,omitempty"`
	SpanID   string            `json:"span_id,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Job      string            `json:"job,omitempty"`
	Instance string            `json:"instance,omitempty"`
}

// ParseLogLevel parses a level name in any case ("debug", "WARN", also
// slog offset notation like "INFO+2") into a slog.Level.
func ParseLogLevel(s string) (slog.Level, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(strings.TrimSpace(s))); err != nil {
		return 0, fmt.Errorf("obs: bad log level %q", s)
	}
	return lv, nil
}

// LogFilter selects records in LogRing.Query and the fleet log view.
type LogFilter struct {
	// MinLevel keeps records at or above this level when LevelSet is true.
	MinLevel slog.Level
	LevelSet bool
	// TraceID keeps only records correlated to this trace.
	TraceID string
	// Since keeps only records strictly after this time.
	Since time.Time
	// Q keeps records whose message or rendered attrs contain this substring
	// (case-insensitive).
	Q string
	// Limit keeps only the newest N matches (0 = all).
	Limit int
	// Job/Instance filter federated records (empty matches everything; only
	// meaningful on the fleet view).
	Job      string
	Instance string
}

// matches reports whether one record passes the filter (Limit excluded —
// callers trim after collecting).
func (f LogFilter) matches(rec LogRecord) bool {
	if f.LevelSet {
		lv, err := ParseLogLevel(rec.Level)
		if err != nil || lv < f.MinLevel {
			return false
		}
	}
	if f.TraceID != "" && rec.TraceID != f.TraceID {
		return false
	}
	if !f.Since.IsZero() && !rec.Time.After(f.Since) {
		return false
	}
	if f.Job != "" && rec.Job != f.Job {
		return false
	}
	if f.Instance != "" && rec.Instance != f.Instance {
		return false
	}
	if f.Q != "" {
		q := strings.ToLower(f.Q)
		hit := strings.Contains(strings.ToLower(rec.Msg), q)
		for k, v := range rec.Attrs {
			if hit {
				break
			}
			hit = strings.Contains(strings.ToLower(k), q) || strings.Contains(strings.ToLower(v), q)
		}
		if !hit {
			return false
		}
	}
	return true
}

// ParseLogFilter decodes the shared log query parameters (?level=, ?trace=,
// ?since=, ?q=, ?limit=, plus ?job=/?instance= on the fleet view). ?since=
// accepts an RFC3339(Nano) timestamp or a Go duration meaning "the last D".
func ParseLogFilter(r *http.Request) (LogFilter, error) {
	f := LogFilter{
		TraceID:  r.URL.Query().Get("trace"),
		Q:        r.URL.Query().Get("q"),
		Job:      r.URL.Query().Get("job"),
		Instance: r.URL.Query().Get("instance"),
	}
	if v := r.URL.Query().Get("level"); v != "" {
		lv, err := ParseLogLevel(v)
		if err != nil {
			return f, err
		}
		f.MinLevel, f.LevelSet = lv, true
	}
	if v := r.URL.Query().Get("since"); v != "" {
		if ts, err := time.Parse(time.RFC3339Nano, v); err == nil {
			f.Since = ts
		} else if d, derr := time.ParseDuration(v); derr == nil && d > 0 {
			f.Since = time.Now().Add(-d)
		} else {
			return f, fmt.Errorf("bad since %q (want RFC3339 or duration)", v)
		}
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return f, fmt.Errorf("bad limit %q", v)
		}
		f.Limit = n
	}
	return f, nil
}

// LogRing is a bounded lock-protected ring of structured log records. Append
// evicts oldest-first at capacity; Query returns matching records oldest
// first. Safe for concurrent use.
type LogRing struct {
	// Registry receives log_records_total{service,level} (nil: Default()).
	Registry *Registry

	mu   sync.Mutex
	buf  []LogRecord
	next int // next write slot
	size int
	seq  uint64
}

// DefaultLogBuffer is the -log-buffer default.
const DefaultLogBuffer = 1024

// NewLogRing builds a ring retaining at most capacity records (<= 0 uses
// DefaultLogBuffer).
func NewLogRing(capacity int) *LogRing {
	if capacity <= 0 {
		capacity = DefaultLogBuffer
	}
	return &LogRing{buf: make([]LogRecord, capacity)}
}

func (r *LogRing) reg() *Registry {
	if r.Registry != nil {
		return r.Registry
	}
	return Default()
}

// Append stores one record, assigning its sequence number and evicting the
// oldest record at capacity, and counts it in log_records_total.
func (r *LogRing) Append(rec LogRecord) {
	if r == nil {
		return
	}
	r.reg().Counter("log_records_total",
		"service", rec.Service, "level", strings.ToLower(rec.Level)).Inc()
	r.mu.Lock()
	r.seq++
	rec.Seq = r.seq
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.size < len(r.buf) {
		r.size++
	}
	r.mu.Unlock()
}

// Query returns matching records oldest-first; Limit keeps the newest N.
func (r *LogRing) Query(f LogFilter) []LogRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]LogRecord, 0, r.size)
	start := r.next - r.size
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.size; i++ {
		rec := r.buf[(start+i)%len(r.buf)]
		if f.matches(rec) {
			out = append(out, rec)
		}
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// Len reports the number of retained records.
func (r *LogRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}

// WriteJSONL writes the ring's full contents oldest-first, one JSON record
// per line — the black-box snapshot format.
func (r *LogRing) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range r.Query(LogFilter{}) {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SnapshotFile atomically writes the ring as JSONL to path.
func (r *LogRing) SnapshotFile(path string) error {
	if r == nil {
		return fmt.Errorf("obs: no log ring to snapshot")
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("obs: log snapshot: %w", err)
	}
	err = r.WriteJSONL(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("obs: log snapshot: %w", err)
	}
	return nil
}

// ReadJSONL decodes a JSONL log snapshot (the SnapshotFile format).
func ReadJSONL(r io.Reader) ([]LogRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	var out []LogRecord
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec LogRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("obs: bad log snapshot line: %w", err)
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// ReadSnapshotFile decodes a JSONL log snapshot from disk.
func ReadSnapshotFile(path string) ([]LogRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONL(f)
}

// LogSnapshotName is the black-box file a profile capture set embeds next to
// its pprof files.
const LogSnapshotName = "logs.jsonl"

// SnapshotDir writes the ring into dir as LogSnapshotName.
func (r *LogRing) SnapshotDir(dir string) error {
	return r.SnapshotFile(filepath.Join(dir, LogSnapshotName))
}

// The process-wide default ring SetupLogger's tee feeds; sized by the
// -log-buffer flag in Flags.Setup. A live default (like DefaultSpans) means
// logging is ring-buffered even before Setup runs.
var defaultLogRing atomic.Pointer[LogRing]

func init() {
	defaultLogRing.Store(NewLogRing(DefaultLogBuffer))
}

// DefaultLogRing returns the process-wide log ring, or nil when ring
// buffering is disabled (-log-buffer=0).
func DefaultLogRing() *LogRing { return defaultLogRing.Load() }

// SetDefaultLogRing replaces the process-wide log ring; nil disables ring
// buffering (stderr logging is unaffected).
func SetDefaultLogRing(r *LogRing) {
	if r == nil {
		defaultLogRing.Store(nil)
		return
	}
	defaultLogRing.Store(r)
}

// logLevel is the process-wide level gate shared by the stderr handler and
// the ring tee; PUT /v1/loglevel retargets it live.
var logLevel slog.LevelVar

// SetLogLevel flips the process log level at runtime.
func SetLogLevel(lv slog.Level) { logLevel.Set(lv) }

// LogLevel reports the current process log level.
func LogLevel() slog.Level { return logLevel.Level() }

// teeHandler forwards records to the stderr handler unchanged while also
// appending a structured copy to the log ring. Ring == nil resolves
// DefaultLogRing per record, so Flags.Setup's ring sizing applies to the
// already-installed default logger.
type teeHandler struct {
	inner  slog.Handler
	ring   *LogRing
	attrs  []slog.Attr // pre-flattened WithAttrs chain (group-qualified keys)
	groups []string
}

// NewTeeHandler wraps inner so every handled record is also appended to ring
// (nil ring: the process-wide DefaultLogRing at handle time).
func NewTeeHandler(inner slog.Handler, ring *LogRing) slog.Handler {
	return &teeHandler{inner: inner, ring: ring}
}

func (h *teeHandler) Enabled(ctx context.Context, lvl slog.Level) bool {
	return h.inner.Enabled(ctx, lvl)
}

func (h *teeHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	flat := append([]slog.Attr(nil), h.attrs...)
	prefix := strings.Join(h.groups, ".")
	for _, a := range attrs {
		flat = appendFlatAttr(flat, prefix, a)
	}
	return &teeHandler{inner: h.inner.WithAttrs(attrs), ring: h.ring,
		attrs: flat, groups: h.groups}
}

func (h *teeHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	groups := append(append([]string(nil), h.groups...), name)
	return &teeHandler{inner: h.inner.WithGroup(name), ring: h.ring,
		attrs: h.attrs, groups: groups}
}

// appendFlatAttr flattens one attr (recursing into groups) under a dotted
// key prefix.
func appendFlatAttr(flat []slog.Attr, prefix string, a slog.Attr) []slog.Attr {
	a.Value = a.Value.Resolve()
	if a.Value.Kind() == slog.KindGroup {
		sub := a.Key
		if prefix != "" {
			sub = prefix + "." + sub
		}
		for _, ga := range a.Value.Group() {
			flat = appendFlatAttr(flat, sub, ga)
		}
		return flat
	}
	key := a.Key
	if prefix != "" {
		key = prefix + "." + key
	}
	return append(flat, slog.Attr{Key: key, Value: a.Value})
}

func (h *teeHandler) Handle(ctx context.Context, rec slog.Record) error {
	ring := h.ring
	if ring == nil {
		ring = DefaultLogRing()
	}
	if ring != nil {
		lr := LogRecord{
			Time:  rec.Time,
			Level: rec.Level.String(),
			Msg:   rec.Message,
		}
		if lr.Time.IsZero() {
			lr.Time = time.Now()
		}
		if id, ok := RequestIDFromContext(ctx); ok {
			lr.TraceID = id.Trace()
			lr.SpanID = id.Span()
		}
		flat := h.attrs
		prefix := strings.Join(h.groups, ".")
		rec.Attrs(func(a slog.Attr) bool {
			flat = appendFlatAttr(flat, prefix, a)
			return true
		})
		if len(flat) > 0 {
			lr.Attrs = make(map[string]string, len(flat))
			for _, a := range flat {
				v := a.Value.String()
				switch a.Key {
				case "component", "service":
					if lr.Service == "" {
						lr.Service = v
					}
				case "request_id", "trace_id":
					// The middleware/transport access logs carry the trace ID
					// as an attr; promote it so ?trace= filtering works for
					// records logged without a request context.
					if lr.TraceID == "" {
						lr.TraceID = v
					}
				}
				lr.Attrs[a.Key] = v
			}
		}
		ring.Append(lr)
	}
	return h.inner.Handle(ctx, rec)
}

// serveLogs answers GET /v1/logs for one ring.
func serveLogs(ring *LogRing, w http.ResponseWriter, r *http.Request) {
	if ring == nil {
		http.Error(w, "log ring disabled", http.StatusNotFound)
		return
	}
	f, err := ParseLogFilter(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeLogJSON(w, ring.Query(f))
}

func writeLogJSON(w http.ResponseWriter, recs []LogRecord) {
	if recs == nil {
		recs = []LogRecord{}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(recs)
}

// Handler serves one ring's query surface (GET /v1/logs) — tests and fleet
// simulations mount private rings; the process-wide ring is mounted on every
// debug listener automatically.
func (r *LogRing) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/logs", func(w http.ResponseWriter, req *http.Request) {
		serveLogs(r, w, req)
	})
	return mux
}

// serveLogLevel answers GET/PUT /v1/loglevel: GET reports the live level,
// PUT (?level= or a plain/JSON body) retargets the process-wide LevelVar so
// an operator can flip a running daemon to debug without a restart.
func serveLogLevel(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPut {
		v := r.URL.Query().Get("level")
		if v == "" {
			body, err := io.ReadAll(io.LimitReader(r.Body, 256))
			if err != nil {
				http.Error(w, "bad body", http.StatusBadRequest)
				return
			}
			v = strings.TrimSpace(string(body))
			var parsed struct {
				Level string `json:"level"`
			}
			if json.Unmarshal(body, &parsed) == nil && parsed.Level != "" {
				v = parsed.Level
			}
		}
		lv, err := ParseLogLevel(v)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		SetLogLevel(lv)
		slog.Info("log level changed", "level", lv.String())
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\"level\":%q}\n", LogLevel().String())
}

func init() {
	// Every debug listener serves the process-wide ring and level control;
	// both resolve per request so Setup's sizing takes effect immediately.
	RegisterDebug("GET /v1/logs", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serveLogs(DefaultLogRing(), w, r)
	}))
	RegisterDebug("GET /v1/loglevel", http.HandlerFunc(serveLogLevel))
	RegisterDebug("PUT /v1/loglevel", http.HandlerFunc(serveLogLevel))
}
