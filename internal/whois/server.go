package whois

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"stalecert/internal/dnsname"
	"stalecert/internal/obs"
)

// Port-43 server metrics, labelled by query outcome.
var (
	mQueryOK      = obs.Default().Counter("whois_queries_total", "outcome", "ok")
	mQueryNoMatch = obs.Default().Counter("whois_queries_total", "outcome", "no_match")
	mQueryInvalid = obs.Default().Counter("whois_queries_total", "outcome", "invalid")
)

// Server answers WHOIS queries over TCP in the port-43 style: the client
// sends one domain name terminated by CRLF, the server writes the record and
// closes the connection.
type Server struct {
	source Source

	mu       sync.Mutex
	listener net.Listener
	closed   bool
	wg       sync.WaitGroup
}

// NewServer creates a server over a source.
func NewServer(source Source) *Server {
	return &Server{source: source}
}

// Start listens on addr ("127.0.0.1:0" for ephemeral) and serves until Close.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("whois: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Shutdown closes the listener and waits for in-flight connections like
// Close, but gives up waiting (the listener stays closed) when ctx expires —
// the net/http-style graceful drain for the port-43 surface.
func (s *Server) Shutdown(ctx context.Context) error {
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	line, err := bufio.NewReader(io.LimitReader(conn, 1024)).ReadString('\n')
	if err != nil && line == "" {
		return
	}
	query := dnsname.Canonical(strings.TrimSpace(line))
	if query == "" || dnsname.Check(query, false) != nil {
		mQueryInvalid.Inc()
		_, _ = io.WriteString(conn, "Invalid query.\n")
		return
	}
	rec, ok := s.source.WhoisLookup(query)
	if !ok {
		mQueryNoMatch.Inc()
		_, _ = io.WriteString(conn, NotFoundResponse)
		return
	}
	mQueryOK.Inc()
	_, _ = io.WriteString(conn, rec.Format())
}

// ErrNoMatch is returned by Query for unregistered domains.
var ErrNoMatch = errors.New("whois: no match for domain")

// Query performs one WHOIS lookup against addr and parses the response.
func Query(ctx context.Context, addr, domain string) (Record, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return Record{}, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	} else {
		_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	}
	if _, err := fmt.Fprintf(conn, "%s\r\n", domain); err != nil {
		return Record{}, err
	}
	raw, err := io.ReadAll(io.LimitReader(conn, 64<<10))
	if err != nil {
		return Record{}, err
	}
	body := string(raw)
	if strings.HasPrefix(body, "No match") {
		return Record{}, ErrNoMatch
	}
	if strings.HasPrefix(body, "Invalid") {
		return Record{}, fmt.Errorf("whois: server rejected query %q", domain)
	}
	return Parse(body)
}
