// Package whois implements the WHOIS substrate: thin registry records in
// Verisign-style text form, a port-43-flavoured TCP server and client, a
// response parser, and the bulk archive of (domain, registry creation date)
// observations the paper's registrant-change pipeline joins against CT.
//
// Only "thin" fields — the ones controlled by the registry rather than the
// registrar — are modelled, matching the paper's decision to trust only
// those (§4.2).
package whois

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"stalecert/internal/dnsname"
	"stalecert/internal/registry"
	"stalecert/internal/simtime"
)

// Record is a thin WHOIS record: registry-controlled fields only.
type Record struct {
	Domain      string
	Registrar   string
	Created     simtime.Day
	Expires     simtime.Day
	Status      string // EPP-ish status ("ok", "redemptionPeriod", ...)
	NameServers []string
}

// Format renders the record in the key: value layout registries emit.
func (r Record) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Domain Name: %s\n", strings.ToUpper(r.Domain))
	fmt.Fprintf(&b, "Registrar: %s\n", r.Registrar)
	fmt.Fprintf(&b, "Creation Date: %sT00:00:00Z\n", r.Created)
	fmt.Fprintf(&b, "Registry Expiry Date: %sT00:00:00Z\n", r.Expires)
	fmt.Fprintf(&b, "Domain Status: %s\n", r.Status)
	for _, ns := range r.NameServers {
		fmt.Fprintf(&b, "Name Server: %s\n", strings.ToUpper(ns))
	}
	b.WriteString(">>> Last update of whois database <<<\n")
	return b.String()
}

// Parse reads a Format-style response back into a Record. Unknown lines are
// ignored, mirroring how real WHOIS parsers must behave; missing creation
// date is an error since the pipeline depends on it.
func Parse(text string) (Record, error) {
	var r Record
	haveCreated := false
	for _, line := range strings.Split(text, "\n") {
		key, value, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		switch key {
		case "Domain Name":
			r.Domain = dnsname.Canonical(value)
		case "Registrar":
			r.Registrar = value
		case "Creation Date":
			d, err := parseWhoisDate(value)
			if err != nil {
				return Record{}, fmt.Errorf("whois: creation date: %w", err)
			}
			r.Created = d
			haveCreated = true
		case "Registry Expiry Date":
			d, err := parseWhoisDate(value)
			if err != nil {
				return Record{}, fmt.Errorf("whois: expiry date: %w", err)
			}
			r.Expires = d
		case "Domain Status":
			r.Status = value
		case "Name Server":
			r.NameServers = append(r.NameServers, dnsname.Canonical(value))
		}
	}
	if r.Domain == "" {
		return Record{}, fmt.Errorf("whois: no domain name in response")
	}
	if !haveCreated {
		return Record{}, fmt.Errorf("whois: no creation date in response")
	}
	return r, nil
}

func parseWhoisDate(s string) (simtime.Day, error) {
	// Accept "2016-01-02T00:00:00Z" and bare "2016-01-02".
	if i := strings.IndexByte(s, 'T'); i >= 0 {
		s = s[:i]
	}
	return simtime.Parse(s)
}

// NotFoundResponse is the body returned for unregistered domains.
const NotFoundResponse = "No match for domain.\n"

// Source supplies WHOIS records; the registry adapter is the usual one.
type Source interface {
	WhoisLookup(domain string) (Record, bool)
}

// RegistrySource adapts a registry.Registry into a WHOIS source.
type RegistrySource struct {
	Registry *registry.Registry
	// NameServers optionally supplies per-domain NS data for the record.
	NameServers func(domain string) []string
}

// WhoisLookup implements Source over the registry's current state.
func (s *RegistrySource) WhoisLookup(domain string) (Record, bool) {
	reg, status, ok := s.Registry.Lookup(domain)
	if !ok {
		return Record{}, false
	}
	r := Record{
		Domain:    reg.Domain,
		Registrar: reg.Registrar,
		Created:   reg.Created,
		Expires:   reg.Expires,
		Status:    eppStatus(status),
	}
	if s.NameServers != nil {
		r.NameServers = s.NameServers(domain)
	}
	return r, true
}

func eppStatus(s registry.Status) string {
	switch s {
	case registry.StatusActive:
		return "ok"
	case registry.StatusGrace:
		return "autoRenewPeriod"
	case registry.StatusRedemption:
		return "redemptionPeriod"
	case registry.StatusPendingDelete:
		return "pendingDelete"
	}
	return "unknown"
}

// Archive is the bulk historical WHOIS dataset: for every domain, the set of
// distinct registry creation dates observed across collection runs. Each
// creation date after the first is a public re-registration — the paper's
// registrant-change signal.
type Archive struct {
	mu sync.RWMutex
	// created[domain] = sorted distinct creation dates
	created map[string][]simtime.Day
	rows    int
}

// NewArchive creates an empty archive.
func NewArchive() *Archive {
	return &Archive{created: make(map[string][]simtime.Day)}
}

// Observe records one WHOIS observation (one row of the bulk dataset).
func (a *Archive) Observe(domain string, created simtime.Day) {
	domain = dnsname.Canonical(domain)
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rows++
	dates := a.created[domain]
	i := sort.Search(len(dates), func(i int) bool { return dates[i] >= created })
	if i < len(dates) && dates[i] == created {
		return
	}
	dates = append(dates, 0)
	copy(dates[i+1:], dates[i:])
	dates[i] = created
	a.created[domain] = dates
}

// ObserveRecord records a full WHOIS record.
func (a *Archive) ObserveRecord(r Record) { a.Observe(r.Domain, r.Created) }

// Rows returns the raw observation count (dataset-size accounting).
func (a *Archive) Rows() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.rows
}

// Domains returns the number of distinct domains observed.
func (a *Archive) Domains() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.created)
}

// CreationDates returns the distinct creation dates seen for a domain,
// ascending.
func (a *Archive) CreationDates(domain string) []simtime.Day {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return append([]simtime.Day(nil), a.created[dnsname.Canonical(domain)]...)
}

// ReRegistration is a detected registrant change: the domain was observed
// with a new registry creation date.
type ReRegistration struct {
	Domain string
	// NewCreation is the creation date of the re-registration.
	NewCreation simtime.Day
	// PrevCreation is the creation date of the prior registration.
	PrevCreation simtime.Day
}

// ReRegistrations lists every re-registration event in the archive, sorted
// by (domain, newCreation). A domain observed with n distinct creation dates
// yields n-1 events.
func (a *Archive) ReRegistrations() []ReRegistration {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var out []ReRegistration
	for domain, dates := range a.created {
		for i := 1; i < len(dates); i++ {
			out = append(out, ReRegistration{Domain: domain, NewCreation: dates[i], PrevCreation: dates[i-1]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Domain != out[j].Domain {
			return out[i].Domain < out[j].Domain
		}
		return out[i].NewCreation < out[j].NewCreation
	})
	return out
}
