package whois

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"stalecert/internal/registry"
	"stalecert/internal/simtime"
)

func TestFormatParseRoundTrip(t *testing.T) {
	r := Record{
		Domain:      "example.com",
		Registrar:   "GoDaddy.com, LLC",
		Created:     simtime.MustParse("2016-03-10"),
		Expires:     simtime.MustParse("2017-03-10"),
		Status:      "ok",
		NameServers: []string{"ns1.hoster.net", "ns2.hoster.net"},
	}
	got, err := Parse(r.Format())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, r)
	}
}

func TestParseToleratesUnknownLinesAndCase(t *testing.T) {
	text := "Some-Banner: hello\nDomain Name: EXAMPLE.COM\nRandom: junk\nCreation Date: 2019-05-01T00:00:00Z\n"
	got, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if got.Domain != "example.com" || got.Created != simtime.MustParse("2019-05-01") {
		t.Fatalf("parsed = %+v", got)
	}
}

func TestParseBareDates(t *testing.T) {
	got, err := Parse("Domain Name: a.com\nCreation Date: 2020-01-02\n")
	if err != nil {
		t.Fatal(err)
	}
	if got.Created != simtime.MustParse("2020-01-02") {
		t.Fatalf("created = %v", got.Created)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"Creation Date: 2020-01-01\n",            // no domain
		"Domain Name: a.com\n",                   // no creation date
		"Domain Name: a.com\nCreation Date: x\n", // bad date
	}
	for _, text := range cases {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) accepted", text)
		}
	}
}

func TestRegistrySource(t *testing.T) {
	reg := registry.New("com")
	if _, err := reg.Register("alive.com", "alice", "NameCheap", 100, 1); err != nil {
		t.Fatal(err)
	}
	src := &RegistrySource{Registry: reg, NameServers: func(string) []string { return []string{"ns1.x.net"} }}
	rec, ok := src.WhoisLookup("alive.com")
	if !ok || rec.Created != 100 || rec.Status != "ok" || len(rec.NameServers) != 1 {
		t.Fatalf("lookup = %+v %v", rec, ok)
	}
	if _, ok := src.WhoisLookup("dead.com"); ok {
		t.Fatal("unregistered domain found")
	}
	reg.Tick(500) // grace
	rec, _ = src.WhoisLookup("alive.com")
	if rec.Status != "autoRenewPeriod" {
		t.Fatalf("status = %q", rec.Status)
	}
}

func TestServerClientEndToEnd(t *testing.T) {
	reg := registry.New("com")
	if _, err := reg.Register("wire.com", "alice", "GoDaddy", 200, 1); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(&RegistrySource{Registry: reg})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rec, err := Query(ctx, addr.String(), "wire.com")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Domain != "wire.com" || rec.Created != 200 {
		t.Fatalf("record = %+v", rec)
	}
	if _, err := Query(ctx, addr.String(), "absent.com"); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("no-match: %v", err)
	}
	if _, err := Query(ctx, addr.String(), "bad query!"); err == nil {
		t.Fatal("invalid query accepted")
	}
}

func TestArchiveReRegistrations(t *testing.T) {
	a := NewArchive()
	// Daily observations: same creation date repeated, then a re-registration.
	for day := 0; day < 5; day++ {
		a.Observe("stable.com", 100)
		a.Observe("flipped.com", 100)
	}
	for day := 0; day < 5; day++ {
		a.Observe("flipped.com", 600) // re-registered
	}
	a.Observe("thrice.com", 10)
	a.Observe("thrice.com", 500)
	a.Observe("thrice.com", 900)

	if a.Rows() != 18 {
		t.Fatalf("rows = %d", a.Rows())
	}
	if a.Domains() != 3 {
		t.Fatalf("domains = %d", a.Domains())
	}
	if got := a.CreationDates("flipped.com"); len(got) != 2 || got[0] != 100 || got[1] != 600 {
		t.Fatalf("dates = %v", got)
	}
	events := a.ReRegistrations()
	if len(events) != 3 {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Domain != "flipped.com" || events[0].NewCreation != 600 || events[0].PrevCreation != 100 {
		t.Fatalf("event[0] = %+v", events[0])
	}
	if events[1].Domain != "thrice.com" || events[2].NewCreation != 900 {
		t.Fatalf("thrice events = %+v", events[1:])
	}
}

func TestArchiveOutOfOrderObservations(t *testing.T) {
	a := NewArchive()
	// Observations can arrive out of order (bulk dataset merges sources);
	// creation-date ordering must still be chronological.
	a.Observe("x.com", 900)
	a.Observe("x.com", 100)
	a.Observe("x.com", 500)
	got := a.CreationDates("x.com")
	want := []simtime.Day{100, 500, 900}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dates = %v", got)
	}
}

func TestQuickArchiveDatesSortedUnique(t *testing.T) {
	f := func(days []int16) bool {
		a := NewArchive()
		for _, d := range days {
			a.Observe("p.com", simtime.Day(d))
		}
		dates := a.CreationDates("p.com")
		for i := 1; i < len(dates); i++ {
			if dates[i] <= dates[i-1] {
				return false
			}
		}
		return len(a.ReRegistrations()) == max(0, len(dates)-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFormatParseRoundTrip(t *testing.T) {
	f := func(created, expires int16, nsCount uint8) bool {
		r := Record{
			Domain:    "prop.com",
			Registrar: "R",
			Created:   simtime.Day(created),
			Expires:   simtime.Day(expires),
			Status:    "ok",
		}
		for i := 0; i < int(nsCount)%4; i++ {
			r.NameServers = append(r.NameServers, "ns"+string(rune('a'+i))+".x.net")
		}
		got, err := Parse(r.Format())
		return err == nil && reflect.DeepEqual(r, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
