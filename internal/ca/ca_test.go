package ca

import (
	"errors"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"stalecert/internal/crl"
	"stalecert/internal/ctlog"
	"stalecert/internal/dnssim"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

func keyMinter() func() x509sim.KeyID {
	var n atomic.Uint64
	return func() x509sim.KeyID { return x509sim.KeyID(n.Add(1)) }
}

func newTestCA(t *testing.T, p Profile, v Validator) (*CA, *ctlog.Collection) {
	t.Helper()
	logs := ctlog.NewCollection(ctlog.New("test-log", ctlog.Shard{}))
	return New(Config{Profile: p, Validator: v, Logs: logs, NewKey: keyMinter()}), logs
}

func TestMaxLifetimeEras(t *testing.T) {
	if got := MaxLifetime(simtime.MustParse("2016-01-01")); got != 1095 {
		t.Fatalf("2016 max = %d", got)
	}
	if got := MaxLifetime(simtime.MustParse("2019-01-01")); got != 825 {
		t.Fatalf("2019 max = %d", got)
	}
	if got := MaxLifetime(simtime.MustParse("2021-01-01")); got != 398 {
		t.Fatalf("2021 max = %d", got)
	}
}

func TestProfileLifetimeClamping(t *testing.T) {
	p := Profile{DefaultLifetime: 825}
	if got := p.Lifetime(simtime.MustParse("2021-06-01")); got != 398 {
		t.Fatalf("clamped = %d", got)
	}
	if got := p.Lifetime(simtime.MustParse("2019-06-01")); got != 825 {
		t.Fatalf("unclamped = %d", got)
	}
	le := Profile{DefaultLifetime: 90}
	if got := le.Lifetime(simtime.MustParse("2021-06-01")); got != 90 {
		t.Fatalf("LE lifetime = %d", got)
	}
}

func TestDirectoryLookup(t *testing.T) {
	d := NewDirectory()
	p, ok := d.Profile(IssuerLetsEncryptX3)
	if !ok || p.Name != "Let's Encrypt X3" || !p.Automated {
		t.Fatalf("profile = %+v", p)
	}
	if d.Name(IssuerGoDaddy) != "GoDaddy" {
		t.Fatal(d.Name(IssuerGoDaddy))
	}
	if d.Name(999) != "issuer-999" {
		t.Fatal(d.Name(999))
	}
	if len(d.All()) != 10 {
		t.Fatalf("profiles = %d", len(d.All()))
	}
}

func TestIssueBasics(t *testing.T) {
	p := Profile{ID: IssuerGoDaddy, Name: "GoDaddy", DefaultLifetime: 398}
	c, logs := newTestCA(t, p, nil)
	day := simtime.MustParse("2021-01-01")
	cert, err := c.Issue(Request{Account: "alice", Names: []string{"example.com", "www.example.com"}}, day)
	if err != nil {
		t.Fatal(err)
	}
	if cert.NotBefore != day || cert.LifetimeDays() != 398 {
		t.Fatalf("cert validity = %s..%s (%d days)", cert.NotBefore, cert.NotAfter, cert.LifetimeDays())
	}
	if cert.Issuer != IssuerGoDaddy || cert.Key == 0 {
		t.Fatalf("cert = %+v", cert)
	}
	// Precert + final submitted, deduping to one corpus cert.
	certs, stats := logs.Dedup()
	if stats.RawEntries != 2 || len(certs) != 1 {
		t.Fatalf("CT raw=%d unique=%d", stats.RawEntries, len(certs))
	}
	if certs[0].Precert {
		t.Fatal("dedup kept precert")
	}
	if c.IssuedCount() != 1 {
		t.Fatal("issued count")
	}
}

func TestIssueSerialAndKeyUniqueness(t *testing.T) {
	p := Profile{ID: IssuerSectigo, Name: "Sectigo", DefaultLifetime: 398, ActiveFrom: 0}
	c, _ := newTestCA(t, p, nil)
	seenSerial := map[x509sim.SerialNumber]bool{}
	seenKey := map[x509sim.KeyID]bool{}
	for i := 0; i < 50; i++ {
		cert, err := c.Issue(Request{Account: "a", Names: []string{"x.com"}}, 3000)
		if err != nil {
			t.Fatal(err)
		}
		if seenSerial[cert.Serial] || seenKey[cert.Key] {
			t.Fatal("serial or key reused")
		}
		seenSerial[cert.Serial] = true
		seenKey[cert.Key] = true
	}
}

func TestIssueRespectsActiveFrom(t *testing.T) {
	p := Profile{ID: IssuerLetsEncryptX3, Name: "LE", DefaultLifetime: 90, ActiveFrom: simtime.MustParse("2015-12-01")}
	c, _ := newTestCA(t, p, nil)
	if _, err := c.Issue(Request{Account: "a", Names: []string{"x.com"}}, simtime.MustParse("2014-01-01")); !errors.Is(err, ErrNotActive) {
		t.Fatalf("pre-launch issuance: %v", err)
	}
}

func TestIssueValidationAndReuse(t *testing.T) {
	calls := 0
	v := ValidatorFunc(func(domain, account string, day simtime.Day) error {
		calls++
		if account != "owner" {
			return errors.New("not the owner")
		}
		return nil
	})
	p := Profile{ID: IssuerLetsEncryptX3, Name: "LE", DefaultLifetime: 90}
	c, _ := newTestCA(t, p, v)

	if _, err := c.Issue(Request{Account: "mallory", Names: []string{"victim.com"}}, 100); !errors.Is(err, ErrValidation) {
		t.Fatalf("invalid account issued: %v", err)
	}
	if _, err := c.Issue(Request{Account: "owner", Names: []string{"victim.com"}}, 100); err != nil {
		t.Fatal(err)
	}
	calls = 0
	// Within the reuse window: no re-validation.
	if _, err := c.Issue(Request{Account: "owner", Names: []string{"victim.com"}}, 100+ReuseWindow); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("validator called %d times within reuse window", calls)
	}
	// Beyond the window: re-validation happens.
	if _, err := c.Issue(Request{Account: "owner", Names: []string{"victim.com"}}, 101+ReuseWindow); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("validator called %d times past reuse window", calls)
	}
}

func TestSkipValidationFailsPastReuseWindow(t *testing.T) {
	p := Profile{ID: IssuerGTS, Name: "GTS", DefaultLifetime: 90}
	c, _ := newTestCA(t, p, nil)
	if _, err := c.Issue(Request{Account: "a", Names: []string{"x.com"}}, 0); err != nil {
		t.Fatal(err)
	}
	// Automation with SkipValidation works inside the window...
	if _, err := c.Issue(Request{Account: "a", Names: []string{"x.com"}, SkipValidation: true}, 200); err != nil {
		t.Fatal(err)
	}
	// ...but fails beyond it.
	if _, err := c.Issue(Request{Account: "a", Names: []string{"x.com"}, SkipValidation: true}, 200+ReuseWindow+1); !errors.Is(err, ErrValidation) {
		t.Fatalf("stale reuse: %v", err)
	}
}

func TestWildcardValidatesBaseDomain(t *testing.T) {
	var got []string
	v := ValidatorFunc(func(domain, _ string, _ simtime.Day) error {
		got = append(got, domain)
		return nil
	})
	c, _ := newTestCA(t, Profile{ID: 1, Name: "X", DefaultLifetime: 90}, v)
	if _, err := c.Issue(Request{Account: "a", Names: []string{"*.example.com"}}, 0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "example.com" {
		t.Fatalf("validated %v", got)
	}
}

func TestRenewKeepsNamesAndKey(t *testing.T) {
	c, _ := newTestCA(t, Profile{ID: 1, Name: "X", DefaultLifetime: 90}, nil)
	orig, err := c.Issue(Request{Account: "a", Names: []string{"a.com", "b.com"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	renewed, err := c.Renew(orig, "a", 80)
	if err != nil {
		t.Fatal(err)
	}
	if renewed.Key != orig.Key || renewed.Serial == orig.Serial {
		t.Fatalf("renewal key/serial wrong: %+v", renewed)
	}
	if renewed.NotBefore != 80 {
		t.Fatalf("renewal notBefore = %v", renewed.NotBefore)
	}
}

func TestRevokeReasonDowngradeBeforeReportingDay(t *testing.T) {
	reportFrom := simtime.MustParse("2022-07-01")
	p := Profile{ID: IssuerLetsEncryptX3, Name: "LE", DefaultLifetime: 90, ReportsKeyCompromise: reportFrom}
	c, _ := newTestCA(t, p, nil)
	cert, err := c.Issue(Request{Account: "a", Names: []string{"x.com"}}, reportFrom-100)
	if err != nil {
		t.Fatal(err)
	}
	c.Revoke(cert, reportFrom-50, crl.KeyCompromise)
	e, ok := c.Authority().IsRevoked(cert.DedupKey())
	if !ok || e.Reason != crl.Unspecified {
		t.Fatalf("pre-reporting revocation = %+v", e)
	}

	cert2, err := c.Issue(Request{Account: "a", Names: []string{"y.com"}}, reportFrom)
	if err != nil {
		t.Fatal(err)
	}
	c.Revoke(cert2, reportFrom+10, crl.KeyCompromise)
	e2, _ := c.Authority().IsRevoked(cert2.DedupKey())
	if e2.Reason != crl.KeyCompromise {
		t.Fatalf("post-reporting revocation = %+v", e2)
	}
}

func TestDNS01ChallengeOverWire(t *testing.T) {
	zone := dnssim.NewZone("com")
	store := dnssim.NewStore()
	store.AddZone(zone)
	srv := dnssim.NewServer(store)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	v := WireDNS01(&dnssim.Resolver{ServerAddr: addr.String(), Timeout: time.Second})
	c, _ := newTestCA(t, Profile{ID: 2, Name: "ACME CA", DefaultLifetime: 90}, v)

	// Without the record, validation fails.
	if _, err := c.Issue(Request{Account: "alice", Names: []string{"site.com"}}, 10); !errors.Is(err, ErrValidation) {
		t.Fatalf("issued without challenge: %v", err)
	}
	// Present the challenge and retry.
	if err := SolveDNS01(zone, "site.com", "alice"); err != nil {
		t.Fatal(err)
	}
	cert, err := c.Issue(Request{Account: "alice", Names: []string{"site.com"}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.HasName("site.com") {
		t.Fatal("issued cert missing name")
	}
	// Another account cannot ride alice's token.
	if _, err := c.Issue(Request{Account: "eve", Names: []string{"site.com"}}, 10); !errors.Is(err, ErrValidation) {
		t.Fatalf("token cross-account reuse: %v", err)
	}
	CleanupDNS01(zone, "site.com")
	if len(zone.Lookup("_acme-challenge.site.com", dnssim.TypeTXT)) != 0 {
		t.Fatal("challenge record not cleaned up")
	}
}

func TestHTTP01Challenge(t *testing.T) {
	host := NewChallengeHost()
	web := httptest.NewServer(host)
	defer web.Close()

	v := &HTTP01Validator{
		Endpoint: func(domain string) (string, error) { return web.URL, nil },
		Client:   web.Client(),
	}
	c, _ := newTestCA(t, Profile{ID: 3, Name: "HTTP CA", DefaultLifetime: 90}, v)

	if _, err := c.Issue(Request{Account: "bob", Names: []string{"web.com"}}, 5); !errors.Is(err, ErrValidation) {
		t.Fatalf("issued without token: %v", err)
	}
	host.Present("web.com", "bob")
	if _, err := c.Issue(Request{Account: "bob", Names: []string{"web.com"}}, 5); err != nil {
		t.Fatal(err)
	}
	host.Remove("web.com", "bob")
	if _, err := c.Issue(Request{Account: "carol", Names: []string{"web.com"}}, 5); !errors.Is(err, ErrValidation) {
		t.Fatalf("removed token still validates: %v", err)
	}
}

func TestTokenDeterministicAndDistinct(t *testing.T) {
	a := Token("x.com", "alice")
	if a != Token("x.com", "alice") {
		t.Fatal("token not deterministic")
	}
	if a == Token("x.com", "bob") || a == Token("y.com", "alice") {
		t.Fatal("token collision across account/domain")
	}
	if len(a) != 43 {
		t.Fatalf("token length = %d", len(a))
	}
}
