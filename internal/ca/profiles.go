// Package ca implements the certificate-authority substrate: issuer
// profiles for the CAs that dominate the paper's figures, domain-validated
// issuance with ACME-style challenge verification against the DNS substrate,
// renewal automation, lifetime policy by era, and revocation publishing into
// the CRL substrate.
package ca

import (
	"sort"

	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

// Era boundaries for maximum DV certificate lifetimes (§6 of the paper).
var (
	// Era825 begins 2018-03-01: CA/Browser Forum ballot 193 (825 days).
	Era825 = simtime.MustParse("2018-03-01")
	// Era398 begins 2020-09-01: browser-enforced 398-day maximum.
	Era398 = simtime.MustParse("2020-09-01")
)

// MaxLifetime returns the ecosystem-wide maximum DV lifetime in days at a
// given issuance day.
func MaxLifetime(day simtime.Day) int {
	switch {
	case day >= Era398:
		return 398
	case day >= Era825:
		return 825
	default:
		return 1095 // pre-2018 three-year certificates
	}
}

// Profile describes one issuing CA.
type Profile struct {
	ID   x509sim.IssuerID
	Name string
	// DefaultLifetime is the CA's usual issuance lifetime in days (clamped
	// to the era maximum at issuance time). 0 means "issue at era maximum".
	DefaultLifetime int
	// Automated marks ACME-automated CAs that auto-renew unattended.
	Automated bool
	// ManagedTLS marks CAs that exist to serve a CDN/hosting provider.
	ManagedTLS bool
	// CRLFailRate is the probability a daily CRL fetch is blocked by scrape
	// protection (Appendix B).
	CRLFailRate float64
	// ReportsKeyCompromise gives the day the CA began publishing
	// keyCompromise revocation reasons (NoDay = always did).
	ReportsKeyCompromise simtime.Day
	// Share is the CA's relative issuance volume weight in the simulator.
	Share float64
	// ActiveFrom bounds when the CA exists.
	ActiveFrom simtime.Day
}

// Lifetime returns the profile's issuance lifetime at a given day, clamped
// to the era maximum.
func (p Profile) Lifetime(day simtime.Day) int {
	maxDays := MaxLifetime(day)
	if p.DefaultLifetime == 0 || p.DefaultLifetime > maxDays {
		return maxDays
	}
	return p.DefaultLifetime
}

// Canonical issuer IDs for the CAs named in the paper's figures and text.
// IDs are stable: they appear in serialized certificates.
const (
	IssuerComodoDV x509sim.IssuerID = iota + 1 // "COMODO ECC DV Secure Server CA 2"
	IssuerLetsEncryptX3
	IssuerCPanel
	IssuerCloudflareECC // "CloudFlare ECC CA-2"
	IssuerGoDaddy
	IssuerEntrust
	IssuerSectigo
	IssuerDigiCert
	IssuerGlobalSign
	IssuerGTS // Google Trust Services
)

// builtinProfiles is the default CA landscape. Lifetimes and behaviours
// follow the paper: Let's Encrypt, cPanel and GTS self-enforce 90 days;
// GoDaddy/Entrust/Sectigo issue at the era maximum; Cloudflare's CA backs
// its managed TLS; COMODO issued the 2018-era cruise-liner certificates.
var builtinProfiles = []Profile{
	{ID: IssuerComodoDV, Name: "COMODO ECC DV Secure Server CA 2", DefaultLifetime: 365, ManagedTLS: true, CRLFailRate: 0.004, Share: 0.10, ActiveFrom: simtime.MustParse("2014-01-01"), ReportsKeyCompromise: simtime.NoDay},
	{ID: IssuerLetsEncryptX3, Name: "Let's Encrypt X3", DefaultLifetime: 90, Automated: true, CRLFailRate: 0, Share: 0.38, ActiveFrom: simtime.MustParse("2015-12-01"), ReportsKeyCompromise: simtime.MustParse("2022-07-01")},
	{ID: IssuerCPanel, Name: "cPanel, Inc. CA", DefaultLifetime: 90, Automated: true, ManagedTLS: true, CRLFailRate: 0, Share: 0.08, ActiveFrom: simtime.MustParse("2016-03-01"), ReportsKeyCompromise: simtime.NoDay},
	{ID: IssuerCloudflareECC, Name: "CloudFlare ECC CA-2", DefaultLifetime: 365, Automated: true, ManagedTLS: true, CRLFailRate: 0, Share: 0.12, ActiveFrom: simtime.MustParse("2019-01-01"), ReportsKeyCompromise: simtime.NoDay},
	{ID: IssuerGoDaddy, Name: "GoDaddy", DefaultLifetime: 398, CRLFailRate: 0.002, Share: 0.09, ActiveFrom: 0, ReportsKeyCompromise: simtime.NoDay},
	{ID: IssuerEntrust, Name: "Entrust", DefaultLifetime: 398, CRLFailRate: 0.015, Share: 0.04, ActiveFrom: 0, ReportsKeyCompromise: simtime.NoDay},
	{ID: IssuerSectigo, Name: "Sectigo", DefaultLifetime: 398, CRLFailRate: 0.004, Share: 0.10, ActiveFrom: simtime.MustParse("2018-11-01"), ReportsKeyCompromise: simtime.NoDay},
	{ID: IssuerDigiCert, Name: "DigiCert", DefaultLifetime: 397, CRLFailRate: 0.013, Share: 0.12, ActiveFrom: 0, ReportsKeyCompromise: simtime.NoDay},
	{ID: IssuerGlobalSign, Name: "GlobalSign", DefaultLifetime: 397, CRLFailRate: 0.026, Share: 0.05, ActiveFrom: 0, ReportsKeyCompromise: simtime.NoDay},
	{ID: IssuerGTS, Name: "Google Trust Services", DefaultLifetime: 90, Automated: true, CRLFailRate: 0, Share: 0.02, ActiveFrom: simtime.MustParse("2017-06-01"), ReportsKeyCompromise: simtime.NoDay},
}

// Directory resolves issuer IDs to profiles.
type Directory struct {
	byID map[x509sim.IssuerID]Profile
}

// NewDirectory builds a directory from profiles (builtin when none given).
func NewDirectory(profiles ...Profile) *Directory {
	if len(profiles) == 0 {
		profiles = builtinProfiles
	}
	d := &Directory{byID: make(map[x509sim.IssuerID]Profile, len(profiles))}
	for _, p := range profiles {
		d.byID[p.ID] = p
	}
	return d
}

// Profile returns the profile for an issuer ID.
func (d *Directory) Profile(id x509sim.IssuerID) (Profile, bool) {
	p, ok := d.byID[id]
	return p, ok
}

// Name returns the issuer's display name ("issuer-N" if unknown).
func (d *Directory) Name(id x509sim.IssuerID) string {
	if p, ok := d.byID[id]; ok {
		return p.Name
	}
	return "issuer-" + itoa(int(id))
}

// All returns every profile sorted by ID.
func (d *Directory) All() []Profile {
	out := make([]Profile, 0, len(d.byID))
	for _, p := range d.byID {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
