package ca

import (
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"stalecert/internal/dnssim"
	"stalecert/internal/resil"
	"stalecert/internal/simtime"
)

// This file implements the ACME-flavoured DV challenge machinery (§2.2,
// Figure 1): the CA derives a nonce (token) for a (domain, account) pair,
// the subscriber provisions it in DNS or HTTP, and the CA verifies it
// through the network before issuing.

// Token derives the deterministic challenge token for a (domain, account)
// pair. Determinism replaces the random nonce so simulations are
// reproducible; unforgeability is preserved by the keyed hash.
func Token(domain, account string) string {
	m := hmac.New(sha256.New, []byte("acme-challenge-key"))
	io.WriteString(m, domain)
	m.Write([]byte{0})
	io.WriteString(m, account)
	return hex.EncodeToString(m.Sum(nil))[:43] // ACME tokens are 43 base64url chars
}

// ChallengeLabel is the DNS owner prefix for dns-01 challenges.
const ChallengeLabel = "_acme-challenge"

// WellKnownPath is the URL prefix for http-01 challenges.
const WellKnownPath = "/.well-known/acme-challenge/"

// DNS01Validator verifies dns-01 challenges: a TXT record at
// _acme-challenge.<domain> must carry the expected token. Query is
// injectable so the check can run over the wire (dnssim.Resolver) or
// directly against a zone store.
type DNS01Validator struct {
	Query func(name string, t dnssim.RRType) ([]dnssim.Record, error)
}

// WireDNS01 builds a DNS01Validator that queries over UDP.
func WireDNS01(r *dnssim.Resolver) *DNS01Validator {
	return &DNS01Validator{Query: func(name string, t dnssim.RRType) ([]dnssim.Record, error) {
		return r.Query(context.Background(), name, t)
	}}
}

// DirectDNS01 builds a DNS01Validator that reads a zone store in-process.
func DirectDNS01(store *dnssim.Store) *DNS01Validator {
	return &DNS01Validator{Query: func(name string, t dnssim.RRType) ([]dnssim.Record, error) {
		recs, rcode, _ := store.Resolve(dnssim.Question{Name: name, Type: t, Class: dnssim.ClassIN})
		if rcode != dnssim.RCodeNoError {
			return nil, fmt.Errorf("ca: dns rcode %v", rcode)
		}
		return recs, nil
	}}
}

// ValidateControl implements Validator.
func (v *DNS01Validator) ValidateControl(domain, account string, _ simtime.Day) error {
	want := Token(domain, account)
	recs, err := v.Query(ChallengeLabel+"."+domain, dnssim.TypeTXT)
	if err != nil {
		return fmt.Errorf("ca: dns-01 query: %w", err)
	}
	for _, r := range recs {
		if r.Data == want {
			return nil
		}
	}
	return fmt.Errorf("ca: dns-01 token not found for %q", domain)
}

// SolveDNS01 provisions the dns-01 TXT record for (domain, account) in the
// given zone — the subscriber side of the challenge.
func SolveDNS01(z *dnssim.Zone, domain, account string) error {
	return z.Add(dnssim.Record{
		Name: ChallengeLabel + "." + domain,
		Type: dnssim.TypeTXT,
		TTL:  60,
		Data: Token(domain, account),
	})
}

// CleanupDNS01 removes the challenge record after issuance.
func CleanupDNS01(z *dnssim.Zone, domain string) {
	z.Remove(ChallengeLabel+"."+domain, dnssim.TypeTXT, "")
}

// HTTP01Validator verifies http-01 challenges: an HTTP GET to
// http://<domain>/.well-known/acme-challenge/<token> must return the token.
// Endpoint maps a domain to the base URL of its web server (in production
// this is DNS + port 80; in the simulator it is the test server address).
// The fetch goes through the resilience stack: a flaky subscriber web server
// (the common case in the wild) is retried before the challenge fails.
type HTTP01Validator struct {
	Endpoint func(domain string) (string, error)
	Client   *http.Client

	once sync.Once
	rhc  *http.Client
}

// ValidateControl implements Validator.
func (v *HTTP01Validator) ValidateControl(domain, account string, _ simtime.Day) error {
	base, err := v.Endpoint(domain)
	if err != nil {
		return fmt.Errorf("ca: http-01 endpoint: %w", err)
	}
	token := Token(domain, account)
	v.once.Do(func() {
		v.rhc = resil.InstrumentClient(v.Client, resil.Options{Service: "acme-http01"})
	})
	resp, err := v.rhc.Get(base + WellKnownPath + token)
	if err != nil {
		return fmt.Errorf("ca: http-01 fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ca: http-01 status %d for %q", resp.StatusCode, domain)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1024))
	if err != nil {
		return err
	}
	if strings.TrimSpace(string(body)) != token {
		return fmt.Errorf("ca: http-01 token mismatch for %q", domain)
	}
	return nil
}

// ChallengeHost is the subscriber-side http-01 responder: an http.Handler
// serving provisioned tokens under the well-known path.
type ChallengeHost struct {
	mu     sync.RWMutex
	tokens map[string]bool
}

// NewChallengeHost creates an empty responder.
func NewChallengeHost() *ChallengeHost {
	return &ChallengeHost{tokens: make(map[string]bool)}
}

// Present provisions the token for (domain, account).
func (h *ChallengeHost) Present(domain, account string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.tokens[Token(domain, account)] = true
}

// Remove deprovisions the token.
func (h *ChallengeHost) Remove(domain, account string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.tokens, Token(domain, account))
}

// ServeHTTP implements http.Handler.
func (h *ChallengeHost) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasPrefix(r.URL.Path, WellKnownPath) {
		http.NotFound(w, r)
		return
	}
	token := strings.TrimPrefix(r.URL.Path, WellKnownPath)
	h.mu.RLock()
	ok := h.tokens[token]
	h.mu.RUnlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	_, _ = io.WriteString(w, token)
}
