package ca

import (
	"errors"
	"fmt"
	"sync"

	"stalecert/internal/crl"
	"stalecert/internal/ctlog"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

// Validator confirms a requester's control of a domain before issuance —
// the DV check of §2.2. Implementations include the ACME challenge
// validators in this package and the world simulator's ground-truth
// validator.
type Validator interface {
	ValidateControl(domain, account string, day simtime.Day) error
}

// ValidatorFunc adapts a function to Validator.
type ValidatorFunc func(domain, account string, day simtime.Day) error

// ValidateControl implements Validator.
func (f ValidatorFunc) ValidateControl(domain, account string, day simtime.Day) error {
	return f(domain, account, day)
}

// Issuance errors.
var (
	ErrValidation = errors.New("ca: domain validation failed")
	ErrNotActive  = errors.New("ca: CA not active at issuance day")
	ErrNoNames    = errors.New("ca: no names requested")
)

// ReuseWindow is the domain-validation reuse period: a CA may skip
// re-validation for an account that proved control within the last 398 days
// (§4.4 "domain validation reuse").
const ReuseWindow = 398

// CA issues certificates under one issuer profile. Safe for concurrent use.
type CA struct {
	profile   Profile
	validator Validator
	logs      *ctlog.Collection
	authority *crl.Authority

	mu         sync.Mutex
	nextSerial x509sim.SerialNumber
	nextKey    func() x509sim.KeyID
	// validated[account+"\x00"+domain] = last successful validation day
	validated map[string]simtime.Day
	issued    []*x509sim.Certificate
}

// Config wires a CA's dependencies.
type Config struct {
	Profile Profile
	// Validator checks domain control; nil means issuance always validates
	// (used by harnesses that model control externally).
	Validator Validator
	// Logs receives precertificate and final-certificate submissions; nil
	// disables CT submission.
	Logs *ctlog.Collection
	// Authority receives revocations; nil creates a private one.
	Authority *crl.Authority
	// NewKey mints subject keys; required.
	NewKey func() x509sim.KeyID
}

// New creates a CA.
func New(cfg Config) *CA {
	if cfg.NewKey == nil {
		panic("ca: Config.NewKey is required")
	}
	a := cfg.Authority
	if a == nil {
		a = crl.NewAuthority(cfg.Profile.Name)
	}
	return &CA{
		profile:   cfg.Profile,
		validator: cfg.Validator,
		logs:      cfg.Logs,
		authority: a,
		nextKey:   cfg.NewKey,
		validated: make(map[string]simtime.Day),
	}
}

// Profile returns the CA's profile.
func (c *CA) Profile() Profile { return c.profile }

// Authority returns the CA's revocation authority.
func (c *CA) Authority() *crl.Authority { return c.authority }

// IssuedCount returns how many certificates this CA has issued.
func (c *CA) IssuedCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.issued)
}

// Request describes one issuance.
type Request struct {
	Account string   // subscriber account performing the request
	Names   []string // SANs
	// Key optionally pins the subject key (0 mints a fresh key). Managed
	// TLS providers reuse one key across cruise-liner reissues.
	Key x509sim.KeyID
	// Lifetime overrides the profile lifetime in days (0 = profile default);
	// always clamped to the era maximum.
	Lifetime int
	// SkipValidation marks renewal-automation paths that rely on domain
	// validation reuse only when the reuse window has expired this forces an
	// error rather than silent re-validation.
	SkipValidation bool
}

// Issue validates control of every requested name (honouring the
// validation-reuse window) and issues the certificate at the given day,
// submitting a precertificate and the final certificate to CT.
func (c *CA) Issue(req Request, day simtime.Day) (*x509sim.Certificate, error) {
	if len(req.Names) == 0 {
		return nil, ErrNoNames
	}
	if day < c.profile.ActiveFrom {
		return nil, fmt.Errorf("%w: %s starts %s", ErrNotActive, c.profile.Name, c.profile.ActiveFrom)
	}
	for _, name := range req.Names {
		if err := c.validateName(name, req, day); err != nil {
			return nil, err
		}
	}
	lifetime := c.profile.Lifetime(day)
	if req.Lifetime > 0 {
		lifetime = req.Lifetime
		if maxDays := MaxLifetime(day); lifetime > maxDays {
			lifetime = maxDays
		}
	}
	c.mu.Lock()
	c.nextSerial++
	serial := c.nextSerial
	key := req.Key
	c.mu.Unlock()
	if key == 0 {
		key = c.nextKey()
	}
	cert, err := x509sim.New(serial, c.profile.ID, key, req.Names, day, day+simtime.Day(lifetime)-1)
	if err != nil {
		return nil, err
	}
	if c.logs != nil {
		pre := cert.Clone()
		pre.Precert = true
		c.logs.Submit(pre, day)
		final := cert.Clone()
		final.SCTCount = uint8(min(len(c.logs.Logs()), 3))
		c.logs.Submit(final, day)
	}
	c.mu.Lock()
	c.issued = append(c.issued, cert)
	c.mu.Unlock()
	return cert, nil
}

func (c *CA) validateName(name string, req Request, day simtime.Day) error {
	// Wildcard SANs validate control of the base domain.
	base := name
	if len(base) > 2 && base[0] == '*' && base[1] == '.' {
		base = base[2:]
	}
	key := req.Account + "\x00" + base
	c.mu.Lock()
	last, ok := c.validated[key]
	c.mu.Unlock()
	if ok && day-last <= ReuseWindow {
		return nil // domain validation reuse
	}
	if req.SkipValidation {
		return fmt.Errorf("%w: reuse window expired for %q", ErrValidation, base)
	}
	if c.validator != nil {
		if err := c.validator.ValidateControl(base, req.Account, day); err != nil {
			return fmt.Errorf("%w: %q: %v", ErrValidation, base, err)
		}
	}
	c.mu.Lock()
	c.validated[key] = day
	c.mu.Unlock()
	return nil
}

// Renew reissues an existing certificate for a fresh lifetime with the same
// names and key, relying on validation reuse when possible.
func (c *CA) Renew(cert *x509sim.Certificate, account string, day simtime.Day) (*x509sim.Certificate, error) {
	return c.Issue(Request{Account: account, Names: cert.Names, Key: cert.Key}, day)
}

// Revoke publishes a revocation for a certificate this CA issued. Reason
// keyCompromise is downgraded to unspecified before the profile's reporting
// start day — reproducing Let's Encrypt only publishing key compromise from
// July 2022 (Figure 4).
func (c *CA) Revoke(cert *x509sim.Certificate, day simtime.Day, reason crl.Reason) {
	if reason == crl.KeyCompromise &&
		c.profile.ReportsKeyCompromise != simtime.NoDay &&
		day < c.profile.ReportsKeyCompromise {
		reason = crl.Unspecified
	}
	c.authority.Revoke(cert.Issuer, cert.Serial, day, reason)
}
