package resil

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"stalecert/internal/obs"
)

// DefaultMaxBodyBytes bounds how much of a response the transport buffers to
// make attempts replayable (matches the largest consumer, the CRL fetcher).
const DefaultMaxBodyBytes = 64 << 20

// Transport is the resilient http.RoundTripper: per-peer circuit breaking,
// policy-driven retries with exponential backoff and Retry-After honoring,
// and torn-body recovery (responses are buffered, so a connection cut
// mid-body is retried like any other transient failure instead of surfacing
// to the decoder).
//
// Semantics are preserved for callers: the final attempt's response —
// including a final 429/5xx after the retry budget is spent — is returned
// with its body intact, so status-code handling in existing clients keeps
// working; only the transient failures in between disappear.
type Transport struct {
	// Base performs the actual round trips (default http.DefaultTransport).
	Base http.RoundTripper
	// Policy drives the retry loop.
	Policy Policy
	// Breakers, when set, gates every attempt through the peer's circuit.
	Breakers *BreakerSet
	// MaxBodyBytes caps response buffering (default DefaultMaxBodyBytes).
	// Larger bodies are streamed through un-buffered and not retryable
	// mid-read.
	MaxBodyBytes int64
	// Spans receives the logical call span each round trip records; nil
	// resolves the process-wide obs.DefaultSpans per call.
	Spans *obs.SpanStore
}

// cancelBody ties a per-attempt context cancel to body close for responses
// too large to buffer.
type cancelBody struct {
	io.Reader
	close  func() error
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.close()
	if b.cancel != nil {
		b.cancel()
	}
	return err
}

// RoundTrip implements http.RoundTripper. Beyond the retry loop it anchors
// the call in the distributed trace: a logical "call" span covering every
// attempt is recorded when the loop finishes, parented under the caller's
// context span, and each attempt runs with that call span as its context ID
// plus an attempt number — so the per-attempt client spans the obs transport
// records underneath become numbered siblings and retries are visible in the
// stored trace. A call with no request ID in its context (a free-standing
// poller) mints the trace here, and the call span is its local root: the
// tail-sampling keep/drop decision runs when the call completes.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	p := t.Policy.withDefaults()

	parentSpan := ""
	id, hadID := obs.RequestIDFromContext(req.Context())
	if hadID {
		parentSpan = id.Span()
		id = id.Child()
	} else {
		id = obs.NewRequestID()
	}
	req = req.Clone(obs.ContextWithRequestID(req.Context(), id))

	start := time.Now()
	resp, attempts, err := t.retryLoop(req, p)
	elapsed := time.Since(start)

	status := 0
	errStr := ""
	if err != nil {
		errStr = err.Error()
	} else if resp != nil {
		status = resp.StatusCode
	}
	rec := obs.SpanRecord{
		TraceID:  id.Trace(),
		SpanID:   id.Span(),
		ParentID: parentSpan,
		Service:  p.Service,
		Name:     req.Method + " " + req.URL.Path,
		Kind:     obs.SpanCall,
		Start:    start,
		Duration: elapsed,
		Peer:     req.URL.Host,
		Status:   status,
		Attempt:  attempts,
		Err:      errStr,
	}
	st := t.Spans
	if st == nil {
		st = obs.DefaultSpans()
	}
	if hadID {
		st.Record(rec)
	} else {
		st.RecordRoot(rec)
	}
	return resp, err
}

// retryLoop runs the attempt/backoff loop and reports how many attempts it
// spent.
func (t *Transport) retryLoop(req *http.Request, p Policy) (*http.Response, int, error) {
	maxBody := t.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	ctx := req.Context()
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, attempt - 1, joinCtx(err, lastErr)
		}
		if attempt > 1 && req.Body != nil && req.GetBody == nil {
			// The body was consumed and cannot be replayed.
			return nil, attempt - 1, fmt.Errorf("resil: cannot retry request with unreplayable body: %w", lastErr)
		}
		resp, err, final := t.attempt(req, p, attempt, maxBody)
		if err == nil {
			return resp, attempt, nil
		}
		lastErr = err
		if final != nil {
			// Retry budget spent on a retryable status: hand the caller the
			// real response rather than a synthesized error.
			return final, attempt, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, attempt, joinCtx(cerr, lastErr)
		}
		verdict := p.Classify(err)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			verdict = Retryable // per-attempt budget, overall context is live
		}
		if verdict == Terminal || attempt >= p.MaxAttempts {
			return nil, attempt, lastErr
		}
		delay := p.delay(attempt, err)
		if deadline, ok := ctx.Deadline(); ok && p.Clock.Now().Add(delay).After(deadline) {
			return nil, attempt, joinCtx(context.DeadlineExceeded, lastErr)
		}
		retryCounter(p.Service).Inc()
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, delay)
		}
		if serr := p.Clock.Sleep(ctx, delay); serr != nil {
			return nil, attempt, joinCtx(serr, lastErr)
		}
	}
}

// attempt runs one round trip. It returns either a delivered response
// (err == nil), an error to classify, or — when the status is retryable but
// this was the last allowed attempt — the response itself via final.
func (t *Transport) attempt(req *http.Request, p Policy, attempt int, maxBody int64) (resp *http.Response, err error, final *http.Response) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	var report func(Outcome)
	if t.Breakers != nil {
		var berr error
		report, berr = t.Breakers.For(req.URL.Host).Allow()
		if berr != nil {
			return nil, berr, nil
		}
	} else {
		report = func(Outcome) {}
	}
	// fail distinguishes a genuine peer failure from caller abandonment: a
	// losing hedge leg (or any caller-cancelled attempt) says nothing about
	// the peer's health and must not trip its breaker.
	fail := func() Outcome {
		if req.Context().Err() != nil {
			return OutcomeCanceled
		}
		return OutcomeFailure
	}

	// Tag the attempt number so the obs transport below records which try
	// this was: retries show as numbered sibling spans in the trace.
	ctx := obs.ContextWithAttempt(req.Context(), attempt)
	cancel := context.CancelFunc(nil)
	if p.PerAttempt > 0 {
		ctx, cancel = context.WithTimeout(ctx, p.PerAttempt)
	}
	areq := req.Clone(ctx)
	if attempt > 1 && req.GetBody != nil {
		body, gerr := req.GetBody()
		if gerr != nil {
			if cancel != nil {
				cancel()
			}
			report(OutcomeFailure)
			return nil, fmt.Errorf("resil: replay request body: %w", gerr), nil
		}
		areq.Body = body
	}

	r, rerr := base.RoundTrip(areq)
	if rerr != nil {
		if cancel != nil {
			cancel()
		}
		report(fail())
		return nil, rerr, nil
	}

	retryableStatus := r.StatusCode == http.StatusTooManyRequests || r.StatusCode/100 == 5

	// Buffer the body so the response is replayable and torn reads become
	// retryable failures instead of decoder errors downstream.
	buf := &bytes.Buffer{}
	n, berr := io.Copy(buf, io.LimitReader(r.Body, maxBody+1))
	if berr != nil {
		_ = r.Body.Close()
		if cancel != nil {
			cancel()
		}
		report(fail()) // torn body: the peer is flaky regardless of status
		return nil, fmt.Errorf("resil: read response body: %w", berr), nil
	}
	report(outcomeOf(!retryableStatus))
	if n > maxBody {
		// Too large to buffer: stream the remainder through untouched (such
		// a response is delivered as-is and not retryable mid-read).
		r.Body = &cancelBody{
			Reader: io.MultiReader(bytes.NewReader(buf.Bytes()), r.Body),
			close:  r.Body.Close,
			cancel: cancel,
		}
		return r, nil, nil
	}
	_ = r.Body.Close()
	r.Body = &cancelBody{Reader: bytes.NewReader(buf.Bytes()), close: func() error { return nil }, cancel: cancel}
	r.ContentLength = n

	if retryableStatus {
		if attempt >= p.MaxAttempts {
			return nil, errors.New("resil: retry budget spent"), r
		}
		return nil, &HTTPError{
			StatusCode: r.StatusCode,
			Status:     r.Status,
			RetryAfter: ParseRetryAfter(r.Header.Get("Retry-After"), p.Clock.Now()),
		}, nil
	}
	return r, nil, nil
}
