package resil

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"stalecert/internal/obs"
)

// TestRetryAttemptsAreSiblingSpans is the trace contract for the resilience
// stack: one logical call that needed a retry stores a "call" span whose
// children are the individual attempts, numbered, with the failed first
// attempt visible — and the trace is tail-kept because of that failure even
// at sample rate 0.
func TestRetryAttemptsAreSiblingSpans(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	st := obs.NewSpanStore(8, 0, 0) // sample 0: only the error rule can keep
	st.Registry = obs.NewRegistry()
	hc := InstrumentClient(&http.Client{}, Options{
		Service:   "retry-span-test",
		NoBreaker: true,
		Spans:     st,
		Policy: Policy{
			MaxAttempts: 3,
			BaseDelay:   time.Millisecond,
			MaxDelay:    2 * time.Millisecond,
			Jitter:      func(d time.Duration) time.Duration { return d },
		},
	})

	resp, err := hc.Get(srv.URL + "/thing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final status %d", resp.StatusCode)
	}

	traces := st.Traces(obs.TraceFilter{WithSpans: true})
	if len(traces) != 1 {
		t.Fatalf("kept %d traces at sample=0, want 1 (error keep via failed attempt)", len(traces))
	}
	tr := traces[0]
	if tr.KeepReason != obs.KeepError {
		t.Fatalf("keep reason %q, want %q", tr.KeepReason, obs.KeepError)
	}
	roots := obs.BuildSpanTree(tr.Spans)
	if len(roots) != 1 {
		t.Fatalf("trace has %d roots, want 1 call span: %+v", len(roots), roots)
	}
	call := roots[0]
	if call.Kind != obs.SpanCall || call.Attempt != 2 || call.Status != http.StatusOK {
		t.Fatalf("call span wrong: %+v", call.SpanRecord)
	}
	if len(call.Children) != 2 {
		t.Fatalf("call span has %d attempt children, want 2", len(call.Children))
	}
	first, second := call.Children[0], call.Children[1]
	if first.Kind != obs.SpanClient || first.Attempt != 1 || first.Status != http.StatusServiceUnavailable {
		t.Fatalf("first attempt span wrong: %+v", first.SpanRecord)
	}
	if second.Attempt != 2 || second.Status != http.StatusOK {
		t.Fatalf("second attempt span wrong: %+v", second.SpanRecord)
	}
}

// TestCallSpanJoinsCallerTrace: when the caller already carries a request ID
// (an enclosing server request), the call span buffers under that trace and
// parents beneath the caller's span instead of starting a trace of its own.
func TestCallSpanJoinsCallerTrace(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()

	st := obs.NewSpanStore(8, 1, 0)
	st.Registry = obs.NewRegistry()
	hc := NewHTTPClient(Options{Service: "join-test", NoBreaker: true, Spans: st})

	id := obs.NewRequestID()
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req = req.WithContext(obs.ContextWithRequestID(req.Context(), id))
	resp, err := hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Nothing kept yet: the enclosing request is still open.
	if st.Len() != 0 {
		t.Fatalf("call finalized the caller's trace early: %d kept", st.Len())
	}
	st.RecordRoot(obs.SpanRecord{TraceID: id.Trace(), SpanID: id.Span(),
		Service: "join-test", Name: "outer", Kind: obs.SpanServer, Status: 200})
	tr, ok := st.Trace(id.Trace())
	if !ok {
		t.Fatal("caller trace not kept")
	}
	roots := obs.BuildSpanTree(tr.Spans)
	if len(roots) != 1 || roots[0].SpanID != id.Span() {
		t.Fatalf("call span did not parent under the caller: %+v", roots)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Kind != obs.SpanCall {
		t.Fatalf("caller's children wrong: %+v", roots[0].Children)
	}
}
