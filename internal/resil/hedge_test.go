package resil

import (
	"context"
	"errors"
	"testing"
	"time"
)

func hedgeClock() *FakeClock { return NewFakeClock(time.Unix(1700000000, 0)) }

func TestHedgePrimaryWins(t *testing.T) {
	fc := hedgeClock()
	v, stats, err := HedgeDo(context.Background(), Hedge{After: 50 * time.Millisecond, Clock: fc}, 3,
		func(ctx context.Context, leg int) (string, error) {
			return "primary", nil
		})
	if err != nil || v != "primary" {
		t.Fatalf("got %q, %v", v, err)
	}
	if stats.Legs != 1 || stats.Hedged != 0 || stats.Failovers != 0 || stats.Winner != 0 || stats.HedgedWin {
		t.Fatalf("stats = %+v, want single-leg primary win", stats)
	}
}

func TestHedgeTimerFiresAndSiblingWins(t *testing.T) {
	fc := hedgeClock()
	started := make(chan int, 3)
	primaryCancelled := make(chan struct{})
	done := make(chan struct{})
	var v string
	var stats HedgeStats
	var err error
	go func() {
		defer close(done)
		v, stats, err = HedgeDo(context.Background(), Hedge{After: 50 * time.Millisecond, Clock: fc}, 2,
			func(ctx context.Context, leg int) (string, error) {
				started <- leg
				if leg == 0 {
					// Slow primary: blocks until the winner cancels it.
					<-ctx.Done()
					close(primaryCancelled)
					return "", ctx.Err()
				}
				return "sibling", nil
			})
	}()
	if leg := <-started; leg != 0 {
		t.Fatalf("first leg = %d", leg)
	}
	fc.Advance(50 * time.Millisecond) // hedge timer fires
	if leg := <-started; leg != 1 {
		t.Fatalf("hedge leg = %d", leg)
	}
	<-done
	if err != nil || v != "sibling" {
		t.Fatalf("got %q, %v", v, err)
	}
	if stats.Legs != 2 || stats.Hedged != 1 || stats.Failovers != 0 || stats.Winner != 1 || !stats.HedgedWin {
		t.Fatalf("stats = %+v, want hedged sibling win", stats)
	}
	select {
	case <-primaryCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("losing primary leg was never cancelled")
	}
}

func TestHedgeTimerNotFiredBeforeDelay(t *testing.T) {
	fc := hedgeClock()
	release := make(chan struct{})
	started := make(chan int, 3)
	done := make(chan struct{})
	var stats HedgeStats
	go func() {
		defer close(done)
		_, stats, _ = HedgeDo(context.Background(), Hedge{After: 50 * time.Millisecond, Clock: fc}, 2,
			func(ctx context.Context, leg int) (string, error) {
				started <- leg
				<-release
				return "ok", nil
			})
	}()
	<-started
	fc.Advance(49 * time.Millisecond) // just under the hedge delay
	close(release)
	<-done
	if stats.Legs != 1 || stats.Hedged != 0 {
		t.Fatalf("stats = %+v, hedge fired before its delay", stats)
	}
}

func TestHedgeFailoverOnError(t *testing.T) {
	fc := hedgeClock()
	v, stats, err := HedgeDo(context.Background(), Hedge{After: time.Hour, Clock: fc}, 2,
		func(ctx context.Context, leg int) (string, error) {
			if leg == 0 {
				return "", errors.New("replica down")
			}
			return "sibling", nil
		})
	if err != nil || v != "sibling" {
		t.Fatalf("got %q, %v", v, err)
	}
	if stats.Legs != 2 || stats.Hedged != 0 || stats.Failovers != 1 || stats.Winner != 1 || !stats.HedgedWin {
		t.Fatalf("stats = %+v, want error-driven failover win", stats)
	}
}

func TestHedgeFailoverWithoutTimerClock(t *testing.T) {
	// A plain Clock (no NewTimer) disables speculative hedging but error
	// failover must still work.
	v, stats, err := HedgeDo(context.Background(), Hedge{After: time.Hour, Clock: plainClock{}}, 2,
		func(ctx context.Context, leg int) (string, error) {
			if leg == 0 {
				return "", errors.New("boom")
			}
			return "ok", nil
		})
	if err != nil || v != "ok" {
		t.Fatalf("got %q, %v", v, err)
	}
	if stats.Failovers != 1 || stats.Winner != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

// plainClock implements Clock but not TimerClock.
type plainClock struct{}

func (plainClock) Now() time.Time                                   { return time.Unix(0, 0) }
func (plainClock) Sleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

func TestHedgeAllLegsFail(t *testing.T) {
	fc := hedgeClock()
	errLast := errors.New("last leg error")
	_, stats, err := HedgeDo(context.Background(), Hedge{After: time.Hour, Clock: fc}, 3,
		func(ctx context.Context, leg int) (string, error) {
			if leg == 2 {
				return "", errLast
			}
			return "", errors.New("early failure")
		})
	if !errors.Is(err, errLast) {
		t.Fatalf("err = %v, want last leg's error", err)
	}
	if stats.Legs != 3 || stats.Failovers != 2 || stats.Winner != -1 || stats.HedgedWin {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestHedgeCallerCancellation(t *testing.T) {
	fc := hedgeClock()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	go func() {
		<-started
		cancel()
	}()
	_, _, err := HedgeDo(ctx, Hedge{After: time.Hour, Clock: fc}, 2,
		func(ctx context.Context, leg int) (string, error) {
			close(started)
			<-ctx.Done()
			return "", ctx.Err()
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestHedgeNoLegs(t *testing.T) {
	if _, _, err := HedgeDo(context.Background(), Hedge{}, 0,
		func(ctx context.Context, leg int) (string, error) { return "", nil }); err == nil {
		t.Fatal("zero legs accepted")
	}
}

func TestHedgeChainedTimers(t *testing.T) {
	// With three legs and every leg slow, each hedge delay launches the
	// next leg; the last one to start wins.
	fc := hedgeClock()
	started := make(chan int, 3)
	done := make(chan struct{})
	var v string
	var stats HedgeStats
	var err error
	go func() {
		defer close(done)
		v, stats, err = HedgeDo(context.Background(), Hedge{After: 10 * time.Millisecond, Clock: fc}, 3,
			func(ctx context.Context, leg int) (string, error) {
				started <- leg
				if leg < 2 {
					<-ctx.Done()
					return "", ctx.Err()
				}
				return "third", nil
			})
	}()
	<-started
	fc.Advance(10 * time.Millisecond)
	<-started
	fc.Advance(10 * time.Millisecond)
	<-started
	<-done
	if err != nil || v != "third" {
		t.Fatalf("got %q, %v", v, err)
	}
	if stats.Legs != 3 || stats.Hedged != 2 || stats.Winner != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestFakeClockTimer(t *testing.T) {
	fc := hedgeClock()
	timer := fc.NewTimer(100 * time.Millisecond)
	select {
	case <-timer.C():
		t.Fatal("timer fired before its deadline")
	default:
	}
	fc.Advance(99 * time.Millisecond)
	select {
	case <-timer.C():
		t.Fatal("timer fired 1ms early")
	default:
	}
	fc.Advance(time.Millisecond)
	select {
	case <-timer.C():
	default:
		t.Fatal("timer did not fire at its deadline")
	}

	stopped := fc.NewTimer(time.Second)
	if !stopped.Stop() {
		t.Fatal("Stop on a live timer reported already-fired")
	}
	fc.Advance(2 * time.Second)
	select {
	case <-stopped.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if stopped.Stop() {
		t.Fatal("second Stop reported the timer as live")
	}

	immediate := fc.NewTimer(0)
	select {
	case <-immediate.C():
	default:
		t.Fatal("zero-duration timer did not fire immediately")
	}
}
