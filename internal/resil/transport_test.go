package resil

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flaky is a RoundTripper scripted to fail n times before succeeding.
type flaky struct {
	calls    atomic.Int64
	failures int64
	mode     string // "error", "status", "torn"
}

func (f *flaky) RoundTrip(req *http.Request) (*http.Response, error) {
	n := f.calls.Add(1)
	if n <= f.failures {
		switch f.mode {
		case "status":
			return &http.Response{
				StatusCode: 503, Status: "503 Service Unavailable",
				Header: http.Header{}, Body: io.NopCloser(strings.NewReader("down")),
				Request: req,
			}, nil
		case "torn":
			return &http.Response{
				StatusCode: 200, Status: "200 OK",
				Header:  http.Header{},
				Body:    io.NopCloser(&failingReader{data: "par"}),
				Request: req,
			}, nil
		default:
			return nil, fmt.Errorf("flaky: connection reset")
		}
	}
	return &http.Response{
		StatusCode: 200, Status: "200 OK",
		Header: http.Header{}, Body: io.NopCloser(strings.NewReader("payload")),
		Request: req,
	}, nil
}

// failingReader yields some bytes then an unexpected EOF.
type failingReader struct {
	data string
	done bool
}

func (r *failingReader) Read(p []byte) (int, error) {
	if r.done {
		return 0, io.ErrUnexpectedEOF
	}
	r.done = true
	return copy(p, r.data), nil
}

func fastPolicy(fc *FakeClock) Policy {
	return Policy{Service: "test", MaxAttempts: 4, BaseDelay: time.Millisecond, Jitter: noJitter, Clock: fc}
}

func get(t *testing.T, rt http.RoundTripper, url string) (*http.Response, string, error) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	resp, err := rt.RoundTrip(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	if rerr != nil {
		t.Fatalf("read body: %v", rerr)
	}
	return resp, string(body), nil
}

func TestTransportRetriesConnectionErrors(t *testing.T) {
	f := &flaky{failures: 2, mode: "error"}
	tr := &Transport{Base: f, Policy: fastPolicy(NewFakeClock(time.Now()))}
	resp, body, err := get(t, tr, "http://peer.test/x")
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	if resp.StatusCode != 200 || body != "payload" {
		t.Fatalf("got %d %q", resp.StatusCode, body)
	}
	if f.calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", f.calls.Load())
	}
}

func TestTransportRetries5xx(t *testing.T) {
	f := &flaky{failures: 1, mode: "status"}
	tr := &Transport{Base: f, Policy: fastPolicy(NewFakeClock(time.Now()))}
	resp, body, err := get(t, tr, "http://peer.test/x")
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	if resp.StatusCode != 200 || body != "payload" {
		t.Fatalf("got %d %q", resp.StatusCode, body)
	}
}

func TestTransportRetriesTornBody(t *testing.T) {
	f := &flaky{failures: 1, mode: "torn"}
	tr := &Transport{Base: f, Policy: fastPolicy(NewFakeClock(time.Now()))}
	resp, body, err := get(t, tr, "http://peer.test/x")
	if err != nil {
		t.Fatalf("RoundTrip: %v (torn bodies must be retried)", err)
	}
	if resp.StatusCode != 200 || body != "payload" {
		t.Fatalf("got %d %q", resp.StatusCode, body)
	}
}

// Callers keep their status-code semantics: when the budget runs out on a
// retryable status, the transport delivers the final real response rather
// than a synthesized error.
func TestTransportReturnsFinalRetryableResponse(t *testing.T) {
	f := &flaky{failures: 1 << 30, mode: "status"} // always 503
	tr := &Transport{Base: f, Policy: fastPolicy(NewFakeClock(time.Now()))}
	resp, body, err := get(t, tr, "http://peer.test/x")
	if err != nil {
		t.Fatalf("RoundTrip: %v, want the final 503 response", err)
	}
	if resp.StatusCode != 503 || body != "down" {
		t.Fatalf("got %d %q, want 503 %q", resp.StatusCode, body, "down")
	}
	if f.calls.Load() != 4 {
		t.Fatalf("calls = %d, want MaxAttempts=4", f.calls.Load())
	}
}

func TestTransportTerminalStatusNotRetried(t *testing.T) {
	calls := atomic.Int64{}
	base := roundTripFunc(func(req *http.Request) (*http.Response, error) {
		calls.Add(1)
		return &http.Response{
			StatusCode: 404, Status: "404 Not Found",
			Header: http.Header{}, Body: io.NopCloser(strings.NewReader("nope")),
			Request: req,
		}, nil
	})
	tr := &Transport{Base: base, Policy: fastPolicy(NewFakeClock(time.Now()))}
	resp, body, err := get(t, tr, "http://peer.test/x")
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	if resp.StatusCode != 404 || body != "nope" {
		t.Fatalf("got %d %q", resp.StatusCode, body)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1 (4xx is terminal)", calls.Load())
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

func TestTransportReplaysRequestBody(t *testing.T) {
	var bodies []string
	attempts := 0
	base := roundTripFunc(func(req *http.Request) (*http.Response, error) {
		attempts++
		b, _ := io.ReadAll(req.Body)
		bodies = append(bodies, string(b))
		if attempts == 1 {
			return nil, errors.New("reset")
		}
		return &http.Response{
			StatusCode: 200, Status: "200 OK", Header: http.Header{},
			Body: io.NopCloser(strings.NewReader("ok")), Request: req,
		}, nil
	})
	tr := &Transport{Base: base, Policy: fastPolicy(NewFakeClock(time.Now()))}
	req, _ := http.NewRequest(http.MethodPost, "http://peer.test/x", strings.NewReader("hello"))
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	resp.Body.Close()
	if len(bodies) != 2 || bodies[0] != "hello" || bodies[1] != "hello" {
		t.Fatalf("bodies = %q, want the same payload twice", bodies)
	}
}

func TestTransportUnreplayableBodyNotRetried(t *testing.T) {
	calls := 0
	base := roundTripFunc(func(*http.Request) (*http.Response, error) {
		calls++
		return nil, errors.New("reset")
	})
	tr := &Transport{Base: base, Policy: fastPolicy(NewFakeClock(time.Now()))}
	req, _ := http.NewRequest(http.MethodPost, "http://peer.test/x", io.NopCloser(strings.NewReader("x")))
	req.GetBody = nil // an opaque stream: no way to replay
	if _, err := tr.RoundTrip(req); err == nil {
		t.Fatal("want error for unreplayable body")
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestTransportBreakerIntegration(t *testing.T) {
	fc := NewFakeClock(time.Now())
	base := roundTripFunc(func(*http.Request) (*http.Response, error) {
		return nil, errors.New("reset")
	})
	breakers := NewBreakerSet(BreakerConfig{
		Service: "test", MinRequests: 4, Threshold: 0.5, Clock: fc,
		Cooldown: 5 * time.Second,
	})
	tr := &Transport{Base: base, Policy: fastPolicy(fc), Breakers: breakers}

	// One call = 4 attempts, all failures: trips the breaker mid-loop.
	if _, _, err := get(t, tr, "http://peer.test/x"); err == nil {
		t.Fatal("want error")
	}
	if st := breakers.For("peer.test").State(); st != Open {
		t.Fatalf("breaker state = %v, want open", st)
	}
	// The next call fails fast with ErrOpen — terminal, no retries.
	_, _, err := get(t, tr, "http://peer.test/x")
	if !errors.Is(err, ErrOpen) {
		t.Fatalf("err = %v, want ErrOpen", err)
	}
}

func TestTransportEndToEndAgainstServer(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if hits.Add(1) < 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, "real payload")
	}))
	defer srv.Close()

	hc := NewHTTPClient(Options{Service: "e2e", Policy: Policy{
		MaxAttempts: 5, BaseDelay: time.Millisecond, Jitter: noJitter,
	}})
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || string(body) != "real payload" {
		t.Fatalf("got %d %q", resp.StatusCode, body)
	}
	if hits.Load() != 3 {
		t.Fatalf("server hits = %d, want 3", hits.Load())
	}
}

func TestInstrumentClientIdempotent(t *testing.T) {
	hc := NewHTTPClient(Options{Service: "x", NoBreaker: true})
	again := InstrumentClient(hc, Options{Service: "x"})
	if again != hc {
		t.Fatal("InstrumentClient must not double-wrap a resilient client")
	}
}
