package resil

import (
	"context"
	"errors"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

// noJitter makes backoff deterministic for assertions.
func noJitter(d time.Duration) time.Duration { return d }

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	fc := NewFakeClock(time.Now())
	calls := 0
	err := Retry(context.Background(), Policy{
		MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, Jitter: noJitter, Clock: fc,
	}, func(context.Context) error {
		calls++
		if calls < 3 {
			return errBoom
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	got := fc.Slept()
	if len(got) != len(want) {
		t.Fatalf("slept %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sleep[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRetryStopsOnTerminalError(t *testing.T) {
	fc := NewFakeClock(time.Now())
	terminal := errors.New("bad request")
	calls := 0
	err := Retry(context.Background(), Policy{
		MaxAttempts: 5, Clock: fc, Jitter: noJitter,
		Classify: func(err error) Verdict {
			if errors.Is(err, terminal) {
				return Terminal
			}
			return Retryable
		},
	}, func(context.Context) error {
		calls++
		return terminal
	})
	if !errors.Is(err, terminal) {
		t.Fatalf("err = %v, want %v", err, terminal)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (terminal must not retry)", calls)
	}
	if len(fc.Slept()) != 0 {
		t.Fatalf("slept %v, want none", fc.Slept())
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	fc := NewFakeClock(time.Now())
	calls := 0
	err := Retry(context.Background(), Policy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: noJitter, Clock: fc,
	}, func(context.Context) error {
		calls++
		return errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want %v", err, errBoom)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

// The satellite contract: an overall budget shorter than the next backoff
// step returns context.DeadlineExceeded promptly instead of sleeping through
// the deadline. Fake clock — the test would hang for 10s if Retry actually
// slept.
func TestRetryNeverSleepsPastDeadline(t *testing.T) {
	now := time.Now()
	fc := NewFakeClock(now)
	ctx, cancel := context.WithDeadline(context.Background(), now.Add(1*time.Second))
	defer cancel()

	calls := 0
	err := Retry(ctx, Policy{
		MaxAttempts: 5,
		BaseDelay:   10 * time.Second, // one step already exceeds the budget
		Jitter:      noJitter,
		Clock:       fc,
	}, func(context.Context) error {
		calls++
		return errBoom
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, should also wrap the last attempt error", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if len(fc.Slept()) != 0 {
		t.Fatalf("slept %v — must return promptly, never sleep toward a dead deadline", fc.Slept())
	}
}

func TestRetryPerAttemptTimeoutIsRetryable(t *testing.T) {
	fc := NewFakeClock(time.Now())
	calls := 0
	err := Retry(context.Background(), Policy{
		MaxAttempts: 3, PerAttempt: 5 * time.Millisecond,
		BaseDelay: time.Millisecond, Jitter: noJitter, Clock: fc,
	}, func(ctx context.Context) error {
		calls++
		if calls < 2 {
			<-ctx.Done() // burn the per-attempt budget
			return ctx.Err()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry: %v (per-attempt deadline must be retryable)", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestRetryCanceledContextIsTerminal(t *testing.T) {
	fc := NewFakeClock(time.Now())
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry(ctx, Policy{MaxAttempts: 5, Clock: fc, Jitter: noJitter}, func(context.Context) error {
		calls++
		cancel()
		return errBoom
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestRetryHonorsRetryAfterHint(t *testing.T) {
	fc := NewFakeClock(time.Now())
	calls := 0
	err := Retry(context.Background(), Policy{
		MaxAttempts: 2, BaseDelay: time.Millisecond, Jitter: noJitter, Clock: fc,
	}, func(context.Context) error {
		calls++
		if calls == 1 {
			return &HTTPError{StatusCode: 429, Status: "Too Many Requests", RetryAfter: 7 * time.Second}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	slept := fc.Slept()
	if len(slept) != 1 || slept[0] != 7*time.Second {
		t.Fatalf("slept %v, want exactly the server's 7s hint", slept)
	}
}

func TestDelayCapsAtMaxDelay(t *testing.T) {
	p := Policy{BaseDelay: time.Second, MaxDelay: 3 * time.Second, Multiplier: 2, Jitter: noJitter}.withDefaults()
	if d := p.delay(1, errBoom); d != time.Second {
		t.Fatalf("delay(1) = %v", d)
	}
	if d := p.delay(2, errBoom); d != 2*time.Second {
		t.Fatalf("delay(2) = %v", d)
	}
	if d := p.delay(5, errBoom); d != 3*time.Second {
		t.Fatalf("delay(5) = %v, want the 3s cap", d)
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"5", 5 * time.Second},
		{"-3", 0},
		{"nonsense", 0},
		{now.Add(90 * time.Second).Format("Mon, 02 Jan 2006 15:04:05 GMT"), 90 * time.Second},
		{now.Add(-time.Hour).Format("Mon, 02 Jan 2006 15:04:05 GMT"), 0},
	}
	for _, c := range cases {
		if got := ParseRetryAfter(c.in, now); got != c.want {
			t.Errorf("ParseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDefaultClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Verdict
	}{
		{context.Canceled, Terminal},
		{context.DeadlineExceeded, Terminal},
		{ErrOpen, Terminal},
		{&HTTPError{StatusCode: 404}, Terminal},
		{&HTTPError{StatusCode: 429}, Retryable},
		{&HTTPError{StatusCode: 503}, Retryable},
		{errBoom, Retryable},
	}
	for _, c := range cases {
		if got := DefaultClassify(c.err); got != c.want {
			t.Errorf("DefaultClassify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
