package resil

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"stalecert/internal/obs"
)

// FaultKind names one class of injected failure.
type FaultKind string

// Fault kinds injected by Chaos and ChaosListener.
const (
	FaultError     FaultKind = "error"      // transport-level error before any response
	FaultStatus5xx FaultKind = "status_5xx" // synthetic 503 with a Retry-After hint
	FaultTornBody  FaultKind = "torn_body"  // response cut mid-body (unexpected EOF)
	FaultLatency   FaultKind = "latency"    // added delay, then the real response
	FaultBlackhole FaultKind = "blackhole"  // hang until the request context dies
	FaultConnDrop  FaultKind = "conn_drop"  // listener: accepted conn closed at once
)

func chaosCounter(kind FaultKind) *obs.Counter {
	return obs.Default().Counter("resil_chaos_injections_total", "kind", string(kind))
}

// Rates sets per-kind injection probabilities (each in [0,1], evaluated in
// the order error, 5xx, torn body, latency, blackhole — at most one fault
// fires per request).
type Rates struct {
	Error     float64
	Status5xx float64
	TornBody  float64
	Latency   float64
	Blackhole float64
}

// DefaultRates splits a total fault probability across kinds with weights
// that mirror wild failure modes: mostly hard errors and 5xx, some torn
// bodies and latency, a sliver of blackholes.
func DefaultRates(total float64) Rates {
	return Rates{
		Error:     total * 0.35,
		Status5xx: total * 0.25,
		TornBody:  total * 0.20,
		Latency:   total * 0.15,
		Blackhole: total * 0.05,
	}
}

// Chaos is a fault-injecting http.RoundTripper for acceptance tests: a
// deterministic seeded RNG decides, per request, whether to return a
// transport error, a synthetic 503, a response cut mid-body, added latency,
// or a blackhole (hang until the request context is canceled). Wrap it
// between the resilient transport and the real one so injected faults
// exercise the retry/breaker machinery exactly like wild ones.
type Chaos struct {
	// Base performs real round trips (default http.DefaultTransport).
	Base http.RoundTripper
	// Rates are the per-kind injection probabilities.
	Rates Rates
	// Latency is the delay injected by FaultLatency (default 200ms).
	Latency time.Duration
	// TornAfter caps how many body bytes survive a torn-body fault
	// (default 64).
	TornAfter int

	mu  sync.Mutex
	rng *rand.Rand
}

// NewChaos creates a Chaos transport with a deterministic seed.
func NewChaos(base http.RoundTripper, seed int64, rates Rates) *Chaos {
	return &Chaos{Base: base, Rates: rates, rng: rand.New(rand.NewSource(seed))}
}

// roll draws one uniform [0,1) variate from the seeded stream.
func (c *Chaos) roll() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(1))
	}
	return c.rng.Float64()
}

// pick decides the fault (if any) for one request. A single draw is compared
// against stacked rate bands so the per-request fault distribution matches
// Rates while consuming exactly one variate — keeps the injected sequence
// stable even as the retry layer varies attempt counts.
func (c *Chaos) pick() (FaultKind, bool) {
	v := c.roll()
	for _, band := range []struct {
		kind FaultKind
		rate float64
	}{
		{FaultError, c.Rates.Error},
		{FaultStatus5xx, c.Rates.Status5xx},
		{FaultTornBody, c.Rates.TornBody},
		{FaultLatency, c.Rates.Latency},
		{FaultBlackhole, c.Rates.Blackhole},
	} {
		if v < band.rate {
			return band.kind, true
		}
		v -= band.rate
	}
	return "", false
}

// tornBody yields up to n bytes from the real body then fails with
// io.ErrUnexpectedEOF, mimicking a connection cut mid-transfer.
type tornBody struct {
	r         io.ReadCloser
	remaining int
}

func (t *tornBody) Read(p []byte) (int, error) {
	if t.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > t.remaining {
		p = p[:t.remaining]
	}
	n, err := t.r.Read(p)
	t.remaining -= n
	if err == io.EOF {
		// The real body was shorter than the cut point; still report a tear
		// so the consumer sees a truncated transfer.
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (t *tornBody) Close() error { return t.r.Close() }

// RoundTrip implements http.RoundTripper with fault injection.
func (c *Chaos) RoundTrip(req *http.Request) (*http.Response, error) {
	return c.roundTrip(req, c.Base)
}

// WithBase returns a RoundTripper sharing this Chaos's seeded fault stream
// but delegating real round trips to base — lets one deterministic stream
// cover several instrumented clients.
func (c *Chaos) WithBase(base http.RoundTripper) http.RoundTripper {
	return chaosWithBase{c: c, base: base}
}

type chaosWithBase struct {
	c    *Chaos
	base http.RoundTripper
}

func (w chaosWithBase) RoundTrip(req *http.Request) (*http.Response, error) {
	return w.c.roundTrip(req, w.base)
}

func (c *Chaos) roundTrip(req *http.Request, base http.RoundTripper) (*http.Response, error) {
	if base == nil {
		base = http.DefaultTransport
	}
	kind, fire := c.pick()
	if !fire {
		return base.RoundTrip(req)
	}
	chaosCounter(kind).Inc()
	switch kind {
	case FaultError:
		return nil, fmt.Errorf("chaos: injected connection reset (%s)", req.URL.Host)
	case FaultStatus5xx:
		body := []byte("chaos: injected 503\n")
		return &http.Response{
			StatusCode:    http.StatusServiceUnavailable,
			Status:        "503 Service Unavailable",
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Retry-After": []string{"0"}, "X-Chaos": []string{"status_5xx"}},
			Body:          io.NopCloser(bytes.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case FaultTornBody:
		resp, err := base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		after := c.TornAfter
		if after <= 0 {
			after = 64
		}
		resp.Body = &tornBody{r: resp.Body, remaining: after}
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
		return resp, nil
	case FaultLatency:
		d := c.Latency
		if d <= 0 {
			d = 200 * time.Millisecond
		}
		t := time.NewTimer(d)
		select {
		case <-req.Context().Done():
			t.Stop()
			return nil, req.Context().Err()
		case <-t.C:
		}
		return base.RoundTrip(req)
	case FaultBlackhole:
		// Hang until the caller's context (usually the per-attempt budget)
		// gives up — the classic unresponsive peer.
		<-req.Context().Done()
		return nil, req.Context().Err()
	}
	return base.RoundTrip(req)
}

// ChaosListener wraps a net.Listener, dropping a seeded fraction of accepted
// connections immediately — the server-side counterpart to Chaos, exercising
// client reconnect paths without touching server code.
type ChaosListener struct {
	net.Listener
	rate float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewChaosListener wraps ln; each accepted connection is closed on the spot
// with probability rate, using a deterministic seeded stream.
func NewChaosListener(ln net.Listener, seed int64, rate float64) *ChaosListener {
	return &ChaosListener{Listener: ln, rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Accept implements net.Listener with fault injection.
func (l *ChaosListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		drop := l.rng.Float64() < l.rate
		l.mu.Unlock()
		if !drop {
			return conn, nil
		}
		chaosCounter(FaultConnDrop).Inc()
		_ = conn.Close()
	}
}
