package resil

import (
	"context"
	"errors"
	"time"
)

// Hedge configures hedged execution over interchangeable legs (replicas).
// After waiting After with no response from the running legs, the next
// unstarted leg is launched in parallel; a leg error launches the next leg
// immediately (failover). The first success wins and every other leg's
// context is cancelled. After <= 0 disables timer-driven hedging (legs still
// fail over on error).
type Hedge struct {
	// After is the hedge delay: how long to wait for the running legs
	// before racing the next one. 0 disables speculative hedging.
	After time.Duration
	// Clock paces the hedge timer (default: the real clock). Timer-driven
	// hedging requires a TimerClock; the stock real and fake clocks both
	// are one.
	Clock Clock
}

// HedgeStats reports what a HedgeDo call actually did.
type HedgeStats struct {
	// Legs is how many legs were started.
	Legs int
	// Hedged counts timer-fired extra legs (speculative, no error seen).
	Hedged int
	// Failovers counts error-fired extra legs.
	Failovers int
	// Winner is the index of the leg whose result was returned (-1 if none
	// succeeded).
	Winner int
	// HedgedWin is true when the winning leg was not leg 0.
	HedgedWin bool
}

type hedgeResult[T any] struct {
	leg int
	v   T
	err error
}

// HedgeDo runs op against up to legs interchangeable targets, hedging and
// failing over per cfg. op receives the leg index (0-based) and a context
// that is cancelled as soon as another leg wins — a cancelled loser must
// treat it as abandonment, not failure. The first nil-error result wins; if
// every leg fails, the last error is returned. Deterministic under
// FakeClock: hedge timers fire only when fake time advances.
func HedgeDo[T any](ctx context.Context, cfg Hedge, legs int, op func(ctx context.Context, leg int) (T, error)) (T, HedgeStats, error) {
	var zero T
	stats := HedgeStats{Winner: -1}
	if legs <= 0 {
		return zero, stats, errors.New("resil: hedge with no legs")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = realClock{}
	}
	tc, timed := clock.(TimerClock)
	timed = timed && cfg.After > 0

	lctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan hedgeResult[T], legs) // buffered: losers never block

	next := 0 // next unstarted leg
	pending := 0
	var timer Timer
	var timerC <-chan time.Time
	arm := func() {
		if timed && next < legs {
			timer = tc.NewTimer(cfg.After)
			timerC = timer.C()
		}
	}
	disarm := func() {
		if timer != nil {
			timer.Stop()
			timer, timerC = nil, nil
		}
	}
	// launchNext starts leg `next`, arming the hedge timer for its sibling
	// first so that (under a fake clock) the timer exists before the new
	// leg's op can observably run.
	launchNext := func() {
		leg := next
		next++
		pending++
		stats.Legs++
		arm()
		go func() {
			v, err := op(lctx, leg)
			results <- hedgeResult[T]{leg: leg, v: v, err: err}
		}()
	}
	launchNext()
	defer disarm()

	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return zero, stats, joinCtx(ctx.Err(), lastErr)
		case <-timerC:
			timer, timerC = nil, nil
			if next < legs {
				stats.Hedged++
				launchNext()
			}
		case r := <-results:
			if r.err == nil {
				stats.Winner = r.leg
				stats.HedgedWin = r.leg != 0
				return r.v, stats, nil
			}
			pending--
			lastErr = r.err
			if next < legs {
				// Failover: this leg is dead, race the next sibling now.
				disarm()
				stats.Failovers++
				launchNext()
			} else if pending == 0 {
				return zero, stats, lastErr
			}
		}
	}
}
