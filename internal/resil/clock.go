package resil

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts time for the retry and breaker layers so unit tests can
// exercise deadline arithmetic and window rotation without real sleeps.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
	// latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// Timer is a one-shot timer: C fires once at the deadline unless Stop wins.
type Timer interface {
	// C yields the fire time once the deadline passes.
	C() <-chan time.Time
	// Stop cancels the timer, reporting whether it had not yet fired.
	Stop() bool
}

// TimerClock is a Clock that can also mint timers. Hedging needs a timer
// (not Sleep) so a fake clock can hold the hedge delay open while the
// primary leg races it; FakeClock timers fire only when Advance or Sleep
// moves fake time past their deadline.
type TimerClock interface {
	Clock
	// NewTimer returns a Timer firing d from now.
	NewTimer(d time.Duration) Timer
}

// realClock is the production Clock.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

type realTimer struct{ t *time.Timer }

func (rt realTimer) C() <-chan time.Time { return rt.t.C }
func (rt realTimer) Stop() bool          { return rt.t.Stop() }

func (realClock) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// FakeClock is a deterministic Clock for tests: Sleep returns immediately,
// advancing the fake time by the requested duration and recording it.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	slept  []time.Duration
	timers []*fakeTimer
}

// NewFakeClock creates a fake clock starting at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the fake time forward without recording a sleep, firing any
// timers whose deadline has passed.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.fireLocked()
	c.mu.Unlock()
}

// Sleep advances the fake time by d instantly and records the request.
func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.slept = append(c.slept, d)
	c.fireLocked()
	c.mu.Unlock()
	return nil
}

// fakeTimer is a FakeClock timer; it fires when the clock reaches deadline.
type fakeTimer struct {
	fc       *FakeClock
	c        chan time.Time
	deadline time.Time
	done     bool // fired or stopped
}

func (t *fakeTimer) C() <-chan time.Time { return t.c }
func (t *fakeTimer) Stop() bool          { return t.fc.stopTimer(t) }

// NewTimer returns a timer that fires when Advance or Sleep moves the fake
// time to or past d from now. A non-positive d fires immediately.
func (c *FakeClock) NewTimer(d time.Duration) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{fc: c, c: make(chan time.Time, 1), deadline: c.now.Add(d)}
	c.timers = append(c.timers, t)
	c.fireLocked()
	return t
}

func (c *FakeClock) stopTimer(t *fakeTimer) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.done {
		return false
	}
	t.done = true
	return true
}

// fireLocked delivers every due, unfired timer; callers hold c.mu.
func (c *FakeClock) fireLocked() {
	live := c.timers[:0]
	for _, t := range c.timers {
		if !t.done && !t.deadline.After(c.now) {
			t.done = true
			t.c <- c.now
			continue
		}
		if !t.done {
			live = append(live, t)
		}
	}
	c.timers = live
}

// Slept returns every duration Sleep was asked to wait.
func (c *FakeClock) Slept() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.slept...)
}
