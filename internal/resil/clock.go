package resil

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts time for the retry and breaker layers so unit tests can
// exercise deadline arithmetic and window rotation without real sleeps.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
	// latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// realClock is the production Clock.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// FakeClock is a deterministic Clock for tests: Sleep returns immediately,
// advancing the fake time by the requested duration and recording it.
type FakeClock struct {
	mu    sync.Mutex
	now   time.Time
	slept []time.Duration
}

// NewFakeClock creates a fake clock starting at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the fake time forward without recording a sleep.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Sleep advances the fake time by d instantly and records the request.
func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.slept = append(c.slept, d)
	c.mu.Unlock()
	return nil
}

// Slept returns every duration Sleep was asked to wait.
func (c *FakeClock) Slept() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.slept...)
}
