package resil

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func okTransport(body string) http.RoundTripper {
	return roundTripFunc(func(req *http.Request) (*http.Response, error) {
		return &http.Response{
			StatusCode: 200, Status: "200 OK", Header: http.Header{},
			Body: io.NopCloser(strings.NewReader(body)), Request: req,
		}, nil
	})
}

// faultSequence classifies the outcome of each chaos round trip.
func faultSequence(t *testing.T, seed int64, n int) []string {
	t.Helper()
	c := NewChaos(okTransport("body"), seed, DefaultRates(0.5))
	c.Latency = time.Microsecond
	var seq []string
	for i := 0; i < n; i++ {
		req, _ := http.NewRequest(http.MethodGet, "http://peer.test/x", nil)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		resp, err := c.RoundTrip(req.WithContext(ctx))
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			seq = append(seq, "blackhole")
		case err != nil:
			seq = append(seq, "error")
		default:
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch {
			case rerr != nil:
				seq = append(seq, "torn")
			case resp.StatusCode == 503:
				seq = append(seq, "503")
			default:
				seq = append(seq, "ok:"+string(body))
			}
		}
		cancel()
	}
	return seq
}

func TestChaosDeterministicPerSeed(t *testing.T) {
	a := faultSequence(t, 42, 50)
	b := faultSequence(t, 42, 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
	c := faultSequence(t, 43, 50)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical fault sequences")
	}
}

func TestChaosInjectsRoughlyAtRate(t *testing.T) {
	seq := faultSequence(t, 7, 400)
	faults := 0
	for _, s := range seq {
		if !strings.HasPrefix(s, "ok:") {
			faults++
		}
	}
	// 50% nominal; a seeded stream of 400 draws stays well within [30%, 70%].
	if faults < 120 || faults > 280 {
		t.Fatalf("faults = %d/400, want roughly half", faults)
	}
}

func TestChaosZeroRatesIsTransparent(t *testing.T) {
	c := NewChaos(okTransport("clean"), 1, Rates{})
	for i := 0; i < 20; i++ {
		req, _ := http.NewRequest(http.MethodGet, "http://peer.test/x", nil)
		resp, err := c.RoundTrip(req)
		if err != nil {
			t.Fatalf("RoundTrip: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != "clean" {
			t.Fatalf("body = %q", body)
		}
	}
}

func TestChaosTornBodySurfacesUnexpectedEOF(t *testing.T) {
	c := NewChaos(okTransport(strings.Repeat("x", 4096)), 1, Rates{TornBody: 1})
	c.TornAfter = 16
	req, _ := http.NewRequest(http.MethodGet, "http://peer.test/x", nil)
	resp, err := c.RoundTrip(req)
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	defer resp.Body.Close()
	n, rerr := io.Copy(io.Discard, resp.Body)
	if !errors.Is(rerr, io.ErrUnexpectedEOF) {
		t.Fatalf("read err = %v, want ErrUnexpectedEOF", rerr)
	}
	if n > 16 {
		t.Fatalf("read %d bytes past the cut point", n)
	}
}

// The full stack: resilient transport over chaos over a real server. Under
// heavy injected faults the caller still sees clean responses.
func TestTransportRidesOutChaos(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		fmt.Fprint(w, "stable answer")
	}))
	defer srv.Close()

	chaos := NewChaos(http.DefaultTransport, 99, DefaultRates(0.4))
	chaos.Latency = time.Millisecond
	hc := &http.Client{Transport: &Transport{
		Base: chaos,
		Policy: Policy{
			Service: "chaos-test", MaxAttempts: 8,
			BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
			PerAttempt: 250 * time.Millisecond, // recovers blackholes
			Jitter:     noJitter,
		},
	}}
	for i := 0; i < 30; i++ {
		resp, err := hc.Get(srv.URL)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || string(body) != "stable answer" {
			t.Fatalf("request %d: body %q err %v", i, body, rerr)
		}
	}
	if hits.Load() < 30 {
		t.Fatalf("server hits = %d, want ≥ 30", hits.Load())
	}
}

func TestChaosListenerDropsSeededFraction(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := NewChaosListener(ln, 5, 0.5)
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "up")
	})}
	go func() { _ = srv.Serve(cl) }()
	defer srv.Close()

	// A resilient client sees through the dropped connections.
	hc := NewHTTPClient(Options{Service: "listener-test", NoBreaker: true, Policy: Policy{
		MaxAttempts: 10, BaseDelay: time.Millisecond, Jitter: noJitter,
	}})
	hc.Timeout = 5 * time.Second
	okCount := 0
	for i := 0; i < 10; i++ {
		resp, err := hc.Get("http://" + ln.Addr().String() + "/")
		if err != nil {
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) == "up" {
			okCount++
		}
	}
	if okCount != 10 {
		t.Fatalf("ok = %d/10 — retries should ride out dropped conns", okCount)
	}
}
