package resil

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"stalecert/internal/obs"
)

// Retry metric: one increment per re-attempt (the first attempt is free).
func retryCounter(service string) *obs.Counter {
	return obs.Default().Counter("resil_retries_total", "service", service)
}

// Verdict classifies an error for the retry loop.
type Verdict uint8

// Verdicts.
const (
	// Retryable errors are transient: another attempt may succeed.
	Retryable Verdict = iota
	// Terminal errors will not improve with retries (4xx, cancellation,
	// open circuits).
	Terminal
)

// HTTPError is a non-2xx response surfaced as an error by the resilient
// transport (and usable by any caller that wants status-aware
// classification). It carries the server's Retry-After hint when present.
type HTTPError struct {
	StatusCode int
	Status     string
	// RetryAfter is the parsed Retry-After hint (0 when absent).
	RetryAfter time.Duration
}

// Error implements error.
func (e *HTTPError) Error() string {
	return fmt.Sprintf("resil: http status %d %s", e.StatusCode, e.Status)
}

// RetryAfterHint implements the hint interface the backoff honors.
func (e *HTTPError) RetryAfterHint() (time.Duration, bool) {
	return e.RetryAfter, e.RetryAfter > 0
}

// retryAfterer lets any error type carry a server-provided backoff hint.
type retryAfterer interface {
	RetryAfterHint() (time.Duration, bool)
}

// ParseRetryAfter reads a Retry-After header value (delta-seconds or
// HTTP-date) relative to now. Returns 0 for absent/unparseable values.
func ParseRetryAfter(h string, now time.Time) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if when, err := http.ParseTime(h); err == nil {
		if d := when.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// DefaultClassify is the stock error classifier: context cancellation and
// overall-deadline expiry are terminal, open circuits are terminal, HTTP 429
// and 5xx are retryable while other HTTP statuses are terminal, and anything
// else (connection resets, refused connections, torn bodies, unexpected EOF)
// is assumed transient and retryable.
func DefaultClassify(err error) Verdict {
	switch {
	case err == nil:
		return Terminal
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return Terminal
	case errors.Is(err, ErrOpen):
		return Terminal
	}
	var he *HTTPError
	if errors.As(err, &he) {
		if he.StatusCode == http.StatusTooManyRequests || he.StatusCode/100 == 5 {
			return Retryable
		}
		return Terminal
	}
	return Retryable
}

// Policy drives Retry: how many attempts, how the backoff grows, how errors
// are classified, and which clock paces the sleeps. The zero value is usable
// and applies the defaults documented per field.
type Policy struct {
	// Service labels the resil_retries_total series (default "unnamed").
	Service string
	// MaxAttempts is the total attempt budget including the first
	// (default 4; 1 disables retries).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 5s).
	MaxDelay time.Duration
	// Multiplier grows the backoff per attempt (default 2).
	Multiplier float64
	// PerAttempt bounds each attempt with its own deadline (0 = none). An
	// attempt cut off by this budget is retryable as long as the overall
	// context still stands.
	PerAttempt time.Duration
	// Classify maps an attempt error to a verdict (default DefaultClassify).
	Classify func(error) Verdict
	// OnRetry observes each scheduled retry (attempt just failed, its error,
	// and the delay before the next try).
	OnRetry func(attempt int, err error, delay time.Duration)
	// Jitter maps a computed backoff to the actually slept duration
	// (default: full jitter, uniform over [0, d)). Retry-After hints bypass
	// jitter — the server asked for a specific wait.
	Jitter func(d time.Duration) time.Duration
	// Clock paces sleeps and deadline checks (default: the real clock).
	Clock Clock
}

var jitterMu sync.Mutex
var jitterRNG = rand.New(rand.NewSource(1))

func fullJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return time.Duration(jitterRNG.Int63n(int64(d)))
}

// withDefaults fills zero fields.
func (p Policy) withDefaults() Policy {
	if p.Service == "" {
		p.Service = "unnamed"
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Multiplier <= 0 {
		p.Multiplier = 2
	}
	if p.Classify == nil {
		p.Classify = DefaultClassify
	}
	if p.Jitter == nil {
		p.Jitter = fullJitter
	}
	if p.Clock == nil {
		p.Clock = realClock{}
	}
	return p
}

// delay computes the wait before the attempt after `attempt` (1-based)
// failed with err: the server's Retry-After hint verbatim when present,
// otherwise jittered exponential backoff.
func (p Policy) delay(attempt int, err error) time.Duration {
	var ra retryAfterer
	if errors.As(err, &ra) {
		if d, ok := ra.RetryAfterHint(); ok {
			return d
		}
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	return p.Jitter(time.Duration(d))
}

// Retry runs op until it succeeds, a terminal error occurs, the attempt
// budget is spent, or the context's deadline cannot accommodate the next
// backoff step. Each attempt runs under its own PerAttempt deadline (when
// set); an attempt cut off by that per-attempt budget is retried while the
// overall context still stands. When the overall deadline would be crossed
// by the next backoff, Retry returns promptly with an error satisfying
// errors.Is(err, context.DeadlineExceeded) instead of sleeping through it.
func Retry(ctx context.Context, p Policy, op func(ctx context.Context) error) error {
	p = p.withDefaults()
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return joinCtx(err, lastErr)
		}
		actx := ctx
		cancel := func() {}
		if p.PerAttempt > 0 {
			actx, cancel = context.WithTimeout(ctx, p.PerAttempt)
		}
		err := op(actx)
		cancel()
		if err == nil {
			return nil
		}
		lastErr = err
		if cerr := ctx.Err(); cerr != nil {
			return joinCtx(cerr, lastErr)
		}
		verdict := p.Classify(err)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			// The overall context is still live (checked above), so the
			// cutoff came from the per-attempt budget: transient.
			verdict = Retryable
		}
		if verdict == Terminal || attempt >= p.MaxAttempts {
			return lastErr
		}
		delay := p.delay(attempt, err)
		if deadline, ok := ctx.Deadline(); ok && p.Clock.Now().Add(delay).After(deadline) {
			return joinCtx(context.DeadlineExceeded, lastErr)
		}
		retryCounter(p.Service).Inc()
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, delay)
		}
		if serr := p.Clock.Sleep(ctx, delay); serr != nil {
			return joinCtx(serr, lastErr)
		}
	}
}

// joinCtx pairs a context error with the last attempt's error so callers can
// match either with errors.Is.
func joinCtx(ctxErr, lastErr error) error {
	if lastErr == nil {
		return ctxErr
	}
	return errors.Join(ctxErr, lastErr)
}
