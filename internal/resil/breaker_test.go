package resil

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func testBreakerConfig(fc *FakeClock) BreakerConfig {
	return BreakerConfig{
		Service:     "test",
		Window:      10 * time.Second,
		Buckets:     10,
		Threshold:   0.5,
		MinRequests: 4,
		Cooldown:    5 * time.Second,
		Clock:       fc,
	}
}

// drive makes n calls reporting the given outcome, skipping rejections.
func drive(t *testing.T, b *Breaker, n int, ok bool) (admitted int) {
	t.Helper()
	for i := 0; i < n; i++ {
		report, err := b.Allow()
		if err != nil {
			continue
		}
		report(outcomeOf(ok))
		admitted++
	}
	return admitted
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	fc := NewFakeClock(time.Now())
	b := newBreaker(testBreakerConfig(fc).withDefaults(), "peer:1")

	drive(t, b, 2, true)
	drive(t, b, 1, false)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed (below MinRequests)", b.State())
	}
	drive(t, b, 1, false) // 2 ok / 2 fail over 4 total: 50% ≥ threshold
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow on open circuit = %v, want ErrOpen", err)
	}
}

func TestBreakerMinRequestsGuard(t *testing.T) {
	fc := NewFakeClock(time.Now())
	b := newBreaker(testBreakerConfig(fc).withDefaults(), "peer:1")
	drive(t, b, 3, false) // 100% failure but volume below MinRequests=4
	if b.State() != Closed {
		t.Fatalf("state = %v — a few failures on low volume must not trip", b.State())
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	fc := NewFakeClock(time.Now())
	b := newBreaker(testBreakerConfig(fc).withDefaults(), "peer:1")
	drive(t, b, 4, false)
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}

	fc.Advance(5 * time.Second) // cooldown elapses
	report, err := b.Allow()
	if err != nil {
		t.Fatalf("Allow after cooldown: %v (want probe admission)", err)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// A second caller while the probe is in flight is rejected.
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("concurrent probe = %v, want ErrOpen", err)
	}
	report(OutcomeSuccess)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed after successful probe", b.State())
	}
	// The window was reset: fresh calls flow.
	if got := drive(t, b, 3, true); got != 3 {
		t.Fatalf("admitted %d of 3 after recovery", got)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	fc := NewFakeClock(time.Now())
	b := newBreaker(testBreakerConfig(fc).withDefaults(), "peer:1")
	drive(t, b, 4, false)
	fc.Advance(5 * time.Second)
	report, err := b.Allow()
	if err != nil {
		t.Fatalf("Allow: %v", err)
	}
	report(OutcomeFailure)
	if b.State() != Open {
		t.Fatalf("state = %v, want re-opened", b.State())
	}
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow = %v, want ErrOpen for a fresh cooldown", err)
	}
}

func TestBreakerWindowSlidesPastOldFailures(t *testing.T) {
	fc := NewFakeClock(time.Now())
	b := newBreaker(testBreakerConfig(fc).withDefaults(), "peer:1")
	drive(t, b, 3, false)
	fc.Advance(11 * time.Second) // entire window expires
	drive(t, b, 1, false)        // would trip if the old failures still counted
	if b.State() != Closed {
		t.Fatalf("state = %v — failures outside the window must not count", b.State())
	}
}

func TestBreakerOnStateChange(t *testing.T) {
	fc := NewFakeClock(time.Now())
	var mu sync.Mutex
	var transitions []string
	cfg := testBreakerConfig(fc)
	cfg.OnStateChange = func(peer string, from, to State) {
		mu.Lock()
		transitions = append(transitions, fmt.Sprintf("%s:%s->%s", peer, from, to))
		mu.Unlock()
	}
	b := newBreaker(cfg.withDefaults(), "p")
	drive(t, b, 4, false)
	fc.Advance(5 * time.Second)
	report, _ := b.Allow()
	report(OutcomeSuccess)

	mu.Lock()
	defer mu.Unlock()
	want := []string{"p:closed->open", "p:open->half-open", "p:half-open->closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestBreakerSetSnapshot(t *testing.T) {
	fc := NewFakeClock(time.Now())
	s := NewBreakerSet(testBreakerConfig(fc))
	drive(t, s.For("b:1"), 4, false)
	drive(t, s.For("a:1"), 2, true)

	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %+v, want 2 peers", snap)
	}
	if snap[0].Peer != "a:1" || snap[1].Peer != "b:1" {
		t.Fatalf("snapshot not sorted by peer: %+v", snap)
	}
	if snap[0].State != "closed" || snap[0].WindowOK != 2 {
		t.Fatalf("a:1 = %+v", snap[0])
	}
	if snap[1].State != "open" || snap[1].WindowFail != 4 || snap[1].Trips != 1 {
		t.Fatalf("b:1 = %+v", snap[1])
	}
}

func TestBreakerConcurrentCalls(t *testing.T) {
	fc := NewFakeClock(time.Now())
	cfg := testBreakerConfig(fc)
	cfg.MinRequests = 1000000 // never trip: this test is about data races
	b := newBreaker(cfg.withDefaults(), "p")

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				report, err := b.Allow()
				if err == nil {
					report(outcomeOf(i%3 != 0))
				}
			}
		}(g)
	}
	wg.Wait()
	ok, fail := func() (uint64, uint64) {
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.window()
	}()
	if ok+fail != 1600 {
		t.Fatalf("window total = %d, want 1600", ok+fail)
	}
}

func TestBreakerCanceledIsNeutral(t *testing.T) {
	fc := NewFakeClock(time.Now())
	b := newBreaker(testBreakerConfig(fc).withDefaults(), "peer:1")
	// A storm of abandoned calls (losing hedge legs) must not trip the
	// circuit, no matter the volume.
	for i := 0; i < 50; i++ {
		report, err := b.Allow()
		if err != nil {
			t.Fatalf("Allow %d: %v", i, err)
		}
		report(OutcomeCanceled)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v after canceled storm, want closed", b.State())
	}
	// And they do not count toward MinRequests either: one real failure on
	// top still lacks the volume to trip.
	report, _ := b.Allow()
	report(OutcomeFailure)
	if b.State() != Closed {
		t.Fatalf("state = %v, canceled outcomes counted into the window", b.State())
	}
}

func TestBreakerCanceledProbeKeepsHalfOpen(t *testing.T) {
	fc := NewFakeClock(time.Now())
	b := newBreaker(testBreakerConfig(fc).withDefaults(), "peer:1")
	drive(t, b, 4, false)
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	fc.Advance(5 * time.Second)
	report, err := b.Allow()
	if err != nil {
		t.Fatalf("Allow after cooldown: %v", err)
	}
	report(OutcomeCanceled)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want still half-open after canceled probe", b.State())
	}
	// The canceled probe released its slot: the next caller gets to probe,
	// and its real success closes the circuit.
	report2, err := b.Allow()
	if err != nil {
		t.Fatalf("Allow after canceled probe: %v (slot not released)", err)
	}
	report2(OutcomeSuccess)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}
