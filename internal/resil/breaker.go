package resil

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"stalecert/internal/obs"
)

// ErrOpen is returned (wrapped with the peer) when a circuit rejects a call.
// DefaultClassify treats it as terminal: the point of a breaker is to fail
// fast, not to queue retries behind a down peer.
var ErrOpen = errors.New("resil: circuit open")

// State is a breaker's position.
type State uint8

// Breaker states. The gauge resil_breaker_state exports the numeric value.
const (
	Closed   State = iota // normal operation, calls flow
	Open                  // failing fast, calls rejected until the cooldown
	HalfOpen              // admitting a bounded number of probes
)

// String names the state.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "state?"
}

// BreakerConfig tunes a BreakerSet. The zero value applies the documented
// defaults.
type BreakerConfig struct {
	// Service labels the breaker metric families.
	Service string
	// Window is the sliding failure-rate window (default 30s).
	Window time.Duration
	// Buckets subdivides the window (default 10).
	Buckets int
	// Threshold is the failure fraction in the window that opens the
	// circuit (default 0.5).
	Threshold float64
	// MinRequests is the window volume below which the circuit never opens
	// (default 10) — a single failed call out of one must not trip.
	MinRequests int
	// Cooldown is how long an open circuit rejects before admitting probes
	// (default 5s).
	Cooldown time.Duration
	// HalfOpenProbes bounds concurrent probes in half-open (default 1).
	HalfOpenProbes int
	// Clock paces the window and cooldown (default: the real clock).
	Clock Clock
	// OnStateChange observes transitions (called outside the breaker lock).
	OnStateChange func(peer string, from, to State)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Service == "" {
		c.Service = "unnamed"
	}
	if c.Window <= 0 {
		c.Window = 30 * time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 10
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.5
	}
	if c.MinRequests <= 0 {
		c.MinRequests = 10
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
	return c
}

type bucket struct {
	ok   uint64
	fail uint64
}

// Breaker is one peer's three-state circuit: closed while the sliding-window
// failure rate stays under the threshold, open (rejecting) after it trips,
// half-open (admitting bounded probes) after the cooldown. All methods are
// safe for concurrent use.
type Breaker struct {
	cfg  BreakerConfig
	peer string

	mu          sync.Mutex
	state       State
	buckets     []bucket
	cur         int
	bucketStart time.Time
	openedAt    time.Time
	probes      int
	trips       uint64

	stateGauge *obs.Gauge
	tripsCtr   *obs.Counter
	rejectsCtr *obs.Counter
}

func newBreaker(cfg BreakerConfig, peer string) *Breaker {
	b := &Breaker{
		cfg:         cfg,
		peer:        peer,
		buckets:     make([]bucket, cfg.Buckets),
		bucketStart: cfg.Clock.Now(),
		stateGauge:  obs.Default().Gauge("resil_breaker_state", "service", cfg.Service, "peer", peer),
		tripsCtr:    obs.Default().Counter("resil_breaker_trips_total", "service", cfg.Service, "peer", peer),
		rejectsCtr:  obs.Default().Counter("resil_breaker_rejected_total", "service", cfg.Service, "peer", peer),
	}
	b.stateGauge.Set(float64(Closed))
	return b
}

// rotate advances the bucket ring to now, zeroing buckets the window slid
// past. Caller holds b.mu.
func (b *Breaker) rotate(now time.Time) {
	width := b.cfg.Window / time.Duration(b.cfg.Buckets)
	for now.Sub(b.bucketStart) >= width {
		b.cur = (b.cur + 1) % len(b.buckets)
		b.buckets[b.cur] = bucket{}
		b.bucketStart = b.bucketStart.Add(width)
		if now.Sub(b.bucketStart) >= b.cfg.Window {
			// Idle long enough that the whole window expired; reset
			// wholesale instead of spinning bucket by bucket.
			for i := range b.buckets {
				b.buckets[i] = bucket{}
			}
			b.bucketStart = now
		}
	}
}

// window sums the ring. Caller holds b.mu.
func (b *Breaker) window() (ok, fail uint64) {
	for _, bk := range b.buckets {
		ok += bk.ok
		fail += bk.fail
	}
	return ok, fail
}

// transition moves to next and returns a callback to run outside the lock.
// Caller holds b.mu.
func (b *Breaker) transition(next State, now time.Time) func() {
	from := b.state
	if from == next {
		return nil
	}
	b.state = next
	b.stateGauge.Set(float64(next))
	switch next {
	case Open:
		b.openedAt = now
		b.trips++
		b.tripsCtr.Inc()
	case HalfOpen:
		b.probes = 0
	case Closed:
		for i := range b.buckets {
			b.buckets[i] = bucket{}
		}
		b.bucketStart = now
	}
	if cb := b.cfg.OnStateChange; cb != nil {
		peer := b.peer
		return func() { cb(peer, from, next) }
	}
	return nil
}

// Outcome is a finished call's disposition as seen by the breaker.
type Outcome uint8

// Outcomes. Canceled marks a call abandoned by its caller (a losing hedge
// leg, a scatter cut short): it proves nothing about the peer's health, so
// it neither counts in the failure window nor resolves a half-open probe —
// hedging against a peer must not trip its circuit.
const (
	OutcomeSuccess Outcome = iota
	OutcomeFailure
	OutcomeCanceled
)

// outcomeOf maps the legacy bool form.
func outcomeOf(ok bool) Outcome {
	if ok {
		return OutcomeSuccess
	}
	return OutcomeFailure
}

// Allow admits or rejects one call. On admission it returns a report
// function the caller MUST invoke exactly once with the call's outcome; on
// rejection it returns an error wrapping ErrOpen.
func (b *Breaker) Allow() (report func(Outcome), err error) {
	now := b.cfg.Clock.Now()
	b.mu.Lock()
	b.rotate(now)
	var notify func()
	switch b.state {
	case Open:
		if now.Sub(b.openedAt) < b.cfg.Cooldown {
			b.mu.Unlock()
			b.rejectsCtr.Inc()
			return nil, fmt.Errorf("%w: peer %s", ErrOpen, b.peer)
		}
		notify = b.transition(HalfOpen, now)
		fallthrough
	case HalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			b.mu.Unlock()
			if notify != nil {
				notify()
			}
			b.rejectsCtr.Inc()
			return nil, fmt.Errorf("%w: peer %s (half-open, probes busy)", ErrOpen, b.peer)
		}
		b.probes++
		b.mu.Unlock()
		if notify != nil {
			notify()
		}
		return b.reportProbe, nil
	default: // Closed
		b.mu.Unlock()
		return b.reportClosed, nil
	}
}

// reportClosed records a closed-state outcome and trips the circuit when the
// window crosses the threshold. Canceled outcomes are neutral: no window
// entry, no trip.
func (b *Breaker) reportClosed(o Outcome) {
	if o == OutcomeCanceled {
		return
	}
	ok := o == OutcomeSuccess
	now := b.cfg.Clock.Now()
	b.mu.Lock()
	b.rotate(now)
	if b.state != Closed {
		// A concurrent probe already moved the state; the stale outcome
		// still lands in the window but must not re-trip.
		if ok {
			b.buckets[b.cur].ok++
		} else {
			b.buckets[b.cur].fail++
		}
		b.mu.Unlock()
		return
	}
	if ok {
		b.buckets[b.cur].ok++
	} else {
		b.buckets[b.cur].fail++
	}
	okN, failN := b.window()
	var notify func()
	if total := okN + failN; !ok && total >= uint64(b.cfg.MinRequests) &&
		float64(failN)/float64(total) >= b.cfg.Threshold {
		notify = b.transition(Open, now)
	}
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// reportProbe resolves a half-open probe: success closes the circuit,
// failure re-opens it for another cooldown, cancellation releases the probe
// slot without judging the peer.
func (b *Breaker) reportProbe(o Outcome) {
	now := b.cfg.Clock.Now()
	b.mu.Lock()
	if b.state != HalfOpen {
		b.mu.Unlock()
		return
	}
	b.probes--
	var notify func()
	switch o {
	case OutcomeSuccess:
		notify = b.transition(Closed, now)
	case OutcomeFailure:
		notify = b.transition(Open, now)
	case OutcomeCanceled:
		// Stay half-open; the freed slot admits the next probe.
	}
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// State returns the current state (after window rotation).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerStatus is one peer's snapshot for /v1/breakers.
type BreakerStatus struct {
	Service    string `json:"service"`
	Peer       string `json:"peer"`
	State      string `json:"state"`
	WindowOK   uint64 `json:"window_ok"`
	WindowFail uint64 `json:"window_fail"`
	Trips      uint64 `json:"trips"`
}

// BreakerSet holds one Breaker per peer under a shared config, the unit a
// client wires in: every outbound host gets its own circuit.
type BreakerSet struct {
	cfg BreakerConfig
	mu  sync.Mutex
	by  map[string]*Breaker
}

// NewBreakerSet creates a per-peer breaker family and registers it on the
// process-wide /v1/breakers debug surface.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	s := &BreakerSet{cfg: cfg.withDefaults(), by: make(map[string]*Breaker)}
	registerSet(s)
	return s
}

// For returns (creating on first use) the breaker for one peer.
func (s *BreakerSet) For(peer string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.by[peer]
	if b == nil {
		b = newBreaker(s.cfg, peer)
		s.by[peer] = b
	}
	return b
}

// Snapshot returns every peer's status, sorted by peer.
func (s *BreakerSet) Snapshot() []BreakerStatus {
	s.mu.Lock()
	breakers := make([]*Breaker, 0, len(s.by))
	for _, b := range s.by {
		breakers = append(breakers, b)
	}
	s.mu.Unlock()
	out := make([]BreakerStatus, 0, len(breakers))
	for _, b := range breakers {
		b.mu.Lock()
		b.rotate(b.cfg.Clock.Now())
		ok, fail := b.window()
		out = append(out, BreakerStatus{
			Service:    b.cfg.Service,
			Peer:       b.peer,
			State:      b.state.String(),
			WindowOK:   ok,
			WindowFail: fail,
			Trips:      b.trips,
		})
		b.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Service != out[j].Service {
			return out[i].Service < out[j].Service
		}
		return out[i].Peer < out[j].Peer
	})
	return out
}

// Process-wide registry of breaker sets backing the /v1/breakers endpoint.
var (
	setsMu sync.Mutex
	sets   []*BreakerSet
)

func registerSet(s *BreakerSet) {
	setsMu.Lock()
	sets = append(sets, s)
	setsMu.Unlock()
}

// Handler serves GET /v1/breakers: a JSON array of every breaker in the
// process (all sets, all peers), the debug view of circuit health.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		setsMu.Lock()
		all := append([]*BreakerSet(nil), sets...)
		setsMu.Unlock()
		var out []BreakerStatus
		for _, s := range all {
			out = append(out, s.Snapshot()...)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Service != out[j].Service {
				return out[i].Service < out[j].Service
			}
			return out[i].Peer < out[j].Peer
		})
		if out == nil {
			out = []BreakerStatus{}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
}

func init() {
	obs.RegisterDebug("GET /v1/breakers", Handler())
}
