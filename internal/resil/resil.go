// Package resil is the fleet-wide resilience layer: policy-driven retries
// with exponential backoff and Retry-After honoring (Retry), per-peer
// three-state circuit breakers exported as obs metrics and a /v1/breakers
// debug endpoint (Breaker/BreakerSet), deterministic fault injection for
// chaos tests (Chaos/ChaosListener), and an http.RoundTripper composing all
// of it (Transport).
//
// The composition order for an instrumented client is
//
//	resil.Transport → obs.Transport → resil.Chaos (tests only) → net/http
//
// so every attempt — including injected and retried ones — is individually
// traced and counted by the obs layer, while the caller above the resilient
// transport sees only the final outcome.
//
// Everything is stdlib-only and safe for concurrent use.
package resil

import (
	"flag"
	"net/http"

	"stalecert/internal/obs"
)

// Options configures InstrumentClient / NewHTTPClient for one service.
type Options struct {
	// Service labels every metric family and defaults the policy's service.
	Service string
	// Policy drives the retry loop (zero value = documented defaults).
	Policy Policy
	// Breaker supplies a shared per-peer breaker family; nil creates one
	// from BreakerConfig defaults unless NoBreaker is set.
	Breaker *BreakerSet
	// NoBreaker disables circuit breaking entirely.
	NoBreaker bool
	// Chaos, when non-nil, injects faults between the resilient transport
	// and the instrumented base — test wiring only.
	Chaos *Chaos
	// Spans, when non-nil, receives the call and per-attempt client spans
	// instead of the process-wide obs.DefaultSpans store (fleet simulations
	// and tests give each in-process daemon its own store).
	Spans *obs.SpanStore
}

// InstrumentClient wraps hc (nil = default-client semantics) so every call
// goes through the full resilience stack: retries, per-peer circuit
// breaking, per-attempt obs instrumentation, and optional chaos injection.
// The original client is not mutated; a client already carrying a
// resil.Transport is returned unchanged.
func InstrumentClient(hc *http.Client, opts Options) *http.Client {
	if opts.Policy.Service == "" {
		opts.Policy.Service = opts.Service
	}
	if hc != nil {
		if _, ok := hc.Transport.(*Transport); ok {
			return hc // already resilient
		}
	}
	// Chaos sits at the very bottom, beneath the obs transport, so injected
	// faults are traced and counted per attempt exactly like wild ones.
	if opts.Chaos != nil {
		c := http.Client{}
		if hc != nil {
			c = *hc
		}
		c.Transport = opts.Chaos.WithBase(c.Transport)
		hc = &c
	}
	// Per-attempt instrumentation next, so each retry is its own traced,
	// counted client call.
	instrumented := obs.InstrumentClient(hc, opts.Service)
	if ot, ok := instrumented.Transport.(*obs.Transport); ok && opts.Spans != nil {
		ot.Spans = opts.Spans
	}
	breakers := opts.Breaker
	if breakers == nil && !opts.NoBreaker {
		breakers = NewBreakerSet(BreakerConfig{Service: opts.Service})
	}
	wrapped := *instrumented
	wrapped.Transport = &Transport{Base: instrumented.Transport, Policy: opts.Policy, Breakers: breakers, Spans: opts.Spans}
	return &wrapped
}

// NewHTTPClient returns a fresh fully-instrumented client.
func NewHTTPClient(opts Options) *http.Client { return InstrumentClient(nil, opts) }

// Flags is the standard daemon flag set for the resilience layer. Bind it
// next to obs.Flags in every main:
//
//	var rf resil.Flags
//	rf.BindFlags(flag.CommandLine)
//	flag.Parse()
//	hc := resil.NewHTTPClient(rf.Options("my-service"))
type Flags struct {
	// RetryMax is the total attempt budget (-retry-max, default 4).
	RetryMax int
	// BreakerThreshold is the windowed failure fraction that opens a
	// circuit (-breaker-threshold, default 0.5; 0 disables breaking).
	BreakerThreshold float64
	// ChaosSeed, when non-zero, injects ~20% faults into every outbound
	// call using the given deterministic seed (-chaos-seed, test-only).
	ChaosSeed int64
}

// BindFlags registers the resilience flags on fs.
func (f *Flags) BindFlags(fs *flag.FlagSet) {
	fs.IntVar(&f.RetryMax, "retry-max", 4, "total outbound attempt budget including the first (1 disables retries)")
	fs.Float64Var(&f.BreakerThreshold, "breaker-threshold", 0.5, "windowed failure fraction that opens a peer's circuit (0 disables breaking)")
	fs.Int64Var(&f.ChaosSeed, "chaos-seed", 0, "TEST ONLY: non-zero seed injects ~20% deterministic faults into outbound calls")
}

// Options materializes the bound flags into client options for one service.
func (f *Flags) Options(service string) Options {
	opts := Options{
		Service: service,
		Policy:  Policy{Service: service, MaxAttempts: f.RetryMax},
	}
	if f.BreakerThreshold <= 0 {
		opts.NoBreaker = true
	} else {
		opts.Breaker = NewBreakerSet(BreakerConfig{Service: service, Threshold: f.BreakerThreshold})
	}
	if f.ChaosSeed != 0 {
		opts.Chaos = NewChaos(nil, f.ChaosSeed, DefaultRates(0.2))
	}
	return opts
}
