package report

import (
	"strings"
	"testing"

	"stalecert/internal/stats"
)

func TestTableRenderAlignment(t *testing.T) {
	tbl := &Table{Title: "T", Columns: []string{"Name", "Count"}}
	tbl.AddRow("short", 1)
	tbl.AddRow("a-much-longer-name", 12345)
	out := tbl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== T ==") {
		t.Fatalf("title line = %q", lines[0])
	}
	// All data lines share the column boundary.
	idx := strings.Index(lines[1], "Count")
	if idx < 0 {
		t.Fatal("no Count header")
	}
	for _, l := range lines[3:] {
		if len(l) < idx {
			t.Fatalf("row too short: %q", l)
		}
	}
}

func TestTableAddRowFormatting(t *testing.T) {
	tbl := &Table{Columns: []string{"A", "B", "C", "D"}}
	tbl.AddRow("s", 3.0, 3.14159, 1234.5)
	row := tbl.Rows[0]
	if row[0] != "s" || row[1] != "3" || row[2] != "3.14" || row[3] != "1234.5" {
		t.Fatalf("row = %v", row)
	}
}

func TestTableCSVEscaping(t *testing.T) {
	tbl := &Table{Columns: []string{"Name", "Note"}}
	tbl.AddRow("a,b", `say "hi"`)
	csv := tbl.CSV()
	want := "Name,Note\n\"a,b\",\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Fatalf("csv = %q, want %q", csv, want)
	}
}

func TestSeriesRenderUnionGrid(t *testing.T) {
	s := NewSeries("Fig", "X", "Y")
	s.Add("a", []stats.Point{{X: 0, Y: 0.1}, {X: 10, Y: 0.5}})
	s.Add("b", []stats.Point{{X: 10, Y: 0.9}, {X: 20, Y: 1.0}})
	out := s.Render()
	if !strings.Contains(out, "== Fig ==") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + sep + 3 x-values (0, 10, 20)
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// x=0 has no value for b; x=10 has both.
	if !strings.Contains(lines[4], "0.5") || !strings.Contains(lines[4], "0.9") {
		t.Fatalf("x=10 row = %q", lines[4])
	}
}

func TestSeriesAddKeepsOrderAndReplaces(t *testing.T) {
	s := NewSeries("F", "x", "y")
	s.Add("z", nil)
	s.Add("a", nil)
	s.Add("z", []stats.Point{{X: 1, Y: 1}}) // replace, no duplicate name
	if len(s.Names) != 2 || s.Names[0] != "z" || s.Names[1] != "a" {
		t.Fatalf("names = %v", s.Names)
	}
	if len(s.Points["z"]) != 1 {
		t.Fatal("replace failed")
	}
}

func TestEmptyTableRender(t *testing.T) {
	tbl := &Table{Columns: []string{"Only"}}
	out := tbl.Render()
	if !strings.Contains(out, "Only") {
		t.Fatalf("out = %q", out)
	}
}
