// Package report renders the reproduction's tables and figure series as
// aligned text and CSV, so every artifact the paper reports can be printed
// by cmd/experiments and diffed in EXPERIMENTS.md.
package report

import (
	"fmt"
	"sort"
	"strings"

	"stalecert/internal/stats"
)

// Table is a titled grid with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, stringifying each cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmtFloat(v)
		case fmt.Stringer:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func fmtFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	if v >= 100 || v <= -100 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSV := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeCSV(t.Columns)
	for _, row := range t.Rows {
		writeCSV(row)
	}
	return b.String()
}

// Series is a multi-line figure: named curves over a shared X axis.
type Series struct {
	Title  string
	XLabel string
	YLabel string
	Names  []string
	Points map[string][]stats.Point
}

// NewSeries creates an empty figure.
func NewSeries(title, xlabel, ylabel string) *Series {
	return &Series{Title: title, XLabel: xlabel, YLabel: ylabel, Points: make(map[string][]stats.Point)}
}

// Add appends a named curve.
func (s *Series) Add(name string, pts []stats.Point) {
	if _, ok := s.Points[name]; !ok {
		s.Names = append(s.Names, name)
	}
	s.Points[name] = pts
}

// Render returns the series as a wide table: one X column, one Y column per
// curve. Curves are aligned on the union of X values.
func (s *Series) Render() string {
	t := &Table{Title: s.Title, Columns: append([]string{s.XLabel}, s.Names...)}
	// Union of xs, in first-seen order assuming curves share grids; fall
	// back to merging distinct values.
	seen := make(map[float64]bool)
	var xs []float64
	for _, name := range s.Names {
		for _, p := range s.Points[name] {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	index := make(map[string]map[float64]float64, len(s.Names))
	for _, name := range s.Names {
		m := make(map[float64]float64, len(s.Points[name]))
		for _, p := range s.Points[name] {
			m[p.X] = p.Y
		}
		index[name] = m
	}
	for _, x := range xs {
		row := []any{x}
		for _, name := range s.Names {
			if y, ok := index[name][x]; ok {
				row = append(row, y)
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t.Render()
}
