package ctlog

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	"stalecert/internal/merkle"
	"stalecert/internal/obs"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

// Server-side metrics: request counts per endpoint, entries paged out, and
// add-chain outcomes.
var (
	mEntriesServed = obs.Default().Counter("ctlog_entries_served_total")
	mReqAddChain   = obs.Default().Counter("ctlog_requests_total", "endpoint", "add-chain")
	mReqGetSTH     = obs.Default().Counter("ctlog_requests_total", "endpoint", "get-sth")
	mReqGetEntries = obs.Default().Counter("ctlog_requests_total", "endpoint", "get-entries")
	mReqProof      = obs.Default().Counter("ctlog_requests_total", "endpoint", "get-proof-by-hash")
	mReqConsist    = obs.Default().Counter("ctlog_requests_total", "endpoint", "get-sth-consistency")
	mAddChainOK    = obs.Default().Counter("ctlog_addchain_total", "outcome", "ok")
	mAddChainErr   = obs.Default().Counter("ctlog_addchain_total", "outcome", "error")
)

// Wire representations mirror RFC 6962's JSON bodies.

type addChainRequest struct {
	Chain []string `json:"chain"` // base64 certificate encodings; [0] is the leaf
}

type addChainResponse struct {
	LogName   string `json:"log_name"`
	Index     uint64 `json:"leaf_index"`
	Timestamp int64  `json:"timestamp"`
	Signature string `json:"signature"`
}

type getSTHResponse struct {
	LogName   string `json:"log_name"`
	TreeSize  uint64 `json:"tree_size"`
	Timestamp int64  `json:"timestamp"`
	RootHash  string `json:"sha256_root_hash"`
	Signature string `json:"tree_head_signature"`
}

type getEntriesResponse struct {
	Entries []entryJSON `json:"entries"`
}

type entryJSON struct {
	LeafInput string `json:"leaf_input"`
}

type getProofByHashResponse struct {
	LeafIndex uint64   `json:"leaf_index"`
	AuditPath []string `json:"audit_path"`
}

type getConsistencyResponse struct {
	Consistency []string `json:"consistency"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// MaxEntriesPerGet caps a single get-entries response, like production logs'
// batch limits; clients must page.
const MaxEntriesPerGet = 256

// Server exposes a Log over the RFC 6962 HTTP endpoints. The submission
// timestamp comes from the server's simulated clock, which the harness
// advances with SetNow.
type Server struct {
	log *Log
	now atomic.Int64
}

// NewServer wraps a log.
func NewServer(log *Log) *Server { return &Server{log: log} }

// SetNow advances the server's simulated clock.
func (s *Server) SetNow(d simtime.Day) { s.now.Store(int64(d)) }

// Handler returns the HTTP handler serving the CT API under /ct/v1/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ct/v1/add-chain", s.handleAddChain)
	mux.HandleFunc("GET /ct/v1/get-sth", s.handleGetSTH)
	mux.HandleFunc("GET /ct/v1/get-entries", s.handleGetEntries)
	mux.HandleFunc("GET /ct/v1/get-proof-by-hash", s.handleProofByHash)
	mux.HandleFunc("GET /ct/v1/get-sth-consistency", s.handleConsistency)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *Server) handleAddChain(w http.ResponseWriter, r *http.Request) {
	mReqAddChain.Inc()
	var req addChainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Chain) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("empty chain"))
		return
	}
	raw, err := base64.StdEncoding.DecodeString(req.Chain[0])
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode leaf: %w", err))
		return
	}
	cert, err := x509sim.Unmarshal(raw)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("parse leaf: %w", err))
		return
	}
	sct, err := s.log.AddChain(cert, simtime.Day(s.now.Load()))
	if err != nil {
		mAddChainErr.Inc()
		status := http.StatusBadRequest
		if errors.Is(err, ErrFrozen) {
			status = http.StatusForbidden
		}
		writeErr(w, status, err)
		return
	}
	mAddChainOK.Inc()
	writeJSON(w, http.StatusOK, addChainResponse{
		LogName:   sct.LogName,
		Index:     sct.Index,
		Timestamp: int64(sct.Timestamp),
		Signature: base64.StdEncoding.EncodeToString(sct.Signature[:]),
	})
}

func (s *Server) handleGetSTH(w http.ResponseWriter, _ *http.Request) {
	mReqGetSTH.Inc()
	sth := s.log.STH()
	writeJSON(w, http.StatusOK, getSTHResponse{
		LogName:   sth.LogName,
		TreeSize:  sth.Size,
		Timestamp: int64(sth.Timestamp),
		RootHash:  base64.StdEncoding.EncodeToString(sth.Root[:]),
		Signature: base64.StdEncoding.EncodeToString(sth.Signature[:]),
	})
}

func (s *Server) handleGetEntries(w http.ResponseWriter, r *http.Request) {
	mReqGetEntries.Inc()
	start, err1 := strconv.ParseUint(r.URL.Query().Get("start"), 10, 64)
	end, err2 := strconv.ParseUint(r.URL.Query().Get("end"), 10, 64)
	if err1 != nil || err2 != nil {
		writeErr(w, http.StatusBadRequest, errors.New("start and end must be integers"))
		return
	}
	if end >= start && end-start+1 > MaxEntriesPerGet {
		end = start + MaxEntriesPerGet - 1
	}
	entries, err := s.log.Entries(start, end)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	mEntriesServed.Add(uint64(len(entries)))
	resp := getEntriesResponse{Entries: make([]entryJSON, len(entries))}
	for i, e := range entries {
		resp.Entries[i] = entryJSON{LeafInput: base64.StdEncoding.EncodeToString(e.LeafData())}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleProofByHash(w http.ResponseWriter, r *http.Request) {
	mReqProof.Inc()
	rawHash, err := base64.StdEncoding.DecodeString(r.URL.Query().Get("hash"))
	if err != nil || len(rawHash) != 32 {
		writeErr(w, http.StatusBadRequest, errors.New("hash must be base64 of 32 bytes"))
		return
	}
	size, err := strconv.ParseUint(r.URL.Query().Get("tree_size"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, errors.New("tree_size must be an integer"))
		return
	}
	var leaf merkle.Hash
	copy(leaf[:], rawHash)
	idx, proof, err := s.log.InclusionProof(leaf, size)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrNotFound) {
			status = http.StatusNotFound
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, getProofByHashResponse{LeafIndex: idx, AuditPath: encodeHashes(proof)})
}

func (s *Server) handleConsistency(w http.ResponseWriter, r *http.Request) {
	mReqConsist.Inc()
	first, err1 := strconv.ParseUint(r.URL.Query().Get("first"), 10, 64)
	second, err2 := strconv.ParseUint(r.URL.Query().Get("second"), 10, 64)
	if err1 != nil || err2 != nil {
		writeErr(w, http.StatusBadRequest, errors.New("first and second must be integers"))
		return
	}
	proof, err := s.log.ConsistencyProof(first, second)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, getConsistencyResponse{Consistency: encodeHashes(proof)})
}

func encodeHashes(hs []merkle.Hash) []string {
	out := make([]string, len(hs))
	for i, h := range hs {
		out[i] = base64.StdEncoding.EncodeToString(h[:])
	}
	return out
}

func decodeHashes(ss []string) ([]merkle.Hash, error) {
	out := make([]merkle.Hash, len(ss))
	for i, s := range ss {
		raw, err := base64.StdEncoding.DecodeString(s)
		if err != nil || len(raw) != 32 {
			return nil, fmt.Errorf("ctlog: bad hash at %d", i)
		}
		copy(out[i][:], raw)
	}
	return out, nil
}

// DecodeLeafInput parses a get-entries leaf_input back into an Entry. The
// index is not part of the leaf (RFC 6962); callers assign it from the
// entry's position in the response.
func DecodeLeafInput(b []byte) (Entry, error) {
	if len(b) < 4 {
		return Entry{}, errors.New("ctlog: leaf input too short")
	}
	cert, err := x509sim.Unmarshal(b[4:])
	if err != nil {
		return Entry{}, fmt.Errorf("ctlog: leaf cert: %w", err)
	}
	return Entry{
		Timestamp: simtime.Day(int32(binary.BigEndian.Uint32(b[0:]))),
		Cert:      cert,
	}, nil
}
