package ctlog

import (
	"fmt"
	"sort"
	"time"

	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

// Collection aggregates multiple CT logs, mirroring the paper's corpus of
// 117 logs trusted by Chrome or Apple. It handles shard routing on
// submission and cross-log deduplication on read.
type Collection struct {
	logs []*Log
}

// NewCollection builds a collection over the given logs.
func NewCollection(logs ...*Log) *Collection {
	return &Collection{logs: logs}
}

// ShardedLogs creates one log per calendar year in [firstYear, lastYear],
// named like production temporal shards ("<operator>2021"), plus optionally
// an unsharded catch-all when includeUnsharded is set.
func ShardedLogs(operator string, firstYear, lastYear int, includeUnsharded bool) []*Log {
	var logs []*Log
	for y := firstYear; y <= lastYear; y++ {
		shard := Shard{
			Start: simtime.FromDate(y, time.January, 1),
			End:   simtime.FromDate(y+1, time.January, 1),
		}
		logs = append(logs, New(fmt.Sprintf("%s%d", operator, y), shard))
	}
	if includeUnsharded {
		logs = append(logs, New(operator+"-all", Shard{}))
	}
	return logs
}

// Add appends a log to the collection.
func (c *Collection) Add(l *Log) { c.logs = append(c.logs, l) }

// Logs returns the member logs.
func (c *Collection) Logs() []*Log { return c.logs }

// Submit sends a certificate to every member log whose shard accepts it,
// returning the SCTs collected. CAs must obtain SCTs from multiple logs;
// the simulator submits everywhere eligible, which also exercises the
// cross-log deduplication path.
func (c *Collection) Submit(cert *x509sim.Certificate, now simtime.Day) []SCT {
	var scts []SCT
	for _, l := range c.logs {
		if !l.Shard().Accepts(cert.NotAfter) {
			continue // route by shard without paying for a rejection error
		}
		sct, err := l.AddChain(cert, now)
		if err != nil {
			continue // frozen or racing shard change; expected
		}
		scts = append(scts, sct)
	}
	return scts
}

// TotalEntries returns the sum of all member log sizes (with duplicates).
func (c *Collection) TotalEntries() uint64 {
	var n uint64
	for _, l := range c.logs {
		n += l.Size()
	}
	return n
}

// DedupStats reports what deduplication removed, for Table 3 accounting.
type DedupStats struct {
	RawEntries    int // entries across all logs before dedup
	Unique        int // distinct certificates after dedup
	PrecertMerged int // precert+final pairs merged
	CrossLog      int // duplicates removed because of multi-log submission
}

// Dedup collects every entry from every log and deduplicates by the
// certificate fingerprint over non-CT components, so a precertificate and
// its final certificate — and the same certificate in several logs — count
// once, exactly as the paper's 5B-entry corpus was reduced. Final
// certificates are preferred over precerts; the earliest timestamp wins.
func (c *Collection) Dedup() ([]*x509sim.Certificate, DedupStats) {
	type slot struct {
		cert    *x509sim.Certificate
		ts      simtime.Day
		precert bool
		count   int
	}
	seen := make(map[x509sim.Fingerprint]*slot)
	stats := DedupStats{}
	var order []x509sim.Fingerprint
	for _, l := range c.logs {
		size := l.Size()
		if size == 0 {
			continue
		}
		entries, err := l.Entries(0, size-1)
		if err != nil {
			continue
		}
		for _, e := range entries {
			stats.RawEntries++
			fp := e.Cert.Fingerprint()
			s, ok := seen[fp]
			if !ok {
				seen[fp] = &slot{cert: e.Cert, ts: e.Timestamp, precert: e.Cert.Precert, count: 1}
				order = append(order, fp)
				continue
			}
			s.count++
			if s.precert != e.Cert.Precert {
				// Precert/final pair: prefer the final certificate body.
				stats.PrecertMerged++
				if s.precert {
					s.cert = e.Cert
					s.precert = false
				}
			} else {
				stats.CrossLog++
			}
			if e.Timestamp < s.ts {
				s.ts = e.Timestamp
			}
		}
	}
	out := make([]*x509sim.Certificate, 0, len(order))
	for _, fp := range order {
		out = append(out, seen[fp].cert)
	}
	stats.Unique = len(out)
	// Deterministic output order: by (notBefore, issuer, serial).
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.NotBefore != b.NotBefore {
			return a.NotBefore < b.NotBefore
		}
		if a.Issuer != b.Issuer {
			return a.Issuer < b.Issuer
		}
		return a.Serial < b.Serial
	})
	return out, stats
}
