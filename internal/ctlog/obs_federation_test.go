package ctlog

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"stalecert/internal/obs"
	"stalecert/internal/x509sim"
)

// syncBuffer is a concurrency-safe log sink: the server handler and the test
// goroutine both write through slog while requests are in flight.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestObservabilityFederationEndToEnd is the acceptance path for the
// observability layer: a ctlogd-style daemon (real CT log server behind
// obs.Middleware, debug surface with a readiness probe) and an obsagg-style
// aggregator run on loopback, a client scrapes the log through an
// instrumented transport, and the test asserts
//
//	(a) the client and server access-log records carry the same request ID,
//	(b) the server RED metrics and the client per-peer metrics both appear in
//	    the federated /metrics with the right job/instance labels, and
//	(c) the daemon's /readyz flips 503 -> 200 once its probe passes.
func TestObservabilityFederationEndToEnd(t *testing.T) {
	// Capture every slog record (the client transport logs at Debug).
	logs := &syncBuffer{}
	oldLogger := slog.Default()
	slog.SetDefault(slog.New(slog.NewJSONHandler(logs, &slog.HandlerOptions{Level: slog.LevelDebug})))
	defer slog.SetDefault(oldLogger)

	// ctlogd-style daemon: private registry, readiness probe, middleware.
	reg := obs.NewRegistry()
	health := obs.NewHealth()
	ready := obs.NewReady("ct tree not yet seeded")
	health.Register("ct-tree-loaded", ready.Probe)

	l := New("fed-test-log", Shard{})
	srv := NewServer(l)
	srv.SetNow(100)
	ctSrv := httptest.NewServer(obs.Middleware(reg, "ctlogd", srv.Handler()))
	defer ctSrv.Close()
	debugSrv := httptest.NewServer(obs.HandlerFor(reg, health))
	defer debugSrv.Close()

	// (c) readiness holds traffic until the tree is seeded.
	if code := getStatus(t, debugSrv.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before seeding = %d, want 503", code)
	}
	cert, err := x509sim.New(1, 1, 1, []string{"fed.example.com"}, 0, 400)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AddChain(cert, 90); err != nil {
		t.Fatal(err)
	}
	ready.OK()
	if code := getStatus(t, debugSrv.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after seeding = %d, want 200", code)
	}

	// Scrape the log through an instrumented client (ctscan-style).
	client := NewClient(ctSrv.URL, &http.Client{
		Transport: &obs.Transport{Registry: reg, Service: "ctscan"},
	})
	entries, _, err := client.Scrape(context.Background(), ScrapeOptions{VerifyInclusion: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(entries))
	}

	// (a) client/server log correlation: every server access-log record's
	// request ID must have been sent by a client record in the same trace.
	clientIDs := map[string]bool{}
	serverIDs := []string{}
	for _, line := range strings.Split(strings.TrimSpace(logs.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			continue
		}
		if rec["msg"] != "http request" {
			continue
		}
		id, _ := rec["request_id"].(string)
		if id == "" {
			t.Fatalf("access-log record without request_id: %s", line)
		}
		if rec["direction"] == "client" {
			clientIDs[id] = true
		} else if rec["service"] == "ctlogd" {
			serverIDs = append(serverIDs, id)
		}
	}
	if len(clientIDs) == 0 || len(serverIDs) == 0 {
		t.Fatalf("missing log records: client=%d server=%d\n%s", len(clientIDs), len(serverIDs), logs.String())
	}
	for _, id := range serverIDs {
		if !clientIDs[id] {
			t.Errorf("server request_id %s never logged by the client", id)
		}
	}

	// obsagg-style aggregator federates the daemon's debug surface.
	agg := &obs.Aggregator{
		Targets:  []obs.Target{{Job: "ctlogd", URL: debugSrv.URL}},
		Registry: obs.NewRegistry(),
		SelfJob:  "obsagg",
	}
	aggHealth := obs.NewHealth()
	aggHealth.Register("first-scrape-round", agg.Ready)
	aggDebug := httptest.NewServer(obs.HandlerFor(agg.Registry, aggHealth))
	defer aggDebug.Close()
	fleetSrv := httptest.NewServer(agg.Handler())
	defer fleetSrv.Close()

	// (c) again for obsagg: not ready until a scrape round completes.
	if code := getStatus(t, aggDebug.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("obsagg readyz before first round = %d, want 503", code)
	}
	agg.ScrapeOnce(context.Background())
	if code := getStatus(t, aggDebug.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("obsagg readyz after first round = %d, want 200", code)
	}

	// (b) federated /metrics carries both server RED and client per-peer
	// series under the scraped job/instance.
	resp, err := http.Get(fleetSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fed, err := obs.ParseProm(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("federated exposition unparseable: %v\n%s", err, body)
	}
	u, _ := url.Parse(debugSrv.URL)
	ctURL, _ := url.Parse(ctSrv.URL)
	var red, perPeer bool
	for _, s := range fed {
		if obs.LabelValue(s, "job") != "ctlogd" || obs.LabelValue(s, "instance") != u.Host {
			continue
		}
		if s.Name == "http_requests_total" && obs.LabelValue(s, "service") == "ctlogd" &&
			obs.LabelValue(s, "code") == "2xx" && s.Value > 0 {
			red = true
		}
		if s.Name == "http_client_requests_total" && obs.LabelValue(s, "service") == "ctscan" &&
			obs.LabelValue(s, "peer") == ctURL.Host && s.Value > 0 {
			perPeer = true
		}
	}
	if !red {
		t.Error("federated metrics missing server RED series for job=ctlogd")
	}
	if !perPeer {
		t.Error("federated metrics missing client per-peer series for job=ctlogd")
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}
