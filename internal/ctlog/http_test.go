package ctlog

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"stalecert/internal/merkle"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

func newTestServer(t *testing.T) (*Log, *Server, *Client) {
	t.Helper()
	l := New("wiretest", Shard{})
	srv := NewServer(l)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return l, srv, NewClient(ts.URL, ts.Client())
}

func TestHTTPAddChainAndGetSTH(t *testing.T) {
	_, srv, client := newTestServer(t)
	srv.SetNow(42)
	ctx := context.Background()

	cert := testCert(t, 1, "wire.com", 0, 90)
	sct, err := client.AddChain(ctx, cert)
	if err != nil {
		t.Fatal(err)
	}
	if sct.Index != 0 || sct.Timestamp != 42 || sct.LogName != "wiretest" {
		t.Fatalf("sct = %+v", sct)
	}
	sth, err := client.GetSTH(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sth.Size != 1 || sth.Timestamp != 42 {
		t.Fatalf("sth = %+v", sth)
	}
}

func TestHTTPGetEntriesRoundTrip(t *testing.T) {
	_, srv, client := newTestServer(t)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		srv.SetNow(simtime.Day(i))
		cert := testCert(t, uint64(i+1), "wire.com", 0, simtime.Day(90+i))
		if _, err := client.AddChain(ctx, cert); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := client.GetEntries(ctx, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("got %d entries", len(entries))
	}
	for i, e := range entries {
		if e.Index != uint64(i+1) {
			t.Fatalf("entry %d has index %d", i, e.Index)
		}
		if e.Cert.Serial != x509sim.SerialNumber(i+2) {
			t.Fatalf("entry %d serial %d", i, e.Cert.Serial)
		}
		if e.Timestamp != simtime.Day(i+1) {
			t.Fatalf("entry %d timestamp %v", i, e.Timestamp)
		}
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	_, _, client := newTestServer(t)
	ctx := context.Background()
	_, err := client.GetEntries(ctx, 5, 3)
	var re *RemoteError
	if !errors.As(err, &re) || re.StatusCode != 400 {
		t.Fatalf("err = %v", err)
	}
	_, _, err = client.GetProofByHash(ctx, merkle.LeafHash([]byte("nope")), 1)
	if !errors.As(err, &re) {
		t.Fatalf("err = %v", err)
	}
}

func TestHTTPBatchLimitPaging(t *testing.T) {
	_, srv, client := newTestServer(t)
	ctx := context.Background()
	srv.SetNow(1)
	const n = MaxEntriesPerGet + 37
	for i := 0; i < n; i++ {
		cert := testCert(t, uint64(i+1), "wire.com", 0, 90)
		if _, err := client.AddChain(ctx, cert); err != nil {
			t.Fatal(err)
		}
	}
	// A single oversized request is truncated to the server batch limit.
	got, err := client.GetEntries(ctx, 0, n-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != MaxEntriesPerGet {
		t.Fatalf("oversized get returned %d", len(got))
	}
	// Scrape pages through everything.
	entries, sth, err := client.Scrape(ctx, ScrapeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != n || sth.Size != n {
		t.Fatalf("scraped %d of %d", len(entries), n)
	}
}

func TestHTTPScrapeWithInclusionVerification(t *testing.T) {
	_, srv, client := newTestServer(t)
	ctx := context.Background()
	srv.SetNow(7)
	for i := 0; i < 33; i++ {
		cert := testCert(t, uint64(i+1), "audit.com", 0, simtime.Day(100+i))
		if _, err := client.AddChain(ctx, cert); err != nil {
			t.Fatal(err)
		}
	}
	entries, sth, err := client.Scrape(ctx, ScrapeOptions{VerifyInclusion: true, BatchSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 33 || sth.Size != 33 {
		t.Fatalf("scraped %d", len(entries))
	}
}

func TestHTTPConsistencyAcrossGrowth(t *testing.T) {
	l, srv, client := newTestServer(t)
	ctx := context.Background()
	srv.SetNow(1)
	for i := 0; i < 10; i++ {
		if _, err := client.AddChain(ctx, testCert(t, uint64(i+1), "c.com", 0, 90)); err != nil {
			t.Fatal(err)
		}
	}
	sth1, err := client.GetSTH(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 25; i++ {
		if _, err := client.AddChain(ctx, testCert(t, uint64(i+1), "c.com", 0, 90)); err != nil {
			t.Fatal(err)
		}
	}
	sth2, err := client.GetSTH(ctx)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := client.GetConsistency(ctx, sth1.Size, sth2.Size)
	if err != nil {
		t.Fatal(err)
	}
	if !merkle.VerifyConsistency(sth1.Size, sth2.Size, sth1.Root, sth2.Root, proof) {
		t.Fatal("wire consistency proof failed")
	}
	if !l.VerifySTH(sth2) {
		t.Fatal("scraped STH signature invalid")
	}
}

func TestHTTPIncrementalScrape(t *testing.T) {
	_, srv, client := newTestServer(t)
	ctx := context.Background()
	srv.SetNow(1)
	for i := 0; i < 8; i++ {
		if _, err := client.AddChain(ctx, testCert(t, uint64(i+1), "inc.com", 0, 90)); err != nil {
			t.Fatal(err)
		}
	}
	first, _, err := client.Scrape(ctx, ScrapeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 8; i < 15; i++ {
		if _, err := client.AddChain(ctx, testCert(t, uint64(i+1), "inc.com", 0, 90)); err != nil {
			t.Fatal(err)
		}
	}
	rest, _, err := client.Scrape(ctx, ScrapeOptions{From: uint64(len(first))})
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 7 || rest[0].Index != 8 {
		t.Fatalf("incremental scrape got %d starting at %d", len(rest), rest[0].Index)
	}
}

func TestHTTPRejectsMalformedSubmissions(t *testing.T) {
	_, _, client := newTestServer(t)
	ctx := context.Background()
	// Hand-roll a bad request through the typed client by bypassing: a cert
	// that fails shard checks on a sharded server.
	l2 := New("sharded", Shard{Start: 1000, End: 2000})
	srv2 := NewServer(l2)
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	c2 := NewClient(ts2.URL, ts2.Client())
	_, err := c2.AddChain(ctx, testCert(t, 1, "x.com", 0, 90))
	var re *RemoteError
	if !errors.As(err, &re) || re.StatusCode != 400 {
		t.Fatalf("shard rejection over wire: %v", err)
	}
	_ = client
}
