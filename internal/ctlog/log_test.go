package ctlog

import (
	"errors"
	"testing"

	"stalecert/internal/merkle"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

func testCert(t *testing.T, serial uint64, name string, nb, na simtime.Day) *x509sim.Certificate {
	t.Helper()
	c, err := x509sim.New(x509sim.SerialNumber(serial), 1, x509sim.KeyID(serial), []string{name}, nb, na)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAddChainAndSTH(t *testing.T) {
	l := New("test", Shard{})
	if l.Size() != 0 {
		t.Fatal("new log not empty")
	}
	sct, err := l.AddChain(testCert(t, 1, "a.com", 0, 90), 10)
	if err != nil {
		t.Fatal(err)
	}
	if sct.Index != 0 || sct.Timestamp != 10 || sct.LogName != "test" {
		t.Fatalf("sct = %+v", sct)
	}
	sth := l.STH()
	if sth.Size != 1 || sth.Timestamp != 10 {
		t.Fatalf("sth = %+v", sth)
	}
	if !l.VerifySTH(sth) {
		t.Fatal("own STH does not verify")
	}
	sth.Size++
	if l.VerifySTH(sth) {
		t.Fatal("tampered STH verified")
	}
}

func TestAddChainDedupsResubmission(t *testing.T) {
	l := New("test", Shard{})
	c := testCert(t, 1, "a.com", 0, 90)
	sct1, err := l.AddChain(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	sct2, err := l.AddChain(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sct1 != sct2 {
		t.Fatalf("resubmission SCT differs: %+v vs %+v", sct1, sct2)
	}
	if l.Size() != 1 {
		t.Fatalf("size = %d after duplicate submission", l.Size())
	}
	// Same cert at a different day is a distinct entry (different leaf).
	if _, err := l.AddChain(c, 11); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 2 {
		t.Fatalf("size = %d, want 2", l.Size())
	}
}

func TestShardRejection(t *testing.T) {
	shard := Shard{Start: simtime.MustParse("2021-01-01"), End: simtime.MustParse("2022-01-01")}
	l := New("shard2021", shard)
	in := testCert(t, 1, "a.com", simtime.MustParse("2020-06-01"), simtime.MustParse("2021-06-01"))
	if _, err := l.AddChain(in, 0); err != nil {
		t.Fatalf("in-shard cert rejected: %v", err)
	}
	out := testCert(t, 2, "b.com", simtime.MustParse("2021-06-01"), simtime.MustParse("2022-06-01"))
	if _, err := l.AddChain(out, 0); !errors.Is(err, ErrWrongShard) {
		t.Fatalf("out-of-shard cert: %v", err)
	}
	// Boundary: End is exclusive.
	boundary := testCert(t, 3, "c.com", 0, shard.End-1)
	if _, err := l.AddChain(boundary, 0); err != nil {
		t.Fatalf("boundary cert rejected: %v", err)
	}
}

func TestFreeze(t *testing.T) {
	l := New("test", Shard{})
	l.Freeze()
	if _, err := l.AddChain(testCert(t, 1, "a.com", 0, 1), 0); !errors.Is(err, ErrFrozen) {
		t.Fatalf("frozen log accepted submission: %v", err)
	}
}

func TestEntriesRange(t *testing.T) {
	l := New("test", Shard{})
	for i := uint64(0); i < 10; i++ {
		if _, err := l.AddChain(testCert(t, i+1, "a.com", 0, simtime.Day(i+1)), simtime.Day(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := l.Entries(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Index != 3 || got[2].Index != 5 {
		t.Fatalf("entries = %+v", got)
	}
	if _, err := l.Entries(5, 3); !errors.Is(err, ErrRangeInvalid) {
		t.Fatal("inverted range accepted")
	}
	if _, err := l.Entries(0, 10); !errors.Is(err, ErrRangeInvalid) {
		t.Fatal("out-of-range end accepted")
	}
	// Entries must be copies: mutating a returned cert must not corrupt the log.
	got[0].Cert.Names[0] = "evil.com"
	again, _ := l.Entries(3, 3)
	if again[0].Cert.Names[0] != "a.com" {
		t.Fatal("Entries aliases internal state")
	}
}

func TestInclusionAndConsistencyProofsViaLog(t *testing.T) {
	l := New("test", Shard{})
	var leaves []merkle.Hash
	for i := uint64(0); i < 20; i++ {
		c := testCert(t, i+1, "a.com", 0, simtime.Day(i+1))
		if _, err := l.AddChain(c, simtime.Day(i)); err != nil {
			t.Fatal(err)
		}
		leaves = append(leaves, merkle.LeafHash(Entry{Index: i, Timestamp: simtime.Day(i), Cert: c}.LeafData()))
	}
	sth := l.STH()
	for i, leaf := range leaves {
		idx, proof, err := l.InclusionProof(leaf, sth.Size)
		if err != nil {
			t.Fatal(err)
		}
		if idx != uint64(i) {
			t.Fatalf("index %d, want %d", idx, i)
		}
		if !merkle.VerifyInclusion(leaf, idx, sth.Size, proof, sth.Root) {
			t.Fatalf("inclusion proof %d failed", i)
		}
	}
	r10, err := l.RootAt(10)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := l.ConsistencyProof(10, sth.Size)
	if err != nil {
		t.Fatal(err)
	}
	if !merkle.VerifyConsistency(10, sth.Size, r10, sth.Root, proof) {
		t.Fatal("consistency proof failed")
	}
	if _, _, err := l.InclusionProof(merkle.LeafHash([]byte("missing")), sth.Size); !errors.Is(err, ErrNotFound) {
		t.Fatal("missing leaf proof should fail")
	}
}

func TestSTHClockIsMonotone(t *testing.T) {
	l := New("test", Shard{})
	if _, err := l.AddChain(testCert(t, 1, "a.com", 0, 9), 100); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AddChain(testCert(t, 2, "b.com", 0, 9), 50); err != nil {
		t.Fatal(err)
	}
	if sth := l.STH(); sth.Timestamp != 100 {
		t.Fatalf("STH timestamp went backwards: %v", sth.Timestamp)
	}
}

func TestShardedLogs(t *testing.T) {
	logs := ShardedLogs("argon", 2020, 2022, true)
	if len(logs) != 4 {
		t.Fatalf("got %d logs", len(logs))
	}
	if logs[0].Name() != "argon2020" || logs[3].Name() != "argon-all" {
		t.Fatalf("names = %s, %s", logs[0].Name(), logs[3].Name())
	}
	// A cert expiring 2021-06-01 must land in argon2021 and argon-all only.
	c := New("x", Shard{})
	_ = c
	col := NewCollection(logs...)
	cert := testCert(t, 1, "a.com", simtime.MustParse("2020-07-01"), simtime.MustParse("2021-06-01"))
	scts := col.Submit(cert, 0)
	if len(scts) != 2 {
		t.Fatalf("submitted to %d logs, want 2", len(scts))
	}
	names := map[string]bool{}
	for _, s := range scts {
		names[s.LogName] = true
	}
	if !names["argon2021"] || !names["argon-all"] {
		t.Fatalf("landed in %v", names)
	}
}

func TestCollectionDedup(t *testing.T) {
	logs := ShardedLogs("op", 2021, 2021, true)
	col := NewCollection(logs...)

	nb, na := simtime.MustParse("2021-01-15"), simtime.MustParse("2021-06-15")
	final := testCert(t, 7, "dedup.com", nb, na)
	pre := final.Clone()
	pre.Precert = true

	// Submit precert then final to both logs (4 raw entries, 1 unique cert).
	col.Submit(pre, 10)
	col.Submit(final, 11)

	certs, stats := col.Dedup()
	if stats.RawEntries != 4 {
		t.Fatalf("raw = %d, want 4", stats.RawEntries)
	}
	if stats.Unique != 1 || len(certs) != 1 {
		t.Fatalf("unique = %d", stats.Unique)
	}
	if certs[0].Precert {
		t.Fatal("dedup kept precert over final certificate")
	}
	if stats.PrecertMerged == 0 {
		t.Fatal("precert merge not accounted")
	}
}

func TestCollectionDedupPrefersFinalRegardlessOfOrder(t *testing.T) {
	l := New("solo", Shard{})
	col := NewCollection(l)
	final := testCert(t, 9, "x.com", 0, 100)
	pre := final.Clone()
	pre.Precert = true
	// Final first, then precert.
	col.Submit(final, 1)
	col.Submit(pre, 2)
	certs, _ := col.Dedup()
	if len(certs) != 1 || certs[0].Precert {
		t.Fatal("dedup did not prefer final cert when precert arrived later")
	}
}
