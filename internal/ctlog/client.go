package ctlog

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"stalecert/internal/merkle"
	"stalecert/internal/obs"
	"stalecert/internal/resil"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

// Scraper-side metrics: entries pulled, lag behind the log's tree head at
// poll start, and full-scrape latency.
var (
	mScrapeEntries = obs.Default().Counter("ctlog_scrape_entries_total")
	mScrapeRounds  = obs.Default().Counter("ctlog_scrape_rounds_total")
	mScrapeLag     = obs.Default().Gauge("ctlog_scrape_lag_entries")
	mScrapeSTHSize = obs.Default().Gauge("ctlog_scrape_sth_tree_size")
	mScrapeSecs    = obs.Default().Histogram("ctlog_scrape_seconds", nil)
)

// Client talks to a CT log server over HTTP. The zero value is not usable;
// construct with NewClient.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient creates a client for the log at baseURL (e.g. the httptest server
// URL). If hc is nil, the default client is used. Either way the client is
// wrapped in the full resilience stack — retries with backoff, per-peer
// circuit breaking, and obs instrumentation (request-ID propagation,
// per-peer latency/outcome metrics) — unless it already is.
func NewClient(baseURL string, hc *http.Client) *Client {
	return NewClientWithOptions(baseURL, hc, resil.Options{Service: "ctlog-client"})
}

// NewClientWithOptions creates a client with explicit resilience options
// (daemons pass their resil.Flags.Options; tests pass chaos wiring).
func NewClientWithOptions(baseURL string, hc *http.Client, opts resil.Options) *Client {
	if opts.Service == "" {
		opts.Service = "ctlog-client"
	}
	return &Client{base: baseURL, hc: resil.InstrumentClient(hc, opts)}
}

// RemoteError is a non-2xx response from the log.
type RemoteError struct {
	StatusCode int
	Message    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("ctlog: remote error %d: %s", e.StatusCode, e.Message)
}

func (c *Client) get(ctx context.Context, path string, q url.Values, out any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e errorResponse
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(msg, &e) == nil && e.Error != "" {
			return &RemoteError{StatusCode: resp.StatusCode, Message: e.Error}
		}
		return &RemoteError{StatusCode: resp.StatusCode, Message: string(msg)}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// AddChain submits a certificate and returns the log's SCT.
func (c *Client) AddChain(ctx context.Context, cert *x509sim.Certificate) (SCT, error) {
	req := addChainRequest{Chain: []string{base64.StdEncoding.EncodeToString(cert.Marshal())}}
	var resp addChainResponse
	if err := c.post(ctx, "/ct/v1/add-chain", req, &resp); err != nil {
		return SCT{}, err
	}
	sct := SCT{LogName: resp.LogName, Index: resp.Index, Timestamp: simtime.Day(resp.Timestamp)}
	sig, err := base64.StdEncoding.DecodeString(resp.Signature)
	if err != nil || len(sig) != 32 {
		return SCT{}, errors.New("ctlog: malformed SCT signature")
	}
	copy(sct.Signature[:], sig)
	return sct, nil
}

// GetSTH fetches the current signed tree head.
func (c *Client) GetSTH(ctx context.Context) (SignedTreeHead, error) {
	var resp getSTHResponse
	if err := c.get(ctx, "/ct/v1/get-sth", nil, &resp); err != nil {
		return SignedTreeHead{}, err
	}
	sth := SignedTreeHead{LogName: resp.LogName, Size: resp.TreeSize, Timestamp: simtime.Day(resp.Timestamp)}
	root, err := base64.StdEncoding.DecodeString(resp.RootHash)
	if err != nil || len(root) != 32 {
		return SignedTreeHead{}, errors.New("ctlog: malformed root hash")
	}
	copy(sth.Root[:], root)
	sig, err := base64.StdEncoding.DecodeString(resp.Signature)
	if err != nil || len(sig) != 32 {
		return SignedTreeHead{}, errors.New("ctlog: malformed STH signature")
	}
	copy(sth.Signature[:], sig)
	return sth, nil
}

// GetEntries fetches entries in [start, end] inclusive. The server may
// return fewer than requested; callers should page until satisfied (or use
// Scrape).
func (c *Client) GetEntries(ctx context.Context, start, end uint64) ([]Entry, error) {
	q := url.Values{}
	q.Set("start", fmt.Sprint(start))
	q.Set("end", fmt.Sprint(end))
	var resp getEntriesResponse
	if err := c.get(ctx, "/ct/v1/get-entries", q, &resp); err != nil {
		return nil, err
	}
	entries := make([]Entry, 0, len(resp.Entries))
	for i, ej := range resp.Entries {
		raw, err := base64.StdEncoding.DecodeString(ej.LeafInput)
		if err != nil {
			return nil, fmt.Errorf("ctlog: entry %d: %w", i, err)
		}
		e, err := DecodeLeafInput(raw)
		if err != nil {
			return nil, fmt.Errorf("ctlog: entry %d: %w", i, err)
		}
		e.Index = start + uint64(i)
		entries = append(entries, e)
	}
	return entries, nil
}

// GetProofByHash fetches an inclusion proof for a leaf hash at a tree size.
func (c *Client) GetProofByHash(ctx context.Context, leaf merkle.Hash, size uint64) (uint64, []merkle.Hash, error) {
	q := url.Values{}
	q.Set("hash", base64.StdEncoding.EncodeToString(leaf[:]))
	q.Set("tree_size", fmt.Sprint(size))
	var resp getProofByHashResponse
	if err := c.get(ctx, "/ct/v1/get-proof-by-hash", q, &resp); err != nil {
		return 0, nil, err
	}
	proof, err := decodeHashes(resp.AuditPath)
	return resp.LeafIndex, proof, err
}

// GetConsistency fetches a consistency proof between two tree sizes.
func (c *Client) GetConsistency(ctx context.Context, first, second uint64) ([]merkle.Hash, error) {
	q := url.Values{}
	q.Set("first", fmt.Sprint(first))
	q.Set("second", fmt.Sprint(second))
	var resp getConsistencyResponse
	if err := c.get(ctx, "/ct/v1/get-sth-consistency", q, &resp); err != nil {
		return nil, err
	}
	return decodeHashes(resp.Consistency)
}

// ScrapeOptions tunes Scrape.
type ScrapeOptions struct {
	// BatchSize is the get-entries page size (default MaxEntriesPerGet).
	BatchSize uint64
	// From resumes scraping at this index (for incremental monitors).
	From uint64
	// VerifyInclusion audits every fetched entry against the STH. Slow but
	// used by tests to prove the wire pipeline end to end.
	VerifyInclusion bool
}

// Scrape downloads the log from opts.From up to the current STH, verifying
// the STH's self-consistency (and optionally every entry's inclusion).
// It returns the entries and the STH they were verified against.
func (c *Client) Scrape(ctx context.Context, opts ScrapeOptions) ([]Entry, SignedTreeHead, error) {
	began := time.Now()
	sth, err := c.GetSTH(ctx)
	if err != nil {
		return nil, SignedTreeHead{}, err
	}
	mScrapeSTHSize.Set(float64(sth.Size))
	if sth.Size > opts.From {
		mScrapeLag.Set(float64(sth.Size - opts.From))
	} else {
		mScrapeLag.Set(0)
	}
	batch := opts.BatchSize
	if batch == 0 {
		batch = MaxEntriesPerGet
	}
	var entries []Entry
	for start := opts.From; start < sth.Size; {
		end := start + batch - 1
		if end >= sth.Size {
			end = sth.Size - 1
		}
		got, err := c.GetEntries(ctx, start, end)
		if err != nil {
			return nil, SignedTreeHead{}, fmt.Errorf("ctlog: scrape [%d,%d]: %w", start, end, err)
		}
		if len(got) == 0 {
			return nil, SignedTreeHead{}, fmt.Errorf("ctlog: scrape stalled at %d", start)
		}
		for i, e := range got {
			if e.Index != start+uint64(i) {
				return nil, SignedTreeHead{}, fmt.Errorf("ctlog: non-contiguous entries: got %d at position %d", e.Index, start+uint64(i))
			}
		}
		if opts.VerifyInclusion {
			for _, e := range got {
				leaf := merkle.LeafHash(e.LeafData())
				idx, proof, err := c.GetProofByHash(ctx, leaf, sth.Size)
				if err != nil {
					return nil, SignedTreeHead{}, fmt.Errorf("ctlog: proof for %d: %w", e.Index, err)
				}
				if idx != e.Index || !merkle.VerifyInclusion(leaf, idx, sth.Size, proof, sth.Root) {
					return nil, SignedTreeHead{}, fmt.Errorf("ctlog: inclusion verification failed for %d", e.Index)
				}
			}
		}
		entries = append(entries, got...)
		start += uint64(len(got))
	}
	mScrapeRounds.Inc()
	mScrapeEntries.Add(uint64(len(entries)))
	mScrapeLag.Set(0) // caught up to the head we verified against
	mScrapeSecs.Observe(time.Since(began).Seconds())
	return entries, sth, nil
}
