// Package ctlog implements the Certificate Transparency substrate: an
// RFC 6962-style append-only log over a Merkle tree, with temporal sharding,
// signed tree heads, an HTTP server exposing the standard read/write
// endpoints, a scraping client, and a multi-log collection with
// precert/final-cert deduplication — the pipeline the paper's 5B-certificate
// corpus was collected through.
package ctlog

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"stalecert/internal/merkle"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

// Shard restricts a log to certificates whose notAfter falls inside
// [Start, End). A zero Shard accepts everything (an unsharded log).
type Shard struct {
	Start simtime.Day
	End   simtime.Day
}

// Accepts reports whether a certificate expiring on notAfter belongs in this
// shard.
func (s Shard) Accepts(notAfter simtime.Day) bool {
	if s == (Shard{}) {
		return true
	}
	return notAfter >= s.Start && notAfter < s.End
}

// String names the shard like production logs ("2022" shards).
func (s Shard) String() string {
	if s == (Shard{}) {
		return "unsharded"
	}
	return fmt.Sprintf("%s..%s", s.Start, s.End)
}

// Entry is one log entry: a certificate plus its log coordinates.
type Entry struct {
	Index     uint64
	Timestamp simtime.Day // when the entry was incorporated
	Cert      *x509sim.Certificate
}

// LeafData returns the byte string that is Merkle-leaf-hashed for this
// entry. As in RFC 6962, the leaf covers the timestamp and certificate but
// not the index, so resubmitting the same certificate on the same day
// deduplicates to the original entry.
func (e Entry) LeafData() []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(int32(e.Timestamp)))
	return append(hdr[:], e.Cert.Marshal()...)
}

// SignedTreeHead is the log's public commitment to its current state.
type SignedTreeHead struct {
	LogName   string
	Size      uint64
	Root      merkle.Hash
	Timestamp simtime.Day
	Signature [32]byte
}

// SCT is a signed certificate timestamp returned from add-chain.
type SCT struct {
	LogName   string
	Index     uint64
	Timestamp simtime.Day
	Signature [32]byte
}

// Errors returned by Log operations.
var (
	ErrWrongShard   = errors.New("ctlog: certificate expiry outside log shard")
	ErrRejected     = errors.New("ctlog: log rejected submission")
	ErrRangeInvalid = errors.New("ctlog: invalid entry range")
	ErrNotFound     = errors.New("ctlog: leaf hash not found")
	ErrFrozen       = errors.New("ctlog: log is frozen (read-only)")
)

// Log is an append-only certificate log. It is safe for concurrent use.
type Log struct {
	name string

	mu      sync.RWMutex
	shard   Shard
	tree    merkle.Tree
	entries []Entry
	byLeaf  map[merkle.Hash]uint64 // leaf hash -> index (submission dedup)
	key     []byte                 // MAC key standing in for the log's signing key
	frozen  bool
	clock   simtime.Day // latest timestamp seen; STHs are stamped with it
}

// New creates a log. The name doubles as key material so two logs with
// different names never produce colliding "signatures".
func New(name string, shard Shard) *Log {
	return &Log{
		name:   name,
		shard:  shard,
		byLeaf: make(map[merkle.Hash]uint64),
		key:    []byte("ctlog-key:" + name),
	}
}

// Name returns the log's name.
func (l *Log) Name() string { return l.name }

// Shard returns the log's temporal shard.
func (l *Log) Shard() Shard {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.shard
}

// Freeze makes the log read-only, as retired production logs become.
func (l *Log) Freeze() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.frozen = true
}

// Size returns the current number of entries.
func (l *Log) Size() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.tree.Size()
}

// AddChain submits a certificate at the given day, returning its SCT.
// Resubmitting an identical entry body returns the original SCT (logs
// deduplicate submissions). Certificates outside the shard are rejected.
func (l *Log) AddChain(cert *x509sim.Certificate, now simtime.Day) (SCT, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.frozen {
		return SCT{}, ErrFrozen
	}
	if !l.shard.Accepts(cert.NotAfter) {
		return SCT{}, fmt.Errorf("%w: notAfter %s not in %s", ErrWrongShard, cert.NotAfter, l.shard)
	}
	if now > l.clock {
		l.clock = now
	}
	e := Entry{Index: l.tree.Size(), Timestamp: now, Cert: cert.Clone()}
	lh := merkle.LeafHash(e.LeafData())
	if idx, ok := l.byLeaf[lh]; ok {
		prev := l.entries[idx]
		return l.signSCT(prev.Index, prev.Timestamp), nil
	}
	l.tree.AppendLeafHash(lh)
	l.entries = append(l.entries, e)
	l.byLeaf[lh] = e.Index
	return l.signSCT(e.Index, e.Timestamp), nil
}

func (l *Log) signSCT(index uint64, ts simtime.Day) SCT {
	s := SCT{LogName: l.name, Index: index, Timestamp: ts}
	s.Signature = l.mac('s', index, uint64(int64(ts)), merkle.Hash{})
	return s
}

// STH returns the current signed tree head.
func (l *Log) STH() SignedTreeHead {
	l.mu.RLock()
	defer l.mu.RUnlock()
	root := l.tree.Root()
	h := SignedTreeHead{LogName: l.name, Size: l.tree.Size(), Root: root, Timestamp: l.clock}
	h.Signature = l.mac('h', h.Size, uint64(int64(h.Timestamp)), root)
	return h
}

// VerifySTH checks that an STH was produced by this log.
func (l *Log) VerifySTH(h SignedTreeHead) bool {
	want := l.mac('h', h.Size, uint64(int64(h.Timestamp)), h.Root)
	return h.LogName == l.name && hmac.Equal(want[:], h.Signature[:])
}

func (l *Log) mac(kind byte, a, b uint64, root merkle.Hash) [32]byte {
	m := hmac.New(sha256.New, l.key)
	var buf [17]byte
	buf[0] = kind
	binary.BigEndian.PutUint64(buf[1:], a)
	binary.BigEndian.PutUint64(buf[9:], b)
	m.Write(buf[:])
	m.Write(root[:])
	var out [32]byte
	m.Sum(out[:0])
	return out
}

// Entries returns entries in [start, end] inclusive, mirroring the RFC 6962
// get-entries contract (the server may return fewer; this implementation
// returns all requested).
func (l *Log) Entries(start, end uint64) ([]Entry, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if start > end || end >= l.tree.Size() {
		return nil, fmt.Errorf("%w: [%d, %d] of %d", ErrRangeInvalid, start, end, l.tree.Size())
	}
	out := make([]Entry, 0, end-start+1)
	for i := start; i <= end; i++ {
		e := l.entries[i]
		e.Cert = e.Cert.Clone()
		out = append(out, e)
	}
	return out, nil
}

// InclusionProof returns the audit path for a leaf hash at a tree size.
func (l *Log) InclusionProof(leaf merkle.Hash, size uint64) (index uint64, proof []merkle.Hash, err error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	idx, ok := l.byLeaf[leaf]
	if !ok || idx >= size {
		return 0, nil, ErrNotFound
	}
	proof, err = l.tree.InclusionProof(idx, size)
	return idx, proof, err
}

// ConsistencyProof returns the consistency proof between two tree sizes.
func (l *Log) ConsistencyProof(first, second uint64) ([]merkle.Hash, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.tree.ConsistencyProof(first, second)
}

// RootAt returns the Merkle root at an earlier size (for verification in
// tests and the monitor).
func (l *Log) RootAt(size uint64) (merkle.Hash, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.tree.RootAt(size)
}
