package ctlog

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"stalecert/internal/merkle"
	"stalecert/internal/simtime"
)

func TestShardString(t *testing.T) {
	if got := (Shard{}).String(); got != "unsharded" {
		t.Fatalf("unsharded = %q", got)
	}
	s := Shard{Start: simtime.MustParse("2021-01-01"), End: simtime.MustParse("2022-01-01")}
	if got := s.String(); got != "2021-01-01..2022-01-01" {
		t.Fatalf("shard = %q", got)
	}
}

func TestVerifySTHRejectsWrongLog(t *testing.T) {
	a := New("log-a", Shard{})
	b := New("log-b", Shard{})
	if _, err := a.AddChain(testCert(t, 1, "x.com", 0, 9), 3); err != nil {
		t.Fatal(err)
	}
	sth := a.STH()
	if b.VerifySTH(sth) {
		t.Fatal("log B verified log A's STH")
	}
}

func TestHTTPFrozenLogReturns403(t *testing.T) {
	l := New("frozen", Shard{})
	l.Freeze()
	srv := NewServer(l)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())
	_, err := client.AddChain(context.Background(), testCert(t, 1, "x.com", 0, 9))
	var re *RemoteError
	if !errors.As(err, &re) || re.StatusCode != 403 {
		t.Fatalf("frozen add-chain: %v", err)
	}
}

func TestHTTPConsistencyBadParams(t *testing.T) {
	l := New("c", Shard{})
	srv := NewServer(l)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())
	if _, err := client.GetConsistency(context.Background(), 5, 2); err == nil {
		t.Fatal("inverted consistency accepted")
	}
}

func TestHTTPProofBadHashParam(t *testing.T) {
	l := New("p", Shard{})
	srv := NewServer(l)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/ct/v1/get-proof-by-hash?hash=%21%21&tree_size=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad hash param status = %d", resp.StatusCode)
	}
	// Wrong-length hash also rejected.
	resp2, err := ts.Client().Get(ts.URL + "/ct/v1/get-proof-by-hash?hash=YWJj&tree_size=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 400 {
		t.Fatalf("short hash status = %d", resp2.StatusCode)
	}
}

func TestHTTPMalformedAddChainBodies(t *testing.T) {
	l := New("m", Shard{})
	srv := NewServer(l)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, body := range []string{"", "{", `{"chain":[]}`, `{"chain":["!!!"]}`, `{"chain":["YWJj"]}`} {
		resp, err := ts.Client().Post(ts.URL+"/ct/v1/add-chain", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("body %q: status %d", body, resp.StatusCode)
		}
	}
}

func TestDecodeLeafInputErrors(t *testing.T) {
	if _, err := DecodeLeafInput([]byte{1, 2}); err == nil {
		t.Fatal("short leaf input accepted")
	}
	if _, err := DecodeLeafInput(append(make([]byte, 4), 0xFF)); err == nil {
		t.Fatal("garbage cert accepted")
	}
}

func TestRootAtOnLog(t *testing.T) {
	l := New("r", Shard{})
	if _, err := l.AddChain(testCert(t, 1, "x.com", 0, 9), 1); err != nil {
		t.Fatal(err)
	}
	r0, err := l.RootAt(0)
	if err != nil || r0 != merkle.EmptyRoot() {
		t.Fatalf("RootAt(0) = %v %v", r0, err)
	}
	if _, err := l.RootAt(5); err == nil {
		t.Fatal("RootAt beyond size accepted")
	}
}
