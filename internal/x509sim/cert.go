// Package x509sim provides the compact certificate model used throughout the
// reproduction. The paper analyses five billion CT entries; holding parsed
// crypto/x509 structures at even laptop scale would dominate memory, so this
// package models exactly the fields the pipelines consume — subscriber
// authentication (SANs + key), validity, issuer, serial, and CT metadata —
// with a deterministic binary codec and SHA-256 fingerprints for
// deduplication.
//
// Field selection mirrors the paper's certificate-information taxonomy
// (Table 1): subscriber authentication and certificate metadata are modelled
// in full; key authorization and issuer information are carried as compact
// enums since the pipelines only filter on them.
package x509sim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"

	"stalecert/internal/dnsname"
	"stalecert/internal/simtime"
)

// IssuerID identifies an issuing CA (profile table lives in internal/ca).
type IssuerID uint16

// KeyID identifies a subject keypair. Key *ownership* over time is tracked by
// the world simulator; certificates only reference the key.
type KeyID uint64

// SerialNumber is unique per issuer.
type SerialNumber uint64

// Fingerprint is the SHA-256 digest of a certificate's canonical encoding,
// excluding CT components (precert poison, SCTs), so a precertificate and its
// final certificate share a fingerprint — the paper's dedup criterion.
type Fingerprint [32]byte

// String renders the first 8 bytes in hex, enough for logs and tests.
func (f Fingerprint) String() string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 0; i < 8; i++ {
		b[2*i] = hexdigits[f[i]>>4]
		b[2*i+1] = hexdigits[f[i]&0xf]
	}
	return string(b[:])
}

// Hex renders the full 32-byte fingerprint as 64 hex digits — the canonical
// external identifier the query API serves certificates under.
func (f Fingerprint) Hex() string {
	return hex.EncodeToString(f[:])
}

// ErrBadFingerprint is returned by ParseFingerprint for anything that is not
// 64 (full) or 16 (short-prefix) hex digits.
var ErrBadFingerprint = errors.New("x509sim: fingerprint must be 64 or 16 hex digits")

// ParseFingerprint parses the Hex form (64 digits) or the String short form
// (16 digits, the first 8 bytes). short reports which one was given; for a
// short form only the first 8 bytes of the result are meaningful.
func ParseFingerprint(s string) (f Fingerprint, short bool, err error) {
	switch len(s) {
	case 64:
	case 16:
		short = true
	default:
		return f, false, ErrBadFingerprint
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return f, false, ErrBadFingerprint
	}
	copy(f[:], raw)
	return f, short, nil
}

// KeyUsage models the key-authorization taxonomy category (Table 1) as a bit
// set. Only ServerAuth matters to the detectors; the rest exist so
// key-authorization-change invalidation events can be represented.
type KeyUsage uint8

// KeyUsage bits.
const (
	UsageServerAuth KeyUsage = 1 << iota
	UsageClientAuth
	UsageCodeSigning
	UsageEmailProtection
	UsageOCSPSigning
)

// String lists the set bits.
func (u KeyUsage) String() string {
	names := []struct {
		bit  KeyUsage
		name string
	}{
		{UsageServerAuth, "serverAuth"},
		{UsageClientAuth, "clientAuth"},
		{UsageCodeSigning, "codeSigning"},
		{UsageEmailProtection, "emailProtection"},
		{UsageOCSPSigning, "ocspSigning"},
	}
	var parts []string
	for _, n := range names {
		if u&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// Certificate is a leaf TLS certificate. Names are canonical DNS names
// (wildcards permitted) and are kept sorted; the zero value is not valid —
// construct with New.
type Certificate struct {
	Serial    SerialNumber
	Issuer    IssuerID
	Key       KeyID
	Names     []string // sorted canonical SANs
	NotBefore simtime.Day
	NotAfter  simtime.Day // inclusive
	Usage     KeyUsage
	Precert   bool  // precertificate (CT poison) vs final certificate
	SCTCount  uint8 // embedded SCTs (certificate metadata; excluded from fingerprint)
}

// Errors returned by New and Unmarshal.
var (
	ErrNoNames       = errors.New("x509sim: certificate has no names")
	ErrBadValidity   = errors.New("x509sim: notAfter before notBefore")
	ErrBadName       = errors.New("x509sim: invalid SAN")
	ErrTruncated     = errors.New("x509sim: truncated encoding")
	ErrBadMagic      = errors.New("x509sim: bad magic byte")
	ErrTooManyNames  = errors.New("x509sim: too many SANs")
	ErrTrailingBytes = errors.New("x509sim: trailing bytes")
)

// MaxNames caps SANs per certificate. Cloudflare cruise-liner certificates
// carried dozens of customers; 256 is far above anything the simulator emits
// and keeps the codec's length fields in one byte.
const MaxNames = 256

// New validates and canonicalises a certificate. Names are canonicalised,
// deduplicated and sorted; usage defaults to serverAuth when zero.
func New(serial SerialNumber, issuer IssuerID, key KeyID, names []string, notBefore, notAfter simtime.Day) (*Certificate, error) {
	if len(names) == 0 {
		return nil, ErrNoNames
	}
	if len(names) > MaxNames {
		return nil, ErrTooManyNames
	}
	if notAfter < notBefore {
		return nil, ErrBadValidity
	}
	canon := make([]string, 0, len(names))
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		n = dnsname.Canonical(n)
		if err := dnsname.Check(n, true); err != nil {
			return nil, fmt.Errorf("%w: %q: %v", ErrBadName, n, err)
		}
		if !seen[n] {
			seen[n] = true
			canon = append(canon, n)
		}
	}
	sort.Strings(canon)
	return &Certificate{
		Serial:    serial,
		Issuer:    issuer,
		Key:       key,
		Names:     canon,
		NotBefore: notBefore,
		NotAfter:  notAfter,
		Usage:     UsageServerAuth,
	}, nil
}

// LifetimeDays returns the certificate's validity period in days, counting
// both endpoints (a cert valid on one day has lifetime 1).
func (c *Certificate) LifetimeDays() int {
	return int(c.NotAfter-c.NotBefore) + 1
}

// ValidOn reports whether the certificate is within its validity period on d.
func (c *Certificate) ValidOn(d simtime.Day) bool {
	return d >= c.NotBefore && d <= c.NotAfter
}

// Covers reports whether any SAN covers name (exact or wildcard match).
func (c *Certificate) Covers(name string) bool {
	for _, san := range c.Names {
		if dnsname.MatchWildcard(san, name) {
			return true
		}
	}
	return false
}

// HasName reports whether name appears verbatim in the SAN set.
func (c *Certificate) HasName(name string) bool {
	i := sort.SearchStrings(c.Names, name)
	return i < len(c.Names) && c.Names[i] == name
}

// Fingerprint hashes the canonical encoding excluding CT components.
func (c *Certificate) Fingerprint() Fingerprint {
	h := sha256.New()
	h.Write(c.appendBody(nil))
	var f Fingerprint
	h.Sum(f[:0])
	return f
}

// DedupKey is the (issuer key, serial) pair CRLs identify certificates by.
type DedupKey struct {
	Issuer IssuerID
	Serial SerialNumber
}

// DedupKey returns the CRL-join key for this certificate.
func (c *Certificate) DedupKey() DedupKey {
	return DedupKey{Issuer: c.Issuer, Serial: c.Serial}
}

// Clone returns a deep copy.
func (c *Certificate) Clone() *Certificate {
	dup := *c
	dup.Names = append([]string(nil), c.Names...)
	return &dup
}

// String summarises the certificate for logs.
func (c *Certificate) String() string {
	kind := "cert"
	if c.Precert {
		kind = "precert"
	}
	return fmt.Sprintf("%s{issuer=%d serial=%d key=%d names=%v validity=%s..%s}",
		kind, c.Issuer, c.Serial, c.Key, c.Names, c.NotBefore, c.NotAfter)
}

const (
	magicBody = 0xC5 // canonical body (fingerprint input)
	magicFull = 0xC6 // full encoding including CT metadata
)

// appendBody appends the canonical non-CT encoding: everything except the
// precert flag and SCT count.
func (c *Certificate) appendBody(b []byte) []byte {
	b = append(b, magicBody)
	b = binary.BigEndian.AppendUint64(b, uint64(c.Serial))
	b = binary.BigEndian.AppendUint16(b, uint16(c.Issuer))
	b = binary.BigEndian.AppendUint64(b, uint64(c.Key))
	b = binary.BigEndian.AppendUint32(b, uint32(int32(c.NotBefore)))
	b = binary.BigEndian.AppendUint32(b, uint32(int32(c.NotAfter)))
	b = append(b, byte(c.Usage))
	b = append(b, byte(len(c.Names)-1))
	for _, n := range c.Names {
		b = append(b, byte(len(n)))
		b = append(b, n...)
	}
	return b
}

// Marshal encodes the certificate to its deterministic wire form.
func (c *Certificate) Marshal() []byte {
	b := make([]byte, 0, 32+16*len(c.Names))
	b = append(b, magicFull)
	var flags byte
	if c.Precert {
		flags |= 1
	}
	b = append(b, flags, c.SCTCount)
	return c.appendBody(b)
}

// Unmarshal decodes a certificate produced by Marshal. It rejects trailing
// bytes so framing bugs surface immediately.
func Unmarshal(b []byte) (*Certificate, error) {
	c, rest, err := unmarshalPrefix(b)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, ErrTrailingBytes
	}
	return c, nil
}

// UnmarshalPrefix decodes one certificate from the front of b, returning the
// unconsumed remainder; used by stream decoders (CT get-entries).
func UnmarshalPrefix(b []byte) (*Certificate, []byte, error) {
	return unmarshalPrefix(b)
}

func unmarshalPrefix(b []byte) (*Certificate, []byte, error) {
	if len(b) < 3 {
		return nil, nil, ErrTruncated
	}
	if b[0] != magicFull {
		return nil, nil, ErrBadMagic
	}
	flags, scts := b[1], b[2]
	b = b[3:]
	const fixed = 1 + 8 + 2 + 8 + 4 + 4 + 1 + 1
	if len(b) < fixed {
		return nil, nil, ErrTruncated
	}
	if b[0] != magicBody {
		return nil, nil, ErrBadMagic
	}
	c := &Certificate{
		Serial:    SerialNumber(binary.BigEndian.Uint64(b[1:])),
		Issuer:    IssuerID(binary.BigEndian.Uint16(b[9:])),
		Key:       KeyID(binary.BigEndian.Uint64(b[11:])),
		NotBefore: simtime.Day(int32(binary.BigEndian.Uint32(b[19:]))),
		NotAfter:  simtime.Day(int32(binary.BigEndian.Uint32(b[23:]))),
		Usage:     KeyUsage(b[27]),
		Precert:   flags&1 != 0,
		SCTCount:  scts,
	}
	n := int(b[28]) + 1
	b = b[fixed:]
	c.Names = make([]string, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 1 {
			return nil, nil, ErrTruncated
		}
		l := int(b[0])
		if len(b) < 1+l {
			return nil, nil, ErrTruncated
		}
		c.Names = append(c.Names, string(b[1:1+l]))
		b = b[1+l:]
	}
	if c.NotAfter < c.NotBefore {
		return nil, nil, ErrBadValidity
	}
	return c, b, nil
}
