package x509sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// Boundary-case round-trips for the binary codec: the length fields are all
// one byte, so the interesting edges are MaxNames SANs, the 253-octet DNS
// name ceiling, and zero-length validity windows.

// maxLenName builds a 253-octet DNS name (the RFC 1035 ceiling) with
// 63-octet labels, parameterised so multiple distinct names can coexist in
// one SAN set.
func maxLenName(t *testing.T, i int) string {
	t.Helper()
	label := strings.Repeat("a", 63)
	name := fmt.Sprintf("%s.%s.%s.%s", label, label, label,
		strings.Repeat("b", 59)+fmt.Sprintf("%02d", i))
	if len(name) != 253 {
		t.Fatalf("helper built %d-octet name", len(name))
	}
	return name
}

func roundTrip(t *testing.T, c *Certificate) *Certificate {
	t.Helper()
	got, err := Unmarshal(c.Marshal())
	if err != nil {
		t.Fatalf("round-trip of %v: %v", c, err)
	}
	if got.String() != c.String() || got.Fingerprint() != c.Fingerprint() ||
		got.Usage != c.Usage || got.Precert != c.Precert || got.SCTCount != c.SCTCount {
		t.Fatalf("round-trip mismatch:\n in  %v\n out %v", c, got)
	}
	return got
}

func TestCodecMaxNames(t *testing.T) {
	names := make([]string, MaxNames)
	for i := range names {
		names[i] = fmt.Sprintf("host-%03d.cruise-liner.example.com", i)
	}
	c, err := New(7, 2, 99, names, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Names) != MaxNames {
		t.Fatalf("Names = %d", len(c.Names))
	}
	got := roundTrip(t, c)
	if len(got.Names) != MaxNames {
		t.Fatalf("decoded Names = %d", len(got.Names))
	}

	if _, err := New(7, 2, 99, append(names, "one-too-many.example.com"), 100, 200); !errors.Is(err, ErrTooManyNames) {
		t.Fatalf("MaxNames+1 err = %v", err)
	}
}

func TestCodecMaxLengthNames(t *testing.T) {
	names := []string{maxLenName(t, 1), maxLenName(t, 2), "short.example.com"}
	c, err := New(1, 1, 1, names, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, c)
	long := 0
	for _, n := range got.Names {
		if len(n) == 253 {
			long++
		}
	}
	if long != 2 {
		t.Fatalf("decoded %d max-length names, want 2: %v", long, got.Names)
	}
}

func TestCodecZeroValidity(t *testing.T) {
	// A certificate valid for exactly one day: NotBefore == NotAfter.
	c, err := New(5, 1, 5, []string{"oneday.example.com"}, 42, 42)
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, c)
	if got.LifetimeDays() != 1 || !got.ValidOn(42) || got.ValidOn(41) || got.ValidOn(43) {
		t.Fatalf("zero-width validity decoded wrong: %v", got)
	}

	if _, err := New(5, 1, 5, []string{"x.example.com"}, 43, 42); !errors.Is(err, ErrBadValidity) {
		t.Fatalf("inverted validity err = %v", err)
	}
}

func TestCodecNegativeDays(t *testing.T) {
	// Days are int32s; pre-epoch days must survive the uint32 wire form.
	c, err := New(6, 1, 6, []string{"old.example.com"}, -400, -10)
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, c)
	if got.NotBefore != -400 || got.NotAfter != -10 {
		t.Fatalf("negative days decoded as %v..%v", got.NotBefore, got.NotAfter)
	}
}

func TestCodecEmptySANSet(t *testing.T) {
	if _, err := New(1, 1, 1, nil, 0, 1); !errors.Is(err, ErrNoNames) {
		t.Fatalf("New(no names) err = %v", err)
	}
	// The wire format cannot represent zero names either: a hand-emptied
	// certificate encodes a count byte of 255 (len-1 underflow), which the
	// decoder reads as 256 names and rejects as truncated.
	c, err := New(1, 1, 1, []string{"x.example.com"}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Names = nil
	if _, err := Unmarshal(c.Marshal()); !errors.Is(err, ErrTruncated) {
		t.Fatalf("zero-SAN encoding err = %v", err)
	}
}

func TestCodecCTMetadataBoundaries(t *testing.T) {
	c, err := New(9, 3, 9, []string{"ct.example.com"}, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	pre := c.Clone()
	pre.Precert = true
	pre.SCTCount = 255
	got := roundTrip(t, pre)
	if !got.Precert || got.SCTCount != 255 {
		t.Fatalf("CT metadata decoded as precert=%v scts=%d", got.Precert, got.SCTCount)
	}
	// CT components stay outside the fingerprint.
	if got.Fingerprint() != c.Fingerprint() {
		t.Fatal("precert flag leaked into fingerprint")
	}
}

func TestCodecMalformedEncodings(t *testing.T) {
	c, err := New(2, 1, 2, []string{"m.example.com", "n.example.com"}, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	valid := c.Marshal()

	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrTruncated},
		{"two bytes", func(b []byte) []byte { return b[:2] }, ErrTruncated},
		{"header only", func(b []byte) []byte { return b[:3] }, ErrTruncated},
		{"cut mid-fixed", func(b []byte) []byte { return b[:10] }, ErrTruncated},
		{"cut mid-name", func(b []byte) []byte { return b[:len(b)-3] }, ErrTruncated},
		{"bad outer magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrBadMagic},
		{"bad body magic", func(b []byte) []byte { b[3] ^= 0xff; return b }, ErrBadMagic},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0x00) }, ErrTrailingBytes},
	}
	for _, tc := range cases {
		buf := append([]byte(nil), valid...)
		if _, err := Unmarshal(tc.mut(buf)); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	// Inverted validity on the wire (offsets: 3 header + 1 magic + 8 serial
	// + 2 issuer + 8 key = 22 → NotBefore at 22, NotAfter at 26).
	buf := append([]byte(nil), valid...)
	copy(buf[22:26], []byte{0x00, 0x00, 0x00, 0x63}) // NotBefore = 99 > NotAfter = 9
	if _, err := Unmarshal(buf); !errors.Is(err, ErrBadValidity) {
		t.Errorf("wire inverted validity err = %v", err)
	}
}

func TestFingerprintForms(t *testing.T) {
	c, err := New(3, 1, 3, []string{"fp.example.com"}, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	fp := c.Fingerprint()
	if len(fp.Hex()) != 64 || len(fp.String()) != 16 || !strings.HasPrefix(fp.Hex(), fp.String()) {
		t.Fatalf("Hex = %q String = %q", fp.Hex(), fp.String())
	}

	full, short, err := ParseFingerprint(fp.Hex())
	if err != nil || short || full != fp {
		t.Fatalf("ParseFingerprint(full) = %v %v %v", full, short, err)
	}
	pre, short, err := ParseFingerprint(fp.String())
	if err != nil || !short {
		t.Fatalf("ParseFingerprint(short) = %v %v", short, err)
	}
	if pre.String() != fp.String() {
		t.Fatalf("short prefix = %s, want %s", pre.String(), fp.String())
	}

	for _, bad := range []string{"", "abc", strings.Repeat("g", 64), strings.Repeat("a", 63), strings.Repeat("z", 16)} {
		if _, _, err := ParseFingerprint(bad); !errors.Is(err, ErrBadFingerprint) {
			t.Errorf("ParseFingerprint(%q) err = %v", bad, err)
		}
	}
}
