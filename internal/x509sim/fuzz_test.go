package x509sim

import (
	"math/rand"
	"testing"
)

func TestUnmarshalNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		buf := make([]byte, rng.Intn(150))
		rng.Read(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %x: %v", buf, r)
				}
			}()
			_, _ = Unmarshal(buf)
		}()
	}
}

func TestUnmarshalNeverPanicsOnMutations(t *testing.T) {
	c, err := New(42, 7, 99, []string{"example.com", "*.example.com", "www.example.com"}, 10, 400)
	if err != nil {
		t.Fatal(err)
	}
	valid := c.Marshal()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		buf := append([]byte(nil), valid...)
		for k := 0; k < 1+rng.Intn(3); k++ {
			buf[rng.Intn(len(buf))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %x: %v", buf, r)
				}
			}()
			if got, err := Unmarshal(buf); err == nil {
				_ = got.Marshal()
				_ = got.Fingerprint()
			}
		}()
	}
}

func TestUnmarshalTruncationsAllFail(t *testing.T) {
	c, _ := New(1, 1, 1, []string{"a.com"}, 0, 1)
	valid := c.Marshal()
	for cut := 0; cut < len(valid); cut++ {
		if _, err := Unmarshal(valid[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
