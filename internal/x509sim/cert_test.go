package x509sim

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"stalecert/internal/simtime"
)

func mustCert(t *testing.T, names []string, nb, na simtime.Day) *Certificate {
	t.Helper()
	c, err := New(1, 2, 3, names, nb, na)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCanonicalisesNames(t *testing.T) {
	c := mustCert(t, []string{"WWW.Example.COM", "example.com.", "example.com"}, 0, 90)
	want := []string{"example.com", "www.example.com"}
	if !reflect.DeepEqual(c.Names, want) {
		t.Fatalf("Names = %v, want %v", c.Names, want)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 1, 1, nil, 0, 1); err != ErrNoNames {
		t.Errorf("no names: %v", err)
	}
	if _, err := New(1, 1, 1, []string{"example.com"}, 10, 5); err != ErrBadValidity {
		t.Errorf("inverted validity: %v", err)
	}
	if _, err := New(1, 1, 1, []string{"bad name"}, 0, 1); err == nil {
		t.Error("bad SAN accepted")
	}
	many := make([]string, MaxNames+1)
	for i := range many {
		many[i] = "x.com"
	}
	if _, err := New(1, 1, 1, many, 0, 1); err != ErrTooManyNames {
		t.Errorf("too many names: %v", err)
	}
}

func TestLifetimeAndValidity(t *testing.T) {
	c := mustCert(t, []string{"example.com"}, 100, 189)
	if got := c.LifetimeDays(); got != 90 {
		t.Fatalf("LifetimeDays = %d, want 90", got)
	}
	if c.ValidOn(99) || !c.ValidOn(100) || !c.ValidOn(189) || c.ValidOn(190) {
		t.Fatal("ValidOn boundary semantics wrong")
	}
}

func TestCoversAndHasName(t *testing.T) {
	c := mustCert(t, []string{"example.com", "*.example.com", "sni1.cloudflaressl.com"}, 0, 1)
	if !c.Covers("example.com") || !c.Covers("www.example.com") {
		t.Error("Covers failed on direct/wildcard")
	}
	if c.Covers("a.b.example.com") {
		t.Error("wildcard should not cover two labels")
	}
	if !c.HasName("example.com") || c.HasName("www.example.com") {
		t.Error("HasName semantics wrong")
	}
}

func TestFingerprintIgnoresCTComponents(t *testing.T) {
	a := mustCert(t, []string{"example.com"}, 0, 90)
	b := a.Clone()
	b.Precert = true
	b.SCTCount = 3
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint should exclude CT components (precert dedup)")
	}
	c := a.Clone()
	c.Serial++
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("fingerprint should reflect serial")
	}
	d := a.Clone()
	d.Names = []string{"other.com"}
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatal("fingerprint should reflect names")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	c := mustCert(t, []string{"example.com", "*.example.com"}, -50, 400)
	c.Precert = true
	c.SCTCount = 2
	c.Usage = UsageServerAuth | UsageClientAuth
	got, err := Unmarshal(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	c := mustCert(t, []string{"example.com"}, 0, 1)
	enc := c.Marshal()
	if _, err := Unmarshal(enc[:len(enc)-1]); err != ErrTruncated {
		t.Errorf("truncated: %v", err)
	}
	if _, err := Unmarshal(append(enc, 0)); err != ErrTrailingBytes {
		t.Errorf("trailing: %v", err)
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 0xFF
	if _, err := Unmarshal(bad); err != ErrBadMagic {
		t.Errorf("magic: %v", err)
	}
	if _, err := Unmarshal(nil); err != ErrTruncated {
		t.Errorf("empty: %v", err)
	}
}

func TestUnmarshalPrefixStream(t *testing.T) {
	a := mustCert(t, []string{"a.com"}, 0, 1)
	b := mustCert(t, []string{"b.com", "c.com"}, 5, 100)
	stream := append(a.Marshal(), b.Marshal()...)
	gotA, rest, err := UnmarshalPrefix(stream)
	if err != nil {
		t.Fatal(err)
	}
	gotB, rest, err := UnmarshalPrefix(rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("leftover %d bytes", len(rest))
	}
	if !reflect.DeepEqual(a, gotA) || !reflect.DeepEqual(b, gotB) {
		t.Fatal("stream decode mismatch")
	}
}

func TestDedupKey(t *testing.T) {
	a := mustCert(t, []string{"a.com"}, 0, 1)
	b := a.Clone()
	b.Names = []string{"b.com"}
	if a.DedupKey() != b.DedupKey() {
		t.Fatal("dedup key should only depend on issuer+serial")
	}
}

func TestKeyUsageString(t *testing.T) {
	if got := (UsageServerAuth | UsageOCSPSigning).String(); got != "serverAuth+ocspSigning" {
		t.Fatalf("usage string = %q", got)
	}
	if got := KeyUsage(0).String(); got != "none" {
		t.Fatalf("zero usage string = %q", got)
	}
}

func TestFingerprintString(t *testing.T) {
	f := mustCert(t, []string{"a.com"}, 0, 1).Fingerprint()
	if len(f.String()) != 16 {
		t.Fatalf("fingerprint string = %q", f.String())
	}
}

func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(serial uint64, issuer uint16, key uint64, nb, na int16, nNames uint8, precert bool, scts uint8) bool {
		lo, hi := simtime.Day(nb), simtime.Day(na)
		if hi < lo {
			lo, hi = hi, lo
		}
		n := int(nNames)%5 + 1
		names := make([]string, n)
		for i := range names {
			names[i] = string([]byte{'a' + byte(i), '0' + byte(i)}) + ".example.com"
		}
		c, err := New(SerialNumber(serial), IssuerID(issuer), KeyID(key), names, lo, hi)
		if err != nil {
			return false
		}
		c.Precert = precert
		c.SCTCount = scts
		got, err := Unmarshal(c.Marshal())
		return err == nil && reflect.DeepEqual(c, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFingerprintDeterministic(t *testing.T) {
	f := func(serial uint64, key uint64) bool {
		a, err := New(SerialNumber(serial), 7, KeyID(key), []string{"example.com"}, 0, 90)
		if err != nil {
			return false
		}
		b := a.Clone()
		return a.Fingerprint() == b.Fingerprint()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMarshalDeterministic(t *testing.T) {
	f := func(serial uint64) bool {
		c, err := New(SerialNumber(serial), 1, 1, []string{"z.com", "a.com"}, 0, 5)
		if err != nil {
			return false
		}
		return bytes.Equal(c.Marshal(), c.Clone().Marshal())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	c, _ := New(42, 7, 99, []string{"example.com", "*.example.com", "www.example.com"}, 0, 397)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Marshal()
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	c, _ := New(42, 7, 99, []string{"example.com", "*.example.com", "www.example.com"}, 0, 397)
	enc := c.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFingerprint(b *testing.B) {
	c, _ := New(42, 7, 99, []string{"example.com", "*.example.com"}, 0, 397)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Fingerprint()
	}
}
