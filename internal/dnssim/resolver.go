package dnssim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Resolver queries an authoritative server over UDP with timeouts, retries
// and ID validation — the scanning client behind the daily aDNS collection.
type Resolver struct {
	// ServerAddr is the UDP address of the authoritative server.
	ServerAddr string
	// Timeout per attempt (default 2s).
	Timeout time.Duration
	// Retries is the number of additional attempts (default 2).
	Retries int

	mu  sync.Mutex
	rng *rand.Rand
}

// Resolver errors.
var (
	ErrIDMismatch = errors.New("dnssim: response ID mismatch")
	ErrTruncatedR = errors.New("dnssim: response truncated (TC set)")
	ErrServFailed = errors.New("dnssim: server failure")
)

// NXDomainError marks a name that does not exist.
type NXDomainError struct{ Name string }

func (e *NXDomainError) Error() string { return fmt.Sprintf("dnssim: NXDOMAIN for %q", e.Name) }

// Query sends one question and returns the answer records. NODATA yields an
// empty slice and nil error; NXDOMAIN yields *NXDomainError.
func (r *Resolver) Query(ctx context.Context, name string, t RRType) ([]Record, error) {
	timeout := r.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	attempts := r.Retries + 1
	if r.Retries == 0 {
		attempts = 3
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		recs, err := r.queryOnce(ctx, name, t, timeout)
		if err == nil {
			return recs, nil
		}
		var nx *NXDomainError
		if errors.As(err, &nx) {
			return nil, err // authoritative negative answer: don't retry
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

func (r *Resolver) queryOnce(ctx context.Context, name string, t RRType, timeout time.Duration) ([]Record, error) {
	r.mu.Lock()
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	id := uint16(r.rng.Intn(1 << 16))
	r.mu.Unlock()

	q := &Message{
		Header:    Header{ID: id, RecursionDesired: true},
		Questions: []Question{{Name: name, Type: t, Class: ClassIN}},
	}
	raw, err := q.Marshal()
	if err != nil {
		return nil, err
	}

	var d net.Dialer
	conn, err := d.DialContext(ctx, "udp", r.ServerAddr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	_ = conn.SetDeadline(deadline)
	if _, err := conn.Write(raw); err != nil {
		return nil, err
	}
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, err
	}
	resp, err := Unmarshal(buf[:n])
	if err != nil {
		return nil, err
	}
	if resp.ID != id {
		return nil, ErrIDMismatch
	}
	if resp.Truncated {
		return nil, ErrTruncatedR
	}
	switch resp.RCode {
	case RCodeNoError:
		return resp.Answers, nil
	case RCodeNXDomain:
		return nil, &NXDomainError{Name: name}
	default:
		return nil, fmt.Errorf("%w: %v", ErrServFailed, resp.RCode)
	}
}
