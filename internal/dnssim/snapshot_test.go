package dnssim

import (
	"context"
	"strings"
	"testing"
	"time"

	"stalecert/internal/simtime"
)

func isCloudflare(r Record) bool {
	switch r.Type {
	case TypeNS:
		return strings.HasSuffix(r.Data, ".ns.cloudflare.com")
	case TypeCNAME:
		return strings.HasSuffix(r.Data, ".cdn.cloudflare.com")
	}
	return false
}

func TestSnapshotBasics(t *testing.T) {
	s := NewSnapshot(100)
	s.Add("a.com", Record{Name: "a.com", Type: TypeNS, Data: "kiki.ns.cloudflare.com"})
	s.Add("b.com") // scanned, empty
	if !s.Scanned("a.com") || !s.Scanned("b.com") || s.Scanned("c.com") {
		t.Fatal("Scanned semantics")
	}
	if !s.Matches("a.com", isCloudflare) || s.Matches("b.com", isCloudflare) {
		t.Fatal("Matches semantics")
	}
	if got := s.Domains(); len(got) != 2 || got[0] != "a.com" {
		t.Fatalf("Domains = %v", got)
	}
	counts := s.CountByType()
	if counts[TypeNS] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestSnapshotStoreOrdering(t *testing.T) {
	st := &SnapshotStore{}
	if err := st.Add(NewSnapshot(10)); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(NewSnapshot(11)); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(NewSnapshot(11)); err == nil {
		t.Fatal("duplicate day accepted")
	}
	if err := st.Add(NewSnapshot(5)); err == nil {
		t.Fatal("out-of-order day accepted")
	}
	if st.On(10) == nil || st.On(99) != nil {
		t.Fatal("On lookup wrong")
	}
	if days := st.Days(); len(days) != 2 || days[0] != 10 {
		t.Fatalf("days = %v", days)
	}
}

func TestFindDepartures(t *testing.T) {
	prev := NewSnapshot(100)
	prev.Add("leaving.com", Record{Name: "leaving.com", Type: TypeNS, Data: "kiki.ns.cloudflare.com"})
	prev.Add("staying.com", Record{Name: "staying.com", Type: TypeNS, Data: "kiki.ns.cloudflare.com"})
	prev.Add("unrelated.com", Record{Name: "unrelated.com", Type: TypeNS, Data: "ns1.other.net"})
	prev.Add("vanishing.com", Record{Name: "vanishing.com", Type: TypeNS, Data: "kiki.ns.cloudflare.com"})

	next := NewSnapshot(101)
	next.Add("leaving.com", Record{Name: "leaving.com", Type: TypeNS, Data: "ns1.selfhost.net"})
	next.Add("staying.com", Record{Name: "staying.com", Type: TypeNS, Data: "kiki.ns.cloudflare.com"})
	next.Add("unrelated.com", Record{Name: "unrelated.com", Type: TypeNS, Data: "ns2.other.net"})
	// vanishing.com not scanned on day 101: must NOT count as departure.

	deps := FindDepartures(prev, next, isCloudflare)
	if len(deps) != 1 {
		t.Fatalf("departures = %+v", deps)
	}
	d := deps[0]
	if d.Domain != "leaving.com" || d.LastSeen != 100 || d.FirstGone != 101 {
		t.Fatalf("departure = %+v", d)
	}
}

func TestStoreDeparturesAcrossDays(t *testing.T) {
	st := &SnapshotStore{}
	for day := 0; day < 5; day++ {
		s := NewSnapshot(simtime.Day(day))
		// a.com departs between day 2 and 3; b.com stays throughout.
		if day <= 2 {
			s.Add("a.com", Record{Name: "a.com", Type: TypeNS, Data: "kiki.ns.cloudflare.com"})
		} else {
			s.Add("a.com", Record{Name: "a.com", Type: TypeNS, Data: "ns.elsewhere.net"})
		}
		s.Add("b.com", Record{Name: "b.com", Type: TypeCNAME, Data: "b.cdn.cloudflare.com"})
		if err := st.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	deps := st.Departures(isCloudflare)
	if len(deps) != 1 || deps[0].Domain != "a.com" || deps[0].FirstGone != 3 {
		t.Fatalf("departures = %+v", deps)
	}
}

func TestWireScannerEndToEnd(t *testing.T) {
	com := NewZone("com")
	records := []Record{
		{Name: "cf.com", Type: TypeNS, TTL: 300, Data: "kiki.ns.cloudflare.com"},
		{Name: "cf.com", Type: TypeA, TTL: 300, Data: "192.0.2.1"},
		{Name: "www.self.com", Type: TypeCNAME, TTL: 300, Data: "self.com"},
		{Name: "self.com", Type: TypeA, TTL: 300, Data: "192.0.2.2"},
	}
	for _, r := range records {
		if err := com.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	store := NewStore()
	store.AddZone(com)
	srv := NewServer(store)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ws := &WireScanner{Resolver: &Resolver{ServerAddr: addr.String(), Timeout: time.Second}}
	snap, err := ws.Scan(context.Background(), 42, []string{"cf.com", "self.com", "gone.com"})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Matches("cf.com", isCloudflare) {
		t.Fatal("cloudflare NS not observed over the wire")
	}
	if snap.Matches("self.com", isCloudflare) {
		t.Fatal("self-hosted domain misclassified")
	}
	if !snap.Scanned("gone.com") {
		t.Fatal("NXDOMAIN should still mark domain as scanned")
	}
	if len(snap.Records("gone.com")) != 0 {
		t.Fatal("NXDOMAIN produced records")
	}
}

func TestDirectScannerMatchesWireScanner(t *testing.T) {
	com := NewZone("com")
	for _, r := range []Record{
		{Name: "x.com", Type: TypeNS, TTL: 300, Data: "kiki.ns.cloudflare.com"},
		{Name: "x.com", Type: TypeA, TTL: 300, Data: "192.0.2.9"},
		{Name: "www.x.com", Type: TypeCNAME, TTL: 300, Data: "x.cdn.cloudflare.com"},
	} {
		if err := com.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	store := NewStore()
	store.AddZone(com)
	srv := NewServer(store)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	domains := []string{"x.com", "missing.com"}
	ws := &WireScanner{Resolver: &Resolver{ServerAddr: addr.String(), Timeout: time.Second}}
	wireSnap, err := ws.Scan(context.Background(), 7, domains)
	if err != nil {
		t.Fatal(err)
	}
	direct := &DirectScanner{Store: store}
	directSnap := direct.Scan(7, domains)

	for _, d := range domains {
		if wireSnap.Scanned(d) != directSnap.Scanned(d) {
			t.Fatalf("%s: scanned disagreement", d)
		}
		if wireSnap.Matches(d, isCloudflare) != directSnap.Matches(d, isCloudflare) {
			t.Fatalf("%s: match disagreement", d)
		}
	}
}
