package dnssim

import (
	"context"
	"errors"
	"testing"
	"time"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	com := NewZone("com")
	for _, r := range []Record{
		{Name: "example.com", Type: TypeA, TTL: 300, Data: "192.0.2.10"},
		{Name: "example.com", Type: TypeAAAA, TTL: 300, Data: "2001:db8::10"},
		{Name: "example.com", Type: TypeNS, TTL: 86400, Data: "ns1.hoster.net"},
		{Name: "example.com", Type: TypeNS, TTL: 86400, Data: "ns2.hoster.net"},
		{Name: "www.example.com", Type: TypeCNAME, TTL: 300, Data: "example.cdn.cloudflare.com"},
		{Name: "onlyns.com", Type: TypeNS, TTL: 300, Data: "kiki.ns.cloudflare.com"},
	} {
		if err := com.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	cf := NewZone("cloudflare.com")
	if err := cf.Add(Record{Name: "example.cdn.cloudflare.com", Type: TypeA, TTL: 60, Data: "198.51.100.1"}); err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	s.AddZone(com)
	s.AddZone(cf)
	return s
}

func TestStoreResolveDirect(t *testing.T) {
	s := testStore(t)
	recs, rcode, auth := s.Resolve(Question{Name: "example.com", Type: TypeA, Class: ClassIN})
	if rcode != RCodeNoError || !auth || len(recs) != 1 || recs[0].Data != "192.0.2.10" {
		t.Fatalf("resolve = %v %v %v", recs, rcode, auth)
	}
}

func TestStoreResolveCNAMEChase(t *testing.T) {
	s := testStore(t)
	recs, rcode, _ := s.Resolve(Question{Name: "www.example.com", Type: TypeA, Class: ClassIN})
	if rcode != RCodeNoError {
		t.Fatalf("rcode = %v", rcode)
	}
	if len(recs) != 2 || recs[0].Type != TypeCNAME || recs[1].Type != TypeA || recs[1].Data != "198.51.100.1" {
		t.Fatalf("chain = %v", recs)
	}
}

func TestStoreResolveNXDomainAndNoData(t *testing.T) {
	s := testStore(t)
	_, rcode, _ := s.Resolve(Question{Name: "missing.com", Type: TypeA, Class: ClassIN})
	if rcode != RCodeNXDomain {
		t.Fatalf("NXDOMAIN rcode = %v", rcode)
	}
	recs, rcode, _ := s.Resolve(Question{Name: "onlyns.com", Type: TypeA, Class: ClassIN})
	if rcode != RCodeNoError || len(recs) != 0 {
		t.Fatalf("NODATA = %v %v", recs, rcode)
	}
	_, rcode, auth := s.Resolve(Question{Name: "example.org", Type: TypeA, Class: ClassIN})
	if rcode != RCodeRefused || auth {
		t.Fatalf("out-of-bailiwick = %v auth=%v", rcode, auth)
	}
}

func TestServerOverUDP(t *testing.T) {
	s := testStore(t)
	srv := NewServer(s)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	r := &Resolver{ServerAddr: addr.String(), Timeout: time.Second}
	ctx := context.Background()

	recs, err := r.Query(ctx, "example.com", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Data != "192.0.2.10" {
		t.Fatalf("A = %v", recs)
	}

	recs, err = r.Query(ctx, "www.example.com", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("CNAME chain over UDP = %v", recs)
	}

	recs, err = r.Query(ctx, "example.com", TypeNS)
	if err != nil || len(recs) != 2 {
		t.Fatalf("NS = %v, %v", recs, err)
	}

	_, err = r.Query(ctx, "missing.com", TypeA)
	var nx *NXDomainError
	if !errors.As(err, &nx) || nx.Name != "missing.com" {
		t.Fatalf("NXDOMAIN over UDP: %v", err)
	}
}

func TestServerTruncatesOversizedResponses(t *testing.T) {
	z := NewZone("big.test")
	// 40 TXT records of ~100 bytes blows through 512 bytes.
	for i := 0; i < 40; i++ {
		if err := z.Add(Record{
			Name: "big.test", Type: TypeTXT, TTL: 60,
			Data: "record-" + itoa(i) + "-" + string(make([]byte, 0, 1)) + "abcdefghijklmnopqrstuvwxyz0123456789",
		}); err != nil {
			t.Fatal(err)
		}
	}
	s := NewStore()
	s.AddZone(z)
	srv := NewServer(s)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	r := &Resolver{ServerAddr: addr.String(), Timeout: time.Second, Retries: 1}
	_, err = r.Query(context.Background(), "big.test", TypeTXT)
	if !errors.Is(err, ErrTruncatedR) {
		t.Fatalf("expected truncation, got %v", err)
	}
}

func TestServerConcurrentQueriesDuringMutation(t *testing.T) {
	s := testStore(t)
	srv := NewServer(s)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		com := s.Zone("com")
		for i := 0; i < 200; i++ {
			s.Mutate(func() {
				com.Remove("example.com", TypeA, "")
				_ = com.Add(Record{Name: "example.com", Type: TypeA, TTL: 300, Data: "192.0.2." + itoa(i%250)})
			})
		}
	}()

	r := &Resolver{ServerAddr: addr.String(), Timeout: time.Second}
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if _, err := r.Query(ctx, "example.com", TypeA); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	<-done
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer(NewStore())
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("second close errored")
	}
}

func TestZoneAddRemove(t *testing.T) {
	z := NewZone("com")
	r := Record{Name: "Example.COM", Type: TypeA, TTL: 60, Data: "192.0.2.1"}
	if err := z.Add(r); err != nil {
		t.Fatal(err)
	}
	if err := z.Add(r); err != nil { // duplicate ignored
		t.Fatal(err)
	}
	if z.Len() != 1 {
		t.Fatalf("len = %d", z.Len())
	}
	if got := z.Lookup("example.com", TypeA); len(got) != 1 {
		t.Fatalf("lookup = %v", got)
	}
	if err := z.Add(Record{Name: "example.org", Type: TypeA, TTL: 1, Data: "192.0.2.1"}); err == nil {
		t.Fatal("out-of-zone record accepted")
	}
	if n := z.Remove("example.com", TypeA, "192.0.2.1"); n != 1 {
		t.Fatalf("removed %d", n)
	}
	if z.Len() != 0 {
		t.Fatal("zone not empty after remove")
	}
}

func TestZoneFileRoundTrip(t *testing.T) {
	text := `
; registry zone extract
example.com 86400 IN NS ns1.hoster.net
example.com 86400 IN NS kiki.ns.cloudflare.com
www.example.com 300 IN CNAME example.cdn.cloudflare.com ; delegated
shop.example.com 300 IN A 192.0.2.77
`
	z, err := ParseZoneFile("com", text)
	if err != nil {
		t.Fatal(err)
	}
	if z.Len() != 4 {
		t.Fatalf("parsed %d records", z.Len())
	}
	z2, err := ParseZoneFile("com", FormatZoneFile(z))
	if err != nil {
		t.Fatal(err)
	}
	if FormatZoneFile(z) != FormatZoneFile(z2) {
		t.Fatal("zone file round trip not stable")
	}
}

func TestZoneFileErrors(t *testing.T) {
	cases := []string{
		"example.com 300 IN",                     // too few fields
		"example.com abc IN A 192.0.2.1",         // bad TTL
		"example.com 300 CH A 192.0.2.1",         // bad class
		"example.com 300 IN MX mail.example.com", // unsupported type
		"example.com 300 IN A not-an-ip",         // bad data
	}
	for _, text := range cases {
		if _, err := ParseZoneFile("com", text); err == nil {
			t.Errorf("ParseZoneFile(%q) accepted", text)
		}
	}
}
