// Package dnssim implements the active-DNS substrate: resource records and
// zones, an RFC 1035 wire codec with name compression, a UDP authoritative
// server, a scanning resolver, and a daily snapshot store with a
// day-over-day differ — the machinery behind the paper's aDNS dataset
// (300M A/AAAA, 274M NS, 10M CNAME records per day) and its managed-TLS
// departure detection.
package dnssim

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"

	"stalecert/internal/dnsname"
)

// RRType is a DNS resource-record type code (RFC 1035 / 3596 values).
type RRType uint16

// Record types the simulator understands.
const (
	TypeA     RRType = 1
	TypeNS    RRType = 2
	TypeCNAME RRType = 5
	TypeSOA   RRType = 6
	TypeTXT   RRType = 16
	TypeAAAA  RRType = 28
)

var rrTypeNames = map[RRType]string{
	TypeA: "A", TypeNS: "NS", TypeCNAME: "CNAME",
	TypeSOA: "SOA", TypeTXT: "TXT", TypeAAAA: "AAAA",
}

// String names the type.
func (t RRType) String() string {
	if n, ok := rrTypeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// ParseRRType parses a textual type name ("A", "NS", ...).
func ParseRRType(s string) (RRType, bool) {
	for t, n := range rrTypeNames {
		if n == s {
			return t, true
		}
	}
	return 0, false
}

// ClassIN is the only class the simulator serves.
const ClassIN uint16 = 1

// Record is one resource record. Data holds the type-specific payload in
// presentation form: a textual IP for A/AAAA, a canonical target name for
// NS/CNAME/SOA-mname, free text for TXT.
type Record struct {
	Name string
	Type RRType
	TTL  uint32
	Data string
}

// String renders the record in zone-file style.
func (r Record) String() string {
	return fmt.Sprintf("%s %d IN %s %s", r.Name, r.TTL, r.Type, r.Data)
}

// Validate checks internal consistency (names canonical, data parseable).
func (r Record) Validate() error {
	if err := dnsname.Check(r.Name, true); err != nil {
		return fmt.Errorf("dnssim: record name: %w", err)
	}
	switch r.Type {
	case TypeA:
		ip, err := netip.ParseAddr(r.Data)
		if err != nil || !ip.Is4() {
			return fmt.Errorf("dnssim: A record %q: bad IPv4 %q", r.Name, r.Data)
		}
	case TypeAAAA:
		ip, err := netip.ParseAddr(r.Data)
		if err != nil || !ip.Is6() {
			return fmt.Errorf("dnssim: AAAA record %q: bad IPv6 %q", r.Name, r.Data)
		}
	case TypeNS, TypeCNAME:
		if err := dnsname.Check(r.Data, false); err != nil {
			return fmt.Errorf("dnssim: %s target %q: %w", r.Type, r.Data, err)
		}
	case TypeTXT:
		if len(r.Data) > 255 {
			return fmt.Errorf("dnssim: TXT record %q exceeds 255 bytes", r.Name)
		}
	case TypeSOA:
		if err := dnsname.Check(r.Data, false); err != nil {
			return fmt.Errorf("dnssim: SOA mname %q: %w", r.Data, err)
		}
	default:
		return fmt.Errorf("dnssim: unsupported type %v", r.Type)
	}
	return nil
}

// Key identifies an RRSet: one (owner name, type) pair.
type Key struct {
	Name string
	Type RRType
}

// Zone is a mutable set of records under one apex, safe for concurrent use
// (the UDP server answers queries while enrolments and departures mutate the
// zone). The zero value is not usable; construct with NewZone.
type Zone struct {
	Apex string

	mu   sync.RWMutex
	sets map[Key][]Record
}

// NewZone creates an empty zone rooted at apex (e.g. "com").
func NewZone(apex string) *Zone {
	return &Zone{Apex: dnsname.Canonical(apex), sets: make(map[Key][]Record)}
}

// Add inserts a record after validation; duplicate data under the same key
// is ignored.
func (z *Zone) Add(r Record) error {
	r.Name = dnsname.Canonical(r.Name)
	if r.Type == TypeNS || r.Type == TypeCNAME || r.Type == TypeSOA {
		r.Data = dnsname.Canonical(r.Data)
	}
	if err := r.Validate(); err != nil {
		return err
	}
	if !dnsname.IsSubdomain(r.Name, z.Apex) {
		return fmt.Errorf("dnssim: %q outside zone %q", r.Name, z.Apex)
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	k := Key{Name: r.Name, Type: r.Type}
	for _, existing := range z.sets[k] {
		if existing.Data == r.Data {
			return nil
		}
	}
	z.sets[k] = append(z.sets[k], r)
	return nil
}

// Remove deletes records matching (name, type, data); empty data removes the
// whole RRSet. It returns the number of records removed.
func (z *Zone) Remove(name string, t RRType, data string) int {
	z.mu.Lock()
	defer z.mu.Unlock()
	k := Key{Name: dnsname.Canonical(name), Type: t}
	set, ok := z.sets[k]
	if !ok {
		return 0
	}
	if data == "" {
		delete(z.sets, k)
		return len(set)
	}
	kept := set[:0]
	removed := 0
	for _, r := range set {
		if r.Data == data {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	if len(kept) == 0 {
		delete(z.sets, k)
	} else {
		z.sets[k] = kept
	}
	return removed
}

// Lookup returns the RRSet for (name, type), nil if absent. The returned
// slice is the caller's: Remove compacts sets in place, so sharing the
// backing array would race with later mutation.
func (z *Zone) Lookup(name string, t RRType) []Record {
	z.mu.RLock()
	defer z.mu.RUnlock()
	set := z.sets[Key{Name: dnsname.Canonical(name), Type: t}]
	if set == nil {
		return nil
	}
	return append([]Record(nil), set...)
}

// Names returns every owner name in the zone, sorted.
func (z *Zone) Names() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	seen := make(map[string]bool)
	for k := range z.sets {
		seen[k.Name] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Records returns every record in the zone in deterministic order.
func (z *Zone) Records() []Record {
	z.mu.RLock()
	defer z.mu.RUnlock()
	var out []Record
	for _, set := range z.sets {
		out = append(out, set...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].Data < out[j].Data
	})
	return out
}

// Len returns the number of records.
func (z *Zone) Len() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	n := 0
	for _, set := range z.sets {
		n += len(set)
	}
	return n
}

// ParseZoneFile reads a minimal master-file format: one record per line,
// "name TTL IN TYPE data...", with ';' comments and blank lines ignored.
// This is the format the CZDS-style zone snapshots are exchanged in.
func ParseZoneFile(apex, text string) (*Zone, error) {
	z := NewZone(apex)
	for lineNo, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 5 {
			return nil, fmt.Errorf("dnssim: zone line %d: want 5 fields, got %d", lineNo+1, len(fields))
		}
		var ttl uint32
		if _, err := fmt.Sscanf(fields[1], "%d", &ttl); err != nil {
			return nil, fmt.Errorf("dnssim: zone line %d: bad TTL %q", lineNo+1, fields[1])
		}
		if fields[2] != "IN" {
			return nil, fmt.Errorf("dnssim: zone line %d: class %q unsupported", lineNo+1, fields[2])
		}
		t, ok := ParseRRType(fields[3])
		if !ok {
			return nil, fmt.Errorf("dnssim: zone line %d: type %q unsupported", lineNo+1, fields[3])
		}
		r := Record{Name: fields[0], TTL: ttl, Type: t, Data: strings.Join(fields[4:], " ")}
		if err := z.Add(r); err != nil {
			return nil, fmt.Errorf("dnssim: zone line %d: %w", lineNo+1, err)
		}
	}
	return z, nil
}

// FormatZoneFile renders the zone back to master-file text.
func FormatZoneFile(z *Zone) string {
	var b strings.Builder
	for _, r := range z.Records() {
		fmt.Fprintf(&b, "%s %d IN %s %s\n", r.Name, r.TTL, r.Type, r.Data)
	}
	return b.String()
}
