package dnssim

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestRRTypeStrings(t *testing.T) {
	if TypeA.String() != "A" || TypeCNAME.String() != "CNAME" {
		t.Fatal("type names wrong")
	}
	if RRType(99).String() != "TYPE99" {
		t.Fatal(RRType(99).String())
	}
	if tt, ok := ParseRRType("AAAA"); !ok || tt != TypeAAAA {
		t.Fatal("ParseRRType")
	}
	if _, ok := ParseRRType("MX"); ok {
		t.Fatal("MX should be unsupported")
	}
}

func TestMessageRoundTripQuery(t *testing.T) {
	m := &Message{
		Header:    Header{ID: 0x1234, RecursionDesired: true},
		Questions: []Question{{Name: "example.com", Type: TypeA, Class: ClassIN}},
	}
	raw, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, m)
	}
}

func TestMessageRoundTripResponse(t *testing.T) {
	m := &Message{
		Header: Header{ID: 7, Response: true, Authoritative: true, RCode: RCodeNoError},
		Questions: []Question{
			{Name: "www.example.com", Type: TypeA, Class: ClassIN},
		},
		Answers: []Record{
			{Name: "www.example.com", Type: TypeCNAME, TTL: 300, Data: "example.cdn.cloudflare.com"},
			{Name: "example.cdn.cloudflare.com", Type: TypeA, TTL: 60, Data: "192.0.2.1"},
			{Name: "example.cdn.cloudflare.com", Type: TypeAAAA, TTL: 60, Data: "2001:db8::1"},
		},
		Authority: []Record{
			{Name: "example.com", Type: TypeNS, TTL: 86400, Data: "ns1.cloudflare.com"},
		},
		Additional: []Record{
			{Name: "example.com", Type: TypeTXT, TTL: 60, Data: "acme-challenge-token"},
		},
	}
	raw, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, m)
	}
}

func TestNameCompressionShrinksMessage(t *testing.T) {
	base := &Message{
		Header:    Header{ID: 1, Response: true},
		Questions: []Question{{Name: "a.very.long.subdomain.example.com", Type: TypeNS, Class: ClassIN}},
	}
	for i := 0; i < 5; i++ {
		base.Answers = append(base.Answers, Record{
			Name: "a.very.long.subdomain.example.com", Type: TypeNS, TTL: 60,
			Data: "ns.a.very.long.subdomain.example.com",
		})
	}
	raw, err := base.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Without compression each repeated name costs ~35 bytes; with pointers
	// each repetition costs 2. Budget generously but meaningfully.
	if len(raw) > 180 {
		t.Fatalf("compressed message is %d bytes; compression not working", len(raw))
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Fatal("compressed round trip mismatch")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	m := &Message{
		Header:    Header{ID: 9},
		Questions: []Question{{Name: "example.com", Type: TypeA, Class: ClassIN}},
	}
	raw, _ := m.Marshal()
	if _, err := Unmarshal(raw[:5]); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := Unmarshal(raw[:len(raw)-3]); err == nil {
		t.Error("truncated question accepted")
	}
	if _, err := Unmarshal(append(raw, 0xAB)); err != ErrTrailingGarbage {
		t.Errorf("trailing bytes: %v", err)
	}
}

func TestUnmarshalPointerLoopGuard(t *testing.T) {
	// Craft a message whose question name is a pointer to itself.
	raw := make([]byte, 12)
	raw[5] = 1 // QDCOUNT = 1
	// Name at offset 12: pointer to offset 12 (self-loop).
	raw = append(raw, 0xC0, 12, 0, 1, 0, 1)
	if _, err := Unmarshal(raw); err != ErrBadPointer {
		t.Fatalf("self-pointer: %v", err)
	}
	// Forward pointer (to beyond current offset) is also invalid.
	raw2 := make([]byte, 12)
	raw2[5] = 1
	raw2 = append(raw2, 0xC0, 40, 0, 1, 0, 1)
	if _, err := Unmarshal(raw2); err != ErrBadPointer {
		t.Fatalf("forward pointer: %v", err)
	}
}

func TestMarshalRejectsBadNames(t *testing.T) {
	m := &Message{Questions: []Question{{Name: strings.Repeat("a", 300), Type: TypeA, Class: ClassIN}}}
	if _, err := m.Marshal(); err != ErrNameTooLong {
		t.Fatalf("long name: %v", err)
	}
	m2 := &Message{Questions: []Question{{Name: strings.Repeat("a", 64) + ".com", Type: TypeA, Class: ClassIN}}}
	if _, err := m2.Marshal(); err != ErrLabelTooLong {
		t.Fatalf("long label: %v", err)
	}
}

func TestRecordValidate(t *testing.T) {
	good := []Record{
		{Name: "a.com", Type: TypeA, Data: "192.0.2.7"},
		{Name: "a.com", Type: TypeAAAA, Data: "2001:db8::7"},
		{Name: "a.com", Type: TypeNS, Data: "ns1.example.net"},
		{Name: "www.a.com", Type: TypeCNAME, Data: "a.cdn.example.net"},
		{Name: "a.com", Type: TypeTXT, Data: "hello world"},
		{Name: "a.com", Type: TypeSOA, Data: "ns1.a.com"},
	}
	for _, r := range good {
		if err := r.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v", r, err)
		}
	}
	bad := []Record{
		{Name: "a.com", Type: TypeA, Data: "2001:db8::7"},     // v6 in A
		{Name: "a.com", Type: TypeAAAA, Data: "192.0.2.7"},    // v4 in AAAA
		{Name: "a.com", Type: TypeA, Data: "not-an-ip"},       // garbage
		{Name: "a.com", Type: TypeNS, Data: "bad target.com"}, // space
		{Name: "bad name", Type: TypeA, Data: "192.0.2.1"},    // bad owner
		{Name: "a.com", Type: TypeTXT, Data: strings.Repeat("x", 256)},
		{Name: "a.com", Type: RRType(99), Data: "x"},
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("Validate(%v) accepted", r)
		}
	}
}

func TestQuickWireRoundTrip(t *testing.T) {
	f := func(id uint16, nameSeed uint8, ttl uint32, aLast uint8) bool {
		name := string([]byte{'a' + nameSeed%26}) + ".example.com"
		m := &Message{
			Header:    Header{ID: id, Response: true, Authoritative: true},
			Questions: []Question{{Name: name, Type: TypeA, Class: ClassIN}},
			Answers: []Record{
				{Name: name, Type: TypeA, TTL: ttl, Data: "192.0.2." + itoa(int(aLast))},
			},
		}
		raw, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(raw)
		return err == nil && reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [3]byte
	i := 3
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func BenchmarkMarshalResponse(b *testing.B) {
	m := &Message{
		Header:    Header{ID: 1, Response: true},
		Questions: []Question{{Name: "www.example.com", Type: TypeA, Class: ClassIN}},
		Answers: []Record{
			{Name: "www.example.com", Type: TypeCNAME, TTL: 300, Data: "x.cdn.cloudflare.com"},
			{Name: "x.cdn.cloudflare.com", Type: TypeA, TTL: 60, Data: "192.0.2.1"},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalResponse(b *testing.B) {
	m := &Message{
		Header:    Header{ID: 1, Response: true},
		Questions: []Question{{Name: "www.example.com", Type: TypeA, Class: ClassIN}},
		Answers: []Record{
			{Name: "www.example.com", Type: TypeCNAME, TTL: 300, Data: "x.cdn.cloudflare.com"},
			{Name: "x.cdn.cloudflare.com", Type: TypeA, TTL: 60, Data: "192.0.2.1"},
		},
	}
	raw, _ := m.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}
