package dnssim

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func parallelFixture(t testing.TB, n int) (*Server, []string) {
	t.Helper()
	com := NewZone("com")
	domains := make([]string, n)
	for i := 0; i < n; i++ {
		d := fmt.Sprintf("p%04d.com", i)
		domains[i] = d
		data := "ns1.self.net"
		if i%3 == 0 {
			data = "kiki.ns.cloudflare.com"
		}
		if err := com.Add(Record{Name: d, Type: TypeNS, TTL: 60, Data: data}); err != nil {
			t.Fatal(err)
		}
		if err := com.Add(Record{Name: d, Type: TypeA, TTL: 60, Data: "192.0.2.1"}); err != nil {
			t.Fatal(err)
		}
	}
	store := NewStore()
	store.AddZone(com)
	srv := NewServer(store)
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	return srv, domains
}

func TestScanParallelMatchesSerial(t *testing.T) {
	com := NewZone("com")
	var domains []string
	for i := 0; i < 60; i++ {
		d := fmt.Sprintf("q%03d.com", i)
		domains = append(domains, d)
		data := "ns1.self.net"
		if i%4 == 0 {
			data = "kiki.ns.cloudflare.com"
		}
		if err := com.Add(Record{Name: d, Type: TypeNS, TTL: 60, Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	domains = append(domains, "missing.com") // NXDOMAIN still counts as scanned
	store := NewStore()
	store.AddZone(com)
	srv := NewServer(store)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ws := &WireScanner{Resolver: &Resolver{ServerAddr: addr.String(), Timeout: 2 * time.Second}}
	ctx := context.Background()

	serial, err := ws.Scan(ctx, 7, domains)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ws.ScanParallel(ctx, 7, domains, 8)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Len() != parallel.Len() {
		t.Fatalf("serial scanned %d, parallel %d", serial.Len(), parallel.Len())
	}
	isCF := func(r Record) bool { return r.Type == TypeNS && r.Data == "kiki.ns.cloudflare.com" }
	for _, d := range domains {
		if serial.Scanned(d) != parallel.Scanned(d) {
			t.Fatalf("%s: scanned disagreement", d)
		}
		if serial.Matches(d, isCF) != parallel.Matches(d, isCF) {
			t.Fatalf("%s: match disagreement", d)
		}
		if len(serial.Records(d)) != len(parallel.Records(d)) {
			t.Fatalf("%s: record count disagreement: %d vs %d",
				d, len(serial.Records(d)), len(parallel.Records(d)))
		}
	}
}

func TestScanParallelRespectsContext(t *testing.T) {
	srv, domains := parallelFixture(t, 50)
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled
	ws := &WireScanner{Resolver: &Resolver{ServerAddr: "127.0.0.1:1", Timeout: 100 * time.Millisecond}}
	if _, err := ws.ScanParallel(ctx, 1, domains, 4); err == nil {
		t.Fatal("cancelled context not surfaced")
	}
}

func TestScanParallelDegenerateWorkers(t *testing.T) {
	com := NewZone("com")
	if err := com.Add(Record{Name: "one.com", Type: TypeA, TTL: 60, Data: "192.0.2.1"}); err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	store.AddZone(com)
	srv := NewServer(store)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ws := &WireScanner{Resolver: &Resolver{ServerAddr: addr.String(), Timeout: time.Second}}
	// workers <= 0 clamps to 1; workers > len(domains) clamps down.
	snap, err := ws.ScanParallel(context.Background(), 1, []string{"one.com"}, 0)
	if err != nil || !snap.Scanned("one.com") {
		t.Fatalf("clamped scan = %v %v", snap, err)
	}
	snap, err = ws.ScanParallel(context.Background(), 2, []string{"one.com"}, 64)
	if err != nil || !snap.Scanned("one.com") {
		t.Fatalf("over-provisioned scan = %v %v", snap, err)
	}
	// Empty domain list.
	snap, err = ws.ScanParallel(context.Background(), 3, nil, 4)
	if err != nil || snap.Len() != 0 {
		t.Fatalf("empty scan = %v %v", snap, err)
	}
}

func BenchmarkScanSerialVsParallel(b *testing.B) {
	com := NewZone("com")
	var domains []string
	for i := 0; i < 200; i++ {
		d := fmt.Sprintf("b%04d.com", i)
		domains = append(domains, d)
		if err := com.Add(Record{Name: d, Type: TypeNS, TTL: 60, Data: "ns1.self.net"}); err != nil {
			b.Fatal(err)
		}
	}
	store := NewStore()
	store.AddZone(com)
	srv := NewServer(store)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ws := &WireScanner{
		Resolver: &Resolver{ServerAddr: addr.String(), Timeout: 2 * time.Second},
		Prefixes: []string{""},
	}
	ctx := context.Background()

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ws.Scan(ctx, 1, domains); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ws.ScanParallel(ctx, 1, domains, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
}
