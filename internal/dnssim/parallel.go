package dnssim

import (
	"context"
	"errors"
	"sync"

	"stalecert/internal/simtime"
)

// ScanParallel runs the daily scan with a zdns-style worker pool: the
// paper's collection resolves hundreds of millions of names per day, which
// is only feasible with high concurrency. Results are merged into a single
// snapshot; per-domain result sets are identical to the serial Scan.
func (ws *WireScanner) ScanParallel(ctx context.Context, day simtime.Day, domains []string, workers int) (*Snapshot, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(domains) && len(domains) > 0 {
		workers = len(domains)
	}
	type result struct {
		domain  string
		records []Record
		scanned bool
	}

	jobs := make(chan string)
	results := make(chan result, workers)
	var wg sync.WaitGroup
	prefixes := ws.Prefixes
	if prefixes == nil {
		prefixes = []string{"", "www"}
	}

	worker := func() {
		defer wg.Done()
		for domain := range jobs {
			res := result{domain: domain}
			for _, prefix := range prefixes {
				name := domain
				if prefix != "" {
					name = prefix + "." + domain
				}
				for _, t := range ScanTypes {
					recs, err := ws.Resolver.Query(ctx, name, t)
					var nx *NXDomainError
					if errors.As(err, &nx) {
						res.scanned = true
						continue
					}
					if err != nil {
						continue
					}
					res.scanned = true
					res.records = append(res.records, recs...)
				}
			}
			select {
			case results <- res:
			case <-ctx.Done():
				return
			}
		}
	}

	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go worker()
	}
	go func() {
		defer close(jobs)
		for _, d := range domains {
			select {
			case jobs <- d:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	snap := NewSnapshot(day)
	for res := range results {
		if !res.scanned {
			continue
		}
		snap.Add(res.domain, res.records...)
		snap.Add(res.domain) // mark scanned even when empty
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}
