package dnssim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"

	"stalecert/internal/dnsname"
)

// RCode is a DNS response code.
type RCode uint8

// Response codes used by the simulator.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

// String names the response code.
func (r RCode) String() string {
	switch r {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	}
	return fmt.Sprintf("RCODE%d", uint8(r))
}

// Header is the fixed 12-byte DNS message header, decoded.
type Header struct {
	ID                 uint16
	Response           bool
	Opcode             uint8
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
}

// Question is one query.
type Question struct {
	Name  string
	Type  RRType
	Class uint16
}

// Message is a full DNS message.
type Message struct {
	Header
	Questions  []Question
	Answers    []Record
	Authority  []Record
	Additional []Record
}

// Codec errors.
var (
	ErrWireTruncated   = errors.New("dnssim: truncated message")
	ErrBadPointer      = errors.New("dnssim: bad compression pointer")
	ErrPointerLoop     = errors.New("dnssim: compression pointer loop")
	ErrNameTooLong     = errors.New("dnssim: name too long")
	ErrLabelTooLong    = errors.New("dnssim: label too long")
	ErrTrailingGarbage = errors.New("dnssim: trailing bytes")
)

// MaxUDPPayload is the classic 512-byte DNS/UDP ceiling. Larger responses
// set TC and get truncated, which the resolver surfaces.
const MaxUDPPayload = 512

// Marshal encodes the message with RFC 1035 name compression.
func (m *Message) Marshal() ([]byte, error) {
	b := make([]byte, 12, 256)
	binary.BigEndian.PutUint16(b[0:], m.ID)
	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Opcode&0xF) << 11
	if m.Authoritative {
		flags |= 1 << 10
	}
	if m.Truncated {
		flags |= 1 << 9
	}
	if m.RecursionDesired {
		flags |= 1 << 8
	}
	if m.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.RCode) & 0xF
	binary.BigEndian.PutUint16(b[2:], flags)
	binary.BigEndian.PutUint16(b[4:], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(b[6:], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(b[8:], uint16(len(m.Authority)))
	binary.BigEndian.PutUint16(b[10:], uint16(len(m.Additional)))

	comp := map[string]int{}
	var err error
	for _, q := range m.Questions {
		if b, err = appendName(b, q.Name, comp); err != nil {
			return nil, err
		}
		b = binary.BigEndian.AppendUint16(b, uint16(q.Type))
		b = binary.BigEndian.AppendUint16(b, q.Class)
	}
	for _, sec := range [][]Record{m.Answers, m.Authority, m.Additional} {
		for _, r := range sec {
			if b, err = appendRecord(b, r, comp); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

func appendName(b []byte, name string, comp map[string]int) ([]byte, error) {
	name = dnsname.Canonical(name)
	if len(name) > 253 {
		return nil, ErrNameTooLong
	}
	for name != "" {
		if off, ok := comp[name]; ok && off < 0x3FFF {
			return binary.BigEndian.AppendUint16(b, 0xC000|uint16(off)), nil
		}
		if len(b) < 0x3FFF {
			comp[name] = len(b)
		}
		label := name
		if i := strings.IndexByte(name, '.'); i >= 0 {
			label, name = name[:i], name[i+1:]
		} else {
			name = ""
		}
		if len(label) == 0 || len(label) > 63 {
			return nil, ErrLabelTooLong
		}
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	return append(b, 0), nil
}

func appendRecord(b []byte, r Record, comp map[string]int) ([]byte, error) {
	b, err := appendName(b, r.Name, comp)
	if err != nil {
		return nil, err
	}
	b = binary.BigEndian.AppendUint16(b, uint16(r.Type))
	b = binary.BigEndian.AppendUint16(b, ClassIN)
	b = binary.BigEndian.AppendUint32(b, r.TTL)
	// Reserve RDLENGTH, fill after writing RDATA.
	lenAt := len(b)
	b = append(b, 0, 0)
	switch r.Type {
	case TypeA, TypeAAAA:
		ip, perr := netip.ParseAddr(r.Data)
		if perr != nil {
			return nil, fmt.Errorf("dnssim: marshal %s: %w", r.Type, perr)
		}
		raw := ip.AsSlice()
		if (r.Type == TypeA && len(raw) != 4) || (r.Type == TypeAAAA && len(raw) != 16) {
			return nil, fmt.Errorf("dnssim: marshal %s: wrong address family %q", r.Type, r.Data)
		}
		b = append(b, raw...)
	case TypeNS, TypeCNAME:
		if b, err = appendName(b, r.Data, comp); err != nil {
			return nil, err
		}
	case TypeTXT:
		if len(r.Data) > 255 {
			return nil, fmt.Errorf("dnssim: marshal TXT: data too long")
		}
		b = append(b, byte(len(r.Data)))
		b = append(b, r.Data...)
	case TypeSOA:
		// Minimal SOA: mname = Data, rname = hostmaster.<mname>, zero timers.
		if b, err = appendName(b, r.Data, comp); err != nil {
			return nil, err
		}
		if b, err = appendName(b, "hostmaster."+r.Data, comp); err != nil {
			return nil, err
		}
		b = append(b, make([]byte, 20)...)
	default:
		return nil, fmt.Errorf("dnssim: marshal: unsupported type %v", r.Type)
	}
	binary.BigEndian.PutUint16(b[lenAt:], uint16(len(b)-lenAt-2))
	return b, nil
}

// Unmarshal decodes a full DNS message.
func Unmarshal(b []byte) (*Message, error) {
	if len(b) < 12 {
		return nil, ErrWireTruncated
	}
	m := &Message{}
	m.ID = binary.BigEndian.Uint16(b[0:])
	flags := binary.BigEndian.Uint16(b[2:])
	m.Response = flags&(1<<15) != 0
	m.Opcode = uint8(flags >> 11 & 0xF)
	m.Authoritative = flags&(1<<10) != 0
	m.Truncated = flags&(1<<9) != 0
	m.RecursionDesired = flags&(1<<8) != 0
	m.RecursionAvailable = flags&(1<<7) != 0
	m.RCode = RCode(flags & 0xF)
	qd := int(binary.BigEndian.Uint16(b[4:]))
	an := int(binary.BigEndian.Uint16(b[6:]))
	ns := int(binary.BigEndian.Uint16(b[8:]))
	ar := int(binary.BigEndian.Uint16(b[10:]))

	off := 12
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		q.Name, off, err = readName(b, off)
		if err != nil {
			return nil, err
		}
		if off+4 > len(b) {
			return nil, ErrWireTruncated
		}
		q.Type = RRType(binary.BigEndian.Uint16(b[off:]))
		q.Class = binary.BigEndian.Uint16(b[off+2:])
		off += 4
		m.Questions = append(m.Questions, q)
	}
	for _, sec := range []struct {
		n   int
		dst *[]Record
	}{{an, &m.Answers}, {ns, &m.Authority}, {ar, &m.Additional}} {
		for i := 0; i < sec.n; i++ {
			var r Record
			r, off, err = readRecord(b, off)
			if err != nil {
				return nil, err
			}
			*sec.dst = append(*sec.dst, r)
		}
	}
	if off != len(b) {
		return nil, ErrTrailingGarbage
	}
	return m, nil
}

func readName(b []byte, off int) (string, int, error) {
	var sb strings.Builder
	jumps := 0
	ptrEnd := -1 // position after the first pointer, where parsing resumes
	for {
		if off >= len(b) {
			return "", 0, ErrWireTruncated
		}
		c := b[off]
		switch {
		case c == 0:
			off++
			if ptrEnd >= 0 {
				off = ptrEnd
			}
			name := sb.String()
			if len(name) > 253 {
				return "", 0, ErrNameTooLong
			}
			return name, off, nil
		case c&0xC0 == 0xC0:
			if off+1 >= len(b) {
				return "", 0, ErrWireTruncated
			}
			target := int(binary.BigEndian.Uint16(b[off:]) & 0x3FFF)
			if target >= off {
				return "", 0, ErrBadPointer
			}
			if ptrEnd < 0 {
				ptrEnd = off + 2
			}
			jumps++
			if jumps > 32 {
				return "", 0, ErrPointerLoop
			}
			off = target
		case c&0xC0 != 0:
			return "", 0, ErrBadPointer
		default:
			l := int(c)
			if off+1+l > len(b) {
				return "", 0, ErrWireTruncated
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(b[off+1 : off+1+l])
			off += 1 + l
			if sb.Len() > 253 {
				return "", 0, ErrNameTooLong
			}
		}
	}
}

func readRecord(b []byte, off int) (Record, int, error) {
	var r Record
	var err error
	r.Name, off, err = readName(b, off)
	if err != nil {
		return r, 0, err
	}
	if off+10 > len(b) {
		return r, 0, ErrWireTruncated
	}
	r.Type = RRType(binary.BigEndian.Uint16(b[off:]))
	r.TTL = binary.BigEndian.Uint32(b[off+4:])
	rdlen := int(binary.BigEndian.Uint16(b[off+8:]))
	off += 10
	if off+rdlen > len(b) {
		return r, 0, ErrWireTruncated
	}
	rdEnd := off + rdlen
	switch r.Type {
	case TypeA:
		if rdlen != 4 {
			return r, 0, fmt.Errorf("dnssim: A rdata length %d", rdlen)
		}
		addr, _ := netip.AddrFromSlice(b[off:rdEnd])
		r.Data = addr.String()
	case TypeAAAA:
		if rdlen != 16 {
			return r, 0, fmt.Errorf("dnssim: AAAA rdata length %d", rdlen)
		}
		addr, _ := netip.AddrFromSlice(b[off:rdEnd])
		r.Data = addr.String()
	case TypeNS, TypeCNAME:
		var end int
		r.Data, end, err = readName(b, off)
		if err != nil {
			return r, 0, err
		}
		if end > rdEnd {
			return r, 0, ErrWireTruncated
		}
	case TypeTXT:
		if rdlen < 1 || int(b[off])+1 > rdlen {
			return r, 0, fmt.Errorf("dnssim: TXT rdata malformed")
		}
		r.Data = string(b[off+1 : off+1+int(b[off])])
	case TypeSOA:
		var end int
		r.Data, end, err = readName(b, off)
		if err != nil {
			return r, 0, err
		}
		if end > rdEnd {
			return r, 0, ErrWireTruncated
		}
	default:
		// Unknown types carried opaquely (hex would be nicer; skip suffices).
		r.Data = ""
	}
	return r, rdEnd, nil
}
