package dnssim

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"stalecert/internal/obs"
	"stalecert/internal/simtime"
)

// Daily-differ metrics: how much work each snapshot diff does and what it
// finds (the managed-TLS departure signal).
var (
	mDiffDomains    = obs.Default().Counter("dns_snapshot_domains_diffed_total")
	mDiffDepartures = obs.Default().Counter("dns_departures_found_total")
)

// Snapshot is one day's scan results: per-domain resource records for the
// A/AAAA/NS/CNAME types the paper's aDNS dataset collects.
type Snapshot struct {
	Day      simtime.Day
	byDomain map[string][]Record
}

// NewSnapshot creates an empty snapshot for a day.
func NewSnapshot(day simtime.Day) *Snapshot {
	return &Snapshot{Day: day, byDomain: make(map[string][]Record)}
}

// Add appends records observed for domain.
func (s *Snapshot) Add(domain string, recs ...Record) {
	if len(recs) == 0 {
		// Record the domain as scanned-but-empty so diffs can distinguish
		// "resolved to nothing" from "not scanned".
		if _, ok := s.byDomain[domain]; !ok {
			s.byDomain[domain] = nil
		}
		return
	}
	s.byDomain[domain] = append(s.byDomain[domain], recs...)
}

// Domains returns all scanned domains, sorted.
func (s *Snapshot) Domains() []string {
	out := make([]string, 0, len(s.byDomain))
	for d := range s.byDomain {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Records returns the records observed for domain.
func (s *Snapshot) Records(domain string) []Record { return s.byDomain[domain] }

// Scanned reports whether domain was scanned on this day.
func (s *Snapshot) Scanned(domain string) bool {
	_, ok := s.byDomain[domain]
	return ok
}

// Matches reports whether any record for domain satisfies pred.
func (s *Snapshot) Matches(domain string, pred func(Record) bool) bool {
	for _, r := range s.byDomain[domain] {
		if pred(r) {
			return true
		}
	}
	return false
}

// Len returns the number of scanned domains.
func (s *Snapshot) Len() int { return len(s.byDomain) }

// CountByType tallies records by type, the Table 3 dataset accounting.
func (s *Snapshot) CountByType() map[RRType]int {
	out := make(map[RRType]int)
	for _, recs := range s.byDomain {
		for _, r := range recs {
			out[r.Type]++
		}
	}
	return out
}

// Store-level history.

// SnapshotStore holds consecutive daily snapshots in day order.
type SnapshotStore struct {
	mu    sync.RWMutex
	snaps []*Snapshot
}

// Add appends a snapshot; days must be strictly increasing.
func (st *SnapshotStore) Add(s *Snapshot) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if n := len(st.snaps); n > 0 && st.snaps[n-1].Day >= s.Day {
		return fmt.Errorf("dnssim: snapshot day %v not after %v", s.Day, st.snaps[n-1].Day)
	}
	st.snaps = append(st.snaps, s)
	return nil
}

// Days lists the snapshot days in order.
func (st *SnapshotStore) Days() []simtime.Day {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]simtime.Day, len(st.snaps))
	for i, s := range st.snaps {
		out[i] = s.Day
	}
	return out
}

// On returns the snapshot for a day, or nil.
func (st *SnapshotStore) On(day simtime.Day) *Snapshot {
	st.mu.RLock()
	defer st.mu.RUnlock()
	i := sort.Search(len(st.snaps), func(i int) bool { return st.snaps[i].Day >= day })
	if i < len(st.snaps) && st.snaps[i].Day == day {
		return st.snaps[i]
	}
	return nil
}

// Len returns the number of stored snapshots.
func (st *SnapshotStore) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.snaps)
}

// Departure records that a domain stopped matching a pattern between two
// consecutive scan days: present on LastSeen, absent on FirstGone. This is
// exactly the paper's managed-TLS departure signal (Cloudflare NS/CNAME
// present one day, gone the next).
type Departure struct {
	Domain    string
	LastSeen  simtime.Day
	FirstGone simtime.Day
}

// FindDepartures diffs two consecutive snapshots: domains matching pred in
// prev but scanned-and-not-matching in next. Domains missing from next's
// scan are skipped (can't distinguish departure from scan failure).
func FindDepartures(prev, next *Snapshot, pred func(Record) bool) []Departure {
	var out []Departure
	mDiffDomains.Add(uint64(len(prev.byDomain)))
	defer func() { mDiffDepartures.Add(uint64(len(out))) }()
	for domain := range prev.byDomain {
		if !prev.Matches(domain, pred) {
			continue
		}
		if !next.Scanned(domain) {
			continue
		}
		if !next.Matches(domain, pred) {
			out = append(out, Departure{Domain: domain, LastSeen: prev.Day, FirstGone: next.Day})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// Departures runs FindDepartures over every consecutive snapshot pair.
func (st *SnapshotStore) Departures(pred func(Record) bool) []Departure {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []Departure
	for i := 1; i < len(st.snaps); i++ {
		out = append(out, FindDepartures(st.snaps[i-1], st.snaps[i], pred)...)
	}
	return out
}

// Scanners.

// ScanTypes are the record types the daily collection resolves, matching the
// paper's dataset.
var ScanTypes = []RRType{TypeA, TypeAAAA, TypeNS, TypeCNAME}

// WireScanner performs the daily scan over real UDP through a Resolver.
// It is the fidelity path: integration tests prove the full wire pipeline.
type WireScanner struct {
	Resolver *Resolver
	// Prefixes are additional owner names scanned per domain ("" scans the
	// apex; "www" scans www.<domain>, where CNAME delegation usually lives).
	Prefixes []string
}

// Scan resolves every domain for every ScanType and returns the snapshot.
func (ws *WireScanner) Scan(ctx context.Context, day simtime.Day, domains []string) (*Snapshot, error) {
	prefixes := ws.Prefixes
	if prefixes == nil {
		prefixes = []string{"", "www"}
	}
	snap := NewSnapshot(day)
	for _, domain := range domains {
		scanned := false
		for _, prefix := range prefixes {
			name := domain
			if prefix != "" {
				name = prefix + "." + domain
			}
			for _, t := range ScanTypes {
				recs, err := ws.Resolver.Query(ctx, name, t)
				var nx *NXDomainError
				if errors.As(err, &nx) {
					scanned = true // authoritative negative answer
					continue
				}
				if err != nil {
					if ctx.Err() != nil {
						return nil, ctx.Err()
					}
					continue // transient failure: domain may be rescanned tomorrow
				}
				scanned = true
				snap.Add(domain, recs...)
			}
		}
		if scanned {
			snap.Add(domain) // mark as scanned even if empty
		}
	}
	return snap, nil
}

// DirectScanner reads the zone store in-process, skipping the UDP round
// trip. It is the throughput path used for large simulations; the ablation
// bench quantifies the difference against WireScanner.
type DirectScanner struct {
	Store *Store
	// Prefixes as in WireScanner.
	Prefixes []string
}

// Scan snapshots the store's view of every domain.
func (ds *DirectScanner) Scan(day simtime.Day, domains []string) *Snapshot {
	prefixes := ds.Prefixes
	if prefixes == nil {
		prefixes = []string{"", "www"}
	}
	snap := NewSnapshot(day)
	for _, domain := range domains {
		found := false
		for _, prefix := range prefixes {
			name := domain
			if prefix != "" {
				name = prefix + "." + domain
			}
			for _, t := range ScanTypes {
				recs, rcode, auth := ds.Store.Resolve(Question{Name: name, Type: t, Class: ClassIN})
				if auth {
					found = true // authoritative answer, even NXDOMAIN/NODATA
				}
				if rcode == RCodeNoError && len(recs) > 0 {
					snap.Add(domain, recs...)
				}
			}
		}
		if found {
			snap.Add(domain)
		}
	}
	return snap
}
