package dnssim

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"

	"stalecert/internal/dnsname"
	"stalecert/internal/obs"
)

// UDP server metrics, labelled by response code.
var (
	mQueriesMalformed = obs.Default().Counter("dns_queries_total", "rcode", "malformed")
	mRespTruncated    = obs.Default().Counter("dns_responses_truncated_total")
)

func queryCounter(rcode RCode) *obs.Counter {
	return obs.Default().Counter("dns_queries_total", "rcode", rcode.String())
}

// Store holds the authoritative zones a server answers from. It is safe for
// concurrent use: the world simulator mutates delegations while the scanner
// reads.
type Store struct {
	mu    sync.RWMutex
	zones map[string]*Zone // apex -> zone
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{zones: make(map[string]*Zone)}
}

// AddZone registers (or replaces) a zone.
func (s *Store) AddZone(z *Zone) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zones[z.Apex] = z
}

// Zone returns the zone with the given apex, or nil.
func (s *Store) Zone(apex string) *Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.zones[dnsname.Canonical(apex)]
}

// Apexes lists registered zone apexes, sorted.
func (s *Store) Apexes() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.zones))
	for a := range s.zones {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// findZone returns the zone with the longest apex that is a suffix of name.
func (s *Store) findZone(name string) *Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for n := name; n != ""; n = dnsname.Parent(n) {
		if z, ok := s.zones[n]; ok {
			return z
		}
	}
	return nil
}

// Mutate runs fn with the store's write lock held, for atomic multi-record
// updates (e.g. a CDN migration swapping NS records).
func (s *Store) Mutate(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn()
}

// RLocked runs fn with the read lock held; used by the in-process scanner to
// take consistent snapshots without the UDP round trip.
func (s *Store) RLocked(fn func(zones map[string]*Zone)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fn(s.zones)
}

// Resolve answers a question from the store, implementing authoritative
// semantics with in-zone CNAME chasing. The boolean reports whether this
// store is authoritative for the name at all.
func (s *Store) Resolve(q Question) (answers []Record, rcode RCode, authoritative bool) {
	name := dnsname.Canonical(q.Name)
	z := s.findZone(name)
	if z == nil {
		return nil, RCodeRefused, false
	}
	const maxChase = 8
	cur := name
	for hop := 0; hop < maxChase; hop++ {
		s.mu.RLock()
		direct := z.Lookup(cur, q.Type)
		cname := z.Lookup(cur, TypeCNAME)
		exists := len(direct) > 0 || len(cname) > 0 || zoneHasName(z, cur)
		s.mu.RUnlock()

		if len(direct) > 0 {
			return append(answers, direct...), RCodeNoError, true
		}
		if q.Type != TypeCNAME && len(cname) > 0 {
			answers = append(answers, cname...)
			target := cname[0].Data
			if next := s.findZone(target); next != nil {
				z = next
				cur = target
				continue
			}
			// Target outside our authority: return the CNAME chain.
			return answers, RCodeNoError, true
		}
		if exists {
			return answers, RCodeNoError, true // NODATA
		}
		if len(answers) > 0 {
			return answers, RCodeNoError, true // chain ended at a dangling target
		}
		return nil, RCodeNXDomain, true
	}
	return answers, RCodeServFail, true
}

func zoneHasName(z *Zone, name string) bool {
	for _, t := range []RRType{TypeA, TypeAAAA, TypeNS, TypeTXT, TypeSOA, TypeCNAME} {
		if len(z.Lookup(name, t)) > 0 {
			return true
		}
	}
	return false
}

// Server is an authoritative DNS server over UDP. Create with NewServer,
// start with Start, stop with Close.
type Server struct {
	store *Store

	mu     sync.Mutex
	conn   net.PacketConn
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps a store.
func NewServer(store *Store) *Server {
	return &Server{store: store}
}

// Store returns the server's zone store.
func (s *Server) Store() *Store { return s.store }

// Start begins serving on addr ("127.0.0.1:0" for an ephemeral port) and
// returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnssim: listen: %w", err)
	}
	s.mu.Lock()
	s.conn = conn
	s.mu.Unlock()
	s.wg.Add(1)
	go s.loop(conn)
	return conn.LocalAddr(), nil
}

// Close stops the server and waits for the serve loop to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conn := s.conn
	s.mu.Unlock()
	var err error
	if conn != nil {
		err = conn.Close()
	}
	s.wg.Wait()
	return err
}

// Shutdown stops the server like Close but bounds the wait for the serve
// loop by ctx, mirroring the graceful drain the HTTP daemons get from
// net/http.Server.Shutdown.
func (s *Server) Shutdown(ctx context.Context) error {
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) loop(conn net.PacketConn) {
	defer s.wg.Done()
	buf := make([]byte, 4096)
	for {
		n, from, err := conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		resp := s.handle(buf[:n])
		if resp != nil {
			_, _ = conn.WriteTo(resp, from)
		}
	}
}

// handle produces the wire response for one wire query (nil to drop).
func (s *Server) handle(raw []byte) []byte {
	req, err := Unmarshal(raw)
	if err != nil || req.Response || len(req.Questions) != 1 {
		mQueriesMalformed.Inc()
		// Malformed or not a simple query: answer FORMERR when we can echo
		// an ID, otherwise drop.
		if err != nil && len(raw) >= 2 {
			m := &Message{Header: Header{Response: true, RCode: RCodeFormErr}}
			m.ID = uint16(raw[0])<<8 | uint16(raw[1])
			out, _ := m.Marshal()
			return out
		}
		return nil
	}
	q := req.Questions[0]
	resp := &Message{
		Header: Header{
			ID:               req.ID,
			Response:         true,
			Opcode:           req.Opcode,
			RecursionDesired: req.RecursionDesired,
		},
		Questions: []Question{q},
	}
	if req.Opcode != 0 {
		resp.RCode = RCodeNotImp
	} else if q.Class != ClassIN {
		resp.RCode = RCodeRefused
	} else {
		answers, rcode, auth := s.store.Resolve(q)
		resp.Answers = answers
		resp.RCode = rcode
		resp.Authoritative = auth
	}
	queryCounter(resp.RCode).Inc()
	out, err := resp.Marshal()
	if err != nil {
		resp = &Message{Header: Header{ID: req.ID, Response: true, RCode: RCodeServFail}, Questions: []Question{q}}
		out, _ = resp.Marshal()
		return out
	}
	if len(out) > MaxUDPPayload {
		// Truncate: drop answers and set TC, as RFC 1035 servers do.
		mRespTruncated.Inc()
		resp.Answers = nil
		resp.Truncated = true
		out, _ = resp.Marshal()
	}
	return out
}
