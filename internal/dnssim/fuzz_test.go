package dnssim

import (
	"math/rand"
	"testing"
)

// Decoder robustness: arbitrary bytes must never panic and mutated valid
// messages must either fail or decode to something internally consistent.

func TestUnmarshalNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		n := rng.Intn(200)
		buf := make([]byte, n)
		rng.Read(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %x: %v", buf, r)
				}
			}()
			_, _ = Unmarshal(buf)
		}()
	}
}

func TestUnmarshalNeverPanicsOnMutatedMessages(t *testing.T) {
	m := &Message{
		Header:    Header{ID: 77, Response: true, Authoritative: true},
		Questions: []Question{{Name: "www.example.com", Type: TypeA, Class: ClassIN}},
		Answers: []Record{
			{Name: "www.example.com", Type: TypeCNAME, TTL: 60, Data: "e.cdn.cloudflare.com"},
			{Name: "e.cdn.cloudflare.com", Type: TypeA, TTL: 60, Data: "192.0.2.1"},
			{Name: "e.cdn.cloudflare.com", Type: TypeTXT, TTL: 60, Data: "hello"},
		},
	}
	valid, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		buf := append([]byte(nil), valid...)
		// Flip 1-4 random bytes.
		for k := 0; k < 1+rng.Intn(4); k++ {
			buf[rng.Intn(len(buf))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutation %x: %v", buf, r)
				}
			}()
			if got, err := Unmarshal(buf); err == nil {
				// If it decodes, re-marshalling must not panic either.
				_, _ = got.Marshal()
			}
		}()
	}
}

func TestUnmarshalTruncationsAllFail(t *testing.T) {
	m := &Message{
		Header:    Header{ID: 5},
		Questions: []Question{{Name: "a.example.com", Type: TypeNS, Class: ClassIN}},
	}
	valid, _ := m.Marshal()
	for cut := 0; cut < len(valid); cut++ {
		if _, err := Unmarshal(valid[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
