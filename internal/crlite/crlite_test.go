package crlite

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func keys(prefix byte, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		k := make([]byte, 9)
		k[0] = prefix
		binary.BigEndian.PutUint64(k[1:], uint64(i))
		out[i] = k
	}
	return out
}

func TestBuildExactWithinUniverse(t *testing.T) {
	revoked := keys('r', 500)
	valid := keys('v', 20_000)
	f, err := Build(revoked, valid, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range revoked {
		if !f.IsRevoked(k) {
			t.Fatalf("false negative for revoked key %x", k)
		}
	}
	for _, k := range valid {
		if f.IsRevoked(k) {
			t.Fatalf("false positive for valid key %x", k)
		}
	}
}

func TestBuildEdgeCases(t *testing.T) {
	if _, err := Build(nil, nil, 0); err != ErrNoUniverse {
		t.Fatalf("empty universe: %v", err)
	}
	// All revoked, nothing valid.
	f, err := Build(keys('r', 10), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys('r', 10) {
		if !f.IsRevoked(k) {
			t.Fatal("all-revoked filter missed a key")
		}
	}
	// Nothing revoked.
	f2, err := Build(nil, keys('v', 10), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys('v', 10) {
		if f2.IsRevoked(k) {
			t.Fatal("empty-revocation filter flagged a key")
		}
	}
	if f2.NumLevels() != 0 {
		t.Fatalf("empty cascade has %d levels", f2.NumLevels())
	}
}

func TestBuildRejectsOverlap(t *testing.T) {
	shared := [][]byte{[]byte("same-key")}
	if _, err := Build(shared, shared, 0); err == nil {
		t.Fatal("overlapping sets accepted")
	}
}

func TestCompressionBeatsExplicitList(t *testing.T) {
	revoked := keys('r', 2000)
	valid := keys('v', 100_000)
	f, err := Build(revoked, valid, 0)
	if err != nil {
		t.Fatal(err)
	}
	explicit := len(revoked) * 9 // bytes for the raw serial list
	if f.SizeBytes() >= explicit*2 {
		t.Fatalf("cascade %dB vs explicit list %dB — no compression win", f.SizeBytes(), explicit)
	}
	t.Logf("cascade: %d levels, %dB for %d revocations in a %d-cert universe (counts %v)",
		f.NumLevels(), f.SizeBytes(), len(revoked), len(revoked)+len(valid), f.LevelCounts())
	if f.NumLevels() < 1 {
		t.Fatal("no levels built")
	}
}

func TestQuickCascadeExact(t *testing.T) {
	f := func(seed int64, nRev, nVal uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		nr := int(nRev)%200 + 1
		nv := int(nVal)%2000 + 1
		seen := map[string]bool{}
		mk := func(n int) [][]byte {
			out := make([][]byte, 0, n)
			for len(out) < n {
				k := make([]byte, 8)
				binary.BigEndian.PutUint64(k, rng.Uint64())
				if seen[string(k)] {
					continue
				}
				seen[string(k)] = true
				out = append(out, k)
			}
			return out
		}
		revoked, valid := mk(nr), mk(nv)
		filter, err := Build(revoked, valid, 0)
		if err != nil {
			return false
		}
		for _, k := range revoked {
			if !filter.IsRevoked(k) {
				return false
			}
		}
		for _, k := range valid {
			if filter.IsRevoked(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCascadeQuery(b *testing.B) {
	revoked := keys('r', 2000)
	valid := keys('v', 100_000)
	f, err := Build(revoked, valid, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := valid[i%len(valid)]
		if f.IsRevoked(k) {
			b.Fatal("false positive")
		}
	}
}

func BenchmarkCascadeBuild(b *testing.B) {
	revoked := keys('r', 1000)
	valid := keys('v', 50_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(revoked, valid, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleBuild() {
	revoked := [][]byte{[]byte("cert-1"), []byte("cert-2")}
	valid := [][]byte{[]byte("cert-3"), []byte("cert-4"), []byte("cert-5")}
	f, _ := Build(revoked, valid, 0)
	fmt.Println(f.IsRevoked([]byte("cert-1")), f.IsRevoked([]byte("cert-3")))
	// Output: true false
}
