// Package crlite implements a CRLite-style Bloom-filter cascade (Larisch et
// al., S&P 2017), the §7.2 mitigation candidate: the complete revocation
// status of a known certificate universe compressed into a few bits per
// revocation and shipped to clients, making revocation checking local — and
// therefore immune to the traffic-blocking interception that defeats
// soft-fail OCSP/CRL lookups.
//
// Build takes the revoked set and the not-revoked remainder of the universe
// and constructs a cascade: level 0 is a Bloom filter of the revoked set;
// level 1 holds the not-revoked keys that level 0 falsely matches; level 2
// holds the revoked keys level 1 falsely matches; and so on until no false
// positives remain. Queries walk the cascade; the first level that does not
// match decides. Results are exact for every key in the universe.
package crlite

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// bloom is a fixed-size Bloom filter with double hashing.
type bloom struct {
	bits   []uint64
	nbits  uint64
	hashes int
	level  int // salts the hash so levels are independent
}

func newBloom(n int, fpRate float64, level int) *bloom {
	if n < 1 {
		n = 1
	}
	// Standard sizing: m = -n ln p / (ln 2)^2, k = (m/n) ln 2.
	m := uint64(math.Ceil(-float64(n) * math.Log(fpRate) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &bloom{bits: make([]uint64, (m+63)/64), nbits: m, hashes: k, level: level}
}

// indices derives the k probe positions via double hashing over SHA-256.
func (b *bloom) indices(key []byte) (h1, h2 uint64) {
	var salt [4]byte
	binary.BigEndian.PutUint32(salt[:], uint32(b.level))
	sum := sha256.Sum256(append(salt[:], key...))
	h1 = binary.BigEndian.Uint64(sum[0:8])
	h2 = binary.BigEndian.Uint64(sum[8:16]) | 1 // odd, so probes cycle
	return h1, h2
}

func (b *bloom) add(key []byte) {
	h1, h2 := b.indices(key)
	for i := 0; i < b.hashes; i++ {
		pos := (h1 + uint64(i)*h2) % b.nbits
		b.bits[pos/64] |= 1 << (pos % 64)
	}
}

func (b *bloom) contains(key []byte) bool {
	h1, h2 := b.indices(key)
	for i := 0; i < b.hashes; i++ {
		pos := (h1 + uint64(i)*h2) % b.nbits
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

func (b *bloom) sizeBytes() int { return len(b.bits) * 8 }

// Filter is a built cascade.
type Filter struct {
	levels []*bloom
	// counts records how many keys were inserted per level (diagnostics).
	counts []int
}

// Build errors.
var (
	ErrNoUniverse = errors.New("crlite: empty universe")
	ErrOverlap    = errors.New("crlite: a key appears as both revoked and valid")
	ErrDiverged   = errors.New("crlite: cascade failed to converge")
)

// Build constructs a cascade for the given revoked and valid key sets.
// fpRate tunes per-level filter sizing (0 uses the CRLite default of 0.5 for
// inner levels with a tighter first level).
func Build(revoked, valid [][]byte, fpRate float64) (*Filter, error) {
	if len(revoked) == 0 && len(valid) == 0 {
		return nil, ErrNoUniverse
	}
	seen := make(map[string]bool, len(revoked))
	for _, k := range revoked {
		seen[string(k)] = true
	}
	for _, k := range valid {
		if seen[string(k)] {
			return nil, fmt.Errorf("%w: %x", ErrOverlap, k)
		}
	}

	f := &Filter{}
	include, exclude := revoked, valid
	for level := 0; ; level++ {
		if len(include) == 0 {
			break
		}
		rate := fpRate
		if rate <= 0 || rate >= 1 {
			if level == 0 {
				// First level sized so the expected exception set is small
				// relative to the excluded side.
				rate = 1.0 / 64
			} else {
				rate = 0.5
			}
		}
		b := newBloom(len(include), rate, level)
		for _, k := range include {
			b.add(k)
		}
		f.levels = append(f.levels, b)
		f.counts = append(f.counts, len(include))

		// Keys on the excluded side that the filter wrongly matches become
		// the next level's include set.
		var falsePositives [][]byte
		for _, k := range exclude {
			if b.contains(k) {
				falsePositives = append(falsePositives, k)
			}
		}
		include, exclude = falsePositives, include
		if level > 64 {
			return nil, ErrDiverged
		}
	}
	return f, nil
}

// IsRevoked reports whether a universe key is revoked. Keys outside the
// build universe get a best-effort (Bloom-probabilistic) answer, as in real
// CRLite, where the filter is rebuilt as the universe changes.
func (f *Filter) IsRevoked(key []byte) bool {
	for i, b := range f.levels {
		if !b.contains(key) {
			// Not matched at level i: the key belongs to the side excluded
			// at this level. Even levels include revoked keys.
			return i%2 == 1
		}
	}
	// Matched every level: classified by the deepest level's side.
	return len(f.levels)%2 == 1
}

// NumLevels returns the cascade depth.
func (f *Filter) NumLevels() int { return len(f.levels) }

// LevelCounts returns how many keys each level holds.
func (f *Filter) LevelCounts() []int { return append([]int(nil), f.counts...) }

// SizeBytes returns the total filter size.
func (f *Filter) SizeBytes() int {
	n := 0
	for _, b := range f.levels {
		n += b.sizeBytes()
	}
	return n
}
