package certstore

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"stalecert/internal/core"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

func mkCert(t testing.TB, serial uint64, names []string, nb, na simtime.Day) *x509sim.Certificate {
	t.Helper()
	c, err := x509sim.New(x509sim.SerialNumber(serial), x509sim.IssuerID(serial%5+1), x509sim.KeyID(serial), names, nb, na)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func openTemp(t testing.TB, opts Options) *Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStoreAppendAndLookups(t *testing.T) {
	s := openTemp(t, Options{Shards: 8})
	certs := []*x509sim.Certificate{
		mkCert(t, 1, []string{"a.example.com", "b.example.com"}, 0, 100),
		mkCert(t, 2, []string{"example.org", "*.example.org"}, 10, 200),
		mkCert(t, 3, []string{"example.org"}, 20, 120),
	}
	added, err := s.Append(certs)
	if err != nil || added != 3 {
		t.Fatalf("Append = %d, %v", added, err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}

	// Fingerprint dedup, including precert/final-cert pairing: a precert
	// differs only in CT components, so it shares the fingerprint.
	pre := certs[0].Clone()
	pre.Precert = true
	pre.SCTCount = 2
	added, err = s.Append([]*x509sim.Certificate{pre, certs[1]})
	if err != nil || added != 0 {
		t.Fatalf("dedup Append = %d, %v", added, err)
	}

	if c, ok := s.ByFingerprint(certs[0].Fingerprint()); !ok || c.Serial != 1 {
		t.Fatalf("ByFingerprint = %v %v", c, ok)
	}
	var prefix [8]byte
	fp := certs[1].Fingerprint()
	copy(prefix[:], fp[:8])
	if c, ok := s.ByShortFingerprint(prefix); !ok || c.Serial != 2 {
		t.Fatalf("ByShortFingerprint = %v %v", c, ok)
	}
	if c, ok := s.ByKey(certs[2].DedupKey()); !ok || c.Serial != 3 {
		t.Fatalf("ByKey = %v %v", c, ok)
	}
	if got := s.ByE2LD("example.org"); len(got) != 2 {
		t.Fatalf("ByE2LD(example.org) = %d certs", len(got))
	}
	if got := s.ByE2LD("example.com"); len(got) != 1 || got[0].Serial != 1 {
		t.Fatalf("ByE2LD(example.com) = %v", got)
	}
	if got := s.ByE2LD("nothing.net"); got != nil {
		t.Fatalf("ByE2LD(miss) = %v", got)
	}
	if got := s.BySPKI(2); len(got) != 1 || got[0].Serial != 2 {
		t.Fatalf("BySPKI = %v", got)
	}
}

func TestStoreByE2LDDefensiveCopy(t *testing.T) {
	s := openTemp(t, Options{})
	s.Append([]*x509sim.Certificate{
		mkCert(t, 1, []string{"a.dom.com"}, 0, 100),
		mkCert(t, 2, []string{"b.dom.com"}, 0, 100),
	})
	got := s.ByE2LD("dom.com")
	got[0], got[1] = nil, nil // caller scribbles over its copy
	again := s.ByE2LD("dom.com")
	if len(again) != 2 || again[0] == nil || again[1] == nil {
		t.Fatalf("index corrupted by caller mutation: %v", again)
	}
}

func TestStoreReopenRestoresEverything(t *testing.T) {
	dir := t.TempDir()
	s := openTemp(t, Options{Dir: dir})
	var want []*x509sim.Certificate
	for i := uint64(1); i <= 20; i++ {
		want = append(want, mkCert(t, i, []string{"site.example.com"}, 0, 500))
	}
	if _, err := s.Append(want); err != nil {
		t.Fatal(err)
	}
	if err := s.SetCheckpoint(Checkpoint{LogName: "l", NextIndex: 20, STHSize: 20}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTemp(t, Options{Dir: dir})
	if re.Len() != 20 {
		t.Fatalf("reopened Len = %d", re.Len())
	}
	for _, c := range want {
		if _, ok := re.ByFingerprint(c.Fingerprint()); !ok {
			t.Fatalf("lost cert %v after reopen", c)
		}
	}
	cp, ok := re.Checkpoint()
	if !ok || cp.NextIndex != 20 || cp.LogName != "l" {
		t.Fatalf("checkpoint = %+v %v", cp, ok)
	}
	// Appends keep working after reopen, and dedup spans the restart.
	added, err := re.Append(want[:5])
	if err != nil || added != 0 {
		t.Fatalf("post-reopen dedup Append = %d, %v", added, err)
	}
}

func TestStoreRecoversTornTail(t *testing.T) {
	dir := t.TempDir()
	s := openTemp(t, Options{Dir: dir})
	s.Append([]*x509sim.Certificate{
		mkCert(t, 1, []string{"x.com"}, 0, 10),
		mkCert(t, 2, []string{"y.com"}, 0, 10),
	})
	s.Close()

	// Simulate a crash mid-append: a record header promising more bytes
	// than were written.
	active := filepath.Join(dir, segmentFileName(0))
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x01, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re := openTemp(t, Options{Dir: dir})
	if re.Len() != 2 {
		t.Fatalf("recovered Len = %d, want 2", re.Len())
	}
	// The torn bytes must be gone so future appends start clean.
	added, err := re.Append([]*x509sim.Certificate{mkCert(t, 3, []string{"z.com"}, 0, 10)})
	if err != nil || added != 1 {
		t.Fatalf("post-recovery Append = %d, %v", added, err)
	}
	re.Close()
	re2 := openTemp(t, Options{Dir: dir})
	if re2.Len() != 3 {
		t.Fatalf("second reopen Len = %d, want 3", re2.Len())
	}
}

func TestStoreSealsSegments(t *testing.T) {
	dir := t.TempDir()
	s := openTemp(t, Options{Dir: dir, MaxSegmentBytes: 256})
	for i := uint64(1); i <= 30; i++ {
		if _, err := s.Append([]*x509sim.Certificate{mkCert(t, i, []string{"seal.example.com"}, 0, 100)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.SegmentCount() < 3 {
		t.Fatalf("SegmentCount = %d, want several with a 256-byte cap", s.SegmentCount())
	}
	s.Close()
	re := openTemp(t, Options{Dir: dir})
	if re.Len() != 30 {
		t.Fatalf("reopen across seals Len = %d", re.Len())
	}
	if got := len(re.ByE2LD("example.com")); got != 30 {
		t.Fatalf("ByE2LD after reopen = %d", got)
	}
}

func TestStoreDetectsSealedCorruption(t *testing.T) {
	dir := t.TempDir()
	s := openTemp(t, Options{Dir: dir, MaxSegmentBytes: 128})
	for i := uint64(1); i <= 10; i++ {
		s.Append([]*x509sim.Certificate{mkCert(t, i, []string{"c.example.com"}, 0, 100)})
	}
	if s.SegmentCount() < 2 {
		t.Skip("need a sealed segment")
	}
	s.Close()

	// Flip one byte inside the first (sealed) segment.
	path := filepath.Join(dir, segmentFileName(0))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open accepted a corrupted sealed segment")
	} else if !strings.Contains(err.Error(), "certstore") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestStoreConcurrentReadersAndWriter(t *testing.T) {
	s := openTemp(t, Options{Shards: 4})
	const n = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); i <= n; i++ {
			if _, err := s.Append([]*x509sim.Certificate{
				mkCert(t, i, []string{"rw.example.com"}, 0, 100),
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				certs := s.ByE2LD("example.com")
				for _, c := range certs {
					if c == nil {
						t.Error("nil cert from ByE2LD during writes")
						return
					}
				}
				s.ByKey(x509sim.DedupKey{Issuer: 1, Serial: 5})
				s.Len()
			}
		}()
	}
	wg.Wait()
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
}

func TestStoreCorpusSnapshot(t *testing.T) {
	s := openTemp(t, Options{})
	s.Append([]*x509sim.Certificate{
		mkCert(t, 1, []string{"snap.example.com"}, 0, 100),
		mkCert(t, 2, []string{"snap.example.com"}, 0, 150),
	})
	corpus := s.Corpus(core.CorpusOptions{})
	if corpus.Len() != 2 {
		t.Fatalf("corpus Len = %d", corpus.Len())
	}
	if got := corpus.ByE2LD("example.com"); len(got) != 2 {
		t.Fatalf("corpus ByE2LD = %d", len(got))
	}
}
