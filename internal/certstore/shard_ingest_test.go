package certstore

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"stalecert/internal/ctlog"
	"stalecert/internal/shard"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

// TestShardedIngestDisjointUnion is the per-shard ingest contract: two
// replicas tail the same log with complementary Keep filters, each persists
// only its ring slice, the slices are disjoint, their union is the full log,
// and both checkpoints still advance over every entry (the filter must not
// stall the resume position).
func TestShardedIngestDisjointUnion(t *testing.T) {
	log := ctlog.New("sharded-log", ctlog.Shard{})
	srv := ctlog.NewServer(log)
	srv.SetNow(simtime.MustParse("2023-01-01"))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ctlog.NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	day := simtime.MustParse("2022-06-01")
	const total = 60
	for i := uint64(1); i <= total; i++ {
		c := mkCert(t, i, []string{fmt.Sprintf("shardee%03d.com", i)}, 100, 1200)
		if _, err := log.AddChain(c, day); err != nil {
			t.Fatal(err)
		}
	}

	ring := shard.MustRing(2, shard.DefaultVNodes)
	stores := make([]*Store, 2)
	for i := range stores {
		st, err := Open(Options{Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		stores[i] = st
		ing := NewIngester(st, client)
		ing.Keep = shard.KeepFunc(ring, st.PSL(), i)
		ing.Shard = &ShardConfig{Epoch: 1, Index: i, Count: 2, VNodes: shard.DefaultVNodes, Hash: shard.HashName}
		if _, err := ing.Sync(ctx); err != nil {
			t.Fatalf("shard %d sync: %v", i, err)
		}
		cp, ok := st.Checkpoint()
		if !ok || cp.NextIndex != total {
			t.Fatalf("shard %d checkpoint = %+v %v, want NextIndex %d despite the filter", i, cp, ok, total)
		}
		if sc, ok := st.ShardConfig(); !ok || sc.Label() != fmt.Sprintf("%d/2", i) {
			t.Fatalf("shard %d persisted config = %+v %v", i, sc, ok)
		}
	}

	if n := stores[0].Len() + stores[1].Len(); n != total {
		t.Fatalf("slices sum to %d certs (%d + %d), want %d",
			n, stores[0].Len(), stores[1].Len(), total)
	}
	for i, st := range stores {
		if st.Len() == 0 {
			t.Fatalf("shard %d holds nothing — filter or ring is degenerate", i)
		}
	}
	seen := map[x509sim.DedupKey]int{}
	for i, st := range stores {
		for _, c := range st.Certs() {
			if prev, dup := seen[c.DedupKey()]; dup {
				t.Fatalf("cert %v stored on shards %d and %d", c.Names, prev, i)
			}
			seen[c.DedupKey()] = i
			want := ring.Lookup(shard.KeyForDomain(strings.TrimPrefix(c.Names[0], "www.")))
			if want != i {
				t.Fatalf("cert %v landed on shard %d, ring owner is %d", c.Names, i, want)
			}
		}
	}
}

// TestShardedIngestValidation: a store pinned to one slice refuses ingest
// under a different slice or under none, and a store that already ingested
// unsharded refuses retroactive pinning.
func TestShardedIngestValidation(t *testing.T) {
	log := ctlog.New("pin-log", ctlog.Shard{})
	srv := ctlog.NewServer(log)
	srv.SetNow(simtime.MustParse("2023-01-01"))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ctlog.NewClient(ts.URL, ts.Client())
	ctx := context.Background()
	if _, err := log.AddChain(mkCert(t, 1, []string{"pinned.com"}, 100, 1200), simtime.MustParse("2022-06-01")); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ring := shard.MustRing(3, shard.DefaultVNodes)
	sc := ShardConfig{Epoch: 2, Index: 1, Count: 3, VNodes: shard.DefaultVNodes, Hash: shard.HashName}

	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ing := NewIngester(st, client)
	ing.Keep = shard.KeepFunc(ring, st.PSL(), 1)
	ing.Shard = &sc
	if _, err := ing.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Reopen: the persisted SHARD file survives a restart.
	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got, ok := st2.ShardConfig(); !ok || got != sc {
		t.Fatalf("reopened shard config = %+v %v, want %+v", got, ok, sc)
	}

	// Unsharded ingest into the pinned store is refused.
	plain := NewIngester(st2, client)
	if _, err := plain.Sync(ctx); err == nil || !strings.Contains(err.Error(), "refusing unsharded ingest") {
		t.Fatalf("unsharded sync against pinned store: err = %v", err)
	}

	// A different slice is refused; so is a different epoch of the same slice.
	for name, bad := range map[string]ShardConfig{
		"slice": {Epoch: 2, Index: 2, Count: 3, VNodes: shard.DefaultVNodes, Hash: shard.HashName},
		"epoch": {Epoch: 9, Index: 1, Count: 3, VNodes: shard.DefaultVNodes, Hash: shard.HashName},
		"hash":  {Epoch: 2, Index: 1, Count: 3, VNodes: shard.DefaultVNodes, Hash: "md5"},
	} {
		wrong := NewIngester(st2, client)
		wrong.Shard = &bad
		if _, err := wrong.Sync(ctx); err == nil {
			t.Errorf("mismatched %s accepted against pinned store", name)
		}
	}

	// A store that ingested unsharded cannot be pinned after the fact.
	st3, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if _, err := NewIngester(st3, client).Sync(ctx); err != nil {
		t.Fatal(err)
	}
	late := NewIngester(st3, client)
	late.Shard = &sc
	if _, err := late.Sync(ctx); err == nil || !strings.Contains(err.Error(), "retroactively") {
		t.Fatalf("retroactive pinning: err = %v", err)
	}
}
