package certstore

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"stalecert/internal/core"
	"stalecert/internal/crl"
	"stalecert/internal/ctlog"
	"stalecert/internal/dnssim"
	"stalecert/internal/resil"
	"stalecert/internal/simtime"
	"stalecert/internal/whois"
	"stalecert/internal/x509sim"
)

// countingHandler records the start indexes of get-entries requests so tests
// can prove a resumed ingester does not re-scrape the prefix.
type countingHandler struct {
	inner http.Handler
	mu    sync.Mutex
	start []string
}

func (h *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/ct/v1/get-entries" {
		h.mu.Lock()
		h.start = append(h.start, r.URL.Query().Get("start"))
		h.mu.Unlock()
	}
	h.inner.ServeHTTP(w, r)
}

func (h *countingHandler) starts() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.start...)
}

// managedPred matches the simulator's provider marker convention.
func managedPred(c *x509sim.Certificate) bool {
	for _, n := range c.Names {
		if len(n) > 3 && n[:3] == "sni" {
			return true
		}
	}
	return false
}

// TestIngesterKillAndRestart is the subsystem's acceptance test: ingest N
// entries, stop without any graceful shutdown (SIGKILL-equivalent — the old
// Store is simply abandoned with its file handle open), reopen the store,
// and verify the ingester resumes from the persisted checkpoint with no
// duplicate or missing index entries; then verify a per-domain staleness
// query against the store matches the batch staled pipeline's verdict.
func TestIngesterKillAndRestart(t *testing.T) {
	log := ctlog.New("resume-log", ctlog.Shard{})
	srv := ctlog.NewServer(log)
	srv.SetNow(simtime.MustParse("2023-01-01"))
	counter := &countingHandler{inner: srv.Handler()}
	ts := httptest.NewServer(counter)
	defer ts.Close()
	client := ctlog.NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	day := simtime.MustParse("2022-06-01")
	var all []*x509sim.Certificate
	addCert := func(serial uint64, names []string, nb, na simtime.Day) {
		t.Helper()
		c := mkCert(t, serial, names, nb, na)
		if _, err := log.AddChain(c, day); err != nil {
			t.Fatal(err)
		}
		all = append(all, c)
	}

	// Phase 1: 40 plain + some staleness-relevant certificates.
	for i := uint64(1); i <= 40; i++ {
		addCert(i, []string{fmt.Sprintf("site%02d.com", i)}, 100, 1200)
	}
	// A revoked-but-valid cert, a registrant-change victim, and a
	// provider-managed cert whose customer departed.
	addCert(100, []string{"revoked.com"}, 100, 1200)
	addCert(101, []string{"resold.com"}, 100, 1200)
	addCert(102, []string{"migrated.com", "sni4242.cloudflaressl.com"}, 100, 1200)

	dir := t.TempDir()
	store1, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ing1 := NewIngester(store1, client)
	added, err := ing1.Sync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if added != len(all) {
		t.Fatalf("first sync added %d, want %d", added, len(all))
	}
	cp, ok := store1.Checkpoint()
	if !ok || cp.NextIndex != uint64(len(all)) {
		t.Fatalf("checkpoint = %+v %v", cp, ok)
	}
	// SIGKILL-equivalent: store1 is abandoned, never Closed.

	// Phase 2: the log grows while the ingester is down.
	var phase2 []*x509sim.Certificate
	for i := uint64(50); i < 65; i++ {
		c := mkCert(t, i, []string{fmt.Sprintf("late%02d.net", i)}, 200, 1300)
		if _, err := log.AddChain(c, day+1); err != nil {
			t.Fatal(err)
		}
		phase2 = append(phase2, c)
	}
	firstBatchGets := len(counter.starts())

	store2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	defer store2.Close()
	if store2.Len() != len(all) {
		t.Fatalf("reopened store has %d certs, want %d", store2.Len(), len(all))
	}
	ing2 := NewIngester(store2, client)
	added, err = ing2.Sync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if added != len(phase2) {
		t.Fatalf("resume sync added %d, want %d (duplicates or missing)", added, len(phase2))
	}
	if store2.Len() != len(all)+len(phase2) {
		t.Fatalf("store has %d certs, want %d", store2.Len(), len(all)+len(phase2))
	}
	// The resumed scrape must start at the checkpoint, not index 0.
	resumed := counter.starts()[firstBatchGets:]
	if len(resumed) == 0 {
		t.Fatal("resume issued no get-entries")
	}
	if resumed[0] != fmt.Sprint(len(all)) {
		t.Fatalf("resume started get-entries at %s, want %d", resumed[0], len(all))
	}
	// Every entry indexed exactly once.
	for _, c := range append(append([]*x509sim.Certificate{}, all...), phase2...) {
		if _, ok := store2.ByFingerprint(c.Fingerprint()); !ok {
			t.Fatalf("missing cert %v after resume", c)
		}
	}
	cp, _ = store2.Checkpoint()
	if cp.NextIndex != uint64(len(all)+len(phase2)) {
		t.Fatalf("final checkpoint = %+v", cp)
	}

	// Idempotence: a third sync with nothing new adds nothing.
	added, err = ing2.Sync(ctx)
	if err != nil || added != 0 {
		t.Fatalf("no-op sync = %d, %v", added, err)
	}

	// The staleness verdict served off the store must match the batch
	// staled pipeline run over the same corpus and events.
	evidence := core.DomainEvidence{
		Revocations: []crl.Entry{
			{Issuer: all[40].Issuer, Serial: 100, RevokedAt: 600, Reason: crl.KeyCompromise},
		},
		ReRegistrations: []whois.ReRegistration{
			{Domain: "resold.com", NewCreation: 700, PrevCreation: 50},
		},
		Departures: []dnssim.Departure{
			{Domain: "migrated.com", LastSeen: 799, FirstGone: 800},
		},
		RevocationCutoff: simtime.NoDay,
		IsManaged:        managedPred,
	}

	batch := store2.Corpus(core.CorpusOptions{})
	var batchAll []core.StaleCert
	revoked, _ := core.DetectRevoked(batch, evidence.Revocations, simtime.NoDay)
	batchAll = append(batchAll, revoked...)
	batchAll = append(batchAll, core.DetectRegistrantChange(batch, evidence.ReRegistrations)...)
	batchAll = append(batchAll, core.DetectManagedTLSDeparture(batch, evidence.Departures, managedPred)...)

	for _, domain := range []string{"revoked.com", "resold.com", "migrated.com", "site01.com", "cloudflaressl.com"} {
		live := core.DomainStaleness(store2, domain, evidence)
		inDomain := make(map[x509sim.Fingerprint]bool)
		for _, c := range store2.ByE2LD(domain) {
			inDomain[c.Fingerprint()] = true
		}
		var want []string
		for _, s := range batchAll {
			switch s.Method {
			case core.MethodRevocation:
				if !inDomain[s.Cert.Fingerprint()] {
					continue
				}
			default:
				if s.Domain != domain {
					continue
				}
			}
			want = append(want, staleKey(s))
		}
		var got []string
		for _, s := range live {
			got = append(got, staleKey(s))
		}
		sort.Strings(want)
		sort.Strings(got)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("domain %s: store verdict %v != batch verdict %v", domain, got, want)
		}
	}
}

func staleKey(s core.StaleCert) string {
	return fmt.Sprintf("%s/%s/%d/%d", s.Cert.Fingerprint(), s.Method, s.EventDay, s.Reason)
}

// TestIngesterDetectsRewrittenLog swaps the log behind the checkpoint: the
// resumed ingester must refuse to continue.
func TestIngesterDetectsRewrittenLog(t *testing.T) {
	day := simtime.MustParse("2022-06-01")
	mkLog := func(names ...string) *ctlog.Log {
		l := ctlog.New("swap-log", ctlog.Shard{})
		for i, n := range names {
			if _, err := l.AddChain(mkCert(t, uint64(i+1), []string{n}, 100, 1200), day); err != nil {
				t.Fatal(err)
			}
		}
		return l
	}
	logA := mkLog("a1.com", "a2.com", "a3.com")
	srvA := ctlog.NewServer(logA)
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()

	dir := t.TempDir()
	store, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ing := NewIngester(store, ctlog.NewClient(tsA.URL, tsA.Client()))
	if _, err := ing.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	store.Close()

	// Different history, larger tree: the consistency proof cannot verify.
	logB := mkLog("b1.com", "b2.com", "b3.com", "b4.com")
	srvB := ctlog.NewServer(logB)
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()

	store2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	ing2 := NewIngester(store2, ctlog.NewClient(tsB.URL, tsB.Client()))
	if _, err := ing2.Sync(context.Background()); err == nil {
		t.Fatal("resumed ingester accepted a rewritten log")
	}
}

// TestIngesterSurvivesLogRestart kills the log server mid-tail and restarts
// it on the same address: Run must ride out the outage with backoff, keep
// the checkpoint, and resume with no gap or duplicate entries.
func TestIngesterSurvivesLogRestart(t *testing.T) {
	log := ctlog.New("restart-log", ctlog.Shard{})
	day := simtime.MustParse("2022-06-01")
	var all []*x509sim.Certificate
	addCerts := func(from, to uint64) {
		t.Helper()
		for i := from; i <= to; i++ {
			c := mkCert(t, i, []string{fmt.Sprintf("restart%03d.com", i)}, 100, 1200)
			if _, err := log.AddChain(c, day); err != nil {
				t.Fatal(err)
			}
			all = append(all, c)
		}
	}
	addCerts(1, 20)

	srv := ctlog.NewServer(log)
	srv.SetNow(simtime.MustParse("2023-01-01"))
	serve := func() (*http.Server, string) {
		t.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		return hs, ln.Addr().String()
	}
	rebind := func(addr string) *http.Server {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			ln, err := net.Listen("tcp", addr)
			if err == nil {
				hs := &http.Server{Handler: srv.Handler()}
				go func() { _ = hs.Serve(ln) }()
				return hs
			}
			if time.Now().After(deadline) {
				t.Fatalf("rebind %s: %v", addr, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	hs1, addr := serve()
	client := ctlog.NewClientWithOptions("http://"+addr, nil, resil.Options{
		Service:   "restart-test",
		NoBreaker: true, // the test wants raw reconnect behaviour, not fail-fast
		Policy:    resil.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	})

	store, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ing := NewIngester(store, client)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	totalAdded, errRounds := 0, 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		ing.Run(ctx, 2*time.Millisecond, func(added int, err error) {
			mu.Lock()
			totalAdded += added
			if err != nil && ctx.Err() == nil {
				errRounds++
			}
			mu.Unlock()
		})
	}()

	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	waitFor(func() bool { return store.Len() == 20 }, "initial tail")

	// Kill the server mid-tail and grow the log while it is down.
	_ = hs1.Close()
	addCerts(21, 35)
	waitFor(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return errRounds > 0
	}, "a failed round during the outage")

	hs2 := rebind(addr)
	defer hs2.Close()
	waitFor(func() bool { return store.Len() == len(all) }, "resume after restart")

	cancel()
	<-done

	// No gap, no duplicate: every cert present, added counts sum exactly,
	// checkpoint at the head.
	mu.Lock()
	if totalAdded != len(all) {
		t.Fatalf("total added = %d, want %d (duplicates or gaps)", totalAdded, len(all))
	}
	mu.Unlock()
	for _, c := range all {
		if _, ok := store.ByFingerprint(c.Fingerprint()); !ok {
			t.Fatalf("missing cert %v after restart", c)
		}
	}
	cp, ok := store.Checkpoint()
	if !ok || cp.NextIndex != uint64(len(all)) {
		t.Fatalf("checkpoint = %+v %v, want NextIndex %d", cp, ok, len(all))
	}
}
