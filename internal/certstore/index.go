package certstore

import (
	"sync"

	"stalecert/internal/psl"
	"stalecert/internal/x509sim"
)

// shortFP is the first 8 bytes of a fingerprint, the prefix form rendered by
// x509sim.Fingerprint.String and accepted by the query API.
type shortFP uint64

func shortOf(fp x509sim.Fingerprint) shortFP {
	var v shortFP
	for i := 0; i < 8; i++ {
		v = v<<8 | shortFP(fp[i])
	}
	return v
}

// fnv1a hashes a string for shard routing.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// mix spreads integer keys (serials and key IDs are often sequential) before
// shard routing, so consecutive IDs don't all land on adjacent shards of a
// power-of-two shard count.
func mix(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	return v
}

// indexShard is one lock domain. Every map inside a shard is guarded by the
// shard's RWMutex; point reads take a read lock on exactly one shard, so
// parallel readers on different keys rarely contend.
type indexShard struct {
	mu      sync.RWMutex
	byFP    map[x509sim.Fingerprint]*x509sim.Certificate
	byShort map[shortFP]*x509sim.Certificate
	byKey   map[x509sim.DedupKey]*x509sim.Certificate
	byE2LD  map[string][]*x509sim.Certificate
	bySPKI  map[x509sim.KeyID][]*x509sim.Certificate
}

func newIndexShard() *indexShard {
	return &indexShard{
		byFP:    make(map[x509sim.Fingerprint]*x509sim.Certificate),
		byShort: make(map[shortFP]*x509sim.Certificate),
		byKey:   make(map[x509sim.DedupKey]*x509sim.Certificate),
		byE2LD:  make(map[string][]*x509sim.Certificate),
		bySPKI:  make(map[x509sim.KeyID][]*x509sim.Certificate),
	}
}

// shardedIndex routes each key space independently: a certificate's
// fingerprint, dedup key, subject key and e2LDs may live on different shards,
// because every query is a point lookup in exactly one key space.
type shardedIndex struct {
	psl    *psl.List
	shards []*indexShard
}

func newShardedIndex(n int, list *psl.List) *shardedIndex {
	idx := &shardedIndex{psl: list, shards: make([]*indexShard, n)}
	for i := range idx.shards {
		idx.shards[i] = newIndexShard()
	}
	return idx
}

func (idx *shardedIndex) n() uint64 { return uint64(len(idx.shards)) }

func (idx *shardedIndex) fpShard(fp x509sim.Fingerprint) *indexShard {
	return idx.shards[uint64(shortOf(fp))%idx.n()]
}

func (idx *shardedIndex) keyShard(k x509sim.DedupKey) *indexShard {
	return idx.shards[mix(uint64(k.Serial)<<16|uint64(k.Issuer))%idx.n()]
}

func (idx *shardedIndex) domainShard(domain string) *indexShard {
	return idx.shards[fnv1a(domain)%idx.n()]
}

func (idx *shardedIndex) spkiShard(k x509sim.KeyID) *indexShard {
	return idx.shards[mix(uint64(k))%idx.n()]
}

// containsFP reports whether the fingerprint is already indexed.
func (idx *shardedIndex) containsFP(fp x509sim.Fingerprint) bool {
	sh := idx.fpShard(fp)
	sh.mu.RLock()
	_, ok := sh.byFP[fp]
	sh.mu.RUnlock()
	return ok
}

// byFingerprint resolves a full fingerprint.
func (idx *shardedIndex) byFingerprint(fp x509sim.Fingerprint) (*x509sim.Certificate, bool) {
	sh := idx.fpShard(fp)
	sh.mu.RLock()
	c, ok := sh.byFP[fp]
	sh.mu.RUnlock()
	return c, ok
}

// byShortFingerprint resolves the 8-byte prefix form (log/API short form).
func (idx *shardedIndex) byShortFingerprint(s shortFP) (*x509sim.Certificate, bool) {
	sh := idx.shards[uint64(s)%idx.n()]
	sh.mu.RLock()
	c, ok := sh.byShort[s]
	sh.mu.RUnlock()
	return c, ok
}

// byKey resolves a CRL (issuer, serial) join key.
func (idx *shardedIndex) byKey(k x509sim.DedupKey) (*x509sim.Certificate, bool) {
	sh := idx.keyShard(k)
	sh.mu.RLock()
	c, ok := sh.byKey[k]
	sh.mu.RUnlock()
	return c, ok
}

// byE2LD returns a defensive copy of the e2LD posting list.
func (idx *shardedIndex) byE2LD(domain string) []*x509sim.Certificate {
	sh := idx.domainShard(domain)
	sh.mu.RLock()
	certs := sh.byE2LD[domain]
	out := make([]*x509sim.Certificate, len(certs))
	copy(out, certs)
	sh.mu.RUnlock()
	if len(out) == 0 {
		return nil
	}
	return out
}

// bySPKI returns a defensive copy of the subject-key posting list.
func (idx *shardedIndex) bySPKI(k x509sim.KeyID) []*x509sim.Certificate {
	sh := idx.spkiShard(k)
	sh.mu.RLock()
	certs := sh.bySPKI[k]
	out := make([]*x509sim.Certificate, len(certs))
	copy(out, certs)
	sh.mu.RUnlock()
	if len(out) == 0 {
		return nil
	}
	return out
}

// shardCounts returns the number of certificates routed (by fingerprint) to
// each shard, for the per-shard gauge family.
func (idx *shardedIndex) shardCounts() []int {
	out := make([]int, len(idx.shards))
	for i, sh := range idx.shards {
		sh.mu.RLock()
		out[i] = len(sh.byFP)
		sh.mu.RUnlock()
	}
	return out
}

// indexOp is one shard-local batch of insertions, prepared lock-free and
// applied under a single write-lock acquisition per shard.
type indexOp struct {
	certs   []*x509sim.Certificate            // byFP/byShort inserts
	keys    []*x509sim.Certificate            // byKey inserts
	domains map[string][]*x509sim.Certificate // byE2LD inserts
	spkis   map[x509sim.KeyID][]*x509sim.Certificate
}

// addBatch indexes a batch of certificates. Callers must have deduplicated
// the batch against the index already (Store.Append does, under its write
// mutex); addBatch groups work per shard so each shard's lock is taken once
// per batch regardless of batch size.
func (idx *shardedIndex) addBatch(certs []*x509sim.Certificate, e2ldsOf func(*x509sim.Certificate) []string) {
	ops := make(map[*indexShard]*indexOp)
	op := func(sh *indexShard) *indexOp {
		o := ops[sh]
		if o == nil {
			o = &indexOp{
				domains: make(map[string][]*x509sim.Certificate),
				spkis:   make(map[x509sim.KeyID][]*x509sim.Certificate),
			}
			ops[sh] = o
		}
		return o
	}
	for _, c := range certs {
		fp := c.Fingerprint()
		o := op(idx.fpShard(fp))
		o.certs = append(o.certs, c)
		o = op(idx.keyShard(c.DedupKey()))
		o.keys = append(o.keys, c)
		o = op(idx.spkiShard(c.Key))
		o.spkis[c.Key] = append(o.spkis[c.Key], c)
		for _, e2 := range e2ldsOf(c) {
			o = op(idx.domainShard(e2))
			o.domains[e2] = append(o.domains[e2], c)
		}
	}
	for sh, o := range ops {
		sh.mu.Lock()
		for _, c := range o.certs {
			fp := c.Fingerprint()
			sh.byFP[fp] = c
			sh.byShort[shortOf(fp)] = c
		}
		for _, c := range o.keys {
			sh.byKey[c.DedupKey()] = c
		}
		for d, cs := range o.domains {
			sh.byE2LD[d] = append(sh.byE2LD[d], cs...)
		}
		for k, cs := range o.spkis {
			sh.bySPKI[k] = append(sh.bySPKI[k], cs...)
		}
		sh.mu.Unlock()
	}
}
