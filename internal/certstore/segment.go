package certstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"stalecert/internal/x509sim"
)

// On-disk layout (one directory per store):
//
//	MANIFEST            JSON: sealed segment list + active segment name
//	CHECKPOINT          JSON: CT ingest resume point (see Checkpoint)
//	seg-000000.log      append-only record files
//	seg-000001.log      ...
//
// A segment file is an 8-byte magic header followed by length-prefixed
// records, each a full x509sim certificate encoding:
//
//	[4-byte BE payload length][cert.Marshal() payload]
//
// Sealed segments are immutable and carry a SHA-256 checksum in the
// manifest; the active segment is re-scanned on open and any partial tail
// record (a crash mid-append) is truncated away. The manifest and checkpoint
// are replaced atomically (write temp file, fsync, rename), so a kill at any
// instant leaves the store openable.

const (
	segmentMagic   = "CSTOREv1"
	manifestName   = "MANIFEST"
	checkpointName = "CHECKPOINT"

	// maxRecordBytes bounds one record. A certificate with 256 maximal SANs
	// encodes well under 64 KiB; anything larger is corruption.
	maxRecordBytes = 1 << 16
)

// Segment-layer errors.
var (
	ErrCorruptManifest = errors.New("certstore: corrupt manifest")
	ErrCorruptSegment  = errors.New("certstore: corrupt segment")
	ErrChecksum        = errors.New("certstore: sealed segment checksum mismatch")
)

// segmentMeta describes one sealed (immutable) segment in the manifest.
type segmentMeta struct {
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	Count  int    `json:"count"`
	SHA256 string `json:"sha256"`
}

// manifest is the store's crash-safe segment directory.
type manifest struct {
	Version int           `json:"version"`
	Sealed  []segmentMeta `json:"sealed"`
	Active  string        `json:"active"`
}

func segmentFileName(n int) string { return fmt.Sprintf("seg-%06d.log", n) }

// writeFileAtomic replaces path with data via a same-directory temp file and
// rename, fsyncing both the file and (best-effort) the directory.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

func loadManifest(dir string) (*manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptManifest, err)
	}
	if m.Version != 1 || m.Active == "" {
		return nil, fmt.Errorf("%w: version=%d active=%q", ErrCorruptManifest, m.Version, m.Active)
	}
	return &m, nil
}

func (m *manifest) store(dir string) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, manifestName), append(raw, '\n'))
}

// appendRecord appends one length-prefixed record to w and returns the bytes
// written.
func appendRecord(w io.Writer, payload []byte) (int64, error) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return int64(4 + len(payload)), nil
}

// segmentScan is the result of reading a segment file.
type segmentScan struct {
	certs []*x509sim.Certificate
	// goodBytes is the offset after the last complete record; anything past
	// it is a torn tail write.
	goodBytes int64
	// torn reports whether trailing bytes past goodBytes exist.
	torn bool
	// sum is the SHA-256 of the good prefix.
	sum [sha256.Size]byte
}

// readSegment parses a segment file, stopping cleanly at a torn tail record.
// Corruption *before* the tail (bad magic, oversized length, undecodable
// payload followed by more records) is an error: a sealed segment must be
// perfect, and an active segment is only ever damaged at its end.
func readSegment(path string) (*segmentScan, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(segmentMagic) || string(raw[:len(segmentMagic)]) != segmentMagic {
		return nil, fmt.Errorf("%w: %s: bad magic", ErrCorruptSegment, filepath.Base(path))
	}
	scan := &segmentScan{goodBytes: int64(len(segmentMagic))}
	off := len(segmentMagic)
	for off < len(raw) {
		if len(raw)-off < 4 {
			scan.torn = true
			break
		}
		n := int(binary.BigEndian.Uint32(raw[off:]))
		if n > maxRecordBytes {
			return nil, fmt.Errorf("%w: %s: record length %d at offset %d", ErrCorruptSegment, filepath.Base(path), n, off)
		}
		if len(raw)-off-4 < n {
			scan.torn = true
			break
		}
		cert, err := x509sim.Unmarshal(raw[off+4 : off+4+n])
		if err != nil {
			// A complete-length but undecodable record is real corruption,
			// not a torn append.
			return nil, fmt.Errorf("%w: %s: record at offset %d: %v", ErrCorruptSegment, filepath.Base(path), off, err)
		}
		scan.certs = append(scan.certs, cert)
		off += 4 + n
		scan.goodBytes = int64(off)
	}
	scan.sum = sha256.Sum256(raw[:scan.goodBytes])
	return scan, nil
}

// verifySealed re-reads a sealed segment and checks it against its manifest
// entry: exact size, no torn tail, matching count and checksum.
func verifySealed(dir string, meta segmentMeta) ([]*x509sim.Certificate, error) {
	scan, err := readSegment(filepath.Join(dir, meta.Name))
	if err != nil {
		return nil, err
	}
	if scan.torn || scan.goodBytes != meta.Bytes || len(scan.certs) != meta.Count {
		return nil, fmt.Errorf("%w: %s: have %d bytes / %d certs, manifest says %d / %d",
			ErrCorruptSegment, meta.Name, scan.goodBytes, len(scan.certs), meta.Bytes, meta.Count)
	}
	if hex.EncodeToString(scan.sum[:]) != meta.SHA256 {
		return nil, fmt.Errorf("%w: %s", ErrChecksum, meta.Name)
	}
	return scan.certs, nil
}

// createSegment creates a fresh segment file with its magic header, fsynced.
func createSegment(path string) (*os.File, int64, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, err
	}
	if _, err := f.Write([]byte(segmentMagic)); err != nil {
		f.Close()
		return nil, 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, int64(len(segmentMagic)), nil
}
