// Package certstore is the durable, incrementally-updated certificate index
// behind the serving path. The paper's pipelines are one-shot batch joins
// over an in-memory CT corpus; production monitoring (BygoneSSL-style) needs
// the same index to survive restarts, absorb a live CT feed, and answer
// concurrent queries. certstore provides:
//
//   - an append-only segmented on-disk store reusing the x509sim binary
//     codec, with a crash-safe manifest (sealed segments are checksummed,
//     the active segment's torn tail is truncated on open);
//   - N-way sharded in-memory indexes — by e2LD (via the PSL), by subject
//     key (SPKI), by (issuer, serial) CRL join key, and by fingerprint —
//     each shard independently RW-locked so parallel readers scale;
//   - a persisted CT ingest checkpoint, so a restarted tailer resumes from
//     where it stopped instead of re-scraping the log.
//
// A Store implements core.Index, so the batch detectors and the staleapid
// query service run against the same index implementation.
package certstore

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"stalecert/internal/core"
	"stalecert/internal/merkle"
	"stalecert/internal/obs"
	"stalecert/internal/psl"
	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

// Store metric families: segment/cert/byte totals, per-shard index sizes,
// append and dedup counters, and the persisted checkpoint position.
var (
	mSegments    = obs.Default().Gauge("certstore_segments")
	mCerts       = obs.Default().Gauge("certstore_certs")
	mStoreBytes  = obs.Default().Gauge("certstore_bytes")
	mAppends     = obs.Default().Counter("certstore_appends_total")
	mAppended    = obs.Default().Counter("certstore_appended_certs_total")
	mDeduped     = obs.Default().Counter("certstore_dedup_skipped_total")
	mSeals       = obs.Default().Counter("certstore_segment_seals_total")
	mRecovered   = obs.Default().Counter("certstore_torn_tail_truncations_total")
	mCheckpointN = obs.Default().Gauge("certstore_checkpoint_next_index")
)

func shardGauge(i int) *obs.Gauge {
	return obs.Default().Gauge("certstore_index_shard_certs", "shard", fmt.Sprint(i))
}

// DefaultMaxSegmentBytes seals the active segment once it crosses 4 MiB —
// small enough that tests exercise sealing, large enough that a real ingest
// isn't manifest-bound.
const DefaultMaxSegmentBytes = 4 << 20

// Options configures Open.
type Options struct {
	// Dir is the store directory; created if missing. Required.
	Dir string
	// Shards is the index shard count; defaults to the next power of two
	// ≥ 2*GOMAXPROCS, clamped to [4, 256].
	Shards int
	// PSL defaults to psl.Default().
	PSL *psl.List
	// MaxSegmentBytes defaults to DefaultMaxSegmentBytes.
	MaxSegmentBytes int64
}

// Checkpoint is the persisted CT ingest resume point: the next entry index
// to fetch and the signed tree head the previous batch was verified against
// (kept so a resuming tailer can demand a consistency proof from the log).
type Checkpoint struct {
	LogName   string      `json:"log_name"`
	NextIndex uint64      `json:"next_index"`
	STHSize   uint64      `json:"sth_size"`
	STHRoot   string      `json:"sth_root"` // hex
	Timestamp simtime.Day `json:"timestamp"`
}

// Root decodes the checkpoint's tree root.
func (cp Checkpoint) Root() (merkle.Hash, error) {
	var h merkle.Hash
	raw, err := hex.DecodeString(cp.STHRoot)
	if err != nil || len(raw) != len(h) {
		return h, fmt.Errorf("certstore: bad checkpoint root %q", cp.STHRoot)
	}
	copy(h[:], raw)
	return h, nil
}

// Store is an open certificate store. All methods are safe for concurrent
// use; reads only take per-shard read locks.
type Store struct {
	dir    string
	psl    *psl.List
	maxSeg int64
	idx    *shardedIndex

	mu       sync.RWMutex // guards everything below
	man      *manifest
	active   *os.File
	activeSz int64
	certs    []*x509sim.Certificate // insertion order, shared across snapshots
	cp       *Checkpoint
	shardCfg *ShardConfig
	closed   bool
}

// shardFileName persists the fleet-slice assignment beside MANIFEST and
// CHECKPOINT.
const shardFileName = "SHARD"

// ShardConfig is the persisted fleet-slice assignment of a sharded store:
// which ring slice this store's certificates are, and the ring parameters
// the slice was cut with. A store ingested as one slice must never be
// re-tailed as another — the data on disk would be the wrong subset — so the
// assignment is written once and every later ingester validates against it
// (see Ingester.Sync).
type ShardConfig struct {
	Epoch  uint64 `json:"epoch"`
	Index  int    `json:"index"`
	Count  int    `json:"count"`
	VNodes int    `json:"vnodes"`
	Hash   string `json:"hash"`
}

// Label renders the metric label form "i/N".
func (sc ShardConfig) Label() string { return fmt.Sprintf("%d/%d", sc.Index, sc.Count) }

// ShardConfig returns the persisted slice assignment, if the store was ever
// ingested sharded.
func (s *Store) ShardConfig() (ShardConfig, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.shardCfg == nil {
		return ShardConfig{}, false
	}
	return *s.shardCfg, true
}

// EnsureShardConfig pins the store to one ring slice. The first call on a
// store that has never held certificates persists the assignment; later
// calls (and calls from restarted ingesters) succeed only when the
// assignment is identical. Attaching a slice to a store that already holds
// unsharded data is refused — the data would not be the claimed subset.
func (s *Store) EnsureShardConfig(sc ShardConfig) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.shardCfg != nil {
		if *s.shardCfg != sc {
			return fmt.Errorf("certstore: store %s is pinned to shard %s (epoch %d, %d vnodes, %s); refusing %s (epoch %d, %d vnodes, %s)",
				s.dir, s.shardCfg.Label(), s.shardCfg.Epoch, s.shardCfg.VNodes, s.shardCfg.Hash,
				sc.Label(), sc.Epoch, sc.VNodes, sc.Hash)
		}
		return nil
	}
	if len(s.certs) > 0 {
		return fmt.Errorf("certstore: store %s holds %d certificates ingested unsharded; cannot retroactively pin it to shard %s",
			s.dir, len(s.certs), sc.Label())
	}
	raw, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(s.dir, shardFileName), append(raw, '\n')); err != nil {
		return err
	}
	s.shardCfg = &sc
	return nil
}

// ErrClosed is returned by writes on a closed store.
var ErrClosed = errors.New("certstore: store is closed")

func defaultShards() int {
	n := 4
	for n < 2*runtime.GOMAXPROCS(0) && n < 256 {
		n *= 2
	}
	return n
}

// Open opens (or creates) the store at opts.Dir, verifies sealed segments
// against the manifest, truncates any torn tail off the active segment, and
// rebuilds the sharded indexes.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("certstore: Options.Dir is required")
	}
	if opts.PSL == nil {
		opts.PSL = psl.Default()
	}
	if opts.Shards <= 0 {
		opts.Shards = defaultShards()
	}
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:    opts.Dir,
		psl:    opts.PSL,
		maxSeg: opts.MaxSegmentBytes,
		idx:    newShardedIndex(opts.Shards, opts.PSL),
	}

	man, err := loadManifest(opts.Dir)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh store.
		man = &manifest{Version: 1, Active: segmentFileName(0)}
		f, sz, err := createSegment(filepath.Join(opts.Dir, man.Active))
		if err != nil {
			return nil, err
		}
		if err := man.store(opts.Dir); err != nil {
			f.Close()
			return nil, err
		}
		s.man, s.active, s.activeSz = man, f, sz
	case err != nil:
		return nil, err
	default:
		// Recover: sealed segments must verify bit-for-bit; the active
		// segment may have a torn tail from a crash mid-append.
		var loaded []*x509sim.Certificate
		for _, meta := range man.Sealed {
			certs, err := verifySealed(opts.Dir, meta)
			if err != nil {
				return nil, err
			}
			loaded = append(loaded, certs...)
		}
		activePath := filepath.Join(opts.Dir, man.Active)
		scan, err := readSegment(activePath)
		if errors.Is(err, os.ErrNotExist) {
			// Crash between manifest write and segment creation: recreate.
			f, sz, cerr := createSegment(activePath)
			if cerr != nil {
				return nil, cerr
			}
			s.active, s.activeSz = f, sz
		} else if err != nil {
			return nil, err
		} else {
			if scan.torn {
				if err := os.Truncate(activePath, scan.goodBytes); err != nil {
					return nil, err
				}
				mRecovered.Inc()
			}
			loaded = append(loaded, scan.certs...)
			f, err := os.OpenFile(activePath, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, err
			}
			s.active, s.activeSz = f, scan.goodBytes
		}
		s.man = man
		// Re-index with fingerprint dedup across segments (replayed batches
		// may straddle a seal).
		seen := make(map[x509sim.Fingerprint]bool, len(loaded))
		fresh := loaded[:0]
		for _, c := range loaded {
			fp := c.Fingerprint()
			if seen[fp] {
				continue
			}
			seen[fp] = true
			fresh = append(fresh, c)
		}
		s.idx.addBatch(fresh, s.certE2LDs)
		s.certs = fresh
	}

	if raw, err := os.ReadFile(filepath.Join(opts.Dir, checkpointName)); err == nil {
		var cp Checkpoint
		if err := json.Unmarshal(raw, &cp); err != nil {
			return nil, fmt.Errorf("certstore: corrupt checkpoint: %v", err)
		}
		s.cp = &cp
		mCheckpointN.Set(float64(cp.NextIndex))
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	if raw, err := os.ReadFile(filepath.Join(opts.Dir, shardFileName)); err == nil {
		var sc ShardConfig
		if err := json.Unmarshal(raw, &sc); err != nil {
			return nil, fmt.Errorf("certstore: corrupt shard assignment: %v", err)
		}
		s.shardCfg = &sc
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	s.publishGauges()
	return s, nil
}

func (s *Store) certE2LDs(cert *x509sim.Certificate) []string {
	return core.CertE2LDs(s.psl, cert)
}

// publishGauges refreshes the size gauges; callers hold no locks it needs.
func (s *Store) publishGauges() {
	s.mu.RLock()
	segs := len(s.man.Sealed) + 1
	var bytes int64 = s.activeSz
	for _, m := range s.man.Sealed {
		bytes += m.Bytes
	}
	n := len(s.certs)
	s.mu.RUnlock()
	mSegments.Set(float64(segs))
	mStoreBytes.Set(float64(bytes))
	mCerts.Set(float64(n))
	for i, c := range s.idx.shardCounts() {
		shardGauge(i).Set(float64(c))
	}
}

// Append durably stores and indexes every certificate not already present
// (by fingerprint, so a precert and its final cert deduplicate, matching the
// paper's criterion). It returns the number actually added. The batch is a
// single file append; the per-shard index locks are each taken once.
func (s *Store) Append(certs []*x509sim.Certificate) (int, error) {
	if len(certs) == 0 {
		return 0, nil
	}
	mAppends.Inc()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	fresh := make([]*x509sim.Certificate, 0, len(certs))
	seen := make(map[x509sim.Fingerprint]bool, len(certs))
	var buf []byte
	for _, c := range certs {
		fp := c.Fingerprint()
		if seen[fp] || s.idx.containsFP(fp) {
			mDeduped.Inc()
			continue
		}
		seen[fp] = true
		fresh = append(fresh, c)
		payload := c.Marshal()
		var hdr [4]byte
		hdr[0] = byte(len(payload) >> 24)
		hdr[1] = byte(len(payload) >> 16)
		hdr[2] = byte(len(payload) >> 8)
		hdr[3] = byte(len(payload))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
	}
	if len(fresh) == 0 {
		s.mu.Unlock()
		return 0, nil
	}
	if _, err := s.active.Write(buf); err != nil {
		s.mu.Unlock()
		return 0, fmt.Errorf("certstore: append: %w", err)
	}
	if err := s.active.Sync(); err != nil {
		s.mu.Unlock()
		return 0, fmt.Errorf("certstore: fsync: %w", err)
	}
	s.activeSz += int64(len(buf))
	s.certs = append(s.certs, fresh...)
	// Index before releasing the write mutex so a concurrent Append's dedup
	// check sees this batch.
	s.idx.addBatch(fresh, s.certE2LDs)
	var sealErr error
	if s.activeSz >= s.maxSeg {
		sealErr = s.sealLocked()
	}
	s.mu.Unlock()
	mAppended.Add(uint64(len(fresh)))
	s.publishGauges()
	if sealErr != nil {
		return len(fresh), sealErr
	}
	return len(fresh), nil
}

// sealLocked closes the active segment, records it (with checksum) in the
// manifest, and opens a fresh active segment. Caller holds s.mu.
func (s *Store) sealLocked() error {
	name := s.man.Active
	path := filepath.Join(s.dir, name)
	if err := s.active.Close(); err != nil {
		return err
	}
	scan, err := readSegment(path)
	if err != nil {
		return err
	}
	if scan.torn {
		return fmt.Errorf("%w: %s: torn tail while sealing", ErrCorruptSegment, name)
	}
	next := segmentFileName(len(s.man.Sealed) + 1)
	// Find an unused name (sealing is monotonic but be defensive).
	for {
		if _, err := os.Stat(filepath.Join(s.dir, next)); errors.Is(err, os.ErrNotExist) {
			break
		}
		next = segmentFileName(len(s.man.Sealed) + 2)
	}
	f, sz, err := createSegment(filepath.Join(s.dir, next))
	if err != nil {
		return err
	}
	s.man.Sealed = append(s.man.Sealed, segmentMeta{
		Name:   name,
		Bytes:  scan.goodBytes,
		Count:  len(scan.certs),
		SHA256: hex.EncodeToString(scan.sum[:]),
	})
	s.man.Active = next
	if err := s.man.store(s.dir); err != nil {
		f.Close()
		return err
	}
	s.active, s.activeSz = f, sz
	mSeals.Inc()
	return nil
}

// SetCheckpoint atomically persists the CT ingest resume point.
func (s *Store) SetCheckpoint(cp Checkpoint) error {
	raw, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := writeFileAtomic(filepath.Join(s.dir, checkpointName), append(raw, '\n')); err != nil {
		return err
	}
	s.cp = &cp
	mCheckpointN.Set(float64(cp.NextIndex))
	return nil
}

// Checkpoint returns the persisted resume point, if any.
func (s *Store) Checkpoint() (Checkpoint, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.cp == nil {
		return Checkpoint{}, false
	}
	return *s.cp, true
}

// Close flushes and closes the active segment. The store rejects writes
// afterwards; reads keep working off the in-memory index.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.active.Sync(); err != nil {
		s.active.Close()
		return err
	}
	return s.active.Close()
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// SegmentCount returns sealed segments + the active one.
func (s *Store) SegmentCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.man.Sealed) + 1
}

// Len returns the number of stored (deduplicated) certificates.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.certs)
}

// Certs returns a snapshot copy of the stored certificates in insertion
// order. Callers may keep or sort it freely.
func (s *Store) Certs() []*x509sim.Certificate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*x509sim.Certificate, len(s.certs))
	copy(out, s.certs)
	return out
}

// ByKey resolves a CRL (issuer, serial) join key.
func (s *Store) ByKey(k x509sim.DedupKey) (*x509sim.Certificate, bool) {
	return s.idx.byKey(k)
}

// ByE2LD returns every certificate naming an FQDN under the e2LD. The slice
// is a defensive copy.
func (s *Store) ByE2LD(domain string) []*x509sim.Certificate {
	return s.idx.byE2LD(domain)
}

// BySPKI returns every certificate carrying the subject key — the pivot for
// key-reuse analyses (one compromised key can back many certificates).
func (s *Store) BySPKI(k x509sim.KeyID) []*x509sim.Certificate {
	return s.idx.bySPKI(k)
}

// ByFingerprint resolves a full 32-byte fingerprint.
func (s *Store) ByFingerprint(fp x509sim.Fingerprint) (*x509sim.Certificate, bool) {
	return s.idx.byFingerprint(fp)
}

// ByShortFingerprint resolves the 8-byte prefix form that
// x509sim.Fingerprint.String renders (16 hex digits).
func (s *Store) ByShortFingerprint(prefix [8]byte) (*x509sim.Certificate, bool) {
	var v shortFP
	for i := 0; i < 8; i++ {
		v = v<<8 | shortFP(prefix[i])
	}
	return s.idx.byShortFingerprint(v)
}

// PSL returns the public suffix list the e2LD index was built with.
func (s *Store) PSL() *psl.List { return s.psl }

// Corpus materialises a detector-ready core.Corpus snapshot from the store
// (applying the corpus's analysis-time filters); the batch pipelines run
// unchanged against it while live queries keep hitting the store directly.
func (s *Store) Corpus(opts core.CorpusOptions) *core.Corpus {
	if opts.PSL == nil {
		opts.PSL = s.psl
	}
	return core.NewCorpus(s.Certs(), opts)
}

// ShardCounts returns per-shard certificate counts (sorted ascending is NOT
// applied; index order) for diagnostics.
func (s *Store) ShardCounts() []int { return s.idx.shardCounts() }

// Domains returns every indexed e2LD, sorted. Diagnostic; takes every shard
// read lock in turn.
func (s *Store) Domains() []string {
	var out []string
	for _, sh := range s.idx.shards {
		sh.mu.RLock()
		for d := range sh.byE2LD {
			out = append(out, d)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

var _ core.Index = (*Store)(nil)
