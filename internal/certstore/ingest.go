package certstore

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"time"

	"stalecert/internal/ctlog"
	"stalecert/internal/merkle"
	"stalecert/internal/obs"
	"stalecert/internal/x509sim"
)

// Ingester metrics: sync rounds, entries and certificates absorbed, lag
// behind the log head at the end of the last round, and resume events.
var (
	mIngestRounds   = obs.Default().Counter("certstore_ingest_rounds_total")
	mIngestErrors   = obs.Default().Counter("certstore_ingest_errors_total")
	mIngestEntries  = obs.Default().Counter("certstore_ingest_entries_total")
	mIngestLag      = obs.Default().Gauge("certstore_ingest_lag_entries")
	mIngestResumes  = obs.Default().Counter("certstore_ingest_resumes_total")
	mIngestBackoffs = obs.Default().Counter("certstore_ingest_backoffs_total")
)

// Sharded ingest keeps/skips counters, labelled by the replica's ring slice
// ("i/N") so a fleet dashboard shows each shard absorbing its share of the
// log and nothing else.
func ingestKeptCounter(shard string) *obs.Counter {
	return obs.Default().Counter("certstore_ingest_kept_total", "shard", shard)
}

func ingestSkippedCounter(shard string) *obs.Counter {
	return obs.Default().Counter("certstore_ingest_skipped_total", "shard", shard)
}

// Ingester incrementally tails one CT log into a Store. The resume position
// lives in the store's persisted checkpoint, so a restarted process picks up
// where the previous one stopped instead of re-scraping the log; on resume
// the ingester demands a consistency proof between the checkpointed tree
// head and the log's current head, surfacing a log that rewrote history
// while the ingester was down.
type Ingester struct {
	Store  *Store
	Client *ctlog.Client
	// BatchSize is the get-entries page size (0 = the client default).
	BatchSize uint64
	// Keep, when non-nil, filters which certificates this replica persists.
	// Entries are still fetched and Merkle-verified in full — the checkpoint
	// advances over every entry — but only certificates Keep accepts reach
	// the store. A sharded fleet points N ingesters at the same log with
	// disjoint Keep predicates.
	Keep func(*x509sim.Certificate) bool
	// Shard declares which ring slice Keep implements. It is validated
	// against the store's persisted assignment on the first sync: a store
	// pinned to one slice refuses ingest under another (or under none), and
	// a store that already ingested unsharded refuses retroactive pinning.
	Shard *ShardConfig
	// lag is the entries behind the head after the last Sync.
	lag uint64
	// resumed tracks whether the cross-restart consistency check ran.
	resumed bool
	// shardChecked tracks the one-time Shard/store agreement check.
	shardChecked bool
	mKept        *obs.Counter
	mSkipped     *obs.Counter
}

// NewIngester tails client into store.
func NewIngester(store *Store, client *ctlog.Client) *Ingester {
	return &Ingester{Store: store, Client: client}
}

// Checkpoint implements monitor.EntrySink: the watcher resumes from the
// store's persisted position.
func (ing *Ingester) Checkpoint() (uint64, bool) {
	cp, ok := ing.Store.Checkpoint()
	if !ok {
		return 0, false
	}
	return cp.NextIndex, true
}

// Lag returns the entries the store trailed the log head by at the end of
// the last sync round.
func (ing *Ingester) Lag() uint64 { return ing.lag }

// verifyResume checks the current head extends the checkpointed one. Called
// once per process lifetime, on the first sync after a restart.
func (ing *Ingester) verifyResume(ctx context.Context, cp Checkpoint, sth ctlog.SignedTreeHead) error {
	if cp.STHSize == 0 || cp.STHSize > sth.Size {
		if cp.STHSize > sth.Size {
			return fmt.Errorf("certstore: log shrank below checkpoint: %d -> %d", cp.STHSize, sth.Size)
		}
		return nil
	}
	root, err := cp.Root()
	if err != nil {
		return err
	}
	if cp.STHSize == sth.Size {
		if root != sth.Root {
			return fmt.Errorf("certstore: log rewrote history at size %d", sth.Size)
		}
		return nil
	}
	proof, err := ing.Client.GetConsistency(ctx, cp.STHSize, sth.Size)
	if err != nil {
		return fmt.Errorf("certstore: resume consistency proof: %w", err)
	}
	if !merkle.VerifyConsistency(cp.STHSize, sth.Size, root, sth.Root, proof) {
		return fmt.Errorf("certstore: resume consistency check failed: %d -> %d", cp.STHSize, sth.Size)
	}
	return nil
}

// checkShard runs the one-time agreement check between the ingester's
// declared slice and the store's persisted one — the "validated at ingest
// time" half of the shard-map contract. A mismatch is permanent for the
// process, so it is re-reported on every round rather than cached away.
func (ing *Ingester) checkShard() error {
	if ing.shardChecked {
		return nil
	}
	if ing.Shard == nil {
		if sc, ok := ing.Store.ShardConfig(); ok {
			return fmt.Errorf("certstore: store is pinned to shard %s; refusing unsharded ingest (pass the matching -shard flag)", sc.Label())
		}
	} else {
		if err := ing.Store.EnsureShardConfig(*ing.Shard); err != nil {
			return err
		}
		label := ing.Shard.Label()
		ing.mKept = ingestKeptCounter(label)
		ing.mSkipped = ingestSkippedCounter(label)
	}
	ing.shardChecked = true
	return nil
}

// Sync performs one ingest round: scrape from the checkpoint to the current
// head, append the certificates, persist the new checkpoint. It returns the
// number of new certificates stored (after dedup).
func (ing *Ingester) Sync(ctx context.Context) (int, error) {
	mIngestRounds.Inc()
	if err := ing.checkShard(); err != nil {
		mIngestErrors.Inc()
		return 0, err
	}
	cp, haveCP := ing.Store.Checkpoint()
	if haveCP && !ing.resumed {
		sth, err := ing.Client.GetSTH(ctx)
		if err != nil {
			mIngestErrors.Inc()
			return 0, err
		}
		if err := ing.verifyResume(ctx, cp, sth); err != nil {
			mIngestErrors.Inc()
			return 0, err
		}
		ing.resumed = true
		mIngestResumes.Inc()
	}
	entries, sth, err := ing.Client.Scrape(ctx, ctlog.ScrapeOptions{
		From:      cp.NextIndex,
		BatchSize: ing.BatchSize,
	})
	if err != nil {
		mIngestErrors.Inc()
		return 0, err
	}
	ing.resumed = true
	return ing.ingest(entries, sth)
}

// IngestEntries implements monitor.EntrySink: entries a live watcher polled
// (and whose STH it already verified) are persisted with the checkpoint
// advanced past them.
func (ing *Ingester) IngestEntries(entries []ctlog.Entry, sth ctlog.SignedTreeHead) error {
	if err := ing.checkShard(); err != nil {
		mIngestErrors.Inc()
		return err
	}
	_, err := ing.ingest(entries, sth)
	return err
}

func (ing *Ingester) ingest(entries []ctlog.Entry, sth ctlog.SignedTreeHead) (int, error) {
	cp, _ := ing.Store.Checkpoint()
	next := cp.NextIndex
	certs := make([]*x509sim.Certificate, 0, len(entries))
	var kept, skipped uint64
	for _, e := range entries {
		if ing.Keep != nil && !ing.Keep(e.Cert) {
			skipped++
		} else {
			certs = append(certs, e.Cert)
			kept++
		}
		if e.Index >= next {
			next = e.Index + 1
		}
	}
	if ing.mKept != nil {
		ing.mKept.Add(kept)
		ing.mSkipped.Add(skipped)
	}
	added, err := ing.Store.Append(certs)
	if err != nil {
		mIngestErrors.Inc()
		return added, err
	}
	mIngestEntries.Add(uint64(len(entries)))
	if sth.Size > next {
		ing.lag = sth.Size - next
	} else {
		ing.lag = 0
	}
	mIngestLag.Set(float64(ing.lag))
	if err := ing.Store.SetCheckpoint(Checkpoint{
		LogName:   sth.LogName,
		NextIndex: next,
		STHSize:   sth.Size,
		STHRoot:   hex.EncodeToString(sth.Root[:]),
		Timestamp: sth.Timestamp,
	}); err != nil {
		mIngestErrors.Inc()
		return added, err
	}
	return added, nil
}

// Run syncs every interval until the context is cancelled, logging nothing
// itself — callers observe progress through the metric families. The first
// sync happens immediately. A failed round does not end the loop: the
// checkpoint stays where the last success left it and the next round is
// scheduled with exponential backoff (interval … 32×interval), so an
// ingester rides out a restarting log server and resumes tailing with no
// gap or duplication once it returns.
func (ing *Ingester) Run(ctx context.Context, interval time.Duration, onSync func(added int, err error)) {
	wait := interval
	for {
		added, err := ing.Sync(ctx)
		if onSync != nil {
			onSync(added, err)
		}
		if err == nil || errors.Is(err, context.Canceled) {
			wait = interval
		} else {
			mIngestBackoffs.Inc()
			wait *= 2
			if wait > 32*interval {
				wait = 32 * interval
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(wait):
		}
	}
}
