package crl

import (
	"math/rand"
	"testing"

	"stalecert/internal/x509sim"
)

func TestUnmarshalNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		buf := make([]byte, rng.Intn(200))
		rng.Read(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %x: %v", buf, r)
				}
			}()
			_, _ = Unmarshal(buf)
		}()
	}
}

func TestUnmarshalNeverPanicsOnMutations(t *testing.T) {
	l := &List{CAName: "Sectigo", Number: 9, ThisUpdate: 100, NextUpdate: 107}
	for i := 0; i < 5; i++ {
		l.Entries = append(l.Entries, Entry{Issuer: 1, Serial: x509sim.SerialNumber(i), RevokedAt: 50, Reason: KeyCompromise})
	}
	valid := l.Marshal()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		buf := append([]byte(nil), valid...)
		for k := 0; k < 1+rng.Intn(3); k++ {
			buf[rng.Intn(len(buf))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %x: %v", buf, r)
				}
			}()
			if got, err := Unmarshal(buf); err == nil {
				_ = got.Marshal()
			}
		}()
	}
}
