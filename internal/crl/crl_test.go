package crl

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"testing/quick"

	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

func TestReasonStrings(t *testing.T) {
	if KeyCompromise.String() != "keyCompromise" {
		t.Fatal(KeyCompromise.String())
	}
	if Reason(7).String() != "reason(7)" {
		t.Fatal(Reason(7).String())
	}
}

func TestMozillaPermitted(t *testing.T) {
	permitted := []Reason{Unspecified, KeyCompromise, AffiliationChanged, Superseded, CessationOfOperation, PrivilegeWithdrawn}
	for _, r := range permitted {
		if !r.MozillaPermitted() {
			t.Errorf("%v should be permitted", r)
		}
	}
	forbidden := []Reason{CACompromise, CertificateHold, RemoveFromCRL, AACompromise}
	for _, r := range forbidden {
		if r.MozillaPermitted() {
			t.Errorf("%v should not be permitted", r)
		}
	}
	// Exactly six of ten are permitted, as the paper notes.
	n := 0
	for r := Reason(0); r <= AACompromise; r++ {
		if _, ok := reasonNames[r]; ok && r.MozillaPermitted() {
			n++
		}
	}
	if n != 6 {
		t.Fatalf("permitted count = %d, want 6", n)
	}
}

func TestListMarshalRoundTrip(t *testing.T) {
	l := &List{
		CAName:     "Sectigo",
		Number:     42,
		ThisUpdate: 3600,
		NextUpdate: 3607,
		Entries: []Entry{
			{Issuer: 1, Serial: 100, RevokedAt: 3500, Reason: KeyCompromise},
			{Issuer: 2, Serial: 200, RevokedAt: 3550, Reason: Superseded},
		},
	}
	got, err := Unmarshal(l.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, l)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	l := &List{CAName: "X", Entries: []Entry{{Serial: 1}}}
	enc := l.Marshal()
	if _, err := Unmarshal(enc[:len(enc)-2]); err != ErrTruncated {
		t.Errorf("truncated: %v", err)
	}
	if _, err := Unmarshal(append(enc, 0)); err != ErrTrailing {
		t.Errorf("trailing: %v", err)
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 0
	if _, err := Unmarshal(bad); err != ErrBadMagic {
		t.Errorf("magic: %v", err)
	}
	if _, err := Unmarshal(nil); err != ErrTruncated {
		t.Errorf("nil: %v", err)
	}
}

func TestAuthorityRevokeAndSnapshot(t *testing.T) {
	a := NewAuthority("DigiCert")
	a.Revoke(1, 10, 100, KeyCompromise)
	a.Revoke(1, 11, 200, Superseded)
	a.Revoke(1, 10, 150, Unspecified) // duplicate: earliest wins
	if a.Count() != 2 {
		t.Fatalf("count = %d", a.Count())
	}
	e, ok := a.IsRevoked(x509sim.DedupKey{Issuer: 1, Serial: 10})
	if !ok || e.RevokedAt != 100 || e.Reason != KeyCompromise {
		t.Fatalf("entry = %+v ok=%v", e, ok)
	}
	// Snapshot at day 150 excludes the day-200 revocation.
	l := a.Snapshot(150)
	if len(l.Entries) != 1 || l.Entries[0].Serial != 10 {
		t.Fatalf("snapshot = %+v", l.Entries)
	}
	if l.Number != 1 {
		t.Fatalf("crl number = %d", l.Number)
	}
	l2 := a.Snapshot(300)
	if len(l2.Entries) != 2 || l2.Number != 2 {
		t.Fatalf("snapshot2 = %+v n=%d", l2.Entries, l2.Number)
	}
	if l2.NextUpdate != 307 {
		t.Fatalf("nextUpdate = %v", l2.NextUpdate)
	}
}

func TestSnapshotSorted(t *testing.T) {
	a := NewAuthority("X")
	a.Revoke(2, 5, 0, Unspecified)
	a.Revoke(1, 9, 0, Unspecified)
	a.Revoke(1, 3, 0, Unspecified)
	l := a.Snapshot(10)
	want := []x509sim.SerialNumber{3, 9, 5}
	for i, e := range l.Entries {
		if e.Serial != want[i] {
			t.Fatalf("order = %+v", l.Entries)
		}
	}
}

func TestServerFetcherEndToEnd(t *testing.T) {
	srv := NewServer(1)
	reliable := NewAuthority("Reliable")
	reliable.Revoke(1, 100, 50, KeyCompromise)
	blocked := NewAuthority("Blocked")
	blocked.Revoke(2, 200, 60, Superseded)
	srv.Host(reliable, 0)
	srv.Host(blocked, 1.0) // always refuses: scrape protection
	srv.SetNow(70)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ledger := NewCoverageLedger()
	f := &Fetcher{Base: ts.URL, HC: ts.Client(), Ledger: ledger}
	got, err := f.FetchAll(context.Background(), srv.Names())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("fetched %d CRLs", len(got))
	}
	l := got["Reliable"]
	if l == nil || len(l.Entries) != 1 || l.Entries[0].Reason != KeyCompromise {
		t.Fatalf("reliable CRL = %+v", l)
	}
	if l.ThisUpdate != 70 {
		t.Fatalf("thisUpdate = %v", l.ThisUpdate)
	}

	rows := ledger.Rows()
	if len(rows) != 2 {
		t.Fatalf("ledger rows = %d", len(rows))
	}
	// Sorted ascending by coverage: Blocked first.
	if rows[0].CAName != "Blocked" || rows[0].Succeeded != 0 {
		t.Fatalf("rows[0] = %+v", rows[0])
	}
	if rows[1].CAName != "Reliable" || rows[1].Percent() != 100 {
		t.Fatalf("rows[1] = %+v", rows[1])
	}
	total := ledger.Total()
	if total.Attempted != 2 || total.Succeeded != 1 {
		t.Fatalf("total = %+v", total)
	}
}

func TestFetcherRetriesTransientFailures(t *testing.T) {
	srv := NewServer(7)
	flaky := NewAuthority("Flaky")
	flaky.Revoke(1, 1, 0, Unspecified)
	srv.Host(flaky, 0.5)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ledger := NewCoverageLedger()
	f := &Fetcher{Base: ts.URL, HC: ts.Client(), Ledger: ledger, Retries: 10}
	// With 10 retries at 50% fail rate, collection succeeds essentially always.
	for day := 0; day < 20; day++ {
		if _, err := f.FetchAll(context.Background(), []string{"Flaky"}); err != nil {
			t.Fatal(err)
		}
	}
	cov := ledger.Rows()[0]
	if cov.Attempted != 20 || cov.Succeeded < 19 {
		t.Fatalf("coverage = %+v", cov)
	}
}

func TestFetcherUnknownCA(t *testing.T) {
	srv := NewServer(1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ledger := NewCoverageLedger()
	f := &Fetcher{Base: ts.URL, HC: ts.Client(), Ledger: ledger}
	got, err := f.FetchAll(context.Background(), []string{"nope"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("unknown CA returned a CRL")
	}
	if ledger.Rows()[0].Succeeded != 0 {
		t.Fatal("failure not recorded")
	}
}

func TestQuickListRoundTrip(t *testing.T) {
	f := func(name string, number uint64, n uint8, serialBase uint64) bool {
		if len(name) > 255 {
			name = name[:255]
		}
		l := &List{CAName: name, Number: number, ThisUpdate: 5, NextUpdate: 12}
		for i := 0; i < int(n)%20; i++ {
			l.Entries = append(l.Entries, Entry{
				Issuer:    x509sim.IssuerID(i),
				Serial:    x509sim.SerialNumber(serialBase + uint64(i)),
				RevokedAt: simtime.Day(i * 3),
				Reason:    Reason(i % 11),
			})
		}
		got, err := Unmarshal(l.Marshal())
		if err != nil {
			return false
		}
		if len(l.Entries) == 0 {
			return got.CAName == l.CAName && len(got.Entries) == 0
		}
		return reflect.DeepEqual(l, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoveragePercentEmpty(t *testing.T) {
	if (Coverage{}).Percent() != 100 {
		t.Fatal("empty coverage should be 100%")
	}
}
