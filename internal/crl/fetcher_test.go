package crl

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"stalecert/internal/x509sim"
)

// TestLedgerDistinguishesExhaustedFromNeverAttempted is the regression test
// for the coverage-ledger fix: a CA whose retries all fail must appear in the
// ledger as attempted-and-exhausted, while CAs the run never reached (the
// context was already cancelled) must leave no row at all. Previously a
// cancellation mid-retry dropped the in-flight CA from the ledger, making
// "retries exhausted" indistinguishable from "never attempted".
func TestLedgerDistinguishesExhaustedFromNeverAttempted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Every request for CA "alpha" is blocked; cancel the run while its
		// retries are in flight so "beta" is never attempted.
		if calls.Add(1) == 2 {
			cancel()
		}
		http.Error(w, "automated access denied", http.StatusForbidden)
	}))
	defer srv.Close()

	ledger := NewCoverageLedger()
	f := &Fetcher{Base: srv.URL, Ledger: ledger, Retries: 3}
	_, err := f.FetchAll(ctx, []string{"alpha", "beta"})
	if err == nil {
		t.Fatal("expected context cancellation error")
	}

	rows := ledger.Rows()
	if len(rows) != 1 {
		t.Fatalf("ledger rows = %d (%v), want exactly 1: the in-flight CA", len(rows), rows)
	}
	got := rows[0]
	if got.CAName != "alpha" {
		t.Errorf("ledger row CA = %q, want alpha", got.CAName)
	}
	if got.Attempted != 1 || got.Succeeded != 0 || got.Canceled != 1 {
		t.Errorf("alpha coverage = %+v, want Attempted=1 Succeeded=0 Canceled=1", got)
	}
	// beta must NOT be in the ledger: it was never attempted.
	for _, r := range rows {
		if r.CAName == "beta" {
			t.Error("never-attempted CA beta must not appear in the ledger")
		}
	}
}

// TestLedgerRecordsRetryExhausted checks the uncancelled failure path: all
// retries fail, the CA is recorded as exhausted, and the fetch moves on.
func TestLedgerRecordsRetryExhausted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/crl/good" {
			a := NewAuthority("good")
			a.Revoke(1, x509sim.SerialNumber(1), 10, KeyCompromise)
			w.Header().Set("Content-Type", "application/pkix-crl")
			_, _ = w.Write(a.Snapshot(20).Marshal())
			return
		}
		http.Error(w, "automated access denied", http.StatusForbidden)
	}))
	defer srv.Close()

	ledger := NewCoverageLedger()
	f := &Fetcher{Base: srv.URL, Ledger: ledger, Retries: 2}
	lists, err := f.FetchAll(context.Background(), []string{"blocked", "good"})
	if err != nil {
		t.Fatalf("FetchAll: %v", err)
	}
	if len(lists) != 1 || lists["good"] == nil {
		t.Fatalf("lists = %v, want only good", lists)
	}

	rows := ledger.Rows()
	if len(rows) != 2 {
		t.Fatalf("ledger rows = %d, want 2", len(rows))
	}
	byName := map[string]Coverage{}
	for _, r := range rows {
		byName[r.CAName] = r
	}
	if c := byName["blocked"]; c.Attempted != 1 || c.Exhausted != 1 || c.Canceled != 0 {
		t.Errorf("blocked coverage = %+v, want Attempted=1 Exhausted=1", c)
	}
	if c := byName["good"]; c.Attempted != 1 || c.Succeeded != 1 {
		t.Errorf("good coverage = %+v, want Attempted=1 Succeeded=1", c)
	}
	total := ledger.Total()
	if total.Attempted != 2 || total.Succeeded != 1 || total.Exhausted != 1 {
		t.Errorf("total = %+v", total)
	}
}
