// Package crl implements the certificate-revocation substrate: RFC 5280
// revocation reasons, per-CA certificate revocation lists with a
// deterministic binary codec, HTTP distribution points with the
// scrape-protection failures the paper encountered, a daily fetcher, and the
// per-CA coverage ledger behind Appendix B (Table 7).
package crl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"stalecert/internal/simtime"
	"stalecert/internal/x509sim"
)

// Reason is an RFC 5280 CRLReason code.
type Reason uint8

// RFC 5280 reason codes. Value 7 is unused in the RFC.
const (
	Unspecified          Reason = 0
	KeyCompromise        Reason = 1
	CACompromise         Reason = 2
	AffiliationChanged   Reason = 3
	Superseded           Reason = 4
	CessationOfOperation Reason = 5
	CertificateHold      Reason = 6
	RemoveFromCRL        Reason = 8
	PrivilegeWithdrawn   Reason = 9
	AACompromise         Reason = 10
)

var reasonNames = map[Reason]string{
	Unspecified:          "unspecified",
	KeyCompromise:        "keyCompromise",
	CACompromise:         "cACompromise",
	AffiliationChanged:   "affiliationChanged",
	Superseded:           "superseded",
	CessationOfOperation: "cessationOfOperation",
	CertificateHold:      "certificateHold",
	RemoveFromCRL:        "removeFromCRL",
	PrivilegeWithdrawn:   "privilegeWithdrawn",
	AACompromise:         "aACompromise",
}

// String names the reason code.
func (r Reason) String() string {
	if n, ok := reasonNames[r]; ok {
		return n
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// MozillaPermitted reports whether Mozilla policy permits CAs to assert this
// reason on subscriber certificates (six of the ten codes; see §3 of the
// paper).
func (r Reason) MozillaPermitted() bool {
	switch r {
	case Unspecified, KeyCompromise, AffiliationChanged, Superseded,
		CessationOfOperation, PrivilegeWithdrawn:
		return true
	}
	return false
}

// Entry is a single revocation: CRLs carry only the issuer key, serial,
// revocation time and reason — never the certificate body — which is why the
// pipeline must join them against CT.
type Entry struct {
	Issuer    x509sim.IssuerID
	Serial    x509sim.SerialNumber
	RevokedAt simtime.Day
	Reason    Reason
}

// Key returns the CT-join key.
func (e Entry) Key() x509sim.DedupKey {
	return x509sim.DedupKey{Issuer: e.Issuer, Serial: e.Serial}
}

// List is one CRL issuance: a snapshot of all unexpired revocations by one
// CA at ThisUpdate.
type List struct {
	CAName     string
	Number     uint64 // monotone CRL number
	ThisUpdate simtime.Day
	NextUpdate simtime.Day
	Entries    []Entry
}

// Codec errors.
var (
	ErrTruncated = errors.New("crl: truncated encoding")
	ErrBadMagic  = errors.New("crl: bad magic")
	ErrTrailing  = errors.New("crl: trailing bytes")
)

const listMagic = 0xCA

// Marshal encodes the list deterministically.
func (l *List) Marshal() []byte {
	b := make([]byte, 0, 32+len(l.CAName)+15*len(l.Entries))
	b = append(b, listMagic)
	b = append(b, byte(len(l.CAName)))
	b = append(b, l.CAName...)
	b = binary.BigEndian.AppendUint64(b, l.Number)
	b = binary.BigEndian.AppendUint32(b, uint32(int32(l.ThisUpdate)))
	b = binary.BigEndian.AppendUint32(b, uint32(int32(l.NextUpdate)))
	b = binary.BigEndian.AppendUint32(b, uint32(len(l.Entries)))
	for _, e := range l.Entries {
		b = binary.BigEndian.AppendUint16(b, uint16(e.Issuer))
		b = binary.BigEndian.AppendUint64(b, uint64(e.Serial))
		b = binary.BigEndian.AppendUint32(b, uint32(int32(e.RevokedAt)))
		b = append(b, byte(e.Reason))
	}
	return b
}

// Unmarshal decodes a list produced by Marshal.
func Unmarshal(b []byte) (*List, error) {
	if len(b) < 2 {
		return nil, ErrTruncated
	}
	if b[0] != listMagic {
		return nil, ErrBadMagic
	}
	nameLen := int(b[1])
	b = b[2:]
	if len(b) < nameLen+20 {
		return nil, ErrTruncated
	}
	l := &List{CAName: string(b[:nameLen])}
	b = b[nameLen:]
	l.Number = binary.BigEndian.Uint64(b)
	l.ThisUpdate = simtime.Day(int32(binary.BigEndian.Uint32(b[8:])))
	l.NextUpdate = simtime.Day(int32(binary.BigEndian.Uint32(b[12:])))
	n := int(binary.BigEndian.Uint32(b[16:]))
	b = b[20:]
	const entrySize = 2 + 8 + 4 + 1
	if len(b) < n*entrySize {
		return nil, ErrTruncated
	}
	l.Entries = make([]Entry, n)
	for i := 0; i < n; i++ {
		l.Entries[i] = Entry{
			Issuer:    x509sim.IssuerID(binary.BigEndian.Uint16(b)),
			Serial:    x509sim.SerialNumber(binary.BigEndian.Uint64(b[2:])),
			RevokedAt: simtime.Day(int32(binary.BigEndian.Uint32(b[10:]))),
			Reason:    Reason(b[14]),
		}
		b = b[entrySize:]
	}
	if len(b) != 0 {
		return nil, ErrTrailing
	}
	return l, nil
}

// Authority is one CA's revocation infrastructure: it accumulates
// revocations and publishes daily CRL snapshots. Safe for concurrent use.
type Authority struct {
	name string

	mu      sync.Mutex
	number  uint64
	entries []Entry
	index   map[x509sim.DedupKey]int
}

// NewAuthority creates a CA revocation authority.
func NewAuthority(name string) *Authority {
	return &Authority{name: name, index: make(map[x509sim.DedupKey]int)}
}

// Name returns the CA name.
func (a *Authority) Name() string { return a.name }

// Revoke records a revocation. Re-revoking the same certificate keeps the
// earliest revocation (CAs do not move revocation times).
func (a *Authority) Revoke(issuer x509sim.IssuerID, serial x509sim.SerialNumber, day simtime.Day, reason Reason) {
	a.mu.Lock()
	defer a.mu.Unlock()
	key := x509sim.DedupKey{Issuer: issuer, Serial: serial}
	if _, ok := a.index[key]; ok {
		return
	}
	a.index[key] = len(a.entries)
	a.entries = append(a.entries, Entry{Issuer: issuer, Serial: serial, RevokedAt: day, Reason: reason})
}

// IsRevoked reports whether the given certificate key has been revoked.
func (a *Authority) IsRevoked(key x509sim.DedupKey) (Entry, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if i, ok := a.index[key]; ok {
		return a.entries[i], true
	}
	return Entry{}, false
}

// Snapshot issues the CA's CRL as of day: all revocations with RevokedAt on
// or before day, sorted for determinism, with a 7-day nextUpdate window.
func (a *Authority) Snapshot(day simtime.Day) *List {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.number++
	l := &List{CAName: a.name, Number: a.number, ThisUpdate: day, NextUpdate: day + 7}
	for _, e := range a.entries {
		if e.RevokedAt <= day {
			l.Entries = append(l.Entries, e)
		}
	}
	sort.Slice(l.Entries, func(i, j int) bool {
		if l.Entries[i].Issuer != l.Entries[j].Issuer {
			return l.Entries[i].Issuer < l.Entries[j].Issuer
		}
		return l.Entries[i].Serial < l.Entries[j].Serial
	})
	return l
}

// Count returns the number of revocations recorded so far.
func (a *Authority) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.entries)
}
