package crl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stalecert/internal/obs"
	"stalecert/internal/resil"
	"stalecert/internal/simtime"
)

// Distribution-point and fetcher metrics. Fetch outcomes are labelled per CA
// so scrape-protection hot spots (Appendix B) show up directly in /metrics.
var (
	mServeOK      = obs.Default().Counter("crl_server_requests_total", "outcome", "ok")
	mServeBlocked = obs.Default().Counter("crl_server_requests_total", "outcome", "blocked")
	mServeUnknown = obs.Default().Counter("crl_server_requests_total", "outcome", "unknown_ca")
	mFetchRetries = obs.Default().Counter("crl_fetch_retries_total")
	mFetchBytes   = obs.Default().Histogram("crl_fetch_bytes", obs.SizeBuckets)
)

func fetchOutcomeCounter(ca string, outcome Outcome) *obs.Counter {
	return obs.Default().Counter("crl_fetch_total", "ca", ca, "outcome", outcome.String())
}

// Server serves the CRLs of many authorities over HTTP, the way CA
// distribution points do. Some production CRL endpoints sit behind
// scrape protections; FailRate simulates those per-endpoint rejections so the
// fetcher's coverage accounting (Appendix B) is exercised.
type Server struct {
	mu          sync.RWMutex
	authorities map[string]*Authority
	failRate    map[string]float64 // CA name -> probability of 403
	rng         *rand.Rand
	rngMu       sync.Mutex
	now         atomic.Int64
}

// NewServer creates a CRL distribution server. seed drives the simulated
// scrape-protection failures.
func NewServer(seed int64) *Server {
	return &Server{
		authorities: make(map[string]*Authority),
		failRate:    make(map[string]float64),
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// SetNow advances the server's simulated clock (CRL thisUpdate stamps).
func (s *Server) SetNow(d simtime.Day) { s.now.Store(int64(d)) }

// Host registers an authority, optionally with a scrape-protection failure
// probability in [0, 1).
func (s *Server) Host(a *Authority, failRate float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.authorities[a.Name()] = a
	s.failRate[a.Name()] = failRate
}

// Names returns the hosted CA names, sorted.
func (s *Server) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.authorities))
	for n := range s.authorities {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Handler serves GET /crl/{ca} with the CA's current CRL in binary form.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /crl/{ca}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("ca")
		s.mu.RLock()
		a, ok := s.authorities[name]
		fail := s.failRate[name]
		s.mu.RUnlock()
		if !ok {
			mServeUnknown.Inc()
			http.Error(w, "unknown CA", http.StatusNotFound)
			return
		}
		if fail > 0 {
			s.rngMu.Lock()
			blocked := s.rng.Float64() < fail
			s.rngMu.Unlock()
			if blocked {
				// Simulated anti-scraping response.
				mServeBlocked.Inc()
				http.Error(w, "automated access denied", http.StatusForbidden)
				return
			}
		}
		mServeOK.Inc()
		list := a.Snapshot(simtime.Day(s.now.Load()))
		w.Header().Set("Content-Type", "application/pkix-crl")
		_, _ = w.Write(list.Marshal())
	})
	return mux
}

// Outcome classifies one daily fetch of one CA's CRL.
type Outcome uint8

// Fetch outcomes. A CA that never appears in the ledger was never attempted
// at all — distinct from OutcomeRetryExhausted (every attempt failed) and
// OutcomeCanceled (the collection run was cut off mid-retry).
const (
	OutcomeOK Outcome = iota
	OutcomeRetryExhausted
	OutcomeCanceled
)

// String names the outcome for metric labels and reports.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeRetryExhausted:
		return "retry_exhausted"
	case OutcomeCanceled:
		return "canceled"
	}
	return "outcome?"
}

// CoverageLedger accumulates per-CA fetch outcomes across daily collection
// runs, reproducing the Appendix B coverage table.
type CoverageLedger struct {
	mu sync.Mutex
	by map[string]*Coverage
}

// Coverage is one CA's fetch record. Attempted = Succeeded + Exhausted +
// Canceled; CAs never attempted have no Coverage row at all.
type Coverage struct {
	CAName    string
	Attempted int
	Succeeded int
	// Exhausted counts collections where every attempt (including retries)
	// failed; Canceled counts collections cut off by context cancellation
	// mid-retry. Both are distinct from "never attempted", which leaves no
	// trace in the ledger.
	Exhausted int
	Canceled  int
}

// Percent returns the success percentage (100% when nothing was attempted).
func (c Coverage) Percent() float64 {
	if c.Attempted == 0 {
		return 100
	}
	return 100 * float64(c.Succeeded) / float64(c.Attempted)
}

// NewCoverageLedger creates an empty ledger.
func NewCoverageLedger() *CoverageLedger {
	return &CoverageLedger{by: make(map[string]*Coverage)}
}

// Record adds one fetch outcome (success or retries-exhausted failure).
func (l *CoverageLedger) Record(ca string, ok bool) {
	if ok {
		l.RecordOutcome(ca, OutcomeOK)
	} else {
		l.RecordOutcome(ca, OutcomeRetryExhausted)
	}
}

// RecordOutcome adds one classified fetch outcome.
func (l *CoverageLedger) RecordOutcome(ca string, o Outcome) {
	l.mu.Lock()
	defer l.mu.Unlock()
	c := l.by[ca]
	if c == nil {
		c = &Coverage{CAName: ca}
		l.by[ca] = c
	}
	c.Attempted++
	switch o {
	case OutcomeOK:
		c.Succeeded++
	case OutcomeRetryExhausted:
		c.Exhausted++
	case OutcomeCanceled:
		c.Canceled++
	}
}

// Rows returns per-CA coverage sorted by ascending success percentage then
// name, the ordering of the paper's Table 7.
func (l *CoverageLedger) Rows() []Coverage {
	l.mu.Lock()
	defer l.mu.Unlock()
	rows := make([]Coverage, 0, len(l.by))
	for _, c := range l.by {
		rows = append(rows, *c)
	}
	sort.Slice(rows, func(i, j int) bool {
		pi, pj := rows[i].Percent(), rows[j].Percent()
		if pi != pj {
			return pi < pj
		}
		return rows[i].CAName < rows[j].CAName
	})
	return rows
}

// Total sums the ledger.
func (l *CoverageLedger) Total() Coverage {
	l.mu.Lock()
	defer l.mu.Unlock()
	t := Coverage{CAName: "Total"}
	for _, c := range l.by {
		t.Attempted += c.Attempted
		t.Succeeded += c.Succeeded
		t.Exhausted += c.Exhausted
		t.Canceled += c.Canceled
	}
	return t
}

// Fetcher downloads CRLs from a Server over HTTP, retrying failures through
// resil.Retry, and records outcomes in a ledger.
type Fetcher struct {
	Base    string // server base URL
	HC      *http.Client
	Ledger  *CoverageLedger
	Retries int // extra attempts per CRL per day (default 2)
	// Backoff is the first retry delay (default 5ms — distribution points in
	// the simulation answer instantly, and anti-scraping blocks clear on
	// re-request rather than with time).
	Backoff time.Duration
}

// classify maps a fetch error for the retry loop: cancellation is terminal,
// while every HTTP status — including the 403s anti-scraping endpoints throw
// — is worth another attempt, matching the paper's collection methodology.
func classify(err error) resil.Verdict {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return resil.Terminal
	}
	return resil.Retryable
}

// FetchAll performs one daily collection over the named CAs, returning the
// successfully fetched lists keyed by CA name. The HTTP client is wrapped in
// an obs.Transport (request-ID propagation, per-peer metrics) unless the
// caller already supplied an instrumented one; retry/backoff policy lives in
// this loop rather than the transport so ledger accounting sees exactly one
// outcome per CA per day.
func (f *Fetcher) FetchAll(ctx context.Context, names []string) (map[string]*List, error) {
	hc := obs.InstrumentClient(f.HC, "crl-fetcher")
	retries := f.Retries
	if retries == 0 {
		retries = 2
	}
	backoff := f.Backoff
	if backoff <= 0 {
		backoff = 5 * time.Millisecond
	}
	policy := resil.Policy{
		Service:     "crl-fetcher",
		MaxAttempts: retries + 1,
		BaseDelay:   backoff,
		MaxDelay:    100 * backoff,
		Classify:    classify,
		OnRetry:     func(int, error, time.Duration) { mFetchRetries.Inc() },
	}
	out := make(map[string]*List, len(names))
	for _, name := range names {
		if ctx.Err() != nil {
			// CAs we never reached stay out of the ledger entirely: "never
			// attempted" must stay distinguishable from "retries exhausted".
			return out, ctx.Err()
		}
		var list *List
		err := resil.Retry(ctx, policy, func(ctx context.Context) error {
			l, ferr := f.fetchOne(ctx, hc, name)
			if ferr == nil {
				list = l
			}
			return ferr
		})
		outcome := OutcomeOK
		canceled := false
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled), ctx.Err() != nil:
			outcome = OutcomeCanceled
			canceled = true
		default:
			outcome = OutcomeRetryExhausted
		}
		if f.Ledger != nil {
			f.Ledger.RecordOutcome(name, outcome)
		}
		fetchOutcomeCounter(name, outcome).Inc()
		if list != nil {
			out[name] = list
		}
		if canceled {
			return out, ctx.Err()
		}
	}
	return out, nil
}

func (f *Fetcher) fetchOne(ctx context.Context, hc *http.Client, name string) (*List, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.Base+"/crl/"+name, nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Drain before returning so the keep-alive connection is reusable by
		// the retry that's about to happen instead of being torn down.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
		return nil, fmt.Errorf("crl: fetch %s: %w", name,
			&resil.HTTPError{StatusCode: resp.StatusCode, Status: resp.Status})
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	mFetchBytes.Observe(float64(len(raw)))
	return Unmarshal(raw)
}
