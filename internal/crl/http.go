package crl

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"stalecert/internal/simtime"
)

// Server serves the CRLs of many authorities over HTTP, the way CA
// distribution points do. Some production CRL endpoints sit behind
// scrape protections; FailRate simulates those per-endpoint rejections so the
// fetcher's coverage accounting (Appendix B) is exercised.
type Server struct {
	mu          sync.RWMutex
	authorities map[string]*Authority
	failRate    map[string]float64 // CA name -> probability of 403
	rng         *rand.Rand
	rngMu       sync.Mutex
	now         atomic.Int64
}

// NewServer creates a CRL distribution server. seed drives the simulated
// scrape-protection failures.
func NewServer(seed int64) *Server {
	return &Server{
		authorities: make(map[string]*Authority),
		failRate:    make(map[string]float64),
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// SetNow advances the server's simulated clock (CRL thisUpdate stamps).
func (s *Server) SetNow(d simtime.Day) { s.now.Store(int64(d)) }

// Host registers an authority, optionally with a scrape-protection failure
// probability in [0, 1).
func (s *Server) Host(a *Authority, failRate float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.authorities[a.Name()] = a
	s.failRate[a.Name()] = failRate
}

// Names returns the hosted CA names, sorted.
func (s *Server) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.authorities))
	for n := range s.authorities {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Handler serves GET /crl/{ca} with the CA's current CRL in binary form.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /crl/{ca}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("ca")
		s.mu.RLock()
		a, ok := s.authorities[name]
		fail := s.failRate[name]
		s.mu.RUnlock()
		if !ok {
			http.Error(w, "unknown CA", http.StatusNotFound)
			return
		}
		if fail > 0 {
			s.rngMu.Lock()
			blocked := s.rng.Float64() < fail
			s.rngMu.Unlock()
			if blocked {
				// Simulated anti-scraping response.
				http.Error(w, "automated access denied", http.StatusForbidden)
				return
			}
		}
		list := a.Snapshot(simtime.Day(s.now.Load()))
		w.Header().Set("Content-Type", "application/pkix-crl")
		_, _ = w.Write(list.Marshal())
	})
	return mux
}

// CoverageLedger accumulates per-CA fetch outcomes across daily collection
// runs, reproducing the Appendix B coverage table.
type CoverageLedger struct {
	mu sync.Mutex
	by map[string]*Coverage
}

// Coverage is one CA's fetch record.
type Coverage struct {
	CAName    string
	Attempted int
	Succeeded int
}

// Percent returns the success percentage (100% when nothing was attempted).
func (c Coverage) Percent() float64 {
	if c.Attempted == 0 {
		return 100
	}
	return 100 * float64(c.Succeeded) / float64(c.Attempted)
}

// NewCoverageLedger creates an empty ledger.
func NewCoverageLedger() *CoverageLedger {
	return &CoverageLedger{by: make(map[string]*Coverage)}
}

// Record adds one fetch outcome.
func (l *CoverageLedger) Record(ca string, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	c := l.by[ca]
	if c == nil {
		c = &Coverage{CAName: ca}
		l.by[ca] = c
	}
	c.Attempted++
	if ok {
		c.Succeeded++
	}
}

// Rows returns per-CA coverage sorted by ascending success percentage then
// name, the ordering of the paper's Table 7.
func (l *CoverageLedger) Rows() []Coverage {
	l.mu.Lock()
	defer l.mu.Unlock()
	rows := make([]Coverage, 0, len(l.by))
	for _, c := range l.by {
		rows = append(rows, *c)
	}
	sort.Slice(rows, func(i, j int) bool {
		pi, pj := rows[i].Percent(), rows[j].Percent()
		if pi != pj {
			return pi < pj
		}
		return rows[i].CAName < rows[j].CAName
	})
	return rows
}

// Total sums the ledger.
func (l *CoverageLedger) Total() Coverage {
	l.mu.Lock()
	defer l.mu.Unlock()
	t := Coverage{CAName: "Total"}
	for _, c := range l.by {
		t.Attempted += c.Attempted
		t.Succeeded += c.Succeeded
	}
	return t
}

// Fetcher downloads CRLs from a Server over HTTP, retrying failures, and
// records outcomes in a ledger.
type Fetcher struct {
	Base    string // server base URL
	HC      *http.Client
	Ledger  *CoverageLedger
	Retries int // extra attempts per CRL per day (default 2)
}

// FetchAll performs one daily collection over the named CAs, returning the
// successfully fetched lists keyed by CA name.
func (f *Fetcher) FetchAll(ctx context.Context, names []string) (map[string]*List, error) {
	hc := f.HC
	if hc == nil {
		hc = http.DefaultClient
	}
	retries := f.Retries
	if retries == 0 {
		retries = 2
	}
	out := make(map[string]*List, len(names))
	for _, name := range names {
		var list *List
		var lastErr error
		for attempt := 0; attempt <= retries; attempt++ {
			l, err := f.fetchOne(ctx, hc, name)
			if err == nil {
				list = l
				break
			}
			lastErr = err
			if ctx.Err() != nil {
				return out, ctx.Err()
			}
		}
		if f.Ledger != nil {
			f.Ledger.Record(name, list != nil)
		}
		if list != nil {
			out[name] = list
		} else {
			_ = lastErr // coverage ledger carries the failure; partial results are the contract
		}
	}
	return out, nil
}

func (f *Fetcher) fetchOne(ctx context.Context, hc *http.Client, name string) (*List, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.Base+"/crl/"+name, nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("crl: fetch %s: status %d", name, resp.StatusCode)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	return Unmarshal(raw)
}
