// Package reputation is the threat-intelligence substrate standing in for
// VirusTotal + AVClass2 + Malpedia in the paper's Table 5 analysis: a feed
// of vendor verdicts on URLs and files per domain, an AV-label family
// extractor with alias resolution, and the vendor-threshold analysis that
// correlates malicious activity with stale-certificate control windows.
package reputation

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"stalecert/internal/simtime"
)

// DetectionThreshold is the paper's bar: a URL or file counts as malicious
// when at least five vendors flag it.
const DetectionThreshold = 5

// URLCategory is a vendor's verdict class for a URL.
type URLCategory string

// Verdict categories used in Table 5.
const (
	CatPhishing  URLCategory = "phishing"
	CatMalicious URLCategory = "malicious"
	CatMalware   URLCategory = "malware"
)

// URLReport is one URL's aggregated vendor verdicts.
type URLReport struct {
	URL    string
	Domain string
	// FirstFlagged is the first day the detection threshold was reached.
	FirstFlagged simtime.Day
	// VendorVotes counts flagging vendors per category.
	VendorVotes map[URLCategory]int
}

// Flagged reports whether the URL crosses the detection threshold.
func (r URLReport) Flagged() bool {
	total := 0
	for _, n := range r.VendorVotes {
		total += n
	}
	return total >= DetectionThreshold
}

// DominantCategory returns the category with the most votes.
func (r URLReport) DominantCategory() URLCategory {
	best, bestN := CatMalicious, -1
	for _, c := range []URLCategory{CatPhishing, CatMalicious, CatMalware} {
		if n := r.VendorVotes[c]; n > bestN {
			best, bestN = c, n
		}
	}
	return best
}

// FileReport is one malware sample's vendor labels, associated with a domain
// that distributed or contacted it.
type FileReport struct {
	SHA256 string
	Domain string
	// FirstSubmission is the sample's earliest submission day.
	FirstSubmission simtime.Day
	// VendorLabels are raw AV detection names ("Trojan.GenericKD!zbot"...).
	VendorLabels []string
}

// Flagged reports whether enough vendors labelled the sample.
func (r FileReport) Flagged() bool { return len(r.VendorLabels) >= DetectionThreshold }

// Family categories (Table 5 left column).
const (
	FamGrayware   = "grayware"
	FamBackdoor   = "backdoor"
	FamUnknown    = "Unknown"
	FamDownloader = "downloader"
	FamVirus      = "virus"
	FamSpyware    = "spyware"
	FamRansomware = "ransomware"
	FamOther      = "Other"
)

// familyAliases resolves family names to canonical categories, playing the
// role of AVClass2 tag extraction plus Malpedia alias resolution.
var familyAliases = map[string]string{
	"adware": FamGrayware, "pup": FamGrayware, "grayware": FamGrayware, "riskware": FamGrayware,
	"backdoor": FamBackdoor, "rat": FamBackdoor, "remoteadmin": FamBackdoor,
	"downloader": FamDownloader, "dropper": FamDownloader, "loader": FamDownloader,
	"virus": FamVirus, "infector": FamVirus,
	"spyware": FamSpyware, "infostealer": FamSpyware, "stealer": FamSpyware, "keylogger": FamSpyware,
	"ransomware": FamRansomware, "ransom": FamRansomware, "locker": FamRansomware,
	"banker": FamSpyware, "zbot": FamSpyware, "zeus": FamSpyware,
}

// ExtractFamily derives a family category from raw vendor labels by
// tokenising and voting, returning FamUnknown when no tokens resolve and
// FamOther when tokens resolve but to no known category.
func ExtractFamily(labels []string) string {
	votes := make(map[string]int)
	resolved := false
	for _, label := range labels {
		for _, tok := range tokenize(label) {
			if fam, ok := familyAliases[tok]; ok {
				votes[fam]++
				resolved = true
			} else if len(tok) >= 4 && !genericTokens[tok] {
				votes[FamOther]++
			}
		}
	}
	if !resolved && len(votes) == 0 {
		return FamUnknown
	}
	best, bestN := FamUnknown, 0
	fams := make([]string, 0, len(votes))
	for f := range votes {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	for _, f := range fams {
		// Known families beat the Other bucket at equal votes.
		n := votes[f]
		if f != FamOther {
			n *= 2
		}
		if n > bestN {
			best, bestN = f, n
		}
	}
	return best
}

var genericTokens = map[string]bool{
	"trojan": true, "generic": true, "agent": true, "malware": true,
	"win32": true, "win64": true, "html": true, "js": true, "heur": true,
	"variant": true, "genetickd": true, "generickd": true,
}

func tokenize(label string) []string {
	label = strings.ToLower(label)
	return strings.FieldsFunc(label, func(r rune) bool {
		return !(r >= 'a' && r <= 'z') && !(r >= '0' && r <= '9')
	})
}

// Feed is the queryable threat-intel corpus.
type Feed struct {
	urls  map[string][]URLReport
	files map[string][]FileReport
}

// NewFeed creates an empty feed.
func NewFeed() *Feed {
	return &Feed{urls: make(map[string][]URLReport), files: make(map[string][]FileReport)}
}

// AddURL records a URL report.
func (f *Feed) AddURL(r URLReport) { f.urls[r.Domain] = append(f.urls[r.Domain], r) }

// AddFile records a file report.
func (f *Feed) AddFile(r FileReport) { f.files[r.Domain] = append(f.files[r.Domain], r) }

// URLs returns the URL reports for a domain.
func (f *Feed) URLs(domain string) []URLReport { return f.urls[domain] }

// Files returns the file reports for a domain.
func (f *Feed) Files(domain string) []FileReport { return f.files[domain] }

// Analysis is the Table 5 output.
type Analysis struct {
	Sampled int
	// MalwareDomains / URLDomains count domains whose flagged activity
	// temporally coincides with a stale-certificate window.
	MalwareDomains int
	URLDomains     int
	MWOnly         int
	MWAndURL       int
	URLOnly        int
	// ByFamily and ByCategory break the counts down as in Table 5.
	ByFamily   map[string]int
	ByCategory map[URLCategory]int
}

// TotalFlagged returns the number of distinct flagged domains.
func (a Analysis) TotalFlagged() int { return a.MWOnly + a.MWAndURL + a.URLOnly }

// Analyze reproduces the Table 5 methodology over a domain sample: for each
// domain, find flagged URLs and files whose first flagged/submission day
// falls inside the domain's stale window, and tally families and categories.
func (f *Feed) Analyze(sample []string, staleWindow func(domain string) (simtime.Span, bool)) Analysis {
	a := Analysis{
		Sampled:    len(sample),
		ByFamily:   make(map[string]int),
		ByCategory: make(map[URLCategory]int),
	}
	for _, domain := range sample {
		span, ok := staleWindow(domain)
		if !ok {
			continue
		}
		mw, url := false, false
		// Malware files: minimum first_submission across flagged samples
		// must fall in the stale window.
		var minSub simtime.Day = simtime.Forever
		var bestLabels []string
		for _, fr := range f.files[domain] {
			if fr.Flagged() && fr.FirstSubmission < minSub {
				minSub = fr.FirstSubmission
				bestLabels = fr.VendorLabels
			}
		}
		if minSub != simtime.Forever && span.Contains(minSub) {
			mw = true
			a.ByFamily[ExtractFamily(bestLabels)]++
		}
		for _, ur := range f.urls[domain] {
			if ur.Flagged() && span.Contains(ur.FirstFlagged) {
				if !url {
					a.ByCategory[ur.DominantCategory()]++
				}
				url = true
			}
		}
		switch {
		case mw && url:
			a.MWAndURL++
		case mw:
			a.MWOnly++
		case url:
			a.URLOnly++
		}
		if mw {
			a.MalwareDomains++
		}
		if url {
			a.URLDomains++
		}
	}
	return a
}

// Synthesize populates a feed over the given domains: maliciousFraction of
// them receive flagged activity at a day drawn inside their window via
// within. Deterministic under the seeded rng.
func Synthesize(rng *rand.Rand, domains []string, maliciousFraction float64, within func(domain string) simtime.Span) *Feed {
	feed := NewFeed()
	families := []string{"zbot", "locker", "dropper", "rat", "adware", "stealer", "infector", "weirdofam"}
	cats := []URLCategory{CatPhishing, CatMalicious, CatMalware}
	for _, d := range domains {
		if rng.Float64() >= maliciousFraction {
			continue
		}
		span := within(d)
		if span.Len() == 0 {
			continue
		}
		day := span.Start + simtime.Day(rng.Intn(span.Len()))
		kind := rng.Intn(3) // 0: file only, 1: url only, 2: both
		if kind == 0 || kind == 2 {
			fam := families[rng.Intn(len(families))]
			labels := make([]string, DetectionThreshold+rng.Intn(10))
			for i := range labels {
				labels[i] = fmt.Sprintf("Trojan.%s!%d", fam, i)
			}
			feed.AddFile(FileReport{
				SHA256:          fmt.Sprintf("%064x", rng.Int63()),
				Domain:          d,
				FirstSubmission: day,
				VendorLabels:    labels,
			})
		}
		if kind == 1 || kind == 2 {
			votes := map[URLCategory]int{cats[rng.Intn(len(cats))]: DetectionThreshold + rng.Intn(20)}
			feed.AddURL(URLReport{
				URL:          "http://" + d + "/payload",
				Domain:       d,
				FirstFlagged: day,
				VendorVotes:  votes,
			})
		}
	}
	return feed
}
