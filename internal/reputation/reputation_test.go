package reputation

import (
	"math/rand"
	"testing"

	"stalecert/internal/simtime"
)

func TestURLReportFlaggedThreshold(t *testing.T) {
	r := URLReport{VendorVotes: map[URLCategory]int{CatPhishing: 4}}
	if r.Flagged() {
		t.Fatal("4 votes should not flag")
	}
	r.VendorVotes[CatMalware] = 1
	if !r.Flagged() {
		t.Fatal("5 votes should flag")
	}
}

func TestDominantCategory(t *testing.T) {
	r := URLReport{VendorVotes: map[URLCategory]int{CatPhishing: 7, CatMalware: 3}}
	if got := r.DominantCategory(); got != CatPhishing {
		t.Fatalf("dominant = %v", got)
	}
}

func TestFileReportFlagged(t *testing.T) {
	r := FileReport{VendorLabels: []string{"a", "b", "c", "d"}}
	if r.Flagged() {
		t.Fatal("4 labels should not flag")
	}
	r.VendorLabels = append(r.VendorLabels, "e")
	if !r.Flagged() {
		t.Fatal("5 labels should flag")
	}
}

func TestExtractFamily(t *testing.T) {
	cases := []struct {
		labels []string
		want   string
	}{
		{[]string{"Trojan.zbot!1", "Win32.Zeus.A"}, FamSpyware},          // alias: zbot/zeus → spyware
		{[]string{"Ransom.Locker.X", "locker!gen"}, FamRansomware},       // locker → ransomware
		{[]string{"Trojan.Dropper!77", "loader.gen"}, FamDownloader},     // dropper/loader
		{[]string{"PUP.Adware.Bundle"}, FamGrayware},                     // adware
		{[]string{"Backdoor.RAT.Gen"}, FamBackdoor},                      // rat
		{[]string{"Trojan.Generic", "Win32.Agent"}, FamUnknown},          // only generic tokens
		{[]string{"Weirdofam.Thing"}, FamOther},                          // unknown specific family
		{[]string{}, FamUnknown},                                         // nothing
		{[]string{"Virus.Infector.A", "win32.virus.b"}, FamVirus},        // virus
		{[]string{"Spy.Keylogger.Gen", "infostealer.win32"}, FamSpyware}, // spyware
	}
	for _, c := range cases {
		if got := ExtractFamily(c.labels); got != c.want {
			t.Errorf("ExtractFamily(%v) = %q, want %q", c.labels, got, c.want)
		}
	}
}

func window(start, end simtime.Day) func(string) (simtime.Span, bool) {
	return func(string) (simtime.Span, bool) { return simtime.Span{Start: start, End: end}, true }
}

func TestAnalyzeTemporalCoincidence(t *testing.T) {
	feed := NewFeed()
	five := []string{"v1", "v2", "v3", "v4", "v5"}

	// inside.com: flagged inside the stale window.
	feed.AddFile(FileReport{Domain: "inside.com", FirstSubmission: 150, VendorLabels: append([]string{"Trojan.zbot"}, five...)})
	// outside.com: flagged before the window.
	feed.AddFile(FileReport{Domain: "outside.com", FirstSubmission: 50, VendorLabels: append([]string{"Trojan.zbot"}, five...)})
	// url.com: URL flagged inside the window.
	feed.AddURL(URLReport{Domain: "url.com", FirstFlagged: 180, VendorVotes: map[URLCategory]int{CatPhishing: 9}})
	// both.com: file and URL inside the window.
	feed.AddFile(FileReport{Domain: "both.com", FirstSubmission: 120, VendorLabels: append([]string{"Ransom.locker"}, five...)})
	feed.AddURL(URLReport{Domain: "both.com", FirstFlagged: 130, VendorVotes: map[URLCategory]int{CatMalware: 6}})
	// weak.com: below threshold.
	feed.AddURL(URLReport{Domain: "weak.com", FirstFlagged: 150, VendorVotes: map[URLCategory]int{CatMalware: 2}})

	sample := []string{"inside.com", "outside.com", "url.com", "both.com", "weak.com", "clean.com"}
	a := feed.Analyze(sample, window(100, 200))

	if a.Sampled != 6 {
		t.Fatalf("sampled = %d", a.Sampled)
	}
	if a.MWOnly != 1 || a.URLOnly != 1 || a.MWAndURL != 1 {
		t.Fatalf("buckets = MW:%d URL:%d both:%d", a.MWOnly, a.URLOnly, a.MWAndURL)
	}
	if a.TotalFlagged() != 3 {
		t.Fatalf("flagged = %d", a.TotalFlagged())
	}
	if a.ByFamily[FamSpyware] != 1 || a.ByFamily[FamRansomware] != 1 {
		t.Fatalf("families = %v", a.ByFamily)
	}
	if a.ByCategory[CatPhishing] != 1 || a.ByCategory[CatMalware] != 1 {
		t.Fatalf("categories = %v", a.ByCategory)
	}
}

func TestSynthesizeDeterministicAndBounded(t *testing.T) {
	domains := make([]string, 1000)
	for i := range domains {
		domains[i] = "d" + itoa(i) + ".com"
	}
	win := func(string) simtime.Span { return simtime.Span{Start: 0, End: 100} }
	f1 := Synthesize(rand.New(rand.NewSource(7)), domains, 0.05, win)
	f2 := Synthesize(rand.New(rand.NewSource(7)), domains, 0.05, win)

	count := func(f *Feed) int {
		n := 0
		for _, d := range domains {
			if len(f.URLs(d)) > 0 || len(f.Files(d)) > 0 {
				n++
			}
		}
		return n
	}
	n1, n2 := count(f1), count(f2)
	if n1 != n2 {
		t.Fatalf("synthesize not deterministic: %d vs %d", n1, n2)
	}
	if n1 < 20 || n1 > 100 {
		t.Fatalf("malicious count %d out of expected band for 5%% of 1000", n1)
	}
	// Analysis over the whole sample must flag roughly the seeded fraction.
	a := f1.Analyze(domains, func(string) (simtime.Span, bool) { return simtime.Span{Start: 0, End: 100}, true })
	if a.TotalFlagged() != n1 {
		t.Fatalf("flagged %d of %d seeded", a.TotalFlagged(), n1)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
