// Package experiments regenerates every table and figure from the paper's
// evaluation over a simulated world: it runs the full pipeline (world →
// datasets → corpus → detectors) and formats each artifact via
// internal/report. cmd/experiments and the repository benchmarks are thin
// wrappers around this package.
package experiments

import (
	"math/rand"

	"stalecert/internal/cdn"
	"stalecert/internal/core"
	"stalecert/internal/obs"
	"stalecert/internal/popularity"
	"stalecert/internal/reputation"
	"stalecert/internal/simtime"
	"stalecert/internal/worldsim"
	"stalecert/internal/x509sim"
)

// Results bundles a completed pipeline run.
type Results struct {
	World  *worldsim.World
	Corpus *core.Corpus

	RevokedAll   []core.StaleCert
	KeyComp      []core.StaleCert
	RegChange    []core.StaleCert
	Managed      []core.StaleCert
	RevStats     core.RevocationStats
	CTDedupStats struct {
		Raw, Unique, PrecertMerged int
	}

	// Detection windows (Table 4 date ranges).
	RevWindow     simtime.Span
	RegWindow     simtime.Span
	ManagedWindow simtime.Span

	// Trace is the per-stage timing tree for the run (world build, corpus
	// indexing, and the three detectors). cmd/staled emits it in -json output.
	Trace *obs.Trace
}

// newPipelineTrace creates a trace whose day ranges render as calendar dates.
func newPipelineTrace() *obs.Trace {
	tr := obs.NewTrace("pipeline")
	tr.FormatDay = func(d int) string { return simtime.Day(d).String() }
	return tr
}

// Run executes the world simulation and all three detection pipelines.
func Run(s worldsim.Scenario) *Results {
	tr := newPipelineTrace()
	sp := tr.StartSpan("world_build")
	sp.SetDays(int(s.Start), int(s.End))
	w := worldsim.NewWorld(s)
	w.Run()
	sp.End()
	return detect(w, tr)
}

// Detect runs the measurement pipelines over an already-simulated world.
func Detect(w *worldsim.World) *Results {
	return detect(w, newPipelineTrace())
}

func detect(w *worldsim.World, tr *obs.Trace) *Results {
	r := &Results{World: w, Trace: tr}

	sp := tr.StartSpan("ct_dedup")
	certs, dstats := w.Logs.Dedup()
	r.CTDedupStats.Raw = dstats.RawEntries
	r.CTDedupStats.Unique = dstats.Unique
	r.CTDedupStats.PrecertMerged = dstats.PrecertMerged
	sp.AddItems(int(dstats.RawEntries))
	sp.End()

	sp = tr.StartSpan("corpus_index")
	r.Corpus = core.NewCorpus(certs, core.CorpusOptions{PSL: w.PSL})
	sp.AddItems(len(certs))
	sp.End()

	// Pipeline 1: revocations joined against CT with the §4.1 filters.
	cutoff := core.RevocationFilterCutoff
	if !w.S.CRLWindow.Contains(cutoff) && cutoff >= w.S.CRLWindow.End {
		// Scenario ends before the paper's cutoff: scale the cutoff to 13
		// months before the collection window, as the paper did.
		cutoff = w.S.CRLWindow.Start - 396
	}
	sp = tr.StartSpan("detect_revoked")
	r.RevokedAll, r.RevStats = core.DetectRevoked(r.Corpus, w.RevocationEntries(), cutoff)
	r.KeyComp = core.SplitKeyCompromise(r.RevokedAll)
	r.RevWindow = simtime.Span{Start: cutoff, End: w.S.CRLWindow.End}
	sp.AddItems(len(r.RevokedAll))
	sp.SetDays(int(r.RevWindow.Start), int(r.RevWindow.End))
	sp.End()

	// Pipeline 2: registrant change from the WHOIS archive.
	sp = tr.StartSpan("detect_registrant_change")
	rereg := w.Whois.ReRegistrations()
	r.RegChange = core.DetectRegistrantChange(r.Corpus, rereg)
	r.RegWindow = regWindow(r.RegChange, w.S.WHOISWindow)
	sp.AddItems(len(r.RegChange))
	sp.SetDays(int(r.RegWindow.Start), int(r.RegWindow.End))
	sp.End()

	// Pipeline 3: managed TLS departure from daily aDNS diffs.
	sp = tr.StartSpan("detect_managed_tls")
	isManaged := func(c *x509sim.Certificate) bool {
		return cdn.HasMarkerSAN(c, "cloudflaressl.com")
	}
	r.Managed = core.DetectManagedTLSDeparture(r.Corpus, w.ADNS.Departures(), isManaged)
	r.ManagedWindow = w.S.ADNSWindow
	sp.AddItems(len(r.Managed))
	sp.SetDays(int(r.ManagedWindow.Start), int(r.ManagedWindow.End))
	sp.End()

	tr.End()
	// Mirror the stage tree into the process span store (when tracing is on)
	// so a batch run's pipeline timings are queryable at /v1/traces like any
	// served request; the zero RequestID mints a fresh trace rooted here.
	tr.Record(nil, obs.RequestID{}, "experiments")
	return r
}

// regWindow spans from the earliest registrant-change event to the end of
// WHOIS collection, mirroring Table 4's 2013-04-16..2021-07-09 range.
func regWindow(stale []core.StaleCert, whoisWindow simtime.Span) simtime.Span {
	if len(stale) == 0 {
		return whoisWindow
	}
	return simtime.Span{Start: stale[0].EventDay, End: whoisWindow.End}
}

// ByMethod returns the detections for one method.
func (r *Results) ByMethod(m core.Method) []core.StaleCert {
	switch m {
	case core.MethodRevocation:
		return r.RevokedAll
	case core.MethodKeyCompromise:
		return r.KeyComp
	case core.MethodRegistrantChange:
		return r.RegChange
	case core.MethodManagedTLS:
		return r.Managed
	}
	return nil
}

// staleRegistrantDomains returns the distinct e2LDs with registrant-change
// stale certificates, plus each domain's earliest stale window (event →
// latest notAfter), used by the Table 5 reputation join.
func (r *Results) staleRegistrantDomains() (domains []string, windows map[string]simtime.Span) {
	windows = make(map[string]simtime.Span)
	for _, s := range r.RegChange {
		w, ok := windows[s.Domain]
		end := s.Cert.NotAfter + 1
		if !ok {
			windows[s.Domain] = simtime.Span{Start: s.EventDay, End: end}
			domains = append(domains, s.Domain)
			continue
		}
		if s.EventDay < w.Start {
			w.Start = s.EventDay
		}
		if end > w.End {
			w.End = end
		}
		windows[s.Domain] = w
	}
	return domains, windows
}

// SampleDomains picks up to n random stale-registrant domains (the paper's
// 100K VirusTotal sample).
func (r *Results) SampleDomains(rng *rand.Rand, n int) ([]string, map[string]simtime.Span) {
	domains, windows := r.staleRegistrantDomains()
	if len(domains) > n {
		rng.Shuffle(len(domains), func(i, j int) { domains[i], domains[j] = domains[j], domains[i] })
		domains = domains[:n]
	}
	return domains, windows
}

// SyntheticFeed builds the threat-intel feed for Table 5 over the sampled
// domains.
func (r *Results) SyntheticFeed(seed int64, domains []string, windows map[string]simtime.Span, maliciousFraction float64) *reputation.Feed {
	rng := rand.New(rand.NewSource(seed))
	return reputation.Synthesize(rng, domains, maliciousFraction, func(d string) simtime.Span {
		return windows[d]
	})
}

// PopularitySamples builds the biannual rank lists for Table 6 over the
// world's domain population.
func (r *Results) PopularitySamples(seed int64) *popularity.Samples {
	rng := rand.New(rand.NewSource(seed))
	pool := r.World.AllDomains()
	// The Alexa Top 1M covers only a small slice of all registered domains;
	// scale the list so roughly 2.5%% of simulated e2LDs ever rank, matching
	// Table 6's "%% of total" row.
	listSize := len(pool) / 40
	if listSize < 10 {
		listSize = 10
	}
	from := simtime.MustParse("2014-01-01")
	to := simtime.MustParse("2022-07-01")
	if from < r.World.S.Start {
		from = r.World.S.Start
	}
	if to > r.World.S.End {
		to = r.World.S.End
	}
	return popularity.GenerateBiannual(rng, pool, from, to, listSize)
}
