package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"stalecert/internal/core"
	"stalecert/internal/dnssim"
	"stalecert/internal/report"
	"stalecert/internal/reputation"
	"stalecert/internal/simtime"
)

// Table3 summarises the datasets the run produced (paper Table 3).
func (r *Results) Table3() *report.Table {
	t := &report.Table{
		Title:   "Table 3: Datasets",
		Columns: []string{"Dataset", "Used for", "Date range", "Size", "Details"},
	}
	w := r.World
	t.AddRow("CT",
		"Revocations, Managed TLS, Registrant change",
		fmt.Sprintf("%s - %s", w.S.Start, w.S.End),
		fmt.Sprintf("%d certs (deduplicated)", r.Corpus.Len()),
		fmt.Sprintf("%d raw entries across %d logs; %d precert/final pairs merged",
			r.CTDedupStats.Raw, len(w.Logs.Logs()), r.CTDedupStats.PrecertMerged))
	cov := w.Ledger.Total()
	t.AddRow("CRL",
		"Revocations",
		fmt.Sprintf("%s - %s", w.S.CRLWindow.Start, w.S.CRLWindow.End-1),
		fmt.Sprintf("%d revocations", r.RevStats.TotalRevocations),
		fmt.Sprintf("daily collection of %d CRLs, %.1f%% coverage", cov.Attempted, cov.Percent()))
	t.AddRow("WHOIS",
		"Registrant change",
		fmt.Sprintf("%s - %s", w.S.WHOISWindow.Start, w.S.WHOISWindow.End-1),
		fmt.Sprintf("%d records (%d domains)", w.Whois.Rows(), w.Whois.Domains()),
		".com and .net registration info")
	avg := w.ADNS.AvgRecordsPerDay()
	t.AddRow("aDNS",
		"Managed TLS",
		fmt.Sprintf("%s - %s", w.S.ADNSWindow.Start, w.S.ADNSWindow.End-1),
		fmt.Sprintf("%.0f A/AAAA, %.0f NS, %.0f CNAME records per day",
			avg[dnssim.TypeA]+avg[dnssim.TypeAAAA], avg[dnssim.TypeNS], avg[dnssim.TypeCNAME]),
		"daily DNS scans for all e2LDs in public zones")
	return t
}

// Table4 reports daily and total stale certificates, FQDNs and e2LDs per
// detection method (paper Table 4).
func (r *Results) Table4() *report.Table {
	t := &report.Table{
		Title: "Table 4: Stale certificate detection",
		Columns: []string{"Method", "Date range", "Certs/day", "Certs total",
			"FQDNs/day", "FQDNs total", "e2LDs/day", "e2LDs total"},
	}
	for _, row := range r.Table4Rows() {
		t.AddRow(row.Method.String(),
			fmt.Sprintf("%s - %s", row.Range.Start, row.Range.End-1),
			row.CertsPerDay(), row.Certs,
			row.FQDNsPerDay(), row.FQDNs,
			row.E2LDsPerDay(), row.E2LDs)
	}
	return t
}

// Table4Rows computes the four method summaries backing Table 4.
func (r *Results) Table4Rows() []core.Summary {
	return []core.Summary{
		core.Summarize(r.Corpus, r.RevokedAll, core.MethodRevocation, r.RevWindow),
		core.Summarize(r.Corpus, r.KeyComp, core.MethodKeyCompromise, r.RevWindow),
		core.Summarize(r.Corpus, r.RegChange, core.MethodRegistrantChange, r.RegWindow),
		core.Summarize(r.Corpus, r.Managed, core.MethodManagedTLS, r.ManagedWindow),
	}
}

// Table5 runs the domain-reputation analysis over a random sample of
// registrant-change stale domains (paper Table 5).
func (r *Results) Table5(seed int64, sampleSize int, maliciousFraction float64) (*report.Table, reputation.Analysis) {
	rng := rand.New(rand.NewSource(seed))
	domains, windows := r.SampleDomains(rng, sampleSize)
	feed := r.SyntheticFeed(seed+1, domains, windows, maliciousFraction)
	analysis := feed.Analyze(domains, func(d string) (simtime.Span, bool) {
		w, ok := windows[d]
		return w, ok
	})

	t := &report.Table{
		Title:   "Table 5: Domain reputation",
		Columns: []string{"Bucket", "Count"},
	}
	t.AddRow("Sampled domains", analysis.Sampled)
	t.AddRow("Malware domains", analysis.MalwareDomains)
	t.AddRow("URL domains", analysis.URLDomains)
	t.AddRow("MW only", analysis.MWOnly)
	t.AddRow("MW + URL", analysis.MWAndURL)
	t.AddRow("URL only", analysis.URLOnly)
	fams := make([]string, 0, len(analysis.ByFamily))
	for f := range analysis.ByFamily {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	for _, f := range fams {
		t.AddRow("malware: "+f, analysis.ByFamily[f])
	}
	cats := []reputation.URLCategory{reputation.CatPhishing, reputation.CatMalicious, reputation.CatMalware}
	for _, c := range cats {
		t.AddRow("url: "+string(c), analysis.ByCategory[c])
	}
	return t, analysis
}

// Table6 buckets stale-certificate domains by their best popularity rank
// (paper Table 6).
func (r *Results) Table6(seed int64) *report.Table {
	samples := r.PopularitySamples(seed)
	t := &report.Table{
		Title:   "Table 6: Domain popularity",
		Columns: []string{"Rank", "Reg. change", "Managed TLS dept.", "Key compromise"},
	}
	reg := r.methodE2LDs(core.MethodRegistrantChange)
	managed := r.methodE2LDs(core.MethodManagedTLS)
	kc := r.methodE2LDs(core.MethodKeyCompromise)
	regB := samples.BucketCounts(reg)
	manB := samples.BucketCounts(managed)
	kcB := samples.BucketCounts(kc)
	for i, l := range BucketLabels {
		t.AddRow(l, regB[i], manB[i], kcB[i])
	}
	t.AddRow("Total domains", len(reg), len(managed), len(kc))
	pct := func(b []int, total int) string {
		if total == 0 {
			return "0%"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(b[len(b)-1])/float64(total))
	}
	t.AddRow("% of total", pct(regB, len(reg)), pct(manB, len(managed)), pct(kcB, len(kc)))
	return t
}

// methodE2LDs returns the distinct affected e2LDs for a method.
func (r *Results) methodE2LDs(m core.Method) []string {
	seen := make(map[string]bool)
	for _, s := range r.ByMethod(m) {
		if s.Domain != "" {
			seen[s.Domain] = true
			continue
		}
		for _, e2 := range r.Corpus.E2LDsOf(s.Cert) {
			seen[e2] = true
		}
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Table7 is the per-CA CRL coverage table (paper Appendix B / Table 7).
func (r *Results) Table7() *report.Table {
	t := &report.Table{
		Title:   "Table 7: CRL coverage",
		Columns: []string{"CA Name", "CRL coverage", "Percent"},
	}
	for _, row := range r.World.Ledger.Rows() {
		t.AddRow(row.CAName, fmt.Sprintf("%d / %d", row.Succeeded, row.Attempted),
			fmt.Sprintf("%.2f%%", row.Percent()))
	}
	total := r.World.Ledger.Total()
	t.AddRow("Total Coverage", fmt.Sprintf("%d / %d", total.Succeeded, total.Attempted),
		fmt.Sprintf("%.2f%%", total.Percent()))
	return t
}

// BucketLabels are Table 6's tier labels, aligned with popularity.Buckets.
var BucketLabels = []string{"Top 1K", "Top 10K", "Top 100K", "Top 1M"}
