package experiments

import (
	"strings"
	"sync"
	"testing"

	"stalecert/internal/core"
	"stalecert/internal/simtime"
	"stalecert/internal/worldsim"
)

// testScenario spans 2017 through the paper's end so the LE growth era, the
// GoDaddy breach, and all three collection windows are inside the run, at
// reduced scale.
func testScenario() worldsim.Scenario {
	s := worldsim.Default()
	s.Start = simtime.MustParse("2016-01-01")
	s.BaseDailyRegistrations = 2.0
	s.AnnualRegistrationGrowth = 1.12
	return s
}

var (
	testResultsOnce sync.Once
	testResults     *Results
)

// results runs the shared pipeline once for all tests in this package.
func results(t *testing.T) *Results {
	t.Helper()
	testResultsOnce.Do(func() {
		testResults = Run(testScenario())
	})
	return testResults
}

func TestPipelineFindsAllThreeStaleClasses(t *testing.T) {
	r := results(t)
	if len(r.RevokedAll) == 0 {
		t.Fatal("no revocation-stale certificates")
	}
	if len(r.KeyComp) == 0 {
		t.Fatal("no key-compromise stale certificates")
	}
	if len(r.RegChange) == 0 {
		t.Fatal("no registrant-change stale certificates")
	}
	if len(r.Managed) == 0 {
		t.Fatal("no managed-TLS-departure stale certificates")
	}
	if len(r.KeyComp) >= len(r.RevokedAll) {
		t.Fatal("key compromise should be a minority of revocations")
	}
}

func TestTable4Shape(t *testing.T) {
	r := results(t)
	rows := r.Table4Rows()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byMethod := map[core.Method]core.Summary{}
	for _, row := range rows {
		byMethod[row.Method] = row
	}
	man := byMethod[core.MethodManagedTLS]
	reg := byMethod[core.MethodRegistrantChange]
	kc := byMethod[core.MethodKeyCompromise]
	all := byMethod[core.MethodRevocation]

	// Paper ordering of daily e2LD rates: managed TLS > registrant change >
	// key compromise; revoked:all far above key compromise.
	if !(man.E2LDsPerDay() > reg.E2LDsPerDay()) {
		t.Errorf("managed TLS daily e2LDs (%.2f) should exceed registrant change (%.2f)",
			man.E2LDsPerDay(), reg.E2LDsPerDay())
	}
	if !(reg.E2LDsPerDay() > kc.E2LDsPerDay()) {
		t.Errorf("registrant change daily e2LDs (%.2f) should exceed key compromise (%.2f)",
			reg.E2LDsPerDay(), kc.E2LDsPerDay())
	}
	if !(all.Certs > 5*kc.Certs) {
		t.Errorf("revoked:all (%d) should dwarf key compromise (%d)", all.Certs, kc.Certs)
	}
	// Rendering sanity.
	text := r.Table4().Render()
	if !strings.Contains(text, "Managed TLS departure") {
		t.Error("Table 4 render missing method row")
	}
}

func TestFigure4BreachSpike(t *testing.T) {
	r := results(t)
	fig := r.Figure4()
	if len(fig.Rows) == 0 {
		t.Fatal("Figure 4 empty")
	}
	// GoDaddy's Nov/Dec 2021 must dominate its own series.
	gdCol := -1
	for i, c := range fig.Columns {
		if c == "GoDaddy" {
			gdCol = i
		}
	}
	if gdCol < 0 {
		t.Fatal("no GoDaddy series in Figure 4")
	}
	best, bestMonth := -1, ""
	for _, row := range fig.Rows {
		n := atoi(row[gdCol])
		if n > best {
			best, bestMonth = n, row[0]
		}
	}
	if bestMonth != "2021-11" && bestMonth != "2021-12" {
		t.Errorf("GoDaddy peak month = %s (count %d), want Nov/Dec 2021", bestMonth, best)
	}
}

func TestFigure6MedianOrdering(t *testing.T) {
	r := results(t)
	med := r.Figure6Medians()
	reg := med[core.MethodRegistrantChange]
	man := med[core.MethodManagedTLS]
	kc := med[core.MethodKeyCompromise]
	// Paper: key compromise (~398d) and managed TLS (~300d) have much longer
	// median staleness than registrant change (~90d).
	if !(man > reg) {
		t.Errorf("managed TLS median (%.0f) should exceed registrant change (%.0f)", man, reg)
	}
	if !(kc > reg) {
		t.Errorf("key compromise median (%.0f) should exceed registrant change (%.0f)", kc, reg)
	}
}

func TestFigure8KeyCompromiseEarly(t *testing.T) {
	r := results(t)
	surv := r.Figure8At(90)
	// Paper: only ~1% of key compromises occur after 90 days of issuance,
	// versus ~56%/49.5% for the other classes.
	if kc := surv[core.MethodKeyCompromise]; kc > 0.15 {
		t.Errorf("key compromise survival at 90d = %.2f, want near 0", kc)
	}
	if reg := surv[core.MethodRegistrantChange]; reg < 0.2 {
		t.Errorf("registrant change survival at 90d = %.2f, want substantial", reg)
	}
	if man := surv[core.MethodManagedTLS]; man < 0.2 {
		t.Errorf("managed TLS survival at 90d = %.2f, want substantial", man)
	}
}

func TestFigure9Reductions(t *testing.T) {
	r := results(t)
	rows := r.Figure9(nil)
	if len(rows) != 12 { // 3 methods x 4 caps
		t.Fatalf("figure 9 rows = %d", len(rows))
	}
	// Day reductions must decrease monotonically with looser caps within
	// each method, and the 45-day cap must eliminate most staleness days.
	byMethod := map[core.Method][]Figure9Row{}
	for _, row := range rows {
		byMethod[row.Method] = append(byMethod[row.Method], row)
	}
	for m, rs := range byMethod {
		for i := 1; i < len(rs); i++ {
			if rs[i].StalenessDayReductionPct() > rs[i-1].StalenessDayReductionPct() {
				t.Errorf("%v: reduction increased from cap %d to %d", m, rs[i-1].CapDays, rs[i].CapDays)
			}
		}
		if r45 := rs[0]; r45.CapDays != 45 || r45.StalenessDayReductionPct() < 60 {
			t.Errorf("%v: 45-day cap reduction = %.1f%%, want >60%%", m, rs[0].StalenessDayReductionPct())
		}
	}
}

func TestHeadline90DayCap(t *testing.T) {
	r := results(t)
	h := r.Headline()
	if h.OverallDayReductionPct < 40 || h.OverallDayReductionPct > 99 {
		t.Errorf("overall staleness-day reduction at 90d = %.1f%%, want a large cut", h.OverallDayReductionPct)
	}
	for m, pct := range h.DayReductionPct {
		if pct <= 0 {
			t.Errorf("%v: no staleness-day reduction", m)
		}
	}
	if h.NewStaleE2LDsPerDay <= 0 {
		t.Error("no daily stale e2LD rate")
	}
}

func TestTables3567Render(t *testing.T) {
	r := results(t)
	t3 := r.Table3().Render()
	for _, want := range []string{"CT", "CRL", "WHOIS", "aDNS"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table 3 missing %s", want)
		}
	}
	t5, analysis := r.Table5(7, 1000, 0.10)
	if analysis.Sampled == 0 {
		t.Fatal("Table 5 sampled nothing")
	}
	if analysis.TotalFlagged() == 0 {
		t.Error("Table 5 flagged nothing — feed synthesis broken")
	}
	if !strings.Contains(t5.Render(), "MW + URL") {
		t.Error("Table 5 missing bucket")
	}
	t6 := r.Table6(7)
	if len(t6.Rows) != 6 {
		t.Errorf("Table 6 rows = %d", len(t6.Rows))
	}
	t7 := r.Table7().Render()
	if !strings.Contains(t7, "Total Coverage") {
		t.Error("Table 7 missing total")
	}
}

func TestFigures5a5b7Render(t *testing.T) {
	r := results(t)
	f5a := r.Figure5a()
	if len(f5a.Rows) == 0 {
		t.Fatal("Figure 5a empty")
	}
	f5b := r.Figure5b()
	if len(f5b.Columns) < 3 {
		t.Fatalf("Figure 5b columns = %v", f5b.Columns)
	}
	f7 := r.Figure7().Render()
	if !strings.Contains(f7, "2018") {
		t.Error("Figure 7 missing 2018 series")
	}
	f6 := r.Figure6().Render()
	if !strings.Contains(f6, "Key compromise") {
		t.Error("Figure 6 missing series")
	}
}

func TestRegistrantChangeGrowthAfter2018(t *testing.T) {
	r := results(t)
	// Figure 5a shape: stale certs after LE's rise (2019+) far outnumber
	// the 2017 era.
	early, late := 0, 0
	for _, s := range r.RegChange {
		if s.EventDay.Year() <= 2017 {
			early++
		}
		if y := s.EventDay.Year(); y >= 2019 && y <= 2021 {
			late++
		}
	}
	if late <= early {
		t.Errorf("registrant-change stale certs: 2019-21 (%d) should exceed <=2017 (%d)", late, early)
	}
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func TestRevocationEffectivenessExtension(t *testing.T) {
	r := results(t)
	tbl := r.RevocationEffectiveness()
	if len(tbl.Rows) != 6 {
		t.Fatalf("profiles = %d", len(tbl.Rows))
	}
	// Decode the acceptance columns: every profile except hard-fail must
	// accept all revoked certs under interception.
	total := len(r.RevokedAll)
	for _, row := range tbl.Rows {
		name, intercepted := row[0], atoi(row[4])
		if name == "hard-fail" {
			if intercepted != 0 {
				t.Errorf("hard-fail accepted %d under interception", intercepted)
			}
			continue
		}
		if intercepted != total {
			t.Errorf("%s accepted %d/%d under interception", name, intercepted, total)
		}
	}
	// Firefox/Safari must reject everything with working infrastructure.
	for _, row := range tbl.Rows {
		if row[0] == "Firefox" || row[0] == "Safari" {
			if got := atoi(row[3]); got != 0 {
				t.Errorf("%s accepted %d with infra up", row[0], got)
			}
		}
	}
}

func TestMitigationsExtension(t *testing.T) {
	r := results(t)
	rows := r.Mitigations(1)
	if len(rows) != 3 {
		t.Fatalf("mitigations = %d", len(rows))
	}
	byName := map[string]MitigationRow{}
	for _, row := range rows {
		byName[row.Name] = row
	}
	keyless := byName["Keyless SSL (managed TLS)"]
	if keyless.StaleCertsBefore == 0 || keyless.StaleCertsAfter != 0 {
		t.Errorf("keyless = %+v", keyless)
	}
	crliteRow := byName["CRLite-style filter (revoked)"]
	if crliteRow.StaleDaysAfter != 0 || crliteRow.Note == "filter build failed" {
		t.Errorf("crlite = %+v", crliteRow)
	}
	dane := byName["DANE-style binding (TTL 1d)"]
	if dane.StaleDaysAfter >= dane.StaleDaysBefore {
		t.Errorf("dane = %+v", dane)
	}
	if dane.StaleDaysAfter != dane.StaleCertsAfter { // 1 day per cert
		t.Errorf("dane TTL bound wrong: %+v", dane)
	}
	if len(r.MitigationsTable(1).Rows) != 3 {
		t.Error("mitigations table rows")
	}
}
